// Pisosim runs a single workload/scheme combination on the simulated
// machine and prints per-job response times and machine statistics.
//
// Usage:
//
//	pisosim -workload pmake8|cpu|mem|disk -scheme SMP|Quo|PIso [-disksched Pos|Iso|PIso]
//	pisosim -spec scenario.json          # declarative scenario, JSON result
package main

import (
	"flag"
	"fmt"
	"os"

	"perfiso"
	"perfiso/internal/scenario"
)

func main() {
	workloadName := flag.String("workload", "pmake8", "pmake8, cpu, mem, or disk")
	schemeName := flag.String("scheme", "PIso", "SMP, Quo, or PIso")
	diskSched := flag.String("disksched", "", "override disk policy: Pos, Iso, or PIso")
	unbalanced := flag.Bool("unbalanced", false, "use the unbalanced job distribution (pmake8, mem)")
	traceN := flag.Int("trace", 0, "dump the last N resource-management decisions")
	timeline := flag.Bool("timeline", false, "render per-SPU usage sparklines")
	specPath := flag.String("spec", "", "run a declarative JSON scenario and print a JSON result")
	flag.Parse()

	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		spec, err := scenario.Parse(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := spec.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(res.JSON())
		return
	}

	var scheme perfiso.Scheme
	switch *schemeName {
	case "SMP":
		scheme = perfiso.SMP
	case "Quo":
		scheme = perfiso.Quo
	case "PIso":
		scheme = perfiso.PIso
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *schemeName)
		os.Exit(2)
	}
	opts := perfiso.Options{DiskSched: *diskSched, TraceCapacity: *traceN}
	if *timeline {
		opts.TimelinePeriod = 100 * perfiso.Millisecond
	}

	switch *workloadName {
	case "pmake8":
		runPmake8(scheme, opts, *unbalanced)
	case "cpu":
		runCPU(scheme, opts)
	case "mem":
		runMem(scheme, opts, *unbalanced)
	case "disk":
		runDisk(scheme, opts)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workloadName)
		os.Exit(2)
	}
}

func report(sys *perfiso.System) {
	rep := sys.Report()
	fmt.Printf("\nmakespan %.2fs  cpu-util %.0f%%  disk-reqs %d  reclaims %d  dirty-writes %d\n",
		rep.Makespan.Seconds(), 100*rep.CPUUtilization, rep.DiskRequests,
		rep.PageReclaims, rep.DirtyWrites)
	if tl := sys.Kernel().Timeline(); tl != nil {
		fmt.Printf("\nper-SPU usage over time (CPUs / MB):\n%s", tl.Render(64))
	}
	if tr := sys.Kernel().Tracer(); tr != nil && tr.Len() > 0 {
		fmt.Printf("\nlast %d resource-management decisions:\n", tr.Len())
		tr.Dump(os.Stdout)
	}
}

func runPmake8(scheme perfiso.Scheme, opts perfiso.Options, unbalanced bool) {
	sys := perfiso.New(perfiso.Pmake8Machine(), scheme, opts)
	var spus []*perfiso.SPU
	for i := 0; i < 8; i++ {
		s := sys.NewSPU(fmt.Sprintf("user%d", i+1), 1)
		sys.SetAffinity(s.ID(), i)
		spus = append(spus, s)
	}
	sys.Boot()
	for i, s := range spus {
		jobs := 1
		if unbalanced && i >= 4 {
			jobs = 2
		}
		for j := 0; j < jobs; j++ {
			sys.Pmake(s, fmt.Sprintf("pmake%d.%d", i+1, j), perfiso.DefaultPmake())
		}
	}
	sys.Run()
	for _, j := range sys.Jobs() {
		fmt.Printf("%-12s %.2fs\n", j.Name, j.ResponseTime().Seconds())
	}
	report(sys)
}

func runCPU(scheme perfiso.Scheme, opts perfiso.Options) {
	sys := perfiso.New(perfiso.CPUIsolationMachine(), scheme, opts)
	s1 := sys.NewSPU("ocean", 1)
	s2 := sys.NewSPU("eda", 1)
	sys.Boot()
	sys.Ocean(s1, "ocean", perfiso.DefaultOcean())
	for i := 0; i < 3; i++ {
		sys.ComputeBound(s2, fmt.Sprintf("flashlite%d", i), perfiso.DefaultFlashlite())
		sys.ComputeBound(s2, fmt.Sprintf("vcs%d", i), perfiso.DefaultVCS())
	}
	sys.Run()
	for _, j := range sys.Jobs() {
		fmt.Printf("%-12s %.2fs\n", j.Name, j.ResponseTime().Seconds())
	}
	report(sys)
}

func runMem(scheme perfiso.Scheme, opts perfiso.Options, unbalanced bool) {
	sys := perfiso.New(perfiso.MemIsolationMachine(), scheme, opts)
	s1 := sys.NewSPU("spu1", 1)
	s2 := sys.NewSPU("spu2", 1)
	sys.SetAffinity(s1.ID(), 0)
	sys.SetAffinity(s2.ID(), 1)
	sys.Boot()
	sys.Pmake(s1, "job1", perfiso.MemPmake())
	sys.Pmake(s2, "job2a", perfiso.MemPmake())
	if unbalanced {
		sys.Pmake(s2, "job2b", perfiso.MemPmake())
	}
	sys.Run()
	for _, j := range sys.Jobs() {
		fmt.Printf("%-12s %.2fs\n", j.Name, j.ResponseTime().Seconds())
	}
	report(sys)
}

func runDisk(scheme perfiso.Scheme, opts perfiso.Options) {
	sys := perfiso.New(perfiso.DiskIsolationMachine(), scheme, opts)
	s1 := sys.NewSPU("pmake", 1)
	s2 := sys.NewSPU("copy", 1)
	sys.SetAffinity(s1.ID(), 0)
	sys.SetAffinity(s2.ID(), 0)
	sys.Boot()
	sys.Pmake(s1, "pmake", perfiso.DiskPmake())
	sys.Copy(s2, "copy", perfiso.DefaultCopy(20*1024*1024))
	sys.Run()
	for _, j := range sys.Jobs() {
		fmt.Printf("%-12s %.2fs\n", j.Name, j.ResponseTime().Seconds())
	}
	_, wait, pos := sys.DiskStats(0)
	fmt.Printf("disk: mean wait %.1fms, mean positioning %.2fms\n", wait*1000, pos*1000)
	report(sys)
}

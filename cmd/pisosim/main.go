// Pisosim runs a single workload/scheme combination on the simulated
// machine and prints per-job response times and machine statistics. The
// workloads come from the perfiso.Workloads registry.
//
// Usage:
//
//	pisosim -workload pmake8|cpu|mem|disk|tenants -scheme SMP|Quo|PIso [-disksched Pos|Iso|PIso]
//	pisosim -workload tenants -latency latency.jsonl   # per-tenant tail latency + SLO artifact
//	pisosim -workload tenants -adaptive -controller ctl.jsonl   # closed-loop SLO entitlement control
//	pisosim -faults disk-fail:0:1s:2s:0.3,cpu-off:1:500ms:0s   # inject deterministic faults
//	pisosim -simobs simobs.jsonl         # simulator self-observability telemetry (event census, queue stats, feasibility)
//	pisosim -spec scenario.json          # declarative scenario, JSON result
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"perfiso"
	"perfiso/internal/profile"
	"perfiso/internal/scenario"
	"perfiso/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses args, dispatches through the workload registry, and
// returns the process exit code. Split from main so tests can drive the
// full flag→lookup→report path in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pisosim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workloadName := fs.String("workload", "pmake8", "one of: "+strings.Join(perfiso.WorkloadNames(), ", "))
	schemeName := fs.String("scheme", "PIso", "SMP, Quo, or PIso")
	diskSched := fs.String("disksched", "", "override disk policy: Pos, Iso, or PIso")
	unbalanced := fs.Bool("unbalanced", false, "use the unbalanced job distribution (pmake8, mem)")
	traceN := fs.Int("trace", 0, "dump the last N resource-management decisions")
	traceKind := fs.String("trace-kind", "", "restrict -trace output to these kinds (comma-separated: sched,mem,disk,fs,proc,policy,fault,audit)")
	traceSPU := fs.Int("trace-spu", -1, "restrict -trace output to events concerning this SPU id")
	timeline := fs.Bool("timeline", false, "render per-SPU usage sparklines")
	metricsPath := fs.String("metrics", "", "write per-SPU metrics as JSONL to this file")
	latencyPath := fs.String("latency", "", "write per-tenant tail-latency summaries, SLO attainment, and window timelines as JSONL to this file")
	adaptive := fs.Bool("adaptive", false, "close the loop: retune SPU entitlements from SLO burn (admission control, retry budgets, disk breakers)")
	controllerPath := fs.String("controller", "", "write the controller's decision log as JSONL to this file (implies -adaptive)")
	chromePath := fs.String("chrometrace", "", "write a Chrome trace-event file (open in Perfetto or chrome://tracing)")
	profilePath := fs.String("profile", "", "write the simulated-time profile as gzipped pprof protobuf to this file")
	spansPath := fs.String("spans", "", "write per-request span trees as JSONL to this file")
	simobsPath := fs.String("simobs", "", "observe the simulator itself: write event-core telemetry (JSONL) to this file and print the feasibility report")
	faultSpec := fs.String("faults", "", "inject deterministic faults: kind:target:at:duration[:severity],...\n(kinds: disk-slow, disk-fail, cpu-slow, cpu-off, mem-loss; duration 0s = permanent)")
	specPath := fs.String("spec", "", "run a declarative JSON scenario and print a JSON result")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		spec, err := scenario.Parse(data)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		res, err := spec.Run()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintln(stdout, res.JSON())
		return 0
	}

	scheme, ok := parseScheme(*schemeName)
	if !ok {
		fmt.Fprintf(stderr, "unknown scheme %q\n", *schemeName)
		return 2
	}
	w, ok := perfiso.LookupWorkload(*workloadName)
	if !ok {
		fmt.Fprintf(stderr, "unknown workload %q; known: %s\n",
			*workloadName, strings.Join(perfiso.WorkloadNames(), ", "))
		return 2
	}

	kinds, err := trace.ParseKinds(*traceKind)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	spuFilter := ""
	if *traceSPU >= 0 {
		spuFilter = fmt.Sprintf("spu%d", *traceSPU)
	}

	opts := perfiso.Options{DiskSched: *diskSched, TraceCapacity: *traceN}
	if *timeline {
		opts.TimelinePeriod = 100 * perfiso.Millisecond
	}
	if *metricsPath != "" || *chromePath != "" {
		opts.MetricsPeriod = 100 * perfiso.Millisecond
	}
	if *latencyPath != "" {
		opts.LatencyWindow = 500 * perfiso.Millisecond
	}
	if *controllerPath != "" {
		*adaptive = true
	}
	if *adaptive {
		// The controller's only sensor is the windowed SLO burn, so the
		// closed loop always brings the latency registry with it.
		if opts.LatencyWindow == 0 {
			opts.LatencyWindow = 500 * perfiso.Millisecond
		}
		opts.Control = perfiso.ControlConfig{Enabled: true}
	}
	if *profilePath != "" || *spansPath != "" {
		opts.Profiled = true
	}
	if *simobsPath != "" {
		opts.SimObs = true
	}
	if *faultSpec != "" {
		plan, err := perfiso.ParseFaults(*faultSpec)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		opts.Faults = plan
	}

	sys := w.Build(scheme, opts, *unbalanced)
	sys.Run()
	for _, j := range sys.Jobs() {
		fmt.Fprintf(stdout, "%-12s %.2fs\n", j.Name, j.ResponseTime().Seconds())
	}
	if w.Name == "disk" {
		_, wait, pos := sys.DiskStats(0)
		fmt.Fprintf(stdout, "disk: mean wait %.1fms, mean positioning %.2fms\n", wait*1000, pos*1000)
	}
	report(sys, stdout, kinds, spuFilter)
	if *latencyPath != "" {
		if err := writeExport(*latencyPath, sys.WriteLatency); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "\nlatency written to %s\n", *latencyPath)
	}
	if *controllerPath != "" {
		if err := writeExport(*controllerPath, sys.WriteController); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "controller decisions written to %s\n", *controllerPath)
	}
	if *metricsPath != "" {
		if err := writeExport(*metricsPath, sys.WriteMetrics); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "\nmetrics written to %s\n", *metricsPath)
	}
	if *chromePath != "" {
		if err := writeExport(*chromePath, sys.WriteChromeTrace); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "chrome trace written to %s (open in Perfetto)\n", *chromePath)
	}
	if *profilePath != "" {
		if err := writeExport(*profilePath, sys.WriteProfile); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "profile written to %s (view with `go tool pprof`)\n", *profilePath)
	}
	if *spansPath != "" {
		if err := writeExport(*spansPath, sys.WriteSpans); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "spans written to %s\n", *spansPath)
	}
	if *simobsPath != "" {
		rep := sys.Kernel().SimObsReport(w.Name)
		if err := writeExport(*simobsPath, rep.WriteJSONL); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "\n%s\nsimulator telemetry written to %s\n", rep, *simobsPath)
	}
	return 0
}

// writeExport creates path and streams one of the System export methods
// into it.
func writeExport(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseScheme(name string) (perfiso.Scheme, bool) {
	switch name {
	case "SMP":
		return perfiso.SMP, true
	case "Quo":
		return perfiso.Quo, true
	case "PIso":
		return perfiso.PIso, true
	}
	return perfiso.SMP, false
}

func report(sys *perfiso.System, w io.Writer, kinds []trace.Kind, spu string) {
	rep := sys.Report()
	fmt.Fprintf(w, "\nmakespan %.2fs  cpu-util %.0f%%  disk-reqs %d  reclaims %d  dirty-writes %d\n",
		rep.Makespan.Seconds(), 100*rep.CPUUtilization, rep.DiskRequests,
		rep.PageReclaims, rep.DirtyWrites)
	if in := sys.Kernel().Injector(); in != nil {
		k := sys.Kernel()
		var failures int64
		for i := 0; i < k.NumDisks(); i++ {
			failures += k.Disk(i).Total.Failures
		}
		fmt.Fprintf(w, "faults: injected %d, healed %d; disk failures %d, fs retries %d, pageout retries %d\n",
			in.Stat.Injected, in.Stat.Reverted, failures,
			k.FS().Stat.Retries, k.Memory().Stat.PageoutRetries)
	}
	if tl := sys.Kernel().Timeline(); tl != nil {
		fmt.Fprintf(w, "\nper-SPU usage over time (CPUs / MB):\n%s", tl.Render(64))
	}
	if tbl := sys.Kernel().UsageTable(); tbl != nil {
		fmt.Fprintf(w, "\n%s", tbl)
	}
	if tbl := sys.Kernel().LatencyTable(); tbl != nil {
		fmt.Fprintf(w, "\n%s", tbl)
	}
	if c := sys.Kernel().Controller(); c != nil {
		st := c.Stat
		fmt.Fprintf(w, "\ncontroller: %d ticks, %d retunes (%d boosts, %d releases), %d shed, %d breaker trips\n",
			st.Ticks, st.Retunes, st.Boosts, st.Releases, st.Shed, st.Trips)
	}
	if p := sys.Kernel().Profile(); p != nil {
		printAttribution(p, w)
	}
	if locks := sys.Kernel().Locks(); locks != nil {
		if s := locks.String(); strings.Count(s, "\n") > 1 { // header plus rows
			fmt.Fprintf(w, "\nkernel locks:\n%s", s)
		}
	}
	if tr := sys.Kernel().Tracer(); tr != nil && tr.Len() > 0 {
		fmt.Fprintf(w, "\nlast %d resource-management decisions:\n", tr.Len())
		tr.DumpFiltered(w, kinds, spu)
	}
}

// printAttribution renders the profiler's aggregate buckets and the
// cross-SPU interference matrix: who stole how much simulated time from
// whom, on which resource.
func printAttribution(p *profile.Profiler, w io.Writer) {
	totals := p.Totals()
	if len(totals) > 0 {
		fmt.Fprintf(w, "\nsimulated-time attribution (per SPU, per state):\n")
		for _, t := range totals {
			fmt.Fprintf(w, "  %-6s %-12s %12s\n", profile.SPUName(t.SPU), t.State, t.Time)
		}
	}
	theft := p.Interference()
	if len(theft) == 0 {
		fmt.Fprintf(w, "\ninterference matrix: empty (no cross-SPU time theft)\n")
		return
	}
	fmt.Fprintf(w, "\ninterference matrix (victim <- culprit, resource, stolen sim-time):\n")
	for _, t := range theft {
		fmt.Fprintf(w, "  %-6s <- %-6s %-8s %12s\n",
			profile.SPUName(t.Victim), profile.SPUName(t.Culprit), t.Resource, t.Stolen)
	}
}

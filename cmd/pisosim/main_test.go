package main

import (
	"strings"
	"testing"

	"perfiso"
)

// Every documented -workload name must resolve through the registry,
// and every registry entry must build a bootable system.
func TestWorkloadNamesResolve(t *testing.T) {
	for _, name := range []string{"pmake8", "cpu", "mem", "disk"} {
		w, ok := perfiso.LookupWorkload(name)
		if !ok {
			t.Errorf("-workload %s does not resolve", name)
			continue
		}
		if w.Build == nil || w.Desc == "" {
			t.Errorf("workload %q is incomplete: %+v", name, w)
		}
	}
	if _, ok := perfiso.LookupWorkload("bogus"); ok {
		t.Fatal("LookupWorkload accepted an unknown name")
	}
	if names := perfiso.WorkloadNames(); len(names) != len(perfiso.Workloads()) {
		t.Fatalf("WorkloadNames() = %v", names)
	}
}

func TestRunUnknownWorkloadFails(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-workload", "bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown workload") {
		t.Fatalf("stderr = %q", errOut.String())
	}
}

func TestRunUnknownSchemeFails(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-scheme", "XYZ"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown scheme") {
		t.Fatalf("stderr = %q", errOut.String())
	}
}

func TestRunBadFlagFails(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestRunBadFaultSpecFails(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-faults", "disk-slow:0:1s"}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "fault:") {
		t.Fatalf("stderr = %q", errOut.String())
	}
}

// Smoke test: a faulted run completes and the report includes the
// injector summary with the retries the degradation layers performed.
func TestRunFaultedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full simulation")
	}
	var out, errOut strings.Builder
	code := run([]string{"-workload", "mem", "-scheme", "PIso",
		"-faults", "disk-fail:0:200ms:2s:0.5,cpu-off:0:500ms:1s"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "faults: injected 2, healed 2") {
		t.Fatalf("stdout missing fault summary:\n%s", out.String())
	}
}

// Smoke test: dispatch the disk workload end to end through the
// registry and check the report reaches stdout.
func TestRunDiskWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full simulation")
	}
	var out, errOut strings.Builder
	code := run([]string{"-workload", "disk", "-scheme", "PIso"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"pmake", "copy", "disk: mean wait", "makespan"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("stdout missing %q:\n%s", want, out.String())
		}
	}
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perfiso/internal/experiment"
)

// Every -only id the seed binary accepted, plus the new registry ids,
// must resolve through the registry.
func TestOnlyIDsResolve(t *testing.T) {
	legacy := []string{"fig2", "fig3", "fig5", "fig7", "tab3", "tab4"}
	for _, id := range append(legacy, experiment.IDs()...) {
		if _, ok := experiment.Lookup(id); !ok {
			t.Errorf("-only %s does not resolve", id)
		}
	}
}

func TestRunUnknownIDFails(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(config{only: "bogus", parallel: 1}, &out, &errOut); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Fatalf("stderr = %q", errOut.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(config{list: true}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, id := range experiment.IDs() {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

// End-to-end: the short suite under parallel workers writes a
// well-formed JSON benchmark report with non-trivial contents.
func TestRunShortParallelWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full short suite")
	}
	path := filepath.Join(t.TempDir(), "BENCH_pisobench.json")
	var out, errOut strings.Builder
	code := run(config{short: true, parallel: 2, jsonPath: path}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Figure 2") {
		t.Fatal("stdout missing Figure 2 table")
	}
	if !strings.Contains(errOut.String(), "skipping ablations") {
		t.Fatalf("stderr missing -short note: %q", errOut.String())
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b experiment.Bench
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if b.Suite != "pisobench" || b.Parallel != 2 || !b.Short {
		t.Fatalf("report metadata: %+v", b)
	}
	if len(b.Experiments) != 5 {
		t.Fatalf("short suite recorded %d experiments, want 5", len(b.Experiments))
	}
	if b.Events == 0 || b.WallSeconds <= 0 {
		t.Fatalf("missing totals: events=%d wall=%g", b.Events, b.WallSeconds)
	}
	for _, e := range b.Experiments {
		if e.Events == 0 || e.WallSeconds <= 0 || e.EventsPerSec <= 0 {
			t.Fatalf("experiment %q has empty perf data: %+v", e.ID, e)
		}
		if len(e.Rows) == 0 {
			t.Fatalf("experiment %q has no headline rows", e.ID)
		}
	}
}

// -soak runs the seeded sweep and reports a clean exit when every case
// holds the invariants.
func TestRunSoakSweep(t *testing.T) {
	var out, errOut strings.Builder
	code := run(config{soak: true, soakRuns: 2, soakSeed: 1, soakCase: -1}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if got := strings.Count(out.String(), "soak case"); got != 2 {
		t.Fatalf("expected 2 case lines, got %d:\n%s", got, out.String())
	}
	if !strings.Contains(errOut.String(), "2 cases clean") {
		t.Fatalf("stderr = %q", errOut.String())
	}
}

// -soak-case replays one case, optionally under an overridden fault
// schedule — the repro command path.
func TestRunSoakSingleCase(t *testing.T) {
	var out, errOut strings.Builder
	cfg := config{soak: true, soakSeed: 1, soakCase: 0, soakFaults: "disk-slow:0:50ms:200ms:2"}
	if code := run(cfg, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), `faults="disk-slow:0:50ms:200ms:2"`) {
		t.Fatalf("replay ignored the fault override:\n%s", out.String())
	}
}

func TestRunSoakFaultsRequiresCase(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(config{soak: true, soakCase: -1, soakFaults: "disk-slow:0:1s:0s"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunSoakBadFaultSpec(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(config{soak: true, soakCase: 0, soakFaults: "garbage"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// -only through an alias prints just that section's table.
func TestRunOnlyAliasPrintsOneSection(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pmake8 batch")
	}
	var out, errOut strings.Builder
	if code := run(config{only: "fig3", parallel: 1}, &out, &errOut); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if strings.Contains(out.String(), "Figure 2") {
		t.Fatal("-only fig3 printed the Figure 2 table")
	}
	if !strings.Contains(out.String(), "Figure 3") {
		t.Fatal("-only fig3 missing the Figure 3 table")
	}
}

// -only open-arrival with -latency and -json: the latency artifact and
// the bench report's embedded latency summaries both materialize.
func TestRunOpenArrivalWritesLatencyArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the open-arrival experiment")
	}
	dir := t.TempDir()
	latPath := filepath.Join(dir, "latency.jsonl")
	jsonPath := filepath.Join(dir, "bench.json")
	var out, errOut strings.Builder
	cfg := config{only: "open-arrival", parallel: 1, latencyPath: latPath, jsonPath: jsonPath}
	if code := run(cfg, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "open-arrival tail latency") {
		t.Fatalf("stdout missing the tenant table:\n%s", out.String())
	}
	data, err := os.ReadFile(latPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"type":"latency"`, `"type":"slo"`, `"type":"latency_window"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("latency artifact missing %s lines", want)
		}
	}
	var b experiment.Bench
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	if len(b.Experiments) != 1 || len(b.Experiments[0].Latency) != 6 {
		t.Fatalf("bench report latency summaries: %+v", b.Experiments)
	}
}

// -diff on two bench reports prints the comparison and exits 0; bad
// usage and unreadable files exit 2.
func TestRunDiff(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	write := func(path string, b experiment.Bench) {
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(oldPath, experiment.Bench{Suite: "pisobench", Experiments: []experiment.BenchExperiment{{ID: "fig2", Events: 10}}})
	write(newPath, experiment.Bench{Suite: "pisobench", Experiments: []experiment.BenchExperiment{{ID: "fig2", Events: 12}}})

	var out, errOut strings.Builder
	cfg := config{diff: true, diffArgs: []string{oldPath, newPath}}
	if code := run(cfg, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "events changed: fig2 dispatched 10 -> 12") {
		t.Fatalf("diff output:\n%s", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run(config{diff: true, diffArgs: []string{oldPath}}, &out, &errOut); code != 2 {
		t.Fatalf("one-arg -diff: exit %d, want 2", code)
	}
	if code := run(config{diff: true, diffArgs: []string{oldPath, filepath.Join(dir, "absent.json")}}, &out, &errOut); code != 2 {
		t.Fatalf("missing file -diff: exit %d, want 2", code)
	}
}

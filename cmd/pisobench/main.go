// Pisobench regenerates every table and figure of the paper's
// evaluation (§4) plus the ablation studies, printing paper-style text
// tables (or Markdown with -markdown). Experiments come from the
// registry in internal/experiment and run across a bounded worker pool
// (-parallel); output order is always the registry order, so parallel
// runs print byte-identical tables. With -short it skips the ablations;
// -json writes a machine-readable benchmark report, and -metrics writes
// the per-experiment observability artifact (JSONL, deterministic at
// any -parallel level).
//
// With -perf it instead measures the event core's throughput per
// registry scenario (events/sec, ns/event, allocs/event, rep-to-rep CV)
// and can gate against a committed baseline; -perf-trajectory appends
// the run to the append-only perf history (BENCH_trajectory.jsonl) and
// -perf-history renders that history as a trend report. -eventq flips
// every engine the run builds onto the binary-heap fallback for
// differential testing.
//
// With -simobs it turns the measurement discipline on the simulator
// itself: every registry scenario runs under the self-observability
// collector (internal/simobs) and prints its event census, calendar-
// queue internals, sampled host-time attribution, and the parallelism-
// feasibility report; -simobs-jsonl and -simobs-pprof write the machine
// artifacts (the pprof one opens with `go tool pprof`).
//
// Usage:
//
//	pisobench [-short] [-markdown] [-only ID] [-parallel N] [-json PATH] [-metrics PATH] [-latency PATH] [-controller PATH] [-eventq calendar|heap]
//	pisobench -perf [-perf-scenarios IDS] [-perf-reps N] [-perf-baseline PATH] [-perf-gate FRAC] [-perf-trajectory PATH] [-json PATH]
//	pisobench -perf-history BENCH_trajectory.jsonl
//	pisobench -simobs [-simobs-scenarios IDS] [-simobs-jsonl PATH] [-simobs-pprof PATH]
//	pisobench -diff OLD.json NEW.json   (bench, perf, or trajectory files)
//	pisobench -soak [-soak-runs N] [-soak-seed S] [-soak-case K] [-soak-faults SPEC]
//	pisobench -list
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"perfiso/internal/experiment"
	"perfiso/internal/fault"
	"perfiso/internal/sim"
	"perfiso/internal/simobs"
	"perfiso/internal/soak"
	"perfiso/internal/stats"
)

// config holds the parsed flag values so the dispatch logic is testable
// without re-executing the binary.
type config struct {
	short       bool
	markdown    bool
	compare     bool
	list        bool
	only        string
	parallel    int
	jsonPath    string
	metricsPath string
	profilePath string
	latencyPath string
	controlPath string
	eventq      string
	diff        bool
	diffArgs    []string
	perf        bool
	perfReps    int
	perfOnly    string
	perfBase    string
	perfGate    float64
	perfTraj    string
	perfHistory string
	simobs      bool
	simobsOnly  string
	simobsJSONL string
	simobsPprof string
	soak        bool
	soakRuns    int
	soakSeed    uint64
	soakCase    int
	soakFaults  string
}

func main() {
	var cfg config
	flag.BoolVar(&cfg.short, "short", false, "skip the ablation studies")
	flag.StringVar(&cfg.only, "only", "", "run a single experiment id or alias (see -list)")
	flag.BoolVar(&cfg.markdown, "markdown", false, "emit GitHub-flavored Markdown tables")
	flag.BoolVar(&cfg.compare, "compare", false, "print only the paper-vs-measured comparison")
	flag.BoolVar(&cfg.list, "list", false, "list registered experiment ids and exit")
	flag.IntVar(&cfg.parallel, "parallel", runtime.GOMAXPROCS(0), "experiments to run concurrently")
	flag.StringVar(&cfg.jsonPath, "json", "", "write a machine-readable benchmark report to this path")
	flag.StringVar(&cfg.metricsPath, "metrics", "", "write the per-experiment metrics artifact (JSONL) to this path")
	flag.StringVar(&cfg.profilePath, "profile", "", "write the per-experiment attribution artifact (JSONL: latency breakdowns, interference matrix, spans) to this path")
	flag.StringVar(&cfg.latencyPath, "latency", "", "write the per-experiment tail-latency artifact (JSONL: percentiles, SLO attainment, window timelines) to this path")
	flag.StringVar(&cfg.controlPath, "controller", "", "write the per-experiment controller artifact (JSONL: decision logs of every closed-loop run) to this path")
	flag.BoolVar(&cfg.diff, "diff", false, "compare two pisobench JSON reports (bench or perf): pisobench -diff old.json new.json")
	flag.StringVar(&cfg.eventq, "eventq", "", "event queue implementation: calendar (default) or heap")
	flag.BoolVar(&cfg.perf, "perf", false, "run the perf baseline instead of printing tables (BENCH_perf.json via -json)")
	flag.IntVar(&cfg.perfReps, "perf-reps", 3, "perf: repetitions per scenario; fastest rep is reported")
	flag.StringVar(&cfg.perfOnly, "perf-scenarios", "", "perf: comma-separated scenario ids (default: full registry)")
	flag.StringVar(&cfg.perfBase, "perf-baseline", "", "perf: prior BENCH_perf.json to annotate speedups against")
	flag.Float64Var(&cfg.perfGate, "perf-gate", 0, "perf: fail if any scenario's ns/event regresses past baseline by this fraction (0.15 = 15%)")
	flag.StringVar(&cfg.perfTraj, "perf-trajectory", "", "perf: append this run to the append-only trajectory JSONL at this path")
	flag.StringVar(&cfg.perfHistory, "perf-history", "", "render the perf trajectory at this path as a trend report and exit")
	flag.BoolVar(&cfg.simobs, "simobs", false, "run registry scenarios under the simulator self-observability collector and print the reports")
	flag.StringVar(&cfg.simobsOnly, "simobs-scenarios", "", "simobs: comma-separated scenario ids (default: full registry)")
	flag.StringVar(&cfg.simobsJSONL, "simobs-jsonl", "", "simobs: write the telemetry artifact (JSONL) to this path")
	flag.StringVar(&cfg.simobsPprof, "simobs-pprof", "", "simobs: write the host-time attribution profile (gzipped pprof) to this path")
	flag.BoolVar(&cfg.soak, "soak", false, "run the chaos-soak harness instead of the evaluation suite")
	flag.IntVar(&cfg.soakRuns, "soak-runs", 16, "soak: number of generated cases to run")
	flag.Uint64Var(&cfg.soakSeed, "soak-seed", 1, "soak: sweep seed; every case derives from it deterministically")
	flag.IntVar(&cfg.soakCase, "soak-case", -1, "soak: replay a single case index instead of sweeping")
	flag.StringVar(&cfg.soakFaults, "soak-faults", "", "soak: override the replayed case's fault schedule (repro spec)")
	flag.Parse()
	cfg.diffArgs = flag.Args()
	os.Exit(run(cfg, os.Stdout, os.Stderr))
}

// runSoak dispatches the -soak mode: a seeded sweep, or — with
// -soak-case — a single-case replay, optionally under the minimized
// fault schedule a previous sweep printed.
func runSoak(cfg config, stdout, stderr io.Writer) int {
	if cfg.soakCase >= 0 {
		c := soak.NewCase(cfg.soakSeed, cfg.soakCase)
		if cfg.soakFaults != "" {
			plan, err := fault.ParsePlan(cfg.soakFaults)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			c = c.WithFaults(plan)
		}
		if soak.RunOne(stdout, c) {
			return 1
		}
		return 0
	}
	if cfg.soakFaults != "" {
		fmt.Fprintln(stderr, "-soak-faults needs -soak-case to name the case it replays")
		return 2
	}
	if failures := soak.Sweep(stdout, cfg.soakSeed, cfg.soakRuns); failures > 0 {
		fmt.Fprintf(stderr, "soak: %d of %d cases failed\n", failures, cfg.soakRuns)
		return 1
	}
	fmt.Fprintf(stderr, "soak: %d cases clean (seed %d)\n", cfg.soakRuns, cfg.soakSeed)
	return 0
}

// runPerf dispatches the -perf mode: measure the event core's
// throughput on the selected registry scenarios, print the table,
// optionally write BENCH_perf.json (-json) and enforce the regression
// gate against a committed baseline (-perf-baseline, -perf-gate).
func runPerf(cfg config, stdout, stderr io.Writer) int {
	var ids []string
	if cfg.perfOnly != "" {
		ids = strings.Split(cfg.perfOnly, ",")
	}
	rep, err := experiment.RunPerf(ids, cfg.perfReps)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	rep.EventQueue = sim.DefaultQueue().String()

	var failures []string
	if cfg.perfBase != "" {
		data, err := os.ReadFile(cfg.perfBase)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		var base experiment.PerfReport
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(stderr, "parsing %s: %v\n", cfg.perfBase, err)
			return 2
		}
		rep.Baseline = cfg.perfBase
		failures = rep.Compare(base, cfg.perfGate)
	}

	fmt.Fprint(stdout, rep)
	if cfg.jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := os.WriteFile(cfg.jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if cfg.perfTraj != "" {
		pts := experiment.TrajectoryPoints(rep, gitCommit(), time.Now().Format("2006-01-02"))
		if err := experiment.AppendTrajectory(cfg.perfTraj, pts); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	for _, f := range failures {
		fmt.Fprintf(stderr, "PERF REGRESSION %s\n", f)
	}
	if len(failures) > 0 {
		return 1
	}
	return 0
}

// gitCommit stamps trajectory points with the short hash of HEAD, or
// "unknown" when the binary runs outside a git checkout.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// runPerfHistory dispatches -perf-history: read the append-only
// trajectory JSONL and render the per-scenario trend report.
func runPerfHistory(cfg config, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfg.perfHistory)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pts, err := experiment.ReadTrajectory(data)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fmt.Fprint(stdout, experiment.HistoryReport(pts))
	return 0
}

// runSimObs dispatches -simobs: run the selected registry scenarios
// sequentially under the self-observability collector, print each
// scenario's telemetry report plus the cross-scenario feasibility
// table, and write the machine artifacts when asked.
func runSimObs(cfg config, stdout, stderr io.Writer) int {
	var ids []string
	if cfg.simobsOnly != "" {
		ids = strings.Split(cfg.simobsOnly, ",")
	}
	results, err := experiment.RunSimObs(ids, simobs.Config{})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	failed := 0
	var reports []*simobs.Report
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Fprintf(stderr, "FAILED %s: %v\n", r.Spec.ID, r.Err)
			continue
		}
		fmt.Fprintln(stdout, r.Report.String())
		reports = append(reports, r.Report)
	}
	fmt.Fprintln(stdout, experiment.FeasibilityTable(results))
	if cfg.simobsJSONL != "" {
		var buf strings.Builder
		for _, rep := range reports {
			if err := rep.WriteJSONL(&buf); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
		if err := os.WriteFile(cfg.simobsJSONL, []byte(buf.String()), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if cfg.simobsPprof != "" {
		var buf bytes.Buffer
		if err := simobs.WritePprofAll(&buf, reports); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := os.WriteFile(cfg.simobsPprof, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// runDiff dispatches the -diff mode: compare two pisobench JSON
// reports (evaluation or perf — the kind is sniffed from the files)
// and print what moved. Report-only: any readable pair exits 0.
func runDiff(cfg config, stdout, stderr io.Writer) int {
	if len(cfg.diffArgs) != 2 {
		fmt.Fprintln(stderr, "usage: pisobench -diff OLD.json NEW.json")
		return 2
	}
	oldData, err := os.ReadFile(cfg.diffArgs[0])
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	newData, err := os.ReadFile(cfg.diffArgs[1])
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	out, err := experiment.Diff(oldData, newData, cfg.diffArgs[0], cfg.diffArgs[1])
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fmt.Fprintln(stdout, out)
	return 0
}

// run executes one pisobench invocation, writing tables to stdout and
// diagnostics to stderr, and returns the process exit code.
func run(cfg config, stdout, stderr io.Writer) int {
	show := func(t *stats.Table) {
		if cfg.markdown {
			fmt.Fprintln(stdout, t.Markdown())
		} else {
			fmt.Fprintln(stdout, t)
		}
	}

	if kind, err := sim.ParseQueueKind(cfg.eventq); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	} else {
		sim.SetDefaultQueue(kind)
	}

	if cfg.soak {
		return runSoak(cfg, stdout, stderr)
	}
	if cfg.perfHistory != "" {
		return runPerfHistory(cfg, stdout, stderr)
	}
	if cfg.perf {
		return runPerf(cfg, stdout, stderr)
	}
	if cfg.simobs {
		return runSimObs(cfg, stdout, stderr)
	}
	if cfg.diff {
		return runDiff(cfg, stdout, stderr)
	}
	if cfg.compare {
		show(experiment.RunComparison().Table())
		return 0
	}
	if cfg.list {
		for _, s := range experiment.Registry() {
			alias := ""
			if len(s.Aliases) > 0 {
				alias = " (alias " + strings.Join(s.Aliases, ", ") + ")"
			}
			fmt.Fprintf(stdout, "%-16s %s%s\n", s.ID, s.Title, alias)
		}
		return 0
	}

	specs := experiment.Filter(experiment.Registry(), cfg.only, cfg.short)
	if len(specs) == 0 {
		fmt.Fprintf(stderr, "unknown experiment %q; known ids: %s\n",
			cfg.only, strings.Join(experiment.IDs(), ", "))
		return 2
	}

	if !cfg.markdown {
		printHeader(stdout)
	}

	start := time.Now()
	results := experiment.RunAll(specs, cfg.parallel)
	wall := time.Since(start)

	failed := 0
	for _, r := range results {
		if r.Err != nil {
			// The suite keeps going past a dead experiment; report it
			// loudly with a focused rerun and fail the invocation at the
			// end, after every survivor has printed.
			failed++
			fmt.Fprintf(stderr, "FAILED %s: %v\n  rerun just this one: pisobench -only %s\n",
				r.Spec.ID, r.Err, r.Spec.ID)
			continue
		}
		for _, sec := range r.Output.Sections {
			// A multi-section spec matched via an alias prints only the
			// section that alias names (-only fig3 skips fig2's table).
			// Single-section specs print their one table under any alias.
			if cfg.only != "" && len(r.Output.Sections) > 1 &&
				cfg.only != r.Spec.ID && cfg.only != sec.ID {
				continue
			}
			show(sec.Table)
			if sec.Bars != nil && !cfg.markdown {
				fmt.Fprintln(stdout, stats.Bars("", sec.Bars.Labels, sec.Bars.Values, 40))
			}
		}
	}
	if cfg.short && cfg.only == "" {
		fmt.Fprintln(stderr, "(-short: skipping ablations)")
	}

	bench := experiment.BenchReport(results, cfg.parallel, cfg.short, wall)
	if cfg.jsonPath != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := os.WriteFile(cfg.jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if cfg.metricsPath != "" {
		var buf strings.Builder
		if err := experiment.MetricsJSONL(results, &buf); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := os.WriteFile(cfg.metricsPath, []byte(buf.String()), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if cfg.profilePath != "" {
		var buf strings.Builder
		if err := experiment.ProfileJSONL(results, &buf); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := os.WriteFile(cfg.profilePath, []byte(buf.String()), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if cfg.latencyPath != "" {
		var buf strings.Builder
		if err := experiment.LatencyJSONL(results, &buf); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := os.WriteFile(cfg.latencyPath, []byte(buf.String()), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if cfg.controlPath != "" {
		var buf strings.Builder
		if err := experiment.ControllerJSONL(results, &buf); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := os.WriteFile(cfg.controlPath, []byte(buf.String()), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	fmt.Fprintf(stderr, "%d experiments, %d events in %.2fs wall (parallel=%d, %.2fM events/s)\n",
		len(results), bench.Events, wall.Seconds(), cfg.parallel,
		float64(bench.Events)/wall.Seconds()/1e6)
	if failed > 0 {
		fmt.Fprintf(stderr, "%d of %d experiments failed\n", failed, len(results))
		return 1
	}
	return 0
}

func printHeader(w io.Writer) {
	fmt.Fprintln(w, "perfiso evaluation — reproduction of Verghese, Gupta & Rosenblum,")
	fmt.Fprintln(w, "\"Performance Isolation\", ASPLOS 1998. Table 1 machines:")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "  Pmake8:           8 CPUs, 44 MB, 8 fast disks; 8 SPUs, pmake jobs")
	fmt.Fprintln(w, "  CPU isolation:    8 CPUs, 64 MB; Ocean vs 3x Flashlite + 3x VCS")
	fmt.Fprintln(w, "  Memory isolation: 4 CPUs, 16 MB; pmake jobs under memory pressure")
	fmt.Fprintln(w, "  Disk isolation:   2 CPUs, 44 MB, one shared HP 97560 (seek x1/2)")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Table 2 schemes: SMP (unconstrained sharing), Quo (fixed quotas),")
	fmt.Fprintln(w, "PIso (performance isolation). Normalized numbers use SMP = 100.")
	fmt.Fprintln(w)
}

// Pisobench regenerates every table and figure of the paper's
// evaluation (§4) plus the ablation studies, printing paper-style text
// tables (or Markdown with -markdown). With -short it skips the
// ablations.
//
// Usage:
//
//	pisobench [-short] [-markdown] [-only fig2|fig3|fig5|fig7|tab3|tab4]
package main

import (
	"flag"
	"fmt"
	"os"

	"perfiso/internal/experiment"
	"perfiso/internal/stats"
)

func main() {
	short := flag.Bool("short", false, "skip the ablation studies")
	only := flag.String("only", "", "run a single experiment: fig2, fig3, fig5, fig7, tab3, tab4")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored Markdown tables")
	compare := flag.Bool("compare", false, "print only the paper-vs-measured comparison")
	flag.Parse()

	show := func(t *stats.Table) {
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t)
		}
	}

	if *compare {
		show(experiment.RunComparison().Table())
		return
	}

	if !*markdown {
		printHeader()
	}

	want := func(id string) bool { return *only == "" || *only == id }

	if want("fig2") || want("fig3") {
		p := experiment.RunPmake8(experiment.Pmake8Options{})
		if want("fig2") {
			show(p.Fig2Table())
			if !*markdown {
				var labels []string
				var vals []float64
				for _, r := range p.Fig2Rows() {
					labels = append(labels, r.Scheme.String()+" B", r.Scheme.String()+" U")
					vals = append(vals, r.Balanced, r.Unbalanced)
				}
				fmt.Println(stats.Bars("", labels, vals, 40))
			}
		}
		if want("fig3") {
			show(p.Fig3Table())
			if !*markdown {
				var labels []string
				var vals []float64
				for _, r := range p.Fig3Rows() {
					labels = append(labels, r.Scheme.String())
					vals = append(vals, r.Heavy)
				}
				fmt.Println(stats.Bars("", labels, vals, 40))
			}
		}
	}
	if want("fig5") {
		show(experiment.RunCPUIso(experiment.CPUIsoOptions{}).Table())
	}
	if want("fig7") {
		show(experiment.RunMemIso(experiment.MemIsoOptions{}).Table())
	}
	if want("tab3") {
		show(experiment.RunTable3(experiment.DiskOptions{}).Table())
	}
	if want("tab4") {
		show(experiment.RunTable4(experiment.DiskOptions{}).Table())
	}
	if *only != "" {
		return
	}
	if *short {
		fmt.Fprintln(os.Stderr, "(-short: skipping ablations)")
		return
	}
	show(experiment.RunAblationBWThreshold(nil).Table())
	show(experiment.RunAblationReserve(nil).Table())
	show(experiment.RunAblationInodeLock().Table())
	show(experiment.RunAblationPageInsert().Table())
	show(experiment.RunAblationRevocation().Table())
	show(experiment.RunAblationAffinity().Table())
	show(experiment.RunAblationGang().Table())
	show(experiment.RunAblationNetwork().Table())
	show(experiment.RunServerLatency().Table())
}

func printHeader() {
	fmt.Println("perfiso evaluation — reproduction of Verghese, Gupta & Rosenblum,")
	fmt.Println("\"Performance Isolation\", ASPLOS 1998. Table 1 machines:")
	fmt.Println()
	fmt.Println("  Pmake8:           8 CPUs, 44 MB, 8 fast disks; 8 SPUs, pmake jobs")
	fmt.Println("  CPU isolation:    8 CPUs, 64 MB; Ocean vs 3x Flashlite + 3x VCS")
	fmt.Println("  Memory isolation: 4 CPUs, 16 MB; pmake jobs under memory pressure")
	fmt.Println("  Disk isolation:   2 CPUs, 44 MB, one shared HP 97560 (seek x1/2)")
	fmt.Println()
	fmt.Println("Table 2 schemes: SMP (unconstrained sharing), Quo (fixed quotas),")
	fmt.Println("PIso (performance isolation). Normalized numbers use SMP = 100.")
	fmt.Println()
}

// Diskfairness demonstrates §4.5: a 500 KB copy and a 5 MB copy share
// one HP 97560 disk. Under IRIX's position-only C-SCAN (Pos) the big
// contiguous stream locks out the small one; blind round-robin (Iso)
// fixes fairness but pays extra positioning latency; the paper's PIso
// policy gets both: the small copy finishes first AND the disk keeps
// its sequential efficiency.
package main

import (
	"fmt"

	"perfiso"
)

func main() {
	fmt.Println("Big (5 MB) vs small (500 KB) copy sharing one HP 97560:")
	fmt.Println()
	fmt.Printf("%-6s %-12s %-12s %-14s\n", "policy", "small (s)", "big (s)", "avg pos (ms)")
	for _, policy := range []string{"Pos", "Iso", "PIso"} {
		sys := perfiso.New(perfiso.DiskIsolationMachine(), perfiso.PIso,
			perfiso.Options{DiskSched: policy})
		u1 := sys.NewSPU("small-user", 1)
		u2 := sys.NewSPU("big-user", 1)
		sys.SetAffinity(u1.ID(), 0)
		sys.SetAffinity(u2.ID(), 0) // same disk: that's the point
		sys.Boot()
		big := sys.Copy(u2, "big", perfiso.DefaultCopy(5*1024*1024))
		small := sys.Copy(u1, "small", perfiso.DefaultCopy(500*1024))
		sys.Run()
		_, _, pos := sys.DiskStats(0)
		fmt.Printf("%-6s %-12.2f %-12.2f %-14.2f\n",
			policy, small.ResponseTime().Seconds(), big.ResponseTime().Seconds(), pos*1000)
	}
	fmt.Println()
	fmt.Println("Compare the paper's Table 4: Pos 0.93/0.81s, Iso 0.56/1.22s,")
	fmt.Println("PIso 0.28/0.96s — the same ordering on our simulated disk.")
}

// Quickstart: two users share an 8-CPU machine. Alice runs a short
// build; Bob floods the machine with compute jobs. Under performance
// isolation Alice's build time barely moves; under plain SMP sharing it
// balloons. This is the paper's headline claim in thirty lines.
package main

import (
	"fmt"

	"perfiso"
)

func buildTime(scheme perfiso.Scheme, noisy bool) perfiso.Time {
	sys := perfiso.New(perfiso.CPUIsolationMachine(), scheme, perfiso.Options{})
	alice := sys.NewSPU("alice", 1)
	bob := sys.NewSPU("bob", 1)
	sys.Boot()

	build := sys.Pmake(alice, "alice-build", perfiso.DefaultPmake())
	if noisy {
		for i := 0; i < 16; i++ {
			sys.ComputeBound(bob, fmt.Sprintf("bob-%d", i), perfiso.ComputeParams{
				Total: 20 * perfiso.Second, Chunk: 100 * perfiso.Millisecond, WSSPages: 100,
			})
		}
	}
	sys.Run()
	return build.ResponseTime()
}

func main() {
	fmt.Println("Alice's build time with Bob's 16 compute hogs on the same machine:")
	fmt.Println()
	for _, scheme := range []perfiso.Scheme{perfiso.SMP, perfiso.Quo, perfiso.PIso} {
		quiet := buildTime(scheme, false)
		noisy := buildTime(scheme, true)
		fmt.Printf("  %-5s quiet %6.2fs   noisy %6.2fs   (%+.0f%%)\n",
			scheme, quiet.Seconds(), noisy.Seconds(),
			100*(float64(noisy)/float64(quiet)-1))
	}
	fmt.Println()
	fmt.Println("PIso keeps Alice isolated like Quo, while still lending idle")
	fmt.Println("resources to Bob like SMP (see the other examples).")
}

// Interactive demonstrates response-time isolation: an interactive
// service shares the machine with a batch SPU running sixteen compute
// hogs. Under SMP, request latencies balloon with the load. Under PIso
// the service's own CPUs come back within one 10 ms clock tick; with
// IPI revocation (§3.1's suggestion for "response time performance
// isolation guarantees") they come back immediately and the tail
// disappears.
package main

import (
	"fmt"

	"perfiso"
)

func run(scheme perfiso.Scheme, ipi bool) (mean, max perfiso.Time) {
	sys := perfiso.New(perfiso.CPUIsolationMachine(), scheme, perfiso.Options{IPIRevoke: ipi})
	svcSPU := sys.NewSPU("service", 1)
	batchSPU := sys.NewSPU("batch", 1)
	sys.Boot()

	svc := sys.Server(svcSPU, "api", perfiso.DefaultServer())
	for i := 0; i < 16; i++ {
		sys.ComputeBound(batchSPU, fmt.Sprintf("batch-%d", i), perfiso.ComputeParams{
			Total: 20 * perfiso.Second, Chunk: 100 * perfiso.Millisecond, WSSPages: 50,
		})
	}
	end := sys.Run()
	lat := svc.Latencies(end)
	return perfiso.Time(lat.Mean() * float64(perfiso.Second)), svc.MaxLatency(end)
}

func main() {
	fmt.Println("Interactive service (2 ms requests, one every 25 ms) sharing the")
	fmt.Println("machine with 16 batch compute hogs:")
	fmt.Println()
	fmt.Printf("  %-12s %-14s %-14s\n", "config", "mean latency", "max latency")
	configs := []struct {
		name   string
		scheme perfiso.Scheme
		ipi    bool
	}{
		{"SMP", perfiso.SMP, false},
		{"Quo", perfiso.Quo, false},
		{"PIso (tick)", perfiso.PIso, false},
		{"PIso (IPI)", perfiso.PIso, true},
	}
	for _, c := range configs {
		mean, max := run(c.scheme, c.ipi)
		fmt.Printf("  %-12s %-14s %-14s\n", c.name, mean, max)
	}
	fmt.Println()
	fmt.Println("PIso bounds the tail at the <=10 ms revocation latency; IPI")
	fmt.Println("revocation removes even that, as §3.1 predicts.")
}

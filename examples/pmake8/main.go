// Pmake8 reproduces the paper's first workload (Figures 1-3): eight
// users on an eight-way machine, each running parallel-make jobs. The
// balanced configuration gives each SPU one job; the unbalanced one
// doubles the load on SPUs 5-8. The program prints the normalized
// response times for the lightly- and heavily-loaded groups under all
// three allocation schemes.
package main

import (
	"fmt"

	"perfiso"
)

// run executes one configuration and returns the mean job response of
// the light (SPUs 1-4) and heavy (SPUs 5-8) groups.
func run(scheme perfiso.Scheme, unbalanced bool) (light, heavy perfiso.Time) {
	sys := perfiso.New(perfiso.Pmake8Machine(), scheme, perfiso.Options{})
	var spus []*perfiso.SPU
	for i := 0; i < 8; i++ {
		s := sys.NewSPU(fmt.Sprintf("user%d", i+1), 1)
		sys.SetAffinity(s.ID(), i) // one fast disk per user
		spus = append(spus, s)
	}
	sys.Boot()
	var lightJobs, heavyJobs []*perfiso.Process
	for i, s := range spus {
		jobs := 1
		if unbalanced && i >= 4 {
			jobs = 2
		}
		for j := 0; j < jobs; j++ {
			p := sys.Pmake(s, fmt.Sprintf("pmake%d.%d", i, j), perfiso.DefaultPmake())
			if i < 4 {
				lightJobs = append(lightJobs, p)
			} else {
				heavyJobs = append(heavyJobs, p)
			}
		}
	}
	sys.Run()
	mean := func(ps []*perfiso.Process) perfiso.Time {
		var sum perfiso.Time
		for _, p := range ps {
			sum += p.ResponseTime()
		}
		return sum / perfiso.Time(len(ps))
	}
	return mean(lightJobs), mean(heavyJobs)
}

func main() {
	baseLight, _ := run(perfiso.SMP, false)
	norm := func(t perfiso.Time) float64 { return 100 * float64(t) / float64(baseLight) }

	fmt.Println("Pmake8 workload (normalized to SMP balanced = 100)")
	fmt.Println()
	fmt.Println("Isolation: light SPUs 1-4          Sharing: heavy SPUs 5-8")
	fmt.Println("scheme  balanced  unbalanced       scheme  unbalanced")
	for _, scheme := range []perfiso.Scheme{perfiso.SMP, perfiso.Quo, perfiso.PIso} {
		lb, _ := run(scheme, false)
		lu, hu := run(scheme, true)
		fmt.Printf("%-6s  %8.0f  %10.0f       %-6s  %10.0f\n",
			scheme, norm(lb), norm(lu), scheme, norm(hu))
	}
	fmt.Println()
	fmt.Println("Paper (Figs 2-3): SMP light jobs degrade ~56% when load doubles;")
	fmt.Println("Quo heavy jobs hit ~187; PIso holds light jobs flat AND keeps the")
	fmt.Println("heavy jobs at SMP-like ~146.")
}

// Unequalshares demonstrates the §2.1 machine contract: "project A owns
// a third of the machine and project B owns two thirds." SPU weights
// express the contract; space partitioning, memory division and disk
// bandwidth shares all follow it. Identical jobs then finish roughly in
// inverse proportion to their owners' shares.
package main

import (
	"fmt"

	"perfiso"
)

func main() {
	sys := perfiso.New(perfiso.CPUIsolationMachine(), perfiso.Quo, perfiso.Options{})
	projA := sys.NewSPU("project-A", 1) // one third
	projB := sys.NewSPU("project-B", 2) // two thirds
	sys.Boot()

	params := perfiso.DefaultOcean()
	params.Procs = 8 // saturate each SPU's CPUs so shares dominate
	params.Iterations = 20
	ja := sys.Ocean(projA, "A-sim", params)
	jb := sys.Ocean(projB, "B-sim", params)
	sys.Run()

	fmt.Println("Identical 8-process simulations under a 1:2 machine contract (Quo):")
	fmt.Printf("  project A (weight 1): %6.2fs\n", ja.ResponseTime().Seconds())
	fmt.Printf("  project B (weight 2): %6.2fs\n", jb.ResponseTime().Seconds())
	fmt.Printf("  ratio A/B:            %6.2f (contract says ~2)\n",
		float64(ja.ResponseTime())/float64(jb.ResponseTime()))
	fmt.Println()
	fmt.Println("Switch the scheme to PIso and each project can still borrow the")
	fmt.Println("other's idle cycles without breaking the contract.")
}

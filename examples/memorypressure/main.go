// Memorypressure demonstrates §4.4: a 16 MB machine split between two
// SPUs, where one SPU runs two memory-hungry jobs. Fixed quotas make it
// thrash against its own limit even though the neighbour's memory sits
// idle; performance isolation lends the idle pages (above the 8%
// Reserve Threshold) and revokes them when the owner returns.
package main

import (
	"fmt"

	"perfiso"
)

func main() {
	fmt.Println("Two jobs crammed into one SPU of a 16 MB machine:")
	fmt.Println()
	fmt.Printf("%-6s %-18s %-10s %-12s %-8s\n", "scheme", "busy SPU resp (s)", "reclaims", "dirty wr", "denials")
	for _, scheme := range []perfiso.Scheme{perfiso.SMP, perfiso.Quo, perfiso.PIso} {
		sys := perfiso.New(perfiso.MemIsolationMachine(), scheme, perfiso.Options{})
		idle := sys.NewSPU("idle-user", 1)
		busy := sys.NewSPU("busy-user", 1)
		sys.SetAffinity(idle.ID(), 0)
		sys.SetAffinity(busy.ID(), 1)
		sys.Boot()
		// The idle user runs one quick job and goes away.
		sys.Pmake(idle, "small-build", perfiso.MemPmake())
		j1 := sys.Pmake(busy, "big-build-1", perfiso.MemPmake())
		j2 := sys.Pmake(busy, "big-build-2", perfiso.MemPmake())
		sys.Run()
		rep := sys.Report()
		mean := (j1.ResponseTime() + j2.ResponseTime()) / 2
		fmt.Printf("%-6s %-18.2f %-10d %-12d %-8d\n",
			scheme, mean.Seconds(), rep.PageReclaims, rep.DirtyWrites, rep.MemoryDenials)
	}
	fmt.Println()
	fmt.Println("Quo pays swap-ins against its fixed quota; PIso borrows the idle")
	fmt.Println("user's pages and lands near SMP (the paper's Figure 7, top).")
}

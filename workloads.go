package perfiso

import "fmt"

// WorkloadSpec is one canonical single-run scenario — the Table 1
// machine/workload combinations — registered by name so cmd/pisosim's
// -workload lookup, tests, and library users resolve them through one
// place instead of hand-rolled switches.
type WorkloadSpec struct {
	// Name is the -workload identifier.
	Name string
	// Desc is a one-line description.
	Desc string
	// Unbalanced reports whether the unbalanced flag changes this
	// workload's job distribution.
	Unbalanced bool
	// Build boots a System with the workload's SPUs and jobs attached.
	// The caller runs it (sys.Run()) and reads sys.Jobs().
	Build func(scheme Scheme, opts Options, unbalanced bool) *System
}

// Workloads returns the registry of canonical workloads in presentation
// order.
func Workloads() []WorkloadSpec {
	return []WorkloadSpec{
		{
			Name: "pmake8", Desc: "8 CPUs, 8 SPUs, pmake jobs (Figures 2-3)", Unbalanced: true,
			Build: buildPmake8Workload,
		},
		{
			Name: "cpu", Desc: "Ocean vs 3x Flashlite + 3x VCS (Figure 5)",
			Build: buildCPUWorkload,
		},
		{
			Name: "mem", Desc: "pmake jobs under memory pressure (Figure 7)", Unbalanced: true,
			Build: buildMemWorkload,
		},
		{
			Name: "disk", Desc: "pmake vs 20 MB copy on one shared disk (Table 3)",
			Build: buildDiskWorkload,
		},
		{
			Name: "tenants", Desc: "4 open-arrival server tenants vs a noisy neighbor (tail latency)",
			Build: buildTenantsWorkload,
		},
	}
}

// WorkloadNames returns every registered workload name in order.
func WorkloadNames() []string {
	specs := Workloads()
	out := make([]string, len(specs))
	for i, w := range specs {
		out[i] = w.Name
	}
	return out
}

// LookupWorkload resolves a workload name against the registry.
func LookupWorkload(name string) (WorkloadSpec, bool) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, true
		}
	}
	return WorkloadSpec{}, false
}

func buildPmake8Workload(scheme Scheme, opts Options, unbalanced bool) *System {
	sys := New(Pmake8Machine(), scheme, opts)
	var spus []*SPU
	for i := 0; i < 8; i++ {
		s := sys.NewSPU(fmt.Sprintf("user%d", i+1), 1)
		sys.SetAffinity(s.ID(), i)
		spus = append(spus, s)
	}
	sys.Boot()
	for i, s := range spus {
		jobs := 1
		if unbalanced && i >= 4 {
			jobs = 2
		}
		for j := 0; j < jobs; j++ {
			sys.Pmake(s, fmt.Sprintf("pmake%d.%d", i+1, j), DefaultPmake())
		}
	}
	return sys
}

func buildCPUWorkload(scheme Scheme, opts Options, _ bool) *System {
	sys := New(CPUIsolationMachine(), scheme, opts)
	s1 := sys.NewSPU("ocean", 1)
	s2 := sys.NewSPU("eda", 1)
	sys.Boot()
	sys.Ocean(s1, "ocean", DefaultOcean())
	for i := 0; i < 3; i++ {
		sys.ComputeBound(s2, fmt.Sprintf("flashlite%d", i), DefaultFlashlite())
		sys.ComputeBound(s2, fmt.Sprintf("vcs%d", i), DefaultVCS())
	}
	return sys
}

func buildMemWorkload(scheme Scheme, opts Options, unbalanced bool) *System {
	sys := New(MemIsolationMachine(), scheme, opts)
	s1 := sys.NewSPU("spu1", 1)
	s2 := sys.NewSPU("spu2", 1)
	sys.SetAffinity(s1.ID(), 0)
	sys.SetAffinity(s2.ID(), 1)
	sys.Boot()
	sys.Pmake(s1, "job1", MemPmake())
	sys.Pmake(s2, "job2a", MemPmake())
	if unbalanced {
		sys.Pmake(s2, "job2b", MemPmake())
	}
	return sys
}

func buildTenantsWorkload(scheme Scheme, opts Options, _ bool) *System {
	// Latency tracking is the point of this workload, so it is always
	// on; -latency only decides whether the JSONL is also written out.
	if opts.LatencyWindow == 0 {
		opts.LatencyWindow = 500 * Millisecond
	}
	if scheme == PIso {
		// Tick-bounded revocation would put a scheduler quantum into
		// every tenant's tail; the §3.1 IPI suggestion is what makes
		// shared-machine p99 track the solo baseline.
		opts.IPIRevoke = true
	}
	sys := New(Pmake8Machine(), scheme, opts)
	var spus []*SPU
	for _, ts := range TenantSet() {
		spus = append(spus, sys.NewSPU(ts.Name, ts.Weight))
	}
	noise := sys.NewSPU("noise", 4)
	sys.Boot()
	for i, ts := range TenantSet() {
		sys.OpenServer(spus[i], ts.Name, ts.Server)
	}
	for i := 0; i < 8; i++ {
		sys.ComputeBound(noise, fmt.Sprintf("hog%d", i),
			ComputeParams{Total: 12 * Second, Chunk: 100 * Millisecond, WSSPages: 50})
	}
	return sys
}

func buildDiskWorkload(scheme Scheme, opts Options, _ bool) *System {
	sys := New(DiskIsolationMachine(), scheme, opts)
	s1 := sys.NewSPU("pmake", 1)
	s2 := sys.NewSPU("copy", 1)
	sys.SetAffinity(s1.ID(), 0)
	sys.SetAffinity(s2.ID(), 0)
	sys.Boot()
	sys.Pmake(s1, "pmake", DiskPmake())
	sys.Copy(s2, "copy", DefaultCopy(20*1024*1024))
	return sys
}

package perfiso_test

import (
	"fmt"

	"perfiso"
)

// Example shows the basic flow: build a machine, declare SPUs, attach a
// workload, run, and read the result. The simulation is deterministic,
// so the output is exact.
func Example() {
	sys := perfiso.New(perfiso.CPUIsolationMachine(), perfiso.PIso, perfiso.Options{})
	alice := sys.NewSPU("alice", 1)
	sys.NewSPU("bob", 1)
	sys.Boot()

	job := sys.Custom(alice, "script", []perfiso.Step{
		perfiso.Touch{Pages: 10},
		perfiso.Compute{D: 250 * perfiso.Millisecond},
	})
	sys.Run()
	fmt.Printf("response: %s\n", job.ResponseTime())
	// Output:
	// response: 250ms
}

// ExampleSystem_Server runs an interactive service on an idle machine:
// every request completes in exactly its service time.
func ExampleSystem_Server() {
	sys := perfiso.New(perfiso.CPUIsolationMachine(), perfiso.PIso, perfiso.Options{})
	svc := sys.NewSPU("service", 1)
	sys.Boot()

	job := sys.Server(svc, "api", perfiso.ServerParams{
		Requests:     10,
		Interarrival: 20 * perfiso.Millisecond,
		Service:      3 * perfiso.Millisecond,
	})
	end := sys.Run()
	fmt.Printf("p50: %s  max: %s\n", job.LatencyQuantile(end, 0.5), job.MaxLatency(end))
	// Output:
	// p50: 3ms  max: 3ms
}

// ExampleSystem_SetLendPreference shows §3.1's lending preference: an
// SPU that lends its idle CPUs only to a chosen neighbour.
func ExampleSystem_SetLendPreference() {
	sys := perfiso.New(perfiso.CPUIsolationMachine(), perfiso.PIso, perfiso.Options{})
	owner := sys.NewSPU("owner", 1)
	friend := sys.NewSPU("friend", 1)
	sys.SetLendPreference(owner, friend) // lend idle CPUs only to friend
	sys.Boot()

	// friend oversubscribes its own 4 CPUs with 8 equal threads; with
	// owner's 4 idle CPUs on loan they run fully parallel.
	var jobs []*perfiso.Process
	for i := 0; i < 8; i++ {
		jobs = append(jobs, sys.Custom(friend, "worker", []perfiso.Step{
			perfiso.Compute{D: 100 * perfiso.Millisecond},
		}))
	}
	sys.Run()
	fmt.Printf("last worker done at %s\n", jobs[7].ResponseTime())
	// Output:
	// last worker done at 100ms
}

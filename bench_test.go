package perfiso

// One benchmark per table/figure of the paper's evaluation plus one per
// ablation, regenerating the corresponding experiment each iteration.
// Beyond ns/op, each bench reports the experiment's headline quantity
// as a custom metric so `go test -bench` output doubles as a compact
// reproduction summary:
//
//	go test -bench=. -benchmem
//
// (cmd/pisobench prints the full tables.)

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/experiment"
)

// BenchmarkFig2Pmake8Isolation regenerates Figure 2: response time of
// the lightly-loaded SPUs, balanced vs unbalanced. Reported metric:
// SMP's unbalanced normalized response (the isolation failure; ~156 in
// the paper) and PIso's (~100).
func BenchmarkFig2Pmake8Isolation(b *testing.B) {
	var r experiment.Pmake8Result
	for i := 0; i < b.N; i++ {
		r = experiment.RunPmake8(experiment.Pmake8Options{})
	}
	for _, row := range r.Fig2Rows() {
		switch row.Scheme {
		case core.SMP:
			b.ReportMetric(row.Unbalanced, "SMP_light_U_pct")
		case core.PIso:
			b.ReportMetric(row.Unbalanced, "PIso_light_U_pct")
		}
	}
}

// BenchmarkFig3Pmake8Sharing regenerates Figure 3: heavy SPUs in the
// unbalanced run. Paper: SMP 156, Quo 187, PIso 146.
func BenchmarkFig3Pmake8Sharing(b *testing.B) {
	var r experiment.Pmake8Result
	for i := 0; i < b.N; i++ {
		r = experiment.RunPmake8(experiment.Pmake8Options{})
	}
	for _, row := range r.Fig3Rows() {
		b.ReportMetric(row.Heavy, row.Scheme.String()+"_heavy_pct")
	}
}

// BenchmarkFig5CPUIsolation regenerates Figure 5. Paper shape: Ocean
// improves under Quo/PIso; Flashlite and VCS suffer under Quo and stay
// near SMP under PIso.
func BenchmarkFig5CPUIsolation(b *testing.B) {
	var r experiment.CPUIsoResult
	for i := 0; i < b.N; i++ {
		r = experiment.RunCPUIso(experiment.CPUIsoOptions{})
	}
	for _, row := range r.Rows() {
		b.ReportMetric(row.PIso, row.App+"_PIso_pct")
	}
}

// BenchmarkFig7MemoryIsolation regenerates Figure 7. Paper: SPU1 under
// SMP degrades ~45%; SPU2 under Quo costs ~245 while PIso lands near
// SMP.
func BenchmarkFig7MemoryIsolation(b *testing.B) {
	var r experiment.MemIsoResult
	for i := 0; i < b.N; i++ {
		r = experiment.RunMemIso(experiment.MemIsoOptions{})
	}
	for _, row := range r.SharingRows() {
		b.ReportMetric(row.Unbalanced, row.Scheme.String()+"_spu2_U_pct")
	}
}

// BenchmarkTable3PmakeCopy regenerates Table 3. Paper: PIso cuts the
// pmake's response 39% and its per-request wait 76% vs Pos, costing the
// copy ~23%.
func BenchmarkTable3PmakeCopy(b *testing.B) {
	var r experiment.DiskResult
	for i := 0; i < b.N; i++ {
		r = experiment.RunTable3(experiment.DiskOptions{})
	}
	for _, row := range r.Rows {
		b.ReportMetric(row.RespA.Seconds(), row.Policy+"_pmk_s")
	}
}

// BenchmarkTable4BigSmallCopy regenerates Table 4. Paper: PIso beats
// Iso for both copies while keeping Pos-like positioning latency.
func BenchmarkTable4BigSmallCopy(b *testing.B) {
	var r experiment.DiskResult
	for i := 0; i < b.N; i++ {
		r = experiment.RunTable4(experiment.DiskOptions{})
	}
	for _, row := range r.Rows {
		b.ReportMetric(row.RespA.Seconds(), row.Policy+"_small_s")
		b.ReportMetric(row.AvgLatency.Milliseconds(), row.Policy+"_poslat_ms")
	}
}

// BenchmarkAblationBWThreshold sweeps the §3.3 fairness threshold.
func BenchmarkAblationBWThreshold(b *testing.B) {
	var r experiment.BWThresholdResult
	for i := 0; i < b.N; i++ {
		r = experiment.RunAblationBWThreshold([]float64{1, 256, 1 << 30})
	}
	if y, ok := r.Small.YAt(1); ok {
		b.ReportMetric(y, "small_at_rr_s")
	}
	if y, ok := r.Small.YAt(1 << 30); ok {
		b.ReportMetric(y, "small_at_pos_s")
	}
}

// BenchmarkAblationReserve sweeps the §3.2 Reserve Threshold.
func BenchmarkAblationReserve(b *testing.B) {
	var r experiment.ReserveResult
	for i := 0; i < b.N; i++ {
		r = experiment.RunAblationReserve([]float64{0.02, 0.08, 0.25})
	}
	if y, ok := r.SPU2.YAt(0.08); ok {
		b.ReportMetric(y, "borrower_at_8pct_s")
	}
}

// BenchmarkAblationInodeLock compares the §3.4 lock granularities.
func BenchmarkAblationInodeLock(b *testing.B) {
	var r experiment.InodeLockResult
	for i := 0; i < b.N; i++ {
		r = experiment.RunAblationInodeLock()
	}
	b.ReportMetric(r.MutexResp.Seconds(), "mutex_makespan_s")
	b.ReportMetric(r.RWResp.Seconds(), "rw_makespan_s")
}

// BenchmarkAblationRevocation compares tick vs IPI revocation (§3.1).
func BenchmarkAblationRevocation(b *testing.B) {
	var r experiment.RevocationResult
	for i := 0; i < b.N; i++ {
		r = experiment.RunAblationRevocation()
	}
	b.ReportMetric(r.TickOcean.Seconds(), "tick_ocean_s")
	b.ReportMetric(r.IPIOcean.Seconds(), "ipi_ocean_s")
}

// BenchmarkAblationNetwork runs the §5 network-bandwidth extension.
func BenchmarkAblationNetwork(b *testing.B) {
	var r experiment.NetworkResult
	for i := 0; i < b.N; i++ {
		r = experiment.RunAblationNetwork()
	}
	b.ReportMetric(r.FCFSLight.Seconds(), "fcfs_light_s")
	b.ReportMetric(r.FairLight.Seconds(), "fair_light_s")
}

// BenchmarkAblationGang compares individually- vs gang-scheduled Ocean
// under interference (§3.1's accommodation).
func BenchmarkAblationGang(b *testing.B) {
	var r experiment.GangResult
	for i := 0; i < b.N; i++ {
		r = experiment.RunAblationGang()
	}
	b.ReportMetric(r.PlainOcean.Seconds(), "plain_ocean_s")
	b.ReportMetric(r.GangOcean.Seconds(), "gang_ocean_s")
}

// BenchmarkAblationPageInsert compares page-insert-lock granularities
// (§3.4).
func BenchmarkAblationPageInsert(b *testing.B) {
	var r experiment.PageInsertResult
	for i := 0; i < b.N; i++ {
		r = experiment.RunAblationPageInsert()
	}
	b.ReportMetric(r.CoarseResp.Seconds(), "coarse_makespan_s")
	b.ReportMetric(r.StripedResp.Seconds(), "striped_makespan_s")
}

// BenchmarkServerLatency measures interactive tail latency across
// schemes and revocation mechanisms.
func BenchmarkServerLatency(b *testing.B) {
	var r experiment.ServerLatencyResult
	for i := 0; i < b.N; i++ {
		r = experiment.RunServerLatency()
	}
	if row := r.Row("SMP"); row != nil {
		b.ReportMetric(row.Max.Milliseconds(), "smp_max_ms")
	}
	if row := r.Row("PIso-IPI"); row != nil {
		b.ReportMetric(row.Max.Milliseconds(), "piso_ipi_max_ms")
	}
}

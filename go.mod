module perfiso

go 1.22

// Package perfiso is a library-grade reproduction of "Performance
// Isolation: Sharing and Isolation in Shared-Memory Multiprocessors"
// (Verghese, Gupta & Rosenblum, ASPLOS 1998).
//
// It provides a deterministic simulation of a shared-memory
// multiprocessor server — CPUs with an IRIX-like scheduler, physical
// memory with paging, HP 97560 disks with a file system and buffer
// cache — whose resources are managed through the paper's Software
// Performance Unit (SPU) abstraction. Three allocation schemes are
// built in:
//
//   - SMP:  unconstrained sharing, no isolation (unmodified IRIX 5.3);
//   - Quo:  fixed quotas per SPU, no sharing;
//   - PIso: performance isolation — per-SPU limits plus careful lending
//     of idle resources, revoked when the owners return.
//
// Typical use: pick a Machine, choose a Scheme, create SPUs, attach
// workloads, and Run:
//
//	sys := perfiso.New(perfiso.Pmake8Machine(), perfiso.PIso, perfiso.Options{})
//	alice := sys.NewSPU("alice", 1)
//	bob := sys.NewSPU("bob", 2) // bob owns two thirds of the machine
//	sys.Boot()
//	job := sys.Pmake(alice, "build", perfiso.DefaultPmake())
//	sys.Run()
//	fmt.Println(job.ResponseTime())
//
// The experiment harness that regenerates every table and figure of the
// paper's evaluation lives behind ReproduceAll and the cmd/pisobench
// binary; see EXPERIMENTS.md for paper-vs-measured numbers.
package perfiso

import (
	"io"

	"perfiso/internal/control"
	"perfiso/internal/core"
	"perfiso/internal/disk"
	"perfiso/internal/experiment"
	"perfiso/internal/fault"
	"perfiso/internal/kernel"
	"perfiso/internal/latency"
	"perfiso/internal/machine"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
	"perfiso/internal/workload"
)

// Re-exported core vocabulary. These are aliases, so values flow freely
// between the facade and the harness.
type (
	// Scheme is a whole-machine resource allocation scheme (Table 2).
	Scheme = core.Scheme
	// SPU is one software performance unit: a group of processes and
	// its resource levels.
	SPU = core.SPU
	// SPUID identifies an SPU.
	SPUID = core.SPUID
	// Machine describes simulated hardware.
	Machine = machine.Config
	// Options tunes kernel behaviour (thresholds, revocation, locks).
	Options = kernel.Options
	// Time is simulated time in nanoseconds.
	Time = sim.Time
	// Process is a runnable simulated process.
	Process = proc.Process
	// Step is one instruction of a process program.
	Step = proc.Step
	// PmakeParams shapes a pmake job.
	PmakeParams = workload.PmakeParams
	// CopyParams shapes a file-copy job.
	CopyParams = workload.CopyParams
	// OceanParams shapes the Ocean gang.
	OceanParams = workload.OceanParams
	// ComputeParams shapes a compute-bound process.
	ComputeParams = workload.ComputeParams
	// ServerParams shapes an interactive request-serving workload.
	ServerParams = workload.ServerParams
	// ServerJob is a running interactive service with per-request
	// latency statistics.
	ServerJob = workload.ServerJob
	// OpenServerParams shapes an open-arrival request-serving workload:
	// requests arrive on their own clock (periodic, Poisson, or bursty)
	// whether or not earlier ones finished.
	OpenServerParams = workload.OpenServerParams
	// ArrivalPattern picks the open workload's interarrival process.
	ArrivalPattern = workload.ArrivalPattern
	// TenantSpec names one tenant of a multi-tenant server machine.
	TenantSpec = workload.TenantSpec
	// LatencySLO is a latency objective: a threshold and the fraction
	// of requests that must meet it.
	LatencySLO = latency.SLO
	// ControlConfig tunes the closed-loop SLO entitlement controller;
	// assign one with Enabled to Options.Control to turn static
	// entitlements adaptive (requires Options.LatencyWindow for the
	// burn-rate sensor).
	ControlConfig = control.Config
	// ControlStats counts controller activity (retunes, boosts, sheds,
	// breaker trips) after a run.
	ControlStats = control.Stats
)

// Arrival patterns for OpenServerParams.
const (
	Periodic = workload.Periodic
	Poisson  = workload.Poisson
	Bursty   = workload.Bursty
)

// Program step constructors, re-exported for building custom workloads.
type (
	// Compute consumes CPU time.
	Compute = proc.Compute
	// Sleep blocks without using resources.
	Sleep = proc.Sleep
	// Touch sets the working-set target in pages.
	Touch = proc.Touch
)

// The three allocation schemes of Table 2.
const (
	SMP  = core.SMP
	Quo  = core.Quo
	PIso = core.PIso
)

// Duration units for workload parameters.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Machine configurations from Table 1 (FaultIsolationMachine is the
// extension machine for the isolation-under-faults family).
var (
	Pmake8Machine         = machine.Pmake8
	CPUIsolationMachine   = machine.CPUIsolation
	MemIsolationMachine   = machine.MemoryIsolation
	DiskIsolationMachine  = machine.DiskIsolation
	FaultIsolationMachine = machine.FaultIsolation
)

// FaultPlan is a deterministic fault schedule; assign one to
// Options.Faults before New to degrade the machine mid-run.
type FaultPlan = fault.Plan

// ParseFaults parses a fault schedule spec (see the -faults flag of
// pisosim): comma-separated kind:target:at:duration[:severity] events,
// e.g. "disk-fail:0:1s:2s:0.3,cpu-off:1:500ms:0s".
func ParseFaults(spec string) (*FaultPlan, error) { return fault.ParsePlan(spec) }

// Workload parameter presets.
var (
	DefaultPmake      = workload.DefaultPmake
	MemPmake          = workload.MemPmake
	DiskPmake         = workload.DiskPmake
	DefaultCopy       = workload.DefaultCopy
	DefaultOcean      = workload.DefaultOcean
	DefaultFlashlite  = workload.DefaultFlashlite
	DefaultVCS        = workload.DefaultVCS
	DefaultServer     = workload.DefaultServer
	DefaultOpenServer = workload.DefaultOpenServer
	// TenantSet is the four-tenant mix the open-arrival experiment and
	// the pisosim "tenants" workload share.
	TenantSet = workload.TenantSet
	// DiurnalTenantSet is the phase-shifted diurnal tenant mix the
	// slo-controller experiment drives through the closed loop.
	DiurnalTenantSet = workload.DiurnalTenantSet
)

// System is one booted simulated machine plus its workloads.
type System struct {
	k    *kernel.Kernel
	jobs []*Process
}

// New builds a system on the given hardware and allocation scheme.
func New(m Machine, scheme Scheme, opts Options) *System {
	return &System{k: kernel.New(m, scheme, opts)}
}

// Kernel exposes the underlying kernel for advanced use (disk stats,
// file allocators, custom processes).
func (s *System) Kernel() *kernel.Kernel { return s.k }

// NewSPU creates a user SPU with the given relative weight (1.0 = one
// equal share; weight 2 owns twice as much as weight 1).
func (s *System) NewSPU(name string, weight float64) *SPU {
	return s.k.NewSPU(name, weight)
}

// SetAffinity pins an SPU's swap and file placement to a disk index.
func (s *System) SetAffinity(spu SPUID, disk int) { s.k.SetAffinity(spu, disk) }

// SetLendPreference restricts the SPUs that owner lends idle CPUs to
// (§3.1's "explicitly picked" sharing preference). No borrowers means
// lend to anyone (the default).
func (s *System) SetLendPreference(owner *SPU, borrowers ...*SPU) {
	ids := make([]SPUID, len(borrowers))
	for i, b := range borrowers {
		ids[i] = b.ID()
	}
	s.k.Scheduler().SetLendPreference(owner.ID(), ids...)
}

// Rebalance re-divides CPUs and memory among the active SPUs after
// dynamic SPU creation, suspension, or waking (§2.1).
func (s *System) Rebalance() { s.k.Rebalance() }

// Boot divides resources and starts the kernel daemons. Call after
// creating SPUs and before attaching workloads.
func (s *System) Boot() { s.k.Boot() }

// Pmake attaches a pmake job (parallel compiles) to the SPU.
func (s *System) Pmake(spu *SPU, name string, p PmakeParams) *Process {
	return s.spawn(workload.Pmake(s.k, spu.ID(), name, p))
}

// Copy attaches a file-copy job to the SPU.
func (s *System) Copy(spu *SPU, name string, p CopyParams) *Process {
	return s.spawn(workload.Copy(s.k, spu.ID(), name, p))
}

// Ocean attaches a barrier-synchronized parallel gang to the SPU.
func (s *System) Ocean(spu *SPU, name string, p OceanParams) *Process {
	return s.spawn(workload.Ocean(s.k, spu.ID(), name, p))
}

// ComputeBound attaches a long-running compute process to the SPU.
func (s *System) ComputeBound(spu *SPU, name string, p ComputeParams) *Process {
	return s.spawn(workload.ComputeBound(s.k, spu.ID(), name, p))
}

// Server attaches an interactive request-serving workload to the SPU.
// The returned job exposes per-request latency statistics after Run.
func (s *System) Server(spu *SPU, name string, p ServerParams) *ServerJob {
	job := workload.Server(s.k, spu.ID(), name, p)
	s.spawn(job.Root)
	return job
}

// OpenServer attaches an open-arrival request-serving workload to the
// SPU: requests arrive on the pattern's clock regardless of whether
// earlier ones finished, so queueing delay shows up in the latency
// distribution instead of slowing the arrival stream down. Per-request
// latencies feed the kernel's latency registry when
// Options.LatencyWindow is set.
func (s *System) OpenServer(spu *SPU, name string, p OpenServerParams) *ServerJob {
	job := workload.OpenServer(s.k, spu.ID(), name, p)
	s.spawn(job.Root)
	return job
}

// Custom attaches a process running an arbitrary step program.
func (s *System) Custom(spu *SPU, name string, steps []Step) *Process {
	return s.spawn(proc.New(s.k, spu.ID(), name, steps))
}

func (s *System) spawn(p *Process) *Process {
	s.k.Spawn(p)
	s.jobs = append(s.jobs, p)
	return p
}

// Run drives the simulation until every attached job completes and
// returns the makespan (simulated seconds from boot).
func (s *System) Run() Time { return s.k.Run() }

// Jobs returns the attached jobs in attach order.
func (s *System) Jobs() []*Process { return s.jobs }

// Report summarizes a finished run with machine-wide statistics.
type Report struct {
	Makespan       Time
	CPUUtilization float64
	// PageReclaims counts pages the pager evicted (memory pressure).
	PageReclaims int64
	// DirtyWrites counts evictions that had to write the page first —
	// the §3.2 revocation cost.
	DirtyWrites int64
	// MemoryDenials counts allocation attempts denied at an SPU limit.
	MemoryDenials int64
	DiskRequests  int64
}

// Report collects summary statistics after Run.
func (s *System) Report() Report {
	ms := s.k.Memory().Stat
	r := Report{
		Makespan:       s.k.Engine().Now(),
		CPUUtilization: s.k.Scheduler().Utilization(),
		PageReclaims:   ms.Evictions,
		DirtyWrites:    ms.DirtyWrites,
		MemoryDenials:  ms.Denials,
	}
	for i := 0; i < s.k.NumDisks(); i++ {
		r.DiskRequests += s.k.Disk(i).Total.Requests
	}
	return r
}

// DiskStats returns (requests, mean wait seconds, mean positioning
// seconds) for disk i — the quantities Tables 3 and 4 report.
func (s *System) DiskStats(i int) (requests int64, meanWait, meanPos float64) {
	d := s.k.Disk(i)
	return d.Total.Requests, d.Total.Wait.Mean(), d.Total.Pos.Mean()
}

// WriteMetrics writes the run's metrics registry as deterministic JSONL,
// one metric per line. Enable collection with Options.MetricsPeriod; a
// no-op when observability is off.
func (s *System) WriteMetrics(w io.Writer) error { return s.k.WriteMetrics(w) }

// WriteChromeTrace writes the run as a Chrome trace-event file openable
// in Perfetto or chrome://tracing, one counter track per SPU. Enable
// collection with Options.MetricsPeriod; a no-op when observability is
// off.
func (s *System) WriteChromeTrace(w io.Writer) error { return s.k.WriteChromeTrace(w) }

// WriteLatency writes the run's tail-latency registry as deterministic
// JSONL: one summary line and one SLO line per tracked stream, plus a
// windowed percentile timeline. Enable collection with
// Options.LatencyWindow; an error when latency tracking is off.
func (s *System) WriteLatency(w io.Writer) error { return s.k.WriteLatency(w) }

// WriteController writes the closed-loop controller's decision log as
// deterministic JSONL: one header line with the effective config and
// activity totals, then one line per retune, shed-cap, or breaker
// action in decision order. Enable the loop with Options.Control; an
// error when it is off.
func (s *System) WriteController(w io.Writer) error { return s.k.WriteController(w) }

// WriteProfile writes the run's simulated-time profile as a gzipped
// pprof protobuf: one sample per (SPU, resource, state) bucket with the
// folded stack spu;resource;state, plus one "stolen" sample per
// interference-matrix cell labelled with the culprit SPU. Enable
// collection with Options.Profiled; an error when profiling is off.
func (s *System) WriteProfile(w io.Writer) error { return s.k.WriteProfile(w) }

// WriteSpans writes the run's per-request span trees as deterministic
// JSONL. Enable collection with Options.Profiled; an error when
// profiling is off.
func (s *System) WriteSpans(w io.Writer) error { return s.k.WriteSpans(w) }

// HP97560 exposes the paper's disk model parameters.
var HP97560 = disk.HP97560

// ReproduceAll runs every experiment of the paper's evaluation plus the
// ablations and returns the formatted tables — what cmd/pisobench
// prints. It takes a few seconds of real time.
func ReproduceAll() string {
	out := ""
	p := experiment.RunPmake8(experiment.Pmake8Options{})
	out += p.Fig2Table().String() + "\n"
	out += p.Fig3Table().String() + "\n"
	c := experiment.RunCPUIso(experiment.CPUIsoOptions{})
	out += c.Table().String() + "\n"
	m := experiment.RunMemIso(experiment.MemIsoOptions{})
	out += m.Table().String() + "\n"
	out += experiment.RunTable3(experiment.DiskOptions{}).Table().String() + "\n"
	out += experiment.RunTable4(experiment.DiskOptions{}).Table().String() + "\n"
	out += experiment.RunAblationBWThreshold(nil).Table().String() + "\n"
	out += experiment.RunAblationReserve(nil).Table().String() + "\n"
	out += experiment.RunAblationInodeLock().Table().String() + "\n"
	out += experiment.RunAblationPageInsert().Table().String() + "\n"
	out += experiment.RunAblationRevocation().Table().String() + "\n"
	out += experiment.RunAblationAffinity().Table().String() + "\n"
	out += experiment.RunAblationGang().Table().String() + "\n"
	out += experiment.RunAblationNetwork().Table().String() + "\n"
	out += experiment.RunServerLatency().Table().String() + "\n"
	oa := experiment.RunOpenArrival()
	out += oa.Table().String() + "\n"
	out += oa.BreakdownTable().String() + "\n"
	return out
}

package perfiso

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	sys := New(MemIsolationMachine(), PIso, Options{})
	a := sys.NewSPU("a", 1)
	b := sys.NewSPU("b", 1)
	sys.SetAffinity(a.ID(), 0)
	sys.SetAffinity(b.ID(), 1)
	sys.Boot()
	j1 := sys.Pmake(a, "build", MemPmake())
	j2 := sys.Pmake(b, "build2", MemPmake())
	makespan := sys.Run()
	if makespan <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	if j1.ResponseTime() <= 0 || j2.ResponseTime() <= 0 {
		t.Fatal("jobs have no response time")
	}
	if len(sys.Jobs()) != 2 {
		t.Fatalf("Jobs() = %d", len(sys.Jobs()))
	}
	rep := sys.Report()
	if rep.Makespan < makespan || rep.CPUUtilization <= 0 || rep.DiskRequests == 0 {
		t.Fatalf("report looks empty: %+v", rep)
	}
	if rep.PageReclaims < 0 || rep.DirtyWrites < 0 || rep.MemoryDenials < 0 {
		t.Fatalf("negative counters: %+v", rep)
	}
	if reqs, wait, pos := sys.DiskStats(0); reqs == 0 || wait < 0 || pos < 0 {
		t.Fatalf("disk stats: %d %g %g", reqs, wait, pos)
	}
}

func TestCustomProgram(t *testing.T) {
	sys := New(MemIsolationMachine(), PIso, Options{})
	u := sys.NewSPU("u", 1)
	sys.Boot()
	p := sys.Custom(u, "script", []Step{
		Touch{Pages: 20},
		Compute{D: 50 * Millisecond},
		Sleep{D: 10 * Millisecond},
	})
	sys.Run()
	if p.ResponseTime() < 60*Millisecond {
		t.Fatalf("custom program response %v", p.ResponseTime())
	}
}

func TestUnequalSharesContract(t *testing.T) {
	// §2.1: project A owns a third of the machine and project B two
	// thirds. Under Quo with both saturating, B's identical job should
	// finish roughly twice as fast as A's.
	sys := New(CPUIsolationMachine(), Quo, Options{}) // 8 CPUs... A: ~2.67, B: ~5.33
	a := sys.NewSPU("A", 1)
	b := sys.NewSPU("B", 2)
	sys.Boot()
	params := DefaultOcean()
	params.Procs = 8 // oversubscribe both SPUs so CPU share dominates
	params.Iterations = 10
	ja := sys.Ocean(a, "jobA", params)
	jb := sys.Ocean(b, "jobB", params)
	sys.Run()
	ratio := float64(ja.ResponseTime()) / float64(jb.ResponseTime())
	if ratio < 1.5 || ratio > 2.8 {
		t.Fatalf("A/B response ratio %.2f, want ~2 (B owns twice the machine)", ratio)
	}
}

func TestSchemesExposed(t *testing.T) {
	if SMP.String() != "SMP" || Quo.String() != "Quo" || PIso.String() != "PIso" {
		t.Fatal("scheme constants broken")
	}
}

func TestHP97560Exposed(t *testing.T) {
	p := HP97560()
	if p.Name != "HP97560" {
		t.Fatal("disk model not exposed")
	}
}

func TestIsolationStoryEndToEnd(t *testing.T) {
	// The headline claim on the public API: a victim SPU's job is
	// unaffected by a noisy neighbour under PIso, but suffers under SMP.
	run := func(scheme Scheme, noisy bool) Time {
		sys := New(CPUIsolationMachine(), scheme, Options{})
		victim := sys.NewSPU("victim", 1)
		noise := sys.NewSPU("noise", 1)
		sys.Boot()
		v := sys.ComputeBound(victim, "victim-job", ComputeParams{
			Total: 2 * Second, Chunk: 100 * Millisecond, WSSPages: 100,
		})
		if noisy {
			// 16 noise threads + the victim on 8 CPUs: under global
			// sharing the victim gets ~8/17 of a CPU.
			for i := 0; i < 16; i++ {
				sys.ComputeBound(noise, "noise", ComputeParams{
					Total: 4 * Second, Chunk: 100 * Millisecond, WSSPages: 50,
				})
			}
		}
		sys.Run()
		return v.ResponseTime()
	}
	pisoQuiet := run(PIso, false)
	pisoNoisy := run(PIso, true)
	smpQuiet := run(SMP, false)
	smpNoisy := run(SMP, true)
	if float64(pisoNoisy) > 1.1*float64(pisoQuiet) {
		t.Errorf("PIso victim degraded %v -> %v", pisoQuiet, pisoNoisy)
	}
	if float64(smpNoisy) < 1.3*float64(smpQuiet) {
		t.Errorf("SMP victim unaffected (%v -> %v); noise model too weak", smpQuiet, smpNoisy)
	}
}

func TestReproduceAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full evaluation")
	}
	out := ReproduceAll()
	for _, want := range []string{"Figure 2", "Figure 3", "Figure 5", "Figure 7",
		"Table 3", "Table 4", "BW-difference", "Reserve Threshold",
		"inode-lock", "revocation", "network bandwidth"} {
		if !strings.Contains(out, want) {
			t.Errorf("ReproduceAll output missing %q", want)
		}
	}
}

// Package machine describes the simulated hardware: processor count,
// memory size, and disks. The canned configurations correspond to the
// rows of Table 1 in the paper (the workloads' "System Parameters"
// column), modeling the SGI CHALLENGE machines SimOS was configured as.
package machine

import (
	"fmt"

	"perfiso/internal/disk"
)

// MB is one megabyte in bytes.
const MB = 1 << 20

// Config describes one machine.
type Config struct {
	Name     string
	CPUs     int
	MemoryMB int
	Disks    []disk.Params
}

// Pages returns the number of 4 KB page frames.
func (c Config) Pages() int { return c.MemoryMB * MB / 4096 }

// Validate panics on nonsensical configurations; experiment code builds
// these statically, so failing fast is right.
func (c Config) Validate() {
	if c.CPUs <= 0 || c.MemoryMB <= 0 || len(c.Disks) == 0 {
		panic(fmt.Sprintf("machine: invalid config %+v", c))
	}
}

// fastDisks returns n independent fast disks ("separate fast disks" in
// Table 1), which keep IO from perturbing CPU- and memory-focused
// experiments.
func fastDisks(n int) []disk.Params {
	out := make([]disk.Params, n)
	for i := range out {
		out[i] = disk.FastDisk()
	}
	return out
}

// Pmake8 is the Table 1 row for the Pmake8 workload: 8 CPUs, 44 MB,
// separate fast disks (one per SPU).
func Pmake8() Config {
	return Config{Name: "pmake8", CPUs: 8, MemoryMB: 44, Disks: fastDisks(8)}
}

// CPUIsolation is the Table 1 row for the CPU isolation workload:
// 8 CPUs, 64 MB, separate fast disks.
func CPUIsolation() Config {
	return Config{Name: "cpu-isolation", CPUs: 8, MemoryMB: 64, Disks: fastDisks(2)}
}

// MemoryIsolation is the Table 1 row for the memory isolation workload:
// 4 CPUs, deliberately small 16 MB memory, separate fast disks.
func MemoryIsolation() Config {
	return Config{Name: "memory-isolation", CPUs: 4, MemoryMB: 16, Disks: fastDisks(2)}
}

// FaultIsolation is the machine for the isolation-under-faults family
// (not a Table 1 row — the paper never injects hardware faults): 8
// CPUs, 44 MB, and two separate fast disks so the victim SPU's faulted
// disk is physically distinct from the steady SPU's.
func FaultIsolation() Config {
	return Config{Name: "fault-isolation", CPUs: 8, MemoryMB: 44, Disks: fastDisks(2)}
}

// DiskIsolation is the Table 1 row for the disk bandwidth workloads:
// 2 CPUs, 44 MB, one shared HP 97560 with the paper's seek scaling of
// two ("the model has half the seek latency of the regular disk").
func DiskIsolation() Config {
	hp := disk.HP97560()
	hp.SeekScale = 0.5
	return Config{Name: "disk-isolation", CPUs: 2, MemoryMB: 44, Disks: []disk.Params{hp}}
}

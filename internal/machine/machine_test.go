package machine

import "testing"

func TestCannedConfigsMatchTable1(t *testing.T) {
	cases := []struct {
		cfg   Config
		cpus  int
		memMB int
		disks int
	}{
		{Pmake8(), 8, 44, 8},
		{CPUIsolation(), 8, 64, 2},
		{MemoryIsolation(), 4, 16, 2},
		{DiskIsolation(), 2, 44, 1},
	}
	for _, c := range cases {
		c.cfg.Validate()
		if c.cfg.CPUs != c.cpus || c.cfg.MemoryMB != c.memMB || len(c.cfg.Disks) != c.disks {
			t.Errorf("%s: got %d CPUs / %d MB / %d disks, want %d/%d/%d",
				c.cfg.Name, c.cfg.CPUs, c.cfg.MemoryMB, len(c.cfg.Disks), c.cpus, c.memMB, c.disks)
		}
	}
}

func TestPagesConversion(t *testing.T) {
	if got := MemoryIsolation().Pages(); got != 4096 { // 16 MB / 4 KB
		t.Fatalf("Pages = %d", got)
	}
}

func TestDiskIsolationUsesHalfSeek(t *testing.T) {
	cfg := DiskIsolation()
	if cfg.Disks[0].SeekScale != 0.5 {
		t.Fatal("§4.5 requires the seek scaling factor of two")
	}
	if cfg.Disks[0].Name != "HP97560" {
		t.Fatal("disk workloads use the HP97560 model")
	}
}

func TestValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Config{Name: "bad"}.Validate()
}

package netbw

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

const (
	spuA = core.FirstUserID
	spuB = core.FirstUserID + 1
)

func TestSinglePacketTransmission(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, 10e6, FCFS, 0, 0) // 10 MB/s
	var fin *Packet
	l.Send(&Packet{Bytes: 10000, SPU: spuA, Done: func(p *Packet) { fin = p }})
	eng.Run()
	if fin == nil {
		t.Fatal("packet never transmitted")
	}
	// 10 KB at 10 MB/s = 1 ms + 20 us per-packet cost.
	want := sim.Millisecond + 20*sim.Microsecond
	if fin.Latency() != want {
		t.Fatalf("latency %v, want %v", fin.Latency(), want)
	}
}

func TestEmptyPacketPanics(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, 1e6, FCFS, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Send(&Packet{Bytes: 0, SPU: spuA})
}

func TestBadLineRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLink(sim.NewEngine(), 0, FCFS, 0, 0)
}

func TestFCFSOrder(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, 1e6, FCFS, 0, 0)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		l.Send(&Packet{Bytes: 1000, SPU: spuA, Done: func(*Packet) { order = append(order, i) }})
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

// A burst from one SPU delays the other under FCFS; the Fair policy
// interleaves so the light sender's packets get through — the paper's
// disk-fairness story transplanted to a link.
func TestFairPolicyProtectsLightSender(t *testing.T) {
	run := func(policy Policy) sim.Time {
		eng := sim.NewEngine()
		l := NewLink(eng, 10e6, policy, 8*1024, 0)
		l.SetShare(spuA, 1)
		l.SetShare(spuB, 1)
		// A floods 200 big packets; B sends 10 small ones, all at t=0.
		for i := 0; i < 200; i++ {
			l.Send(&Packet{Bytes: 64 * 1024, SPU: spuA})
		}
		var lastB sim.Time
		for i := 0; i < 10; i++ {
			l.Send(&Packet{Bytes: 1024, SPU: spuB, Done: func(p *Packet) { lastB = p.Finished }})
		}
		eng.Run()
		return lastB
	}
	fcfs := run(FCFS)
	fair := run(Fair)
	if fair >= fcfs {
		t.Fatalf("Fair (%v) did not beat FCFS (%v) for the light sender", fair, fcfs)
	}
	if fair > fcfs/4 {
		t.Fatalf("Fair (%v) should protect the light sender much better than FCFS (%v)", fair, fcfs)
	}
}

// With two saturating senders of equal share, the Fair policy splits
// bytes evenly even when their packet sizes differ.
func TestFairBandwidthSplit(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, 10e6, Fair, 8*1024, 0)
	var sendA, sendB func()
	sendA = func() {
		l.Send(&Packet{Bytes: 32 * 1024, SPU: spuA, Done: func(*Packet) { sendA() }})
	}
	sendB = func() {
		l.Send(&Packet{Bytes: 4 * 1024, SPU: spuB, Done: func(*Packet) { sendB() }})
	}
	for i := 0; i < 4; i++ {
		sendA()
		sendB()
	}
	eng.RunUntil(5 * sim.Second)
	a, b := float64(l.PerSPU[spuA].Bytes), float64(l.PerSPU[spuB].Bytes)
	if a == 0 || b == 0 {
		t.Fatal("a sender starved")
	}
	if ratio := a / b; ratio > 1.5 || ratio < 1/1.5 {
		t.Fatalf("byte split %.2f:1, want ~1:1", ratio)
	}
}

// Weighted shares hold: an SPU with weight 3 gets ~3x the bytes.
func TestWeightedShares(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, 10e6, Fair, 4*1024, 0)
	l.SetShare(spuA, 3)
	l.SetShare(spuB, 1)
	var sendA, sendB func()
	sendA = func() { l.Send(&Packet{Bytes: 8 * 1024, SPU: spuA, Done: func(*Packet) { sendA() }}) }
	sendB = func() { l.Send(&Packet{Bytes: 8 * 1024, SPU: spuB, Done: func(*Packet) { sendB() }}) }
	for i := 0; i < 4; i++ {
		sendA()
		sendB()
	}
	eng.RunUntil(5 * sim.Second)
	ratio := float64(l.PerSPU[spuA].Bytes) / float64(l.PerSPU[spuB].Bytes)
	if ratio < 2.2 || ratio > 3.8 {
		t.Fatalf("weighted split %.2f:1, want ~3:1", ratio)
	}
}

func TestPolicyString(t *testing.T) {
	if FCFS.String() != "FCFS" || Fair.String() != "Fair" {
		t.Fatal("policy names")
	}
}

func TestQueueLenAndStats(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, 1e6, FCFS, 0, 0)
	for i := 0; i < 5; i++ {
		l.Send(&Packet{Bytes: 1000, SPU: spuA})
	}
	if l.QueueLen() != 4 { // one in transmission
		t.Fatalf("QueueLen = %d", l.QueueLen())
	}
	eng.Run()
	if l.Total.Packets != 5 || l.Total.Bytes != 5000 {
		t.Fatalf("totals: %d packets, %d bytes", l.Total.Packets, l.Total.Bytes)
	}
	if l.PerSPU[spuA].Wait.N() != 5 {
		t.Fatal("per-SPU wait samples missing")
	}
}

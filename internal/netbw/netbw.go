// Package netbw extends performance isolation to network bandwidth.
// The paper does not implement this resource but states that "the
// implementation would be similar to that of disk bandwidth, without
// the complication of head position" (§3, §5). A Link therefore reuses
// the decayed per-SPU usage accounting and the fairness criterion of
// the disk scheduler, minus the position term:
//
//   - FCFS ignores SPUs entirely (the unconstrained baseline — a long
//     burst from one SPU delays everyone, like a core dump on a disk).
//   - Fair serves the SPU with the lowest bandwidth usage relative to
//     its share; an SPU whose usage exceeds the mean by the threshold
//     is denied until it passes again. With only a fixed per-packet
//     cost and no seek, the blind and hybrid policies coincide.
package netbw

import (
	"fmt"

	"perfiso/internal/bwmeter"
	"perfiso/internal/core"
	"perfiso/internal/sim"
	"perfiso/internal/stats"
)

// Packet is one transmission request.
type Packet struct {
	Bytes int
	SPU   core.SPUID
	Done  func(*Packet)

	Submitted sim.Time
	Started   sim.Time
	Finished  sim.Time
}

// Wait returns the queueing delay.
func (p *Packet) Wait() sim.Time { return p.Started - p.Submitted }

// Latency returns submit-to-finish time.
func (p *Packet) Latency() sim.Time { return p.Finished - p.Submitted }

// Policy selects the link scheduling discipline.
type Policy int

const (
	// FCFS transmits packets in arrival order.
	FCFS Policy = iota
	// Fair applies the §3.3 bandwidth-fairness criterion per SPU.
	Fair
)

// String names the policy.
func (p Policy) String() string {
	if p == FCFS {
		return "FCFS"
	}
	return "Fair"
}

// SPUStats aggregates per-SPU link statistics.
type SPUStats struct {
	Packets int64
	Bytes   int64
	Wait    stats.Sample // seconds
}

// Link is one simulated network interface.
type Link struct {
	eng *sim.Engine

	// BytesPerSec is the line rate.
	BytesPerSec float64
	// PerPacket is the fixed per-packet overhead (framing, interrupt).
	PerPacket sim.Time
	// Policy is the scheduling discipline.
	Policy Policy
	// Threshold is the Fair policy's BW difference threshold, in bytes
	// relative to a unit share.
	Threshold float64

	queue []*Packet
	busy  bool
	usage *bwmeter.Table

	PerSPU map[core.SPUID]*SPUStats
	Total  SPUStats
}

// NewLink creates a link with the given line rate and policy. halfLife
// configures the usage decay (0 means the paper's 500 ms).
func NewLink(eng *sim.Engine, bytesPerSec float64, policy Policy, threshold float64, halfLife sim.Time) *Link {
	if bytesPerSec <= 0 {
		panic(fmt.Sprintf("netbw: line rate %g", bytesPerSec))
	}
	if threshold <= 0 {
		threshold = 64 * 1024
	}
	return &Link{
		eng:         eng,
		BytesPerSec: bytesPerSec,
		PerPacket:   20 * sim.Microsecond,
		Policy:      policy,
		Threshold:   threshold,
		usage:       bwmeter.NewTable(halfLife),
		PerSPU:      make(map[core.SPUID]*SPUStats),
	}
}

// SetShare sets an SPU's bandwidth share weight on this link.
func (l *Link) SetShare(id core.SPUID, w float64) { l.usage.SetShare(id, w) }

// QueueLen returns the number of packets waiting.
func (l *Link) QueueLen() int { return len(l.queue) }

// Send enqueues a packet for transmission.
func (l *Link) Send(p *Packet) {
	if p.Bytes <= 0 {
		panic("netbw: empty packet")
	}
	p.Submitted = l.eng.Now()
	l.queue = append(l.queue, p)
	if !l.busy {
		l.startNext()
	}
}

// pick selects the next packet index per policy.
func (l *Link) pick() int {
	if l.Policy == FCFS || len(l.queue) == 1 {
		return 0
	}
	now := l.eng.Now()
	// Fairness criterion over the SPUs with queued packets (§3.3 minus
	// head position): FIFO among the passing SPUs' packets.
	var active []core.SPUID
	seen := make(map[core.SPUID]bool)
	for _, p := range l.queue {
		if !seen[p.SPU] {
			seen[p.SPU] = true
			active = append(active, p.SPU)
		}
	}
	mean := l.usage.MeanRelative(now, active)
	for i, p := range l.queue {
		if l.usage.Relative(now, p.SPU) <= mean+l.Threshold {
			return i
		}
	}
	return 0 // defensive; at least one SPU passes for Threshold >= 0
}

func (l *Link) startNext() {
	if len(l.queue) == 0 {
		l.busy = false
		return
	}
	i := l.pick()
	p := l.queue[i]
	l.queue = append(l.queue[:i], l.queue[i+1:]...)
	l.busy = true
	p.Started = l.eng.Now()
	d := l.PerPacket + sim.Time(float64(p.Bytes)/l.BytesPerSec*float64(sim.Second))
	l.eng.CallAfter(d, "netbw.tx", func() { l.complete(p) })
}

func (l *Link) complete(p *Packet) {
	p.Finished = l.eng.Now()
	l.usage.Charge(p.Finished, p.SPU, p.Bytes)
	s, ok := l.PerSPU[p.SPU]
	if !ok {
		s = &SPUStats{}
		l.PerSPU[p.SPU] = s
	}
	for _, st := range []*SPUStats{s, &l.Total} {
		st.Packets++
		st.Bytes += int64(p.Bytes)
		st.Wait.AddTime(p.Wait())
	}
	done := p.Done
	l.startNext()
	if done != nil {
		done(p)
	}
}

package profile

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"strings"
	"testing"

	"perfiso/internal/sim"
)

// TestPprofDecodes gunzips WritePprof output, decodes the protobuf with
// a hand-written wire-format reader, and checks the profile against the
// profiler's own views: every Totals bucket appears as a sample whose
// resolved stack is leaf-first [state, resource, spu] with the exact
// sim-time value, every Interference cell appears as a stolen sample
// with a culprit label, and nothing else is in the profile.
func TestPprofDecodes(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, 0)

	// Two tasks on different SPUs with distinct state mixes plus one
	// theft cell, so the profile exercises both sample shapes.
	a := p.Begin("a", spuA)
	a.To(StateRun, spuA)
	eng.RunUntil(40 * sim.Millisecond)
	a.To(StateRunnable, spuB)
	eng.RunUntil(55 * sim.Millisecond)
	a.To(StateRun, spuA)
	eng.RunUntil(70 * sim.Millisecond)
	a.Finish()
	b := p.Begin("b", spuB)
	b.To(StateMemWait, spuA)
	eng.RunUntil(90 * sim.Millisecond)
	b.To(StateRun, spuB)
	eng.RunUntil(100 * sim.Millisecond)
	b.Finish()

	var buf bytes.Buffer
	if err := p.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	prof := decodeProfile(t, raw)

	// Sample type and period type are simulated nanoseconds.
	if got := prof.sampleType; got != "time/nanoseconds" {
		t.Errorf("sample_type = %q, want time/nanoseconds", got)
	}

	want := map[string]int64{}
	for _, tot := range p.Totals() {
		key := fmt.Sprintf("%s;%s;%s", tot.State, tot.State.Resource(), SPUName(tot.SPU))
		want[key] += int64(tot.Time)
	}
	for _, th := range p.Interference() {
		key := fmt.Sprintf("stolen;%s;%s culprit=%s", th.Resource, SPUName(th.Victim), SPUName(th.Culprit))
		want[key] += int64(th.Stolen)
	}
	if len(want) == 0 {
		t.Fatal("test scenario produced no buckets")
	}

	got := map[string]int64{}
	for _, s := range prof.samples {
		frames := make([]string, len(s.locations))
		for i, loc := range s.locations {
			name, ok := prof.funcName[prof.locFunc[loc]]
			if !ok {
				t.Fatalf("sample references location %d with no function", loc)
			}
			frames[i] = name
		}
		key := strings.Join(frames, ";")
		if s.culprit != "" {
			key += " culprit=" + s.culprit
		}
		got[key] += s.value
	}
	for key, v := range want {
		if got[key] != v {
			t.Errorf("sample %q = %d ns, want %d ns", key, got[key], v)
		}
	}
	for key := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("unexpected sample %q in profile", key)
		}
	}
}

// decodedProfile is the subset of pprof's Profile message the test
// verifies.
type decodedProfile struct {
	sampleType string
	samples    []decodedSample
	locFunc    map[uint64]uint64 // location id -> function id
	funcName   map[uint64]string // function id -> name
}

type decodedSample struct {
	locations []uint64 // leaf first
	value     int64
	culprit   string
}

// decodeProfile walks the top-level Profile message.
func decodeProfile(t *testing.T, raw []byte) *decodedProfile {
	t.Helper()
	prof := &decodedProfile{locFunc: map[uint64]uint64{}, funcName: map[uint64]string{}}
	var table []string
	var sampleTypeMsg []byte
	var locMsgs, fnMsgs, sampleMsgs [][]byte
	walkFields(t, raw, func(field int, wire int, v uint64, b []byte) {
		switch field {
		case 1: // sample_type
			sampleTypeMsg = b
		case 2: // sample
			sampleMsgs = append(sampleMsgs, b)
		case 4: // location
			locMsgs = append(locMsgs, b)
		case 5: // function
			fnMsgs = append(fnMsgs, b)
		case 6: // string_table
			table = append(table, string(b))
		}
	})
	str := func(i uint64) string {
		if i >= uint64(len(table)) {
			t.Fatalf("string index %d out of range (table has %d)", i, len(table))
		}
		return table[i]
	}

	var st, su uint64
	walkFields(t, sampleTypeMsg, func(field, wire int, v uint64, b []byte) {
		switch field {
		case 1:
			st = v
		case 2:
			su = v
		}
	})
	prof.sampleType = str(st) + "/" + str(su)

	for _, m := range fnMsgs {
		var id, name uint64
		walkFields(t, m, func(field, wire int, v uint64, b []byte) {
			switch field {
			case 1:
				id = v
			case 2:
				name = v
			}
		})
		prof.funcName[id] = str(name)
	}
	for _, m := range locMsgs {
		var id, fn uint64
		walkFields(t, m, func(field, wire int, v uint64, b []byte) {
			switch field {
			case 1:
				id = v
			case 4: // line message
				walkFields(t, b, func(f, w int, lv uint64, lb []byte) {
					if f == 1 {
						fn = lv
					}
				})
			}
		})
		prof.locFunc[id] = fn
	}
	for _, m := range sampleMsgs {
		var s decodedSample
		walkFields(t, m, func(field, wire int, v uint64, b []byte) {
			switch field {
			case 1: // packed location ids
				s.locations = append(s.locations, unpackVarints(t, b)...)
			case 2: // packed values
				vs := unpackVarints(t, b)
				if len(vs) != 1 {
					t.Fatalf("sample has %d values, want 1", len(vs))
				}
				s.value = int64(vs[0])
			case 3: // label
				var key, val uint64
				walkFields(t, b, func(f, w int, lv uint64, lb []byte) {
					switch f {
					case 1:
						key = lv
					case 2:
						val = lv
					}
				})
				if str(key) != "culprit" {
					t.Fatalf("unexpected label key %q", str(key))
				}
				s.culprit = str(val)
			}
		})
		prof.samples = append(prof.samples, s)
	}
	return prof
}

// walkFields iterates a protobuf message's fields, calling fn with the
// varint value (wire type 0) or the raw bytes (wire type 2).
func walkFields(t *testing.T, b []byte, fn func(field, wire int, v uint64, raw []byte)) {
	t.Helper()
	for len(b) > 0 {
		tag, n := readVarint(b)
		if n == 0 {
			t.Fatal("truncated tag")
		}
		b = b[n:]
		field, wire := int(tag>>3), int(tag&7)
		switch wire {
		case 0:
			v, n := readVarint(b)
			if n == 0 {
				t.Fatal("truncated varint")
			}
			b = b[n:]
			fn(field, wire, v, nil)
		case 2:
			l, n := readVarint(b)
			if n == 0 || uint64(len(b)-n) < l {
				t.Fatal("truncated length-delimited field")
			}
			fn(field, wire, 0, b[n:n+int(l)])
			b = b[n+int(l):]
		default:
			t.Fatalf("unexpected wire type %d for field %d", wire, field)
		}
	}
}

func unpackVarints(t *testing.T, b []byte) []uint64 {
	t.Helper()
	var out []uint64
	for len(b) > 0 {
		v, n := readVarint(b)
		if n == 0 {
			t.Fatal("truncated packed varint")
		}
		out = append(out, v)
		b = b[n:]
	}
	return out
}

func readVarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

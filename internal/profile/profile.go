// Package profile is a simulated-time profiler. It accounts every
// simulated nanosecond of every thread to a (SPU, resource, state)
// bucket — running, runnable-but-waiting-for-CPU, page-fault stall,
// disk-queue wait, disk service, swap, retry-backoff — by observing the
// state transitions the scheduler, memory manager, file system, disk,
// and process layer already make. On the same hooks it records
// per-request spans (one span tree per process step) and tags every
// wait segment with the culprit SPU that held the contended resource,
// so it can emit an interference matrix (victim SPU x culprit SPU x
// resource -> stolen sim-time): the paper's isolation claim becomes
// directly measurable — under PIso the off-diagonal row of an isolated
// SPU is ~0, under SMP it explains the slowdown.
//
// Like trace and metrics, a nil *Profiler (and a nil *Task) is a valid
// no-op sink: every method returns immediately on nil, so instrumented
// code never branches on "is profiling on" and pays nothing when off.
//
// Accounting is exact by construction: a Task charges the closed-open
// interval since the previous transition to the *previous* state's
// bucket at every transition, so the buckets telescope and their sum
// equals finish-start to the nanosecond. Finish verifies that identity
// and records a violation if it ever breaks; the invariant auditor
// surfaces violations as a failed "profile" check.
package profile

import (
	"fmt"
	"sort"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

// State is where a thread's simulated time is going.
type State int

const (
	StateReady       State = iota // created, before the first transition
	StateRun                      // on a CPU
	StateRunnable                 // on the runqueue, waiting for a CPU
	StateMemWait                  // page-fault or reclaim stall
	StateDiskWait                 // blocked on disk I/O; split at close
	StateDiskQueue                // disk request queued behind others
	StateDiskService              // disk request being serviced
	StateBackoff                  // retry backoff after a failed transfer
	StateSwap                     // swap-in of an evicted working set
	StateSleep                    // voluntary sleep
	StateSync                     // barrier, wait-for-children
	StateLockWait                 // queued on (or holding) a kernel lock
	NumStates
)

// String names the state as it appears in folded stacks and spans.
func (s State) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateRun:
		return "run"
	case StateRunnable:
		return "runnable"
	case StateMemWait:
		return "memwait"
	case StateDiskWait:
		return "diskwait"
	case StateDiskQueue:
		return "diskqueue"
	case StateDiskService:
		return "diskservice"
	case StateBackoff:
		return "backoff"
	case StateSwap:
		return "swap"
	case StateSleep:
		return "sleep"
	case StateSync:
		return "sync"
	case StateLockWait:
		return "lockwait"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Resource classifies states by the contended resource, the middle
// frame of the folded stack and the axis of the interference matrix.
type Resource int

const (
	CPU Resource = iota
	Memory
	Disk
	// Lock is kernel-lock serialization: time a victim queued behind
	// another SPU's lock hold (§3.4's inode semaphore, generalized by
	// internal/lock). A fourth first-class column of the matrix
	// because locks leak interference even when CPU, memory, and disk
	// are all perfectly partitioned.
	Lock
	None
	NumResources
)

// String names the resource.
func (r Resource) String() string {
	switch r {
	case CPU:
		return "cpu"
	case Memory:
		return "memory"
	case Disk:
		return "disk"
	case Lock:
		return "lock"
	default:
		return "none"
	}
}

// Resource maps a state to the resource the thread was using or
// waiting for while in it.
func (s State) Resource() Resource {
	switch s {
	case StateRun, StateRunnable:
		return CPU
	case StateMemWait:
		return Memory
	case StateDiskWait, StateDiskQueue, StateDiskService, StateBackoff, StateSwap:
		return Disk
	case StateLockWait:
		return Lock
	default:
		return None
	}
}

// TaskRecord is the completed accounting for one process: its full
// response time split across the state buckets (which sum to
// Finished-Started exactly).
type TaskRecord struct {
	Proc     string
	SPU      core.SPUID
	Started  sim.Time
	Finished sim.Time
	Buckets  [NumStates]sim.Time
}

// Theft is one cell of the interference matrix: sim-time the culprit
// SPU's activity on a resource cost the victim SPU.
type Theft struct {
	Victim, Culprit core.SPUID
	Resource        Resource
	Stolen          sim.Time
}

// Total is one aggregate bucket across all finished tasks of an SPU.
type Total struct {
	SPU   core.SPUID
	State State
	Time  sim.Time
}

type aggKey struct {
	spu   core.SPUID
	state State
}

type theftKey struct {
	victim, culprit core.SPUID
	resource        Resource
}

// window describes the disk request whose completion callback is
// currently executing, so a victim's DiskWait segment closing inside it
// can be split into queue/service/backoff time (see Task.closeSegment).
type window struct {
	started, finished sim.Time
	backoff           sim.Time
	stolenBy          core.SPUID
	spanID            int64
}

// DefaultSpanCapacity bounds the span ring when no capacity is given.
const DefaultSpanCapacity = 8192

// maxViolations caps stored conservation-violation messages; a broken
// task re-fires on every audit and one repro needs the first few.
const maxViolations = 8

// Profiler accumulates buckets, spans, and the interference matrix for
// one simulated machine. A nil Profiler is a valid no-op sink.
type Profiler struct {
	eng *sim.Engine

	agg   map[aggKey]sim.Time
	theft map[theftKey]sim.Time
	tasks []TaskRecord

	ring    []Span
	next    int
	filled  bool
	dropped int64
	nextID  int64

	violations []string
	violCount  int64

	win       window
	winActive bool
}

// New creates a profiler keeping the most recent spanCapacity spans
// (DefaultSpanCapacity if <= 0).
func New(eng *sim.Engine, spanCapacity int) *Profiler {
	if spanCapacity <= 0 {
		spanCapacity = DefaultSpanCapacity
	}
	return &Profiler{
		eng:   eng,
		agg:   make(map[aggKey]sim.Time),
		theft: make(map[theftKey]sim.Time),
		ring:  make([]Span, spanCapacity),
	}
}

// Begin starts accounting a new process on the SPU. Safe on nil (and
// then returns a nil Task, itself a valid no-op sink).
func (p *Profiler) Begin(proc string, spu core.SPUID) *Task {
	if p == nil {
		return nil
	}
	now := p.eng.Now()
	return &Task{p: p, proc: proc, spu: spu, started: now, since: now, culprit: spu}
}

// AddTheft charges stolen sim-time to the interference matrix. The disk
// layer calls this directly when starting a request that makes queued
// requests from other SPUs wait; CPU and memory theft flow in from
// segment closes. Self-inflicted waits (victim == culprit) are not
// theft and are dropped.
func (p *Profiler) AddTheft(victim, culprit core.SPUID, r Resource, d sim.Time) {
	if p == nil || d <= 0 || victim == culprit {
		return
	}
	p.theft[theftKey{victim, culprit, r}] += d
}

// BeginDiskWindow marks that a disk request's completion callback is
// running: any DiskWait segment that closes before EndDiskWindow waited
// on exactly this request and can be split into queue/service/backoff.
// started/finished bound the service interval, backoff is the request's
// accumulated retry backoff, stolenBy is the SPU whose requests the
// disk served while this one queued (the request's own SPU if none),
// and spanID links the victim's wait span to the request's service span
// as a Chrome-trace flow.
func (p *Profiler) BeginDiskWindow(started, finished, backoff sim.Time, stolenBy core.SPUID, spanID int64) {
	if p == nil {
		return
	}
	p.win = window{started: started, finished: finished, backoff: backoff, stolenBy: stolenBy, spanID: spanID}
	p.winActive = true
}

// EndDiskWindow closes the window opened by BeginDiskWindow.
func (p *Profiler) EndDiskWindow() {
	if p == nil {
		return
	}
	p.winActive = false
}

// allocID reserves the next span ID (IDs are dense and deterministic:
// allocation order is simulation order).
func (p *Profiler) allocID() int64 {
	p.nextID++
	return p.nextID
}

// emit stores a span in the ring, evicting the oldest when full.
func (p *Profiler) emit(s Span) {
	if p == nil {
		return
	}
	if p.filled {
		p.dropped++
	}
	p.ring[p.next] = s
	p.next++
	if p.next == len(p.ring) {
		p.next = 0
		p.filled = true
	}
}

// Spans returns the stored spans oldest-first.
func (p *Profiler) Spans() []Span {
	if p == nil {
		return nil
	}
	n := p.next
	if p.filled {
		n = len(p.ring)
	}
	out := make([]Span, 0, n)
	if p.filled {
		out = append(out, p.ring[p.next:]...)
	}
	out = append(out, p.ring[:p.next]...)
	return out
}

// SpansDropped returns how many spans the ring overwrote.
func (p *Profiler) SpansDropped() int64 {
	if p == nil {
		return 0
	}
	return p.dropped
}

// Tasks returns the completed task records in finish order.
func (p *Profiler) Tasks() []TaskRecord {
	if p == nil {
		return nil
	}
	return p.tasks
}

// Totals returns the aggregate (SPU, state) buckets over all finished
// tasks, sorted by SPU then state for deterministic output.
func (p *Profiler) Totals() []Total {
	if p == nil {
		return nil
	}
	out := make([]Total, 0, len(p.agg))
	for k, v := range p.agg {
		out = append(out, Total{SPU: k.spu, State: k.state, Time: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SPU != out[j].SPU {
			return out[i].SPU < out[j].SPU
		}
		return out[i].State < out[j].State
	})
	return out
}

// Interference returns the theft matrix sorted by victim, culprit,
// resource. Off-diagonal rows for an isolated SPU should be ~0 under
// PIso; under SMP they explain the measured slowdown.
func (p *Profiler) Interference() []Theft {
	if p == nil {
		return nil
	}
	out := make([]Theft, 0, len(p.theft))
	for k, v := range p.theft {
		out = append(out, Theft{Victim: k.victim, Culprit: k.culprit, Resource: k.resource, Stolen: v})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Victim != b.Victim {
			return a.Victim < b.Victim
		}
		if a.Culprit != b.Culprit {
			return a.Culprit < b.Culprit
		}
		return a.Resource < b.Resource
	})
	return out
}

// Stolen returns total sim-time the culprit cost the victim on the
// resource, 0 if none.
func (p *Profiler) Stolen(victim, culprit core.SPUID, r Resource) sim.Time {
	if p == nil {
		return 0
	}
	return p.theft[theftKey{victim, culprit, r}]
}

// StolenFrom returns all sim-time other SPUs cost the victim on the
// resource (the victim's off-diagonal row sum for that resource).
func (p *Profiler) StolenFrom(victim core.SPUID, r Resource) sim.Time {
	if p == nil {
		return 0
	}
	var total sim.Time
	for k, v := range p.theft {
		if k.victim == victim && k.resource == r {
			total += v
		}
	}
	return total
}

// violation records a broken conservation identity (capped).
func (p *Profiler) violation(format string, args ...any) {
	p.violCount++
	if len(p.violations) < maxViolations {
		p.violations = append(p.violations, fmt.Sprintf(format, args...))
	}
}

// Violations returns how many conservation checks failed.
func (p *Profiler) Violations() int64 {
	if p == nil {
		return 0
	}
	return p.violCount
}

// AuditConservation returns an error if any finished task's buckets
// failed to sum to its response time. The invariant auditor runs this
// every tick so a broken identity fails the run at once.
func (p *Profiler) AuditConservation() error {
	if p == nil || p.violCount == 0 {
		return nil
	}
	return fmt.Errorf("profile conservation broken %d time(s); first: %s",
		p.violCount, p.violations[0])
}

// fold absorbs a finished task into the aggregates.
func (p *Profiler) fold(t *Task, finished sim.Time) {
	for s := State(0); s < NumStates; s++ {
		if t.buckets[s] != 0 {
			p.agg[aggKey{t.spu, s}] += t.buckets[s]
		}
	}
	p.tasks = append(p.tasks, TaskRecord{
		Proc: t.proc, SPU: t.spu, Started: t.started, Finished: finished, Buckets: t.buckets,
	})
}

// SPUName renders an SPU ID the way every profiler export spells it.
func SPUName(id core.SPUID) string { return fmt.Sprintf("spu%d", int(id)) }

package profile

import (
	"compress/gzip"
	"io"
)

// WritePprof writes the aggregate buckets and the interference matrix
// as a gzipped pprof protobuf profile, hand-encoded so the repo needs
// no protobuf dependency. Each bucket becomes one sample with the
// folded stack spu;resource;state (root to leaf) valued in simulated
// nanoseconds; each interference cell becomes a sample with the stack
// spu;resource;stolen and a "culprit" string label naming the thief.
// The profile is deterministic: time_nanos stays zero, strings are
// interned in a fixed traversal order, and sample order follows the
// sorted Totals/Interference views.
func (p *Profiler) WritePprof(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if _, err := zw.Write(p.encodePprof()); err != nil {
		zw.Close()
		return err
	}
	return zw.Close()
}

// pprof.proto field numbers used below.
const (
	profSampleType = 1
	profSample     = 2
	profLocation   = 4
	profFunction   = 5
	profStringTab  = 6
	profPeriodType = 11
	profPeriod     = 12

	vtType = 1
	vtUnit = 2

	sampleLocationID = 1
	sampleValue      = 2
	sampleLabel      = 3

	labelKey = 1
	labelStr = 2

	locID   = 1
	locLine = 4

	lineFunctionID = 1

	fnID   = 1
	fnName = 2
)

// encodePprof builds the uncompressed profile message.
func (p *Profiler) encodePprof() []byte {
	e := &pprofEncoder{strings: map[string]int64{"": 0}, order: []string{""}, frames: map[string]uint64{}}

	var out protoBuf
	// sample_type and period_type: simulated time in nanoseconds.
	var vt protoBuf
	vt.int64Field(vtType, e.str("time"))
	vt.int64Field(vtUnit, e.str("nanoseconds"))
	out.bytesField(profSampleType, vt.b)
	out.bytesField(profPeriodType, vt.b)
	out.int64Field(profPeriod, 1)

	for _, t := range p.Totals() {
		var s protoBuf
		s.packedUint64Field(sampleLocationID, []uint64{
			e.frame(t.State.String()),
			e.frame(t.State.Resource().String()),
			e.frame(SPUName(t.SPU)),
		})
		s.packedInt64Field(sampleValue, []int64{int64(t.Time)})
		out.bytesField(profSample, s.b)
	}
	for _, th := range p.Interference() {
		var lb protoBuf
		lb.int64Field(labelKey, e.str("culprit"))
		lb.int64Field(labelStr, e.str(SPUName(th.Culprit)))
		var s protoBuf
		s.packedUint64Field(sampleLocationID, []uint64{
			e.frame("stolen"),
			e.frame(th.Resource.String()),
			e.frame(SPUName(th.Victim)),
		})
		s.packedInt64Field(sampleValue, []int64{int64(th.Stolen)})
		s.bytesField(sampleLabel, lb.b)
		out.bytesField(profSample, s.b)
	}

	// One location and one function per unique frame name, ids 1:1.
	for i, name := range e.frameOrder {
		id := uint64(i + 1)
		var ln protoBuf
		ln.uint64Field(lineFunctionID, id)
		var loc protoBuf
		loc.uint64Field(locID, id)
		loc.bytesField(locLine, ln.b)
		out.bytesField(profLocation, loc.b)
		var fn protoBuf
		fn.uint64Field(fnID, id)
		fn.int64Field(fnName, e.str(name))
		out.bytesField(profFunction, fn.b)
	}
	for _, s := range e.order {
		out.stringField(profStringTab, s)
	}
	return out.b
}

// pprofEncoder interns strings and stack frames in first-use order.
type pprofEncoder struct {
	strings    map[string]int64
	order      []string
	frames     map[string]uint64
	frameOrder []string
}

func (e *pprofEncoder) str(s string) int64 {
	if i, ok := e.strings[s]; ok {
		return i
	}
	i := int64(len(e.order))
	e.strings[s] = i
	e.order = append(e.order, s)
	return i
}

func (e *pprofEncoder) frame(name string) uint64 {
	if id, ok := e.frames[name]; ok {
		return id
	}
	e.str(name)
	id := uint64(len(e.frameOrder) + 1)
	e.frames[name] = id
	e.frameOrder = append(e.frameOrder, name)
	return id
}

// protoBuf is a minimal protobuf wire-format writer.
type protoBuf struct{ b []byte }

func (p *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *protoBuf) tag(field, wire int) { p.varint(uint64(field)<<3 | uint64(wire)) }

func (p *protoBuf) int64Field(field int, v int64) {
	if v == 0 {
		return
	}
	p.tag(field, 0)
	p.varint(uint64(v))
}

func (p *protoBuf) uint64Field(field int, v uint64) {
	if v == 0 {
		return
	}
	p.tag(field, 0)
	p.varint(v)
}

func (p *protoBuf) bytesField(field int, b []byte) {
	p.tag(field, 2)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

func (p *protoBuf) stringField(field int, s string) {
	p.tag(field, 2)
	p.varint(uint64(len(s)))
	p.b = append(p.b, s...)
}

func (p *protoBuf) packedUint64Field(field int, vs []uint64) {
	var inner protoBuf
	for _, v := range vs {
		inner.varint(v)
	}
	p.bytesField(field, inner.b)
}

func (p *protoBuf) packedInt64Field(field int, vs []int64) {
	var inner protoBuf
	for _, v := range vs {
		inner.varint(uint64(v))
	}
	p.bytesField(field, inner.b)
}

package profile

import (
	"compress/gzip"
	"io"
)

// FoldedSample is one folded-stack sample for WriteFoldedPprof: a stack
// given root-first (as in Brendan Gregg's folded format) and a value in
// the profile's unit.
type FoldedSample struct {
	Stack []string
	Value int64
}

// WriteFoldedPprof writes an arbitrary folded-stack profile as a gzipped
// pprof protobuf, using the same hand-rolled encoder as the interference
// profile so the repo stays protobuf-free. The simulator self-profiler
// (internal/simobs) uses it to emit host-time attribution profiles that
// `go tool pprof` can render. Output is deterministic for a given sample
// slice: time_nanos stays zero and strings intern in traversal order.
func WriteFoldedPprof(w io.Writer, sampleType, unit string, samples []FoldedSample) error {
	zw := gzip.NewWriter(w)
	if _, err := zw.Write(encodeFoldedPprof(sampleType, unit, samples)); err != nil {
		zw.Close()
		return err
	}
	return zw.Close()
}

func encodeFoldedPprof(sampleType, unit string, samples []FoldedSample) []byte {
	e := &pprofEncoder{strings: map[string]int64{"": 0}, order: []string{""}, frames: map[string]uint64{}}

	var out protoBuf
	var vt protoBuf
	vt.int64Field(vtType, e.str(sampleType))
	vt.int64Field(vtUnit, e.str(unit))
	out.bytesField(profSampleType, vt.b)
	out.bytesField(profPeriodType, vt.b)
	out.int64Field(profPeriod, 1)

	for _, sm := range samples {
		if len(sm.Stack) == 0 {
			continue
		}
		// pprof wants locations leaf-first.
		ids := make([]uint64, 0, len(sm.Stack))
		for i := len(sm.Stack) - 1; i >= 0; i-- {
			ids = append(ids, e.frame(sm.Stack[i]))
		}
		var s protoBuf
		s.packedUint64Field(sampleLocationID, ids)
		s.packedInt64Field(sampleValue, []int64{sm.Value})
		out.bytesField(profSample, s.b)
	}

	for i, name := range e.frameOrder {
		id := uint64(i + 1)
		var ln protoBuf
		ln.uint64Field(lineFunctionID, id)
		var loc protoBuf
		loc.uint64Field(locID, id)
		loc.bytesField(locLine, ln.b)
		out.bytesField(profLocation, loc.b)
		var fn protoBuf
		fn.uint64Field(fnID, id)
		fn.int64Field(fnName, e.str(name))
		out.bytesField(profFunction, fn.b)
	}
	for _, s := range e.order {
		out.stringField(profStringTab, s)
	}
	return out.b
}

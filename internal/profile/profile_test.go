package profile

import (
	"bytes"
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

const (
	spuA = core.FirstUserID
	spuB = core.FirstUserID + 1
)

// TestTaskConservation drives a task through every transition shape and
// checks the telescoping identity: buckets sum to response time exactly.
func TestTaskConservation(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, 0)
	task := p.Begin("job", spuA)

	task.To(StateRunnable, spuB) // ready [0, 0) — zero, charges nothing
	eng.RunUntil(10 * sim.Millisecond)
	task.To(StateRun, spuA) // runnable [0, 10ms) blamed on spuB
	eng.RunUntil(35 * sim.Millisecond)
	task.To(StateMemWait, spuB) // run [10ms, 35ms)
	eng.RunUntil(42 * sim.Millisecond)
	task.To(StateRun, spuA) // memwait [35ms, 42ms) blamed on spuB
	eng.RunUntil(50 * sim.Millisecond)
	task.Finish() // run [42ms, 50ms)

	recs := p.Tasks()
	if len(recs) != 1 {
		t.Fatalf("Tasks() = %d records, want 1", len(recs))
	}
	r := recs[0]
	var sum sim.Time
	for s := State(0); s < NumStates; s++ {
		sum += r.Buckets[s]
	}
	if resp := r.Finished - r.Started; sum != resp {
		t.Fatalf("buckets sum to %v, response time %v", sum, resp)
	}
	if got := r.Buckets[StateRun]; got != 33*sim.Millisecond {
		t.Errorf("run bucket = %v, want 33ms", got)
	}
	if got := r.Buckets[StateRunnable]; got != 10*sim.Millisecond {
		t.Errorf("runnable bucket = %v, want 10ms", got)
	}
	if got := r.Buckets[StateMemWait]; got != 7*sim.Millisecond {
		t.Errorf("memwait bucket = %v, want 7ms", got)
	}
	if v := p.Violations(); v != 0 {
		t.Fatalf("conservation violations = %d", v)
	}
	if err := p.AuditConservation(); err != nil {
		t.Fatalf("AuditConservation: %v", err)
	}

	// The waits fed the interference matrix.
	if got := p.Stolen(spuA, spuB, CPU); got != 10*sim.Millisecond {
		t.Errorf("cpu theft = %v, want 10ms", got)
	}
	if got := p.Stolen(spuA, spuB, Memory); got != 7*sim.Millisecond {
		t.Errorf("memory theft = %v, want 7ms", got)
	}
}

// TestDiskWindowSplit checks that a DiskWait segment closing inside a
// completion window is split into queue, service, and backoff.
func TestDiskWindowSplit(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, 0)
	task := p.Begin("io", spuA)
	task.To(StateDiskWait, spuA)
	eng.RunUntil(100 * sim.Millisecond)
	// The request queued at 0, started service at 40ms, finished at
	// 90ms, and accumulated 10ms of retry backoff; spuB was served
	// ahead of it.
	p.BeginDiskWindow(40*sim.Millisecond, 90*sim.Millisecond, 10*sim.Millisecond, spuB, 7)
	task.To(StateRun, spuA)
	p.EndDiskWindow()
	eng.RunUntil(110 * sim.Millisecond)
	task.Finish()

	r := p.Tasks()[0]
	if got := r.Buckets[StateDiskService]; got != 50*sim.Millisecond {
		t.Errorf("service = %v, want 50ms", got)
	}
	if got := r.Buckets[StateBackoff]; got != 10*sim.Millisecond {
		t.Errorf("backoff = %v, want 10ms", got)
	}
	if got := r.Buckets[StateDiskQueue]; got != 40*sim.Millisecond {
		t.Errorf("queue = %v, want 40ms", got)
	}
	if got := r.Buckets[StateDiskWait]; got != 0 {
		t.Errorf("raw diskwait = %v, want 0 (fully split)", got)
	}
	// Disk theft flows in only from the disk scheduler's blame pass,
	// never from the segment close.
	if got := p.Stolen(spuA, spuB, Disk); got != 0 {
		t.Errorf("segment close charged disk theft %v; only the disk layer may", got)
	}
	// The wait span carries the flow link to the service span.
	var found bool
	for _, s := range p.Spans() {
		if s.Name == "diskwait" && s.Flow == 7 && s.Culprit == spuB {
			found = true
		}
	}
	if !found {
		t.Error("no diskwait span with flow=7 culprit=spuB recorded")
	}
}

// Without a completion window (a wait satisfied by an already-resident
// page) the whole stall counts as queueing.
func TestDiskWaitWithoutWindowIsQueueing(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, 0)
	task := p.Begin("io", spuA)
	task.To(StateDiskWait, spuA)
	eng.RunUntil(30 * sim.Millisecond)
	task.To(StateRun, spuA)
	task.Finish()
	if got := p.Tasks()[0].Buckets[StateDiskQueue]; got != 30*sim.Millisecond {
		t.Fatalf("queue = %v, want 30ms", got)
	}
}

// TestAddTheftIgnoresSelf: self-inflicted waits are not theft.
func TestAddTheftIgnoresSelf(t *testing.T) {
	p := New(sim.NewEngine(), 0)
	p.AddTheft(spuA, spuA, CPU, sim.Second)
	p.AddTheft(spuA, spuB, CPU, 0)
	p.AddTheft(spuA, spuB, CPU, -sim.Second)
	if got := len(p.Interference()); got != 0 {
		t.Fatalf("interference has %d cells, want 0", got)
	}
}

// TestNilSinksAreSafe: every profiler and task method is a no-op on nil.
func TestNilSinksAreSafe(t *testing.T) {
	var p *Profiler
	task := p.Begin("x", spuA)
	if task != nil {
		t.Fatal("nil profiler returned non-nil task")
	}
	task.To(StateRun, spuA)
	task.BeginStep("compute")
	task.Finish()
	p.AddTheft(spuA, spuB, CPU, sim.Second)
	p.BeginDiskWindow(0, 0, 0, spuA, 0)
	p.EndDiskWindow()
	if p.DiskSpans(spuA, "read", 0, 0, 0, spuA) != 0 {
		t.Fatal("nil DiskSpans returned a span id")
	}
	if p.Spans() != nil || p.Tasks() != nil || p.Totals() != nil || p.Interference() != nil {
		t.Fatal("nil accessors returned data")
	}
	if p.Violations() != 0 || p.SpansDropped() != 0 || p.AuditConservation() != nil {
		t.Fatal("nil counters returned data")
	}
}

// TestSpanRingEvictsOldest: a full ring drops the oldest spans and
// counts them.
func TestSpanRingEvictsOldest(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, 3)
	for i := 0; i < 5; i++ {
		p.emit(Span{ID: int64(i + 1)})
	}
	spans := p.Spans()
	if len(spans) != 3 {
		t.Fatalf("ring holds %d spans, want 3", len(spans))
	}
	if spans[0].ID != 3 || spans[2].ID != 5 {
		t.Fatalf("ring order = [%d..%d], want oldest-first [3..5]", spans[0].ID, spans[2].ID)
	}
	if p.SpansDropped() != 2 {
		t.Fatalf("dropped = %d, want 2", p.SpansDropped())
	}
}

// TestWriteSpansDeterministic: identical runs serialize identically.
func TestWriteSpansDeterministic(t *testing.T) {
	build := func() *Profiler {
		eng := sim.NewEngine()
		p := New(eng, 0)
		task := p.Begin("job", spuA)
		task.BeginStep("read")
		task.To(StateDiskWait, spuA)
		eng.RunUntil(20 * sim.Millisecond)
		svc := p.DiskSpans(spuA, "read", 0, 5*sim.Millisecond, 20*sim.Millisecond, spuB)
		p.BeginDiskWindow(5*sim.Millisecond, 20*sim.Millisecond, 0, spuB, svc)
		task.To(StateRun, spuA)
		p.EndDiskWindow()
		eng.RunUntil(30 * sim.Millisecond)
		task.Finish()
		return p
	}
	var a, b bytes.Buffer
	if err := build().WriteSpans(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteSpans(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical runs produced different span JSONL")
	}
	if a.Len() == 0 {
		t.Fatal("span JSONL is empty")
	}
}

// TestConservationViolationSurfaces: a task whose books do not balance
// is reported through the audit hook (forced by mutating a bucket
// behind the task's back).
func TestConservationViolationSurfaces(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, 0)
	task := p.Begin("bad", spuA)
	task.To(StateRun, spuA)
	eng.RunUntil(10 * sim.Millisecond)
	task.buckets[StateRun] += sim.Millisecond // corrupt the books
	task.Finish()
	if p.Violations() != 1 {
		t.Fatalf("violations = %d, want 1", p.Violations())
	}
	if err := p.AuditConservation(); err == nil {
		t.Fatal("AuditConservation returned nil for broken books")
	}
}

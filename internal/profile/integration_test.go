package profile_test

import (
	"bytes"
	"fmt"
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/kernel"
	"perfiso/internal/machine"
	"perfiso/internal/profile"
	"perfiso/internal/sim"
	"perfiso/internal/workload"
)

// interferenceRun builds the memory-isolation machine (4 CPUs split two
// home CPUs per user SPU) with a steady SPU whose two pure-compute
// threads keep its home CPUs busy end to end, and a noisy SPU that
// oversubscribes with six threads. Under PIso the steady SPU's CPUs are
// never idle, so they are never lent and nothing can be stolen from it;
// under SMP all eight threads share one global run queue and the noisy
// SPU's surplus demonstrably steals steady's CPU time.
func interferenceRun(t *testing.T, scheme core.Scheme) (*kernel.Kernel, core.SPUID, core.SPUID) {
	t.Helper()
	k := kernel.New(machine.MemoryIsolation(), scheme, kernel.Options{Profiled: true})
	steady := k.NewSPU("steady", 1)
	noisy := k.NewSPU("noisy", 1)
	k.Boot()
	params := workload.ComputeParams{Total: 1 * sim.Second, Chunk: 50 * sim.Millisecond}
	for i := 0; i < 2; i++ {
		k.Spawn(workload.ComputeBound(k, steady.ID(), fmt.Sprintf("steady%d", i), params))
	}
	for i := 0; i < 6; i++ {
		k.Spawn(workload.ComputeBound(k, noisy.ID(), fmt.Sprintf("noisy%d", i), params))
	}
	k.Run()
	return k, steady.ID(), noisy.ID()
}

// TestIsolationVsSharingTheft is the paper's isolation claim read off
// the interference matrix: PIso steals nothing from a busy victim SPU
// while SMP visibly does.
func TestIsolationVsSharingTheft(t *testing.T) {
	k, steady, noisy := interferenceRun(t, core.PIso)
	p := k.Profile()
	if got := p.StolenFrom(steady, profile.CPU); got != 0 {
		t.Errorf("PIso: %v of CPU time stolen from the steady SPU, want 0", got)
	}
	if got := p.StolenFrom(steady, profile.Memory); got != 0 {
		t.Errorf("PIso: %v of memory time stolen from the steady SPU, want 0", got)
	}

	k, steady, noisy = interferenceRun(t, core.SMP)
	p = k.Profile()
	if got := p.Stolen(steady, noisy, profile.CPU); got <= 0 {
		t.Errorf("SMP: noisy SPU stole %v of CPU from steady, want > 0", got)
	}
}

// TestKernelConservation: with the full kernel in the loop (scheduler,
// memory manager, disk, process steps) every finished process's buckets
// still sum to its response time to the nanosecond, on every scheme.
func TestKernelConservation(t *testing.T) {
	for _, scheme := range []core.Scheme{core.SMP, core.Quo, core.PIso} {
		k, _, _ := interferenceRun(t, scheme)
		p := k.Profile()
		recs := p.Tasks()
		if len(recs) != 8 {
			t.Fatalf("%v: %d task records, want 8", scheme, len(recs))
		}
		for _, r := range recs {
			var sum sim.Time
			for s := profile.State(0); s < profile.NumStates; s++ {
				sum += r.Buckets[s]
			}
			if resp := r.Finished - r.Started; sum != resp {
				t.Errorf("%v %s: buckets sum %v != response %v", scheme, r.Proc, sum, resp)
			}
		}
		if v := p.Violations(); v != 0 {
			t.Errorf("%v: %d conservation violations", scheme, v)
		}
	}
}

// TestKernelExportsDeterministic: two identical kernels emit
// byte-identical span JSONL and pprof profiles.
func TestKernelExportsDeterministic(t *testing.T) {
	k1, _, _ := interferenceRun(t, core.PIso)
	k2, _, _ := interferenceRun(t, core.PIso)
	var s1, s2, p1, p2 bytes.Buffer
	if err := k1.WriteSpans(&s1); err != nil {
		t.Fatal(err)
	}
	if err := k2.WriteSpans(&s2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Error("identical runs produced different span JSONL")
	}
	if s1.Len() == 0 {
		t.Error("span JSONL is empty")
	}
	if err := k1.WriteProfile(&p1); err != nil {
		t.Fatal(err)
	}
	if err := k2.WriteProfile(&p2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1.Bytes(), p2.Bytes()) {
		t.Error("identical runs produced different pprof profiles")
	}
}

// TestExportsRequireProfiling: the kernel refuses to export when
// Options.Profiled was off, instead of writing empty artifacts.
func TestExportsRequireProfiling(t *testing.T) {
	k := kernel.New(machine.MemoryIsolation(), core.PIso, kernel.Options{})
	k.NewSPU("u", 1)
	k.Boot()
	k.Run()
	var buf bytes.Buffer
	if err := k.WriteProfile(&buf); err == nil {
		t.Error("WriteProfile succeeded without Options.Profiled")
	}
	if err := k.WriteSpans(&buf); err == nil {
		t.Error("WriteSpans succeeded without Options.Profiled")
	}
	if k.Profile() != nil {
		t.Error("Profile() non-nil without Options.Profiled")
	}
}

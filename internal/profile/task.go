package profile

import (
	"perfiso/internal/core"
	"perfiso/internal/sim"
)

// Task accounts one process's lifetime. The instrumented layers call To
// at every state transition; Task charges the elapsed interval to the
// state being left, so buckets telescope and sum exactly to the
// process's response time. A nil Task is a valid no-op sink.
type Task struct {
	p       *Profiler
	proc    string
	spu     core.SPUID
	started sim.Time

	since   sim.Time
	state   State
	culprit core.SPUID

	stepID    int64
	stepName  string
	stepStart sim.Time

	buckets  [NumStates]sim.Time
	finished bool
}

// To transitions the task to a new state, charging the time since the
// previous transition to the previous state's bucket. culprit is the
// SPU responsible if the *new* state is a wait (the SPU holding the
// CPU, the over-entitled memory user); pass the task's own SPU when
// nobody else is to blame. Calls with zero elapsed time just switch
// state; they cost nothing and charge nothing.
func (t *Task) To(state State, culprit core.SPUID) {
	if t == nil || t.finished {
		return
	}
	now := t.p.eng.Now()
	t.closeSegment(now)
	t.state = state
	t.culprit = culprit
	t.since = now
}

// closeSegment charges [since, now) to the current state and emits a
// span for it. Wait segments with a foreign culprit feed the
// interference matrix; DiskWait segments closing inside a disk
// completion window are split into queue/service/backoff.
func (t *Task) closeSegment(now sim.Time) {
	dur := now - t.since
	if dur <= 0 {
		return
	}
	p := t.p
	culprit := t.culprit
	var flow int64
	switch t.state {
	case StateDiskWait:
		if p.winActive {
			// The segment ends inside the completion callback of the
			// request the task waited on: the window bounds its service
			// interval and carries its accumulated retry backoff. What
			// is neither service nor backoff was queueing behind other
			// SPUs' requests (attributed to the matrix by the disk
			// scheduler when it chose to serve them first).
			service := p.win.finished - p.win.started
			if service > dur {
				service = dur
			}
			if service < 0 {
				service = 0
			}
			backoff := p.win.backoff
			if backoff > dur-service {
				backoff = dur - service
			}
			t.buckets[StateDiskService] += service
			t.buckets[StateBackoff] += backoff
			t.buckets[StateDiskQueue] += dur - service - backoff
			culprit = p.win.stolenBy
			flow = p.win.spanID
		} else {
			// No window: the wait resolved without a fresh completion
			// (e.g. piggybacking on an already-filled cache page);
			// count it all as queueing.
			t.buckets[StateDiskQueue] += dur
		}
	case StateRunnable:
		t.buckets[StateRunnable] += dur
		p.AddTheft(t.spu, culprit, CPU, dur)
	case StateMemWait:
		t.buckets[StateMemWait] += dur
		p.AddTheft(t.spu, culprit, Memory, dur)
	case StateSwap:
		t.buckets[StateSwap] += dur
		if p.winActive {
			flow = p.win.spanID
		}
	default:
		t.buckets[t.state] += dur
	}
	p.emit(Span{
		ID: p.allocID(), Parent: t.stepID,
		SPU: t.spu, Proc: t.proc, Name: t.state.String(),
		Culprit: culprit, Start: t.since, End: now, Flow: flow,
	})
}

// BeginStep opens a new step span (closing the previous one): the
// process layer calls it before running each program step, so every
// segment span recorded while the step runs is parented under it.
func (t *Task) BeginStep(name string) {
	if t == nil || t.finished {
		return
	}
	now := t.p.eng.Now()
	t.closeStep(now)
	t.stepID = t.p.allocID()
	t.stepName = name
	t.stepStart = now
}

// closeStep emits the open step span, if any.
func (t *Task) closeStep(now sim.Time) {
	if t.stepID == 0 {
		return
	}
	if now > t.stepStart {
		t.p.emit(Span{
			ID: t.stepID, SPU: t.spu, Proc: t.proc, Name: "step:" + t.stepName,
			Culprit: t.spu, Start: t.stepStart, End: now,
		})
	}
	t.stepID = 0
}

// Finish closes the final segment and step, verifies the conservation
// identity (buckets sum exactly to finish-start), and folds the task
// into the profiler's aggregates. Further calls are no-ops.
func (t *Task) Finish() {
	if t == nil || t.finished {
		return
	}
	now := t.p.eng.Now()
	t.closeSegment(now)
	t.closeStep(now)
	t.finished = true
	var total sim.Time
	for s := State(0); s < NumStates; s++ {
		total += t.buckets[s]
	}
	if total != now-t.started {
		t.p.violation("task %s (spu%d): buckets sum to %s but response time is %s",
			t.proc, int(t.spu), total, now-t.started)
	}
	t.p.fold(t, now)
}

package profile

import (
	"bufio"
	"fmt"
	"io"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

// Span is one timed interval: a process step ("step:compute"), a state
// segment within it ("runnable", "diskwait", ...), or a disk request
// ("disk:read" with "disk:queue"/"disk:service" children). Parent links
// segments to their step (0 = root); Flow links a wait span to the disk
// service span that resolved it, so the Chrome-trace export can draw an
// arrow from the culprit's activity to the victim's stall.
type Span struct {
	ID      int64
	Parent  int64
	SPU     core.SPUID
	Proc    string
	Name    string
	Culprit core.SPUID
	Start   sim.Time
	End     sim.Time
	Flow    int64
}

// DiskSpans records the span tree for one completed disk request: a
// root "disk:read"/"disk:write" span over the request's lifetime, a
// "disk:queue" child while it sat behind other requests (labelled with
// the culprit SPU served ahead of it), and a "disk:service" child for
// the transfer itself. It returns the service span's ID, which the
// completion window hands to waiters as their flow link.
func (p *Profiler) DiskSpans(spu core.SPUID, kind string, submitted, started, finished sim.Time, culprit core.SPUID) int64 {
	if p == nil {
		return 0
	}
	root := p.allocID()
	p.emit(Span{ID: root, SPU: spu, Proc: "disk", Name: "disk:" + kind,
		Culprit: culprit, Start: submitted, End: finished})
	if started > submitted {
		p.emit(Span{ID: p.allocID(), Parent: root, SPU: spu, Proc: "disk", Name: "disk:queue",
			Culprit: culprit, Start: submitted, End: started})
	}
	svc := p.allocID()
	p.emit(Span{ID: svc, Parent: root, SPU: spu, Proc: "disk", Name: "disk:service",
		Culprit: spu, Start: started, End: finished})
	return svc
}

// WriteSpans writes the stored spans as deterministic JSONL: a header
// line with counts, then one object per span, oldest-first. All times
// are integer simulated nanoseconds; nothing depends on the wall clock.
func (p *Profiler) WriteSpans(w io.Writer) error {
	bw := bufio.NewWriter(w)
	spans := p.Spans()
	fmt.Fprintf(bw, `{"spans":%d,"dropped":%d}`+"\n", len(spans), p.SpansDropped())
	for _, s := range spans {
		fmt.Fprintf(bw,
			`{"id":%d,"parent":%d,"spu":%d,"proc":%q,"name":%q,"culprit":%d,"start":%d,"end":%d,"flow":%d}`+"\n",
			s.ID, s.Parent, int(s.SPU), s.Proc, s.Name, int(s.Culprit),
			int64(s.Start), int64(s.End), s.Flow)
	}
	return bw.Flush()
}

// Package trace records the resource-management decisions the kernel
// makes — CPU loans and revocations, page evictions and memory-policy
// adjustments, disk fairness denials — as a bounded in-memory event log.
//
// Tracing exists for two audiences: tests that want to assert *why* a
// result happened (e.g. "isolation held because the loan was revoked
// within a tick"), and humans debugging a workload through cmd/pisosim's
// -trace flag. A nil *Tracer is valid and free: every method is a no-op
// on nil, so instrumented code never branches on "is tracing on".
package trace

import (
	"fmt"
	"io"
	"strings"

	"perfiso/internal/sim"
)

// Kind classifies an event by the subsystem that emitted it.
type Kind int

const (
	Sched   Kind = iota // CPU scheduling: dispatch, loan, revoke
	Mem                 // memory: eviction, lending, revocation
	Disk                // disk: fairness denials, policy decisions
	FS                  // file system: flushes, lock contention
	Proc                // process lifecycle
	Policy              // periodic policy ticks
	Fault               // injected faults and their recovery
	Audit               // invariant auditor violations and watchdog trips
	Control             // SLO controller: retunes, shedding, circuit breaker
	NumKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Sched:
		return "sched"
	case Mem:
		return "mem"
	case Disk:
		return "disk"
	case FS:
		return "fs"
	case Proc:
		return "proc"
	case Policy:
		return "policy"
	case Fault:
		return "fault"
	case Audit:
		return "audit"
	case Control:
		return "control"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded decision.
type Event struct {
	At      sim.Time
	Kind    Kind
	Subject string // who it concerns: thread, SPU, page group
	Action  string // what happened: "loan", "revoke", "evict", ...
	Detail  string // free-form specifics
}

// String renders an event as one log line.
func (e Event) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("%12s %-6s %-16s %s", e.At, e.Kind, e.Subject, e.Action)
	}
	return fmt.Sprintf("%12s %-6s %-16s %-10s %s", e.At, e.Kind, e.Subject, e.Action, e.Detail)
}

// Tracer is a bounded ring of events. The zero value is unusable; use
// New. A nil Tracer is a valid no-op sink.
type Tracer struct {
	eng     *sim.Engine
	ring    []Event
	next    int
	filled  bool
	dropped int64
	counts  [NumKinds]int64
	mask    [NumKinds]bool
	// reported is how many drops Dump has already announced, so repeated
	// dumps don't repeat the notice for the same lost events.
	reported int64
}

// New creates a tracer keeping the most recent capacity events (1024 if
// capacity <= 0), recording all kinds.
func New(eng *sim.Engine, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	t := &Tracer{eng: eng, ring: make([]Event, capacity)}
	for i := range t.mask {
		t.mask[i] = true
	}
	return t
}

// Only restricts recording to the given kinds (others are counted but
// not stored). Calling Only with no kinds re-enables everything.
func (t *Tracer) Only(kinds ...Kind) {
	if t == nil {
		return
	}
	if len(kinds) == 0 {
		for i := range t.mask {
			t.mask[i] = true
		}
		return
	}
	for i := range t.mask {
		t.mask[i] = false
	}
	for _, k := range kinds {
		t.mask[k] = true
	}
}

// Emit records an event. Safe (and free) on a nil tracer.
func (t *Tracer) Emit(kind Kind, subject, action, detail string) {
	if t == nil {
		return
	}
	t.counts[kind]++
	if !t.mask[kind] {
		return
	}
	if t.filled {
		t.dropped++ // the ring is full: this write evicts the oldest event
	}
	t.ring[t.next] = Event{At: t.eng.Now(), Kind: kind, Subject: subject, Action: action, Detail: detail}
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
}

// Emitf is Emit with a formatted detail string. The formatting cost is
// only paid when the tracer is non-nil.
func (t *Tracer) Emitf(kind Kind, subject, action, format string, args ...any) {
	if t == nil {
		return
	}
	t.Emit(kind, subject, action, fmt.Sprintf(format, args...))
}

// Len returns the number of stored events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.filled {
		return len(t.ring)
	}
	return t.next
}

// Dropped returns how many stored events the ring has overwritten —
// the events Emit accepted but Events can no longer return. A non-zero
// value means the capacity was too small for the run; it does not
// include events a Kind filter excluded on purpose.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Count returns how many events of the kind were emitted (including
// ones filtered out of storage or overwritten by the ring).
func (t *Tracer) Count(kind Kind) int64 {
	if t == nil {
		return 0
	}
	return t.counts[kind]
}

// Events returns the stored events oldest-first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, t.Len())
	if t.filled {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	return out
}

// Find returns stored events whose action contains the given substring,
// oldest-first.
func (t *Tracer) Find(action string) []Event {
	var out []Event
	for _, e := range t.Events() {
		if strings.Contains(e.Action, action) {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes the stored events to w, one line each, and reports how
// many earlier events the ring dropped so truncation is never silent.
// The dropped-events notice appears once per loss: a second Dump with no
// further drops in between does not repeat it.
func (t *Tracer) Dump(w io.Writer) {
	t.DumpFiltered(w, nil, "")
}

// DumpFiltered is Dump restricted to the given kinds (nil or empty =
// all) and, when spu is non-empty (an SPU name like "spu2"), to events
// concerning that SPU (see MatchSPU).
func (t *Tracer) DumpFiltered(w io.Writer, kinds []Kind, spu string) {
	if t == nil {
		return
	}
	if d := t.Dropped(); d > t.reported {
		fmt.Fprintf(w, "(%d earlier events dropped; raise the trace capacity to keep them)\n", d-t.reported)
		t.reported = d
	}
	for _, e := range FilterEvents(t.Events(), kinds, spu) {
		fmt.Fprintln(w, e)
	}
}

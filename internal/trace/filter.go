package trace

import (
	"fmt"
	"strings"
)

// ParseKinds parses a comma-separated list of kind names ("sched,mem")
// into Kinds. Names are matched case-insensitively against Kind.String;
// an empty string parses to nil (no filter).
func ParseKinds(csv string) ([]Kind, error) {
	csv = strings.TrimSpace(csv)
	if csv == "" {
		return nil, nil
	}
	var out []Kind
	for _, name := range strings.Split(csv, ",") {
		name = strings.ToLower(strings.TrimSpace(name))
		if name == "" {
			continue
		}
		found := false
		for k := Kind(0); k < NumKinds; k++ {
			if k.String() == name {
				out = append(out, k)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("trace: unknown kind %q (want one of %s)", name, kindNames())
		}
	}
	return out, nil
}

func kindNames() string {
	names := make([]string, NumKinds)
	for k := Kind(0); k < NumKinds; k++ {
		names[k] = k.String()
	}
	return strings.Join(names, ",")
}

// FilterEvents returns the events matching the kind set (nil or empty =
// all kinds) and, when spu is non-empty, concerning that SPU per
// MatchSPU. The input order is preserved.
func FilterEvents(events []Event, kinds []Kind, spu string) []Event {
	if len(kinds) == 0 && spu == "" {
		return events
	}
	var keep [NumKinds]bool
	if len(kinds) == 0 {
		for i := range keep {
			keep[i] = true
		}
	} else {
		for _, k := range kinds {
			if k >= 0 && k < NumKinds {
				keep[k] = true
			}
		}
	}
	out := make([]Event, 0, len(events))
	for _, e := range events {
		if !keep[e.Kind] {
			continue
		}
		if spu != "" && !MatchSPU(e, spu) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// MatchSPU reports whether the event concerns the named SPU ("spu2"):
// either the subject is exactly that name, or the detail mentions it at
// a token boundary (so "spu1" does not match an event about "spu10").
func MatchSPU(e Event, spu string) bool {
	if e.Subject == spu {
		return true
	}
	return containsToken(e.Detail, spu) || (e.Subject != "" && containsToken(e.Subject, spu))
}

// containsToken reports whether s contains sub not immediately followed
// by another digit (the one way an SPU name extends into a different
// SPU name).
func containsToken(s, sub string) bool {
	for off := 0; ; {
		i := strings.Index(s[off:], sub)
		if i < 0 {
			return false
		}
		end := off + i + len(sub)
		if end >= len(s) || s[end] < '0' || s[end] > '9' {
			return true
		}
		off = off + i + 1
	}
}

package trace

import (
	"strings"
	"testing"

	"perfiso/internal/sim"
)

func TestParseKinds(t *testing.T) {
	got, err := ParseKinds("sched, MEM ,disk")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{Sched, Mem, Disk}
	if len(got) != len(want) {
		t.Fatalf("ParseKinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParseKinds = %v, want %v", got, want)
		}
	}

	if got, err := ParseKinds(""); err != nil || got != nil {
		t.Fatalf("empty csv = (%v, %v), want (nil, nil)", got, err)
	}
	if got, err := ParseKinds("  "); err != nil || got != nil {
		t.Fatalf("blank csv = (%v, %v), want (nil, nil)", got, err)
	}
	if _, err := ParseKinds("sched,bogus"); err == nil {
		t.Fatal("unknown kind accepted")
	} else if !strings.Contains(err.Error(), "bogus") || !strings.Contains(err.Error(), "sched") {
		t.Fatalf("error %q should name the bad kind and list the valid ones", err)
	}
}

func TestFilterEvents(t *testing.T) {
	events := []Event{
		{Kind: Sched, Subject: "spu1", Action: "loan"},
		{Kind: Mem, Subject: "grp3", Action: "evict", Detail: "from spu1"},
		{Kind: Sched, Subject: "spu10", Action: "revoke"},
		{Kind: Disk, Subject: "disk0", Action: "deny", Detail: "spu2 over share"},
	}

	if got := FilterEvents(events, nil, ""); len(got) != 4 {
		t.Fatalf("no filter kept %d of 4", len(got))
	}
	if got := FilterEvents(events, []Kind{Sched}, ""); len(got) != 2 {
		t.Fatalf("kind filter kept %d, want 2", len(got))
	}
	// spu1 must match the subject "spu1" and the detail "from spu1" but
	// NOT the subject "spu10".
	got := FilterEvents(events, nil, "spu1")
	if len(got) != 2 {
		t.Fatalf("spu filter kept %d, want 2: %v", len(got), got)
	}
	if got[0].Action != "loan" || got[1].Action != "evict" {
		t.Fatalf("spu filter kept wrong events: %v", got)
	}
	// Combined: sched events about spu1.
	if got := FilterEvents(events, []Kind{Sched}, "spu1"); len(got) != 1 || got[0].Action != "loan" {
		t.Fatalf("combined filter = %v, want just the loan", got)
	}
}

func TestMatchSPUTokenBoundary(t *testing.T) {
	cases := []struct {
		e    Event
		spu  string
		want bool
	}{
		{Event{Subject: "spu1"}, "spu1", true},
		{Event{Subject: "spu10"}, "spu1", false},
		{Event{Subject: "t", Detail: "lent to spu1"}, "spu1", true},
		{Event{Subject: "t", Detail: "lent to spu12"}, "spu1", false},
		{Event{Subject: "t", Detail: "spu11 then spu1 again"}, "spu1", true},
		{Event{Subject: "t", Detail: "spu1->cpu3"}, "spu1", true},
		{Event{Subject: "t", Detail: ""}, "spu1", false},
	}
	for _, c := range cases {
		if got := MatchSPU(c.e, c.spu); got != c.want {
			t.Errorf("MatchSPU(%+v, %q) = %v, want %v", c.e, c.spu, got, c.want)
		}
	}
}

// The dropped-events notice must appear once per loss, not once per
// Dump: a second Dump with no drops in between stays quiet about them.
func TestDumpReportsDropsOnce(t *testing.T) {
	eng := sim.NewEngine()
	tr := New(eng, 2)
	for i := 0; i < 5; i++ {
		tr.Emit(Sched, "spu1", "loan", "")
	}

	var first strings.Builder
	tr.Dump(&first)
	if !strings.Contains(first.String(), "3 earlier events dropped") {
		t.Fatalf("first dump missing the dropped notice:\n%s", first.String())
	}

	var second strings.Builder
	tr.Dump(&second)
	if strings.Contains(second.String(), "dropped") {
		t.Fatalf("second dump repeated the dropped notice with no new drops:\n%s", second.String())
	}

	// A fresh drop after the first report is announced — with the delta,
	// not the lifetime total.
	tr.Emit(Sched, "spu1", "loan", "")
	var third strings.Builder
	tr.Dump(&third)
	if !strings.Contains(third.String(), "1 earlier events dropped") {
		t.Fatalf("third dump should report exactly the 1 new drop:\n%s", third.String())
	}
}

// DumpFiltered applies the same kind and SPU filters as FilterEvents.
func TestDumpFiltered(t *testing.T) {
	eng := sim.NewEngine()
	tr := New(eng, 16)
	tr.Emit(Sched, "spu1", "loan", "")
	tr.Emit(Mem, "grp1", "evict", "from spu2")
	tr.Emit(Sched, "spu2", "revoke", "")

	var out strings.Builder
	tr.DumpFiltered(&out, []Kind{Sched}, "spu2")
	s := out.String()
	if !strings.Contains(s, "revoke") || strings.Contains(s, "loan") || strings.Contains(s, "evict") {
		t.Fatalf("DumpFiltered output wrong:\n%s", s)
	}
}

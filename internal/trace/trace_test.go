package trace

import (
	"fmt"
	"strings"
	"testing"

	"perfiso/internal/sim"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Sched, "cpu0", "loan", "to spu3")
	tr.Emitf(Mem, "spu2", "evict", "%d pages", 5)
	tr.Only(Sched)
	if tr.Len() != 0 || tr.Count(Sched) != 0 || tr.Events() != nil {
		t.Fatal("nil tracer should be inert")
	}
}

func TestEmitAndEvents(t *testing.T) {
	eng := sim.NewEngine()
	tr := New(eng, 16)
	eng.At(5*sim.Millisecond, "e", func() {
		tr.Emit(Sched, "cpu1", "loan", "thread x")
	})
	eng.Run()
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("len = %d", len(evs))
	}
	e := evs[0]
	if e.At != 5*sim.Millisecond || e.Kind != Sched || e.Subject != "cpu1" {
		t.Fatalf("event = %+v", e)
	}
	if tr.Count(Sched) != 1 {
		t.Fatal("count missing")
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := New(sim.NewEngine(), 4)
	for i := 0; i < 10; i++ {
		tr.Emitf(Proc, "p", "step", "%d", i)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].Detail != "6" || evs[3].Detail != "9" {
		t.Fatalf("ring order wrong: %v", evs)
	}
	if tr.Count(Proc) != 10 {
		t.Fatal("count should include overwritten events")
	}
}

func TestOnlyFilters(t *testing.T) {
	tr := New(sim.NewEngine(), 16)
	tr.Only(Mem)
	tr.Emit(Sched, "c", "loan", "")
	tr.Emit(Mem, "s", "evict", "")
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
	if tr.Count(Sched) != 1 {
		t.Fatal("filtered kinds still count")
	}
	tr.Only() // reset
	tr.Emit(Sched, "c", "loan", "")
	if tr.Len() != 2 {
		t.Fatal("Only() should re-enable all kinds")
	}
}

func TestFind(t *testing.T) {
	tr := New(sim.NewEngine(), 16)
	tr.Emit(Sched, "cpu0", "loan", "")
	tr.Emit(Sched, "cpu0", "revoke", "")
	tr.Emit(Sched, "cpu1", "loan", "")
	if got := tr.Find("loan"); len(got) != 2 {
		t.Fatalf("Find(loan) = %d", len(got))
	}
	if got := tr.Find("revoke"); len(got) != 1 {
		t.Fatalf("Find(revoke) = %d", len(got))
	}
}

func TestDumpAndString(t *testing.T) {
	tr := New(sim.NewEngine(), 8)
	tr.Emit(Disk, "spu3", "deny", "over threshold")
	tr.Emit(FS, "inode", "contend", "")
	var sb strings.Builder
	tr.Dump(&sb)
	out := sb.String()
	if !strings.Contains(out, "deny") || !strings.Contains(out, "over threshold") {
		t.Fatalf("dump missing content:\n%s", out)
	}
	if strings.Count(out, "\n") != 2 {
		t.Fatalf("want 2 lines:\n%s", out)
	}
}

func TestKindStrings(t *testing.T) {
	names := map[Kind]string{Sched: "sched", Mem: "mem", Disk: "disk", FS: "fs", Proc: "proc", Policy: "policy"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestDefaultCapacity(t *testing.T) {
	tr := New(sim.NewEngine(), 0)
	for i := 0; i < 2000; i++ {
		tr.Emit(Proc, "p", "a", "")
	}
	if tr.Len() != 1024 {
		t.Fatalf("default capacity = %d", tr.Len())
	}
}

// Ring overwrites must never be silent: Dropped counts them and Dump
// announces the truncation.
func TestDroppedCountsOverwrites(t *testing.T) {
	var nilTr *Tracer
	if nilTr.Dropped() != 0 {
		t.Fatal("nil tracer reports drops")
	}
	tr := New(sim.NewEngine(), 4)
	for i := 0; i < 4; i++ {
		tr.Emit(Proc, "p", "step", "")
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d before the ring wrapped", tr.Dropped())
	}
	for i := 0; i < 6; i++ {
		tr.Emit(Proc, "p", "step", "")
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	var sb strings.Builder
	tr.Dump(&sb)
	if !strings.Contains(sb.String(), "6 earlier events dropped") {
		t.Fatalf("Dump does not announce the drop:\n%s", sb.String())
	}
	if strings.Count(sb.String(), "\n") != 5 { // 4 events + 1 notice
		t.Fatalf("want 5 lines:\n%s", sb.String())
	}
}

// Events a Kind filter excludes are not "dropped": they were never
// accepted for storage, and Count already accounts for them.
func TestDroppedIgnoresFilteredKinds(t *testing.T) {
	tr := New(sim.NewEngine(), 2)
	tr.Only(Mem)
	for i := 0; i < 10; i++ {
		tr.Emit(Sched, "c", "loan", "")
	}
	if tr.Dropped() != 0 {
		t.Fatalf("filtered events counted as dropped: %d", tr.Dropped())
	}
}

// Every defined kind has a distinct lowercase name, and out-of-range
// values render as kind(N) instead of panicking or aliasing.
func TestKindStringRoundTrip(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(0); k < NumKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d renders as %q", k, s)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("kinds %d and %d share the name %q", prev, k, s)
		}
		seen[s] = k
	}
	for _, k := range []Kind{NumKinds, Kind(99), Kind(-1)} {
		want := fmt.Sprintf("kind(%d)", int(k))
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

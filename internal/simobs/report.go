package simobs

import (
	"fmt"
	"strings"

	"perfiso/internal/sim"
	"perfiso/internal/stats"
)

// String renders the full self-observability report for one scenario:
// queue internals, the event census, sampled host-time attribution, and
// the parallelism-feasibility section.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== simobs: %s ==\n", r.Scenario)
	fmt.Fprintf(&b, "events dispatched: %d across %d engine(s); host samples: %d\n\n",
		r.Events, r.Engines, r.Samples)

	b.WriteString(r.queueSection())
	b.WriteString("\n")
	b.WriteString(r.censusTable().String())
	b.WriteString("\n")
	b.WriteString(r.hostSection())
	b.WriteString("\n")
	b.WriteString(r.FeasibilitySection())
	return b.String()
}

// queueSection renders the event-queue internals.
func (r *Report) queueSection() string {
	q := r.Queue
	var b strings.Builder
	fmt.Fprintf(&b, "-- event queue (%s) --\n", q.Kind)
	fmt.Fprintf(&b, "pushes %d, same-slot collisions %d (%.1f%%), rebuilds %d (%d grow, %d shrink)\n",
		q.Pushes, q.Collisions, 100*q.CollisionRate(), q.Rebuilds, q.Grows, q.Shrinks)
	fmt.Fprintf(&b, "final: %d buckets, day width %.1fus, %d pending, max bucket depth %d\n",
		q.Buckets, q.Width.Microseconds(), q.Len, q.MaxDepth)
	if len(q.Occupancy) > 0 {
		b.WriteString("bucket occupancy:")
		for d, n := range q.Occupancy {
			if n == 0 {
				continue
			}
			if d == len(q.Occupancy)-1 {
				fmt.Fprintf(&b, " %d+:%d", d, n)
			} else {
				fmt.Fprintf(&b, " %d:%d", d, n)
			}
		}
		b.WriteString("\n")
	}
	if len(q.WidthLog) > 0 {
		b.WriteString("day-width evolution:")
		for _, w := range q.WidthLog {
			fmt.Fprintf(&b, " %.1fus/%db@%dev", w.Width.Microseconds(), w.Buckets, w.Events)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// censusTable renders the per-callback-site event census.
func (r *Report) censusTable() *stats.Table {
	t := stats.NewTable("event census", "event", "module", "domain", "count", "events%")
	for _, c := range r.Classes {
		pct := 0.0
		if r.Events > 0 {
			pct = 100 * float64(c.Count) / float64(r.Events)
		}
		t.Addf(c.Name, c.Module, c.Domain, fmt.Sprintf("%d", c.Count), pct)
	}
	return t
}

// hostSection renders sampled host-time attribution and the GC windows.
func (r *Report) hostSection() string {
	var b strings.Builder
	total := r.HostNSTotal()
	t := stats.NewTable("host-time attribution (sampled)", "module", "events", "host ms", "host%")
	for _, m := range r.ModuleHosts() {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(m.HostNS) / float64(total)
		}
		t.Addf(m.Module, fmt.Sprintf("%d", m.Events), float64(m.HostNS)/1e6, pct)
	}
	b.WriteString(t.String())
	w := r.WindowTotals()
	if w.Events > 0 {
		perEvent := float64(w.AllocObjects) / float64(w.Events)
		fmt.Fprintf(&b, "gc windows: %d windows over %d events, %.1f ms host, %d gc cycles, %.3f allocs/event (%.1f B/event)\n",
			len(r.Windows), w.Events, float64(w.HostNS)/1e6, w.GCCycles,
			perEvent, float64(w.AllocBytes)/float64(w.Events))
	}
	return b.String()
}

// FeasibilitySection renders the parallelism-feasibility numbers for one
// scenario: the domain split, cross-domain fraction, and lookahead — the
// inputs that decide whether a conservative parallel core is worth
// building and at what window size.
func (r *Report) FeasibilitySection() string {
	var b strings.Builder
	b.WriteString("-- parallelism feasibility --\n")
	fmt.Fprintf(&b, "domains (%d): %s\n", len(r.Domains), strings.Join(r.Domains, ", "))
	chained := r.Intra + r.Cross
	fmt.Fprintf(&b, "schedules: %d intra-domain, %d cross-domain, %d external\n",
		r.Intra, r.Cross, r.External)
	if chained > 0 {
		fmt.Fprintf(&b, "cross-domain fraction: %.2f%% of chained schedules\n", 100*r.CrossFraction())
	}
	if len(r.Edges) > 0 {
		fmt.Fprintf(&b, "lookahead: mean %.1fus, min %.1fus\n",
			r.MeanLookahead().Microseconds(), r.MinLookahead().Microseconds())
		t := stats.NewTable("cross-domain edges", "from", "to", "count", "mean la us", "min la us")
		for _, e := range r.Edges {
			mean := sim.Time(0)
			if e.Count > 0 {
				mean = e.SumLookahead / sim.Time(e.Count)
			}
			t.Addf(e.From, e.To, fmt.Sprintf("%d", e.Count),
				mean.Microseconds(), e.MinLookahead.Microseconds())
		}
		b.WriteString(t.String())
	}
	return b.String()
}

package simobs

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"perfiso/internal/sim"
)

func TestClassify(t *testing.T) {
	cases := []struct{ name, module, domain string }{
		{"kernel.tick", "kernel", "global"},
		{"sched.slice", "sched", "global"},
		{"disk.complete", "disk", "global"},
		{"disk0.complete", "disk", "disk0"},
		{"disk12.complete", "disk", "disk12"},
		{"diskette.jam", "diskette", "global"},
		{"lock.release", "lock", "global"},
		{"bare", "bare", "global"},
	}
	for _, c := range cases {
		m, d := Classify(c.name)
		if m != c.module || d != c.domain {
			t.Errorf("Classify(%q) = %s/%s, want %s/%s", c.name, m, d, c.module, c.domain)
		}
	}
}

// runScenario drives a small two-disk workload under a collector and
// returns the finished report.
func runScenario(t *testing.T) *Report {
	t.Helper()
	col := Collect(Config{SampleStride: 4, WindowEvents: 16})
	e := sim.NewEngine()
	var pump func()
	n := 0
	pump = func() {
		// Intra-domain chain plus two cross-domain hops per round.
		e.CallAfter(3*sim.Microsecond, "disk0.complete", func() {})
		e.CallAfter(5*sim.Microsecond, "disk1.complete", func() {
			e.CallAfter(2*sim.Microsecond, "kernel.wakeup", func() {})
		})
		if n++; n < 100 {
			e.CallAfter(10*sim.Microsecond, "kernel.tick", pump)
		}
	}
	e.Call(0, "kernel.tick", pump)
	e.Run()
	return col.Finish("unit")
}

func TestCollectorReport(t *testing.T) {
	r := runScenario(t)
	if r.Scenario != "unit" || r.Engines != 1 {
		t.Fatalf("report header = %+v", r)
	}
	// 100 ticks (1 initial + 99 re-armed), 100 disk0, 100 disk1, 100 wakeups.
	if r.Events != 400 {
		t.Fatalf("events = %d", r.Events)
	}
	wantDomains := []string{"disk0", "disk1", "global"}
	if strings.Join(r.Domains, ",") != strings.Join(wantDomains, ",") {
		t.Fatalf("domains = %v", r.Domains)
	}
	// Cross edges: global->disk0 (100), global->disk1 (100), disk1->global
	// (100). Intra: tick re-arms (99). External: the initial Call.
	if r.Cross != 300 || r.Intra != 99 || r.External != 1 {
		t.Fatalf("intra/cross/external = %d/%d/%d", r.Intra, r.Cross, r.External)
	}
	if f := r.CrossFraction(); f < 0.74 || f > 0.76 {
		t.Fatalf("cross fraction = %v", f)
	}
	if la := r.MinLookahead(); la != 2*sim.Microsecond {
		t.Fatalf("min lookahead = %v", la)
	}
	if la := r.MeanLookahead(); la < 3*sim.Microsecond || la > 4*sim.Microsecond {
		t.Fatalf("mean lookahead = %v", la)
	}
	if len(r.Edges) != 3 {
		t.Fatalf("edges = %+v", r.Edges)
	}
	if r.Queue.Pushes == 0 || r.Queue.Kind == "" {
		t.Fatalf("queue stats missing: %+v", r.Queue)
	}
	// The text report must mention every section.
	s := r.String()
	for _, want := range []string{"event census", "parallelism feasibility", "cross-domain fraction", "host-time attribution", "event queue"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

// TestCollectorUninstalls checks Finish restores the hook so later
// engines run dark.
func TestCollectorUninstalls(t *testing.T) {
	col := Collect(Config{})
	_ = sim.NewEngine()
	col.Finish("x")
	e := sim.NewEngine()
	if e.Obs() != nil {
		t.Fatal("engine observed after collector finished")
	}
}

func TestJSONLDeterministicSubset(t *testing.T) {
	deterministic := func() string {
		var buf bytes.Buffer
		if err := runScenario(t).WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		var keep []string
		for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
			var probe struct {
				Type string `json:"type"`
			}
			if err := json.Unmarshal([]byte(line), &probe); err != nil {
				t.Fatalf("bad JSONL line %q: %v", line, err)
			}
			if probe.Type == "" {
				t.Fatalf("line without type: %q", line)
			}
			if !HostLineTypes[probe.Type] {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	a, b := deterministic(), deterministic()
	if a != b {
		t.Fatalf("deterministic JSONL subset differs between runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	for _, want := range []string{`"type":"simobs_scenario"`, `"type":"simobs_queue"`, `"type":"simobs_class"`, `"type":"simobs_edge"`} {
		if !strings.Contains(a, want) {
			t.Fatalf("JSONL missing %s", want)
		}
	}
}

func TestPprofAndFolded(t *testing.T) {
	r := runScenario(t)
	// Force some host attribution even if sampling missed: the profile
	// writer must still emit a structurally valid (possibly empty) profile.
	var buf bytes.Buffer
	if err := r.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("profile is not gzipped: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("profile does not decompress: %v", err)
	}
	if len(raw) == 0 {
		t.Fatal("empty profile message")
	}
	var folded bytes.Buffer
	if err := r.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(folded.String()), "\n") {
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "unit;") || !strings.Contains(line, " ") {
			t.Fatalf("bad folded line %q", line)
		}
	}
}

func TestModuleHosts(t *testing.T) {
	r := runScenario(t)
	mods := map[string]bool{}
	var events uint64
	for _, m := range r.ModuleHosts() {
		mods[m.Module] = true
		events += m.Events
	}
	if !mods["kernel"] || !mods["disk"] {
		t.Fatalf("module aggregation = %v", mods)
	}
	if events != r.Events {
		t.Fatalf("module events %d != dispatched %d", events, r.Events)
	}
}

// Package simobs is the simulator's self-observability layer (ISSUE 10):
// it applies the paper's measure-before-you-optimize discipline to the
// simulator's own execution. internal/sim exposes the raw hooks (event
// classes, domain edges, queue counters, host-time samples); this package
// classifies event names into modules and resource domains, collects
// observers across every engine a scenario builds, and renders three
// artifacts:
//
//   - the event-core report: calendar-queue internals and the per-class
//     event census;
//   - host-time attribution: sampled wall-clock per module/class with
//     GC/alloc windows, exported as JSONL and a pprof profile;
//   - the parallelism-feasibility report: per-domain event fractions and
//     cross-domain lookahead, the design input for a conservative
//     parallel core (ROADMAP item 3).
//
// Everything here runs off the hot path: when no collector is installed
// and no kernel option asks for it, the engine pays one nil check per
// schedule and per dispatch (see the zero-alloc guards in internal/kernel).
package simobs

import (
	"sort"
	"strings"

	"perfiso/internal/sim"
)

// Config tunes collection; zero values pick the sim defaults (stride 32,
// 64Ki-event windows).
type Config struct {
	SampleStride int
	WindowEvents int
}

// Classify is the kernel-aware event classifier: the prefix before the
// first '.' names the module, and the domain is per-disk for labeled
// disk events ("disk0.complete" → domain disk0), global otherwise. New
// modules classify themselves by following the "module.event" naming
// convention; anything unprefixed becomes its own module in domain
// global, so nothing is ever dropped from the census.
func Classify(name string) (module, domain string) {
	dot := strings.IndexByte(name, '.')
	if dot < 0 {
		return name, "global"
	}
	module = name[:dot]
	if rest := strings.TrimPrefix(module, "disk"); rest != module && isDigits(rest) {
		// Per-disk completion events: the disk index is the resource
		// domain, the module stays "disk" so host attribution folds all
		// disks together.
		return "disk", module
	}
	return module, "global"
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// ObsConfig builds the sim-level observer config for this package's
// classifier, for callers (the kernel) that attach observers directly.
func (c Config) ObsConfig() sim.ObsConfig {
	return sim.ObsConfig{
		Classify:     Classify,
		SampleStride: c.SampleStride,
		WindowEvents: c.WindowEvents,
	}
}

// Collector attaches an observer to every engine built while it is
// installed, so whole registry scenarios can be instrumented without
// threading an option through each experiment constructor (the same
// process-wide pattern as sim.SetDefaultQueue). Install with Collect,
// run the scenario, then Finish.
type Collector struct {
	prev    func(*sim.Engine)
	engines []*sim.Engine
}

// Collect installs the engine hook. Scenarios must run sequentially
// between Collect and Finish; the hook is process-wide.
func Collect(cfg Config) *Collector {
	c := &Collector{}
	obsCfg := cfg.ObsConfig()
	c.prev = sim.SetEngineHook(func(e *sim.Engine) {
		e.AttachObs(obsCfg)
		c.engines = append(c.engines, e)
	})
	return c
}

// Finish uninstalls the hook and merges every observed engine into one
// scenario report.
func (c *Collector) Finish(scenario string) *Report {
	sim.SetEngineHook(c.prev)
	return buildReport(scenario, c.engines)
}

// Build merges the given engines into one scenario report directly,
// for callers (the kernel, single-engine CLIs) that attached observers
// themselves rather than through a Collector.
func Build(scenario string, engines ...*sim.Engine) *Report {
	return buildReport(scenario, engines)
}

// Report is one scenario's merged self-observability snapshot.
type Report struct {
	Scenario string
	Engines  int
	// Events is the total dispatched across all engines (deterministic).
	Events uint64
	// Queue merges the final queue telemetry of every engine.
	Queue sim.QueueStats
	// Classes is the event census, merged by name, sorted by name.
	Classes []sim.ObsClassStat
	// Intra/Cross/External split every schedule by where it was issued
	// and where it lands (see sim.Obs.EdgeTotals).
	Intra, Cross, External uint64
	// Edges are the merged cross-domain causality edges.
	Edges []sim.ObsEdgeStat
	// Domains lists every domain seen, sorted.
	Domains []string
	// Samples counts wall-clock samples; Windows the GC/alloc windows.
	// Sample counts are deterministic, the nanoseconds inside are not.
	Samples uint64
	Windows []sim.ObsWindow
}

func buildReport(scenario string, engines []*sim.Engine) *Report {
	r := &Report{Scenario: scenario, Engines: len(engines)}
	classes := map[string]*sim.ObsClassStat{}
	edges := map[[2]string]*sim.ObsEdgeStat{}
	domains := map[string]bool{}
	for _, e := range engines {
		r.Events += e.Dispatched()
		r.Queue.Merge(e.QueueStats())
		o := e.Obs()
		if o == nil {
			continue
		}
		for _, c := range o.Classes() {
			if have := classes[c.Name]; have != nil {
				have.Count += c.Count
				have.HostNS += c.HostNS
			} else {
				cc := c
				classes[c.Name] = &cc
			}
		}
		for _, ed := range o.Edges() {
			key := [2]string{ed.From, ed.To}
			if have := edges[key]; have != nil {
				have.Count += ed.Count
				have.SumLookahead += ed.SumLookahead
				if ed.MinLookahead < have.MinLookahead {
					have.MinLookahead = ed.MinLookahead
				}
			} else {
				ec := ed
				edges[key] = &ec
			}
		}
		for _, d := range o.Domains() {
			domains[d] = true
		}
		intra, cross, external := o.EdgeTotals()
		r.Intra += intra
		r.Cross += cross
		r.External += external
		r.Samples += o.Samples()
		r.Windows = append(r.Windows, o.Windows()...)
	}
	for _, c := range classes {
		r.Classes = append(r.Classes, *c)
	}
	sort.Slice(r.Classes, func(i, j int) bool { return r.Classes[i].Name < r.Classes[j].Name })
	for _, e := range edges {
		r.Edges = append(r.Edges, *e)
	}
	sort.Slice(r.Edges, func(i, j int) bool {
		if r.Edges[i].From != r.Edges[j].From {
			return r.Edges[i].From < r.Edges[j].From
		}
		return r.Edges[i].To < r.Edges[j].To
	})
	for d := range domains {
		r.Domains = append(r.Domains, d)
	}
	sort.Strings(r.Domains)
	return r
}

// CrossFraction is the fraction of in-dispatch schedules that crossed a
// resource-domain boundary — the share of event chains a conservative
// parallel simulation would have to synchronize on.
func (r *Report) CrossFraction() float64 {
	total := r.Intra + r.Cross
	if total == 0 {
		return 0
	}
	return float64(r.Cross) / float64(total)
}

// MeanLookahead is the mean scheduling horizon of cross-domain edges:
// how far in the future, on average, one domain schedules into another.
// Larger is better for conservative parallelization.
func (r *Report) MeanLookahead() sim.Time {
	var sum sim.Time
	var n uint64
	for _, e := range r.Edges {
		sum += e.SumLookahead
		n += e.Count
	}
	if n == 0 {
		return 0
	}
	return sum / sim.Time(n)
}

// MinLookahead is the tightest cross-domain edge — the bound on safe
// conservative window size.
func (r *Report) MinLookahead() sim.Time {
	var min sim.Time
	for i, e := range r.Edges {
		if i == 0 || e.MinLookahead < min {
			min = e.MinLookahead
		}
	}
	return min
}

// ModuleHost is sampled host time aggregated to one module.
type ModuleHost struct {
	Module string
	Events uint64
	HostNS int64
}

// ModuleHosts aggregates the census by module, sorted by descending
// host time then name.
func (r *Report) ModuleHosts() []ModuleHost {
	agg := map[string]*ModuleHost{}
	for _, c := range r.Classes {
		m := agg[c.Module]
		if m == nil {
			m = &ModuleHost{Module: c.Module}
			agg[c.Module] = m
		}
		m.Events += c.Count
		m.HostNS += c.HostNS
	}
	out := make([]ModuleHost, 0, len(agg))
	for _, m := range agg {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].HostNS != out[j].HostNS {
			return out[i].HostNS > out[j].HostNS
		}
		return out[i].Module < out[j].Module
	})
	return out
}

// HostNSTotal is the total sampled wall-clock attributed to classes.
func (r *Report) HostNSTotal() int64 {
	var sum int64
	for _, c := range r.Classes {
		sum += c.HostNS
	}
	return sum
}

// WindowTotals sums the GC/alloc windows.
func (r *Report) WindowTotals() sim.ObsWindow {
	var t sim.ObsWindow
	for _, w := range r.Windows {
		t.Events += w.Events
		t.HostNS += w.HostNS
		t.GCCycles += w.GCCycles
		t.AllocObjects += w.AllocObjects
		t.AllocBytes += w.AllocBytes
	}
	return t
}

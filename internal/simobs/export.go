package simobs

import (
	"encoding/json"
	"fmt"
	"io"

	"perfiso/internal/profile"
)

// JSONL export. Every line carries a "type" discriminator. Line types
// are split into a deterministic set — identical across runs of the same
// build, so they can be diffed and asserted on — and a host set whose
// nanosecond fields depend on the machine:
//
//	deterministic: simobs_scenario, simobs_queue, simobs_width,
//	               simobs_class, simobs_edge
//	host:          simobs_host, simobs_window
//
// Downstream tools filter on the prefix; HostLineTypes lists the
// nondeterministic ones.

// HostLineTypes are the JSONL line types whose values depend on host
// timing; everything else is deterministic for a given build + scenario.
var HostLineTypes = map[string]bool{"simobs_host": true, "simobs_window": true}

type scenarioLine struct {
	Type          string   `json:"type"`
	Scenario      string   `json:"scenario"`
	Engines       int      `json:"engines"`
	Events        uint64   `json:"events"`
	Intra         uint64   `json:"intra"`
	Cross         uint64   `json:"cross"`
	External      uint64   `json:"external"`
	CrossFraction float64  `json:"cross_fraction"`
	MeanLookahead int64    `json:"mean_lookahead_ns"`
	MinLookahead  int64    `json:"min_lookahead_ns"`
	Domains       []string `json:"domains"`
	Samples       uint64   `json:"samples"`
}

type queueLine struct {
	Type          string  `json:"type"`
	Scenario      string  `json:"scenario"`
	Kind          string  `json:"kind"`
	Len           int     `json:"len"`
	Buckets       int     `json:"buckets"`
	WidthNS       int64   `json:"width_ns"`
	Pushes        uint64  `json:"pushes"`
	Collisions    uint64  `json:"collisions"`
	CollisionRate float64 `json:"collision_rate"`
	Rebuilds      uint64  `json:"rebuilds"`
	Grows         uint64  `json:"grows"`
	Shrinks       uint64  `json:"shrinks"`
	MaxDepth      int     `json:"max_depth"`
	Occupancy     []int   `json:"occupancy"`
}

type widthLine struct {
	Type     string `json:"type"`
	Scenario string `json:"scenario"`
	WidthNS  int64  `json:"width_ns"`
	Buckets  int    `json:"buckets"`
	Events   int    `json:"events"`
}

type classLine struct {
	Type     string `json:"type"`
	Scenario string `json:"scenario"`
	Name     string `json:"name"`
	Module   string `json:"module"`
	Domain   string `json:"domain"`
	Count    uint64 `json:"count"`
}

type edgeLine struct {
	Type          string `json:"type"`
	Scenario      string `json:"scenario"`
	From          string `json:"from"`
	To            string `json:"to"`
	Count         uint64 `json:"count"`
	MeanLookahead int64  `json:"mean_lookahead_ns"`
	MinLookahead  int64  `json:"min_lookahead_ns"`
}

type hostLine struct {
	Type     string `json:"type"`
	Scenario string `json:"scenario"`
	Name     string `json:"name"`
	Module   string `json:"module"`
	HostNS   int64  `json:"host_ns"`
}

type windowLine struct {
	Type         string `json:"type"`
	Scenario     string `json:"scenario"`
	Events       uint64 `json:"events"`
	HostNS       int64  `json:"host_ns"`
	GCCycles     uint64 `json:"gc_cycles"`
	AllocObjects uint64 `json:"alloc_objects"`
	AllocBytes   uint64 `json:"alloc_bytes"`
}

// WriteJSONL writes the report as one JSON object per line, deterministic
// lines first, then the host-timing lines.
func (r *Report) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(scenarioLine{
		Type: "simobs_scenario", Scenario: r.Scenario, Engines: r.Engines,
		Events: r.Events, Intra: r.Intra, Cross: r.Cross, External: r.External,
		CrossFraction: r.CrossFraction(),
		MeanLookahead: int64(r.MeanLookahead()), MinLookahead: int64(r.MinLookahead()),
		Domains: r.Domains, Samples: r.Samples,
	}); err != nil {
		return err
	}
	q := r.Queue
	if err := enc.Encode(queueLine{
		Type: "simobs_queue", Scenario: r.Scenario, Kind: q.Kind, Len: q.Len,
		Buckets: q.Buckets, WidthNS: int64(q.Width), Pushes: q.Pushes,
		Collisions: q.Collisions, CollisionRate: q.CollisionRate(),
		Rebuilds: q.Rebuilds, Grows: q.Grows, Shrinks: q.Shrinks,
		MaxDepth: q.MaxDepth, Occupancy: q.Occupancy,
	}); err != nil {
		return err
	}
	for _, wc := range q.WidthLog {
		if err := enc.Encode(widthLine{
			Type: "simobs_width", Scenario: r.Scenario,
			WidthNS: int64(wc.Width), Buckets: wc.Buckets, Events: wc.Events,
		}); err != nil {
			return err
		}
	}
	for _, c := range r.Classes {
		if err := enc.Encode(classLine{
			Type: "simobs_class", Scenario: r.Scenario,
			Name: c.Name, Module: c.Module, Domain: c.Domain, Count: c.Count,
		}); err != nil {
			return err
		}
	}
	for _, e := range r.Edges {
		mean := int64(0)
		if e.Count > 0 {
			mean = int64(e.SumLookahead) / int64(e.Count)
		}
		if err := enc.Encode(edgeLine{
			Type: "simobs_edge", Scenario: r.Scenario,
			From: e.From, To: e.To, Count: e.Count,
			MeanLookahead: mean, MinLookahead: int64(e.MinLookahead),
		}); err != nil {
			return err
		}
	}
	for _, c := range r.Classes {
		if c.HostNS == 0 {
			continue
		}
		if err := enc.Encode(hostLine{
			Type: "simobs_host", Scenario: r.Scenario,
			Name: c.Name, Module: c.Module, HostNS: c.HostNS,
		}); err != nil {
			return err
		}
	}
	for _, win := range r.Windows {
		if err := enc.Encode(windowLine{
			Type: "simobs_window", Scenario: r.Scenario,
			Events: win.Events, HostNS: win.HostNS, GCCycles: win.GCCycles,
			AllocObjects: win.AllocObjects, AllocBytes: win.AllocBytes,
		}); err != nil {
			return err
		}
	}
	return nil
}

// foldedSamples builds the host-time attribution stacks: one sample per
// class that held at least one wall-clock sample, rooted at the scenario
// so multi-scenario profiles stay separable in pprof.
func (r *Report) foldedSamples() []profile.FoldedSample {
	var out []profile.FoldedSample
	for _, c := range r.Classes {
		if c.HostNS == 0 {
			continue
		}
		out = append(out, profile.FoldedSample{
			Stack: []string{r.Scenario, c.Module, c.Name},
			Value: c.HostNS,
		})
	}
	return out
}

// WritePprof writes the sampled host-time attribution as a gzipped pprof
// protobuf: stacks scenario;module;event valued in host nanoseconds, so
// `go tool pprof -top` shows where real time went while simulating.
func (r *Report) WritePprof(w io.Writer) error {
	return profile.WriteFoldedPprof(w, "hosttime", "nanoseconds", r.foldedSamples())
}

// WritePprofAll writes one combined host-attribution profile for several
// scenario reports.
func WritePprofAll(w io.Writer, reports []*Report) error {
	var all []profile.FoldedSample
	for _, r := range reports {
		all = append(all, r.foldedSamples()...)
	}
	return profile.WriteFoldedPprof(w, "hosttime", "nanoseconds", all)
}

// WriteFolded writes the host attribution in Brendan Gregg's folded text
// format (stack space value), ready for flamegraph.pl.
func (r *Report) WriteFolded(w io.Writer) error {
	for _, s := range r.foldedSamples() {
		line := ""
		for i, fr := range s.Stack {
			if i > 0 {
				line += ";"
			}
			line += fr
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", line, s.Value); err != nil {
			return err
		}
	}
	return nil
}

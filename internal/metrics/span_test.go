package metrics

import (
	"bytes"
	"encoding/json"
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

// WriteChromeTraceWithSpans renders each span as a complete slice on a
// named thread row of its SPU's process, carries the culprit as an
// argument, and connects flow sources to targets with "s"/"f" arrows.
func TestWriteChromeTraceWithSpans(t *testing.T) {
	r, _ := sampleRegistry(t)
	names := Names{core.FirstUserID: "alice", core.FirstUserID + 1: "bob"}
	spans := []SpanEvent{
		{Name: "disk:service", SPU: core.FirstUserID, Track: "disk0",
			Start: 10 * sim.Millisecond, End: 30 * sim.Millisecond,
			FlowID: 7, FlowOut: true},
		{Name: "diskwait", SPU: core.FirstUserID + 1, Track: "reader",
			Start: 5 * sim.Millisecond, End: 30 * sim.Millisecond,
			Culprit: "alice", FlowID: 7, FlowIn: true},
		{Name: "run", SPU: core.FirstUserID + 1, Track: "reader",
			Start: 30 * sim.Millisecond, End: 40 * sim.Millisecond},
	}

	var buf bytes.Buffer
	if err := r.WriteChromeTraceWithSpans(&buf, nil, names, spans); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid trace JSON:\n%s", buf.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}

	threadNames := map[string]bool{}
	var slices, flowOut, flowIn int
	var culprit string
	waitTID, runTID := -1, -2
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M":
			if e["name"] == "thread_name" {
				threadNames[e["args"].(map[string]any)["name"].(string)] = true
			}
		case "X":
			slices++
			if e["name"] == "diskwait" {
				culprit = e["args"].(map[string]any)["culprit"].(string)
				waitTID = int(e["tid"].(float64))
			}
			if e["name"] == "run" {
				runTID = int(e["tid"].(float64))
			}
		case "s":
			flowOut++
			if e["id"].(float64) != 7 {
				t.Errorf("flow source id = %v, want 7", e["id"])
			}
		case "f":
			flowIn++
			if e["bp"] != "e" {
				t.Errorf("flow target bp = %v, want \"e\" (bind to enclosing slice)", e["bp"])
			}
		}
	}
	if slices != 3 {
		t.Errorf("complete slices = %d, want 3", slices)
	}
	if !threadNames["disk0"] || !threadNames["reader"] {
		t.Errorf("thread rows = %v, want disk0 and reader", threadNames)
	}
	if culprit != "alice" {
		t.Errorf("diskwait culprit = %q, want alice", culprit)
	}
	if flowOut != 1 || flowIn != 1 {
		t.Errorf("flow events = %d out, %d in; want 1 each", flowOut, flowIn)
	}
	// Both of bob's spans share one thread row.
	if waitTID != runTID {
		t.Errorf("same (SPU, track) got different tids: %d vs %d", waitTID, runTID)
	}
}

package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"perfiso/internal/sim"
)

// A gauge dividing by a zero denominator, a distribution fed a NaN, or
// a series sampling Inf must cost a null cell (JSONL) or a dropped
// sample (Chrome trace) — never an export that errors out halfway,
// leaving a truncated artifact.
func TestExportsSanitizeNonFiniteValues(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng, 10*sim.Millisecond)
	r.Gauge("bad.nan", NoSPU, func() float64 { return math.NaN() })
	r.Gauge("bad.posinf", NoSPU, func() float64 { return math.Inf(1) })
	r.Gauge("bad.neginf", NoSPU, func() float64 { return math.Inf(-1) })
	r.Gauge("good.gauge", NoSPU, func() float64 { return 2.5 })
	d := r.Distribution("bad.dist", NoSPU)
	d.Observe(math.NaN())
	d.Observe(1)
	vals := []float64{1, math.NaN(), 3, math.Inf(1)}
	i := 0
	s := r.Series("mixed.series", 2, func() float64 { v := vals[i]; i++; return v })
	for range vals {
		eng.Call(eng.Now()+r.Period(), "sample", r.Sample)
		eng.Run()
	}
	if s.Len() != len(vals) {
		t.Fatalf("sampled %d values, want %d", s.Len(), len(vals))
	}

	var jsonl bytes.Buffer
	if err := r.WriteJSONL(&jsonl, Names{2: "u"}); err != nil {
		t.Fatalf("WriteJSONL errored on non-finite values: %v", err)
	}
	lines := strings.Split(strings.TrimRight(jsonl.String(), "\n"), "\n")
	nulls := 0
	for _, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("invalid JSONL line: %s", line)
		}
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatal(err)
		}
		switch obj["name"] {
		case "bad.nan", "bad.posinf", "bad.neginf":
			if obj["value"] != nil {
				t.Fatalf("%s exported as %v, want null", obj["name"], obj["value"])
			}
			nulls++
		case "good.gauge":
			if obj["value"] != 2.5 {
				t.Fatalf("finite gauge mangled: %v", obj["value"])
			}
		case "mixed.series":
			vs := obj["v"].([]any)
			if len(vs) != len(vals) {
				t.Fatalf("series exported %d values, want %d", len(vs), len(vals))
			}
			if vs[0] != 1.0 || vs[1] != nil || vs[2] != 3.0 || vs[3] != nil {
				t.Fatalf("series values = %v, want [1 null 3 null]", vs)
			}
		}
	}
	if nulls != 3 {
		t.Fatalf("saw %d null gauges, want 3", nulls)
	}

	var chrome bytes.Buffer
	if err := r.WriteChromeTrace(&chrome, nil, Names{2: "u"}); err != nil {
		t.Fatalf("WriteChromeTrace errored on non-finite values: %v", err)
	}
	if !json.Valid(chrome.Bytes()) {
		t.Fatalf("chrome trace is not valid JSON:\n%s", chrome.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	counters := 0
	for _, e := range doc.TraceEvents {
		if e["ph"] == "C" {
			counters++
		}
	}
	if counters != 2 { // the two finite samples; NaN and Inf dropped
		t.Fatalf("chrome trace has %d counter samples, want 2", counters)
	}
}

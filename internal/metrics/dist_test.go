package metrics

import (
	"bytes"
	"math"
	"testing"

	"perfiso/internal/sim"
	"perfiso/internal/stats"
)

// Below ExactCap a Distribution behaves exactly as before: every value
// retained, quantiles exact, and the JSONL line byte-identical to one
// computed from the raw values.
func TestDistributionExactBelowCap(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng, 0)
	d := r.Distribution("d", NoSPU)
	rng := sim.NewRNG(5)
	var raw []float64
	for i := 0; i < 1000; i++ {
		v := float64(rng.Intn(1_000_000)) / 1e6
		raw = append(raw, v)
		d.Observe(v)
	}
	if !d.Exact() || d.Hist() != nil {
		t.Fatal("1000 observations must stay exact")
	}
	if d.N() != 1000 || len(d.Values()) != 1000 {
		t.Fatalf("N=%d len=%d", d.N(), len(d.Values()))
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if d.Quantile(q) != stats.Quantile(raw, q) {
			t.Fatalf("Quantile(%v) diverged from the exact path", q)
		}
	}
	var sum float64
	for _, v := range raw {
		sum += v
	}
	if d.Mean() != sum/1000 {
		t.Fatal("mean diverged from summing in arrival order")
	}
}

// Past ExactCap the distribution spills into the bounded histogram:
// memory stops growing, count/mean/extremes stay exact, and interior
// quantiles stay within the histogram's relative-error bound.
func TestDistributionSpillsPastCap(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng, 0)
	d := r.Distribution("d", NoSPU)
	rng := sim.NewRNG(17)
	n := ExactCap * 3
	raw := make([]float64, 0, n)
	var sum float64
	for i := 0; i < n; i++ {
		v := float64(1+rng.Intn(10_000_000)) / 1e6 // (0, 10] s
		raw = append(raw, v)
		sum += v
		d.Observe(v)
	}
	if d.Exact() || d.Hist() == nil {
		t.Fatal("distribution did not spill past the cap")
	}
	if d.Values() != nil {
		t.Fatal("exact values must be released after the spill")
	}
	if d.N() != n {
		t.Fatalf("N=%d, want %d", d.N(), n)
	}
	if got := d.Mean(); math.Abs(got-sum/float64(n)) > 1e-12 {
		t.Fatalf("mean %v, want exact %v", got, sum/float64(n))
	}
	if d.Quantile(0) != stats.Quantile(raw, 0) || d.Quantile(1) != stats.Quantile(raw, 1) {
		t.Fatal("extremes must stay exact after the spill")
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := stats.Quantile(raw, q)
		got := d.Quantile(q)
		// Bucket bound (1/128) plus slack for the quantile definition
		// difference between "nearest rank" and index interpolation.
		if math.Abs(got-exact) > exact/64+1e-6 {
			t.Fatalf("Quantile(%v)=%v, exact %v: outside the bucket error bound", q, got, exact)
		}
	}
}

// An export carrying a spilled distribution still renders: finite
// summary numbers, no NaN/Inf, and deterministic bytes.
func TestDistributionSpillExportDeterministic(t *testing.T) {
	render := func() string {
		eng := sim.NewEngine()
		r := New(eng, 0)
		d := r.Distribution("lat", NoSPU)
		rng := sim.NewRNG(3)
		for i := 0; i < ExactCap+100; i++ {
			d.Observe(float64(rng.Intn(1000)) / 1e3)
		}
		var buf bytes.Buffer
		if err := r.WriteJSONL(&buf, Names{}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("spilled-distribution export not deterministic")
	}
	if bytes.Contains([]byte(a), []byte("null")) {
		t.Fatalf("spilled export has null cells:\n%s", a)
	}
}

package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"perfiso/internal/core"
	"perfiso/internal/sim"
	"perfiso/internal/stats"
	"perfiso/internal/trace"
)

// jsonFloat is a float64 that marshals NaN and ±Inf as null instead of
// making encoding/json error out and abort the whole export. A gauge
// whose closure divides by a zero denominator (no observations yet, a
// zero-length window) must cost one null cell, not the artifact.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

func toJSONFloats(vs []float64) []jsonFloat {
	out := make([]jsonFloat, len(vs))
	for i, v := range vs {
		out[i] = jsonFloat(v)
	}
	return out
}

// Names maps an SPU id to its display name for exports. NoSPU and
// unknown ids render as "machine".
type Names map[core.SPUID]string

func (n Names) lookup(spu core.SPUID) string {
	if name, ok := n[spu]; ok {
		return name
	}
	return "machine"
}

// sorted returns the named SPU ids in ascending order — the iteration
// order every exporter uses, so output never depends on map order.
func (n Names) sorted() []core.SPUID {
	ids := make([]core.SPUID, 0, len(n))
	for id := range n {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// JSONL line shapes. One struct per metric kind keeps the field order
// (and therefore the bytes) fixed.
type counterLine struct {
	Type    string `json:"type"`
	Name    string `json:"name"`
	SPU     int    `json:"spu"`
	SPUName string `json:"spu_name"`
	Value   int64  `json:"value"`
}

type gaugeLine struct {
	Type    string    `json:"type"`
	Name    string    `json:"name"`
	SPU     int       `json:"spu"`
	SPUName string    `json:"spu_name"`
	Value   jsonFloat `json:"value"`
}

type distLine struct {
	Type    string    `json:"type"`
	Name    string    `json:"name"`
	SPU     int       `json:"spu"`
	SPUName string    `json:"spu_name"`
	N       int       `json:"n"`
	Mean    jsonFloat `json:"mean"`
	P50     jsonFloat `json:"p50"`
	P99     jsonFloat `json:"p99"`
	Max     jsonFloat `json:"max"`
}

type seriesLine struct {
	Type     string      `json:"type"`
	Name     string      `json:"name"`
	SPU      int         `json:"spu"`
	SPUName  string      `json:"spu_name"`
	PeriodMS float64     `json:"period_ms"`
	TimesMS  []float64   `json:"t_ms"`
	Values   []jsonFloat `json:"v"`
}

// WriteJSONL writes every registered metric as one JSON object per
// line: counters, then gauges (evaluated now), then distributions
// (summarized), then series (full samples). Registration order is
// deterministic, struct field order is fixed, and no wall-clock value
// appears, so the same run always produces the same bytes.
func (r *Registry) WriteJSONL(w io.Writer, names Names) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, c := range r.counters {
		if err := enc.Encode(counterLine{
			Type: "counter", Name: c.Name, SPU: int(c.SPU),
			SPUName: names.lookup(c.SPU), Value: c.Value(),
		}); err != nil {
			return err
		}
	}
	for _, g := range r.gauges {
		if err := enc.Encode(gaugeLine{
			Type: "gauge", Name: g.Name, SPU: int(g.SPU),
			SPUName: names.lookup(g.SPU), Value: jsonFloat(g.Value()),
		}); err != nil {
			return err
		}
	}
	for _, d := range r.dists {
		if err := enc.Encode(distLine{
			Type: "distribution", Name: d.Name, SPU: int(d.SPU),
			SPUName: names.lookup(d.SPU), N: d.N(), Mean: jsonFloat(d.Mean()),
			P50: jsonFloat(d.Quantile(0.50)), P99: jsonFloat(d.Quantile(0.99)),
			Max: jsonFloat(d.Quantile(1)),
		}); err != nil {
			return err
		}
	}
	for _, s := range r.series {
		line := seriesLine{
			Type: "series", Name: s.Name, SPU: int(s.SPU),
			SPUName:  names.lookup(s.SPU),
			PeriodMS: float64(r.period) / float64(sim.Millisecond),
			TimesMS:  make([]float64, len(s.ts)),
			Values:   toJSONFloats(s.vs),
		}
		for i, t := range s.ts {
			line.TimesMS[i] = float64(t) / float64(sim.Millisecond)
		}
		if len(line.Values) == 0 {
			line.TimesMS = []float64{}
			line.Values = []jsonFloat{}
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}

// Chrome trace-event shapes (the subset of the trace_event format we
// emit; see the Trace Event Format spec). pid selects the track: pid 0
// is the machine, pid int(spu)+1 is one track per SPU.
type chromeMeta struct {
	Name string         `json:"name"`
	PH   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args chromeMetaArgs `json:"args"`
}

type chromeMetaArgs struct {
	Name string `json:"name"`
}

type chromeCounter struct {
	Name string            `json:"name"`
	PH   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	TS   float64           `json:"ts"`
	Args chromeCounterArgs `json:"args"`
}

type chromeCounterArgs struct {
	Value float64 `json:"value"`
}

type chromeInstant struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	PH    string            `json:"ph"`
	Scope string            `json:"s"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	TS    float64           `json:"ts"`
	Args  chromeInstantArgs `json:"args"`
}

type chromeInstantArgs struct {
	Subject string `json:"subject"`
	Detail  string `json:"detail,omitempty"`
}

// CounterTrack is a pre-sampled counter series handed to the
// Chrome-trace exporter by an outside producer (the latency registry's
// per-window percentiles). Like SpanEvent it is deliberately decoupled
// from the producer's types. Points render on the SPU's process track
// in the order given.
type CounterTrack struct {
	Name string
	SPU  core.SPUID
	TS   []sim.Time
	VS   []float64
}

// SpanEvent is a timed interval handed to the Chrome-trace exporter by
// an outside producer (the simulated-time profiler). It is deliberately
// decoupled from that producer's types so metrics stays a leaf of the
// observability layer. Track names the thread row within the SPU's
// process; Culprit, when non-empty, is attached as an argument on the
// slice. FlowOut marks the span as a flow source under FlowID, FlowIn
// as a flow target — the exporter draws the arrow between them.
type SpanEvent struct {
	Name    string
	SPU     core.SPUID
	Track   string
	Start   sim.Time
	End     sim.Time
	Culprit string
	FlowID  int64
	FlowIn  bool
	FlowOut bool
}

type chromeComplete struct {
	Name string             `json:"name"`
	Cat  string             `json:"cat"`
	PH   string             `json:"ph"`
	PID  int                `json:"pid"`
	TID  int                `json:"tid"`
	TS   float64            `json:"ts"`
	Dur  float64            `json:"dur"`
	Args *chromeCompleteArg `json:"args,omitempty"`
}

type chromeCompleteArg struct {
	Culprit string `json:"culprit"`
}

type chromeFlow struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	PH   string  `json:"ph"`
	ID   int64   `json:"id"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	TS   float64 `json:"ts"`
	BP   string  `json:"bp,omitempty"`
}

// pid maps an SPU to its Chrome-trace process track. Track 0 is the
// machine; SPU n (including the kernel SPU 0) gets track n+1.
func pid(spu core.SPUID) int {
	if spu == NoSPU {
		return 0
	}
	return int(spu) + 1
}

// usec converts simulation time to the microsecond timestamps the
// trace-event format expects.
func usec(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

// WriteChromeTrace writes a Chrome trace-event JSON file openable in
// Perfetto or chrome://tracing. Every registered series becomes a
// counter track on its SPU's process, and the kernel tracer's events
// (pass Tracer.Events(), or nil) become instant markers on the SPU they
// concern. Output is one event per line for diffability and is
// byte-deterministic for a given run.
func (r *Registry) WriteChromeTrace(w io.Writer, events []trace.Event, names Names) error {
	return r.WriteChromeTraceWithSpans(w, events, names, nil)
}

// WriteChromeTraceWithSpans is WriteChromeTrace plus profiler spans:
// each span becomes a complete ("X") duration slice on a named thread
// row of its SPU's process track, and flow arrows ("s"/"f") connect a
// flow source (a disk service span) to the stalls it resolved. Spans
// are rendered in the order given, which for the profiler is simulation
// order, so output stays byte-deterministic.
func (r *Registry) WriteChromeTraceWithSpans(w io.Writer, events []trace.Event, names Names, spans []SpanEvent) error {
	return r.WriteChromeTraceFull(w, events, names, spans, nil)
}

// WriteChromeTraceFull is the complete exporter: series counter
// tracks, external counter tracks (per-window latency percentiles),
// tracer instants, and profiler spans, in that fixed order so output
// stays byte-deterministic.
func (r *Registry) WriteChromeTraceFull(w io.Writer, events []trace.Event, names Names, spans []SpanEvent, tracks []CounterTrack) error {
	if r == nil {
		return nil
	}
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		sep := ",\n"
		if first {
			sep = ""
			first = false
		}
		_, err = fmt.Fprintf(w, "%s%s", sep, b)
		return err
	}

	// Track names: the machine plus every SPU, ascending by id.
	if err := emit(chromeMeta{Name: "process_name", PH: "M", PID: 0,
		Args: chromeMetaArgs{Name: "machine"}}); err != nil {
		return err
	}
	byName := make(map[string]core.SPUID, len(names))
	for _, id := range names.sorted() {
		byName[names[id]] = id
		if err := emit(chromeMeta{Name: "process_name", PH: "M", PID: pid(id),
			Args: chromeMetaArgs{Name: names[id]}}); err != nil {
			return err
		}
	}

	// Sampled series as counter tracks. Non-finite samples are dropped:
	// a counter track has no null representation, and one NaN would make
	// json.Marshal abort the whole file.
	for _, s := range r.series {
		for i := range s.ts {
			if math.IsNaN(s.vs[i]) || math.IsInf(s.vs[i], 0) {
				continue
			}
			if err := emit(chromeCounter{
				Name: s.Name, PH: "C", PID: pid(s.SPU),
				TS: usec(s.ts[i]), Args: chromeCounterArgs{Value: s.vs[i]},
			}); err != nil {
				return err
			}
		}
	}

	// External counter tracks (per-window latency percentiles) follow
	// the registered series, in the order the producer handed them over.
	for _, t := range tracks {
		for i := range t.TS {
			if i >= len(t.VS) || math.IsNaN(t.VS[i]) || math.IsInf(t.VS[i], 0) {
				continue
			}
			if err := emit(chromeCounter{
				Name: t.Name, PH: "C", PID: pid(t.SPU),
				TS: usec(t.TS[i]), Args: chromeCounterArgs{Value: t.VS[i]},
			}); err != nil {
				return err
			}
		}
	}

	// Tracer events as instant markers. Events whose subject is an SPU
	// name land on that SPU's track; everything else goes to the
	// machine track.
	for _, e := range events {
		p := 0
		if id, ok := byName[e.Subject]; ok {
			p = pid(id)
		}
		if err := emit(chromeInstant{
			Name: e.Action, Cat: e.Kind.String(), PH: "i", Scope: "p",
			PID: p, TS: usec(e.At),
			Args: chromeInstantArgs{Subject: e.Subject, Detail: e.Detail},
		}); err != nil {
			return err
		}
	}

	// Profiler spans as duration slices, one named thread row per
	// (SPU, track) pair in first-appearance order, with flow arrows
	// from each flow source to its targets.
	type trackKey struct {
		pid   int
		track string
	}
	tids := make(map[trackKey]int)
	for _, s := range spans {
		p := pid(s.SPU)
		key := trackKey{p, s.Track}
		tid, ok := tids[key]
		if !ok {
			tid = len(tids) + 1
			tids[key] = tid
			if err := emit(chromeMeta{Name: "thread_name", PH: "M", PID: p, TID: tid,
				Args: chromeMetaArgs{Name: s.Track}}); err != nil {
				return err
			}
		}
		ev := chromeComplete{
			Name: s.Name, Cat: "span", PH: "X", PID: p, TID: tid,
			TS: usec(s.Start), Dur: usec(s.End - s.Start),
		}
		if s.Culprit != "" {
			ev.Args = &chromeCompleteArg{Culprit: s.Culprit}
		}
		if err := emit(ev); err != nil {
			return err
		}
		if s.FlowOut {
			if err := emit(chromeFlow{Name: s.Name, Cat: "flow", PH: "s",
				ID: s.FlowID, PID: p, TID: tid, TS: usec(s.End)}); err != nil {
				return err
			}
		}
		if s.FlowIn {
			if err := emit(chromeFlow{Name: s.Name, Cat: "flow", PH: "f", BP: "e",
				ID: s.FlowID, PID: p, TID: tid, TS: usec(s.End)}); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// UsageTimeline builds the paper's figure-style per-SPU usage rows from
// the sampled series: one "cpu", one "mem", and one "disk" row per SPU
// that has the corresponding series. Disk rows are per-interval sector
// deltas (bandwidth), not the cumulative count.
func (r *Registry) UsageTimeline(names Names) *stats.Timeline {
	tl := stats.NewTimeline()
	if r == nil {
		return tl
	}
	for _, id := range names.sorted() {
		name := names[id]
		if s := r.FindSeries(KeyCPUUsed, id); s != nil {
			for _, v := range s.vs {
				tl.Record("cpu "+name, v)
			}
		}
		if s := r.FindSeries(KeyMemResident, id); s != nil {
			for _, v := range s.vs {
				tl.Record("mem "+name, v)
			}
		}
		if s := r.FindSeries(KeyDiskSectors, id); s != nil {
			prev := 0.0
			for _, v := range s.vs {
				tl.Record("disk "+name, v-prev)
				prev = v
			}
		}
	}
	return tl
}

// UsageTable summarizes the sampled series per SPU: mean and peak CPUs
// in use, mean and peak resident MB-equivalent (whatever unit the
// series was registered in), and total disk sectors moved.
func (r *Registry) UsageTable(names Names) *stats.Table {
	t := stats.NewTable("Per-SPU usage (sampled)",
		"SPU", "cpu mean", "cpu peak", "mem mean", "mem peak", "disk sectors")
	if r == nil {
		return t
	}
	for _, id := range names.sorted() {
		name := names[id]
		if r.FindSeries(KeyCPUUsed, id) == nil && r.FindSeries(KeyMemResident, id) == nil {
			continue // no series sampled for this SPU (kernel, shared)
		}
		cpuMean, cpuPeak := meanPeak(r.FindSeries(KeyCPUUsed, id))
		memMean, memPeak := meanPeak(r.FindSeries(KeyMemResident, id))
		var sectors float64
		if s := r.FindSeries(KeyDiskSectors, id); s != nil && len(s.vs) > 0 {
			sectors = s.vs[len(s.vs)-1]
		}
		t.Addf(name, cpuMean, cpuPeak, memMean, memPeak, int64(sectors))
	}
	return t
}

func meanPeak(s *Series) (mean, peak float64) {
	if s == nil || len(s.vs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, v := range s.vs {
		sum += v
		if v > peak {
			peak = v
		}
	}
	return sum / float64(len(s.vs)), peak
}

package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"perfiso/internal/sim"
	"perfiso/internal/trace"
)

// A nil registry and nil handles are valid no-op sinks — the same
// contract as trace.Tracer. Instrumented code must never have to branch
// on "are metrics enabled".
func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter(KeySchedLoans, 2)
	g := r.Gauge(KeyMemFree, NoSPU, func() float64 { return 1 })
	d := r.Distribution(KeySchedRevokeLatency, 2)
	s := r.Series(KeyCPUUsed, 2, func() float64 { return 1 })
	if c != nil || g != nil || d != nil || s != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	c.Inc()
	c.Add(5)
	c.AddTime(sim.Second)
	d.Observe(1)
	d.ObserveTime(sim.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || d.N() != 0 || d.Quantile(0.5) != 0 || d.Mean() != 0 {
		t.Fatal("nil handles returned non-zero values")
	}
	r.Sample()
	if r.Counters() != nil || r.AllSeries() != nil || r.Period() != 0 {
		t.Fatal("nil registry accessors returned data")
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, nil); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteJSONL wrote %q, err %v", buf.String(), err)
	}
	if err := r.WriteChromeTrace(&buf, nil, nil); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteChromeTrace wrote %q, err %v", buf.String(), err)
	}
	if tl := r.UsageTimeline(nil); len(tl.Labels()) != 0 {
		t.Fatal("nil UsageTimeline has rows")
	}
}

// Registering the same (name, spu) twice returns the same handle, so
// subsystems can register independently without double counting.
func TestRegistrationDedup(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng, 0)
	if r.Period() != DefaultPeriod {
		t.Fatalf("default period = %v", r.Period())
	}
	a := r.Counter(KeySchedLoans, 2)
	b := r.Counter(KeySchedLoans, 2)
	if a != b {
		t.Fatal("same key gave two counters")
	}
	if r.Counter(KeySchedLoans, 3) == a {
		t.Fatal("different SPU shared a counter")
	}
	a.Inc()
	b.Add(2)
	if got := r.FindCounter(KeySchedLoans, 2).Value(); got != 3 {
		t.Fatalf("deduped counter = %d, want 3", got)
	}
	d1 := r.Distribution(KeySchedRevokeLatency, 2)
	if r.Distribution(KeySchedRevokeLatency, 2) != d1 {
		t.Fatal("same key gave two distributions")
	}
	s1 := r.Series(KeyCPUUsed, 2, func() float64 { return 1 })
	if r.Series(KeyCPUUsed, 2, func() float64 { return 9 }) != s1 {
		t.Fatal("same key gave two series")
	}
}

// Sample stamps the simulation clock and evaluates every series closure.
func TestSampleOnSimClock(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng, 10*sim.Millisecond)
	var v float64
	s := r.Series(KeyCPUUsed, 2, func() float64 { return v })
	ticker := eng.Every(r.Period(), "metrics", func() {
		v += 1
		r.Sample()
	})
	eng.RunUntil(35 * sim.Millisecond)
	ticker.Stop()
	if s.Len() != 3 {
		t.Fatalf("samples = %d, want 3", s.Len())
	}
	at, val := s.At(1)
	if at != 20*sim.Millisecond || val != 2 {
		t.Fatalf("sample 1 = (%v, %v)", at, val)
	}
}

func TestDistributionQuantiles(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng, 0)
	d := r.Distribution(KeySchedRevokeLatency, NoSPU)
	for i := 1; i <= 100; i++ {
		d.Observe(float64(i))
	}
	if d.N() != 100 {
		t.Fatalf("N = %d", d.N())
	}
	if p99 := d.Quantile(0.99); p99 < 98 || p99 > 100 {
		t.Fatalf("p99 = %v", p99)
	}
	if d.Quantile(1) != 100 || d.Mean() != 50.5 {
		t.Fatalf("max %v mean %v", d.Quantile(1), d.Mean())
	}
}

func sampleRegistry(t *testing.T) (*Registry, Names) {
	t.Helper()
	eng := sim.NewEngine()
	r := New(eng, 10*sim.Millisecond)
	names := Names{2: "alice", 3: "bob"}
	r.Counter(KeySchedLoans, 2).Add(4)
	r.Counter(KeySchedRevocations, 2).Add(1)
	r.Gauge(KeyMemFree, NoSPU, func() float64 { return 128 })
	d := r.Distribution(KeySchedRevokeLatency, 2)
	d.Observe(0.001)
	d.Observe(0.003)
	var load float64
	r.Series(KeyCPUUsed, 2, func() float64 { load++; return load })
	r.Series(KeyCPUUsed, 3, func() float64 { return 1 })
	ticker := eng.Every(r.Period(), "metrics", r.Sample)
	eng.RunUntil(50 * sim.Millisecond)
	ticker.Stop()
	return r, names
}

// JSONL export: every line is valid JSON, lines appear in registration
// order, and repeated exports of the same registry are byte-identical.
func TestWriteJSONL(t *testing.T) {
	r, names := sampleRegistry(t)
	var a, b bytes.Buffer
	if err := r.WriteJSONL(&a, names); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSONL(&b, names); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repeated JSONL exports differ")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 6 { // 2 counters + 1 gauge + 1 dist + 2 series
		t.Fatalf("lines = %d:\n%s", len(lines), a.String())
	}
	for _, l := range lines {
		if !json.Valid([]byte(l)) {
			t.Fatalf("invalid JSON line: %s", l)
		}
	}
	var first counterLine
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Name != KeySchedLoans || first.SPUName != "alice" || first.Value != 4 {
		t.Fatalf("first line = %+v", first)
	}
	var series seriesLine
	if err := json.Unmarshal([]byte(lines[4]), &series); err != nil {
		t.Fatal(err)
	}
	if series.Type != "series" || len(series.Values) != 5 || series.TimesMS[0] != 10 {
		t.Fatalf("series line = %+v", series)
	}
}

// Chrome trace export: the whole file is valid JSON in trace-event
// format, has one process (track) per SPU plus the machine, and carries
// the sampled counters and tracer instants.
func TestWriteChromeTrace(t *testing.T) {
	r, names := sampleRegistry(t)
	eng := sim.NewEngine()
	tr := trace.New(eng, 16)
	tr.Emit(trace.Sched, "alice", "loan", "cpu 3")
	tr.Emit(trace.Mem, "pager", "evict", "")

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf, tr.Events(), names); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid trace JSON:\n%s", buf.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	pids := map[float64]string{}
	var counters, instants int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M":
			args := e["args"].(map[string]any)
			pids[e["pid"].(float64)] = args["name"].(string)
		case "C":
			counters++
		case "i":
			instants++
		}
	}
	if pids[0] != "machine" || pids[3] != "alice" || pids[4] != "bob" {
		t.Fatalf("process tracks = %v", pids)
	}
	if counters != 10 { // 2 series x 5 samples
		t.Fatalf("counter events = %d, want 10", counters)
	}
	if instants != 2 {
		t.Fatalf("instant events = %d, want 2", instants)
	}
	// The "alice" instant must land on alice's track, the anonymous one
	// on the machine track.
	var aliceInstant, machineInstant bool
	for _, e := range doc.TraceEvents {
		if e["ph"] != "i" {
			continue
		}
		args := e["args"].(map[string]any)
		if args["subject"] == "alice" && e["pid"].(float64) == 3 {
			aliceInstant = true
		}
		if args["subject"] == "pager" && e["pid"].(float64) == 0 {
			machineInstant = true
		}
	}
	if !aliceInstant || !machineInstant {
		t.Fatalf("instant routing wrong:\n%s", buf.String())
	}

	var again bytes.Buffer
	if err := r.WriteChromeTrace(&again, tr.Events(), names); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("repeated chrome-trace exports differ")
	}
}

// The usage timeline turns cumulative disk sectors into per-interval
// deltas and keys rows by SPU name in id order.
func TestUsageTimelineAndTable(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng, 10*sim.Millisecond)
	names := Names{2: "alice"}
	var cpu, sectors float64
	r.Series(KeyCPUUsed, 2, func() float64 { cpu += 1; return cpu })
	r.Series(KeyMemResident, 2, func() float64 { return 64 })
	r.Series(KeyDiskSectors, 2, func() float64 { sectors += 100; return sectors })
	ticker := eng.Every(r.Period(), "metrics", r.Sample)
	eng.RunUntil(30 * sim.Millisecond)
	ticker.Stop()

	tl := r.UsageTimeline(names)
	wantLabels := []string{"cpu alice", "mem alice", "disk alice"}
	if got := tl.Labels(); len(got) != 3 || got[0] != wantLabels[0] || got[2] != wantLabels[2] {
		t.Fatalf("labels = %v", got)
	}
	disk := tl.Samples("disk alice")
	for i, v := range disk {
		if v != 100 {
			t.Fatalf("disk delta[%d] = %v, want 100 (cumulative not differenced)", i, v)
		}
	}

	table := r.UsageTable(names)
	if table.NumRows() != 1 || table.Cell(0, 0) != "alice" {
		t.Fatalf("usage table:\n%s", table.String())
	}
	if table.Cell(0, 2) != "3.00" { // cpu peak after 3 increments
		t.Fatalf("cpu peak cell = %q", table.Cell(0, 2))
	}
	if table.Cell(0, 5) != "300" {
		t.Fatalf("disk sectors cell = %q", table.Cell(0, 5))
	}
}

// The canonical key namespace stays collision-free and well-formed:
// every key is unique, lowercase, and "subsystem.metric"-shaped, so
// exports from different subsystems can never shadow each other.
func TestKeysAreUniqueAndWellFormed(t *testing.T) {
	if len(Keys) == 0 {
		t.Fatal("no canonical keys registered")
	}
	seen := map[string]bool{}
	for _, k := range Keys {
		if seen[k] {
			t.Fatalf("duplicate metric key %q", k)
		}
		seen[k] = true
		if k != strings.ToLower(k) {
			t.Fatalf("key %q is not lowercase", k)
		}
		dot := strings.IndexByte(k, '.')
		if dot <= 0 || dot == len(k)-1 {
			t.Fatalf("key %q is not subsystem.metric shaped", k)
		}
	}
}

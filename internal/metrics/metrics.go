// Package metrics is the kernel observability layer: a per-SPU registry
// of counters, gauges, latency distributions, and time series sampled on
// the simulation clock. The paper's core evidence is per-SPU resource
// timelines — CPU usage, resident pages, disk bandwidth over time
// (Figures 3-8) — and this package is what lets any run produce them as
// a machine-readable artifact instead of an end-of-run summary table.
//
// The registry follows the same contract as internal/trace: a nil
// *Registry is valid and free. Registration methods on a nil registry
// return nil handles, and every handle method is a no-op on nil, so
// instrumented code never branches on "are metrics on" and the hot
// dispatch path pays nothing when collection is off (there is a
// benchmark guard for this in internal/sched).
//
// Four metric kinds cover the kernel's needs:
//
//   - Counter: a monotonic event count (loans granted, pages reclaimed).
//     Push-style: the instrumented site calls Add/Inc.
//   - Gauge: an instantaneous value read lazily at export time (free
//     pages, mean disk wait). Pull-style: registered with a closure.
//   - Distribution: observations kept exactly up to ExactCap for exact
//     quantiles (revocation latency p99), spilling into a bounded
//     log-bucketed histogram beyond it.
//   - Series: a closure sampled at a fixed period on the simulation
//     clock, producing the paper's figure-style per-SPU timelines.
//
// Exporters live in export.go: a Chrome trace-event writer (open any
// run in Perfetto / chrome://tracing, one track per SPU), a JSONL
// writer, and a stats.Timeline/stats.Table renderer for terminal use.
package metrics

import (
	"math"

	"perfiso/internal/core"
	"perfiso/internal/latency"
	"perfiso/internal/sim"
	"perfiso/internal/stats"
)

// NoSPU labels machine-wide metrics that are not attributed to one SPU.
const NoSPU core.SPUID = -1

// DefaultPeriod is the series sample period when the caller passes 0:
// 100 ms, matching the kernel's memory-policy tick and the resolution of
// the paper's timeline figures.
const DefaultPeriod = 100 * sim.Millisecond

// Canonical metric names. The kernel pre-registers these at boot so
// every export carries the same key set; tests pin the list.
const (
	// Per-SPU series, sampled each period.
	KeyCPUUsed     = "cpu.used"     // CPUs currently occupied
	KeyCPUTime     = "cpu.time"     // cumulative CPU seconds consumed
	KeyMemResident = "mem.resident" // resident page frames
	KeyMemLoaned   = "mem.loaned"   // frames allowed above the entitlement
	KeyDiskQueue   = "disk.queue"   // requests queued across all disks
	KeyDiskSectors = "disk.sectors" // cumulative sectors transferred

	// Scheduler counters and the revocation-latency distribution.
	KeySchedLoans         = "sched.loans"
	KeySchedRevocations   = "sched.revocations"
	KeySchedRevokeLatency = "sched.revoke_latency_s"

	// Memory-manager counters.
	KeyMemReclaims       = "mem.reclaims"
	KeyMemDirtyWrites    = "mem.dirty_writes"
	KeyMemPageoutRetries = "mem.pageout_retries"
	KeyMemBackoffNS      = "mem.backoff_ns"

	// File-system and kernel retry counters.
	KeyFSRetries     = "fs.retries"
	KeyFSBackoffNS   = "fs.backoff_ns"
	KeySwapRetries   = "kernel.swap_retries"
	KeySwapBackoffNS = "kernel.swap_backoff_ns"

	// Fault-injector counters.
	KeyFaultInjected = "fault.injected"
	KeyFaultReverted = "fault.reverted"

	// Invariant-auditor counters (see internal/invariant).
	KeyInvariantChecks     = "invariant.checks"
	KeyInvariantViolations = "invariant.violations"

	// SLO-controller counters (see internal/control).
	KeyControlRetunes   = "control.retunes"   // ticks that moved at least one share
	KeyControlBoosts    = "control.boosts"    // per-SPU share increases granted
	KeyControlReleases  = "control.releases"  // per-SPU share give-backs/donations
	KeyControlShed      = "control.shed"      // per-SPU admission-refused requests
	KeyControlBreaker   = "control.breaker"   // circuit-breaker trips (per disk heals not counted)
	KeyControlFailovers = "control.failovers" // requests rerouted to a fallback disk
	KeyControlClamped   = "control.clamped"   // retries clamped to the slow lane after budget exhaustion

	// Machine-wide gauges, read at export time.
	KeyMemFree         = "mem.free"
	KeyDiskWaitMean    = "disk.wait_mean_s"
	KeyDiskServiceMean = "disk.service_mean_s"
)

// Keys lists every canonical metric name, in declaration order. New
// instrumentation must add its key here so the registered-keys test
// keeps the namespace collision-free.
var Keys = []string{
	KeyCPUUsed, KeyCPUTime, KeyMemResident, KeyMemLoaned,
	KeyDiskQueue, KeyDiskSectors,
	KeySchedLoans, KeySchedRevocations, KeySchedRevokeLatency,
	KeyMemReclaims, KeyMemDirtyWrites, KeyMemPageoutRetries, KeyMemBackoffNS,
	KeyFSRetries, KeyFSBackoffNS, KeySwapRetries, KeySwapBackoffNS,
	KeyFaultInjected, KeyFaultReverted,
	KeyInvariantChecks, KeyInvariantViolations,
	KeyControlRetunes, KeyControlBoosts, KeyControlReleases, KeyControlShed,
	KeyControlBreaker, KeyControlFailovers, KeyControlClamped,
	KeyMemFree, KeyDiskWaitMean, KeyDiskServiceMean,
}

// Counter is a monotonic per-SPU event count. A nil Counter is a valid
// no-op sink.
type Counter struct {
	Name string
	SPU  core.SPUID
	v    int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Safe (and free) on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// AddTime adds a duration in nanoseconds — the unit backoff-time
// counters accumulate.
func (c *Counter) AddTime(t sim.Time) { c.Add(int64(t)) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous value read lazily through a closure at
// export time.
type Gauge struct {
	Name string
	SPU  core.SPUID
	fn   func() float64
}

// Value evaluates the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil || g.fn == nil {
		return 0
	}
	return g.fn()
}

// ExactCap is the number of observations a Distribution keeps exactly.
// Up to the cap, every value is retained and quantiles are exact — the
// historical behaviour, byte-identical in every export. Past the cap
// the distribution spills into a log-bucketed latency.Histogram whose
// memory is fixed, so a long soak cannot grow a distribution without
// bound; quantiles then carry the histogram's ≤1/128 relative error.
const ExactCap = 4096

// DistScale converts distribution units (seconds, for every current
// registrant) to the histogram's integer domain: nanosecond fixed
// point. Values below 1/DistScale collapse to bucket zero.
const DistScale = 1e9

// Distribution records a stream of observations for quantile queries:
// exact up to ExactCap, histogram-bucketed beyond. A nil Distribution
// is a valid no-op sink.
type Distribution struct {
	Name string
	SPU  core.SPUID
	vs   []float64
	h    *latency.Histogram // non-nil once the cap was exceeded
	n    int
	sum  float64
	min  float64
	max  float64
}

// Observe records one value. Safe on nil. Values must be non-negative
// for bucketed quantiles to be meaningful (the histogram clamps
// negatives to zero); every current registrant records durations.
func (d *Distribution) Observe(v float64) {
	if d == nil {
		return
	}
	d.n++
	d.sum += v
	if d.n == 1 || v > d.max {
		d.max = v
	}
	if d.n == 1 || v < d.min {
		d.min = v
	}
	if d.h == nil {
		if len(d.vs) < ExactCap {
			d.vs = append(d.vs, v)
			return
		}
		// Cap crossed: spill the exact values into the bounded histogram
		// and release them.
		d.h = latency.New()
		for _, u := range d.vs {
			d.h.Record(int64(math.Round(u * DistScale)))
		}
		d.vs = nil
	}
	d.h.Record(int64(math.Round(v * DistScale)))
}

// ObserveTime records a duration in seconds.
func (d *Distribution) ObserveTime(t sim.Time) { d.Observe(t.Seconds()) }

// N returns the number of observations.
func (d *Distribution) N() int {
	if d == nil {
		return 0
	}
	return d.n
}

// Exact reports whether every observation is still held exactly (the
// distribution never exceeded ExactCap).
func (d *Distribution) Exact() bool { return d == nil || d.h == nil }

// Quantile returns the q-quantile (0..1) of the observations, 0 when
// empty or nil. Exact below ExactCap; bucketed (≤1/128 relative error,
// extremes exact) above.
func (d *Distribution) Quantile(q float64) float64 {
	if d == nil || d.n == 0 {
		return 0
	}
	if d.h == nil {
		return stats.Quantile(d.vs, q)
	}
	if q <= 0 {
		return d.min
	}
	if q >= 1 {
		return d.max
	}
	return float64(d.h.Quantile(q)) / DistScale
}

// Values returns the raw observations in arrival order, or nil once the
// distribution exceeded ExactCap and dropped them (check Exact). The
// slice is shared with the distribution; callers must not mutate it.
func (d *Distribution) Values() []float64 {
	if d == nil {
		return nil
	}
	return d.vs
}

// Hist returns the spill histogram (nanosecond fixed point), or nil
// while the distribution is still exact.
func (d *Distribution) Hist() *latency.Histogram {
	if d == nil {
		return nil
	}
	return d.h
}

// Mean returns the arithmetic mean of the observations. Always exact:
// the running sum accumulates in arrival order, matching what summing
// the retained values used to produce.
func (d *Distribution) Mean() float64 {
	if d == nil || d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Series is a per-SPU time series: a closure sampled on the simulation
// clock each registry sample tick.
type Series struct {
	Name string
	SPU  core.SPUID
	fn   func() float64
	ts   []sim.Time
	vs   []float64
}

// Len returns the number of samples taken.
func (s *Series) Len() int { return len(s.ts) }

// At returns sample i as (time, value).
func (s *Series) At(i int) (sim.Time, float64) { return s.ts[i], s.vs[i] }

// Values returns the sampled values (shared slice; do not mutate).
func (s *Series) Values() []float64 { return s.vs }

// key identifies a metric within its kind.
type key struct {
	name string
	spu  core.SPUID
}

// Registry owns every metric of one machine. Metrics register once
// (re-registration returns the existing handle) and export in
// registration order, which is what makes exports deterministic.
// A nil *Registry is valid: registration returns nil handles and
// Sample is a no-op.
type Registry struct {
	eng    *sim.Engine
	period sim.Time

	counters []*Counter
	gauges   []*Gauge
	dists    []*Distribution
	series   []*Series

	counterIdx map[key]*Counter
	gaugeIdx   map[key]*Gauge
	distIdx    map[key]*Distribution
	seriesIdx  map[key]*Series
}

// New creates a registry on the given engine. period is the series
// sample interval (DefaultPeriod when <= 0). The caller owns driving
// Sample — the kernel runs it from a ticker so sampling lands exactly on
// the simulation clock.
func New(eng *sim.Engine, period sim.Time) *Registry {
	if period <= 0 {
		period = DefaultPeriod
	}
	return &Registry{
		eng:        eng,
		period:     period,
		counterIdx: make(map[key]*Counter),
		gaugeIdx:   make(map[key]*Gauge),
		distIdx:    make(map[key]*Distribution),
		seriesIdx:  make(map[key]*Series),
	}
}

// Period returns the series sample interval.
func (r *Registry) Period() sim.Time {
	if r == nil {
		return 0
	}
	return r.period
}

// Counter registers (or retrieves) the counter for (name, spu). Returns
// nil on a nil registry.
func (r *Registry) Counter(name string, spu core.SPUID) *Counter {
	if r == nil {
		return nil
	}
	k := key{name, spu}
	if c, ok := r.counterIdx[k]; ok {
		return c
	}
	c := &Counter{Name: name, SPU: spu}
	r.counterIdx[k] = c
	r.counters = append(r.counters, c)
	return c
}

// Gauge registers a pull-style gauge evaluated at export time. Returns
// nil on a nil registry; re-registering replaces the closure.
func (r *Registry) Gauge(name string, spu core.SPUID, fn func() float64) *Gauge {
	if r == nil {
		return nil
	}
	k := key{name, spu}
	if g, ok := r.gaugeIdx[k]; ok {
		g.fn = fn
		return g
	}
	g := &Gauge{Name: name, SPU: spu, fn: fn}
	r.gaugeIdx[k] = g
	r.gauges = append(r.gauges, g)
	return g
}

// Distribution registers (or retrieves) the distribution for (name, spu).
func (r *Registry) Distribution(name string, spu core.SPUID) *Distribution {
	if r == nil {
		return nil
	}
	k := key{name, spu}
	if d, ok := r.distIdx[k]; ok {
		return d
	}
	d := &Distribution{Name: name, SPU: spu}
	r.distIdx[k] = d
	r.dists = append(r.dists, d)
	return d
}

// Series registers a sampled time series for (name, spu). Returns nil on
// a nil registry; re-registering replaces the closure and keeps samples.
func (r *Registry) Series(name string, spu core.SPUID, fn func() float64) *Series {
	if r == nil {
		return nil
	}
	k := key{name, spu}
	if s, ok := r.seriesIdx[k]; ok {
		s.fn = fn
		return s
	}
	s := &Series{Name: name, SPU: spu, fn: fn}
	r.seriesIdx[k] = s
	r.series = append(r.series, s)
	return s
}

// Sample appends one observation to every registered series, stamped
// with the current simulation time. The kernel drives this from a
// ticker at the registry period. Sampling only reads machine state, so
// enabling metrics never perturbs simulation results.
func (r *Registry) Sample() {
	if r == nil {
		return
	}
	now := r.eng.Now()
	for _, s := range r.series {
		s.ts = append(s.ts, now)
		s.vs = append(s.vs, s.fn())
	}
}

// Counters returns the registered counters in registration order.
func (r *Registry) Counters() []*Counter {
	if r == nil {
		return nil
	}
	return r.counters
}

// Gauges returns the registered gauges in registration order.
func (r *Registry) Gauges() []*Gauge {
	if r == nil {
		return nil
	}
	return r.gauges
}

// Distributions returns the registered distributions in registration order.
func (r *Registry) Distributions() []*Distribution {
	if r == nil {
		return nil
	}
	return r.dists
}

// AllSeries returns the registered series in registration order.
func (r *Registry) AllSeries() []*Series {
	if r == nil {
		return nil
	}
	return r.series
}

// FindCounter returns the counter for (name, spu), or nil.
func (r *Registry) FindCounter(name string, spu core.SPUID) *Counter {
	if r == nil {
		return nil
	}
	return r.counterIdx[key{name, spu}]
}

// FindDistribution returns the distribution for (name, spu), or nil.
func (r *Registry) FindDistribution(name string, spu core.SPUID) *Distribution {
	if r == nil {
		return nil
	}
	return r.distIdx[key{name, spu}]
}

// FindSeries returns the series for (name, spu), or nil.
func (r *Registry) FindSeries(name string, spu core.SPUID) *Series {
	if r == nil {
		return nil
	}
	return r.seriesIdx[key{name, spu}]
}

// Package sched implements the CPU-time part of performance isolation
// (§3.1 of the paper): an IRIX-like priority scheduler with 30 ms time
// slices, extended with the SPU mechanisms:
//
//   - CPUs are space-partitioned among SPUs (each CPU has a home SPU);
//     fractional entitlements are served by time-partitioning the
//     leftover CPUs with a weighted rotor.
//   - A CPU schedules threads only from its home SPU, which guarantees
//     each SPU its share regardless of system load (isolation).
//   - An idle CPU whose home SPU has nothing to run may take the
//     highest-priority thread from another SPU (sharing); the loan is
//     revoked at the next 10 ms clock tick — or immediately via IPI when
//     configured — once a home thread becomes runnable and no home CPU
//     is free.
//
// Under the SMP scheme every SPU has the ShareAll policy and the home
// restriction vanishes, reproducing a single global runqueue. Under Quo
// loans never happen.
package sched

import (
	"perfiso/internal/core"
	"perfiso/internal/profile"
	"perfiso/internal/sim"
	"perfiso/internal/stats"
)

// Thread is one schedulable entity. The process model sets Remaining to
// the CPU time needed before the next blocking point and provides
// BurstDone, which the scheduler invokes (with the thread off-CPU) when
// Remaining reaches zero. The process model then either re-arms the
// thread and wakes it again, or leaves it blocked.
type Thread struct {
	Name string
	SPU  core.SPUID

	// Remaining is the CPU time left in the current burst.
	Remaining sim.Time
	// BurstDone runs when the burst completes. The thread is not
	// runnable when it fires.
	BurstDone func()

	// Scheduling state (owned by the Scheduler).
	runnable   bool
	running    bool
	cpu        int // CPU index while running, -1 otherwise
	pcpu       float64
	readySince sim.Time
	exited     bool
	gang       *Gang // non-nil when gang scheduled; placed only en bloc

	// Statistics.
	CPUTime  sim.Time     // total CPU time consumed
	WaitTime stats.Sample // runnable -> running latencies, seconds

	// Prof, when non-nil, receives the thread's run/runnable transitions
	// (with the culprit SPU holding the CPU on waits). Nil costs nothing:
	// the scheduler only computes culprits when Prof is set.
	Prof *profile.Task
}

// Runnable reports whether the thread is on a runqueue or running.
func (t *Thread) Runnable() bool { return t.runnable || t.running }

// Running reports whether the thread currently holds a CPU.
func (t *Thread) Running() bool { return t.running }

// OnCPU returns the CPU index the thread runs on, or -1.
func (t *Thread) OnCPU() int {
	if !t.running {
		return -1
	}
	return t.cpu
}

// Priority returns the thread's current dynamic priority value; lower is
// better, and it grows as the thread consumes CPU (IRIX-style decay
// scheduling).
func (t *Thread) Priority() float64 { return t.pcpu }

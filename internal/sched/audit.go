package sched

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"perfiso/internal/core"
	"perfiso/internal/sim"
	"perfiso/internal/snap"
)

// AuditInvariants extends Audit with the conservation and isolation
// invariants the paper's CPU-management claims rest on (§3.1). It is
// read-only and returns the first violation found:
//
//   - structural isolation: a busy CPU runs its home SPU's thread, a
//     kernel thread, or — only when flagged as a loan or homed at a
//     ShareAll SPU — a foreign thread. Foreign occupancy that is not a
//     loan is untracked sharing and would be unrevocable.
//   - loan revocability: a loaned CPU whose home SPU has had a runnable
//     (non-gang) thread waiting longer than two ticks, with no idle home
//     CPU, means tick revocation failed its ≤10 ms latency bound. Two
//     ticks, not one, so a thread that became ready an instant after a
//     tick is not a false positive.
//   - CPU-time conservation: the per-SPU CPU-time ledger plus in-flight
//     (currently-running, not yet accounted) time never exceeds elapsed
//     machine capacity, and agrees with the independently-maintained
//     per-CPU busy-time integrals to float tolerance.
//   - entitlement ceiling: an isolated (ShareNone) SPU occupies at most
//     ceil(entitlement)+1 of its own home CPUs — its integral share,
//     the fractional CPU the rotor may grant, and one CPU of transient
//     slack for a grant still being rotated away.
func (s *Scheduler) AuditInvariants() error {
	if err := s.Audit(); err != nil {
		return err
	}
	now := s.eng.Now()

	for _, c := range s.cpus {
		if c.offline && c.cur != nil {
			return fmt.Errorf("sched audit: offline cpu%d is running %q", c.idx, c.cur.Name)
		}
		if c.cur == nil {
			continue
		}
		id := c.cur.SPU
		if id == c.home || id == core.KernelID || c.loan {
			continue
		}
		if s.spus.Get(c.home).Policy() != core.ShareAll {
			return fmt.Errorf("sched audit: cpu%d (home spu%d, policy %v) runs foreign thread %q of spu%d without a loan flag",
				c.idx, c.home, s.spus.Get(c.home).Policy(), c.cur.Name, id)
		}
	}

	for _, c := range s.cpus {
		if c.cur == nil || !c.loan || s.homeHasIdleCPU(c.home) {
			continue
		}
		for _, t := range s.rq(c.home) {
			if t.gang != nil {
				continue // gangs wait for whole-gang placement by design
			}
			// The wait counts from when the CPU last became this SPU's
			// home, not from readySince: a fault-driven AssignHomes can
			// hand a loaned CPU to an SPU whose threads were already
			// waiting, and the revocation bound only holds from that
			// hand-over.
			since := t.readySince
			if c.rehomed > since {
				since = c.rehomed
			}
			if wait := now - since; wait > 2*TickPeriod {
				return fmt.Errorf("sched audit: cpu%d still loaned to spu%d while home spu%d thread %q has waited %s (revocation bound is one tick)",
					c.idx, c.cur.SPU, c.home, t.Name, wait)
			}
		}
	}

	var accounted sim.Time
	for _, pt := range s.PerSPUTime {
		accounted += *pt
	}
	var inflight sim.Time
	var busyArea float64
	for _, c := range s.cpus {
		if c.cur != nil {
			inflight += now - c.started
		}
		busyArea += c.busyness.Area(now)
	}
	capacity := sim.Time(len(s.cpus)) * now
	if accounted+inflight > capacity {
		return fmt.Errorf("sched audit: per-SPU CPU time %s + in-flight %s exceeds elapsed capacity %s",
			accounted, inflight, capacity)
	}
	ledger := (accounted + inflight).Seconds()
	tol := 1e-6 * (1 + now.Seconds()*float64(len(s.cpus)))
	if d := busyArea - ledger; d > tol || d < -tol {
		return fmt.Errorf("sched audit: busy-time integral %.9gs disagrees with per-SPU ledger %.9gs (delta %.3gs)",
			busyArea, ledger, d)
	}

	homeBusy := make(map[core.SPUID]int)
	for _, c := range s.cpus {
		if c.cur != nil && c.cur.SPU == c.home {
			homeBusy[c.home]++
		}
	}
	for _, u := range s.spus.Users() {
		if u.Policy() != core.ShareNone {
			continue
		}
		limit := int(math.Ceil(u.Entitled(core.CPU)-1e-9)) + 1
		if got := homeBusy[u.ID()]; got > limit {
			return fmt.Errorf("sched audit: isolated spu%d occupies %d home CPUs, above its entitlement ceiling %d (entitled %.3f)",
				u.ID(), got, limit, u.Entitled(core.CPU))
		}
	}
	return nil
}

// Snapshot writes the scheduler's state for checkpoint comparison:
// counters, the per-SPU CPU-time ledger, rotor credit, per-CPU
// occupancy, and the runqueues in queue order.
func (s *Scheduler) Snapshot(enc *snap.Encoder) {
	now := s.eng.Now()
	enc.Section("sched")
	enc.Int("dispatches", s.Stat.Dispatches)
	enc.Int("preemptions", s.Stat.Preemptions)
	enc.Int("loans", s.Stat.Loans)
	enc.Int("revocations", s.Stat.Revocations)
	enc.Int("gang_placements", s.Stat.GangPlacements)
	enc.Int("cache_reloads", s.Stat.CacheReloads)
	enc.Int("loans_damped", s.Stat.LoansDamped)
	for _, id := range sortedSPUIDs(s.PerSPUTime) {
		enc.Int(fmt.Sprintf("time_spu%d", id), int64(*s.PerSPUTime[id]))
	}
	for _, id := range sortedSPUIDs(s.rotorCredit) {
		enc.Float(fmt.Sprintf("rotor_spu%d", id), s.rotorCredit[id])
	}
	for i, c := range s.cpus {
		cur := "-"
		if c.cur != nil {
			cur = c.cur.Name
		}
		enc.Str(fmt.Sprintf("cpu%d", i), fmt.Sprintf(
			"home=%d fixed=%t loan=%t offline=%t speed=%s cur=%s started=%d busy=%s",
			c.home, c.fixed, c.loan, c.offline,
			strconv.FormatFloat(c.speed, 'g', -1, 64), cur, int64(c.started),
			strconv.FormatFloat(c.busyness.Area(now), 'g', -1, 64)))
	}
	for id, q := range s.runq {
		if len(q) == 0 {
			continue
		}
		names := make([]string, len(q))
		for i, t := range q {
			names[i] = t.Name
		}
		enc.Str(fmt.Sprintf("runq_spu%d", id), strings.Join(names, ","))
	}
}

// sortedSPUIDs returns a map's SPU-ID keys in ascending order, so map
// iteration never leaks nondeterminism into snapshots.
func sortedSPUIDs[V any](m map[core.SPUID]V) []core.SPUID {
	ids := make([]core.SPUID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

package sched

import (
	"testing"
	"testing/quick"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

// Property: CPU time conservation — the sum of all threads' consumed
// CPU time never exceeds CPUs x elapsed time, and every thread receives
// exactly the demand it asked for by completion.
func TestPropertyCPUTimeConservation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		nCPU := 1 + rng.Intn(8)
		nSPU := 1 + rng.Intn(4)
		eng := sim.NewEngine()
		spus := core.NewManager()
		var ids []core.SPUID
		for i := 0; i < nSPU; i++ {
			ids = append(ids, spus.NewSPU("u", 1, core.ShareIdle).ID())
		}
		s := New(eng, spus, nCPU, Options{})
		s.AssignHomes()
		type want struct {
			th     *Thread
			demand sim.Time
		}
		var all []want
		n := 2 + rng.Intn(12)
		for i := 0; i < n; i++ {
			d := sim.Time(1+rng.Intn(200)) * sim.Millisecond
			th := &Thread{Name: "w", SPU: ids[rng.Intn(len(ids))], Remaining: d}
			all = append(all, want{th, d})
			at := sim.Time(rng.Intn(100)) * sim.Millisecond
			eng.At(at, "wake", func() { s.Wake(th) })
		}
		horizon := 20 * sim.Second
		first := (eng.Now()/TickPeriod + 1) * TickPeriod
		for at := first; at <= horizon; at += TickPeriod {
			eng.At(at, "tick", s.Tick)
		}
		eng.RunUntil(horizon)
		var total sim.Time
		for _, w := range all {
			if w.th.CPUTime != w.demand {
				return false // over- or under-served
			}
			total += w.th.CPUTime
		}
		return total <= sim.Time(nCPU)*horizon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the scheduler's internal state is consistent after any
// random mix of wakes, bursts and ticks (checked via Audit).
func TestPropertySchedulerAudit(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		eng := sim.NewEngine()
		spus := core.NewManager()
		a := spus.NewSPU("a", 1, core.ShareIdle)
		b := spus.NewSPU("b", 1, core.ShareIdle)
		s := New(eng, spus, 2, Options{})
		s.AssignHomes()
		ids := []core.SPUID{a.ID(), b.ID()}
		for i := 0; i < 10; i++ {
			var th *Thread
			th = &Thread{Name: "w", SPU: ids[rng.Intn(2)],
				Remaining: sim.Time(1+rng.Intn(50)) * sim.Millisecond}
			rounds := rng.Intn(4)
			th.BurstDone = func() {
				if rounds > 0 {
					rounds--
					th.Remaining = sim.Time(1+rng.Intn(50)) * sim.Millisecond
					s.Wake(th)
				}
			}
			eng.At(sim.Time(rng.Intn(80))*sim.Millisecond, "wake", func() { s.Wake(th) })
		}
		bad := false
		for at := TickPeriod; at <= 5*sim.Second; at += TickPeriod {
			eng.At(at, "tick", func() {
				s.Tick()
				if err := s.Audit(); err != nil {
					bad = true
				}
			})
		}
		eng.RunUntil(5 * sim.Second)
		return !bad && s.Audit() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

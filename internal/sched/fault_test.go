package sched

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

func TestOfflineCPURehomesPartition(t *testing.T) {
	_, _, s, us := schedRig(2, core.ShareIdle, 4)
	// 2 equal SPUs on 4 CPUs: 2 homes each.
	count := func(id core.SPUID) int {
		n := 0
		for _, h := range s.Homes() {
			if h == id {
				n++
			}
		}
		return n
	}
	if count(us[0].ID()) != 2 || count(us[1].ID()) != 2 {
		t.Fatalf("initial homes %v", s.Homes())
	}

	s.SetOffline(3, true)
	s.AssignHomes()
	if got := s.OnlineCPUs(); got != 3 {
		t.Fatalf("online = %d, want 3", got)
	}
	// 3 online CPUs over 2 SPUs: one dedicated home each plus a rotated
	// fractional CPU; the offline CPU is parked at the kernel SPU.
	if count(us[0].ID())+count(us[1].ID()) != 3 {
		t.Fatalf("homes after offline: %v", s.Homes())
	}
	if s.Homes()[3] != core.KernelID {
		t.Fatalf("offline CPU homed at %v", s.Homes()[3])
	}
	if got := us[0].Entitled(core.CPU); got != 1.5 {
		t.Fatalf("entitlement after shrink = %v, want 1.5", got)
	}

	s.SetOffline(3, false)
	s.AssignHomes()
	if count(us[0].ID()) != 2 || count(us[1].ID()) != 2 {
		t.Fatalf("homes after online: %v", s.Homes())
	}
	if got := us[0].Entitled(core.CPU); got != 2 {
		t.Fatalf("entitlement after regrow = %v, want 2", got)
	}
}

func TestOfflineCPUPreemptsAndReplacesThread(t *testing.T) {
	eng, _, s, us := schedRig(1, core.ShareIdle, 2)
	var done sim.Time
	th := burst(s, us[0].ID(), "t", 100*sim.Millisecond, &done, eng)
	s.Wake(th)
	// Offline the CPU the thread landed on; it must migrate to the
	// other CPU and still finish.
	s.SetOffline(th.cpu, true)
	s.AssignHomes()
	runTicks(eng, s, sim.Second)
	if done == 0 {
		t.Fatal("thread never finished after its CPU went offline")
	}
	if err := s.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestOfflineCPUNeverDispatches(t *testing.T) {
	eng, _, s, us := schedRig(1, core.ShareIdle, 2)
	s.SetOffline(1, true)
	s.AssignHomes()
	for i := 0; i < 4; i++ {
		s.Wake(burst(s, us[0].ID(), "t", 50*sim.Millisecond, nil, eng))
	}
	runTicks(eng, s, 50*sim.Millisecond)
	if cur := s.cpus[1].cur; cur != nil {
		t.Fatalf("offline CPU is running %q", cur.Name)
	}
	if s.IdleCPUs() != 0 {
		t.Fatalf("IdleCPUs = %d with work queued and 1 online CPU", s.IdleCPUs())
	}
}

func TestStragglerDilatesWallTime(t *testing.T) {
	elapsed := func(speed float64) sim.Time {
		eng, _, s, us := schedRig(1, core.ShareIdle, 1)
		if speed != 1 {
			s.SetCPUSpeed(0, speed)
		}
		var done sim.Time
		s.Wake(burst(s, us[0].ID(), "t", 90*sim.Millisecond, &done, eng))
		runTicks(eng, s, 10*sim.Second)
		if done == 0 {
			t.Fatalf("burst never finished at speed %v", speed)
		}
		return done
	}
	nominal := elapsed(1)
	slow := elapsed(0.5)
	if nominal != 90*sim.Millisecond {
		t.Fatalf("nominal burst took %v", nominal)
	}
	if slow != 2*nominal {
		t.Fatalf("half-speed burst took %v, want %v", slow, 2*nominal)
	}
}

func TestStragglerRecoversAtFullSpeed(t *testing.T) {
	eng, _, s, us := schedRig(1, core.ShareIdle, 1)
	s.SetCPUSpeed(0, 0.25)
	var done sim.Time
	s.Wake(burst(s, us[0].ID(), "t", 100*sim.Millisecond, &done, eng))
	// Heal the straggler after 40 ms of wall time (10 ms of progress).
	eng.At(40*sim.Millisecond, "heal", func() { s.SetCPUSpeed(0, 1) })
	runTicks(eng, s, 10*sim.Second)
	// 40 ms at quarter speed = 10 ms progress, then 90 ms at full speed.
	if done != 130*sim.Millisecond {
		t.Fatalf("burst finished at %v, want 130ms", done)
	}
}

package sched

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/profile"
	"perfiso/internal/sim"
)

// The profiler must be free when off: every operation the instrumented
// sites perform against a nil task or profiler — state transitions,
// step boundaries, finish, theft charges, disk windows — allocates
// nothing.
func TestNilProfilerOperationsAllocationFree(t *testing.T) {
	var task *profile.Task
	var p *profile.Profiler
	allocs := testing.AllocsPerRun(1000, func() {
		task.To(profile.StateRun, core.FirstUserID)
		task.To(profile.StateRunnable, core.FirstUserID+1)
		task.BeginStep("compute")
		task.Finish()
		p.AddTheft(core.FirstUserID, core.FirstUserID+1, profile.CPU, sim.Millisecond)
		p.BeginDiskWindow(0, sim.Millisecond, 0, core.FirstUserID, 0)
		p.EndDiskWindow()
	})
	if allocs != 0 {
		t.Fatalf("nil-profiler operations allocate %.1f times per call", allocs)
	}
}

// The hot dispatch path with profiling off must allocate exactly as
// much as it did before the profiler hooks existed: threads carry a nil
// Prof, so the hooks (including the culprit scans, which are gated on
// Prof != nil) must add nothing to the dispatch storm.
func TestNilProfilerAddsNoDispatchAllocations(t *testing.T) {
	engNil, _, _ := stormMachine(false)
	engBase, _, _ := stormMachine(false)
	a := steadyStateAllocs(engNil)
	b := steadyStateAllocs(engBase)
	if a != b {
		t.Fatalf("identical nil-profiler machines diverged: %.1f vs %.1f allocs/10ms", a, b)
	}
	if a > 8 {
		t.Fatalf("dispatch storm allocates %.1f/10ms with profiling off; hooks must be free when off", a)
	}
}

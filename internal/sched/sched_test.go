package sched

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

// schedRig builds an engine, SPU manager with n user SPUs, and a
// scheduler with numCPUs. It also starts a 10 ms tick driven by the test.
func schedRig(nSPU int, policy core.Policy, numCPUs int) (*sim.Engine, *core.Manager, *Scheduler, []*core.SPU) {
	eng := sim.NewEngine()
	spus := core.NewManager()
	var us []*core.SPU
	for i := 0; i < nSPU; i++ {
		us = append(us, spus.NewSPU("u", 1, policy))
	}
	s := New(eng, spus, numCPUs, Options{})
	s.AssignHomes()
	return eng, spus, s, us
}

// runTicks drives the scheduler tick for the duration of the test run,
// starting from the next tick boundary after the current time (so tests
// may call it repeatedly to continue a simulation).
func runTicks(eng *sim.Engine, s *Scheduler, until sim.Time) {
	first := (eng.Now()/TickPeriod + 1) * TickPeriod
	for at := first; at <= until; at += TickPeriod {
		eng.At(at, "tick", s.Tick)
	}
	eng.RunUntil(until)
}

// burst creates a thread that runs for total CPU time, re-arming itself
// until done, then records its completion time.
func burst(s *Scheduler, spu core.SPUID, name string, total sim.Time, doneAt *sim.Time, eng *sim.Engine) *Thread {
	t := &Thread{Name: name, SPU: spu, Remaining: total}
	t.BurstDone = func() {
		if doneAt != nil {
			*doneAt = eng.Now()
		}
	}
	return t
}

func TestSingleThreadRunsToCompletion(t *testing.T) {
	eng, _, s, us := schedRig(1, core.ShareIdle, 1)
	var done sim.Time
	th := burst(s, us[0].ID(), "t", 100*sim.Millisecond, &done, eng)
	s.Wake(th)
	runTicks(eng, s, sim.Second)
	if done != 100*sim.Millisecond {
		t.Fatalf("done at %v, want 100ms", done)
	}
	if th.CPUTime != 100*sim.Millisecond {
		t.Fatalf("CPUTime = %v", th.CPUTime)
	}
}

func TestTwoThreadsOneCPUTimeshare(t *testing.T) {
	eng, _, s, us := schedRig(1, core.ShareIdle, 1)
	var d1, d2 sim.Time
	t1 := burst(s, us[0].ID(), "t1", 90*sim.Millisecond, &d1, eng)
	t2 := burst(s, us[0].ID(), "t2", 90*sim.Millisecond, &d2, eng)
	s.Wake(t1)
	s.Wake(t2)
	runTicks(eng, s, sim.Second)
	// Both need 90ms of CPU on one CPU: total 180ms, and interleaving
	// means both finish in (120, 180].
	if d1 <= 120*sim.Millisecond || d1 > 180*sim.Millisecond {
		t.Fatalf("d1 = %v", d1)
	}
	if d2 <= 120*sim.Millisecond || d2 > 180*sim.Millisecond {
		t.Fatalf("d2 = %v", d2)
	}
	if s.Stat.Preemptions == 0 {
		t.Fatal("expected slice preemptions")
	}
}

func TestThreadsSpreadAcrossCPUs(t *testing.T) {
	eng, _, s, us := schedRig(1, core.ShareIdle, 4)
	var dones [4]sim.Time
	for i := 0; i < 4; i++ {
		s.Wake(burst(s, us[0].ID(), "t", 50*sim.Millisecond, &dones[i], eng))
	}
	runTicks(eng, s, sim.Second)
	for i, d := range dones {
		if d != 50*sim.Millisecond {
			t.Fatalf("thread %d done at %v, want 50ms (should run in parallel)", i, d)
		}
	}
}

func TestAssignHomesIntegral(t *testing.T) {
	_, _, s, us := schedRig(2, core.ShareIdle, 8)
	homes := s.Homes()
	count := map[core.SPUID]int{}
	for _, h := range homes {
		count[h]++
	}
	if count[us[0].ID()] != 4 || count[us[1].ID()] != 4 {
		t.Fatalf("homes = %v", homes)
	}
	if us[0].Entitled(core.CPU) != 4 {
		t.Fatalf("entitled = %g", us[0].Entitled(core.CPU))
	}
}

func TestIsolationHomeCPUsNotStolenUnderLoad(t *testing.T) {
	// Two SPUs, 2 CPUs each. SPU 1 has 4 CPU-hungry threads; SPU 0 has
	// one thread. SPU 0's thread must run continuously on its own CPUs:
	// its completion time must be unaffected by SPU 1's load.
	eng, _, s, us := schedRig(2, core.ShareIdle, 4)
	var done sim.Time
	light := burst(s, us[0].ID(), "light", 200*sim.Millisecond, &done, eng)
	s.Wake(light)
	for i := 0; i < 4; i++ {
		hungry := &Thread{Name: "hungry", SPU: us[1].ID(), Remaining: 10 * sim.Second}
		s.Wake(hungry)
	}
	runTicks(eng, s, sim.Second)
	if done != 200*sim.Millisecond {
		t.Fatalf("light thread done at %v, want exactly 200ms (isolation)", done)
	}
}

func TestQuoNeverLends(t *testing.T) {
	// SPU 0 idle, SPU 1 overloaded: under ShareNone the idle CPUs stay
	// idle and the overloaded SPU gets only its own 2 CPUs.
	eng, _, s, us := schedRig(2, core.ShareNone, 4)
	var d1, d2, d3, d4 sim.Time
	dones := []*sim.Time{&d1, &d2, &d3, &d4}
	for i := 0; i < 4; i++ {
		s.Wake(burst(s, us[1].ID(), "w", 100*sim.Millisecond, dones[i], eng))
	}
	runTicks(eng, s, sim.Second)
	if s.Stat.Loans != 0 {
		t.Fatalf("loans = %d under fixed quotas", s.Stat.Loans)
	}
	// 4 threads x 100ms on 2 CPUs: last finisher no earlier than 200ms.
	var last sim.Time
	for _, d := range dones {
		if *d > last {
			last = *d
		}
	}
	if last < 200*sim.Millisecond {
		t.Fatalf("work finished at %v; quota must cap at 2 CPUs", last)
	}
}

func TestPIsoLendsIdleCPUs(t *testing.T) {
	// Same load as TestQuoNeverLends but with ShareIdle: the 4 threads
	// use all 4 CPUs and finish in ~100ms.
	eng, _, s, us := schedRig(2, core.ShareIdle, 4)
	var d1, d2, d3, d4 sim.Time
	dones := []*sim.Time{&d1, &d2, &d3, &d4}
	for i := 0; i < 4; i++ {
		s.Wake(burst(s, us[1].ID(), "w", 100*sim.Millisecond, dones[i], eng))
	}
	runTicks(eng, s, sim.Second)
	if s.Stat.Loans == 0 {
		t.Fatal("no CPUs were lent")
	}
	var last sim.Time
	for _, d := range dones {
		if *d > last {
			last = *d
		}
	}
	if last > 150*sim.Millisecond {
		t.Fatalf("work finished at %v; idle CPUs were not shared", last)
	}
}

func TestRevocationWithinOneTick(t *testing.T) {
	// SPU 1 borrows both of SPU 0's CPUs; when SPU 0's threads wake,
	// the loans must be revoked at the next tick (<=10ms).
	eng, _, s, us := schedRig(2, core.ShareIdle, 4)
	for i := 0; i < 4; i++ {
		s.Wake(&Thread{Name: "borrower", SPU: us[1].ID(), Remaining: 10 * sim.Second})
	}
	var started [2]sim.Time
	wakeAt := 100 * sim.Millisecond
	for i := 0; i < 2; i++ {
		i := i
		th := &Thread{Name: "home", SPU: us[0].ID(), Remaining: 50 * sim.Millisecond}
		th.BurstDone = func() { started[i] = eng.Now() }
		eng.At(wakeAt, "wake", func() { s.Wake(th) })
	}
	runTicks(eng, s, sim.Second)
	for i, fin := range started {
		// Finish = wake + <=10ms revocation delay + 50ms of CPU.
		latest := wakeAt + TickPeriod + 50*sim.Millisecond
		if fin == 0 || fin > latest {
			t.Fatalf("home thread %d finished at %v, want <= %v", i, fin, latest)
		}
	}
	if s.Stat.Revocations == 0 {
		t.Fatal("no revocations recorded")
	}
}

func TestIPIRevocationIsImmediate(t *testing.T) {
	eng := sim.NewEngine()
	spus := core.NewManager()
	a := spus.NewSPU("a", 1, core.ShareIdle)
	b := spus.NewSPU("b", 1, core.ShareIdle)
	s := New(eng, spus, 2, Options{IPIRevoke: true})
	s.AssignHomes()
	// b's threads borrow a's CPU.
	s.Wake(&Thread{Name: "b1", SPU: b.ID(), Remaining: 10 * sim.Second})
	s.Wake(&Thread{Name: "b2", SPU: b.ID(), Remaining: 10 * sim.Second})
	var fin sim.Time
	th := &Thread{Name: "a1", SPU: a.ID(), Remaining: 30 * sim.Millisecond}
	th.BurstDone = func() { fin = eng.Now() }
	eng.At(5*sim.Millisecond, "wake", func() { s.Wake(th) })
	runTicks(eng, s, 200*sim.Millisecond)
	if fin != 35*sim.Millisecond {
		t.Fatalf("home thread finished at %v, want exactly 35ms (IPI revocation)", fin)
	}
}

func TestSMPGlobalRunqueue(t *testing.T) {
	// Under ShareAll, 2 SPUs' threads share all CPUs freely: 4 threads
	// from one SPU on 4 CPUs run fully parallel.
	eng, _, s, us := schedRig(2, core.ShareAll, 4)
	var dones [4]sim.Time
	for i := 0; i < 4; i++ {
		s.Wake(burst(s, us[1].ID(), "w", 100*sim.Millisecond, &dones[i], eng))
	}
	runTicks(eng, s, sim.Second)
	for i, d := range dones {
		if d != 100*sim.Millisecond {
			t.Fatalf("thread %d done at %v (no global sharing?)", i, d)
		}
	}
}

func TestKernelThreadsRunAnywhere(t *testing.T) {
	eng, _, s, _ := schedRig(2, core.ShareNone, 2)
	var done sim.Time
	kt := &Thread{Name: "pager", SPU: core.KernelID, Remaining: 10 * sim.Millisecond}
	kt.BurstDone = func() { done = eng.Now() }
	s.Wake(kt)
	runTicks(eng, s, 100*sim.Millisecond)
	if done != 10*sim.Millisecond {
		t.Fatalf("kernel thread done at %v", done)
	}
}

func TestFractionalEntitlementRotor(t *testing.T) {
	// 3 SPUs on 4 CPUs: each entitled to 4/3 CPUs. One CPU is fixed per
	// SPU and the fourth rotates. With all SPUs saturated, CPU time over
	// a long run should be near-equal.
	eng, spus, s, us := schedRig(3, core.ShareIdle, 4)
	_ = spus
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			s.Wake(&Thread{Name: "w", SPU: us[i].ID(), Remaining: 100 * sim.Second})
		}
	}
	runTicks(eng, s, 3*sim.Second)
	var times []float64
	for _, u := range us {
		pt := s.PerSPUTime[u.ID()]
		if pt == nil {
			t.Fatal("an SPU got no CPU time at all")
		}
		times = append(times, pt.Seconds())
	}
	total := times[0] + times[1] + times[2]
	if total < 11.0 { // 4 CPUs * 3s = 12 CPU-seconds, allow startup slack
		t.Fatalf("total CPU time %.2f, machine was idle", total)
	}
	for i, ti := range times {
		if ti < total/3*0.8 || ti > total/3*1.2 {
			t.Fatalf("SPU %d got %.2fs of %.2fs: rotor unfair (%v)", i, ti, total, times)
		}
	}
}

func TestWaitTimeRecorded(t *testing.T) {
	eng, _, s, us := schedRig(1, core.ShareIdle, 1)
	t1 := burst(s, us[0].ID(), "t1", 60*sim.Millisecond, nil, eng)
	t2 := burst(s, us[0].ID(), "t2", 60*sim.Millisecond, nil, eng)
	s.Wake(t1)
	s.Wake(t2)
	runTicks(eng, s, sim.Second)
	if t2.WaitTime.N() == 0 || t2.WaitTime.Sum() == 0 {
		t.Fatal("queued thread recorded no wait time")
	}
}

func TestWakeExitedThreadPanics(t *testing.T) {
	eng, _, s, us := schedRig(1, core.ShareIdle, 1)
	th := burst(s, us[0].ID(), "t", 10*sim.Millisecond, nil, eng)
	s.Wake(th)
	runTicks(eng, s, 100*sim.Millisecond)
	s.Exit(th)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	th.Remaining = sim.Millisecond
	s.Wake(th)
}

func TestWakeWithoutBurstPanics(t *testing.T) {
	_, _, s, us := schedRig(1, core.ShareIdle, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Wake(&Thread{Name: "z", SPU: us[0].ID()})
}

func TestPriorityFavorsLightThreads(t *testing.T) {
	// A thread that has consumed lots of CPU should lose to a fresh one.
	eng, _, s, us := schedRig(1, core.ShareIdle, 1)
	hog := &Thread{Name: "hog", SPU: us[0].ID(), Remaining: sim.Second}
	s.Wake(hog)
	var freshStarted sim.Time
	fresh := &Thread{Name: "fresh", SPU: us[0].ID(), Remaining: 10 * sim.Millisecond}
	fresh.BurstDone = func() { freshStarted = eng.Now() }
	eng.At(300*sim.Millisecond, "wake", func() { s.Wake(fresh) })
	runTicks(eng, s, sim.Second)
	if freshStarted == 0 {
		t.Fatal("fresh thread never ran")
	}
	// The fresh thread has priority ~0 vs the hog's accumulated usage:
	// it should complete within a couple of slices of waking.
	if freshStarted > 300*sim.Millisecond+2*DefaultSlice {
		t.Fatalf("fresh thread done at %v: priority scheduling broken", freshStarted)
	}
}

func TestUtilizationAndIdleCounts(t *testing.T) {
	eng, _, s, us := schedRig(1, core.ShareIdle, 2)
	s.Wake(&Thread{Name: "w", SPU: us[0].ID(), Remaining: 500 * sim.Millisecond})
	if s.IdleCPUs() != 1 {
		t.Fatalf("IdleCPUs = %d", s.IdleCPUs())
	}
	runTicks(eng, s, sim.Second)
	u := s.Utilization()
	if u < 0.2 || u > 0.3 { // 0.5s of work on 2 CPUs over 1s = 0.25
		t.Fatalf("utilization = %g, want ~0.25", u)
	}
	if s.RunqueueLen() != 0 {
		t.Fatalf("runqueue = %d after drain", s.RunqueueLen())
	}
}

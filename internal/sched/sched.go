package sched

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/lock"
	"perfiso/internal/metrics"
	"perfiso/internal/profile"
	"perfiso/internal/sim"
	"perfiso/internal/stats"
	"perfiso/internal/trace"
)

const (
	// DefaultSlice is the IRIX time slice: 30 ms unless the process
	// blocks earlier (§3.1).
	DefaultSlice = 30 * sim.Millisecond
	// TickPeriod is the clock-tick interval: loans are revoked at the
	// next tick, so the maximum revocation latency is 10 ms (§3.1).
	TickPeriod = 10 * sim.Millisecond
	// priDecay is the per-tick multiplicative decay of accumulated CPU
	// usage in the priority calculation.
	priDecay = 0.9
)

// CPU is one processor.
type cpu struct {
	idx   int
	home  core.SPUID // home SPU; rotor may re-home fractional CPUs
	fixed bool       // integral assignment (not rotated)
	cur   *Thread
	// sliceSeq stamps the pending slice-end event; bumping it (preempt,
	// re-dispatch) turns any in-flight slice event into a no-op, which
	// lets slice events use the engine's pooled fire-and-forget path
	// instead of allocating a cancellable handle per dispatch.
	sliceSeq uint64
	started  sim.Time // when cur was dispatched
	loan     bool     // cur belongs to a foreign SPU
	busyness stats.TimeWeighted

	// Fault injection (internal/fault). An offline CPU is excluded from
	// home assignment, dispatch, lending, rotation and gang placement; a
	// straggler runs at speed < 1, so a slice of wall time accomplishes
	// proportionally less progress.
	offline bool
	speed   float64 // 1 = nominal

	lastThread  *Thread  // cache ownership: who ran here most recently
	lastRevoke  sim.Time // when a loan was last revoked (rate limiter)
	everRevoked bool
	rehomed     sim.Time // when AssignHomes last changed this CPU's home
}

// Options configures a Scheduler.
type Options struct {
	Slice sim.Time // 0 means DefaultSlice
	// IPIRevoke revokes loaned CPUs immediately when a home thread
	// wakes, instead of waiting for the next tick (§3.1's "send an
	// inter-processor interrupt to get the processor back sooner").
	IPIRevoke bool
	// CacheReload models §3.1's "hidden costs to reallocating CPUs,
	// such as cache pollution": a thread dispatched onto a CPU whose
	// cache it does not own (another thread ran there since, or the
	// thread migrated) pays this much extra CPU time re-fetching its
	// working set. Zero disables the model.
	CacheReload sim.Time
	// MinLoanInterval rate-limits lending, the "more sophisticated
	// implementation of the sharing policy" §3.1 sketches: a CPU whose
	// loan was revoked within this interval refuses new loans, damping
	// revocation churn and its cache pollution. Zero disables.
	MinLoanInterval sim.Time
}

// Stats aggregates scheduler-wide counters.
type Stats struct {
	Dispatches     int64
	Preemptions    int64
	Loans          int64 // dispatches of foreign threads onto idle CPUs
	Revocations    int64 // loans taken back for a home thread
	GangPlacements int64 // whole-gang co-scheduling placements
	CacheReloads   int64 // dispatches that paid the cache-pollution cost
	LoansDamped    int64 // loans refused by the MinLoanInterval limiter
}

// Scheduler multiplexes threads onto CPUs with SPU isolation and sharing.
type Scheduler struct {
	eng  *sim.Engine
	spus *core.Manager
	opts Options

	cpus []*cpu
	// runq holds per-SPU FIFO queues of runnable threads, indexed by SPU
	// ID (dense and small). A slice avoids map hashing on the dispatch
	// fast path and makes iteration order deterministic for free.
	runq [][]*Thread
	// sliceFn is the one slice-end callback shared by every dispatch; the
	// operand packs (sliceSeq, cpu index) so arming a slice allocates
	// nothing. See dispatchOn.
	sliceFn func(uint64)
	// cpuCounts is recomputeCPULevels' scratch buffer, reused across
	// ticks so the 10 ms tick stays allocation-free.
	cpuCounts []int

	// rotor state for time-partitioning fractional CPU entitlements:
	// rotorFrac holds each SPU's fractional claim per tick, rotorCredit
	// its accumulated unserved credit.
	rotorFrac   map[core.SPUID]float64
	rotorCredit map[core.SPUID]float64

	Stat Stats
	// PerSPUTime accumulates CPU seconds consumed per SPU.
	PerSPUTime map[core.SPUID]*sim.Time
	// Trace, when non-nil, records loans and revocations.
	Trace *trace.Tracer
	// Metrics, when non-nil, receives per-SPU loan/revocation counters
	// and the revocation-latency distribution. Nil costs nothing.
	Metrics *metrics.Registry
	// AuditHook, when non-nil, runs after every loan dispatch and loan
	// revocation so the invariant auditor can check sharing boundaries
	// the moment they move, not just at the next tick. The hook must
	// only read scheduler state.
	AuditHook func(reason string)

	// RunqLock, when non-nil, is the accounting-only model of the lock
	// a real kernel takes around run-queue manipulation: one shared
	// gate is the coarse SMP global-queue lock, per-SPU gates are the
	// isolating per-SPU queues this scheduler actually implements. It
	// records the serialization (and cross-SPU lock theft, under a
	// shared gate) without perturbing dispatch timing. Nil costs one
	// branch per queue operation.
	RunqLock *lock.GateSet

	gangs []*Gang

	// lendPrefs restricts which SPUs an owner lends idle CPUs to (§3.1:
	// "An SPU could be explicitly picked if the home SPU's sharing
	// policy indicated a preference"). Absent entry = lend to anyone.
	lendPrefs map[core.SPUID]map[core.SPUID]bool
}

// New creates a scheduler for numCPUs processors.
func New(eng *sim.Engine, spus *core.Manager, numCPUs int, opts Options) *Scheduler {
	if numCPUs <= 0 || numCPUs > sliceCPUMask+1 {
		panic(fmt.Sprintf("sched: numCPUs = %d", numCPUs))
	}
	if opts.Slice <= 0 {
		opts.Slice = DefaultSlice
	}
	s := &Scheduler{
		eng:         eng,
		spus:        spus,
		opts:        opts,
		rotorFrac:   make(map[core.SPUID]float64),
		rotorCredit: make(map[core.SPUID]float64),
		PerSPUTime:  make(map[core.SPUID]*sim.Time),
		lendPrefs:   make(map[core.SPUID]map[core.SPUID]bool),
	}
	for i := 0; i < numCPUs; i++ {
		// Before AssignHomes runs, CPUs are homed at the kernel SPU,
		// whose ShareAll policy makes the machine behave as plain SMP.
		s.cpus = append(s.cpus, &cpu{idx: i, home: core.KernelID, speed: 1})
	}
	s.sliceFn = func(arg uint64) {
		c := s.cpus[arg&sliceCPUMask]
		if arg>>sliceCPUBits == c.sliceSeq&sliceSeqMask {
			s.sliceEnd(c)
		}
	}
	return s
}

// Slice-end operand packing: the low bits carry the CPU index, the rest
// the sliceSeq stamp at arm time. 16 bits bound the machine at 65536
// CPUs (the paper's Origin tops out at 128); 48 bits of sequence cannot
// wrap within any simulable run.
const (
	sliceCPUBits = 16
	sliceCPUMask = 1<<sliceCPUBits - 1
	sliceSeqMask = 1<<(64-sliceCPUBits) - 1
)

// rq returns the SPU's runqueue (nil when it never had one).
func (s *Scheduler) rq(id core.SPUID) []*Thread {
	if int(id) >= len(s.runq) {
		return nil
	}
	return s.runq[id]
}

// pushRunq appends a runnable thread to its SPU's queue, growing the
// dense queue table on first sight of a new SPU ID.
func (s *Scheduler) pushRunq(t *Thread) {
	s.RunqLock.Acquire(t.SPU)
	for int(t.SPU) >= len(s.runq) {
		s.runq = append(s.runq, nil)
	}
	s.runq[t.SPU] = append(s.runq[t.SPU], t)
}

// NumCPUs returns the processor count.
func (s *Scheduler) NumCPUs() int { return len(s.cpus) }

// AssignHomes space-partitions the CPUs among the active user SPUs
// according to their entitlements (§3.1). Each SPU receives an integral
// number of dedicated CPUs; leftover CPUs are marked rotatable and are
// time-partitioned among the SPUs with unserved fractional entitlement
// by the per-tick rotor.
func (s *Scheduler) AssignHomes() {
	users := s.spus.ActiveUsers()
	if len(users) == 0 {
		return
	}
	oldHomes := make([]core.SPUID, len(s.cpus))
	for i, c := range s.cpus {
		oldHomes[i] = c.home
	}
	defer func() {
		// Stamp re-homed CPUs: revocation-latency bounds (and their
		// audit) only hold from the moment the current topology exists.
		for i, c := range s.cpus {
			if c.home != oldHomes[i] {
				c.rehomed = s.eng.Now()
			}
		}
	}()
	// Only online CPUs are divided up; an offlined CPU (fault injection)
	// is parked at the kernel SPU and excluded from rotation, so
	// entitlements shrink to the machine that actually exists.
	var online []*cpu
	for _, c := range s.cpus {
		if c.offline {
			c.home = core.KernelID
			c.fixed = true
			continue
		}
		online = append(online, c)
	}
	if len(online) == 0 {
		return
	}
	tw := s.spus.TotalShare()
	n := len(online)
	next := 0
	type claim struct {
		id   core.SPUID
		frac float64
	}
	var claims []claim
	for _, u := range users {
		exact := float64(n) * u.Share() / tw
		whole := int(exact)
		for i := 0; i < whole && next < n; i++ {
			online[next].home = u.ID()
			online[next].fixed = true
			next++
		}
		if f := exact - float64(whole); f > 1e-9 {
			claims = append(claims, claim{u.ID(), f})
		}
		u.SetEntitled(core.CPU, exact)
	}
	// Remaining CPUs rotate among fractional claimants.
	for ; next < n; next++ {
		online[next].fixed = false
		if len(claims) > 0 {
			online[next].home = claims[0].id
		}
	}
	// Re-homing a CPU that is running a now-foreign thread turns the
	// occupancy into a loan, revoked by the normal tick path. This is
	// what makes AssignHomes safe to re-run when SPUs are created,
	// destroyed, or suspended dynamically (§2.1).
	for _, c := range s.cpus {
		if c.cur != nil && c.cur.SPU != c.home && c.cur.SPU != core.KernelID {
			c.loan = true
		}
	}
	for _, c := range claims {
		s.rotorFrac[c.id] = c.frac
		s.rotorCredit[c.id] = 0
	}
}

// SetLendPreference restricts the SPUs that owner will lend idle CPUs
// to. Calling with no borrowers removes the restriction (lend to
// anyone, the default). Lending still requires the owner's ShareIdle
// policy; the preference only narrows the recipients.
func (s *Scheduler) SetLendPreference(owner core.SPUID, borrowers ...core.SPUID) {
	if len(borrowers) == 0 {
		delete(s.lendPrefs, owner)
		return
	}
	set := make(map[core.SPUID]bool, len(borrowers))
	for _, b := range borrowers {
		set[b] = true
	}
	s.lendPrefs[owner] = set
}

// mayLend reports whether a CPU homed at owner may run a thread of
// borrower under the owner's lending preference.
func (s *Scheduler) mayLend(owner, borrower core.SPUID) bool {
	set, ok := s.lendPrefs[owner]
	if !ok {
		return true
	}
	return set[borrower]
}

// SetOffline takes a CPU out of (or returns it to) service. Offlining a
// busy CPU preempts its thread back onto the runqueue and tries to
// place it elsewhere. The caller is expected to re-run AssignHomes (and
// re-divide the other resources) so entitlements match the shrunken or
// regrown machine; kernel.Rebalance does both.
func (s *Scheduler) SetOffline(idx int, off bool) {
	c := s.cpus[idx]
	if c.offline == off {
		return
	}
	c.offline = off
	if off {
		t := c.cur
		if t != nil {
			s.preempt(c)
		}
		c.lastThread = nil // the cache does not survive the outage
		c.busyness.Set(s.eng.Now(), 0)
		if t != nil {
			s.tryDispatchThread(t)
		}
		return
	}
	s.dispatch(c)
}

// Offline reports whether the CPU is out of service.
func (s *Scheduler) Offline(idx int) bool { return s.cpus[idx].offline }

// OnlineCPUs returns how many CPUs are in service.
func (s *Scheduler) OnlineCPUs() int {
	n := 0
	for _, c := range s.cpus {
		if !c.offline {
			n++
		}
	}
	return n
}

// SetCPUSpeed makes a CPU a straggler: it executes at the given
// fraction of nominal speed (0 or 1 restores nominal; values above 1
// are allowed and make it faster). The current thread is preempted so
// accounting at the old speed is settled before the new speed applies.
func (s *Scheduler) SetCPUSpeed(idx int, speed float64) {
	if speed <= 0 {
		speed = 1
	}
	c := s.cpus[idx]
	if c.speed == speed {
		return
	}
	t := c.cur
	if t != nil {
		s.preempt(c)
	}
	c.speed = speed
	if t != nil {
		s.dispatch(c)
	}
}

// CPUSpeed returns the CPU's current speed factor.
func (s *Scheduler) CPUSpeed(idx int) float64 { return s.cpus[idx].speed }

// Homes returns the current home SPU of each CPU (for tests/reporting).
func (s *Scheduler) Homes() []core.SPUID {
	out := make([]core.SPUID, len(s.cpus))
	for i, c := range s.cpus {
		out[i] = c.home
	}
	return out
}

// rotate re-homes the non-fixed CPUs among SPUs with fractional
// entitlement, weighted by their fractions (largest accumulated credit
// first). Called from Tick.
func (s *Scheduler) rotate() {
	var rotatable []*cpu
	for _, c := range s.cpus {
		if !c.fixed && !c.offline {
			rotatable = append(rotatable, c)
		}
	}
	if len(rotatable) == 0 || len(s.rotorFrac) == 0 {
		return
	}
	// Accumulate each claimant's fractional credit, then give each
	// rotatable CPU to the claimant with the most credit (deterministic
	// tie-break by SPU ID), consuming one CPU-tick of credit.
	for id, f := range s.rotorFrac {
		s.rotorCredit[id] += f
	}
	for _, c := range rotatable {
		var best core.SPUID = -1
		var bestCredit float64
		for id, credit := range s.rotorCredit {
			if best == -1 || credit > bestCredit+1e-12 ||
				(credit > bestCredit-1e-12 && id < best) {
				best, bestCredit = id, credit
			}
		}
		if best == -1 {
			break
		}
		s.rotorCredit[best] = bestCredit - 1
		if s.rotorCredit[best] < 0 {
			s.rotorCredit[best] = 0
		}
		if c.home != best {
			c.home = best
			c.rehomed = s.eng.Now()
			// A re-homed CPU running a now-foreign thread treats it as a
			// loan, to be revoked by the normal path if the new home SPU
			// has work.
			if c.cur != nil && c.cur.SPU != best {
				c.loan = true
			}
		}
	}
}

// Wake makes a thread runnable and dispatches it if a CPU is available.
func (s *Scheduler) Wake(t *Thread) {
	if t.exited {
		panic("sched: waking an exited thread " + t.Name)
	}
	if t.Runnable() {
		return
	}
	if t.Remaining <= 0 {
		panic("sched: waking thread " + t.Name + " with no burst")
	}
	t.runnable = true
	t.readySince = s.eng.Now()
	if t.Prof != nil {
		t.Prof.To(profile.StateRunnable, s.cpuCulprit(t.SPU))
	}
	s.pushRunq(t)
	s.tryDispatchThread(t)
}

// cpuCulprit identifies the SPU to blame when a thread of victim has to
// wait for a CPU: whoever occupies a CPU the victim would otherwise be
// entitled to run on. Under ShareAll (the SMP single runqueue) every
// CPU is fair game, so the first foreign occupant is the culprit; under
// the isolating policies only a victim-homed CPU running a foreign
// thread (an outstanding loan) counts. If nobody foreign is in the way
// the wait is self-inflicted (victim's own threads saturate its share)
// and the victim itself is returned, which the profiler treats as
// no-theft. The index-order scan keeps attribution deterministic.
func (s *Scheduler) cpuCulprit(victim core.SPUID) core.SPUID {
	if s.spus.Get(victim).Policy() == core.ShareAll {
		for _, c := range s.cpus {
			if c.cur != nil && c.cur.SPU != victim {
				return c.cur.SPU
			}
		}
		return victim
	}
	for _, c := range s.cpus {
		if c.home == victim && c.cur != nil && c.cur.SPU != victim {
			return c.cur.SPU
		}
	}
	return victim
}

// Exit marks a thread permanently done; it must not be running.
func (s *Scheduler) Exit(t *Thread) {
	if t.running {
		panic("sched: exiting a running thread " + t.Name)
	}
	t.exited = true
	s.removeFromQueue(t)
}

func (s *Scheduler) removeFromQueue(t *Thread) {
	s.RunqLock.Acquire(t.SPU)
	q := s.rq(t.SPU)
	for i, x := range q {
		if x == t {
			s.runq[t.SPU] = append(q[:i], q[i+1:]...)
			break
		}
	}
	t.runnable = false
}

// tryDispatchThread finds a CPU for a newly-woken thread: first an idle
// home CPU, then (if some lender's policy permits) any idle foreign CPU,
// then — with IPI revocation enabled — a home CPU currently loaned out.
func (s *Scheduler) tryDispatchThread(t *Thread) {
	// Idle home CPU (kernel threads may run anywhere).
	for _, c := range s.cpus {
		if c.cur == nil && !c.offline && (c.home == t.SPU || t.SPU == core.KernelID || s.spus.Get(c.home).Policy() == core.ShareAll) {
			s.dispatch(c)
			if c.cur != nil {
				return
			}
		}
	}
	// Idle foreign CPU willing to lend (respecting the owner's lending
	// preference; the dispatch itself re-checks the loan rate limiter).
	for _, c := range s.cpus {
		if c.cur == nil && !c.offline && s.spus.Get(c.home).Policy() == core.ShareIdle &&
			s.mayLend(c.home, t.SPU) {
			s.dispatch(c)
			if c.cur != nil {
				return
			}
		}
	}
	// IPI revocation: take back a loaned home CPU immediately.
	if s.opts.IPIRevoke {
		for _, c := range s.cpus {
			if c.cur != nil && c.loan && c.home == t.SPU {
				s.preempt(c)
				s.Stat.Revocations++
				s.Metrics.Counter(metrics.KeySchedRevocations, c.home).Inc()
				// IPI revocation fires the moment the home thread wakes,
				// so the observed latency is how long it already waited.
				s.Metrics.Distribution(metrics.KeySchedRevokeLatency, c.home).
					ObserveTime(s.eng.Now() - t.readySince)
				c.lastRevoke = s.eng.Now()
				c.everRevoked = true
				if s.Trace != nil {
					s.Trace.Emitf(trace.Sched, fmt.Sprintf("cpu%d", c.idx), "revoke",
						"IPI for waking thread %s of spu%d", t.Name, t.SPU)
				}
				s.dispatch(c)
				if s.AuditHook != nil {
					s.AuditHook("revoke-ipi")
				}
				return
			}
		}
	}
}

// pickFor chooses the next thread for a CPU under the isolation rules:
// kernel threads first, then the home SPU's best thread; if the home SPU
// has nothing and its policy is ShareIdle, the best thread of any SPU
// (a loan); under ShareAll the home restriction does not exist.
func (s *Scheduler) pickFor(c *cpu) (*Thread, bool) {
	if t := s.best(core.KernelID); t != nil {
		return t, false
	}
	homePolicy := s.spus.Get(c.home).Policy()
	if homePolicy == core.ShareAll {
		// Global best across all SPUs: the SMP single runqueue.
		return s.bestAcross(func(core.SPUID) bool { return true }), false
	}
	if t := s.best(c.home); t != nil {
		return t, false
	}
	if homePolicy == core.ShareIdle {
		// Loan rate limiter (§3.1): a CPU whose loan was just revoked
		// declines to lend again until the interval passes.
		if s.opts.MinLoanInterval > 0 && c.everRevoked &&
			s.eng.Now()-c.lastRevoke < s.opts.MinLoanInterval {
			s.Stat.LoansDamped++
			return nil, false
		}
		bt := s.bestAcross(func(id core.SPUID) bool {
			return id != c.home && s.mayLend(c.home, id)
		})
		if bt != nil {
			return bt, true
		}
	}
	return nil, false
}

// bestAcross returns the best runnable thread among the SPUs accepted
// by the filter. SPUs are scanned in ID order — iterating the runqueue
// map directly would make exact priority ties (common when threads wake
// together) resolve by map order and break run-to-run determinism.
func (s *Scheduler) bestAcross(accept func(core.SPUID) bool) *Thread {
	var bt *Thread
	for _, u := range s.spus.All() {
		id := u.ID()
		if !accept(id) {
			continue
		}
		if t := s.best(id); t != nil && (bt == nil || t.pcpu < bt.pcpu ||
			(t.pcpu == bt.pcpu && t.readySince < bt.readySince)) {
			bt = t
		}
	}
	return bt
}

// best returns the highest-priority (lowest pcpu, FIFO on ties) runnable
// thread of an SPU without removing it. Gang members are never picked
// individually; they wait for the gang placement pass at the tick.
func (s *Scheduler) best(id core.SPUID) *Thread {
	var bt *Thread
	for _, t := range s.rq(id) {
		if t.gang != nil {
			continue
		}
		if bt == nil || t.pcpu < bt.pcpu || (t.pcpu == bt.pcpu && t.readySince < bt.readySince) {
			bt = t
		}
	}
	return bt
}

// dispatch fills an idle CPU. No-op if nothing is eligible.
func (s *Scheduler) dispatch(c *cpu) {
	if c.cur != nil || c.offline {
		return
	}
	t, loan := s.pickFor(c)
	if t == nil {
		c.busyness.Set(s.eng.Now(), 0)
		return
	}
	s.dispatchOn(c, t, loan)
}

// dispatchOn places a specific runnable thread on a specific idle CPU.
func (s *Scheduler) dispatchOn(c *cpu, t *Thread, loan bool) {
	s.removeFromQueue(t)
	now := s.eng.Now()
	// Cache pollution (§3.1): a cold cache — someone else ran here, or
	// the thread migrated — costs extra time re-fetching the working
	// set.
	if s.opts.CacheReload > 0 && c.lastThread != nil && c.lastThread != t {
		t.Remaining += s.opts.CacheReload
		s.Stat.CacheReloads++
	}
	c.lastThread = t
	t.running = true
	t.cpu = c.idx
	if t.Prof != nil {
		t.Prof.To(profile.StateRun, t.SPU)
	}
	t.WaitTime.AddTime(now - t.readySince)
	c.cur = t
	c.loan = loan
	c.started = now
	c.busyness.Set(now, 1)
	s.Stat.Dispatches++
	if loan {
		s.Stat.Loans++
		s.Metrics.Counter(metrics.KeySchedLoans, t.SPU).Inc()
		if s.Trace != nil {
			s.Trace.Emitf(trace.Sched, fmt.Sprintf("cpu%d", c.idx), "loan",
				"thread %s of spu%d on cpu homed at spu%d", t.Name, t.SPU, c.home)
		}
		if s.AuditHook != nil {
			s.AuditHook("loan")
		}
	}

	run := s.opts.Slice
	if t.Remaining < run {
		run = t.Remaining
	}
	// A straggler CPU (speed < 1) takes proportionally longer wall time
	// to deliver the same progress; accountRun scales it back.
	wall := run
	if c.speed != 1 {
		wall = sim.Time(float64(run) / c.speed)
		if wall < 1 {
			wall = 1
		}
	}
	c.sliceSeq++
	s.eng.CallAfterU64(wall, "sched.slice", s.sliceFn,
		(c.sliceSeq&sliceSeqMask)<<sliceCPUBits|uint64(c.idx))
}

// sliceEnd handles slice expiry or burst completion on a CPU.
func (s *Scheduler) sliceEnd(c *cpu) {
	t := c.cur
	if t == nil {
		return
	}
	s.accountRun(c)
	t.running = false
	t.cpu = -1
	c.cur = nil
	c.sliceSeq++ // no slice event is armed for this CPU any more
	if t.Remaining <= 0 {
		// Burst complete: the thread blocks (or re-arms itself from the
		// callback). Refill the CPU first so the callback sees current
		// machine state.
		s.dispatch(c)
		if t.BurstDone != nil {
			t.BurstDone()
		}
	} else {
		// Slice expired: back on the runqueue.
		t.runnable = true
		t.readySince = s.eng.Now()
		if t.Prof != nil {
			t.Prof.To(profile.StateRunnable, s.cpuCulprit(t.SPU))
		}
		s.pushRunq(t)
		s.Stat.Preemptions++
		s.dispatch(c)
	}
}

// preempt forcibly removes the current thread from a CPU mid-slice,
// putting it back on its runqueue.
func (s *Scheduler) preempt(c *cpu) {
	t := c.cur
	if t == nil {
		return
	}
	c.sliceSeq++ // invalidate the in-flight slice-end event
	s.accountRun(c)
	t.running = false
	t.cpu = -1
	t.runnable = true
	t.readySince = s.eng.Now()
	c.cur = nil
	c.loan = false
	if t.Prof != nil {
		t.Prof.To(profile.StateRunnable, s.cpuCulprit(t.SPU))
	}
	s.pushRunq(t)
	s.Stat.Preemptions++
}

// accountRun charges the time cur has spent on the CPU since dispatch.
func (s *Scheduler) accountRun(c *cpu) {
	t := c.cur
	now := s.eng.Now()
	ran := now - c.started
	c.started = now
	if ran <= 0 {
		return
	}
	// On a straggler, wall time on the CPU yields speed-scaled progress
	// against the burst (clamped to ≥ 1 ns so a preempt-redispatch cycle
	// cannot stall forever on rounding).
	progress := ran
	if c.speed != 1 {
		progress = sim.Time(float64(ran) * c.speed)
		if progress < 1 {
			progress = 1
		}
	}
	t.Remaining -= progress
	if t.Remaining < 0 {
		t.Remaining = 0
	}
	t.CPUTime += ran
	t.pcpu += ran.Seconds()
	pt := s.PerSPUTime[t.SPU]
	if pt == nil {
		var zero sim.Time
		pt = &zero
		s.PerSPUTime[t.SPU] = pt
	}
	*pt += ran
	c.busyness.Set(now, 1)
}

// Tick is the 10 ms clock tick: decay priorities, rotate fractional
// CPUs, revoke loans whose home SPU now has work, and refill idle CPUs.
func (s *Scheduler) Tick() {
	for _, q := range s.runq {
		for _, t := range q {
			t.pcpu *= priDecay
		}
	}
	for _, c := range s.cpus {
		if c.cur != nil {
			c.cur.pcpu *= priDecay
		}
	}

	s.rotate()

	// Revocation (§3.1): a loaned CPU is taken back at the tick if a
	// home-SPU thread is runnable and no home CPU is free to run it.
	for _, c := range s.cpus {
		if c.cur == nil || !c.loan {
			continue
		}
		if len(s.rq(c.home)) == 0 {
			continue
		}
		if s.homeHasIdleCPU(c.home) {
			continue
		}
		s.preempt(c)
		s.Stat.Revocations++
		s.Metrics.Counter(metrics.KeySchedRevocations, c.home).Inc()
		// Tick-granularity revocation latency: how long the home SPU's
		// oldest runnable thread has been waiting for its CPU back —
		// the ≤10 ms bound §3.1 argues for.
		if s.Metrics != nil {
			oldest := s.eng.Now()
			for _, t := range s.rq(c.home) {
				if t.readySince < oldest {
					oldest = t.readySince
				}
			}
			s.Metrics.Distribution(metrics.KeySchedRevokeLatency, c.home).
				ObserveTime(s.eng.Now() - oldest)
		}
		c.lastRevoke = s.eng.Now()
		c.everRevoked = true
		if s.Trace != nil {
			s.Trace.Emitf(trace.Sched, fmt.Sprintf("cpu%d", c.idx), "revoke",
				"tick revocation for spu%d", c.home)
		}
		s.dispatch(c)
		if s.AuditHook != nil {
			s.AuditHook("revoke")
		}
	}

	// Gang placement happens at tick granularity, before the general
	// refill so gangs get first pick of the idle CPUs.
	s.placeGangs()

	// Refill any idle CPUs (new lending opportunities since last event).
	for _, c := range s.cpus {
		if c.cur == nil {
			s.dispatch(c)
		}
	}

	// Release finished CPU-usage accounting: recompute used levels from
	// scratch so they reflect the instantaneous picture.
	s.recomputeCPULevels()
}

// homeHasIdleCPU reports whether some CPU homed at id is idle.
func (s *Scheduler) homeHasIdleCPU(id core.SPUID) bool {
	for _, c := range s.cpus {
		if c.home == id && c.cur == nil && !c.offline {
			return true
		}
	}
	return false
}

// recomputeCPULevels sets each SPU's used CPU level to the number of
// CPUs its threads currently occupy.
func (s *Scheduler) recomputeCPULevels() {
	for i := range s.cpuCounts {
		s.cpuCounts[i] = 0
	}
	for _, c := range s.cpus {
		if c.cur == nil {
			continue
		}
		for int(c.cur.SPU) >= len(s.cpuCounts) {
			s.cpuCounts = append(s.cpuCounts, 0)
		}
		s.cpuCounts[c.cur.SPU]++
	}
	for _, u := range s.spus.All() {
		cur := u.Used(core.CPU)
		var want float64
		if id := int(u.ID()); id < len(s.cpuCounts) {
			want = float64(s.cpuCounts[id])
		}
		if cur != want {
			u.Charge(core.CPU, want-cur)
		}
	}
}

// Utilization returns the machine-wide CPU utilization so far.
func (s *Scheduler) Utilization() float64 {
	var sum float64
	for _, c := range s.cpus {
		sum += c.busyness.Average(s.eng.Now())
	}
	return sum / float64(len(s.cpus))
}

// IdleCPUs returns how many CPUs are idle right now.
func (s *Scheduler) IdleCPUs() int {
	n := 0
	for _, c := range s.cpus {
		if c.cur == nil && !c.offline {
			n++
		}
	}
	return n
}

// RunqueueLen returns the number of runnable (not running) threads.
func (s *Scheduler) RunqueueLen() int {
	n := 0
	for _, q := range s.runq {
		n += len(q)
	}
	return n
}

// Audit verifies scheduler consistency: CPU/thread linkage, queue
// state flags, and that no thread is both queued and running. It
// returns the first violation found.
func (s *Scheduler) Audit() error {
	for _, c := range s.cpus {
		if c.cur == nil {
			continue
		}
		if !c.cur.running || c.cur.cpu != c.idx {
			return fmt.Errorf("sched audit: cpu%d runs %q with state running=%v cpu=%d",
				c.idx, c.cur.Name, c.cur.running, c.cur.cpu)
		}
		if c.cur.exited {
			return fmt.Errorf("sched audit: cpu%d runs exited thread %q", c.idx, c.cur.Name)
		}
	}
	for i, q := range s.runq {
		id := core.SPUID(i)
		for _, t := range q {
			if t.SPU != id {
				return fmt.Errorf("sched audit: thread %q of spu%d on spu%d queue", t.Name, t.SPU, id)
			}
			if !t.runnable || t.running {
				return fmt.Errorf("sched audit: queued thread %q has runnable=%v running=%v",
					t.Name, t.runnable, t.running)
			}
			if t.exited {
				return fmt.Errorf("sched audit: exited thread %q still queued", t.Name)
			}
		}
	}
	return nil
}

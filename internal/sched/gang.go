package sched

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/trace"
)

// Gang groups threads for gang scheduling [Ous82], which §3.1 notes the
// base hybrid policy does not accommodate without modification: a
// fine-grain parallel application wants all of its threads running
// simultaneously, or none, so that spin-waits and barriers do not stall
// on descheduled peers.
//
// Members are never dispatched individually. At each clock tick the
// scheduler checks every gang whose non-exited members are all
// runnable; if the gang's home SPU can supply enough CPUs — idle ones
// first, then by preempting non-gang threads on those CPUs — the whole
// gang is placed at once. Members run until their bursts end (e.g. at a
// barrier); the gang re-gathers and is placed again at a later tick.
type Gang struct {
	s       *Scheduler
	members []*Thread
}

// NewGang creates a gang from the given threads. All members must
// belong to the same SPU, and the gang must fit the CPUs that SPU can
// ever use (otherwise it could never be placed; that is a configuration
// error and panics).
func (s *Scheduler) NewGang(ts ...*Thread) *Gang {
	if len(ts) == 0 {
		panic("sched: empty gang")
	}
	spu := ts[0].SPU
	homes := 0
	for _, c := range s.cpus {
		if s.eligibleForSPU(c, spu) {
			homes++
		}
	}
	for _, t := range ts {
		if t.SPU != spu {
			panic(fmt.Sprintf("sched: gang spans SPUs %d and %d", spu, t.SPU))
		}
		if t.gang != nil {
			panic("sched: thread " + t.Name + " already in a gang")
		}
	}
	if len(ts) > homes {
		panic(fmt.Sprintf("sched: gang of %d cannot fit the %d CPUs available to spu%d",
			len(ts), homes, spu))
	}
	g := &Gang{s: s, members: append([]*Thread(nil), ts...)}
	for _, t := range ts {
		t.gang = g
	}
	s.gangs = append(s.gangs, g)
	return g
}

// Members returns the gang's threads.
func (g *Gang) Members() []*Thread { return g.members }

// ready reports whether every non-exited member is runnable (waiting on
// a runqueue) — the all-or-nothing placement condition — and how many
// CPUs placement needs.
func (g *Gang) ready() (n int, ok bool) {
	for _, t := range g.members {
		if t.exited {
			continue
		}
		if t.running || !t.runnable {
			return 0, false
		}
		n++
	}
	return n, n > 0
}

// placeGangs runs at each tick: it places every ready gang whose home
// SPU can supply the CPUs, preempting non-gang threads if needed.
func (s *Scheduler) placeGangs() {
	for _, g := range s.gangs {
		need, ok := g.ready()
		if !ok {
			continue
		}
		spu := g.members[0].SPU
		// Gather candidate CPUs: idle eligible CPUs first, then
		// eligible CPUs running preemptible non-gang threads.
		var free, preemptible []*cpu
		for _, c := range s.cpus {
			if !s.eligibleForSPU(c, spu) {
				continue
			}
			switch {
			case c.cur == nil:
				free = append(free, c)
			case c.cur.gang == nil:
				preemptible = append(preemptible, c)
			}
		}
		if len(free)+len(preemptible) < need {
			continue // try again next tick
		}
		cpus := free
		for len(cpus) < need {
			c := preemptible[0]
			preemptible = preemptible[1:]
			s.preempt(c)
			cpus = append(cpus, c)
		}
		s.Stat.GangPlacements++
		s.Trace.Emitf(trace.Sched, fmt.Sprintf("spu%d", spu), "gang",
			"placed %d members", need)
		i := 0
		for _, t := range g.members {
			if t.exited || !t.runnable {
				continue
			}
			loan := cpus[i].home != spu
			s.dispatchOn(cpus[i], t, loan)
			i++
		}
	}
}

// eligibleForSPU reports whether a CPU may host this SPU's gang
// members: its own home CPUs always; foreign CPUs only when the foreign
// home's policy is ShareAll (the SMP scheme), where the home
// restriction does not exist.
func (s *Scheduler) eligibleForSPU(c *cpu, spu core.SPUID) bool {
	if c.offline {
		return false
	}
	if c.home == spu {
		return true
	}
	return s.spus.Get(c.home).Policy() == core.ShareAll
}

package sched

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

// BenchmarkDispatchStorm measures scheduling cost with many threads
// cycling through short bursts on a partitioned machine.
func BenchmarkDispatchStorm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := sim.NewEngine()
		spus := core.NewManager()
		for j := 0; j < 4; j++ {
			spus.NewSPU("u", 1, core.ShareIdle)
		}
		s := New(eng, spus, 8, Options{})
		s.AssignHomes()
		for j := 0; j < 32; j++ {
			th := &Thread{Name: "w", SPU: core.FirstUserID + core.SPUID(j%4), Remaining: 50 * sim.Millisecond}
			rearm := 10
			th.BurstDone = func() {
				if rearm > 0 {
					rearm--
					th.Remaining = 50 * sim.Millisecond
					s.Wake(th)
				}
			}
			s.Wake(th)
		}
		tick := eng.Every(TickPeriod, "tick", s.Tick)
		b.StartTimer()
		eng.RunUntil(20 * sim.Second)
		tick.Stop()
	}
}

// BenchmarkTickOverhead measures the clock tick with idle runqueues.
func BenchmarkTickOverhead(b *testing.B) {
	eng := sim.NewEngine()
	spus := core.NewManager()
	for j := 0; j < 8; j++ {
		spus.NewSPU("u", 1, core.ShareIdle)
	}
	s := New(eng, spus, 8, Options{})
	s.AssignHomes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tick()
	}
}

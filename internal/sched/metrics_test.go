package sched

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/metrics"
	"perfiso/internal/sim"
)

// stormMachine builds a two-SPU machine where SPU A is overloaded and
// SPU B idle with ShareIdle, so dispatches include loans and the tick
// revokes them — exercising every instrumented scheduler path. When
// withMetrics is true a registry is attached before any thread wakes.
func stormMachine(withMetrics bool) (*sim.Engine, *Scheduler, *metrics.Registry) {
	eng := sim.NewEngine()
	spus := core.NewManager()
	spus.NewSPU("busy", 1, core.ShareIdle)
	spus.NewSPU("idle", 1, core.ShareIdle)
	s := New(eng, spus, 2, Options{})
	var reg *metrics.Registry
	if withMetrics {
		reg = metrics.New(eng, 10*sim.Millisecond)
	}
	s.Metrics = reg
	s.AssignHomes()
	// 50 ms bursts against the 30 ms slice keep loans in flight across
	// clock ticks, so tick revocation (not burst completion) is what
	// takes CPUs back.
	for j := 0; j < 4; j++ {
		th := &Thread{Name: "w", SPU: core.FirstUserID, Remaining: 50 * sim.Millisecond}
		th.BurstDone = func() {
			th.Remaining = 50 * sim.Millisecond
			s.Wake(th)
		}
		s.Wake(th)
	}
	return eng, s, reg
}

// steadyStateAllocs measures allocations per 10 ms of simulated
// dispatch churn after the machine reaches steady state.
func steadyStateAllocs(eng *sim.Engine) float64 {
	eng.RunUntil(200 * sim.Millisecond)
	return testing.AllocsPerRun(100, func() {
		eng.RunUntil(eng.Now() + 10*sim.Millisecond)
	})
}

// The observability layer must be free when off: every operation the
// instrumented sites perform against a nil registry — handle lookup,
// increment, latency observation, sampling — allocates nothing.
func TestNilRegistryOperationsAllocationFree(t *testing.T) {
	var r *metrics.Registry
	allocs := testing.AllocsPerRun(1000, func() {
		r.Counter(metrics.KeySchedLoans, core.FirstUserID).Inc()
		r.Counter(metrics.KeySchedRevocations, core.FirstUserID).Add(1)
		r.Distribution(metrics.KeySchedRevokeLatency, core.FirstUserID).ObserveTime(sim.Millisecond)
		r.Sample()
	})
	if allocs != 0 {
		t.Fatalf("nil-registry operations allocate %.1f times per call", allocs)
	}
}

// The hot dispatch path with metrics off must allocate exactly as much
// as it did before the observability layer existed. The pre-existing
// cost (one slice-end closure per dispatch) is measured on an identical
// machine, so any allocation the nil-metrics plumbing added shows up as
// a difference rather than depending on a pinned absolute count.
func TestNilMetricsAddsNoDispatchAllocations(t *testing.T) {
	engNil, _, _ := stormMachine(false)
	engBase, _, _ := stormMachine(false)
	a := steadyStateAllocs(engNil)
	b := steadyStateAllocs(engBase)
	if a != b {
		t.Fatalf("identical nil-metrics machines diverged: %.1f vs %.1f allocs/10ms", a, b)
	}
	// The dispatch storm itself must stay cheap: the only allocations
	// per 10 ms are the slice-end closures (≤ 1 per dispatch, 2 CPUs,
	// 5 ms bursts ⇒ ≤ 8). A jump past that means someone put an
	// allocation on the nil-metrics dispatch path.
	if a > 8 {
		t.Fatalf("dispatch path allocates %.1f times per 10ms with nil metrics (budget 8)", a)
	}
}

// With a registry attached, loans and revocations land in the per-SPU
// counters and the revocation-latency distribution sees every take-back.
func TestSchedulerMetricsCountLoansAndRevocations(t *testing.T) {
	eng, s, reg := stormMachine(true)
	tick := eng.Every(TickPeriod, "tick", s.Tick)
	eng.RunUntil(500 * sim.Millisecond)
	tick.Stop()

	loans := reg.FindCounter(metrics.KeySchedLoans, core.FirstUserID)
	if loans.Value() == 0 || loans.Value() != s.Stat.Loans {
		t.Fatalf("loan counter = %d, Stat.Loans = %d", loans.Value(), s.Stat.Loans)
	}
	// Wake a thread on the lending SPU: the tick must revoke the loan,
	// observing a bounded latency for the lender.
	lender := core.FirstUserID + 1
	th := &Thread{Name: "home", SPU: lender, Remaining: 50 * sim.Millisecond}
	s.Wake(th)
	tick2 := eng.Every(TickPeriod, "tick", s.Tick)
	eng.RunUntil(eng.Now() + 100*sim.Millisecond)
	tick2.Stop()

	rev := reg.FindCounter(metrics.KeySchedRevocations, lender)
	if rev.Value() == 0 || rev.Value() != s.Stat.Revocations {
		t.Fatalf("revocation counter = %d, Stat.Revocations = %d", rev.Value(), s.Stat.Revocations)
	}
	d := reg.FindDistribution(metrics.KeySchedRevokeLatency, lender)
	if d.N() != int(rev.Value()) {
		t.Fatalf("latency observations = %d, revocations = %d", d.N(), rev.Value())
	}
	// Tick revocation latency is bounded by the tick period plus a
	// slice (the thread may have started waiting mid-slice).
	if max := d.Quantile(1); max > (TickPeriod + DefaultSlice).Seconds() {
		t.Fatalf("revocation latency max = %v s, want <= tick+slice", max)
	}
}

package sched

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

// With CacheReload on, a thread bouncing between CPUs pays for each
// migration; a thread that keeps its CPU does not.
func TestCacheReloadChargesColdDispatches(t *testing.T) {
	eng, _, s, us := schedRig(1, core.ShareIdle, 1)
	s.opts.CacheReload = 5 * sim.Millisecond
	// Two threads sharing one CPU: every alternation is a cold cache.
	var d1 sim.Time
	t1 := &Thread{Name: "t1", SPU: us[0].ID(), Remaining: 90 * sim.Millisecond}
	t1.BurstDone = func() { d1 = eng.Now() }
	t2 := &Thread{Name: "t2", SPU: us[0].ID(), Remaining: 90 * sim.Millisecond}
	s.Wake(t1)
	s.Wake(t2)
	runTicks(eng, s, 2*sim.Second)
	if s.Stat.CacheReloads == 0 {
		t.Fatal("no cache reloads counted for alternating threads")
	}
	// t1 needed 90ms of its own plus reload penalties: it must finish
	// later than the no-pollution interleaving bound (120ms..180ms).
	if d1 <= 180*sim.Millisecond {
		t.Fatalf("t1 finished at %v; pollution cost missing", d1)
	}
}

func TestCacheReloadFreeWhenCacheOwned(t *testing.T) {
	eng, _, s, us := schedRig(1, core.ShareIdle, 2)
	s.opts.CacheReload = 5 * sim.Millisecond
	// Two threads, two CPUs: each keeps its CPU; after the first
	// dispatch no reload is ever charged.
	var d sim.Time
	t1 := &Thread{Name: "t1", SPU: us[0].ID(), Remaining: 90 * sim.Millisecond}
	t1.BurstDone = func() { d = eng.Now() }
	t2 := &Thread{Name: "t2", SPU: us[0].ID(), Remaining: 90 * sim.Millisecond}
	s.Wake(t1)
	s.Wake(t2)
	runTicks(eng, s, sim.Second)
	if s.Stat.CacheReloads != 0 {
		t.Fatalf("cache reloads = %d on dedicated CPUs", s.Stat.CacheReloads)
	}
	if d != 90*sim.Millisecond {
		t.Fatalf("t1 finished at %v, want exactly 90ms", d)
	}
}

// The loan rate limiter refuses to re-lend a CPU right after a
// revocation, trading borrower throughput for lender cache stability.
func TestMinLoanIntervalDampsChurn(t *testing.T) {
	run := func(interval sim.Time) (loans, damped int64) {
		eng := sim.NewEngine()
		spus := core.NewManager()
		a := spus.NewSPU("a", 1, core.ShareIdle)
		b := spus.NewSPU("b", 1, core.ShareIdle)
		s := New(eng, spus, 2, Options{MinLoanInterval: interval})
		s.AssignHomes()
		// a blinks: 5ms on, 15ms off — constantly creating loan
		// windows followed by revocations.
		var blink *Thread
		blink = &Thread{Name: "blink", SPU: a.ID(), Remaining: 5 * sim.Millisecond}
		rounds := 100
		blink.BurstDone = func() {
			if rounds == 0 {
				return
			}
			rounds--
			eng.After(15*sim.Millisecond, "rearm", func() {
				blink.Remaining = 5 * sim.Millisecond
				s.Wake(blink)
			})
		}
		s.Wake(blink)
		// b is insatiable.
		s.Wake(&Thread{Name: "hog1", SPU: b.ID(), Remaining: 100 * sim.Second})
		s.Wake(&Thread{Name: "hog2", SPU: b.ID(), Remaining: 100 * sim.Second})
		runTicks(eng, s, 3*sim.Second)
		return s.Stat.Loans, s.Stat.LoansDamped
	}
	freeLoans, _ := run(0)
	limitedLoans, damped := run(100 * sim.Millisecond)
	if limitedLoans >= freeLoans {
		t.Fatalf("limiter did not reduce loans: %d vs %d", limitedLoans, freeLoans)
	}
	if damped == 0 {
		t.Fatal("no damping events recorded")
	}
}

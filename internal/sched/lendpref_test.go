package sched

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

// §3.1: "An SPU could be explicitly picked if the home SPU's sharing
// policy indicated a preference." With A idle and C overloaded, C's
// completion depends on whether A's preference includes it.
func TestLendPreferenceRestrictsBorrowers(t *testing.T) {
	run := func(allowC bool) sim.Time {
		eng := sim.NewEngine()
		spus := core.NewManager()
		a := spus.NewSPU("a", 1, core.ShareIdle)
		c := spus.NewSPU("c", 1, core.ShareIdle)
		s := New(eng, spus, 2, Options{})
		s.AssignHomes()
		if allowC {
			s.SetLendPreference(a.ID(), c.ID())
		} else {
			// Lend only to itself: effectively nobody.
			s.SetLendPreference(a.ID(), a.ID())
		}
		var done sim.Time
		for i := 0; i < 2; i++ {
			ct := &Thread{Name: "c", SPU: c.ID(), Remaining: 100 * sim.Millisecond}
			ct.BurstDone = func() {
				if eng.Now() > done {
					done = eng.Now()
				}
			}
			s.Wake(ct)
		}
		runTicks(eng, s, sim.Second)
		return done
	}
	allowed := run(true)
	denied := run(false)
	// With the loan allowed, both threads run in parallel: ~100ms.
	if allowed > 110*sim.Millisecond {
		t.Fatalf("preferred borrower finished at %v; loan did not happen", allowed)
	}
	// Restricted to its own CPU: ~200ms.
	if denied < 190*sim.Millisecond {
		t.Fatalf("non-preferred borrower finished at %v; it borrowed anyway", denied)
	}
}

func TestLendPreferenceClear(t *testing.T) {
	eng, _, s, us := schedRig(2, core.ShareIdle, 2)
	a, b := us[0], us[1]
	s.SetLendPreference(a.ID()) // no borrowers listed: lend to anyone
	_ = eng
	if !s.mayLend(a.ID(), b.ID()) {
		t.Fatal("empty preference should mean no restriction")
	}
	s.SetLendPreference(a.ID(), a.ID()) // only itself: effectively nobody
	if s.mayLend(a.ID(), b.ID()) {
		t.Fatal("restriction ignored")
	}
	s.SetLendPreference(a.ID()) // clear again
	if !s.mayLend(a.ID(), b.ID()) {
		t.Fatal("clearing the preference failed")
	}
}

package sched

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

// gangRig sets up 1 SPU with 4 CPUs and a 2-member gang whose members
// re-arm themselves through a shared "barrier" that records placement
// times.
func TestGangPlacesAllMembersTogether(t *testing.T) {
	eng, _, s, us := schedRig(1, core.ShareIdle, 4)
	var starts [][2]sim.Time
	var cur [2]sim.Time
	arrived := 0
	g1 := &Thread{Name: "g1", SPU: us[0].ID(), Remaining: 20 * sim.Millisecond}
	g2 := &Thread{Name: "g2", SPU: us[0].ID(), Remaining: 20 * sim.Millisecond}
	rounds := 0
	rearm := func(i int, t *Thread) func() {
		return func() {
			cur[i] = eng.Now()
			arrived++
			if arrived == 2 {
				arrived = 0
				starts = append(starts, cur)
				rounds++
				if rounds < 5 {
					g1.Remaining = 20 * sim.Millisecond
					g2.Remaining = 20 * sim.Millisecond
					s.Wake(g1)
					s.Wake(g2)
				}
			}
		}
	}
	g1.BurstDone = rearm(0, g1)
	g2.BurstDone = rearm(1, g2)
	s.NewGang(g1, g2)
	s.Wake(g1)
	s.Wake(g2)
	runTicks(eng, s, 2*sim.Second)
	if rounds != 5 {
		t.Fatalf("gang completed %d rounds", rounds)
	}
	// Each round, both members must have finished their equal bursts at
	// the same instant — they started together.
	for i, pair := range starts {
		if pair[0] != pair[1] {
			t.Fatalf("round %d finished apart: %v vs %v", i, pair[0], pair[1])
		}
	}
	if s.Stat.GangPlacements < 5 {
		t.Fatalf("gang placements = %d", s.Stat.GangPlacements)
	}
}

func TestGangNotDispatchedPiecemeal(t *testing.T) {
	eng, _, s, us := schedRig(1, core.ShareIdle, 2)
	// One member runnable, the other not: nothing must run.
	g1 := &Thread{Name: "g1", SPU: us[0].ID(), Remaining: 10 * sim.Millisecond}
	g2 := &Thread{Name: "g2", SPU: us[0].ID(), Remaining: 10 * sim.Millisecond}
	done := false
	g1.BurstDone = func() { done = true }
	s.NewGang(g1, g2)
	s.Wake(g1) // g2 stays blocked
	runTicks(eng, s, 200*sim.Millisecond)
	if done {
		t.Fatal("gang member ran alone")
	}
	// Wake the second member: now the gang places at the next tick.
	s.Wake(g2)
	runTicks(eng, s, eng.Now()+200*sim.Millisecond)
	if !done {
		t.Fatal("gang never placed after both members became runnable")
	}
}

func TestGangPreemptsNonGangThreads(t *testing.T) {
	eng, _, s, us := schedRig(1, core.ShareIdle, 2)
	// Two CPU hogs occupy both CPUs; the gang must still get placed by
	// preempting them at a tick.
	s.Wake(&Thread{Name: "hog1", SPU: us[0].ID(), Remaining: 10 * sim.Second})
	s.Wake(&Thread{Name: "hog2", SPU: us[0].ID(), Remaining: 10 * sim.Second})
	var fin sim.Time
	g1 := &Thread{Name: "g1", SPU: us[0].ID(), Remaining: 10 * sim.Millisecond}
	g2 := &Thread{Name: "g2", SPU: us[0].ID(), Remaining: 10 * sim.Millisecond}
	g1.BurstDone = func() { fin = eng.Now() }
	g2.BurstDone = func() {}
	s.NewGang(g1, g2)
	eng.At(55*sim.Millisecond, "wake", func() { s.Wake(g1); s.Wake(g2) })
	runTicks(eng, s, sim.Second)
	if fin == 0 {
		t.Fatal("gang starved behind CPU hogs")
	}
	// Placed at the first tick after waking (60 ms), ran 10 ms.
	if fin != 70*sim.Millisecond {
		t.Fatalf("gang finished at %v, want 70ms", fin)
	}
}

func TestGangValidation(t *testing.T) {
	_, _, s, us := schedRig(2, core.ShareIdle, 4)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty", func() { s.NewGang() })
	mustPanic("cross-spu", func() {
		s.NewGang(
			&Thread{Name: "a", SPU: us[0].ID()},
			&Thread{Name: "b", SPU: us[1].ID()},
		)
	})
	mustPanic("too big", func() {
		var ts []*Thread
		for i := 0; i < 3; i++ { // SPU owns only 2 of the 4 CPUs
			ts = append(ts, &Thread{Name: "m", SPU: us[0].ID()})
		}
		s.NewGang(ts...)
	})
	mustPanic("double membership", func() {
		th := &Thread{Name: "x", SPU: us[0].ID()}
		s.NewGang(th)
		s.NewGang(th)
	})
}

func TestGangMembersExposed(t *testing.T) {
	_, _, s, us := schedRig(1, core.ShareIdle, 2)
	a := &Thread{Name: "a", SPU: us[0].ID()}
	g := s.NewGang(a)
	if len(g.Members()) != 1 || g.Members()[0] != a {
		t.Fatal("Members() wrong")
	}
}

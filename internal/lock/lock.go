// Package lock models kernel locks as first-class simulated resources.
// §3.4 of the paper showed a single kernel semaphore (the IRIX inode
// lock) silently breaking performance isolation: an SPU that never
// shares CPU, memory, or disk with its neighbours still stalls behind
// their lock holds. This package generalizes the ad-hoc fs semaphore
// into one lock model the whole kernel shares, so every lock carries
// per-SPU hold/wait ledgers, tags the holder that made each waiter
// queue, and feeds the victim×culprit interference matrix — turning
// "locked in, leaked out" interference into a measured quantity.
//
// Two flavours cover the kernel's needs:
//
//   - Lock is the event-based semaphore (mutex or reader-writer): an
//     Acquire either grants immediately or queues FIFO, the grant runs
//     the caller's continuation, and the hold is returned by a
//     scheduled release event. It really serializes simulated time, so
//     it models locks whose contention the paper *measured* (the inode
//     lock, the page-insert stripes).
//
//   - Gate (gate.go) is the accounting-only flavour for synchronous
//     hot paths (run-queue and frame-pool manipulation): it measures
//     the serialization a real kernel lock would impose without
//     perturbing event timing, so enabling it never changes a table.
//
// Both variants audit the same conservation laws (see Audit) and
// snapshot their full state for checkpoint/replay.
package lock

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/profile"
	"perfiso/internal/sim"
	"perfiso/internal/snap"
	"perfiso/internal/stats"
)

// Mode selects mutex or reader-writer semantics.
type Mode int

const (
	// Mutex admits one holder at a time regardless of shared/exclusive.
	Mutex Mode = iota
	// RW admits concurrent shared holders; exclusive holders are alone.
	RW
)

func (m Mode) String() string {
	switch m {
	case Mutex:
		return "mutex"
	case RW:
		return "rw"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// waiter is one queued acquisition.
type waiter struct {
	spu    core.SPUID
	shared bool
	hold   sim.Time
	fn     func()
	since  sim.Time
	// culprit is the holder blamed for this waiter queueing: the
	// foreign SPU holding the lock at enqueue time (self when no
	// foreign holder, which the profiler drops).
	culprit core.SPUID
}

// Lock is a simulated kernel semaphore with FIFO queueing, per-SPU
// wait/hold ledgers, and culprit-tagged interference accounting. The
// zero value is not usable; call New.
//
// The exported counters are cumulative over the run; all times are
// simulated nanoseconds.
type Lock struct {
	eng  *sim.Engine
	name string
	mode Mode

	// Holder state.
	readers    int
	writer     bool
	writerSPU  core.SPUID
	readerSPUs []core.SPUID // insertion order, for culprit lookup

	// FIFO wait queue as a compacting dequeue: head indexes the first
	// live waiter, so popping never re-slices away the backing array
	// (the seed semaphore's s.queue = s.queue[1:] grew memory without
	// bound under sustained contention).
	queue []waiter
	head  int

	// draining marks an in-progress release drain: Acquires that would
	// grant immediately instead join the queue tail and are granted in
	// the same drain at the same instant, so grant callbacks run
	// strictly sequentially — never nested, never mutating a queue a
	// drain loop is iterating.
	draining bool
	batch    []waiter // drain scratch, reused across releases

	// Acquisitions counts grants; Contended counts acquisitions that
	// queued. WaitTotal is queueing delay summed over every
	// acquisition; ContendedWait only over the contended ones, which
	// is the §3.4 "additional stall time" undiluted by uncontended
	// traffic. HoldTotal sums granted hold times.
	Acquisitions  int64
	Contended     int64
	WaitTotal     sim.Time
	ContendedWait sim.Time
	HoldTotal     sim.Time

	// grants/releases and releaseDue feed the audit laws: grants −
	// releases is the live holder count, and any outstanding hold has
	// a release event due at or after now (loaned time is revocable,
	// nobody holds forever).
	grants     int64
	releases   int64
	releaseDue sim.Time

	qlen stats.TimeWeighted // time-weighted queue length

	// Dense per-SPU ledgers, indexed by SPUID.
	waitBySPU []sim.Time
	holdBySPU []sim.Time
	acqBySPU  []int64

	prof  *profile.Profiler
	relFn func(uint64) // pre-bound release callback (zero-alloc events)
}

// New creates a named lock on the engine. The name appears in audits,
// snapshots, and lock tables.
func New(eng *sim.Engine, name string, mode Mode) *Lock {
	l := &Lock{eng: eng, name: name, mode: mode}
	l.relFn = func(arg uint64) { l.release(core.SPUID(arg>>1), arg&1 == 1) }
	return l
}

// SetProfile wires contended waits into the interference matrix as
// Lock-resource theft, blamed on the holder at enqueue time.
func (l *Lock) SetProfile(p *profile.Profiler) { l.prof = p }

// Name returns the lock's name.
func (l *Lock) Name() string { return l.name }

// Mode returns the lock's admission mode.
func (l *Lock) Mode() Mode { return l.mode }

// QueueLen returns the number of queued waiters.
func (l *Lock) QueueLen() int { return len(l.queue) - l.head }

// Holders returns the live holder population.
func (l *Lock) Holders() (readers int, writerHeld bool) {
	return l.readers, l.writer
}

// Acquire requests the lock for the SPU and calls fn when granted —
// immediately when the lock admits the request and nobody is queued,
// otherwise after the FIFO queue drains to it. The grant keeps the
// lock held for hold simulated time and then releases it via a
// scheduled event. Under Mutex mode every acquisition is exclusive
// regardless of shared.
func (l *Lock) Acquire(spu core.SPUID, shared bool, hold sim.Time, fn func()) {
	if l.mode == Mutex {
		shared = false
	}
	now := l.eng.Now()
	w := waiter{spu: spu, shared: shared, hold: hold, fn: fn, since: now}
	if !l.draining && l.canGrant(w) && l.QueueLen() == 0 {
		l.admit(w, now)
		w.fn()
		l.scheduleRelease(w, now)
		return
	}
	// Queue it — during a drain even an admissible request queues, so
	// the drain grants it in FIFO order without nesting callbacks.
	l.Contended++
	w.culprit = l.culpritFor(spu)
	l.queue = append(l.queue, w)
	l.qlen.Set(now, float64(l.QueueLen()))
}

// canGrant reports whether the waiter could hold the lock right now.
func (l *Lock) canGrant(w waiter) bool {
	if w.shared {
		return !l.writer
	}
	return !l.writer && l.readers == 0
}

// culpritFor picks the holder blamed for a queueing waiter: the
// current writer, else the first reader belonging to another SPU. A
// same-SPU culprit is self-interference, which AddTheft drops.
func (l *Lock) culpritFor(spu core.SPUID) core.SPUID {
	if l.writer {
		return l.writerSPU
	}
	for _, r := range l.readerSPUs {
		if r != spu {
			return r
		}
	}
	if len(l.readerSPUs) > 0 {
		return l.readerSPUs[0]
	}
	return spu
}

// admit grants the waiter: stats, holder state, and interference
// blame. It does not run fn or schedule the release — callers do both
// afterwards, in that order, because the grant continuation's events
// must enqueue before the release event to keep same-instant dispatch
// order identical to the original semaphore.
func (l *Lock) admit(w waiter, now sim.Time) {
	wait := now - w.since
	l.Acquisitions++
	l.grants++
	l.WaitTotal += wait
	l.ensureSPU(w.spu)
	l.acqBySPU[w.spu]++
	l.waitBySPU[w.spu] += wait
	l.holdBySPU[w.spu] += w.hold
	l.HoldTotal += w.hold
	if wait > 0 && l.prof != nil {
		l.prof.AddTheft(w.spu, w.culprit, profile.Lock, wait)
	}
	if w.shared {
		l.readers++
		l.readerSPUs = append(l.readerSPUs, w.spu)
	} else {
		l.writer = true
		l.writerSPU = w.spu
	}
}

// scheduleRelease books the end of the waiter's hold.
func (l *Lock) scheduleRelease(w waiter, now sim.Time) {
	if due := now + w.hold; due > l.releaseDue {
		l.releaseDue = due
	}
	l.eng.CallAfterU64(w.hold, "lock.release", l.relFn, uint64(w.spu)<<1|b2u(w.shared))
}

// release returns a hold and drains the queue. Only the scheduled
// release events call it.
func (l *Lock) release(spu core.SPUID, shared bool) {
	l.releases++
	if shared {
		l.readers--
		if l.readers < 0 {
			panic(fmt.Sprintf("lock %s: reader release with no readers", l.name))
		}
		l.dropReader(spu)
	} else {
		if !l.writer {
			panic(fmt.Sprintf("lock %s: writer release with no writer", l.name))
		}
		l.writer = false
	}
	l.drain(l.eng.Now())
}

// drain grants every admissible waiter. Each round snapshots the
// grantable batch — applying holder state while popping so admission
// checks see each grant — and only then runs the batch's callbacks in
// FIFO order, all at the same instant. A callback that re-Acquires
// lands on the queue tail and, if admissible, is granted by the next
// round; callbacks therefore never nest and never mutate a queue
// mid-iteration (the seed semaphore ran them inside its pop loop).
func (l *Lock) drain(now sim.Time) {
	if l.draining {
		return
	}
	l.draining = true
	for {
		batch := l.batch[:0]
		for l.QueueLen() > 0 && l.canGrant(l.queue[l.head]) {
			w := l.pop()
			l.ContendedWait += now - w.since
			l.admit(w, now)
			batch = append(batch, w)
		}
		l.batch = batch[:0] // keep grown capacity for the next release
		if len(batch) == 0 {
			break
		}
		l.qlen.Set(now, float64(l.QueueLen()))
		for i := range batch {
			batch[i].fn()
			l.scheduleRelease(batch[i], now)
		}
	}
	l.draining = false
}

// pop removes and returns the queue head, compacting the backing array
// once the dead prefix dominates so sustained contention runs in
// bounded, eventually allocation-free memory.
func (l *Lock) pop() waiter {
	w := l.queue[l.head]
	l.queue[l.head] = waiter{} // drop the fn reference
	l.head++
	if l.head == len(l.queue) {
		l.queue = l.queue[:0]
		l.head = 0
	} else if l.head >= 32 && l.head > len(l.queue)/2 {
		n := copy(l.queue, l.queue[l.head:])
		clearTail := l.queue[n:]
		for i := range clearTail {
			clearTail[i] = waiter{}
		}
		l.queue = l.queue[:n]
		l.head = 0
	}
	return w
}

// dropReader removes the first ledger entry for the SPU, preserving
// the insertion order of the remaining readers.
func (l *Lock) dropReader(spu core.SPUID) {
	for i, r := range l.readerSPUs {
		if r == spu {
			l.readerSPUs = append(l.readerSPUs[:i], l.readerSPUs[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("lock %s: release by spu%d which holds no read lock", l.name, spu))
}

func (l *Lock) ensureSPU(spu core.SPUID) {
	for int(spu) >= len(l.acqBySPU) {
		l.acqBySPU = append(l.acqBySPU, 0)
		l.waitBySPU = append(l.waitBySPU, 0)
		l.holdBySPU = append(l.holdBySPU, 0)
	}
}

// MeanWait is queueing delay averaged over every acquisition — the
// seed semaphore's statistic, kept for the §3.4 inode-lock ablation
// table. It dilutes stalls with uncontended traffic; prefer
// MeanContendedWait for stall analysis.
func (l *Lock) MeanWait() sim.Time {
	if l.Acquisitions == 0 {
		return 0
	}
	return l.WaitTotal / sim.Time(l.Acquisitions)
}

// MeanContendedWait is queueing delay averaged over only the
// acquisitions that queued: the paper's "additional stall time" per
// contended lock operation.
func (l *Lock) MeanContendedWait() sim.Time {
	if l.Contended == 0 {
		return 0
	}
	return l.ContendedWait / sim.Time(l.Contended)
}

// MeanQueueLen is the time-weighted average queue length since the
// lock was created.
func (l *Lock) MeanQueueLen() float64 { return l.qlen.Average(l.eng.Now()) }

// MaxQueueLen is the longest queue ever observed.
func (l *Lock) MaxQueueLen() int { return int(l.qlen.Max()) }

// AcquisitionsBySPU, WaitBySPU, and HoldBySPU read the per-SPU
// ledgers; SPUs the lock never saw report zero.
func (l *Lock) AcquisitionsBySPU(spu core.SPUID) int64 {
	if int(spu) >= len(l.acqBySPU) {
		return 0
	}
	return l.acqBySPU[spu]
}

func (l *Lock) WaitBySPU(spu core.SPUID) sim.Time {
	if int(spu) >= len(l.waitBySPU) {
		return 0
	}
	return l.waitBySPU[spu]
}

func (l *Lock) HoldBySPU(spu core.SPUID) sim.Time {
	if int(spu) >= len(l.holdBySPU) {
		return 0
	}
	return l.holdBySPU[spu]
}

// Audit re-verifies the lock conservation laws:
//
//  1. Holder/waiter accounting — grants minus releases equals the live
//     holder population, the reader ledger matches the reader count,
//     and contended counts bracket the queue.
//  2. Exclusion — never a reader while the writer holds; Mutex mode
//     never has readers at all.
//  3. Liveness — a non-empty queue implies someone holds the lock
//     (otherwise the release drain would have granted the head).
//  4. Revocability of loaned hold time — while anyone holds the lock a
//     release event is due at or after now, so every hold is a loan
//     the simulated clock will reclaim.
//  5. Ledger conservation — the per-SPU wait/hold/acquisition ledgers
//     telescope exactly to the lock-wide totals, and contended wait
//     never exceeds total wait.
func (l *Lock) Audit() error {
	now := l.eng.Now()
	holders := int64(l.readers)
	if l.writer {
		holders++
	}
	if l.grants-l.releases != holders {
		return fmt.Errorf("lock %s: %d grants - %d releases != %d holders",
			l.name, l.grants, l.releases, holders)
	}
	if len(l.readerSPUs) != l.readers {
		return fmt.Errorf("lock %s: reader ledger has %d entries for %d readers",
			l.name, len(l.readerSPUs), l.readers)
	}
	q := int64(l.QueueLen())
	if l.Contended < q || l.Contended > l.Acquisitions+q {
		return fmt.Errorf("lock %s: contended count %d outside [%d, %d]",
			l.name, l.Contended, q, l.Acquisitions+q)
	}
	if l.writer && l.readers > 0 {
		return fmt.Errorf("lock %s: %d readers while writer (spu%d) holds",
			l.name, l.readers, l.writerSPU)
	}
	if l.mode == Mutex && l.readers > 0 {
		return fmt.Errorf("lock %s: mutex with %d readers", l.name, l.readers)
	}
	if q > 0 && holders == 0 {
		return fmt.Errorf("lock %s: %d waiters queued on an unheld lock", l.name, q)
	}
	if holders > 0 && l.releaseDue < now {
		return fmt.Errorf("lock %s: %d holders but last release was due at %s (now %s)",
			l.name, holders, l.releaseDue, now)
	}
	var wait, hold sim.Time
	var acq int64
	for i := range l.acqBySPU {
		acq += l.acqBySPU[i]
		wait += l.waitBySPU[i]
		hold += l.holdBySPU[i]
	}
	if acq != l.Acquisitions || wait != l.WaitTotal || hold != l.HoldTotal {
		return fmt.Errorf("lock %s: per-SPU ledgers (acq %d wait %s hold %s) != totals (acq %d wait %s hold %s)",
			l.name, acq, wait, hold, l.Acquisitions, l.WaitTotal, l.HoldTotal)
	}
	if l.ContendedWait > l.WaitTotal {
		return fmt.Errorf("lock %s: contended wait %s exceeds total wait %s",
			l.name, l.ContendedWait, l.WaitTotal)
	}
	return nil
}

// Snapshot encodes the lock's full state — holders, queue, counters,
// ledgers — for checkpoint/replay byte-identity.
func (l *Lock) Snapshot(enc *snap.Encoder) {
	enc.Section("lock:" + l.name)
	enc.Str("mode", l.mode.String())
	enc.Int("readers", int64(l.readers))
	enc.Bool("writer", l.writer)
	if l.writer {
		enc.Int("writer_spu", int64(l.writerSPU))
	}
	for i, r := range l.readerSPUs {
		enc.Int(fmt.Sprintf("reader%d", i), int64(r))
	}
	for i := l.head; i < len(l.queue); i++ {
		w := l.queue[i]
		enc.Str(fmt.Sprintf("waiter%d", i-l.head),
			fmt.Sprintf("spu%d shared=%t hold=%s since=%s", w.spu, w.shared, w.hold, w.since))
	}
	enc.Int("acquisitions", l.Acquisitions)
	enc.Int("contended", l.Contended)
	enc.Int("grants", l.grants)
	enc.Int("releases", l.releases)
	enc.Int("wait_total", int64(l.WaitTotal))
	enc.Int("contended_wait", int64(l.ContendedWait))
	enc.Int("hold_total", int64(l.HoldTotal))
	enc.Int("release_due", int64(l.releaseDue))
	for i := range l.acqBySPU {
		if l.acqBySPU[i] != 0 {
			enc.Str(fmt.Sprintf("spu%d", i), fmt.Sprintf("acq=%d wait=%d hold=%d",
				l.acqBySPU[i], int64(l.waitBySPU[i]), int64(l.holdBySPU[i])))
		}
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

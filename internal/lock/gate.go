package lock

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/profile"
	"perfiso/internal/sim"
	"perfiso/internal/snap"
)

// Gate is the accounting-only lock flavour for synchronous hot paths —
// the run-queue and frame-pool manipulation the scheduler and memory
// manager do inline, where a real kernel would take a spinlock the
// event model cannot afford to serialize. A Gate tracks the busy
// window a real lock would impose: each acquisition extends busyUntil
// by Hold, and an acquisition arriving inside another SPU's window
// records the residual window as lock wait and interference-matrix
// theft. It never schedules events and never delays anything, so
// enabling a gate — at any Hold — cannot change a single table; it
// only makes the serialization visible.
//
// With Hold zero the gate degenerates to pure acquisition counting.
type Gate struct {
	eng  *sim.Engine
	name string

	// Hold is the simulated cost of one critical section.
	Hold sim.Time

	busyUntil sim.Time
	holder    core.SPUID // SPU blamed for the current busy window

	Acquisitions int64
	Contended    int64
	WaitTotal    sim.Time

	acqBySPU  []int64
	waitBySPU []sim.Time

	prof *profile.Profiler
}

// NewGate creates a named gate with the given per-acquisition hold.
func NewGate(eng *sim.Engine, name string, hold sim.Time) *Gate {
	return &Gate{eng: eng, name: name, Hold: hold}
}

// SetProfile wires contended windows into the interference matrix.
func (g *Gate) SetProfile(p *profile.Profiler) { g.prof = p }

// Name returns the gate's name.
func (g *Gate) Name() string { return g.name }

// Acquire records one critical section entered by the SPU. Nil-safe:
// an absent gate costs one branch.
func (g *Gate) Acquire(spu core.SPUID) {
	if g == nil {
		return
	}
	g.Acquisitions++
	g.ensureSPU(spu)
	g.acqBySPU[spu]++
	if g.Hold == 0 {
		return
	}
	now := g.eng.Now()
	if g.busyUntil > now {
		wait := g.busyUntil - now
		g.Contended++
		g.WaitTotal += wait
		g.waitBySPU[spu] += wait
		if g.prof != nil {
			g.prof.AddTheft(spu, g.holder, profile.Lock, wait)
		}
		g.busyUntil += g.Hold
	} else {
		g.busyUntil = now + g.Hold
	}
	g.holder = spu
}

func (g *Gate) ensureSPU(spu core.SPUID) {
	for int(spu) >= len(g.acqBySPU) {
		g.acqBySPU = append(g.acqBySPU, 0)
		g.waitBySPU = append(g.waitBySPU, 0)
	}
}

// AcquisitionsBySPU and WaitBySPU read the per-SPU ledgers.
func (g *Gate) AcquisitionsBySPU(spu core.SPUID) int64 {
	if int(spu) >= len(g.acqBySPU) {
		return 0
	}
	return g.acqBySPU[spu]
}

func (g *Gate) WaitBySPU(spu core.SPUID) sim.Time {
	if int(spu) >= len(g.waitBySPU) {
		return 0
	}
	return g.waitBySPU[spu]
}

// MeanContendedWait is the residual busy window averaged over the
// acquisitions that hit one.
func (g *Gate) MeanContendedWait() sim.Time {
	if g.Contended == 0 {
		return 0
	}
	return g.WaitTotal / sim.Time(g.Contended)
}

// Audit re-verifies the gate's conservation laws: ledgers telescope to
// totals, contention never exceeds traffic, and a zero-hold gate never
// accumulates a busy window.
func (g *Gate) Audit() error {
	var acq int64
	var wait sim.Time
	for i := range g.acqBySPU {
		acq += g.acqBySPU[i]
		wait += g.waitBySPU[i]
	}
	if acq != g.Acquisitions || wait != g.WaitTotal {
		return fmt.Errorf("gate %s: per-SPU ledgers (acq %d wait %s) != totals (acq %d wait %s)",
			g.name, acq, wait, g.Acquisitions, g.WaitTotal)
	}
	if g.Contended > g.Acquisitions {
		return fmt.Errorf("gate %s: %d contended of %d acquisitions", g.name, g.Contended, g.Acquisitions)
	}
	if g.Hold == 0 && g.busyUntil != 0 {
		return fmt.Errorf("gate %s: zero hold but busy until %s", g.name, g.busyUntil)
	}
	return nil
}

// Snapshot encodes the gate's state for checkpoint/replay.
func (g *Gate) Snapshot(enc *snap.Encoder) {
	enc.Section("gate:" + g.name)
	enc.Int("hold", int64(g.Hold))
	enc.Int("busy_until", int64(g.busyUntil))
	enc.Int("holder", int64(g.holder))
	enc.Int("acquisitions", g.Acquisitions)
	enc.Int("contended", g.Contended)
	enc.Int("wait_total", int64(g.WaitTotal))
	for i := range g.acqBySPU {
		if g.acqBySPU[i] != 0 {
			enc.Str(fmt.Sprintf("spu%d", i), fmt.Sprintf("acq=%d wait=%d",
				g.acqBySPU[i], int64(g.waitBySPU[i])))
		}
	}
}

// GateSet routes a hot structure's acquisitions to either one shared
// gate (the coarse kernel lock an SMP kernel hangs the structure
// under) or a private per-SPU gate (the isolating layout PIso implies:
// per-SPU run queues, per-SPU frame pools). Private gates cannot
// produce cross-SPU lock theft by construction — one SPU's traffic
// never lands in another's busy window.
type GateSet struct {
	eng    *sim.Engine
	name   string
	hold   sim.Time
	shared *Gate
	perSPU []*Gate
	all    []*Gate // live gates in creation order, shared first
	prof   *profile.Profiler
}

// NewGateSet creates the set; shared picks the coarse single-gate
// layout, otherwise each SPU gets a private gate on first use.
func NewGateSet(eng *sim.Engine, name string, hold sim.Time, shared bool) *GateSet {
	s := &GateSet{eng: eng, name: name, hold: hold}
	if shared {
		s.shared = NewGate(eng, name, hold)
		s.all = append(s.all, s.shared)
	}
	return s
}

// SetProfile wires every gate (present and future) into the matrix.
func (s *GateSet) SetProfile(p *profile.Profiler) {
	s.prof = p
	if s.shared != nil {
		s.shared.SetProfile(p)
	}
	for _, g := range s.perSPU {
		if g != nil {
			g.SetProfile(p)
		}
	}
}

// Shared reports whether the set is one coarse gate.
func (s *GateSet) Shared() bool { return s.shared != nil }

// Name returns the set's name.
func (s *GateSet) Name() string { return s.name }

// Acquire records one critical section by the SPU on its gate.
// Nil-safe: an unconfigured set costs one branch.
func (s *GateSet) Acquire(spu core.SPUID) {
	if s == nil {
		return
	}
	if s.shared != nil {
		s.shared.Acquire(spu)
		return
	}
	s.gateFor(spu).Acquire(spu)
}

func (s *GateSet) gateFor(spu core.SPUID) *Gate {
	for int(spu) >= len(s.perSPU) {
		s.perSPU = append(s.perSPU, nil)
	}
	g := s.perSPU[spu]
	if g == nil {
		g = NewGate(s.eng, fmt.Sprintf("%s.spu%d", s.name, spu), s.hold)
		g.SetProfile(s.prof)
		s.perSPU[spu] = g
		s.all = append(s.all, g)
	}
	return g
}

// Gates returns every live gate in the set, shared first then per-SPU
// gates in creation order. The slice is cached so the periodic audit
// can walk it allocation-free; callers must not mutate it. Nil-safe.
func (s *GateSet) Gates() []*Gate {
	if s == nil {
		return nil
	}
	return s.all
}

// Totals aggregates the set's traffic and contention.
func (s *GateSet) Totals() (acquisitions, contended int64, wait sim.Time) {
	for _, g := range s.Gates() {
		acquisitions += g.Acquisitions
		contended += g.Contended
		wait += g.WaitTotal
	}
	return
}

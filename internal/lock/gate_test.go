package lock

import (
	"testing"

	"perfiso/internal/profile"
	"perfiso/internal/sim"
)

// A gate never schedules events: acquisitions inside another SPU's busy
// window are recorded as contention and theft, but simulated time is
// untouched.
func TestGateBusyWindowAccounting(t *testing.T) {
	eng := sim.NewEngine()
	p := profile.New(eng, 0)
	g := NewGate(eng, "t", 10*sim.Microsecond)
	g.SetProfile(p)
	g.Acquire(spuA) // opens a window [0, 10us)
	g.Acquire(spuB) // inside A's window: waits 10us, extends to 20us
	g.Acquire(spuC) // inside B's extension: waits 20us
	if g.Contended != 2 {
		t.Fatalf("contended = %d", g.Contended)
	}
	if g.WaitTotal != 30*sim.Microsecond {
		t.Fatalf("wait total = %v", g.WaitTotal)
	}
	if got := p.Stolen(spuB, spuA, profile.Lock); got != 10*sim.Microsecond {
		t.Fatalf("theft B<-A = %v", got)
	}
	if got := p.Stolen(spuC, spuB, profile.Lock); got != 20*sim.Microsecond {
		t.Fatalf("theft C<-B = %v", got)
	}
	if eng.Now() != 0 {
		t.Fatal("gate perturbed simulated time")
	}
	if err := g.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestGateWindowExpires(t *testing.T) {
	eng := sim.NewEngine()
	g := NewGate(eng, "t", 10*sim.Microsecond)
	g.Acquire(spuA)
	eng.CallAfter(sim.Millisecond, "later", func() { g.Acquire(spuB) })
	eng.Run()
	if g.Contended != 0 {
		t.Fatal("acquisition after the window expired counted as contended")
	}
}

// With Hold zero the gate is pure acquisition counting.
func TestGateZeroHoldPureCounting(t *testing.T) {
	eng := sim.NewEngine()
	g := NewGate(eng, "t", 0)
	for i := 0; i < 5; i++ {
		g.Acquire(spuA)
	}
	if g.Acquisitions != 5 || g.Contended != 0 || g.WaitTotal != 0 {
		t.Fatalf("acq=%d contended=%d wait=%v", g.Acquisitions, g.Contended, g.WaitTotal)
	}
	if err := g.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestGateNilSafe(t *testing.T) {
	var g *Gate
	g.Acquire(spuA) // must not panic
	var s *GateSet
	s.Acquire(spuA)
	if s.Gates() != nil {
		t.Fatal("nil set returned gates")
	}
}

// A shared gate serializes every SPU on one busy window; a private set
// gives each SPU its own, so cross-SPU lock theft is structurally
// impossible.
func TestGateSetSharedVsPrivate(t *testing.T) {
	eng := sim.NewEngine()
	p := profile.New(eng, 0)

	shared := NewGateSet(eng, "s", 10*sim.Microsecond, true)
	shared.SetProfile(p)
	shared.Acquire(spuA)
	shared.Acquire(spuB)
	if _, contended, _ := shared.Totals(); contended != 1 {
		t.Fatalf("shared set contended = %d", contended)
	}
	if got := p.Stolen(spuB, spuA, profile.Lock); got != 10*sim.Microsecond {
		t.Fatalf("shared-set theft = %v", got)
	}

	private := NewGateSet(eng, "p", 10*sim.Microsecond, false)
	private.SetProfile(p)
	private.Acquire(spuA)
	private.Acquire(spuB)
	private.Acquire(spuA) // back-to-back: self-contends on A's own gate
	if acq, _, _ := private.Totals(); acq != 3 {
		t.Fatalf("private set acq = %d", acq)
	}
	// Self-contention is possible, cross-SPU theft is not: one SPU's
	// traffic never lands in another's busy window.
	if p.Stolen(spuA, spuB, profile.Lock)+p.Stolen(spuB, spuA, profile.Lock) != 10*sim.Microsecond {
		t.Fatal("shared-set theft changed; premise broken")
	}
	if p.StolenFrom(spuA, profile.Lock)+p.StolenFrom(spuB, profile.Lock) != 10*sim.Microsecond {
		t.Fatal("private gates produced cross-SPU theft")
	}
	if len(private.Gates()) != 2 {
		t.Fatalf("private gates = %d", len(private.Gates()))
	}
	if shared.Shared() != true || private.Shared() != false {
		t.Fatal("Shared() flag wrong")
	}
}

func TestGateAuditDetectsCorruption(t *testing.T) {
	eng := sim.NewEngine()
	g := NewGate(eng, "t", 10*sim.Microsecond)
	g.Acquire(spuA)
	if err := g.Audit(); err != nil {
		t.Fatal(err)
	}
	g.Acquisitions++
	if err := g.Audit(); err == nil {
		t.Fatal("ledger drift not detected")
	}
	g.Acquisitions--
	g.Contended = g.Acquisitions + 1
	if err := g.Audit(); err == nil {
		t.Fatal("contention above traffic not detected")
	}
}

func TestShardedRoutingAndTotals(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSharded(eng, "t", Mutex, 4)
	if s.Len() != 4 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Shard(5) != s.Locks()[1] {
		t.Fatal("key routing wrong")
	}
	if s.ForSPU(spuB) != s.Locks()[int(spuB)%4] {
		t.Fatal("SPU routing wrong")
	}
	s.Shard(0).Acquire(spuA, false, sim.Millisecond, func() {})
	s.Shard(1).Acquire(spuB, false, sim.Millisecond, func() {})
	eng.Run()
	if acq, _ := s.Totals(); acq != 2 {
		t.Fatalf("totals acq = %d", acq)
	}
}

func TestShardedCoercesZeroShards(t *testing.T) {
	eng := sim.NewEngine()
	if NewSharded(eng, "t", Mutex, 0).Len() != 1 {
		t.Fatal("zero shards should coerce to 1")
	}
}

// The table audits and reports every registered source, late-bound so
// re-striped or lazily created locks are always covered.
func TestTableLateBinding(t *testing.T) {
	eng := sim.NewEngine()
	var locks []*Lock
	tab := NewTable()
	tab.AddLocks(func() []*Lock { return locks })
	set := NewGateSet(eng, "g", sim.Microsecond, false)
	tab.AddGates(set.Gates)

	if len(tab.Locks()) != 0 || len(tab.Gates()) != 0 {
		t.Fatal("table not empty at start")
	}
	locks = append(locks, New(eng, "late", Mutex))
	set.Acquire(spuA)
	if len(tab.Locks()) != 1 || len(tab.Gates()) != 1 {
		t.Fatal("table missed late-bound members")
	}
	if err := tab.Audit(); err != nil {
		t.Fatal(err)
	}
	locks[0].grants++ // corrupt
	if err := tab.Audit(); err == nil {
		t.Fatal("table audit missed a corrupted lock")
	}
}

func TestTableStringElidesIdleLocks(t *testing.T) {
	eng := sim.NewEngine()
	busy := New(eng, "busy", Mutex)
	idle := New(eng, "idle", Mutex)
	busy.Acquire(spuA, false, sim.Millisecond, func() {})
	eng.Run()
	tab := NewTable()
	tab.AddLocks(func() []*Lock { return []*Lock{busy, idle} })
	out := tab.String()
	if !contains(out, "busy") || contains(out, "idle") {
		t.Fatalf("table report wrong:\n%s", out)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

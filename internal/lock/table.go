package lock

import (
	"fmt"
	"strings"

	"perfiso/internal/core"
	"perfiso/internal/profile"
	"perfiso/internal/sim"
	"perfiso/internal/snap"
)

// Sharded spreads one logical lock over n independent shards — the
// §3.4 remediation ("this problem was later fixed by using a finer
// grain locking structure"). Callers hash their protected object to a
// shard; per-SPU layouts route each SPU's traffic to shard spu mod n,
// so at n at or above the SPU count every SPU owns a private shard and
// cross-SPU lock interference vanishes by construction.
type Sharded struct {
	name   string
	shards []*Lock
}

// NewSharded creates n shards of the named lock (n minimum 1).
func NewSharded(eng *sim.Engine, name string, mode Mode, n int) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{name: name}
	for i := 0; i < n; i++ {
		s.shards = append(s.shards, New(eng, fmt.Sprintf("%s.%d", name, i), mode))
	}
	return s
}

// SetProfile wires every shard into the interference matrix.
func (s *Sharded) SetProfile(p *profile.Profiler) {
	for _, l := range s.shards {
		l.SetProfile(p)
	}
}

// Shard returns the shard for a hashed key.
func (s *Sharded) Shard(key uint64) *Lock {
	return s.shards[key%uint64(len(s.shards))]
}

// ForSPU returns the shard an SPU's traffic maps to.
func (s *Sharded) ForSPU(spu core.SPUID) *Lock {
	return s.shards[int(spu)%len(s.shards)]
}

// Locks returns the shards in order.
func (s *Sharded) Locks() []*Lock { return s.shards }

// Len returns the shard count.
func (s *Sharded) Len() int { return len(s.shards) }

// Totals aggregates acquisition and wait across the shards.
func (s *Sharded) Totals() (acquisitions int64, wait sim.Time) {
	for _, l := range s.shards {
		acquisitions += l.Acquisitions
		wait += l.WaitTotal
	}
	return
}

// Table is the kernel's registry of every modelled lock — event-based
// locks and accounting gates — so audits, snapshots, and CLI reports
// see one namespace. Sources are late-bound functions because lock
// populations move after construction: experiments re-stripe the
// page-insert lock, and per-SPU gates appear on first use.
type Table struct {
	locks []func() []*Lock
	gates []func() []*Gate
}

// NewTable creates an empty table.
func NewTable() *Table { return &Table{} }

// AddLocks registers a late-bound source of event-based locks.
func (t *Table) AddLocks(src func() []*Lock) { t.locks = append(t.locks, src) }

// AddGates registers a late-bound source of gates.
func (t *Table) AddGates(src func() []*Gate) { t.gates = append(t.gates, src) }

// Locks returns the live event-based locks, in registration order.
func (t *Table) Locks() []*Lock {
	var out []*Lock
	for _, src := range t.locks {
		out = append(out, src()...)
	}
	return out
}

// Gates returns the live gates, in registration order.
func (t *Table) Gates() []*Gate {
	var out []*Gate
	for _, src := range t.gates {
		out = append(out, src()...)
	}
	return out
}

// Audit runs every registered lock's and gate's conservation laws,
// returning the first failure. It iterates sources in place — the
// periodic invariant audit runs inside the zero-alloc dispatch window,
// so this path must not build combined slices.
func (t *Table) Audit() error {
	for _, src := range t.locks {
		for _, l := range src() {
			if err := l.Audit(); err != nil {
				return err
			}
		}
	}
	for _, src := range t.gates {
		for _, g := range src() {
			if err := g.Audit(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot encodes every lock and gate, in registration order.
func (t *Table) Snapshot(enc *snap.Encoder) {
	for _, l := range t.Locks() {
		l.Snapshot(enc)
	}
	for _, g := range t.Gates() {
		g.Snapshot(enc)
	}
}

// String renders the table as the fixed-width report pisosim prints:
// one row per lock with traffic, contention, and undiluted stall
// stats. Locks with no traffic are elided.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %6s %10s %10s %14s %10s\n",
		"lock", "mode", "acq", "contended", "stall/cont", "mean qlen")
	for _, l := range t.Locks() {
		if l.Acquisitions == 0 && l.QueueLen() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-28s %6s %10d %10d %14s %10.3f\n",
			l.Name(), l.Mode(), l.Acquisitions, l.Contended,
			l.MeanContendedWait(), l.MeanQueueLen())
	}
	for _, g := range t.Gates() {
		if g.Acquisitions == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-28s %6s %10d %10d %14s %10s\n",
			g.Name(), "gate", g.Acquisitions, g.Contended,
			g.MeanContendedWait(), "-")
	}
	return b.String()
}

package lock

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/profile"
	"perfiso/internal/sim"
)

const (
	spuA = core.FirstUserID
	spuB = core.FirstUserID + 1
	spuC = core.FirstUserID + 2
)

// The original fs.Semaphore ran grant callbacks inside its release
// drain loop, so a callback that re-acquired the lock could be granted
// immediately — nesting one grant callback inside another and mutating
// the queue the drain was iterating. The lock's drain snapshots each
// grantable batch and runs callbacks strictly sequentially, so nesting
// depth never exceeds one, even when a callback re-acquires an
// admissible lock at the drain instant.
func TestGrantCallbacksNeverNest(t *testing.T) {
	eng := sim.NewEngine()
	l := New(eng, "t", RW)
	depth, maxDepth := 0, 0
	enter := func() {
		depth++
		if depth > maxDepth {
			maxDepth = depth
		}
	}
	var reGrantAt sim.Time = -1
	l.Acquire(spuA, false, 10*sim.Millisecond, func() {})
	l.Acquire(spuB, true, sim.Millisecond, func() {
		enter()
		// Re-acquire shared while this grant callback runs: the lock is
		// admissible for readers, so the seed semaphore granted (and
		// nested) immediately.
		l.Acquire(spuB, true, sim.Millisecond, func() {
			enter()
			reGrantAt = eng.Now()
			depth--
		})
		depth--
	})
	eng.Run()
	if maxDepth != 1 {
		t.Fatalf("grant callbacks nested to depth %d, want 1", maxDepth)
	}
	// Sequencing must not delay the re-acquire: it is granted in the
	// next drain round at the same instant the outer grant ran.
	if reGrantAt != 10*sim.Millisecond {
		t.Fatalf("re-acquire granted at %v, want 10ms (same instant, next round)", reGrantAt)
	}
}

// The seed semaphore popped its queue with s.queue = s.queue[1:], which
// keeps every dead waiter reachable in the backing array — sustained
// contention grew memory without bound. The compacting dequeue bounds
// the backing array and, once warm, stops allocating entirely.
func TestSustainedContentionBoundedQueueMemory(t *testing.T) {
	eng := sim.NewEngine()
	l := New(eng, "t", Mutex)
	const hold = sim.Millisecond
	// An arrival process matched to the service rate keeps the queue at
	// a steady ~64 waiters for 10k operations.
	for i := 0; i < 64; i++ {
		l.Acquire(spuA, false, hold, func() {})
	}
	n := 0
	tick := eng.Every(hold, "feed", func() {
		if n++; n <= 10_000 {
			l.Acquire(spuA, false, hold, func() {})
		}
	})
	eng.RunUntil(10_200 * hold)
	tick.Stop()
	eng.Run()
	if l.Acquisitions != 10_064 {
		t.Fatalf("acquisitions = %d", l.Acquisitions)
	}
	if c := cap(l.queue); c > 256 {
		t.Fatalf("queue backing array grew to %d for a ~64-deep queue", c)
	}
}

func TestDrainAllocFreeOnceWarm(t *testing.T) {
	eng := sim.NewEngine()
	l := New(eng, "t", Mutex)
	fn := func() {}
	// Warm the queue, batch scratch, per-SPU ledgers, and event pool.
	for i := 0; i < 64; i++ {
		l.Acquire(spuA, false, sim.Millisecond, fn)
	}
	eng.Run()
	if avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			l.Acquire(spuA, false, sim.Millisecond, fn)
		}
		eng.Run()
	}); avg != 0 {
		t.Fatalf("contended lock steady state allocates %v per window, want 0", avg)
	}
}

// MeanWait averages queueing delay over all acquisitions, so heavy
// uncontended traffic hides real stalls; MeanContendedWait reports the
// §3.4 "additional stall time" undiluted.
func TestMeanContendedWaitUndiluted(t *testing.T) {
	eng := sim.NewEngine()
	l := New(eng, "t", Mutex)
	l.Acquire(spuA, false, 100*sim.Millisecond, func() {})
	l.Acquire(spuB, false, sim.Millisecond, func() {}) // stalls 100 ms
	eng.Run()
	// 999 free grants spaced out after the contention clears.
	for i := 0; i < 999; i++ {
		l.Acquire(spuA, false, 0, func() {})
		eng.Run()
	}
	if l.MeanContendedWait() != 100*sim.Millisecond {
		t.Fatalf("MeanContendedWait = %v, want the full 100ms stall", l.MeanContendedWait())
	}
	if l.MeanWait() > 110*sim.Microsecond {
		t.Fatalf("MeanWait = %v; dilution gone? test premise broken", l.MeanWait())
	}
}

// All readers queued behind a writer are granted in one batch at the
// writer's release instant.
func TestReaderBatchBehindWriter(t *testing.T) {
	eng := sim.NewEngine()
	l := New(eng, "t", RW)
	l.Acquire(spuA, false, 10*sim.Millisecond, func() {})
	var grants []sim.Time
	for i := 0; i < 5; i++ {
		l.Acquire(spuB, true, sim.Millisecond, func() { grants = append(grants, eng.Now()) })
	}
	eng.Run()
	if len(grants) != 5 {
		t.Fatalf("granted %d readers", len(grants))
	}
	for i, g := range grants {
		if g != 10*sim.Millisecond {
			t.Fatalf("reader %d granted at %v, want batched at 10ms", i, g)
		}
	}
}

// A queued writer is FIFO-protected from later readers: the reader
// stream behind it cannot leapfrog, so the writer is granted as soon as
// the pre-existing readers release.
func TestWriterNotStarvedByReaderStream(t *testing.T) {
	eng := sim.NewEngine()
	l := New(eng, "t", RW)
	l.Acquire(spuA, true, 10*sim.Millisecond, func() {})
	var writerAt sim.Time = -1
	l.Acquire(spuB, false, sim.Millisecond, func() { writerAt = eng.Now() })
	// Readers keep arriving every 2 ms while the writer is queued.
	for i := 0; i < 20; i++ {
		eng.CallAfter(sim.Time(i)*2*sim.Millisecond, "reader", func() {
			l.Acquire(spuA, true, sim.Millisecond, func() {})
		})
	}
	eng.Run()
	if writerAt != 10*sim.Millisecond {
		t.Fatalf("writer granted at %v, want 10ms (no reader leapfrogging)", writerAt)
	}
}

// Zero-hold acquisitions release at the grant instant, both on the fast
// path and through the queue.
func TestZeroHoldAcquisitions(t *testing.T) {
	eng := sim.NewEngine()
	l := New(eng, "t", Mutex)
	l.Acquire(spuA, false, 0, func() {})
	l.Acquire(spuB, false, 10*sim.Millisecond, func() {})
	l.Acquire(spuA, false, 0, func() {})
	eng.Run()
	if r, w := l.Holders(); r != 0 || w {
		t.Fatalf("holders after quiesce: readers=%d writer=%t", r, w)
	}
	if l.QueueLen() != 0 {
		t.Fatal("queue not drained")
	}
	if err := l.Audit(); err != nil {
		t.Fatal(err)
	}
}

// Cross-SPU queueing delay lands in the interference matrix as
// Lock-resource theft blamed on the holder at enqueue time; same-SPU
// delay is self-interference and is dropped.
func TestContendedWaitFeedsInterferenceMatrix(t *testing.T) {
	eng := sim.NewEngine()
	p := profile.New(eng, 0)
	l := New(eng, "t", Mutex)
	l.SetProfile(p)
	l.Acquire(spuA, false, 10*sim.Millisecond, func() {})
	l.Acquire(spuB, false, sim.Millisecond, func() {}) // victim of A
	l.Acquire(spuA, false, sim.Millisecond, func() {}) // self-wait, dropped
	eng.Run()
	if got := p.Stolen(spuB, spuA, profile.Lock); got != 10*sim.Millisecond {
		t.Fatalf("lock theft B<-A = %v, want 10ms", got)
	}
	if got := p.StolenFrom(spuA, profile.Lock); got != 0 {
		t.Fatalf("self-interference charged: %v", got)
	}
}

func TestPerSPULedgersAndAudit(t *testing.T) {
	eng := sim.NewEngine()
	l := New(eng, "t", RW)
	l.Acquire(spuA, true, 5*sim.Millisecond, func() {})
	l.Acquire(spuB, true, 5*sim.Millisecond, func() {})
	l.Acquire(spuC, false, sim.Millisecond, func() {})
	eng.Run()
	if l.AcquisitionsBySPU(spuA) != 1 || l.AcquisitionsBySPU(spuB) != 1 || l.AcquisitionsBySPU(spuC) != 1 {
		t.Fatal("per-SPU acquisition ledger wrong")
	}
	if l.WaitBySPU(spuC) != 5*sim.Millisecond {
		t.Fatalf("writer waited %v behind the readers, want 5ms", l.WaitBySPU(spuC))
	}
	if l.HoldBySPU(spuA) != 5*sim.Millisecond {
		t.Fatalf("hold ledger = %v", l.HoldBySPU(spuA))
	}
	if err := l.Audit(); err != nil {
		t.Fatal(err)
	}
}

// The audit laws actually fire: corrupt each conserved quantity and the
// matching law reports it.
func TestAuditDetectsCorruption(t *testing.T) {
	mk := func() *Lock {
		eng := sim.NewEngine()
		l := New(eng, "t", RW)
		l.Acquire(spuA, true, sim.Millisecond, func() {})
		eng.Run()
		return l
	}
	cases := []struct {
		name    string
		corrupt func(l *Lock)
	}{
		{"holder accounting", func(l *Lock) { l.grants++ }},
		{"reader ledger", func(l *Lock) { l.readerSPUs = append(l.readerSPUs, spuB) }},
		{"contended bracket", func(l *Lock) { l.Contended = l.Acquisitions + 5 }},
		{"exclusion", func(l *Lock) {
			l.writer, l.readers = true, 1
			l.readerSPUs = []core.SPUID{spuA}
			l.grants += 2
		}},
		{"queue on unheld lock", func(l *Lock) { l.queue = append(l.queue, waiter{spu: spuB}) }},
		{"revocability", func(l *Lock) {
			l.writer = true
			l.grants++
			l.releaseDue = -1
		}},
		{"ledger conservation", func(l *Lock) { l.WaitTotal += sim.Second }},
		{"contended wait ceiling", func(l *Lock) { l.ContendedWait = l.WaitTotal + 1 }},
	}
	for _, c := range cases {
		l := mk()
		if err := l.Audit(); err != nil {
			t.Fatalf("%s: clean lock failed audit: %v", c.name, err)
		}
		c.corrupt(l)
		if err := l.Audit(); err == nil {
			t.Fatalf("%s: corruption not detected", c.name)
		}
	}
}

func TestMutexModeIgnoresShared(t *testing.T) {
	eng := sim.NewEngine()
	l := New(eng, "t", Mutex)
	var grants []sim.Time
	for i := 0; i < 2; i++ {
		l.Acquire(spuA, true, 10*sim.Millisecond, func() { grants = append(grants, eng.Now()) })
	}
	eng.Run()
	if grants[1] != 10*sim.Millisecond {
		t.Fatalf("mutex admitted concurrent shared holders: %v", grants)
	}
}

func TestQueueStats(t *testing.T) {
	eng := sim.NewEngine()
	l := New(eng, "t", Mutex)
	for i := 0; i < 4; i++ {
		l.Acquire(spuA, false, 10*sim.Millisecond, func() {})
	}
	if l.QueueLen() != 3 {
		t.Fatalf("queue len = %d", l.QueueLen())
	}
	eng.Run()
	if l.MaxQueueLen() != 3 {
		t.Fatalf("max queue len = %d", l.MaxQueueLen())
	}
	if l.MeanQueueLen() <= 0 {
		t.Fatal("time-weighted mean queue length not tracked")
	}
}

package mem

import (
	"strings"
	"testing"

	"perfiso/internal/core"
)

func TestKindString(t *testing.T) {
	if Anon.String() != "anon" || Cache.String() != "cache" || Kernel.String() != "kernel" {
		t.Fatal("kind names")
	}
}

func TestReleaseIdempotent(t *testing.T) {
	_, _, m, us := rig(1, core.ShareIdle, 10)
	p := m.Allocate(us[0].ID(), Anon, nil)
	m.Release(p)
	if m.UsedPages() != 0 {
		t.Fatal("Release did not free")
	}
	m.Release(p) // second release is a no-op, not a panic
	if m.UsedPages() != 0 {
		t.Fatal("double Release corrupted state")
	}
}

func TestPressuredFlag(t *testing.T) {
	_, _, m, us := rig(2, core.ShareNone, 20) // 10 pages each
	o := &testOwner{}
	for i := 0; i < 10; i++ {
		p := m.Allocate(us[0].ID(), Anon, o)
		m.SetPinned(p, true)
	}
	if m.Pressured(us[0].ID()) {
		t.Fatal("pressure before any denial")
	}
	m.Allocate(us[0].ID(), Anon, o) // denied
	if !m.Pressured(us[0].ID()) {
		t.Fatal("denial did not set pressure")
	}
	m.PolicyTick()
	if m.Pressured(us[0].ID()) {
		t.Fatal("policy tick did not clear pressure")
	}
}

func TestAuditCleanState(t *testing.T) {
	_, _, m, us := rig(2, core.ShareIdle, 100)
	o := &testOwner{}
	var pages []*Page
	for i := 0; i < 30; i++ {
		pages = append(pages, m.Allocate(us[i%2].ID(), Anon, o))
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
	for _, p := range pages[:10] {
		m.Free(p)
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestAuditDetectsCorruption(t *testing.T) {
	_, spus, m, us := rig(1, core.ShareIdle, 100)
	m.Allocate(us[0].ID(), Anon, nil)
	// Corrupt the books: charge without a page.
	spus.Get(us[0].ID()).Charge(core.Memory, 5)
	err := m.Audit()
	if err == nil {
		t.Fatal("audit missed a phantom charge")
	}
	if !strings.Contains(err.Error(), "mem audit") {
		t.Fatalf("error %v lacks context", err)
	}
}

func TestAuditDetectsUnderCharge(t *testing.T) {
	_, spus, m, us := rig(1, core.ShareIdle, 100)
	m.Allocate(us[0].ID(), Anon, nil)
	m.Allocate(us[0].ID(), Anon, nil)
	spus.Get(us[0].ID()).Charge(core.Memory, -1) // lost a charge
	if m.Audit() == nil {
		t.Fatal("audit missed a missing charge")
	}
}

// Exercise the global-fallback reclaim branch: memory exhausted by the
// kernel SPU (which has no allowed limit), waiters from user SPUs.
func TestGlobalFallbackReclaim(t *testing.T) {
	_, _, m, us := rig(1, core.ShareAll, 50)
	o := &testOwner{}
	for i := 0; i < 50; i++ {
		m.Allocate(core.KernelID, Kernel, o)
	}
	var got *Page
	m.Request(us[0].ID(), Anon, o, func(p *Page) { got = p })
	if got == nil {
		t.Fatal("global fallback did not reclaim a kernel page for the waiter")
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
}

// hasLoans edge: ShareNone SPUs never count as borrowers.
func TestHasLoansIgnoresShareNone(t *testing.T) {
	_, _, m, us := rig(1, core.ShareNone, 100)
	us[0].SetEntitled(core.Memory, 10)
	// Raise allowed above entitled directly (simulating stale state).
	us[0].SetAllowed(core.Memory, 20)
	if m.hasLoans() {
		t.Fatal("ShareNone SPU counted as borrower")
	}
}

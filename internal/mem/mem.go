// Package mem implements the physical memory manager with per-SPU
// isolation and sharing (§3.2 of the paper).
//
// Every page frame is charged to an SPU. An SPU may not use more frames
// than its allowed level; a request beyond the limit is denied and the
// requester waits while the reclaim path evicts pages (writing dirty ones
// to disk through a kernel-supplied pageout function). A sharing policy
// periodically redistributes idle pages — the total free pages less a
// Reserve Threshold (8 % of memory, the value IRIX uses to decide it is
// low on memory) — to SPUs under memory pressure by raising their allowed
// levels, and revokes the loans when the owners need the pages back.
//
// Pages accessed by more than one SPU are re-tagged to the shared SPU,
// and kernel pages to the kernel SPU; only the remaining frames are
// divided among user SPUs (§2.2), which the policy tick re-evaluates.
package mem

import (
	"fmt"

	"perfiso/internal/control"
	"perfiso/internal/core"
	"perfiso/internal/lock"
	"perfiso/internal/metrics"
	"perfiso/internal/sim"
	"perfiso/internal/stats"
	"perfiso/internal/trace"
)

// PageSize is the simulated page size in bytes.
const PageSize = 4096

// SectorsPerPage is how many 512-byte disk sectors one page occupies.
const SectorsPerPage = PageSize / 512

// DefaultReserve is the Reserve Threshold fraction: 8 % of total memory,
// the value the paper chose because IRIX uses it to decide it is running
// low on memory (§3.2).
const DefaultReserve = 0.08

// Kind classifies what a page frame is used for.
type Kind int

const (
	// Anon is process anonymous memory (heap, stack, data).
	Anon Kind = iota
	// Cache is file buffer-cache or file meta-data memory; the paper
	// charges these to the SPU that caused them (§3.2).
	Cache
	// Kernel is kernel code/data, always charged to the kernel SPU.
	Kernel
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Anon:
		return "anon"
	case Cache:
		return "cache"
	default:
		return "kernel"
	}
}

// Owner is the object a page belongs to (a process resident set or a
// buffer-cache entry). The manager calls Evicted when it reclaims the
// page; the owner must forget the page and fault it back in later if
// needed.
type Owner interface {
	PageEvicted(p *Page)
}

// Page is one physical page frame in use.
type Page struct {
	SPU     core.SPUID
	Kind    Kind
	LastUse sim.Time
	Owner   Owner

	dirty    bool
	pinned   bool // never evicted while pinned (e.g. in-flight disk IO)
	evicting bool
	seq      uint64 // allocation sequence; LRU tie-break after LastUse
	index    int    // position in Manager.pages, -1 when free
	spuIdx   int    // position in the owning SPU's page list
}

// Dirty reports whether the page needs write-back before reuse. The flag
// is set through Manager.MarkDirty / SetDirty so the manager's per-SPU
// dirty counters stay exact.
func (p *Page) Dirty() bool { return p.dirty }

// Pinned reports whether the page is exempt from eviction (e.g. its
// frame is the target of in-flight disk IO). Set through
// Manager.SetPinned.
func (p *Page) Pinned() bool { return p.pinned }

// PageoutFunc writes a dirty page's contents to backing store and calls
// done when the write completes, with ok=false if the write failed (a
// degraded disk); the manager retries failed pageouts with backoff. The
// kernel wires this to the right disk; tests may complete synchronously.
type PageoutFunc func(p *Page, done func(ok bool))

// waiter is a pending allocation that could not be satisfied.
type waiter struct {
	spu   core.SPUID
	kind  Kind
	owner Owner
	fn    func(*Page)
}

// Stats aggregates memory-manager statistics.
type Stats struct {
	Allocations    int64
	Denials        int64 // allocation attempts denied (limit or no memory)
	Evictions      int64
	DirtyWrites    int64
	PageoutRetries int64 // failed pageout writes retried with backoff
	PageoutClamped int64 // pageout retries throttled to the slow lane (budget spent)
	Retags         int64 // pages re-tagged to the shared SPU
	FreePages      stats.TimeWeighted
	WaitQueueLen   stats.TimeWeighted
}

// Manager is the physical memory manager for one machine.
type Manager struct {
	eng   *sim.Engine
	spus  *core.Manager
	total int // total page frames

	reserve float64 // fraction of total kept free (Reserve Threshold)
	pageout PageoutFunc

	pages    []*Page   // frames currently in use
	bySPU    [][]*Page // the same frames partitioned by owning SPU
	pinnedN  []int     // per-SPU pinned-page counts (index = SPUID)
	dirtyN   []int     // per-SPU dirty-page counts
	pseq     uint64    // allocation sequence for LRU tie-breaking
	inFlight int       // frames being evicted (still counted as used)
	waiters  []waiter
	pressure []bool // SPUs that hit their limit since last policy tick (index = SPUID)

	// prevAllowed is redivide's per-tick scratch, reused so the policy
	// tick stays allocation-free.
	prevAllowed []float64

	reclaiming bool // reentrancy guards: eviction frees pages, which
	serving    bool // serves waiters, which may allocate and deny again

	Stat Stats
	// Trace, when non-nil, records evictions and policy decisions.
	Trace *trace.Tracer
	// Metrics, when non-nil, receives per-SPU reclaim, dirty-write, and
	// pageout-retry counters. Nil costs nothing.
	Metrics *metrics.Registry
	// Retry bounds the failed-pageout resubmission loop (zero fields
	// take control.DefaultRetryPolicy): exponential backoff while the
	// budget lasts, slow-lane cadence after.
	Retry control.RetryPolicy
	// AuditHook, when non-nil, runs after loan revocations, policy
	// ticks, and fault-driven frame-count changes so the invariant
	// auditor can check frame conservation at every sharing boundary.
	// The hook must only read manager state.
	AuditHook func(reason string)

	// FrameLock, when non-nil, is the accounting-only model of the
	// frame-pool lock a real kernel takes around allocation and free:
	// one shared gate is the coarse global free-list lock, per-SPU
	// gates model per-SPU pools. It records serialization (and
	// cross-SPU lock theft, under a shared gate) without perturbing
	// timing. Nil costs one branch per pool operation.
	FrameLock *lock.GateSet
}

// NewManager creates a memory manager with the given number of page
// frames. reserve <= 0 selects DefaultReserve.
func NewManager(eng *sim.Engine, spus *core.Manager, totalPages int, reserve float64) *Manager {
	if totalPages <= 0 {
		panic(fmt.Sprintf("mem: totalPages = %d", totalPages))
	}
	if reserve <= 0 {
		reserve = DefaultReserve
	}
	m := &Manager{
		eng:     eng,
		spus:    spus,
		total:   totalPages,
		reserve: reserve,
	}
	m.Stat.FreePages.Set(eng.Now(), float64(totalPages))
	return m
}

// SetPageout installs the dirty-page write-back function.
func (m *Manager) SetPageout(fn PageoutFunc) { m.pageout = fn }

// TotalPages returns the configured number of frames.
func (m *Manager) TotalPages() int { return m.total }

// UsedPages returns the number of frames in use (including frames whose
// eviction write-back is still in flight).
func (m *Manager) UsedPages() int { return len(m.pages) + m.inFlight }

// FreePages returns the number of frames immediately available.
func (m *Manager) FreePages() int { return m.total - m.UsedPages() }

// ReservePages returns the Reserve Threshold in pages.
func (m *Manager) ReservePages() int { return int(m.reserve * float64(m.total)) }

// RemoveFrames takes n frames out of service (fault injection: failed
// DIMMs, or a pressure spike from outside the model). The free count
// may go negative; the pager immediately evicts to rebalance the books,
// and allocations are denied until it succeeds. The caller should
// re-divide entitlements afterwards (kernel.Rebalance does).
func (m *Manager) RemoveFrames(n int) {
	if n <= 0 {
		return
	}
	if n >= m.total {
		n = m.total - 1 // never remove the whole machine
	}
	m.total -= n
	m.Stat.FreePages.Set(m.eng.Now(), float64(m.FreePages()))
	m.kickReclaim()
	m.auditBoundary("remove-frames")
}

// AddFrames returns n frames to service, waking any queued waiters.
func (m *Manager) AddFrames(n int) {
	if n <= 0 {
		return
	}
	m.total += n
	m.Stat.FreePages.Set(m.eng.Now(), float64(m.FreePages()))
	m.serveWaiters()
	m.auditBoundary("add-frames")
}

// DivideAmongSPUs recomputes user SPUs' entitled/allowed memory from the
// frames not consumed by the kernel and shared SPUs (§2.2, §3.2). The
// kernel calls this at boot and from the policy tick.
func (m *Manager) DivideAmongSPUs() {
	overhead := int(m.spus.Kernel().Used(core.Memory) + m.spus.Shared().Used(core.Memory))
	avail := m.total - overhead
	if avail < 0 {
		avail = 0
	}
	m.spus.DivideIntegral(core.Memory, avail)
}

// Allocate tries to allocate one frame for the SPU. It returns nil when
// the SPU is at its allowed limit or the machine is out of frames; in
// that case the caller should use Request to wait.
func (m *Manager) Allocate(spu core.SPUID, kind Kind, owner Owner) *Page {
	m.FrameLock.Acquire(spu)
	s := m.spus.Get(spu)
	if kind == Kernel {
		s = m.spus.Kernel()
	}
	if m.FreePages() <= 0 || !s.CanUse(core.Memory, 1) {
		m.Stat.Denials++
		if spu.IsUser() {
			m.pressure[m.slot(spu)] = true
		}
		m.kickReclaim()
		return nil
	}
	p := &Page{SPU: s.ID(), Kind: kind, LastUse: m.eng.Now(), Owner: owner, seq: m.pseq, index: len(m.pages)}
	m.pseq++
	m.pages = append(m.pages, p)
	m.linkSPU(p)
	s.Charge(core.Memory, 1)
	m.Stat.Allocations++
	m.Stat.FreePages.Set(m.eng.Now(), float64(m.FreePages()))
	return p
}

// Request allocates a frame, delivering it through fn. If no frame is
// available now, the request queues and fn runs later, when reclaim or a
// loan makes a frame available. Waiters are served FIFO.
func (m *Manager) Request(spu core.SPUID, kind Kind, owner Owner, fn func(*Page)) {
	if p := m.Allocate(spu, kind, owner); p != nil {
		fn(p)
		return
	}
	m.waiters = append(m.waiters, waiter{spu: spu, kind: kind, owner: owner, fn: fn})
	m.Stat.WaitQueueLen.Set(m.eng.Now(), float64(len(m.waiters)))
	// Now that the waiter is visible, run the pager so replacement or
	// revocation can free a frame for it.
	m.kickReclaim()
	m.serveWaiters()
}

// Release frees a frame if it is still held, and is a no-op if the
// frame was already freed or is mid-eviction. Process exit uses this:
// freeing one page can wake waiters whose allocations trigger reclaim,
// which may concurrently take other pages of the same exiting process.
func (m *Manager) Release(p *Page) {
	if p.index < 0 {
		return
	}
	m.Free(p)
}

// Free releases a frame back to the pool.
func (m *Manager) Free(p *Page) {
	if p.index < 0 {
		panic("mem: double free")
	}
	m.FrameLock.Acquire(p.SPU)
	m.unlink(p)
	m.spus.Get(p.SPU).Charge(core.Memory, -1)
	m.Stat.FreePages.Set(m.eng.Now(), float64(m.FreePages()))
	m.serveWaiters()
}

// unlink removes the page from the in-use list and its SPU's list.
func (m *Manager) unlink(p *Page) {
	last := len(m.pages) - 1
	i := p.index
	m.pages[i] = m.pages[last]
	m.pages[i].index = i
	m.pages = m.pages[:last]
	p.index = -1
	m.unlinkSPU(p)
}

// slot returns the per-SPU array index for the SPU, growing the arrays
// on first sight of a new id.
func (m *Manager) slot(id core.SPUID) int {
	i := int(id)
	for len(m.bySPU) <= i {
		m.bySPU = append(m.bySPU, nil)
		m.pinnedN = append(m.pinnedN, 0)
		m.dirtyN = append(m.dirtyN, 0)
		m.pressure = append(m.pressure, false)
	}
	return i
}

// linkSPU adds the page to its SPU's list, keeping the incremental
// per-SPU counters exact. The counters (and the lists) cover linked
// pages only: a frame mid-eviction is unlinked and tracked by inFlight.
func (m *Manager) linkSPU(p *Page) {
	i := m.slot(p.SPU)
	p.spuIdx = len(m.bySPU[i])
	m.bySPU[i] = append(m.bySPU[i], p)
	if p.dirty {
		m.dirtyN[i]++
	}
	if p.pinned {
		m.pinnedN[i]++
	}
}

// unlinkSPU removes the page from its SPU's list (swap-remove).
func (m *Manager) unlinkSPU(p *Page) {
	i := m.slot(p.SPU)
	l := m.bySPU[i]
	last := len(l) - 1
	l[p.spuIdx] = l[last]
	l[p.spuIdx].spuIdx = p.spuIdx
	l[last] = nil
	m.bySPU[i] = l[:last]
	p.spuIdx = -1
	if p.dirty {
		m.dirtyN[i]--
	}
	if p.pinned {
		m.pinnedN[i]--
	}
}

// Touch records a use of the page by the given SPU at the current time.
// A user page touched by a second user SPU is re-tagged to the shared
// SPU, so its cost is borne by everyone (§3.2).
func (m *Manager) Touch(p *Page, by core.SPUID) {
	p.LastUse = m.eng.Now()
	if p.index < 0 || !by.IsUser() || !p.SPU.IsUser() || p.SPU == by {
		return
	}
	m.spus.Get(p.SPU).Charge(core.Memory, -1)
	m.spus.Shared().Charge(core.Memory, 1)
	m.unlinkSPU(p)
	p.SPU = core.SharedID
	m.linkSPU(p)
	m.Stat.Retags++
}

// MarkDirty flags the page as needing write-back before reuse.
func (m *Manager) MarkDirty(p *Page) { m.SetDirty(p, true) }

// SetDirty sets or clears the page's dirty flag, keeping the per-SPU
// dirty counters exact.
func (m *Manager) SetDirty(p *Page, v bool) {
	if p.dirty == v {
		return
	}
	p.dirty = v
	if p.index >= 0 {
		if v {
			m.dirtyN[m.slot(p.SPU)]++
		} else {
			m.dirtyN[m.slot(p.SPU)]--
		}
	}
}

// SetPinned pins or unpins the page. A pinned page is never evicted —
// in-flight disk IO targets its frame.
func (m *Manager) SetPinned(p *Page, v bool) {
	if p.pinned == v {
		return
	}
	p.pinned = v
	if p.index >= 0 {
		if v {
			m.pinnedN[m.slot(p.SPU)]++
		} else {
			m.pinnedN[m.slot(p.SPU)]--
		}
	}
}

// Culprit identifies the SPU to blame when victim stalls waiting for
// frames, for the profiler's interference matrix. Under ShareAll no
// per-SPU limits exist, so the biggest frame holder other than the
// victim is in the way; under the isolating policies only an SPU using
// more than its entitlement (frames on loan that reclaim must claw
// back) can be blamed. If nobody qualifies the stall is self-inflicted
// and the victim itself is returned, which the profiler treats as
// no-theft. Deterministic: Users() iterates in creation order and ties
// keep the first maximum.
func (m *Manager) Culprit(victim core.SPUID) core.SPUID {
	shareAll := m.spus.Get(victim).Policy() == core.ShareAll
	best := victim
	var bestScore float64
	for _, u := range m.spus.Users() {
		if u.ID() == victim {
			continue
		}
		score := u.Used(core.Memory)
		if !shareAll {
			score -= u.Entitled(core.Memory)
		}
		if score > bestScore {
			best, bestScore = u.ID(), score
		}
	}
	return best
}

// Waiters returns the number of queued allocation requests.
func (m *Manager) Waiters() int { return len(m.waiters) }

// Pressured reports whether the SPU has hit its memory limit since the
// last policy tick.
func (m *Manager) Pressured(spu core.SPUID) bool {
	return int(spu) < len(m.pressure) && m.pressure[spu]
}

// Audit verifies the manager's internal consistency the slow, exhaustive
// way: page-list and per-SPU-list linkage, agreement between the scan
// and the incremental counters the fast path trusts, frame conservation,
// and charge/ownership agreement. It returns a descriptive error on the
// first violation. Intended for tests, the stress harness, and the final
// sweep; it is O(pages). The per-tick sweep uses auditFast.
func (m *Manager) Audit() error {
	for i, p := range m.pages {
		if p.index != i {
			return fmt.Errorf("mem audit: page at slot %d has index %d", i, p.index)
		}
	}
	for id, l := range m.bySPU {
		for i, p := range l {
			if p.spuIdx != i {
				return fmt.Errorf("mem audit: spu%d page at slot %d has spuIdx %d", id, i, p.spuIdx)
			}
			if int(p.SPU) != id {
				return fmt.Errorf("mem audit: spu%d list holds a page owned by spu%d", id, p.SPU)
			}
		}
	}
	counts := make(map[core.SPUID]int)
	pinned := make(map[core.SPUID]int)
	dirty := make(map[core.SPUID]int)
	listed := 0
	for _, p := range m.pages {
		counts[p.SPU]++
		if p.pinned {
			pinned[p.SPU]++
		}
		if p.dirty {
			dirty[p.SPU]++
		}
	}
	for id := range m.bySPU {
		sid := core.SPUID(id)
		listed += len(m.bySPU[id])
		if got := len(m.bySPU[id]); got != counts[sid] {
			return fmt.Errorf("mem audit: spu%d list holds %d pages, scan found %d", id, got, counts[sid])
		}
		if m.pinnedN[id] != pinned[sid] {
			return fmt.Errorf("mem audit: spu%d pinned counter %d, scan found %d", id, m.pinnedN[id], pinned[sid])
		}
		if m.dirtyN[id] != dirty[sid] {
			return fmt.Errorf("mem audit: spu%d dirty counter %d, scan found %d", id, m.dirtyN[id], dirty[sid])
		}
	}
	if listed != len(m.pages) {
		return fmt.Errorf("mem audit: SPU lists hold %d pages, in-use list %d", listed, len(m.pages))
	}
	return m.auditFast()
}

// auditFast checks frame conservation and charge/ownership agreement
// from the incrementally-maintained per-SPU lists and counters — O(#SPUs),
// no scan, no allocation. Audit cross-checks those structures against a
// full scan, so tests and the final sweep would catch counter drift.
func (m *Manager) auditFast() error {
	if got := len(m.pages) + m.inFlight; got+m.FreePages() != m.total {
		return fmt.Errorf("mem audit: used %d + free %d != total %d", got, m.FreePages(), m.total)
	}
	// In-flight evictions keep their SPU charge until write-back ends,
	// so per-SPU charges may exceed the owned-page count by at most the
	// total in-flight frames.
	var charged float64
	slack := m.inFlight
	for _, s := range m.spus.All() {
		u := s.Used(core.Memory)
		charged += u
		owned := 0
		if i := int(s.ID()); i < len(m.bySPU) {
			owned = len(m.bySPU[i])
		}
		if int(u) < owned {
			return fmt.Errorf("mem audit: SPU %d charged %.0f but owns %d pages", s.ID(), u, owned)
		}
		if int(u) > owned+slack {
			return fmt.Errorf("mem audit: SPU %d charged %.0f, owns %d (+%d in flight)",
				s.ID(), u, owned, slack)
		}
	}
	if int(charged) != len(m.pages)+m.inFlight {
		return fmt.Errorf("mem audit: total charges %.0f != %d frames in use",
			charged, len(m.pages)+m.inFlight)
	}
	return nil
}

// serveWaiters retries queued allocation requests in FIFO order,
// stopping at the first that still cannot be satisfied (to preserve
// ordering within and across SPUs).
func (m *Manager) serveWaiters() {
	if m.serving {
		return
	}
	m.serving = true
	defer func() { m.serving = false }()
	for len(m.waiters) > 0 {
		w := m.waiters[0]
		p := m.Allocate(w.spu, w.kind, w.owner)
		if p == nil {
			// Head-of-line waiter is stuck; try to find any other waiter
			// from a different SPU that can proceed, so one throttled SPU
			// does not block the whole machine.
			served := false
			for i := 1; i < len(m.waiters); i++ {
				if m.waiters[i].spu == w.spu {
					continue
				}
				if p2 := m.Allocate(m.waiters[i].spu, m.waiters[i].kind, m.waiters[i].owner); p2 != nil {
					fn := m.waiters[i].fn
					m.waiters = append(m.waiters[:i], m.waiters[i+1:]...)
					m.Stat.WaitQueueLen.Set(m.eng.Now(), float64(len(m.waiters)))
					fn(p2)
					served = true
					break
				}
			}
			if !served {
				return
			}
			continue
		}
		m.waiters = m.waiters[1:]
		m.Stat.WaitQueueLen.Set(m.eng.Now(), float64(len(m.waiters)))
		w.fn(p)
	}
}

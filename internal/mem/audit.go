package mem

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/snap"
)

// AuditInvariants extends the fast conservation checks with the
// memory-isolation invariant of §3.2: a user SPU that is not in
// unconstrained ShareAll mode never holds more frames than its allowed
// level, beyond the frames it cannot release yet — eviction write-backs
// still in flight and pinned pages (in-flight disk IO). The whole check
// runs off the incrementally-maintained per-SPU lists and counters, so
// it is O(#SPUs) and allocation-free — cheap enough for every tick and
// sharing boundary. AuditDeep adds the O(pages) scan that proves those
// incremental structures exact.
func (m *Manager) AuditInvariants() error {
	if err := m.auditFast(); err != nil {
		return err
	}
	return m.auditIsolation()
}

// AuditDeep is AuditInvariants on top of the exhaustive O(pages) Audit
// scan — the final sweep and the stress harness use it to prove the
// incremental counters never drifted from ground truth.
func (m *Manager) AuditDeep() error {
	if err := m.Audit(); err != nil {
		return err
	}
	return m.auditIsolation()
}

func (m *Manager) auditIsolation() error {
	for _, s := range m.spus.Users() {
		if s.Policy() == core.ShareAll {
			continue
		}
		pinned := 0
		if i := int(s.ID()); i < len(m.pinnedN) {
			pinned = m.pinnedN[i]
		}
		slack := float64(m.inFlight + pinned)
		if over := s.Used(core.Memory) - s.Allowed(core.Memory) - slack; over > 0.5 {
			return fmt.Errorf("mem audit: spu%d uses %.0f frames, above its allowed %.0f (+%.0f unreleasable)",
				s.ID(), s.Used(core.Memory), s.Allowed(core.Memory), slack)
		}
	}
	return nil
}

// Snapshot writes the manager's state for checkpoint comparison: frame
// totals, counters, and per-SPU owned/dirty/pinned page counts.
func (m *Manager) Snapshot(enc *snap.Encoder) {
	enc.Section("mem")
	enc.Int("total", int64(m.total))
	enc.Int("in_use", int64(len(m.pages)))
	enc.Int("in_flight", int64(m.inFlight))
	enc.Int("waiters", int64(len(m.waiters)))
	enc.Int("allocations", m.Stat.Allocations)
	enc.Int("denials", m.Stat.Denials)
	enc.Int("evictions", m.Stat.Evictions)
	enc.Int("dirty_writes", m.Stat.DirtyWrites)
	enc.Int("pageout_retries", m.Stat.PageoutRetries)
	enc.Int("retags", m.Stat.Retags)
	owned := make(map[int]int64)
	dirty := make(map[int]int64)
	pinned := make(map[int]int64)
	for _, p := range m.pages {
		owned[int(p.SPU)]++
		if p.dirty {
			dirty[int(p.SPU)]++
		}
		if p.pinned {
			pinned[int(p.SPU)]++
		}
	}
	enc.SortedInts("owned_spu", owned)
	enc.SortedInts("dirty_spu", dirty)
	enc.SortedInts("pinned_spu", pinned)
}

// auditBoundary invokes the audit hook, if installed, at a sharing
// boundary: a loan revocation, a policy adjustment, or a frame-count
// change from fault injection.
func (m *Manager) auditBoundary(reason string) {
	if m.AuditHook != nil {
		m.AuditHook(reason)
	}
}

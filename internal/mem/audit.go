package mem

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/snap"
)

// AuditInvariants extends Audit with the memory-isolation invariant of
// §3.2: a user SPU that is not in unconstrained ShareAll mode never
// holds more frames than its allowed level, beyond the frames it cannot
// release yet — eviction write-backs still in flight and pinned pages
// (in-flight disk IO). Frame conservation and charge/ownership
// agreement come from Audit.
func (m *Manager) AuditInvariants() error {
	if err := m.Audit(); err != nil {
		return err
	}
	pinned := make(map[core.SPUID]int)
	for _, p := range m.pages {
		if p.Pinned {
			pinned[p.SPU]++
		}
	}
	for _, s := range m.spus.Users() {
		if s.Policy() == core.ShareAll {
			continue
		}
		slack := float64(m.inFlight + pinned[s.ID()])
		if over := s.Used(core.Memory) - s.Allowed(core.Memory) - slack; over > 0.5 {
			return fmt.Errorf("mem audit: spu%d uses %.0f frames, above its allowed %.0f (+%.0f unreleasable)",
				s.ID(), s.Used(core.Memory), s.Allowed(core.Memory), slack)
		}
	}
	return nil
}

// Snapshot writes the manager's state for checkpoint comparison: frame
// totals, counters, and per-SPU owned/dirty/pinned page counts.
func (m *Manager) Snapshot(enc *snap.Encoder) {
	enc.Section("mem")
	enc.Int("total", int64(m.total))
	enc.Int("in_use", int64(len(m.pages)))
	enc.Int("in_flight", int64(m.inFlight))
	enc.Int("waiters", int64(len(m.waiters)))
	enc.Int("allocations", m.Stat.Allocations)
	enc.Int("denials", m.Stat.Denials)
	enc.Int("evictions", m.Stat.Evictions)
	enc.Int("dirty_writes", m.Stat.DirtyWrites)
	enc.Int("pageout_retries", m.Stat.PageoutRetries)
	enc.Int("retags", m.Stat.Retags)
	owned := make(map[int]int64)
	dirty := make(map[int]int64)
	pinned := make(map[int]int64)
	for _, p := range m.pages {
		owned[int(p.SPU)]++
		if p.Dirty {
			dirty[int(p.SPU)]++
		}
		if p.Pinned {
			pinned[int(p.SPU)]++
		}
	}
	enc.SortedInts("owned_spu", owned)
	enc.SortedInts("dirty_spu", dirty)
	enc.SortedInts("pinned_spu", pinned)
}

// auditBoundary invokes the audit hook, if installed, at a sharing
// boundary: a loan revocation, a policy adjustment, or a frame-count
// change from fault injection.
func (m *Manager) auditBoundary(reason string) {
	if m.AuditHook != nil {
		m.AuditHook(reason)
	}
}

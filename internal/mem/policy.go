package mem

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/trace"
)

// DefaultPolicyPeriod is how often the kernel runs the memory sharing
// policy. The paper checks SPU page usage "periodically"; 100 ms is fine
// grained enough to track the workloads' phase changes.
const DefaultPolicyPeriod = 100 // milliseconds; the kernel owns the ticker

// PolicyTick runs one round of the §3.2 sharing policy:
//
//   - Re-divide the frames left over by the kernel and shared SPUs among
//     user SPUs as their entitlements, preserving outstanding loans
//     (loans are temporary but persist until revoked).
//   - Revoke loans when the free pool has been eaten below the Reserve
//     Threshold or an SPU below its entitlement is under pressure: the
//     borrowers' allowed levels drop back toward their entitlements and
//     the reclaim path evicts the excess (writing back dirty pages —
//     the revocation cost the reserve exists to hide).
//   - Lend idle resources: free pages above the Reserve Threshold are
//     split equally among ShareIdle SPUs under memory pressure, raising
//     their allowed levels.
//
// SPUs with the ShareNone policy are never lent anything; ShareAll SPUs
// ignore limits entirely, so the tick is a no-op for them.
func (m *Manager) PolicyTick() {
	m.redivide()

	// Revocation triggers: the reserve has been consumed, or an SPU that
	// is under its entitlement was denied memory since the last tick.
	deficit := m.ReservePages() - m.FreePages()
	lenderPressure := false
	for id, hit := range m.pressure {
		if !hit {
			continue
		}
		s := m.spus.Get(core.SPUID(id))
		if s.Used(core.Memory) < s.Entitled(core.Memory) {
			lenderPressure = true
		}
	}
	if deficit > 0 && m.hasLoans() {
		m.revokeLoans(deficit)
	} else if lenderPressure {
		m.revokeLoans(m.ReservePages())
	}

	// Lending: split the free pages above the reserve among the needy.
	var needy []*core.SPU
	for _, s := range m.spus.ActiveUsers() {
		if s.Policy() != core.ShareIdle {
			continue
		}
		atLimit := s.Used(core.Memory) >= s.Allowed(core.Memory)-1
		if m.Pressured(s.ID()) || atLimit {
			needy = append(needy, s)
		}
	}
	excess := m.FreePages() - m.ReservePages()
	if excess > 0 && len(needy) > 0 {
		share := excess / len(needy)
		rem := excess % len(needy)
		for i, s := range needy {
			give := share
			if i < rem {
				give++
			}
			if give > 0 {
				s.SetAllowed(core.Memory, s.Allowed(core.Memory)+float64(give))
				if m.Trace != nil {
					m.Trace.Emitf(trace.Policy, fmt.Sprintf("spu%d", s.ID()), "lend",
						"%d pages (allowed now %.0f)", give, s.Allowed(core.Memory))
				}
			}
		}
	}

	for id := range m.pressure {
		m.pressure[id] = false
	}

	// Enforce the adjusted limits and unblock anyone who can proceed.
	m.kickReclaim()
	m.serveWaiters()
	m.auditBoundary("mempolicy")
}

// redivide recomputes entitlements from the frames not used by the
// kernel and shared SPUs, preserving each SPU's outstanding loan (its
// allowed level never drops below the new entitlement, and keeps any
// excess it had been granted).
func (m *Manager) redivide() {
	users := m.spus.ActiveUsers()
	if cap(m.prevAllowed) < len(users) {
		m.prevAllowed = make([]float64, len(users))
	}
	prevAllowed := m.prevAllowed[:len(users)]
	for i, s := range users {
		prevAllowed[i] = s.Allowed(core.Memory)
	}
	m.DivideAmongSPUs()
	for i, s := range users {
		if prevAllowed[i] > s.Allowed(core.Memory) && s.Policy() == core.ShareIdle {
			s.SetAllowed(core.Memory, prevAllowed[i])
		}
	}
}

// hasLoans reports whether any ShareIdle SPU currently holds an allowed
// level above its entitlement.
func (m *Manager) hasLoans() bool {
	for _, s := range m.spus.Users() {
		if s.Policy() == core.ShareIdle && s.Allowed(core.Memory) > s.Entitled(core.Memory) {
			return true
		}
	}
	return false
}

package mem

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/metrics"
	"perfiso/internal/trace"
)

// kickReclaim runs the pager: it enforces allowed limits (revocation),
// performs page replacement for SPUs thrashing against their own limit,
// and falls back to global LRU reclaim when the machine itself is out of
// frames. It is triggered by allocation denials and by the policy tick.
func (m *Manager) kickReclaim() {
	if m.reclaiming {
		return
	}
	m.reclaiming = true
	defer func() { m.reclaiming = false }()

	// 1. Revocation: any user SPU holding more than its allowed level
	// must give the excess back (§2.3). This happens when the sharing
	// policy lowers a borrower's allowed limit.
	for _, s := range m.spus.Users() {
		if s.Policy() == core.ShareAll {
			continue
		}
		over := int(s.Used(core.Memory) - s.Allowed(core.Memory))
		for i := 0; i < over; i++ {
			if !m.evictFromSPU(s.ID()) {
				break
			}
		}
	}

	// 2. If the free pool is exhausted and SPUs below their entitlement
	// are waiting, revoke loans from borrowers first.
	if m.FreePages() <= 0 && m.waitersUnderEntitled() {
		m.revokeLoans(len(m.waiters))
	}

	// 3. Page replacement: a waiter blocked by its own SPU's limit gets
	// one of that SPU's own pages evicted so it can proceed — the
	// within-SPU thrashing a too-small share produces.
	for _, w := range m.waiters {
		s := m.spus.Get(w.spu)
		if s.Policy() == core.ShareAll {
			continue
		}
		if s.Used(core.Memory) >= s.Allowed(core.Memory) && s.Used(core.Memory) > 0 {
			m.evictFromSPU(s.ID())
		}
	}

	// 4. Global fallback: machine out of frames but waiters remain
	// (unconstrained SMP sharing, or shared/kernel growth). Evict the
	// least-recently-used pages regardless of owner.
	guard := len(m.waiters)
	for m.FreePages() <= 0 && len(m.waiters) > 0 && guard > 0 {
		if !m.evictAny() {
			break
		}
		guard--
	}

	// 5. Frame loss (RemoveFrames drove the free count negative): evict
	// until the books balance, waiters or not. Each eviction frees a
	// frame now (clean) or when its write-back lands (dirty), so one
	// pass of deficit evictions suffices — looping on FreePages() would
	// spin on in-flight dirty pages.
	if deficit := -m.FreePages(); deficit > 0 {
		for i := 0; i < deficit; i++ {
			if !m.evictAny() {
				break
			}
		}
	}
}

// waitersUnderEntitled reports whether any queued waiter belongs to an
// SPU using less than its entitlement — the signal that loaned resources
// must come back.
func (m *Manager) waitersUnderEntitled() bool {
	for _, w := range m.waiters {
		if !w.spu.IsUser() {
			continue
		}
		s := m.spus.Get(w.spu)
		if s.Used(core.Memory) < s.Entitled(core.Memory) {
			return true
		}
	}
	return false
}

// revokeLoans lowers borrowers' allowed levels back toward their
// entitlement, most-borrowed first, until roughly needed pages' worth of
// loans have been called in, then evicts the resulting excess.
func (m *Manager) revokeLoans(needed int) {
	type borrower struct {
		s    *core.SPU
		over int
	}
	var bs []borrower
	for _, s := range m.spus.Users() {
		if s.Policy() != core.ShareIdle {
			continue
		}
		over := int(s.Used(core.Memory) - s.Entitled(core.Memory))
		if over > 0 && s.Allowed(core.Memory) > s.Entitled(core.Memory) {
			bs = append(bs, borrower{s, over})
		}
	}
	for needed > 0 && len(bs) > 0 {
		// Take from the biggest borrower.
		bi := 0
		for i := range bs {
			if bs[i].over > bs[bi].over {
				bi = i
			}
		}
		b := bs[bi]
		take := needed
		if take > b.over {
			take = b.over
		}
		target := b.s.Allowed(core.Memory) - float64(take)
		if ent := b.s.Entitled(core.Memory); target < ent {
			target = ent
		}
		b.s.SetAllowed(core.Memory, target)
		if m.Trace != nil {
			m.Trace.Emitf(trace.Mem, fmt.Sprintf("spu%d", b.s.ID()), "revoke-loan",
				"%d pages (allowed now %.0f)", take, target)
		}
		needed -= take
		bs = append(bs[:bi], bs[bi+1:]...)
	}
	// Enforce the lowered limits.
	for _, s := range m.spus.Users() {
		over := int(s.Used(core.Memory) - s.Allowed(core.Memory))
		for i := 0; i < over; i++ {
			if !m.evictFromSPU(s.ID()) {
				break
			}
		}
	}
	m.auditBoundary("revoke-loan")
}

// lruBefore orders eviction candidates: least-recently-used first, ties
// broken by allocation order so a scan's winner does not depend on the
// incidental layout of the page list.
func lruBefore(a, b *Page) bool {
	return a.LastUse < b.LastUse || (a.LastUse == b.LastUse && a.seq < b.seq)
}

// scanVictims finds the clean and dirty LRU candidates in one SPU's page
// list, merging with the best found so far (for multi-list scans).
func scanVictims(l []*Page, victim, dirtyVictim *Page) (*Page, *Page) {
	for _, p := range l {
		if p.pinned || p.evicting {
			continue
		}
		if p.dirty {
			if dirtyVictim == nil || lruBefore(p, dirtyVictim) {
				dirtyVictim = p
			}
			continue
		}
		if victim == nil || lruBefore(p, victim) {
			victim = p
		}
	}
	return victim, dirtyVictim
}

// evictFromSPU evicts the least-recently-used unpinned page owned by the
// SPU — an O(pages of that SPU) scan of its own list rather than the
// whole machine's.
func (m *Manager) evictFromSPU(spu core.SPUID) bool {
	if int(spu) >= len(m.bySPU) {
		return false
	}
	victim, dirtyVictim := scanVictims(m.bySPU[spu], nil, nil)
	return m.evictVictim(victim, dirtyVictim)
}

// evictAny evicts the least-recently-used unpinned page regardless of
// owner, scanning the per-SPU lists in SPU-id order for determinism.
func (m *Manager) evictAny() bool {
	var victim, dirtyVictim *Page
	for _, l := range m.bySPU {
		victim, dirtyVictim = scanVictims(l, victim, dirtyVictim)
	}
	return m.evictVictim(victim, dirtyVictim)
}

// evictVictim evicts the chosen page, preferring the clean candidate
// (which frees instantly) over the dirty one (which must be written back
// first) — the standard pageout-daemon optimization; without it every
// fault under memory pressure pays a full write-back plus a swap-in and
// the machine collapses rather than degrades. It returns false when no
// page qualifies. Dirty write-back goes through the pageout function;
// the frame frees when the write completes — the revocation cost the
// Reserve Threshold hides (§3.2).
func (m *Manager) evictVictim(victim, dirtyVictim *Page) bool {
	if victim == nil {
		victim = dirtyVictim
	}
	if victim == nil {
		return false
	}
	m.Stat.Evictions++
	m.Metrics.Counter(metrics.KeyMemReclaims, victim.SPU).Inc()
	if m.Trace != nil {
		m.Trace.Emitf(trace.Mem, fmt.Sprintf("spu%d", victim.SPU), "evict",
			"%s page, dirty=%v", victim.Kind, victim.dirty)
	}
	if victim.Owner != nil {
		victim.Owner.PageEvicted(victim)
	}
	if victim.dirty && m.pageout != nil {
		m.Stat.DirtyWrites++
		m.Metrics.Counter(metrics.KeyMemDirtyWrites, victim.SPU).Inc()
		victim.evicting = true
		m.unlink(victim)
		m.inFlight++
		// Retry failed write-backs (degraded disk) with exponential
		// backoff under a deadline-aware budget: the frame stays in
		// flight — charged and unusable — until the data really is on
		// stable storage, but once the budget is spent the retries
		// throttle to the slow-lane cadence so a long disk fault cannot
		// turn reclaim into a full-rate retry storm. (The pageout hook
		// itself reroutes swap writes around breaker-open disks.)
		budget := m.Retry.NewBudget()
		var onDone func(ok bool)
		onDone = func(ok bool) {
			if !ok {
				m.Stat.PageoutRetries++
				wait, degraded := budget.Next()
				if degraded {
					m.Stat.PageoutClamped++
					m.Metrics.Counter(metrics.KeyControlClamped, victim.SPU).Inc()
				}
				m.Metrics.Counter(metrics.KeyMemPageoutRetries, victim.SPU).Inc()
				m.Metrics.Counter(metrics.KeyMemBackoffNS, victim.SPU).AddTime(wait)
				if m.Trace != nil {
					m.Trace.Emitf(trace.Mem, fmt.Sprintf("spu%d", victim.SPU), "pageout-retry",
						"write-back failed, retrying in %v", wait)
				}
				m.eng.CallAfter(wait, "mem.pageout-retry", func() { m.pageout(victim, onDone) })
				return
			}
			m.inFlight--
			m.spus.Get(victim.SPU).Charge(core.Memory, -1)
			m.Stat.FreePages.Set(m.eng.Now(), float64(m.FreePages()))
			m.serveWaiters()
		}
		m.pageout(victim, onDone)
		return true
	}
	if victim.dirty {
		m.Stat.DirtyWrites++
		m.Metrics.Counter(metrics.KeyMemDirtyWrites, victim.SPU).Inc()
	}
	m.Free(victim)
	return true
}

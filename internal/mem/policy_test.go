package mem

import (
	"testing"
	"testing/quick"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

func TestPolicyLendsIdlePagesToNeedy(t *testing.T) {
	_, _, m, us := rig(2, core.ShareIdle, 1000) // 500 each, reserve 80
	o := &testOwner{}
	// SPU 0 idle; SPU 1 fills its entitlement and is denied more.
	for i := 0; i < 500; i++ {
		if m.Allocate(us[1].ID(), Anon, o) == nil {
			t.Fatalf("allocation %d failed within entitlement", i)
		}
	}
	if m.Allocate(us[1].ID(), Anon, o) != nil {
		t.Fatal("allocation beyond entitlement succeeded before policy ran")
	}
	m.PolicyTick()
	// Free = 500, reserve = 80: SPU 1 should be lent 420 pages.
	if got := us[1].Allowed(core.Memory); got < 900 {
		t.Fatalf("allowed after lending = %g, want ~920", got)
	}
	if m.Allocate(us[1].ID(), Anon, o) == nil {
		t.Fatal("allocation still denied after loan")
	}
}

func TestPolicyRespectsReserveThreshold(t *testing.T) {
	_, _, m, us := rig(2, core.ShareIdle, 1000)
	o := &testOwner{}
	for i := 0; i < 500; i++ {
		m.Allocate(us[1].ID(), Anon, o)
	}
	m.Allocate(us[1].ID(), Anon, o) // sets pressure
	m.PolicyTick()
	// Fill to the new allowed level.
	for m.Allocate(us[1].ID(), Anon, o) != nil {
	}
	if free := m.FreePages(); free < m.ReservePages() {
		t.Fatalf("lending ate into the reserve: free %d < reserve %d", free, m.ReservePages())
	}
}

func TestPolicyNeverLendsToShareNone(t *testing.T) {
	_, _, m, us := rig(2, core.ShareNone, 1000)
	o := &testOwner{}
	for i := 0; i < 500; i++ {
		m.Allocate(us[1].ID(), Anon, o)
	}
	m.Allocate(us[1].ID(), Anon, o)
	m.PolicyTick()
	if us[1].Allowed(core.Memory) > 500 {
		t.Fatal("fixed-quota SPU received a loan")
	}
}

func TestPolicyRevokesWhenLenderReturns(t *testing.T) {
	eng, _, m, us := rig(2, core.ShareIdle, 1000)
	o := &testOwner{}
	// SPU 1 borrows heavily.
	for i := 0; i < 500; i++ {
		m.Allocate(us[1].ID(), Anon, o)
	}
	m.Allocate(us[1].ID(), Anon, o)
	m.PolicyTick()
	for m.Allocate(us[1].ID(), Anon, o) != nil {
	}
	borrowed := int(us[1].Used(core.Memory)) - 500
	if borrowed <= 0 {
		t.Fatal("setup: no loan happened")
	}
	// Now SPU 0 wants its memory: allocate until denied, then run the
	// policy (as the kernel's tick would).
	allocated := 0
	for i := 0; i < 500; i++ {
		if m.Allocate(us[0].ID(), Anon, o) == nil {
			break
		}
		allocated++
	}
	for round := 0; round < 50 && allocated < 450; round++ {
		eng.RunUntil(eng.Now() + 100*sim.Millisecond)
		m.PolicyTick()
		for allocated < 500 {
			if m.Allocate(us[0].ID(), Anon, o) == nil {
				break
			}
			allocated++
		}
	}
	if allocated < 450 {
		t.Fatalf("lender only got %d of its 500 entitled pages back", allocated)
	}
	if us[1].Allowed(core.Memory) > us[1].Entitled(core.Memory)+float64(m.ReservePages()) {
		t.Fatalf("borrower kept allowed=%g after revocation", us[1].Allowed(core.Memory))
	}
}

func TestPolicyStableWithoutDemandChanges(t *testing.T) {
	// A borrower at steady state must not see its loan revoked and
	// re-granted (thrash) when nothing else changes.
	_, _, m, us := rig(2, core.ShareIdle, 1000)
	o := &testOwner{}
	for i := 0; i < 500; i++ {
		m.Allocate(us[1].ID(), Anon, o)
	}
	m.Allocate(us[1].ID(), Anon, o)
	m.PolicyTick()
	for m.Allocate(us[1].ID(), Anon, o) != nil {
	}
	used := us[1].Used(core.Memory)
	evBefore := m.Stat.Evictions
	for i := 0; i < 10; i++ {
		m.PolicyTick()
	}
	if us[1].Used(core.Memory) < used-1 {
		t.Fatalf("steady-state borrower lost pages: %g -> %g", used, us[1].Used(core.Memory))
	}
	if m.Stat.Evictions != evBefore {
		t.Fatalf("steady-state policy caused %d evictions", m.Stat.Evictions-evBefore)
	}
}

func TestShareAllIgnoresLimitsUntilMemoryExhausted(t *testing.T) {
	_, _, m, us := rig(2, core.ShareAll, 100)
	o := &testOwner{}
	// SMP: one SPU can take nearly everything.
	n := 0
	for m.Allocate(us[0].ID(), Anon, o) != nil {
		n++
	}
	if n != 100 {
		t.Fatalf("SMP SPU allocated %d of 100 frames", n)
	}
	// Global LRU reclaim kicks in for the other SPU's request.
	var got *Page
	m.Request(us[1].ID(), Anon, o, func(p *Page) { got = p })
	if got == nil {
		t.Fatal("global reclaim did not serve the second SPU")
	}
	if len(o.evicted) == 0 {
		t.Fatal("no page was evicted")
	}
}

// Property: accounting is conserved — used frames equal the sum of SPU
// charges, and free+used equals the total, across random alloc/free
// sequences.
func TestPropertyAccountingConserved(t *testing.T) {
	f := func(ops []uint8) bool {
		_, spus, m, us := rig(3, core.ShareIdle, 200)
		o := &testOwner{}
		var live []*Page
		for _, op := range ops {
			switch {
			case op%3 != 0 || len(live) == 0: // allocate
				spu := us[int(op)%3].ID()
				if p := m.Allocate(spu, Anon, o); p != nil {
					live = append(live, p)
				}
			default: // free
				i := int(op) % len(live)
				// Skip pages the pager already evicted behind our back.
				if live[i].index >= 0 {
					m.Free(live[i])
				}
				live = append(live[:i], live[i+1:]...)
			}
			if m.UsedPages()+m.FreePages() != m.TotalPages() {
				return false
			}
			var charged float64
			for _, s := range spus.All() {
				charged += s.Used(core.Memory)
			}
			if int(charged) != m.UsedPages() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

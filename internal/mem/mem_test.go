package mem

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

// testOwner records eviction callbacks.
type testOwner struct {
	evicted []*Page
}

func (o *testOwner) PageEvicted(p *Page) { o.evicted = append(o.evicted, p) }

// rig builds an engine, SPU manager with n equal user SPUs of the given
// policy, and a memory manager with totalPages frames.
func rig(n int, policy core.Policy, totalPages int) (*sim.Engine, *core.Manager, *Manager, []*core.SPU) {
	eng := sim.NewEngine()
	spus := core.NewManager()
	var us []*core.SPU
	for i := 0; i < n; i++ {
		us = append(us, spus.NewSPU("u", 1, policy))
	}
	m := NewManager(eng, spus, totalPages, 0)
	m.DivideAmongSPUs()
	return eng, spus, m, us
}

func TestAllocateChargesSPU(t *testing.T) {
	_, _, m, us := rig(2, core.ShareIdle, 100)
	o := &testOwner{}
	p := m.Allocate(us[0].ID(), Anon, o)
	if p == nil {
		t.Fatal("allocation failed with plenty of memory")
	}
	if us[0].Used(core.Memory) != 1 {
		t.Fatalf("used = %g", us[0].Used(core.Memory))
	}
	if m.UsedPages() != 1 || m.FreePages() != 99 {
		t.Fatalf("used/free = %d/%d", m.UsedPages(), m.FreePages())
	}
	m.Free(p)
	if us[0].Used(core.Memory) != 0 || m.FreePages() != 100 {
		t.Fatal("free did not return the frame")
	}
}

func TestAllocateDeniedAtAllowedLimit(t *testing.T) {
	_, _, m, us := rig(2, core.ShareNone, 100) // 50 pages each
	o := &testOwner{}
	for i := 0; i < 50; i++ {
		if m.Allocate(us[0].ID(), Anon, o) == nil {
			t.Fatalf("allocation %d failed within entitlement", i)
		}
	}
	if m.Allocate(us[0].ID(), Anon, o) != nil {
		t.Fatal("allocation beyond allowed succeeded (isolation broken)")
	}
	if m.Stat.Denials != 1 {
		t.Fatalf("denials = %d", m.Stat.Denials)
	}
	// A blocking request triggers page replacement within the SPU.
	var got *Page
	m.Request(us[0].ID(), Anon, o, func(p *Page) { got = p })
	if got == nil {
		t.Fatal("replacement did not satisfy the blocked request")
	}
	if m.Stat.Evictions == 0 || len(o.evicted) == 0 {
		t.Fatal("no page of the SPU's own was evicted")
	}
	if o.evicted[0].SPU != us[0].ID() {
		t.Fatal("victim came from another SPU (isolation broken)")
	}
}

func TestKernelPagesChargedToKernelSPU(t *testing.T) {
	_, spus, m, us := rig(1, core.ShareIdle, 100)
	p := m.Allocate(us[0].ID(), Kernel, nil)
	if p.SPU != core.KernelID {
		t.Fatalf("kernel page charged to SPU %d", p.SPU)
	}
	if spus.Kernel().Used(core.Memory) != 1 {
		t.Fatal("kernel SPU not charged")
	}
	if us[0].Used(core.Memory) != 0 {
		t.Fatal("user SPU wrongly charged for a kernel page")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	_, _, m, us := rig(1, core.ShareIdle, 10)
	p := m.Allocate(us[0].ID(), Anon, nil)
	m.Free(p)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Free(p)
}

func TestTouchRetagsSharedPages(t *testing.T) {
	_, spus, m, us := rig(2, core.ShareIdle, 100)
	p := m.Allocate(us[0].ID(), Cache, nil)
	m.Touch(p, us[0].ID()) // same SPU: no retag
	if p.SPU != us[0].ID() {
		t.Fatal("self-touch retagged the page")
	}
	m.Touch(p, us[1].ID()) // second SPU: retag to shared (§3.2)
	if p.SPU != core.SharedID {
		t.Fatal("cross-SPU touch did not retag to shared")
	}
	if spus.Shared().Used(core.Memory) != 1 || us[0].Used(core.Memory) != 0 {
		t.Fatal("retag accounting wrong")
	}
	if m.Stat.Retags != 1 {
		t.Fatalf("retags = %d", m.Stat.Retags)
	}
	// Further touches by either SPU leave it shared.
	m.Touch(p, us[0].ID())
	if p.SPU != core.SharedID {
		t.Fatal("shared page lost its tag")
	}
}

func TestTouchUpdatesLastUse(t *testing.T) {
	eng, _, m, us := rig(1, core.ShareIdle, 10)
	p := m.Allocate(us[0].ID(), Anon, nil)
	eng.At(50*sim.Millisecond, "touch", func() { m.Touch(p, us[0].ID()) })
	eng.Run()
	if p.LastUse != 50*sim.Millisecond {
		t.Fatalf("LastUse = %v", p.LastUse)
	}
}

func TestEvictionPrefersLRU(t *testing.T) {
	eng, _, m, us := rig(1, core.ShareNone, 100)
	us[0].SetEntitled(core.Memory, 3)
	us[0].SetAllowed(core.Memory, 3)
	o := &testOwner{}
	p0 := m.Allocate(us[0].ID(), Anon, o)
	p1 := m.Allocate(us[0].ID(), Anon, o)
	p2 := m.Allocate(us[0].ID(), Anon, o)
	// Make p1 the LRU page.
	eng.At(sim.Millisecond, "t", func() { m.Touch(p0, us[0].ID()); m.Touch(p2, us[0].ID()) })
	eng.Run()
	got := make(chan *Page, 1)
	_ = got
	var delivered *Page
	m.Request(us[0].ID(), Anon, o, func(p *Page) { delivered = p })
	if delivered == nil {
		t.Fatal("request not satisfied after eviction")
	}
	if len(o.evicted) != 1 || o.evicted[0] != p1 {
		t.Fatalf("evicted %v, want the LRU page p1", o.evicted)
	}
}

func TestPinnedPagesNotEvicted(t *testing.T) {
	_, _, m, us := rig(1, core.ShareNone, 100)
	us[0].SetEntitled(core.Memory, 2)
	us[0].SetAllowed(core.Memory, 2)
	o := &testOwner{}
	p0 := m.Allocate(us[0].ID(), Anon, o)
	p1 := m.Allocate(us[0].ID(), Anon, o)
	m.SetPinned(p0, true)
	m.SetPinned(p1, true)
	if m.Allocate(us[0].ID(), Anon, o) != nil {
		t.Fatal("allocation should fail: at limit and both pages pinned")
	}
	if len(o.evicted) != 0 {
		t.Fatal("pinned page was evicted")
	}
}

func TestDirtyEvictionGoesThroughPageout(t *testing.T) {
	eng, _, m, us := rig(1, core.ShareNone, 100)
	us[0].SetEntitled(core.Memory, 1)
	us[0].SetAllowed(core.Memory, 1)
	o := &testOwner{}
	p := m.Allocate(us[0].ID(), Anon, o)
	m.MarkDirty(p)
	var wrote []*Page
	m.SetPageout(func(pg *Page, done func(ok bool)) {
		wrote = append(wrote, pg)
		eng.After(10*sim.Millisecond, "writeback", func() { done(true) })
	})
	var delivered *Page
	m.Request(us[0].ID(), Anon, o, func(np *Page) { delivered = np })
	if delivered != nil {
		t.Fatal("request satisfied before write-back completed")
	}
	eng.Run()
	if delivered == nil {
		t.Fatal("request never satisfied after write-back")
	}
	if len(wrote) != 1 || wrote[0] != p {
		t.Fatal("dirty page did not go through pageout")
	}
	if m.Stat.DirtyWrites != 1 {
		t.Fatalf("DirtyWrites = %d", m.Stat.DirtyWrites)
	}
}

func TestRequestQueuesFIFO(t *testing.T) {
	_, _, m, us := rig(1, core.ShareNone, 100)
	us[0].SetEntitled(core.Memory, 1)
	us[0].SetAllowed(core.Memory, 1)
	o := &testOwner{}
	first := m.Allocate(us[0].ID(), Anon, o)
	m.SetPinned(first, true) // block replacement so requests queue
	var order []int
	m.Request(us[0].ID(), Anon, o, func(*Page) { order = append(order, 1) })
	m.Request(us[0].ID(), Anon, o, func(*Page) { order = append(order, 2) })
	if m.Waiters() != 2 {
		t.Fatalf("waiters = %d", m.Waiters())
	}
	// Raise the limit; both waiters should drain in order.
	us[0].SetAllowed(core.Memory, 3)
	m.serveWaiters()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestWaiterFromOtherSPUNotBlockedByStuckHead(t *testing.T) {
	_, _, m, us := rig(2, core.ShareNone, 100) // 50 each
	o := &testOwner{}
	// Fill SPU 0 to its quota with pinned pages: its waiter is stuck.
	for i := 0; i < 50; i++ {
		p := m.Allocate(us[0].ID(), Anon, o)
		m.SetPinned(p, true)
	}
	var got0, got1 bool
	m.Request(us[0].ID(), Anon, o, func(*Page) { got0 = true })
	m.Request(us[1].ID(), Anon, o, func(*Page) { got1 = true })
	// SPU 1 has plenty of quota; serveWaiters must skip the stuck head.
	m.serveWaiters()
	if got0 {
		t.Fatal("stuck waiter somehow served")
	}
	if !got1 {
		t.Fatal("waiter from healthy SPU blocked behind stuck head-of-line")
	}
}

func TestDivideAmongSPUsSubtractsKernelAndShared(t *testing.T) {
	_, spus, m, us := rig(2, core.ShareIdle, 100)
	// Kernel takes 10 pages, shared 6: users divide the remaining 84.
	for i := 0; i < 10; i++ {
		m.Allocate(us[0].ID(), Kernel, nil)
	}
	spus.Shared().Charge(core.Memory, 6)
	m.DivideAmongSPUs()
	if us[0].Entitled(core.Memory) != 42 || us[1].Entitled(core.Memory) != 42 {
		t.Fatalf("entitled = %g, %g", us[0].Entitled(core.Memory), us[1].Entitled(core.Memory))
	}
}

package mem

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

func TestRemoveFramesEvictsToRebalance(t *testing.T) {
	_, _, m, us := rig(1, core.ShareIdle, 100)
	o := &testOwner{}
	var pages []*Page
	for i := 0; i < 90; i++ {
		p := m.Allocate(us[0].ID(), Anon, o)
		if p == nil {
			t.Fatalf("allocation %d failed", i)
		}
		pages = append(pages, p)
	}
	if m.FreePages() != 10 {
		t.Fatalf("free = %d", m.FreePages())
	}

	// Lose 30 frames: 10 free ones vanish, and reclaim must evict 20
	// clean pages to balance the books.
	m.RemoveFrames(30)
	if m.TotalPages() != 70 {
		t.Fatalf("total = %d, want 70", m.TotalPages())
	}
	if m.FreePages() < 0 {
		t.Fatalf("free still negative (%d) after reclaim", m.FreePages())
	}
	if len(o.evicted) != 20 {
		t.Fatalf("evicted %d pages, want 20", len(o.evicted))
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}

	// Frames return: 70 pages survive, so 30 are free again.
	m.AddFrames(30)
	if m.TotalPages() != 100 || m.FreePages() != 30 {
		t.Fatalf("after restore: total %d free %d", m.TotalPages(), m.FreePages())
	}
}

func TestRemoveFramesDeniesUntilReclaimed(t *testing.T) {
	eng, _, m, us := rig(1, core.ShareIdle, 50)
	o := &testOwner{}
	for i := 0; i < 40; i++ {
		p := m.Allocate(us[0].ID(), Anon, o)
		m.MarkDirty(p) // dirty: eviction needs write-back
	}
	var writebacks []func(bool)
	m.SetPageout(func(p *Page, done func(ok bool)) {
		writebacks = append(writebacks, done)
	})
	m.RemoveFrames(20)
	// Free count is negative; every allocation must be denied.
	if p := m.Allocate(us[0].ID(), Anon, o); p != nil {
		t.Fatal("allocation satisfied while frames are owed")
	}
	if len(writebacks) == 0 {
		t.Fatal("no write-backs issued for the deficit")
	}
	for _, done := range writebacks {
		done(true)
	}
	eng.Run()
	if m.FreePages() < 0 {
		t.Fatalf("free = %d after write-backs landed", m.FreePages())
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestPageoutRetriesFailedWriteback(t *testing.T) {
	eng, _, m, us := rig(1, core.ShareNone, 100)
	us[0].SetEntitled(core.Memory, 1)
	us[0].SetAllowed(core.Memory, 1)
	o := &testOwner{}
	p := m.Allocate(us[0].ID(), Anon, o)
	m.MarkDirty(p)

	attempts := 0
	m.SetPageout(func(pg *Page, done func(ok bool)) {
		attempts++
		ok := attempts > 2 // fail twice, then succeed
		eng.CallAfter(sim.Millisecond, "writeback", func() { done(ok) })
	})
	var got *Page
	m.Request(us[0].ID(), Anon, o, func(np *Page) { got = np })
	eng.Run()
	if got == nil {
		t.Fatal("request never satisfied: pageout retry gave up")
	}
	if attempts != 3 {
		t.Fatalf("pageout attempts = %d, want 3", attempts)
	}
	if m.Stat.PageoutRetries != 2 {
		t.Fatalf("PageoutRetries = %d, want 2", m.Stat.PageoutRetries)
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
}

package mem

import (
	"testing"

	"perfiso/internal/core"
)

// BenchmarkAllocateFree measures the uncontended allocation path.
func BenchmarkAllocateFree(b *testing.B) {
	_, _, m, us := rig(1, core.ShareIdle, 1<<16)
	o := &testOwner{}
	for i := 0; i < b.N; i++ {
		p := m.Allocate(us[0].ID(), Anon, o)
		if p == nil {
			b.Fatal("allocation failed")
		}
		m.Free(p)
	}
}

// BenchmarkReplacementChurn measures the reclaim path: an SPU at its
// limit faulting pages in a loop (every request evicts its own LRU).
func BenchmarkReplacementChurn(b *testing.B) {
	_, _, m, us := rig(2, core.ShareNone, 2048) // 1024 per SPU
	o := &testOwner{}
	for i := 0; i < 1024; i++ {
		m.Allocate(us[0].ID(), Anon, o)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := false
		m.Request(us[0].ID(), Anon, o, func(*Page) { got = true })
		if !got {
			b.Fatal("request blocked (pageout path engaged unexpectedly)")
		}
	}
}

// BenchmarkPolicyTick measures the sharing-policy pass over a populated
// machine.
func BenchmarkPolicyTick(b *testing.B) {
	_, _, m, us := rig(8, core.ShareIdle, 1<<14)
	o := &testOwner{}
	for i := range us {
		for j := 0; j < 1000; j++ {
			m.Allocate(us[i].ID(), Anon, o)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PolicyTick()
	}
}

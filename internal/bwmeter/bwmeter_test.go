package bwmeter

import (
	"math"
	"testing"
	"testing/quick"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

func TestMeterHalfLife(t *testing.T) {
	m := NewMeter(500 * sim.Millisecond)
	m.Add(0, 1000)
	if got := m.Get(500 * sim.Millisecond); math.Abs(got-500) > 0.5 {
		t.Fatalf("after one half-life: %g, want ~500", got)
	}
	if got := m.Get(1500 * sim.Millisecond); math.Abs(got-125) > 0.5 {
		t.Fatalf("after three half-lives: %g, want ~125", got)
	}
}

func TestMeterAccumulates(t *testing.T) {
	m := NewMeter(500 * sim.Millisecond)
	m.Add(0, 100)
	m.Add(0, 100)
	if got := m.Get(0); got != 200 {
		t.Fatalf("got %g, want 200", got)
	}
}

func TestMeterSnapsToZero(t *testing.T) {
	m := NewMeter(500 * sim.Millisecond)
	m.Add(0, 1e6)
	if got := m.Get(100 * sim.Second); got != 0 {
		t.Fatalf("long-idle meter = %g, want exactly 0", got)
	}
}

func TestMeterDefaultHalfLife(t *testing.T) {
	if NewMeter(0).HalfLife() != DefaultHalfLife {
		t.Fatal("default half-life not applied")
	}
	if DefaultHalfLife != 500*sim.Millisecond {
		t.Fatal("the paper decays by half every 500 ms")
	}
}

// Property: a meter never goes negative and never exceeds the undecayed
// sum of its charges.
func TestPropertyMeterBounds(t *testing.T) {
	f := func(charges []uint16, gaps []uint16) bool {
		m := NewMeter(500 * sim.Millisecond)
		var now sim.Time
		var total float64
		for i, c := range charges {
			if i < len(gaps) {
				now += sim.Time(gaps[i]) * sim.Millisecond
			}
			m.Add(now, float64(c))
			total += float64(c)
			v := m.Get(now)
			if v < 0 || v > total+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: decay is monotone — reading later never yields more.
func TestPropertyMeterMonotoneDecay(t *testing.T) {
	f := func(amount uint16, d1, d2 uint16) bool {
		m := NewMeter(0)
		m.Add(0, float64(amount))
		t1 := sim.Time(d1) * sim.Millisecond
		t2 := t1 + sim.Time(d2)*sim.Millisecond
		v1 := m.Get(t1)
		v2 := m.Get(t2)
		return v2 <= v1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTableDefaults(t *testing.T) {
	tab := NewTable(0)
	id := core.SPUID(5)
	if tab.Share(id) != 1 {
		t.Fatal("default share should be 1")
	}
	tab.SetShare(id, -3)
	if tab.Share(id) != 1 {
		t.Fatal("non-positive share should coerce to 1")
	}
	if tab.Relative(0, id) != 0 {
		t.Fatal("unknown SPU should read 0 usage")
	}
	if tab.MeanRelative(0, nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestTableRelativeUsesShares(t *testing.T) {
	tab := NewTable(0)
	a, b := core.SPUID(2), core.SPUID(3)
	tab.SetShare(b, 4)
	tab.Charge(0, a, 400)
	tab.Charge(0, b, 400)
	if tab.Relative(0, a) != 400 || tab.Relative(0, b) != 100 {
		t.Fatalf("relative = %g, %g", tab.Relative(0, a), tab.Relative(0, b))
	}
}

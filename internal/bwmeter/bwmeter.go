// Package bwmeter implements the decayed bandwidth-usage accounting of
// §3.3: a rate is approximated by counting units transferred (sectors,
// bytes) and decaying the count with a half-life (500 ms in the paper).
// The disk scheduler and the network-bandwidth extension both build
// their fairness criteria on it.
package bwmeter

import (
	"math"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

// DefaultHalfLife is the paper's decay period: the count halves every
// 500 ms.
const DefaultHalfLife = 500 * sim.Millisecond

// Meter is one SPU's decayed usage count. The paper halves the count
// periodically; we apply the equivalent continuous exponential decay
// lazily at read time, which is deterministic and needs no ticker.
type Meter struct {
	value    float64
	updated  sim.Time
	halfLife sim.Time
}

// NewMeter returns a meter with the given half-life (DefaultHalfLife if
// <= 0).
func NewMeter(halfLife sim.Time) *Meter {
	if halfLife <= 0 {
		halfLife = DefaultHalfLife
	}
	return &Meter{halfLife: halfLife}
}

// HalfLife returns the decay half-life.
func (m *Meter) HalfLife() sim.Time { return m.halfLife }

func (m *Meter) decayTo(now sim.Time) {
	if now <= m.updated {
		return
	}
	dt := float64(now-m.updated) / float64(m.halfLife)
	m.value *= math.Pow(0.5, dt)
	if m.value < 1e-6 {
		m.value = 0
	}
	m.updated = now
}

// Add charges units at time now.
func (m *Meter) Add(now sim.Time, units float64) {
	m.decayTo(now)
	m.value += units
}

// Get returns the decayed count at time now.
func (m *Meter) Get(now sim.Time) float64 {
	m.decayTo(now)
	return m.value
}

// Table tracks decayed usage and share weights per SPU for one device.
type Table struct {
	halfLife sim.Time
	meters   map[core.SPUID]*Meter
	shares   map[core.SPUID]float64
}

// NewTable creates a per-SPU usage table with the given half-life.
func NewTable(halfLife sim.Time) *Table {
	return &Table{
		halfLife: halfLife,
		meters:   make(map[core.SPUID]*Meter),
		shares:   make(map[core.SPUID]float64),
	}
}

func (t *Table) meter(id core.SPUID) *Meter {
	m, ok := t.meters[id]
	if !ok {
		m = NewMeter(t.halfLife)
		t.meters[id] = m
	}
	return m
}

// SetShare records an SPU's bandwidth share weight (non-positive
// weights coerce to 1).
func (t *Table) SetShare(id core.SPUID, w float64) {
	if w <= 0 {
		w = 1
	}
	t.shares[id] = w
}

// Share returns the share weight of an SPU (default 1).
func (t *Table) Share(id core.SPUID) float64 {
	if w, ok := t.shares[id]; ok {
		return w
	}
	return 1
}

// Charge records units transferred for an SPU at time now.
func (t *Table) Charge(now sim.Time, id core.SPUID, units int) {
	t.meter(id).Add(now, float64(units))
}

// Relative returns the SPU's decayed usage divided by its share — the
// quantity the fairness criterion compares ("current count of sectors /
// bandwidth share", §3.3).
func (t *Table) Relative(now sim.Time, id core.SPUID) float64 {
	return t.meter(id).Get(now) / t.Share(id)
}

// MeanRelative returns the average relative usage across the given SPUs.
func (t *Table) MeanRelative(now sim.Time, ids []core.SPUID) float64 {
	if len(ids) == 0 {
		return 0
	}
	var sum float64
	for _, id := range ids {
		sum += t.Relative(now, id)
	}
	return sum / float64(len(ids))
}

package workload

import (
	"fmt"
	"math"

	"perfiso/internal/core"
	"perfiso/internal/fs"
	"perfiso/internal/kernel"
	"perfiso/internal/latency"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
)

// ArrivalPattern names an open-arrival interarrival process. Open
// arrivals are the workload shape that exposes queueing collapse: the
// next request arrives whether or not the previous one finished, so a
// scheme that delays one handler pays for it in every later handler's
// queueing time — exactly the tail-latency concern of §3.1.
type ArrivalPattern int

const (
	// Periodic arrivals come exactly Mean apart (the closed-form
	// baseline, same shape ServerParams generates).
	Periodic ArrivalPattern = iota
	// Poisson arrivals are exponentially distributed with mean Mean —
	// the classic open-system model.
	Poisson
	// Bursty arrivals follow an on-off (interrupted Poisson) process:
	// exponentially distributed on-phases of mean OnMean during which
	// requests arrive BurstFactor times faster than Mean, separated by
	// quiet phases sized closed-loop so the long-run rate stays pinned
	// to one request per Mean.
	Bursty
	// Diurnal arrivals are a Poisson process whose instantaneous rate
	// swings smoothly around 1/Mean — the day/night curve of a real
	// service. Amplitude and period come from DiurnalAmp and
	// DiurnalPeriod; DiurnalPhase offsets tenants against each other so
	// one peaks while another troughs (the load-shift scenario the SLO
	// controller is evaluated under).
	Diurnal
	// TraceDriven arrivals replay an explicit interarrival schedule
	// (Trace), cycling it when Requests exceeds its length — the hook
	// for feeding recorded production arrival traces into the simulator.
	TraceDriven
)

func (p ArrivalPattern) String() string {
	switch p {
	case Periodic:
		return "periodic"
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	case Diurnal:
		return "diurnal"
	case TraceDriven:
		return "trace"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// OpenServerParams shapes an open-arrival service. The interarrival
// schedule is precomputed from Seed at build time, so a given (params,
// seed) pair produces byte-identical arrivals on every run, at any
// harness parallelism, on either event-queue implementation.
type OpenServerParams struct {
	Requests int
	// Mean is the mean interarrival time (the offered load is one
	// request per Mean on average, regardless of Pattern).
	Mean    sim.Time
	Pattern ArrivalPattern
	// OnMean and BurstFactor shape the Bursty pattern; ignored
	// otherwise. Zero values default to BurstFactor=4 and OnMean=
	// 10*Mean. Quiet phases are sized closed-loop (each one repays the
	// rate debt its burst accumulated), so the achieved rate is pinned
	// to one request per Mean at any horizon; OffMean is retained for
	// spec compatibility but no longer consulted.
	OnMean      sim.Time
	OffMean     sim.Time
	BurstFactor float64
	// DiurnalPeriod, DiurnalAmp, and DiurnalPhase shape the Diurnal
	// pattern: the instantaneous arrival rate is
	// (1 + DiurnalAmp*sin(2π(t/DiurnalPeriod + DiurnalPhase)))/Mean.
	// Zero values default to two full cycles over the run's nominal
	// span and amplitude 0.6; DiurnalPhase is a fraction of a cycle in
	// [0, 1).
	DiurnalPeriod sim.Time
	DiurnalAmp    float64
	DiurnalPhase  float64
	// Trace is the TraceDriven gap schedule, cycled as needed.
	Trace []sim.Time
	// Service is the CPU per request; ServiceJitter, when positive, adds
	// uniform [0, ServiceJitter) per-request jitter from the same seed.
	Service       sim.Time
	ServiceJitter sim.Time
	// ReadBytes/DataBytes mirror ServerParams: per-request reads from a
	// per-tenant data file.
	ReadBytes int64
	DataBytes int64
	// Seed seeds the arrival and jitter schedule (a fixed default when
	// zero, so the zero value is still deterministic).
	Seed uint64
	// SLO, when valid, is registered with the tenant's latency tracker:
	// Target fraction of requests within Threshold.
	SLO latency.SLO
}

// DefaultOpenServer returns a light Poisson service: 400 requests at
// one per 25 ms mean, 2 ms of CPU each, with a 99%-within-20ms SLO.
func DefaultOpenServer() OpenServerParams {
	return OpenServerParams{
		Requests: 400,
		Mean:     25 * sim.Millisecond,
		Pattern:  Poisson,
		Service:  2 * sim.Millisecond,
		SLO:      latency.SLO{Threshold: 20 * sim.Millisecond, Target: 0.99},
	}
}

// Gaps returns the request interarrival schedule: Requests gaps, the
// i-th being the wait before arrival i. Pure function of the params.
func (p OpenServerParams) Gaps() []sim.Time {
	seed := p.Seed
	if seed == 0 {
		seed = 0xa22a1
	}
	rng := sim.NewRNG(seed)
	gaps := make([]sim.Time, p.Requests)
	switch p.Pattern {
	case Periodic:
		for i := range gaps {
			gaps[i] = p.Mean
		}
	case Poisson:
		for i := range gaps {
			gaps[i] = rng.Exp(p.Mean)
		}
	case Bursty:
		on, factor := p.OnMean, p.BurstFactor
		if factor <= 1 {
			factor = 4
		}
		if on <= 0 {
			on = 10 * p.Mean
		}
		// Interrupted Poisson: inside an on-phase arrivals come factor
		// times faster than Mean; a draw that overruns the phase carries
		// its remainder across the quiet phase into the next burst.
		//
		// Quiet phases are sized closed-loop rather than drawn from an
		// open-loop exponential: each one repays exactly the rate debt
		// the preceding burst ran up against the one-request-per-Mean
		// schedule. The open-loop calibration (off = on*(factor-1)) was
		// only correct in expectation — its variance let the achieved
		// rate drift several percent from nominal even over thousands of
		// arrivals (the duty-cycle drift the long-horizon regression
		// test pins), which poisoned any experiment comparing offered
		// load across schemes.
		inMean := sim.Time(float64(p.Mean) / factor)
		rem := rng.Exp(on)
		var cum sim.Time // cumulative scheduled interarrival time
		for i := range gaps {
			var gap sim.Time
			draw := rng.Exp(inMean)
			for draw > rem {
				draw -= rem
				gap += rem
				if ideal := sim.Time(i) * p.Mean; ideal > cum+gap {
					gap = ideal - cum
				}
				rem = rng.Exp(on)
			}
			gap += draw
			rem -= draw
			cum += gap
			gaps[i] = gap
		}
	case Diurnal:
		period := p.DiurnalPeriod
		if period <= 0 {
			// Two full day/night cycles over the run's nominal span.
			period = sim.Time(float64(p.Mean) * float64(p.Requests) / 2)
		}
		amp := p.DiurnalAmp
		if amp <= 0 {
			amp = 0.6
		}
		if amp > 0.95 {
			amp = 0.95 // keep the instantaneous rate strictly positive
		}
		// Inhomogeneous Poisson by local rate scaling: each gap is drawn
		// at the instantaneous rate where the previous arrival landed.
		var cum sim.Time
		for i := range gaps {
			phase := 2 * math.Pi * (float64(cum)/float64(period) + p.DiurnalPhase)
			rel := 1 + amp*math.Sin(phase)
			gaps[i] = rng.Exp(sim.Time(float64(p.Mean) / rel))
			cum += gaps[i]
		}
	case TraceDriven:
		if len(p.Trace) == 0 {
			panic("workload: trace-driven arrivals with an empty trace")
		}
		for i := range gaps {
			gaps[i] = p.Trace[i%len(p.Trace)]
		}
	default:
		panic(fmt.Sprintf("workload: unknown arrival pattern %v", p.Pattern))
	}
	return gaps
}

// OpenServer builds an open-arrival service on the SPU: a dispatcher
// that forks one handler per precomputed arrival, with every completed
// request recorded into the kernel's latency registry under the
// service's name (a no-op when latency tracking is off). The returned
// job censors in-flight requests via CensorTail after bounded runs.
func OpenServer(k *kernel.Kernel, spu core.SPUID, name string, p OpenServerParams) *ServerJob {
	if p.Requests <= 0 {
		panic(fmt.Sprintf("workload: open server %q with %d requests", name, p.Requests))
	}
	if p.Mean <= 0 {
		panic(fmt.Sprintf("workload: open server %q with non-positive mean interarrival", name))
	}
	job := &ServerJob{tracker: k.Latency().Tracker(name, spu, p.SLO)}
	var data *fs.File
	if p.ReadBytes > 0 {
		size := p.DataBytes
		if size <= 0 {
			size = 4 << 20
		}
		data = k.AffinityAllocator(spu).NewFile(name+".data", size, fs.Contiguous, 0)
	}
	seed := p.Seed
	if seed == 0 {
		seed = 0xa22a1
	}
	jitter := sim.NewRNG(seed ^ 0x5e41ce) // independent of the arrival stream
	var steps []proc.Step
	for i, gap := range p.Gaps() {
		service := p.Service
		if p.ServiceJitter > 0 {
			service += jitter.Duration(0, p.ServiceJitter)
		}
		var body []proc.Step
		if data != nil {
			off := (int64(i) * p.ReadBytes) % (data.Size - p.ReadBytes)
			body = append(body, proc.Read{File: data, Off: off, N: p.ReadBytes})
		}
		body = append(body, proc.Compute{D: service})
		h := proc.New(k, spu, fmt.Sprintf("%s.req%d", name, i), body)
		job.recordExit(h)
		// Release the admission slot when the handler exits; only
		// admitted handlers ever exit, so the accounting balances.
		prev := h.OnExit
		h.OnExit = func(p *proc.Process) {
			k.RequestDone(spu)
			if prev != nil {
				prev(p)
			}
		}
		job.handlers = append(job.handlers, h)
		steps = append(steps,
			proc.Sleep{D: gap},
			// Admission control gates every arrival: with the SLO
			// controller off (or no cap set) AdmitRequest always says
			// yes; under overload a refused arrival is shed — counted
			// as a bad observation in the tenant's SLO stats, never
			// silently dropped.
			proc.Fork{Child: h, If: func() bool {
				if k.AdmitRequest(spu) {
					return true
				}
				job.shed++
				job.tracker.RecordShed(k.Engine().Now())
				return false
			}},
		)
	}
	steps = append(steps, proc.WaitChildren{})
	job.Root = proc.New(k, spu, name, steps)
	return job
}

// TenantSpec is one tenant of the multi-tenant open-arrival experiment:
// an SPU weight and the open service running on it.
type TenantSpec struct {
	Name   string
	Weight float64
	Server OpenServerParams
}

// TenantSet is the canonical multi-tenant server mix used by the
// open-arrival experiment and the pisosim "tenants" workload: four
// tenants with distinct arrival processes and SLOs — two plain Poisson
// services, one doing per-request disk reads, and one bursty — all
// sized so the machine is busy but not saturated when isolation works.
func TenantSet() []TenantSpec {
	return []TenantSpec{
		{Name: "web", Weight: 1, Server: OpenServerParams{
			Requests: 300, Mean: 25 * sim.Millisecond, Pattern: Poisson,
			Service: 2 * sim.Millisecond, ServiceJitter: sim.Millisecond,
			Seed: 11, SLO: latency.SLO{Threshold: 20 * sim.Millisecond, Target: 0.99},
		}},
		{Name: "api", Weight: 1, Server: OpenServerParams{
			Requests: 400, Mean: 18 * sim.Millisecond, Pattern: Poisson,
			Service: 3 * sim.Millisecond,
			Seed:    22, SLO: latency.SLO{Threshold: 25 * sim.Millisecond, Target: 0.99},
		}},
		{Name: "search", Weight: 1, Server: OpenServerParams{
			Requests: 200, Mean: 40 * sim.Millisecond, Pattern: Poisson,
			Service: 4 * sim.Millisecond, ReadBytes: 64 * 1024, DataBytes: 8 << 20,
			Seed: 33, SLO: latency.SLO{Threshold: 60 * sim.Millisecond, Target: 0.97},
		}},
		{Name: "batchq", Weight: 1, Server: OpenServerParams{
			Requests: 250, Mean: 30 * sim.Millisecond, Pattern: Bursty,
			BurstFactor: 4, Service: 3 * sim.Millisecond,
			Seed: 44, SLO: latency.SLO{Threshold: 40 * sim.Millisecond, Target: 0.95},
		}},
	}
}

// DiurnalTenantSet is the tenant mix for the closed-loop controller
// experiment: three diurnal tenants whose load peaks are phase-shifted
// around the cycle (so at any instant one tenant is near peak while
// another is in its trough — exactly the shape a static split wastes
// and a retuning controller exploits) plus the bursty batch queue.
// Each tenant's peak demand exceeds its static 1/8 share of the Pmake8
// machine, so holding every SLO requires moving entitlement to
// whichever tenant is peaking.
func DiurnalTenantSet() []TenantSpec {
	const period = 18 * sim.Second
	return []TenantSpec{
		{Name: "web", Weight: 1, Server: OpenServerParams{
			Requests: 3000, Mean: 12 * sim.Millisecond, Pattern: Diurnal,
			DiurnalPeriod: period, DiurnalAmp: 0.65, DiurnalPhase: 0,
			Service: 9 * sim.Millisecond, ServiceJitter: sim.Millisecond,
			Seed: 11, SLO: latency.SLO{Threshold: 45 * sim.Millisecond, Target: 0.99},
		}},
		{Name: "api", Weight: 1, Server: OpenServerParams{
			Requests: 3000, Mean: 12 * sim.Millisecond, Pattern: Diurnal,
			DiurnalPeriod: period, DiurnalAmp: 0.65, DiurnalPhase: 0.5,
			Service: 9 * sim.Millisecond,
			Seed:    22, SLO: latency.SLO{Threshold: 45 * sim.Millisecond, Target: 0.99},
		}},
		{Name: "search", Weight: 1, Server: OpenServerParams{
			Requests: 1200, Mean: 30 * sim.Millisecond, Pattern: Diurnal,
			DiurnalPeriod: period, DiurnalAmp: 0.65, DiurnalPhase: 0.25,
			Service: 5 * sim.Millisecond, ReadBytes: 64 * 1024, DataBytes: 8 << 20,
			Seed: 33, SLO: latency.SLO{Threshold: 60 * sim.Millisecond, Target: 0.97},
		}},
		{Name: "batchq", Weight: 1, Server: OpenServerParams{
			Requests: 1400, Mean: 25 * sim.Millisecond, Pattern: Bursty,
			BurstFactor: 4, Service: 4 * sim.Millisecond,
			Seed: 44, SLO: latency.SLO{Threshold: 80 * sim.Millisecond, Target: 0.96},
		}},
	}
}

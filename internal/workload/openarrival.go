package workload

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/fs"
	"perfiso/internal/kernel"
	"perfiso/internal/latency"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
)

// ArrivalPattern names an open-arrival interarrival process. Open
// arrivals are the workload shape that exposes queueing collapse: the
// next request arrives whether or not the previous one finished, so a
// scheme that delays one handler pays for it in every later handler's
// queueing time — exactly the tail-latency concern of §3.1.
type ArrivalPattern int

const (
	// Periodic arrivals come exactly Mean apart (the closed-form
	// baseline, same shape ServerParams generates).
	Periodic ArrivalPattern = iota
	// Poisson arrivals are exponentially distributed with mean Mean —
	// the classic open-system model.
	Poisson
	// Bursty arrivals follow an on-off (interrupted Poisson) process:
	// exponentially distributed on-phases of mean OnMean during which
	// requests arrive BurstFactor times faster than Mean, separated by
	// exponentially distributed quiet phases of mean OffMean.
	Bursty
)

func (p ArrivalPattern) String() string {
	switch p {
	case Periodic:
		return "periodic"
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// OpenServerParams shapes an open-arrival service. The interarrival
// schedule is precomputed from Seed at build time, so a given (params,
// seed) pair produces byte-identical arrivals on every run, at any
// harness parallelism, on either event-queue implementation.
type OpenServerParams struct {
	Requests int
	// Mean is the mean interarrival time (the offered load is one
	// request per Mean on average, regardless of Pattern).
	Mean    sim.Time
	Pattern ArrivalPattern
	// OnMean, OffMean, and BurstFactor shape the Bursty pattern; ignored
	// otherwise. Zero values default to BurstFactor=4, OnMean=10*Mean,
	// and OffMean=(BurstFactor-1)*OnMean — quiet phases sized so the
	// overall rate stays one request per Mean.
	OnMean      sim.Time
	OffMean     sim.Time
	BurstFactor float64
	// Service is the CPU per request; ServiceJitter, when positive, adds
	// uniform [0, ServiceJitter) per-request jitter from the same seed.
	Service       sim.Time
	ServiceJitter sim.Time
	// ReadBytes/DataBytes mirror ServerParams: per-request reads from a
	// per-tenant data file.
	ReadBytes int64
	DataBytes int64
	// Seed seeds the arrival and jitter schedule (a fixed default when
	// zero, so the zero value is still deterministic).
	Seed uint64
	// SLO, when valid, is registered with the tenant's latency tracker:
	// Target fraction of requests within Threshold.
	SLO latency.SLO
}

// DefaultOpenServer returns a light Poisson service: 400 requests at
// one per 25 ms mean, 2 ms of CPU each, with a 99%-within-20ms SLO.
func DefaultOpenServer() OpenServerParams {
	return OpenServerParams{
		Requests: 400,
		Mean:     25 * sim.Millisecond,
		Pattern:  Poisson,
		Service:  2 * sim.Millisecond,
		SLO:      latency.SLO{Threshold: 20 * sim.Millisecond, Target: 0.99},
	}
}

// Gaps returns the request interarrival schedule: Requests gaps, the
// i-th being the wait before arrival i. Pure function of the params.
func (p OpenServerParams) Gaps() []sim.Time {
	seed := p.Seed
	if seed == 0 {
		seed = 0xa22a1
	}
	rng := sim.NewRNG(seed)
	gaps := make([]sim.Time, p.Requests)
	switch p.Pattern {
	case Periodic:
		for i := range gaps {
			gaps[i] = p.Mean
		}
	case Poisson:
		for i := range gaps {
			gaps[i] = rng.Exp(p.Mean)
		}
	case Bursty:
		on, off, factor := p.OnMean, p.OffMean, p.BurstFactor
		if factor <= 1 {
			factor = 4
		}
		if on <= 0 {
			on = 10 * p.Mean
		}
		if off <= 0 {
			// Quiet phases sized so the duty cycle cancels the in-burst
			// speed-up and the overall rate stays one request per Mean.
			off = sim.Time(float64(on) * (factor - 1))
		}
		// Interrupted Poisson: inside an on-phase arrivals come factor
		// times faster than Mean; a draw that overruns the phase carries
		// its remainder across the quiet phase into the next burst.
		inMean := sim.Time(float64(p.Mean) / factor)
		rem := rng.Exp(on)
		for i := range gaps {
			var gap sim.Time
			draw := rng.Exp(inMean)
			for draw > rem {
				draw -= rem
				gap += rem + rng.Exp(off)
				rem = rng.Exp(on)
			}
			gap += draw
			rem -= draw
			gaps[i] = gap
		}
	default:
		panic(fmt.Sprintf("workload: unknown arrival pattern %v", p.Pattern))
	}
	return gaps
}

// OpenServer builds an open-arrival service on the SPU: a dispatcher
// that forks one handler per precomputed arrival, with every completed
// request recorded into the kernel's latency registry under the
// service's name (a no-op when latency tracking is off). The returned
// job censors in-flight requests via CensorTail after bounded runs.
func OpenServer(k *kernel.Kernel, spu core.SPUID, name string, p OpenServerParams) *ServerJob {
	if p.Requests <= 0 {
		panic(fmt.Sprintf("workload: open server %q with %d requests", name, p.Requests))
	}
	if p.Mean <= 0 {
		panic(fmt.Sprintf("workload: open server %q with non-positive mean interarrival", name))
	}
	job := &ServerJob{tracker: k.Latency().Tracker(name, spu, p.SLO)}
	var data *fs.File
	if p.ReadBytes > 0 {
		size := p.DataBytes
		if size <= 0 {
			size = 4 << 20
		}
		data = k.AffinityAllocator(spu).NewFile(name+".data", size, fs.Contiguous, 0)
	}
	seed := p.Seed
	if seed == 0 {
		seed = 0xa22a1
	}
	jitter := sim.NewRNG(seed ^ 0x5e41ce) // independent of the arrival stream
	var steps []proc.Step
	for i, gap := range p.Gaps() {
		service := p.Service
		if p.ServiceJitter > 0 {
			service += jitter.Duration(0, p.ServiceJitter)
		}
		var body []proc.Step
		if data != nil {
			off := (int64(i) * p.ReadBytes) % (data.Size - p.ReadBytes)
			body = append(body, proc.Read{File: data, Off: off, N: p.ReadBytes})
		}
		body = append(body, proc.Compute{D: service})
		h := proc.New(k, spu, fmt.Sprintf("%s.req%d", name, i), body)
		job.recordExit(h)
		job.handlers = append(job.handlers, h)
		steps = append(steps,
			proc.Sleep{D: gap},
			proc.Fork{Child: h},
		)
	}
	steps = append(steps, proc.WaitChildren{})
	job.Root = proc.New(k, spu, name, steps)
	return job
}

// TenantSpec is one tenant of the multi-tenant open-arrival experiment:
// an SPU weight and the open service running on it.
type TenantSpec struct {
	Name   string
	Weight float64
	Server OpenServerParams
}

// TenantSet is the canonical multi-tenant server mix used by the
// open-arrival experiment and the pisosim "tenants" workload: four
// tenants with distinct arrival processes and SLOs — two plain Poisson
// services, one doing per-request disk reads, and one bursty — all
// sized so the machine is busy but not saturated when isolation works.
func TenantSet() []TenantSpec {
	return []TenantSpec{
		{Name: "web", Weight: 1, Server: OpenServerParams{
			Requests: 300, Mean: 25 * sim.Millisecond, Pattern: Poisson,
			Service: 2 * sim.Millisecond, ServiceJitter: sim.Millisecond,
			Seed: 11, SLO: latency.SLO{Threshold: 20 * sim.Millisecond, Target: 0.99},
		}},
		{Name: "api", Weight: 1, Server: OpenServerParams{
			Requests: 400, Mean: 18 * sim.Millisecond, Pattern: Poisson,
			Service: 3 * sim.Millisecond,
			Seed:    22, SLO: latency.SLO{Threshold: 25 * sim.Millisecond, Target: 0.99},
		}},
		{Name: "search", Weight: 1, Server: OpenServerParams{
			Requests: 200, Mean: 40 * sim.Millisecond, Pattern: Poisson,
			Service: 4 * sim.Millisecond, ReadBytes: 64 * 1024, DataBytes: 8 << 20,
			Seed: 33, SLO: latency.SLO{Threshold: 40 * sim.Millisecond, Target: 0.95},
		}},
		{Name: "batchq", Weight: 1, Server: OpenServerParams{
			Requests: 250, Mean: 30 * sim.Millisecond, Pattern: Bursty,
			BurstFactor: 4, Service: 3 * sim.Millisecond,
			Seed: 44, SLO: latency.SLO{Threshold: 60 * sim.Millisecond, Target: 0.95},
		}},
	}
}

// Package workload builds the applications of Table 1 as process
// programs: pmake jobs (parallel compiles mixing CPU, scattered file IO
// and metadata rewrites), large file copies (contiguous streaming IO),
// and the compute-bound scientific/engineering codes Ocean (a
// barrier-synchronized parallel application), Flashlite and VCS.
//
// The binaries themselves are unavailable, so each generator reproduces
// the *resource demand shape* the paper describes — process counts,
// CPU/IO mix, memory footprint, disk request patterns — which is all the
// evaluation depends on.
package workload

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/fs"
	"perfiso/internal/kernel"
	"perfiso/internal/mem"
	"perfiso/internal/proc"
	"perfiso/internal/sched"
	"perfiso/internal/sim"
)

// PmakeParams shapes a pmake job.
type PmakeParams struct {
	// Parallel is the number of concurrent compile processes ("two
	// parallel compiles each" in the Pmake8 workload, four in the
	// memory-isolation workload).
	Parallel int
	// FilesPerCompile is how many source files each compile handles.
	FilesPerCompile int
	// ComputePerFile is the CPU time to compile one file.
	ComputePerFile sim.Time
	// WSSPages is each compile process's anonymous working set.
	WSSPages int
	// SrcBytes / ObjBytes are the source and object file sizes.
	SrcBytes, ObjBytes int64
	// SharedLib, when non-nil, is a file every compile reads at start —
	// the "shared library pages or code" of §2.2 that multiple SPUs
	// touch. Pass the same file to jobs in different SPUs and its cache
	// pages are re-tagged to the shared SPU, whose cost all user SPUs
	// bear.
	SharedLib *fs.File
}

// DefaultPmake returns the Pmake8 shape: two parallel compiles per job,
// with about 1.2 s of CPU per compile and ~1.2 MB of working set each.
func DefaultPmake() PmakeParams {
	return PmakeParams{
		Parallel:        2,
		FilesPerCompile: 8,
		ComputePerFile:  300 * sim.Millisecond,
		WSSPages:        300,
		SrcBytes:        64 * 1024,
		ObjBytes:        32 * 1024,
	}
}

// Pmake builds one pmake job for the SPU: a root that forks Parallel
// compile processes and waits for them. Source files are scattered on
// the SPU's affinity disk (pmake requests "are not all contiguous as
// they access multiple files and have many repeated writes of meta-data
// to a single sector", §4.5).
func Pmake(k *kernel.Kernel, spu core.SPUID, name string, p PmakeParams) *proc.Process {
	if p.Parallel <= 0 {
		panic(fmt.Sprintf("workload: pmake %q with %d compiles", name, p.Parallel))
	}
	al := k.AffinityAllocator(spu)
	steps := make([]proc.Step, 0, p.Parallel+1)
	for i := 0; i < p.Parallel; i++ {
		cname := fmt.Sprintf("%s.cc%d", name, i)
		var body []proc.Step
		if p.SharedLib != nil {
			body = append(body, proc.Read{File: p.SharedLib, Off: 0, N: p.SharedLib.Size})
		}
		body = append(body, proc.Touch{Pages: p.WSSPages})
		for j := 0; j < p.FilesPerCompile; j++ {
			src := al.NewFile(fmt.Sprintf("%s.src%d", cname, j), p.SrcBytes, fs.Scattered, 2)
			obj := al.NewFile(fmt.Sprintf("%s.obj%d", cname, j), p.ObjBytes, fs.Scattered, 2)
			body = append(body,
				proc.Lookup{},
				proc.Read{File: src, Off: 0, N: p.SrcBytes},
				proc.Compute{D: p.ComputePerFile},
				proc.Write{File: obj, Off: 0, N: p.ObjBytes},
				proc.Meta{File: obj},
			)
		}
		child := proc.New(k, spu, cname, body)
		steps = append(steps, proc.Fork{Child: child})
	}
	steps = append(steps, proc.WaitChildren{})
	return proc.New(k, spu, name, steps)
}

// DiskPmake returns the pmake shape used in the §4.5 pmake-copy
// workload on the 2-CPU machine: it makes on the order of the paper's
// "300 requests to the disk", scattered over many small files with
// repeated metadata writes.
func DiskPmake() PmakeParams {
	return PmakeParams{
		Parallel:        2,
		FilesPerCompile: 10,
		ComputePerFile:  800 * sim.Millisecond,
		WSSPages:        250,
		SrcBytes:        64 * 1024,
		ObjBytes:        32 * 1024,
	}
}

// CopyParams shapes a file-copy job.
type CopyParams struct {
	Bytes      int64    // file size
	ChunkBytes int64    // bytes per read/write loop iteration
	ComputePer sim.Time // per-chunk CPU (buffer copy cost)
	DiskIdx    int      // which disk holds both source and destination
}

// DefaultCopy returns the §4.5 large-copy shape: 64 KB chunks with a
// small per-chunk CPU cost.
func DefaultCopy(bytes int64) CopyParams {
	return CopyParams{Bytes: bytes, ChunkBytes: 64 * 1024, ComputePer: 200 * sim.Microsecond}
}

// Copy builds a process that copies a file of p.Bytes: sequential reads
// of the source and delayed writes of the destination, both contiguous
// on the same disk — the §4.5 stream that can lock out other SPUs under
// position-only scheduling.
func Copy(k *kernel.Kernel, spu core.SPUID, name string, p CopyParams) *proc.Process {
	al := k.Allocator(p.DiskIdx)
	src := al.NewFile(name+".src", p.Bytes, fs.Contiguous, 0)
	dst := al.NewFile(name+".dst", p.Bytes, fs.Contiguous, 0)
	var body []proc.Step
	for off := int64(0); off < p.Bytes; off += p.ChunkBytes {
		n := p.ChunkBytes
		if off+n > p.Bytes {
			n = p.Bytes - off
		}
		body = append(body,
			proc.Read{File: src, Off: off, N: n},
			proc.Compute{D: p.ComputePer},
			proc.Write{File: dst, Off: off, N: n},
		)
	}
	return proc.New(k, spu, name, body)
}

// OceanParams shapes the Ocean run.
type OceanParams struct {
	Procs      int      // gang size (four in the paper's workload)
	Iterations int      // barrier-separated phases
	Grain      sim.Time // CPU per process per phase
	// Imbalance is the extra per-phase CPU of process i (i*Imbalance):
	// the load imbalance that makes faster gang members idle at the
	// barrier — and thus exposes CPU-loan revocation latency.
	Imbalance sim.Time
	WSSPages  int // per-process working set
	// GangScheduled co-schedules the workers with the §3.1 [Ous82]
	// extension: all of them run simultaneously or none do.
	GangScheduled bool
}

// DefaultOcean returns the Fig. 5 shape: a 4-process gang with ~3 s of
// CPU per process, barrier-synchronized every 100 ms, with a slight
// load imbalance across the gang.
func DefaultOcean() OceanParams {
	return OceanParams{Procs: 4, Iterations: 30, Grain: 100 * sim.Millisecond,
		Imbalance: 500 * sim.Microsecond, WSSPages: 600}
}

// Ocean builds the gang: a root forks Procs workers that compute and
// meet at a shared barrier each iteration, so the whole gang advances at
// the pace of its slowest member — which is why interference hurts it
// under unconstrained SMP sharing.
func Ocean(k *kernel.Kernel, spu core.SPUID, name string, p OceanParams) *proc.Process {
	b := proc.NewBarrier(p.Procs)
	var steps []proc.Step
	var workers []*proc.Process
	for i := 0; i < p.Procs; i++ {
		grain := p.Grain + sim.Time(i)*p.Imbalance
		body := proc.Seq(
			[]proc.Step{proc.Touch{Pages: p.WSSPages}},
			proc.Loop(p.Iterations, proc.Compute{D: grain}, proc.BarrierStep{B: b}),
		)
		w := proc.New(k, spu, fmt.Sprintf("%s.%d", name, i), body)
		workers = append(workers, w)
		steps = append(steps, proc.Fork{Child: w})
	}
	if p.GangScheduled {
		threads := make([]*sched.Thread, len(workers))
		for i, w := range workers {
			threads[i] = w.Thread()
		}
		k.Scheduler().NewGang(threads...)
	}
	steps = append(steps, proc.WaitChildren{})
	return proc.New(k, spu, name, steps)
}

// ComputeParams shapes a single long-running compute-bound process
// (Flashlite, VCS).
type ComputeParams struct {
	Total    sim.Time // total CPU demand
	Chunk    sim.Time // burst length between (rare) kernel entries
	WSSPages int
	// StartupRead, if non-zero, models the start-up phase's kernel/IO
	// time by reading that many bytes from a private file at launch.
	StartupRead int64
}

// DefaultFlashlite returns the Flashlite shape (~3.5 s of CPU).
func DefaultFlashlite() ComputeParams {
	return ComputeParams{Total: 3500 * sim.Millisecond, Chunk: 100 * sim.Millisecond,
		WSSPages: 400, StartupRead: 256 * 1024}
}

// DefaultVCS returns the VCS shape (~2.5 s of CPU).
func DefaultVCS() ComputeParams {
	return ComputeParams{Total: 2500 * sim.Millisecond, Chunk: 100 * sim.Millisecond,
		WSSPages: 500, StartupRead: 256 * 1024}
}

// ComputeBound builds one compute-bound process: a start-up read ("kernel
// time only at the start-up phase", §4.3), a working set, then pure CPU.
func ComputeBound(k *kernel.Kernel, spu core.SPUID, name string, p ComputeParams) *proc.Process {
	var body []proc.Step
	if p.StartupRead > 0 {
		f := k.AffinityAllocator(spu).NewFile(name+".bin", p.StartupRead, fs.Contiguous, 0)
		body = append(body, proc.Lookup{}, proc.Read{File: f, Off: 0, N: p.StartupRead})
	}
	body = append(body, proc.Touch{Pages: p.WSSPages})
	chunks := int(p.Total / p.Chunk)
	if chunks < 1 {
		chunks = 1
	}
	rem := p.Total - sim.Time(chunks)*p.Chunk
	body = append(body, proc.Loop(chunks, proc.Compute{D: p.Chunk})...)
	if rem > 0 {
		body = append(body, proc.Compute{D: rem})
	}
	return proc.New(k, spu, name, body)
}

// LookupParams shapes a metadata-bound process: a tight loop of
// pathname lookups separated by short compute bursts, with no file IO
// at all. It is the workload that hammers the inode semaphore (§3.4)
// without touching the page cache or the disks, so any cross-SPU
// interference it shows is lock interference and nothing else.
type LookupParams struct {
	// Lookups is the number of pathname lookups the process performs.
	Lookups int
	// Think is the CPU burst between lookups.
	Think sim.Time
}

// DefaultLookupLoop returns the shape the lock-leak experiment uses:
// enough lookups against a 30 ms hold to saturate a shared mutex while
// leaving a private lock idle.
func DefaultLookupLoop() LookupParams {
	return LookupParams{Lookups: 40, Think: 20 * sim.Millisecond}
}

// LookupLoop builds one metadata-bound process for the SPU.
func LookupLoop(k *kernel.Kernel, spu core.SPUID, name string, p LookupParams) *proc.Process {
	return proc.New(k, spu, name, proc.Loop(p.Lookups,
		proc.Lookup{}, proc.Compute{D: p.Think}))
}

// MemPmake returns the pmake shape used by the memory-isolation
// workload: four parallel compiles per job with working sets sized so
// one job fits an SPU's half of the 16 MB machine but two jobs thrash.
func MemPmake() PmakeParams {
	return PmakeParams{
		Parallel:        4,
		FilesPerCompile: 4,
		ComputePerFile:  400 * sim.Millisecond,
		WSSPages:        250,
		SrcBytes:        64 * 1024,
		ObjBytes:        32 * 1024,
	}
}

// SizePages is a helper converting bytes to pages (rounding up).
func SizePages(bytes int64) int {
	return int((bytes + mem.PageSize - 1) / mem.PageSize)
}

package workload

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
)

func TestServerCompletesAllRequests(t *testing.T) {
	k, us := boot(core.PIso, 1)
	p := DefaultServer()
	p.Requests = 50
	job := Server(k, us[0].ID(), "svc", p)
	k.Spawn(job.Root)
	end := k.Run()
	if job.Root.State() != proc.Exited {
		t.Fatal("dispatcher never finished")
	}
	lat := job.Latencies(end)
	if lat.N() != 50 {
		t.Fatalf("completed %d of 50 requests", lat.N())
	}
	// On an idle machine each request takes exactly its service time.
	if got := sim.FromSeconds(lat.Mean()); got != p.Service {
		t.Fatalf("mean latency %v, want %v", got, p.Service)
	}
}

func TestServerWithReads(t *testing.T) {
	k, us := boot(core.PIso, 1)
	p := DefaultServer()
	p.Requests = 20
	p.ReadBytes = 64 * 1024
	job := Server(k, us[0].ID(), "svc", p)
	k.Spawn(job.Root)
	end := k.Run()
	if job.Latencies(end).N() != 20 {
		t.Fatal("requests lost")
	}
	if k.FS().Stat.ReadReqs == 0 {
		t.Fatal("no disk reads despite ReadBytes")
	}
	// First (cold) request pays disk time; warm ones may hit cache.
	if job.MaxLatency(end) <= p.Service {
		t.Fatal("max latency should exceed pure service time (cold read)")
	}
}

func TestServerRejectsZeroRequests(t *testing.T) {
	k, us := boot(core.PIso, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Server(k, us[0].ID(), "bad", ServerParams{})
}

// Response-time isolation: with a batch SPU hammering the machine, the
// interactive SPU's tail latency explodes under SMP, stays bounded
// under PIso, and tightens further with IPI revocation (§3.1).
func TestServerTailLatencyIsolation(t *testing.T) {
	run := func(scheme core.Scheme, ipi bool) sim.Time {
		k, us := bootOpts(scheme, 2, ipi)
		job := Server(k, us[0].ID(), "svc", DefaultServer())
		k.Spawn(job.Root)
		for i := 0; i < 16; i++ {
			k.Spawn(ComputeBound(k, us[1].ID(), "batch", ComputeParams{
				Total: 20 * sim.Second, Chunk: 100 * sim.Millisecond, WSSPages: 20}))
		}
		end := k.Run()
		return job.MaxLatency(end)
	}
	smp := run(core.SMP, false)
	piso := run(core.PIso, false)
	pisoIPI := run(core.PIso, true)
	if float64(piso) > 0.8*float64(smp) {
		t.Errorf("PIso tail %v not clearly below SMP %v", piso, smp)
	}
	if pisoIPI > piso {
		t.Errorf("IPI tail %v worse than tick tail %v", pisoIPI, piso)
	}
	// With IPI revocation a request waits at most its own service time
	// plus scheduling noise — no 10 ms tick delay.
	if pisoIPI > 2*DefaultServer().Service+sim.Millisecond {
		t.Errorf("IPI tail %v too high", pisoIPI)
	}
}

package workload

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/fs"
	"perfiso/internal/kernel"
	"perfiso/internal/latency"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
	"perfiso/internal/stats"
)

// ServerParams shapes an interactive service: a dispatcher that spawns
// one short-lived request handler every Interarrival. Each handler
// optionally reads from the service's data file and then computes for
// Service. Per-request latency is the handler process's response time.
//
// This workload exercises the paper's response-time concern (§3.1): an
// interactive SPU needs its CPUs back *quickly* when a request arrives,
// which is what bounds tail latency — and why the paper suggests IPI
// revocation for "response time performance isolation guarantees".
type ServerParams struct {
	Requests     int
	Interarrival sim.Time
	Service      sim.Time // CPU per request
	ReadBytes    int64    // bytes read from the data file per request (0 = none)
	DataBytes    int64    // data file size (defaults to 4 MB when reads are used)
}

// DefaultServer returns a light interactive service: 200 requests, one
// every 25 ms, 2 ms of CPU each.
func DefaultServer() ServerParams {
	return ServerParams{Requests: 200, Interarrival: 25 * sim.Millisecond, Service: 2 * sim.Millisecond}
}

// ServerJob is a running service: the dispatcher root and the request
// handlers it spawns (populated as the run progresses).
type ServerJob struct {
	Root     *proc.Process
	handlers []*proc.Process
	tracker  *latency.Tracker
	shed     int
}

// Shed returns how many arrivals admission control refused. Shed
// requests never start, so they are excluded from Pending/InFlight
// censoring — their SLO cost is carried by the tracker's shed count.
func (j *ServerJob) Shed() int { return j.shed }

// Completed returns how many request handlers have exited.
func (j *ServerJob) Completed() int {
	n := 0
	for _, h := range j.handlers {
		if h.State() == proc.Exited {
			n++
		}
	}
	return n
}

// InFlight returns how many request handlers have started but not
// exited — requests a horizon-bounded run right-censors.
func (j *ServerJob) InFlight() int {
	n := 0
	for _, h := range j.handlers {
		if h.State() == proc.Running {
			n++
		}
	}
	return n
}

// Pending returns how many request handlers have not started yet
// because the dispatcher never reached their arrival. Shed handlers
// also never start but are counted by Shed, not here.
func (j *ServerJob) Pending() int {
	n := 0
	for _, h := range j.handlers {
		if h.State() == proc.Created {
			n++
		}
	}
	return n - j.shed
}

// Latencies returns a sample of per-request latencies in seconds,
// censored: requests still in flight at now contribute their elapsed
// time (now − start) as a lower bound, so a scheme that strands
// requests cannot report a clean tail. Pass the run's end time (the
// engine clock after Run, or the horizon for a bounded run).
func (j *ServerJob) Latencies(now sim.Time) *stats.Sample {
	var s stats.Sample
	for _, h := range j.handlers {
		switch h.State() {
		case proc.Exited:
			s.AddTime(h.ResponseTime())
		case proc.Running:
			if now > h.Started {
				s.AddTime(now - h.Started)
			}
		}
	}
	return &s
}

// MaxLatency returns the worst request latency, censored the same way
// as Latencies.
func (j *ServerJob) MaxLatency(now sim.Time) sim.Time {
	var max sim.Time
	for _, h := range j.handlers {
		var d sim.Time
		switch h.State() {
		case proc.Exited:
			d = h.ResponseTime()
		case proc.Running:
			d = now - h.Started
		}
		if d > max {
			max = d
		}
	}
	return max
}

// LatencyQuantile returns the q-quantile (0..1) of request latencies,
// e.g. 0.99 for the p99 tail, censored the same way as Latencies.
func (j *ServerJob) LatencyQuantile(now sim.Time, q float64) sim.Time {
	var vs []float64
	for _, h := range j.handlers {
		switch h.State() {
		case proc.Exited:
			vs = append(vs, float64(h.ResponseTime()))
		case proc.Running:
			if now > h.Started {
				vs = append(vs, float64(now-h.Started))
			}
		}
	}
	return sim.Time(stats.Quantile(vs, q))
}

// Tracker returns the job's latency tracker (nil when the kernel's
// latency registry is off).
func (j *ServerJob) Tracker() *latency.Tracker { return j.tracker }

// CensorTail folds every request still in flight at now into the job's
// latency tracker as right-censored lower bounds and returns how many
// there were. Call it once after a bounded run, before exporting.
func (j *ServerJob) CensorTail(now sim.Time) int {
	n := 0
	for _, h := range j.handlers {
		if h.State() == proc.Running && now > h.Started {
			j.tracker.RecordCensored(now, now-h.Started)
			n++
		}
	}
	return n
}

// Server builds the interactive service for the SPU. The dispatcher
// forks a handler per request and waits for all of them at the end.
func Server(k *kernel.Kernel, spu core.SPUID, name string, p ServerParams) *ServerJob {
	if p.Requests <= 0 {
		panic(fmt.Sprintf("workload: server %q with %d requests", name, p.Requests))
	}
	job := &ServerJob{tracker: k.Latency().Tracker(name, spu, latency.SLO{})}
	var data *fs.File
	if p.ReadBytes > 0 {
		size := p.DataBytes
		if size <= 0 {
			size = 4 << 20
		}
		data = k.AffinityAllocator(spu).NewFile(name+".data", size, fs.Contiguous, 0)
	}
	var steps []proc.Step
	for i := 0; i < p.Requests; i++ {
		var body []proc.Step
		if data != nil {
			off := (int64(i) * p.ReadBytes) % (data.Size - p.ReadBytes)
			body = append(body, proc.Read{File: data, Off: off, N: p.ReadBytes})
		}
		body = append(body, proc.Compute{D: p.Service})
		h := proc.New(k, spu, fmt.Sprintf("%s.req%d", name, i), body)
		job.recordExit(h)
		job.handlers = append(job.handlers, h)
		steps = append(steps,
			proc.Sleep{D: p.Interarrival},
			proc.Fork{Child: h},
		)
	}
	steps = append(steps, proc.WaitChildren{})
	job.Root = proc.New(k, spu, name, steps)
	return job
}

// recordExit chains a latency-recording hook onto the handler's exit:
// the completed request's response time lands in the job's tracker at
// the handler's finish time. A nil tracker (latency off) costs one nil
// check per request.
func (j *ServerJob) recordExit(h *proc.Process) {
	prev := h.OnExit
	h.OnExit = func(p *proc.Process) {
		j.tracker.Record(p.Finished, p.ResponseTime())
		if prev != nil {
			prev(p)
		}
	}
}

package workload

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/fs"
	"perfiso/internal/kernel"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
	"perfiso/internal/stats"
)

// ServerParams shapes an interactive service: a dispatcher that spawns
// one short-lived request handler every Interarrival. Each handler
// optionally reads from the service's data file and then computes for
// Service. Per-request latency is the handler process's response time.
//
// This workload exercises the paper's response-time concern (§3.1): an
// interactive SPU needs its CPUs back *quickly* when a request arrives,
// which is what bounds tail latency — and why the paper suggests IPI
// revocation for "response time performance isolation guarantees".
type ServerParams struct {
	Requests     int
	Interarrival sim.Time
	Service      sim.Time // CPU per request
	ReadBytes    int64    // bytes read from the data file per request (0 = none)
	DataBytes    int64    // data file size (defaults to 4 MB when reads are used)
}

// DefaultServer returns a light interactive service: 200 requests, one
// every 25 ms, 2 ms of CPU each.
func DefaultServer() ServerParams {
	return ServerParams{Requests: 200, Interarrival: 25 * sim.Millisecond, Service: 2 * sim.Millisecond}
}

// ServerJob is a running service: the dispatcher root and the request
// handlers it spawns (populated as the run progresses).
type ServerJob struct {
	Root     *proc.Process
	handlers []*proc.Process
}

// Latencies returns a sample of per-request latencies in seconds. Only
// meaningful after the run completes.
func (j *ServerJob) Latencies() *stats.Sample {
	var s stats.Sample
	for _, h := range j.handlers {
		if h.State() == proc.Exited {
			s.AddTime(h.ResponseTime())
		}
	}
	return &s
}

// MaxLatency returns the worst request latency.
func (j *ServerJob) MaxLatency() sim.Time {
	var max sim.Time
	for _, h := range j.handlers {
		if h.State() == proc.Exited && h.ResponseTime() > max {
			max = h.ResponseTime()
		}
	}
	return max
}

// LatencyQuantile returns the q-quantile (0..1) of request latencies,
// e.g. 0.99 for the p99 tail.
func (j *ServerJob) LatencyQuantile(q float64) sim.Time {
	var vs []float64
	for _, h := range j.handlers {
		if h.State() == proc.Exited {
			vs = append(vs, float64(h.ResponseTime()))
		}
	}
	return sim.Time(stats.Quantile(vs, q))
}

// Server builds the interactive service for the SPU. The dispatcher
// forks a handler per request and waits for all of them at the end.
func Server(k *kernel.Kernel, spu core.SPUID, name string, p ServerParams) *ServerJob {
	if p.Requests <= 0 {
		panic(fmt.Sprintf("workload: server %q with %d requests", name, p.Requests))
	}
	job := &ServerJob{}
	var data *fs.File
	if p.ReadBytes > 0 {
		size := p.DataBytes
		if size <= 0 {
			size = 4 << 20
		}
		data = k.AffinityAllocator(spu).NewFile(name+".data", size, fs.Contiguous, 0)
	}
	var steps []proc.Step
	for i := 0; i < p.Requests; i++ {
		var body []proc.Step
		if data != nil {
			off := (int64(i) * p.ReadBytes) % (data.Size - p.ReadBytes)
			body = append(body, proc.Read{File: data, Off: off, N: p.ReadBytes})
		}
		body = append(body, proc.Compute{D: p.Service})
		h := proc.New(k, spu, fmt.Sprintf("%s.req%d", name, i), body)
		job.handlers = append(job.handlers, h)
		steps = append(steps,
			proc.Sleep{D: p.Interarrival},
			proc.Fork{Child: h},
		)
	}
	steps = append(steps, proc.WaitChildren{})
	job.Root = proc.New(k, spu, name, steps)
	return job
}

package workload

import (
	"bytes"
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/kernel"
	"perfiso/internal/latency"
	"perfiso/internal/machine"
	"perfiso/internal/sim"
)

func bootLatency(scheme core.Scheme, nSPU int) (*kernel.Kernel, []*core.SPU) {
	k := kernel.New(machine.Pmake8(), scheme, kernel.Options{LatencyWindow: sim.Second})
	var us []*core.SPU
	for i := 0; i < nSPU; i++ {
		us = append(us, k.NewSPU("u", 1))
	}
	k.Boot()
	return k, us
}

// The arrival schedule is a pure function of the params: same seed,
// same gaps; different seeds, different gaps; and the empirical mean
// tracks the configured mean for every pattern.
func TestOpenArrivalGapsDeterministicAndCalibrated(t *testing.T) {
	for _, pattern := range []ArrivalPattern{Periodic, Poisson, Bursty} {
		p := OpenServerParams{Requests: 4000, Mean: 10 * sim.Millisecond, Pattern: pattern, Seed: 9}
		a, b := p.Gaps(), p.Gaps()
		if len(a) != 4000 {
			t.Fatalf("%v: %d gaps", pattern, len(a))
		}
		var sum sim.Time
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: gap %d differs between identical builds", pattern, i)
			}
			if a[i] < 0 {
				t.Fatalf("%v: negative gap %v", pattern, a[i])
			}
			sum += a[i]
		}
		mean := float64(sum) / 4000
		if mean < 0.8*float64(p.Mean) || mean > 1.2*float64(p.Mean) {
			t.Errorf("%v: empirical mean interarrival %.2fms, want ~10ms",
				pattern, mean/float64(sim.Millisecond))
		}
		p2 := p
		p2.Seed = 10
		if pattern != Periodic && p2.Gaps()[0] == a[0] && p2.Gaps()[1] == a[1] {
			t.Errorf("%v: different seeds produced the same schedule", pattern)
		}
	}
}

// Bursty schedules must actually cluster: the variance of the gaps is
// well above Poisson's (the squared-mean for an exponential).
func TestBurstyArrivalsCluster(t *testing.T) {
	p := OpenServerParams{Requests: 4000, Mean: 10 * sim.Millisecond, Pattern: Bursty, Seed: 3}
	gaps := p.Gaps()
	var sum, sq float64
	for _, g := range gaps {
		sum += float64(g)
		sq += float64(g) * float64(g)
	}
	mean := sum / float64(len(gaps))
	variance := sq/float64(len(gaps)) - mean*mean
	if variance < 2*mean*mean {
		t.Fatalf("bursty gap variance %.3g not clearly above exponential's %.3g", variance, mean*mean)
	}
}

// An open server on an idle machine completes every request in its
// service time and records each into the kernel's latency registry,
// with the SLO fully attained.
func TestOpenServerRecordsLatencies(t *testing.T) {
	k, us := bootLatency(core.PIso, 1)
	p := DefaultOpenServer()
	p.Requests = 60
	job := OpenServer(k, us[0].ID(), "svc", p)
	k.Spawn(job.Root)
	k.Run()
	if job.Completed() != 60 || job.InFlight() != 0 || job.Pending() != 0 {
		t.Fatalf("completed=%d inflight=%d pending=%d", job.Completed(), job.InFlight(), job.Pending())
	}
	tr := job.Tracker()
	if tr == nil || tr.Count() != 60 {
		t.Fatalf("tracker recorded %d of 60 requests", tr.Count())
	}
	if tr.Attainment() != 100 {
		t.Fatalf("attainment %.2f%% on an idle machine", tr.Attainment())
	}
	if got := tr.Total().Quantile(0.5); got != int64(p.Service) {
		t.Fatalf("p50 %dns, want the exact service time %d", got, int64(p.Service))
	}
	if len(tr.Windows()) == 0 {
		t.Fatal("no timeline windows despite a multi-second run")
	}
}

// With latency tracking off, the same workload runs identically and the
// tracker is a nil no-op.
func TestOpenServerWithoutLatencyRegistry(t *testing.T) {
	k, us := boot(core.PIso, 1)
	p := DefaultOpenServer()
	p.Requests = 20
	job := OpenServer(k, us[0].ID(), "svc", p)
	k.Spawn(job.Root)
	end := k.Run()
	if job.Tracker() != nil {
		t.Fatal("tracker must be nil when Options.LatencyWindow is off")
	}
	if job.Latencies(end).N() != 20 {
		t.Fatal("censored sample lost requests")
	}
	if n := job.CensorTail(end); n != 0 {
		t.Fatalf("CensorTail found %d in-flight after a complete run", n)
	}
}

// A run stopped before the service drains right-censors the stragglers:
// CensorTail folds them into the tracker as lower bounds and the JSONL
// carries the censored count.
func TestOpenServerCensoredAtHorizon(t *testing.T) {
	k, us := bootLatency(core.PIso, 1)
	p := DefaultOpenServer()
	p.Requests = 200
	p.Service = 50 * sim.Millisecond // far above the 25 ms mean interarrival: queue grows
	job := OpenServer(k, us[0].ID(), "svc", p)
	k.Spawn(job.Root)
	horizon := 2 * sim.Second
	k.RunUntil(horizon)
	inflight := job.InFlight()
	if inflight == 0 {
		t.Fatal("overloaded service has no in-flight requests at the horizon?")
	}
	completed := int64(job.Tracker().Count())
	if n := job.CensorTail(horizon); n != inflight {
		t.Fatalf("CensorTail folded %d, in-flight was %d", n, inflight)
	}
	tr := job.Tracker()
	if tr.Censored() != int64(inflight) || tr.Count() != completed+int64(inflight) {
		t.Fatalf("tracker censored=%d count=%d, want %d and %d",
			tr.Censored(), tr.Count(), inflight, completed+int64(inflight))
	}
	var buf bytes.Buffer
	if err := k.WriteLatency(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"censored":`+itoa(inflight))) {
		t.Fatalf("JSONL does not carry the censored count %d:\n%s", inflight, buf.String())
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// Two kernels running the same tenant mix export byte-identical
// latency JSONL — the determinism contract end to end.
func TestOpenServerLatencyExportDeterministic(t *testing.T) {
	run := func() string {
		k, us := bootLatency(core.PIso, 2)
		for i, ts := range TenantSet()[:2] {
			job := OpenServer(k, us[i].ID(), ts.Name, ts.Server)
			k.Spawn(job.Root)
		}
		k.Run()
		var buf bytes.Buffer
		if err := k.WriteLatency(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("latency JSONL differs between identical runs")
	}
	if a == "" {
		t.Fatal("empty export")
	}
}

// TenantSet is self-consistent: unique names and seeds, valid SLOs.
func TestTenantSetWellFormed(t *testing.T) {
	seen := map[string]bool{}
	seeds := map[uint64]bool{}
	for _, ts := range TenantSet() {
		if seen[ts.Name] {
			t.Fatalf("duplicate tenant %q", ts.Name)
		}
		seen[ts.Name] = true
		if seeds[ts.Server.Seed] {
			t.Fatalf("tenant %q reuses a seed", ts.Name)
		}
		seeds[ts.Server.Seed] = true
		if !ts.Server.SLO.Valid() {
			t.Fatalf("tenant %q has no valid SLO", ts.Name)
		}
		if ts.Server.Requests <= 0 || ts.Server.Mean <= 0 {
			t.Fatalf("tenant %q under-specified", ts.Name)
		}
	}
	if !(latency.SLO{Threshold: sim.Millisecond, Target: 0.5}).Valid() {
		t.Fatal("SLO validity helper broken")
	}
}

// The bursty generator's duty-cycle calibration must hold at long
// horizons: over 10x the canonical batchq tenant's 250 requests, the
// achieved rate stays within 2% of one request per Mean for every
// seed. The open-loop quiet-phase calibration this test pins down let
// the achieved/nominal ratio drift to 0.92 at this horizon (seed 44) —
// an 8% offered-load error that poisoned any cross-scheme comparison.
func TestBurstyLongHorizonRateCalibrated(t *testing.T) {
	for _, seed := range []uint64{44, 1, 7, 99} {
		p := OpenServerParams{
			Requests: 2500, Mean: 30 * sim.Millisecond,
			Pattern: Bursty, BurstFactor: 4, Seed: seed,
		}
		var sum sim.Time
		for _, g := range p.Gaps() {
			sum += g
		}
		ratio := float64(sum) / (float64(p.Mean) * float64(p.Requests))
		if ratio < 0.98 || ratio > 1.02 {
			t.Errorf("seed %d: achieved/nominal interarrival ratio %.4f, want within 2%% of 1",
				seed, ratio)
		}
	}
}

// Diurnal arrivals swing the rate smoothly: with one full cycle whose
// rate peaks in the first half, the first half of the arrivals lands
// in clearly less time than the second half, while the full-cycle
// achieved rate stays near one request per Mean.
func TestDiurnalArrivalsShiftLoad(t *testing.T) {
	p := OpenServerParams{
		Requests: 4000, Mean: 10 * sim.Millisecond, Pattern: Diurnal,
		DiurnalPeriod: 40 * sim.Second, DiurnalAmp: 0.6, Seed: 5,
	}
	gaps := p.Gaps()
	var firstHalf, total sim.Time
	for i, g := range gaps {
		total += g
		if i < len(gaps)/2 {
			firstHalf += g
		}
	}
	if ratio := float64(total) / (float64(p.Mean) * float64(p.Requests)); ratio < 0.9 || ratio > 1.1 {
		t.Errorf("achieved/nominal interarrival ratio %.4f, want ~1 over whole cycles", ratio)
	}
	if float64(firstHalf) > 0.8*float64(total-firstHalf) {
		t.Errorf("first-half span %v vs second-half %v: no day/night shift visible",
			firstHalf, total-firstHalf)
	}
	// A phase offset must move the peak: the phase-shifted tenant's
	// first half is the slow half.
	q := p
	q.DiurnalPhase = 0.5
	qgaps := q.Gaps()
	var qFirst, qTotal sim.Time
	for i, g := range qgaps {
		qTotal += g
		if i < len(qgaps)/2 {
			qFirst += g
		}
	}
	if float64(qFirst) < float64(qTotal-qFirst) {
		t.Errorf("phase 0.5: first half %v faster than second half %v, peak did not move",
			qFirst, qTotal-qFirst)
	}
}

// Trace-driven arrivals replay the given schedule verbatim, cycling
// when the request count exceeds the trace length.
func TestTraceDrivenArrivalsReplay(t *testing.T) {
	trace := []sim.Time{sim.Millisecond, 2 * sim.Millisecond, 5 * sim.Millisecond}
	p := OpenServerParams{Requests: 7, Mean: sim.Millisecond, Pattern: TraceDriven, Trace: trace}
	gaps := p.Gaps()
	for i, g := range gaps {
		if g != trace[i%len(trace)] {
			t.Fatalf("gap %d = %v, want %v", i, g, trace[i%len(trace)])
		}
	}
}

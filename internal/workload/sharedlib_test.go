package workload

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/fs"
	"perfiso/internal/sim"
)

// §2.2: pages accessed by multiple SPUs (shared libraries) move to the
// shared SPU, whose cost all user SPUs bear.
func TestSharedLibraryPagesRetagToSharedSPU(t *testing.T) {
	k, us := boot(core.PIso, 2)
	lib := k.Allocator(0).NewFile("libc.so", 512*1024, fs.Contiguous, 0) // 128 pages
	params := DefaultPmake()
	params.FilesPerCompile = 2
	params.SharedLib = lib
	j1 := Pmake(k, us[0].ID(), "job1", params)
	j2 := Pmake(k, us[1].ID(), "job2", params)
	k.Spawn(j1)
	k.Spawn(j2)
	k.Run()
	shared := k.SPUs().Shared().Used(core.Memory)
	if shared < 100 {
		t.Fatalf("shared SPU holds %g pages; library pages were not re-tagged", shared)
	}
	// The library was read from disk at most ~once; the second SPU hit
	// the cache (one read stream, not two).
	if got := k.Memory().Stat.Retags; got < 100 {
		t.Fatalf("retags = %d", got)
	}
}

func TestServerLatencyQuantile(t *testing.T) {
	k, us := boot(core.PIso, 1)
	p := DefaultServer()
	p.Requests = 40
	job := Server(k, us[0].ID(), "svc", p)
	k.Spawn(job.Root)
	end := k.Run()
	p50 := job.LatencyQuantile(end, 0.5)
	p99 := job.LatencyQuantile(end, 0.99)
	if p50 != p.Service {
		t.Fatalf("p50 = %v, want %v on an idle machine", p50, p.Service)
	}
	if p99 < p50 {
		t.Fatalf("p99 %v below p50 %v", p99, p50)
	}
	if job.LatencyQuantile(end, 0) > job.LatencyQuantile(end, 1) {
		t.Fatal("quantile ordering broken")
	}
	_ = sim.Time(0)
}

package workload

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/kernel"
	"perfiso/internal/machine"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
)

func boot(scheme core.Scheme, nSPU int) (*kernel.Kernel, []*core.SPU) {
	return bootOpts(scheme, nSPU, false)
}

func bootOpts(scheme core.Scheme, nSPU int, ipi bool) (*kernel.Kernel, []*core.SPU) {
	k := kernel.New(machine.Pmake8(), scheme, kernel.Options{IPIRevoke: ipi})
	var us []*core.SPU
	for i := 0; i < nSPU; i++ {
		us = append(us, k.NewSPU("u", 1))
	}
	k.Boot()
	return k, us
}

func TestPmakeJobCompletes(t *testing.T) {
	k, us := boot(core.PIso, 1)
	job := Pmake(k, us[0].ID(), "job", DefaultPmake())
	k.Spawn(job)
	end := k.Run()
	if job.State() != proc.Exited {
		t.Fatal("pmake did not finish")
	}
	// Two compiles x 8 files x 150ms = 2.4s of CPU; with 8 CPUs the two
	// compiles run in parallel: response roughly 1.2s + IO.
	if end < 1200*sim.Millisecond || end > 3*sim.Second {
		t.Fatalf("pmake response %v outside plausible window", end)
	}
	// The workload must actually exercise the disk (scattered reads,
	// delayed writes, metadata).
	if k.FS().Stat.MetaWrites != 16 {
		t.Fatalf("meta writes = %d, want 16", k.FS().Stat.MetaWrites)
	}
	if k.FS().Stat.ReadReqs == 0 {
		t.Fatal("no disk reads")
	}
}

func TestPmakeRejectsZeroParallel(t *testing.T) {
	k, us := boot(core.PIso, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pmake(k, us[0].ID(), "bad", PmakeParams{})
}

func TestCopyJobStreamsWholeFile(t *testing.T) {
	k := kernel.New(machine.DiskIsolation(), core.PIso, kernel.Options{})
	s := k.NewSPU("u", 1)
	k.Boot()
	p := DefaultCopy(2 * 1024 * 1024) // 2 MB
	job := Copy(k, s.ID(), "cp", p)
	k.Spawn(job)
	k.Run()
	if job.State() != proc.Exited {
		t.Fatal("copy did not finish")
	}
	// All source data must have been read from disk (cold cache): 2 MB
	// = 4096 sectors at least.
	st := k.Disk(0).PerSPU[s.ID()]
	if st == nil || st.Sectors < 4096 {
		t.Fatalf("read sectors = %v, want >= 4096", st)
	}
	// Destination data is written back by the flusher under shared SPU.
	if sh := k.Disk(0).PerSPU[core.SharedID]; sh == nil || sh.Sectors < 2048 {
		t.Fatalf("shared write-back sectors missing: %v", sh)
	}
}

func TestOceanGangFinishesTogether(t *testing.T) {
	k, us := boot(core.PIso, 1)
	p := DefaultOcean()
	p.Iterations = 10
	var exits []sim.Time
	job := Ocean(k, us[0].ID(), "ocean", p)
	job.OnExit = func(*proc.Process) { exits = append(exits, k.Engine().Now()) }
	k.Spawn(job)
	k.Run()
	if job.State() != proc.Exited {
		t.Fatal("ocean did not finish")
	}
	// 10 iterations x ~100ms grain on idle CPUs = ~1s + fault time.
	rt := job.ResponseTime()
	if rt < sim.Second || rt > 1500*sim.Millisecond {
		t.Fatalf("ocean response %v outside [1s, 1.5s]", rt)
	}
}

func TestOceanGangScheduled(t *testing.T) {
	// With gang scheduling on, the Ocean gang still completes and the
	// scheduler records whole-gang placements.
	k, us := boot(core.PIso, 2) // 4 CPUs per SPU
	p := DefaultOcean()
	p.Iterations = 5
	p.GangScheduled = true
	job := Ocean(k, us[0].ID(), "ocean", p)
	k.Spawn(job)
	k.Run()
	if job.State() != proc.Exited {
		t.Fatal("gang-scheduled ocean did not finish")
	}
	if k.Scheduler().Stat.GangPlacements < 5 {
		t.Fatalf("gang placements = %d, want >= one per iteration",
			k.Scheduler().Stat.GangPlacements)
	}
}

func TestGangSchedulingBoundsInterferenceSkew(t *testing.T) {
	// Gang scheduling's point: under timesharing interference within the
	// same SPU, a co-scheduled gang's barrier phases stay aligned, so
	// per-iteration time tracks the gang's own grain rather than the
	// skew of individually-scheduled members.
	run := func(gang bool) sim.Time {
		k, us := boot(core.PIso, 2)
		p := DefaultOcean()
		p.Procs = 4
		p.Iterations = 10
		p.GangScheduled = gang
		job := Ocean(k, us[0].ID(), "ocean", p)
		k.Spawn(job)
		// Interference inside the same SPU: two extra CPU hogs.
		for i := 0; i < 2; i++ {
			hog := ComputeBound(k, us[0].ID(), "hog", ComputeParams{
				Total: 20 * sim.Second, Chunk: 100 * sim.Millisecond, WSSPages: 10})
			k.Spawn(hog)
		}
		k.Run()
		return job.ResponseTime()
	}
	plain := run(false)
	ganged := run(true)
	if ganged <= 0 || plain <= 0 {
		t.Fatal("runs did not complete")
	}
	// Both must finish; gang scheduling should not be catastrophically
	// worse (it trades hog throughput for gang alignment).
	if float64(ganged) > 1.5*float64(plain) {
		t.Fatalf("gang scheduling made ocean much slower: %v vs %v", ganged, plain)
	}
}

func TestComputeBoundDemand(t *testing.T) {
	k, us := boot(core.PIso, 1)
	p := DefaultVCS()
	job := ComputeBound(k, us[0].ID(), "vcs", p)
	k.Spawn(job)
	k.Run()
	got := job.Thread().CPUTime
	if got != p.Total {
		t.Fatalf("CPU consumed %v, want %v", got, p.Total)
	}
}

func TestFlashliteLongerThanVCS(t *testing.T) {
	if DefaultFlashlite().Total <= DefaultVCS().Total {
		t.Fatal("workload shapes: Flashlite should outlast VCS")
	}
}

func TestMemPmakeFitsOneJobPerSPUOn16MB(t *testing.T) {
	// One job: 4 compiles x 280 pages = 1120 anon pages, below the
	// 1536-page half of the 16 MB machine (§4.4's "memory is enough to
	// run one job in each SPU").
	p := MemPmake()
	if p.Parallel*p.WSSPages >= 1536 {
		t.Fatalf("one job (%d pages) must fit one SPU's share", p.Parallel*p.WSSPages)
	}
	// Two jobs must not fit ("leads to memory pressure in a SPU with
	// two jobs").
	if 2*p.Parallel*p.WSSPages <= 1536 {
		t.Fatal("two jobs should exceed one SPU's share")
	}
}

func TestSizePages(t *testing.T) {
	if SizePages(4096) != 1 || SizePages(4097) != 2 || SizePages(1) != 1 {
		t.Fatal("SizePages rounding")
	}
}

func TestPmakeDeterministicAcrossRuns(t *testing.T) {
	run := func() sim.Time {
		k, us := boot(core.PIso, 1)
		job := Pmake(k, us[0].ID(), "job", DefaultPmake())
		k.Spawn(job)
		k.Run()
		return job.ResponseTime()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical runs diverged: %v vs %v", a, b)
	}
}

package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Timeline collects periodically-sampled values for a set of labelled
// rows (e.g. per-SPU CPU usage) and renders them as aligned ASCII
// sparklines — a terminal-friendly stand-in for the time-series plots a
// paper would show.
type Timeline struct {
	order []string
	rows  map[string][]float64
}

// NewTimeline creates an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{rows: make(map[string][]float64)}
}

// Record appends one sample for the labelled row. Rows appear in the
// render in first-Record order. Rows sampled at different rates simply
// have different lengths.
func (t *Timeline) Record(label string, v float64) {
	if _, ok := t.rows[label]; !ok {
		t.order = append(t.order, label)
	}
	t.rows[label] = append(t.rows[label], v)
}

// Samples returns the samples recorded for a label.
func (t *Timeline) Samples(label string) []float64 { return t.rows[label] }

// Labels returns the row labels in first-Record order.
func (t *Timeline) Labels() []string { return append([]string(nil), t.order...) }

var sparkRamp = []rune("▁▂▃▄▅▆▇█")

// Render draws each row as a sparkline of at most width cells,
// downsampling by averaging. Rows are normalized to the timeline's
// global maximum so they are visually comparable; the per-row peak is
// printed after the line.
func (t *Timeline) Render(width int) string {
	if width <= 0 {
		width = 60
	}
	var max float64
	for _, vs := range t.rows {
		for _, v := range vs {
			if v > max {
				max = v
			}
		}
	}
	labelW := 0
	for _, l := range t.order {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	for _, label := range t.order {
		vs := t.rows[label]
		cells := resample(vs, width)
		fmt.Fprintf(&b, "%-*s ", labelW, label)
		var peak float64
		for _, v := range cells {
			if v > peak {
				peak = v
			}
			idx := 0
			if max > 0 {
				idx = int(v / max * float64(len(sparkRamp)-1))
				if idx >= len(sparkRamp) {
					idx = len(sparkRamp) - 1
				}
				if idx < 0 {
					idx = 0
				}
			}
			b.WriteRune(sparkRamp[idx])
		}
		fmt.Fprintf(&b, "  peak %.2f\n", peak)
	}
	return b.String()
}

// resample reduces (or keeps) a series to at most width cells by
// averaging equal spans.
func resample(vs []float64, width int) []float64 {
	if len(vs) <= width {
		return vs
	}
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := i * len(vs) / width
		hi := (i + 1) * len(vs) / width
		if hi == lo {
			hi = lo + 1
		}
		var sum float64
		for _, v := range vs[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// Quantile returns the q-quantile (0..1) of the given values, by
// sorting a copy. It returns 0 for an empty slice.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	vs := append([]float64(nil), values...)
	sort.Float64s(vs)
	if q <= 0 {
		return vs[0]
	}
	if q >= 1 {
		return vs[len(vs)-1]
	}
	idx := int(q * float64(len(vs)-1))
	return vs[idx]
}

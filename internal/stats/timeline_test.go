package stats

import (
	"strings"
	"testing"
)

func TestTimelineRecordAndLabels(t *testing.T) {
	tl := NewTimeline()
	tl.Record("cpu", 1)
	tl.Record("mem", 2)
	tl.Record("cpu", 3)
	if got := tl.Labels(); len(got) != 2 || got[0] != "cpu" || got[1] != "mem" {
		t.Fatalf("labels = %v", got)
	}
	if got := tl.Samples("cpu"); len(got) != 2 || got[1] != 3 {
		t.Fatalf("cpu samples = %v", got)
	}
}

func TestTimelineRender(t *testing.T) {
	tl := NewTimeline()
	for i := 0; i < 10; i++ {
		tl.Record("rising", float64(i))
		tl.Record("flat", 1)
	}
	out := tl.Render(10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "rising") || !strings.Contains(lines[0], "peak 9.00") {
		t.Fatalf("rising row: %q", lines[0])
	}
	// The rising row must end with the tallest glyph; the flat row must
	// use a single short glyph (normalized against the global max 9).
	if !strings.ContainsRune(lines[0], '█') {
		t.Fatalf("rising row lacks a full cell: %q", lines[0])
	}
	if strings.ContainsRune(lines[1], '█') {
		t.Fatalf("flat row at 1/9 shows a full cell: %q", lines[1])
	}
}

func TestTimelineDownsamples(t *testing.T) {
	tl := NewTimeline()
	for i := 0; i < 1000; i++ {
		tl.Record("x", 1)
	}
	out := tl.Render(20)
	// label + space + 20 cells + peak suffix: the sparkline itself must
	// be 20 runes.
	line := strings.Split(out, "  peak")[0]
	cells := strings.TrimPrefix(line, "x ")
	if n := len([]rune(cells)); n != 20 {
		t.Fatalf("sparkline cells = %d, want 20", n)
	}
}

func TestTimelineEmptyAndZeroWidth(t *testing.T) {
	tl := NewTimeline()
	if out := tl.Render(0); out != "" {
		t.Fatalf("empty timeline rendered %q", out)
	}
	tl.Record("z", 0)
	if out := tl.Render(0); !strings.Contains(out, "z") {
		t.Fatalf("zero-value row missing: %q", out)
	}
}

func TestQuantile(t *testing.T) {
	vs := []float64{5, 1, 3, 2, 4}
	if Quantile(vs, 0) != 1 || Quantile(vs, 1) != 5 {
		t.Fatal("extremes wrong")
	}
	if got := Quantile(vs, 0.5); got != 3 {
		t.Fatalf("median = %g", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	// Input must not be mutated.
	if vs[0] != 5 {
		t.Fatal("Quantile mutated its input")
	}
}

package stats

import (
	"strings"
	"testing"
)

func TestTimelineRecordAndLabels(t *testing.T) {
	tl := NewTimeline()
	tl.Record("cpu", 1)
	tl.Record("mem", 2)
	tl.Record("cpu", 3)
	if got := tl.Labels(); len(got) != 2 || got[0] != "cpu" || got[1] != "mem" {
		t.Fatalf("labels = %v", got)
	}
	if got := tl.Samples("cpu"); len(got) != 2 || got[1] != 3 {
		t.Fatalf("cpu samples = %v", got)
	}
}

func TestTimelineRender(t *testing.T) {
	tl := NewTimeline()
	for i := 0; i < 10; i++ {
		tl.Record("rising", float64(i))
		tl.Record("flat", 1)
	}
	out := tl.Render(10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "rising") || !strings.Contains(lines[0], "peak 9.00") {
		t.Fatalf("rising row: %q", lines[0])
	}
	// The rising row must end with the tallest glyph; the flat row must
	// use a single short glyph (normalized against the global max 9).
	if !strings.ContainsRune(lines[0], '█') {
		t.Fatalf("rising row lacks a full cell: %q", lines[0])
	}
	if strings.ContainsRune(lines[1], '█') {
		t.Fatalf("flat row at 1/9 shows a full cell: %q", lines[1])
	}
}

func TestTimelineDownsamples(t *testing.T) {
	tl := NewTimeline()
	for i := 0; i < 1000; i++ {
		tl.Record("x", 1)
	}
	out := tl.Render(20)
	// label + space + 20 cells + peak suffix: the sparkline itself must
	// be 20 runes.
	line := strings.Split(out, "  peak")[0]
	cells := strings.TrimPrefix(line, "x ")
	if n := len([]rune(cells)); n != 20 {
		t.Fatalf("sparkline cells = %d, want 20", n)
	}
}

func TestTimelineEmptyAndZeroWidth(t *testing.T) {
	tl := NewTimeline()
	if out := tl.Render(0); out != "" {
		t.Fatalf("empty timeline rendered %q", out)
	}
	tl.Record("z", 0)
	if out := tl.Render(0); !strings.Contains(out, "z") {
		t.Fatalf("zero-value row missing: %q", out)
	}
}

func TestQuantile(t *testing.T) {
	vs := []float64{5, 1, 3, 2, 4}
	if Quantile(vs, 0) != 1 || Quantile(vs, 1) != 5 {
		t.Fatal("extremes wrong")
	}
	if got := Quantile(vs, 0.5); got != 3 {
		t.Fatalf("median = %g", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	// Input must not be mutated.
	if vs[0] != 5 {
		t.Fatal("Quantile mutated its input")
	}
}

// resample at exact bucket boundaries: when the sample count is an
// integer multiple of the width, every bucket averages the same span
// and no sample is double-counted or skipped.
func TestResampleExactBucketBoundaries(t *testing.T) {
	// 12 samples into 4 buckets: spans of exactly 3.
	vs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	got := resample(vs, 4)
	want := []float64{2, 5, 8, 11}
	if len(got) != len(want) {
		t.Fatalf("resample returned %d cells, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %g, want %g (exact span mean)", i, got[i], want[i])
		}
	}
	// Width equal to the sample count is the identity.
	same := resample(vs, len(vs))
	for i := range vs {
		if same[i] != vs[i] {
			t.Fatalf("width==len changed sample %d: %g -> %g", i, vs[i], same[i])
		}
	}
	// Non-divisible counts still cover every sample exactly once: the
	// bucket-mean total must equal the sample total scaled by spans.
	odd := []float64{1, 1, 1, 1, 1, 1, 1}
	for _, v := range resample(odd, 3) {
		if v != 1 {
			t.Fatalf("uneven spans of a constant series averaged to %g", v)
		}
	}
}

// Empty and one-sample series are valid timelines: nothing to average,
// nothing to divide by zero.
func TestResampleEmptyAndOneSample(t *testing.T) {
	if got := resample(nil, 10); len(got) != 0 {
		t.Fatalf("resampling nil produced %v", got)
	}
	if got := resample([]float64{7}, 10); len(got) != 1 || got[0] != 7 {
		t.Fatalf("one sample resampled to %v", got)
	}
	tl := NewTimeline()
	tl.Record("solo", 7)
	out := tl.Render(10)
	if !strings.Contains(out, "solo") || !strings.Contains(out, "peak 7.00") {
		t.Fatalf("one-sample row rendered wrong: %q", out)
	}
	if tl.Samples("missing") != nil {
		t.Fatal("unknown label should have no samples")
	}
}

package stats

import (
	"fmt"
	"strconv"
	"strings"
)

// Table renders aligned plain-text tables in the style of the paper's
// result tables. Cells are strings; use Addf for formatted values.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row of pre-formatted cells. Short rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Addf appends a row, formatting each value: strings pass through,
// float64s render with %.2f, sim-style percentages are up to the caller.
func (t *Table) Addf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		case int64:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Cell returns the contents of row r, column c.
func (t *Table) Cell(r, c int) string { return t.rows[r][c] }

// Headers returns a copy of the column headers.
func (t *Table) Headers() []string {
	out := make([]string, len(t.headers))
	copy(out, t.headers)
	return out
}

// Row is one machine-readable headline quantity extracted from a
// rendered table: the row's label, the column it came from, and the
// numeric value. It is the unit the benchmark harness serializes for
// regression tracking.
type Row struct {
	Table  string  `json:"table,omitempty"`
	Label  string  `json:"label"`
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
}

// NumericRows flattens every numeric cell of the table into Rows. The
// non-numeric cells of each row (scheme, policy, configuration names)
// join to form the label; each numeric cell becomes one Row keyed by its
// column header. Cells with a trailing %% or x unit parse as their
// numeric part.
func (t *Table) NumericRows() []Row {
	title := t.Title
	if i := strings.IndexByte(title, '\n'); i >= 0 {
		title = title[:i]
	}
	var out []Row
	for _, row := range t.rows {
		var labels []string
		var vals []Row
		for c, cell := range row {
			if v, ok := parseNumeric(cell); ok {
				metric := ""
				if c < len(t.headers) {
					metric = t.headers[c]
				}
				vals = append(vals, Row{Table: title, Metric: metric, Value: v})
			} else if cell != "" {
				labels = append(labels, cell)
			}
		}
		label := strings.Join(labels, " ")
		for i := range vals {
			vals[i].Label = label
		}
		out = append(out, vals...)
	}
	return out
}

// parseNumeric parses a table cell as a float, accepting a trailing unit
// suffix ("%", "x", "s", "ms") the formatters append.
func parseNumeric(cell string) (float64, bool) {
	s := strings.TrimSpace(cell)
	for _, suffix := range []string{"ms", "%", "x", "s"} {
		if strings.HasSuffix(s, suffix) && len(s) > len(suffix) {
			s = strings.TrimSuffix(s, suffix)
			break
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Bars renders labelled values as a horizontal ASCII bar chart, scaled
// to the largest value — the terminal stand-in for the paper's bar
// figures.
func Bars(title string, labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic("stats: Bars with mismatched labels/values")
	}
	if width <= 0 {
		width = 50
	}
	var max float64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, l := range labels {
		n := 0
		if max > 0 {
			n = int(values[i] / max * float64(width))
		}
		fmt.Fprintf(&b, "%-*s %s %.0f\n", labelW, l, strings.Repeat("#", n), values[i])
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table, with
// the title (if any) as a bold caption line.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", strings.ReplaceAll(t.Title, "\n", " "))
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	b.WriteString("|")
	for range t.headers {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

package stats

import "testing"

// Edge cases for the fixed-width histogram: empty, single sample,
// extreme quantiles, and data falling outside the bucket range.
func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	if h.N() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram: N=%d mean=%v", h.N(), h.Mean())
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v)=%v, want 0", q, got)
		}
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	h.Add(3.5)
	if h.N() != 1 || h.Mean() != 3.5 {
		t.Fatalf("N=%d mean=%v", h.N(), h.Mean())
	}
	// Every quantile answers the sample's bucket upper edge.
	for _, q := range []float64{0, 0.25, 0.5, 1} {
		if got := h.Quantile(q); got != 4 {
			t.Fatalf("Quantile(%v)=%v, want the bucket edge 4", q, got)
		}
	}
	if h.Bucket(3) != 1 {
		t.Fatal("sample not in bucket 3")
	}
}

func TestHistogramUnderOverflow(t *testing.T) {
	h := NewHistogram(10, 5, 4) // covers [10, 30)
	h.Add(-100)                 // underflow
	h.Add(5)                    // underflow
	h.Add(12)                   // bucket 0
	h.Add(29.9)                 // bucket 3
	h.Add(30)                   // overflow (right-open range)
	h.Add(1e9)                  // overflow
	if h.N() != 6 {
		t.Fatalf("N=%d", h.N())
	}
	if h.Bucket(0) != 1 || h.Bucket(3) != 1 {
		t.Fatalf("bucket counts: %d %d", h.Bucket(0), h.Bucket(3))
	}
	// Underflowed observations degrade to the range's low edge...
	if got := h.Quantile(0); got != 10 {
		t.Fatalf("Quantile(0)=%v, want the low edge 10", got)
	}
	// ...and overflowed ones to the high edge.
	if got := h.Quantile(1); got != 30 {
		t.Fatalf("Quantile(1)=%v, want the high edge 30", got)
	}
	// The mean still uses the exact values, not the clamped edges.
	if h.Mean() >= 30 || h.Mean() <= 10 {
		// (-100+5+12+29.9+30+1e9)/6 ≈ 1.7e8: way above the range.
		if h.Mean() < 1e8 {
			t.Fatalf("mean %v lost the exact overflow values", h.Mean())
		}
	}
}

func TestHistogramAllUnderflow(t *testing.T) {
	h := NewHistogram(100, 10, 3)
	h.Add(1)
	h.Add(2)
	if got := h.Quantile(0.5); got != 100 {
		t.Fatalf("all-underflow Quantile(0.5)=%v, want the low edge", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty Quantile = %v", got)
	}
	one := []float64{7}
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := Quantile(one, q); got != 7 {
			t.Fatalf("single-sample Quantile(%v)=%v, want 7", q, got)
		}
	}
	vs := []float64{5, 1, 3, 2, 4}
	if Quantile(vs, 0) != 1 || Quantile(vs, 1) != 5 {
		t.Fatalf("extremes: q0=%v q1=%v", Quantile(vs, 0), Quantile(vs, 1))
	}
	if got := Quantile(vs, 0.5); got != 3 {
		t.Fatalf("median %v, want 3", got)
	}
	// The input slice must not be reordered (Quantile sorts a copy).
	if vs[0] != 5 || vs[4] != 4 {
		t.Fatal("Quantile mutated its input")
	}
}

package stats

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Results", "Conf", "Time (s)", "Wait (ms)")
	tb.Addf("Pos", 1.23, 155.8)
	tb.Addf("PIso", 0.28, 31.9)
	out := tb.String()
	if !strings.Contains(out, "Results") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "Conf") || !strings.Contains(out, "Wait (ms)") {
		t.Error("missing headers")
	}
	if !strings.Contains(out, "1.23") || !strings.Contains(out, "31.90") {
		t.Errorf("missing cells in:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableCellAccess(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("x") // short row padded
	if tb.NumRows() != 1 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	if tb.Cell(0, 0) != "x" || tb.Cell(0, 1) != "" {
		t.Fatalf("cells = %q,%q", tb.Cell(0, 0), tb.Cell(0, 1))
	}
}

func TestTableAddfTypes(t *testing.T) {
	tb := NewTable("", "s", "f", "i", "i64", "other")
	tb.Addf("str", 1.5, 7, int64(9), []int{1})
	if tb.Cell(0, 2) != "7" || tb.Cell(0, 3) != "9" {
		t.Fatalf("int cells = %q,%q", tb.Cell(0, 2), tb.Cell(0, 3))
	}
	if tb.Cell(0, 1) != "1.50" {
		t.Fatalf("float cell = %q", tb.Cell(0, 1))
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Results\ntwo lines", "Conf", "V")
	tb.AddRow("Pos", "1|2")
	md := tb.Markdown()
	if !strings.Contains(md, "**Results two lines**") {
		t.Errorf("title missing/unflattened:\n%s", md)
	}
	if !strings.Contains(md, "| Conf | V |") {
		t.Errorf("header row wrong:\n%s", md)
	}
	if !strings.Contains(md, "|---|---|") {
		t.Errorf("separator missing:\n%s", md)
	}
	if !strings.Contains(md, `1\|2`) {
		t.Errorf("pipe not escaped:\n%s", md)
	}
}

func TestBars(t *testing.T) {
	out := Bars("Figure", []string{"SMP", "PIso"}, []float64{156, 100}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 || lines[0] != "Figure" {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 10)) {
		t.Errorf("max bar not full width: %q", lines[1])
	}
	if strings.Count(lines[2], "#") != 6 { // 100/156*10 = 6.4 -> 6
		t.Errorf("scaled bar wrong: %q", lines[2])
	}
	if !strings.Contains(lines[1], "156") || !strings.Contains(lines[2], "100") {
		t.Error("values missing")
	}
}

func TestBarsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Bars("", []string{"a"}, nil, 10)
}

func TestBarsZeroValues(t *testing.T) {
	out := Bars("", []string{"z"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Fatalf("zero value drew a bar: %q", out)
	}
}

func TestTableColumnsAligned(t *testing.T) {
	tb := NewTable("", "Name", "V")
	tb.AddRow("short", "1")
	tb.AddRow("a-much-longer-name", "2")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Data rows: the V column must start at the same offset in both rows.
	r1, r2 := lines[2], lines[3]
	if strings.Index(r1, "1") != strings.Index(r2, "2") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestNumericRows(t *testing.T) {
	tb := NewTable("Figure X: demo\nsecond title line", "Scheme", "Mode", "Norm", "Resp")
	tb.Addf("SMP", "balanced", 100.0, "1.50s")
	tb.Addf("PIso", "unbalanced", 93.5, "12%")
	rows := tb.NumericRows()
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4: %+v", len(rows), rows)
	}
	r := rows[0]
	if r.Table != "Figure X: demo" {
		t.Fatalf("Table = %q, want first title line", r.Table)
	}
	if r.Label != "SMP balanced" {
		t.Fatalf("Label = %q, want non-numeric cells joined", r.Label)
	}
	if r.Metric != "Norm" || r.Value != 100 {
		t.Fatalf("row 0 = %+v", r)
	}
	if rows[1].Metric != "Resp" || rows[1].Value != 1.5 {
		t.Fatalf("suffixed cell: %+v", rows[1])
	}
	if rows[3].Metric != "Resp" || rows[3].Value != 12 || rows[3].Label != "PIso unbalanced" {
		t.Fatalf("percent cell: %+v", rows[3])
	}
}

func TestNumericRowsSkipsNonNumericTables(t *testing.T) {
	tb := NewTable("notes", "K", "V")
	tb.AddRow("a", "n/a")
	if rows := tb.NumericRows(); len(rows) != 0 {
		t.Fatalf("got %d rows from non-numeric table, want 0", len(rows))
	}
}

// Package stats provides the small statistics toolkit used by the kernel
// model and the experiment harness: scalar sample accumulators,
// time-weighted value trackers (for utilization), fixed-width histograms,
// and a plain-text table renderer for paper-style output.
package stats

import (
	"fmt"
	"math"
	"sort"

	"perfiso/internal/sim"
)

// Sample accumulates observations of a scalar quantity and reports the
// usual summary statistics. The zero value is ready to use.
//
// Variance is tracked with Welford's online algorithm (mean plus the
// centered second moment m2) rather than a raw sum of squares: for
// samples whose spread is small relative to their magnitude — response
// times measured in integer nanoseconds, say — sumSq/n - mean² cancels
// catastrophically and can report a standard deviation of 0 (or pure
// rounding noise) for data that plainly varies.
type Sample struct {
	n        int64
	sum      float64
	mean     float64
	m2       float64 // sum of squared deviations from the running mean
	min, max float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
}

// AddTime records a sim.Time observation in seconds.
func (s *Sample) AddTime(t sim.Time) { s.Add(t.Seconds()) }

// N returns the number of observations.
func (s *Sample) N() int64 { return s.n }

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest observation, or 0 with no observations.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Sample) Max() float64 { return s.max }

// StdDev returns the population standard deviation, or 0 with fewer than
// two observations.
func (s *Sample) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	v := s.m2 / float64(s.n)
	if v < 0 { // m2 cannot go negative, but stay defensive
		v = 0
	}
	return math.Sqrt(v)
}

// Merge folds other's observations into s, combining the Welford
// moments pairwise (Chan et al.'s parallel variance update).
func (s *Sample) Merge(other *Sample) {
	if other.n == 0 {
		return
	}
	if s.n == 0 || other.min < s.min {
		s.min = other.min
	}
	if s.n == 0 || other.max > s.max {
		s.max = other.max
	}
	d := other.mean - s.mean
	n := float64(s.n + other.n)
	s.m2 += other.m2 + d*d*float64(s.n)*float64(other.n)/n
	s.mean += d * float64(other.n) / n
	s.n += other.n
	s.sum += other.sum
}

// TimeWeighted tracks a piecewise-constant value over simulated time and
// reports its time-weighted average — the natural definition of, e.g.,
// CPU utilization or mean queue depth.
type TimeWeighted struct {
	started  bool
	last     sim.Time
	value    float64
	area     float64
	duration sim.Time
	maxV     float64
}

// Set records that the tracked value changed to v at time now.
func (w *TimeWeighted) Set(now sim.Time, v float64) {
	if w.started {
		dt := now - w.last
		if dt < 0 {
			panic("stats: TimeWeighted observed time going backwards")
		}
		w.area += w.value * dt.Seconds()
		w.duration += dt
		if v > w.maxV {
			w.maxV = v
		}
	} else {
		// First observation seeds the maximum; starting from the zero
		// value would report 0 for all-negative trackers.
		w.maxV = v
	}
	w.started = true
	w.last = now
	w.value = v
}

// Add adjusts the tracked value by delta at time now.
func (w *TimeWeighted) Add(now sim.Time, delta float64) { w.Set(now, w.value+delta) }

// Value returns the current tracked value.
func (w *TimeWeighted) Value() float64 { return w.value }

// Max returns the maximum value ever set.
func (w *TimeWeighted) Max() float64 { return w.maxV }

// Average returns the time-weighted average over [first Set, now],
// counting the still-open final segment at the current value. It is a
// pure read — the tracker is not mutated, so calling it repeatedly (or
// at different times) never folds extra area into the window. It
// returns 0 if no time has elapsed.
func (w *TimeWeighted) Average(now sim.Time) float64 {
	area, duration := w.area, w.duration
	if w.started {
		dt := now - w.last
		if dt < 0 {
			panic("stats: TimeWeighted.Average asked for a time before the last Set")
		}
		area += w.value * dt.Seconds()
		duration += dt
	}
	if duration == 0 {
		return 0
	}
	return area / duration.Seconds()
}

// Area returns the integral of the tracked value over [first Set, now]
// in value·seconds, counting the still-open final segment at the current
// value. Like Average it is a pure read. The invariant auditor uses this
// to cross-check the scheduler's busy-time integral against its per-SPU
// CPU-time ledger.
func (w *TimeWeighted) Area(now sim.Time) float64 {
	area := w.area
	if w.started {
		dt := now - w.last
		if dt < 0 {
			panic("stats: TimeWeighted.Area asked for a time before the last Set")
		}
		area += w.value * dt.Seconds()
	}
	return area
}

// Histogram is a fixed-width bucket histogram with overflow and underflow
// buckets, used for distributions such as per-request disk wait times.
type Histogram struct {
	lo, width float64
	buckets   []int64
	under     int64
	over      int64
	sample    Sample
}

// NewHistogram creates a histogram covering [lo, lo+n*width) in n buckets.
func NewHistogram(lo, width float64, n int) *Histogram {
	if width <= 0 || n <= 0 {
		panic("stats: NewHistogram with non-positive width or bucket count")
	}
	return &Histogram{lo: lo, width: width, buckets: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.sample.Add(v)
	idx := int(math.Floor((v - h.lo) / h.width))
	switch {
	case idx < 0:
		h.under++
	case idx >= len(h.buckets):
		h.over++
	default:
		h.buckets[idx]++
	}
}

// N returns the total number of observations.
func (h *Histogram) N() int64 { return h.sample.N() }

// Mean returns the mean of all observations (exact, not bucketed).
func (h *Histogram) Mean() float64 { return h.sample.Mean() }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// NumBuckets returns the number of regular buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Quantile returns an approximation of the q-quantile (0 <= q <= 1) from
// the bucket boundaries; exact values for under/overflowed data degrade to
// the range edges.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.sample.N()
	if n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	cum := h.under
	if cum >= target {
		return h.lo
	}
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return h.lo + float64(i+1)*h.width
		}
	}
	return h.lo + float64(len(h.buckets))*h.width
}

// Point is one (x, y) pair in a Series.
type Point struct {
	X, Y float64
}

// Series is an ordered list of (x, y) points, used for parameter sweeps
// (e.g. response time vs. BW-difference threshold).
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Sorted returns the points sorted by X.
func (s *Series) Sorted() []Point {
	out := make([]Point, len(s.Points))
	copy(out, s.Points)
	sort.Slice(out, func(i, j int) bool { return out[i].X < out[j].X })
	return out
}

// YAt returns the Y value for the point whose X matches x, or ok=false
// if absent. Matching tolerates float rounding (a relative epsilon), so
// sweep points computed through division — e.g. thresholds built as
// limit/N — still resolve. With several points inside the tolerance the
// closest wins.
func (s *Series) YAt(x float64) (y float64, ok bool) {
	const eps = 1e-9
	best := math.Inf(1)
	for _, p := range s.Points {
		d := math.Abs(p.X - x)
		scale := math.Max(1, math.Max(math.Abs(p.X), math.Abs(x)))
		if d <= eps*scale && d < best {
			best, y, ok = d, p.Y, true
		}
	}
	if !ok {
		return 0, false
	}
	return y, true
}

// Ratio is a convenience for "normalized to baseline" reporting: it
// returns 100*v/base, the percentage form used throughout the paper's
// figures, or 0 if base is 0.
func Ratio(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * v / base
}

// FormatPercent renders a percentage (negative values keep their sign,
// marking deltas like "-39%").
func FormatPercent(v float64) string { return fmt.Sprintf("%.0f%%", v) }

// FormatRatio renders a multiplicative ratio.
func FormatRatio(v float64) string { return fmt.Sprintf("%.2fx", v) }

// FormatSeconds renders a duration in seconds with sensible precision.
func FormatSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case math.Abs(s) < 0.001:
		return fmt.Sprintf("%.2fms", s*1000)
	case math.Abs(s) < 1:
		return fmt.Sprintf("%.1fms", s*1000)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

package stats

import (
	"math"
	"testing"
	"testing/quick"

	"perfiso/internal/sim"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 6} {
		s.Add(v)
	}
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 4 {
		t.Fatalf("Mean = %g", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 6 {
		t.Fatalf("Min/Max = %g/%g", s.Min(), s.Max())
	}
	if s.Sum() != 12 {
		t.Fatalf("Sum = %g", s.Sum())
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestSampleStdDev(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.StdDev(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("StdDev = %g, want 2", got)
	}
}

// Regression: StdDev was computed as sumSq/n - mean², which cancels
// catastrophically when the spread is small relative to the magnitude —
// exactly the shape of response times held in nanoseconds. Two
// observations one apart at 1e9 have a true population standard
// deviation of 0.5; the sum-of-squares form lost every significant bit
// (the clamped result was 0 or pure rounding noise). Welford's update
// keeps full precision.
func TestSampleStdDevLargeOffset(t *testing.T) {
	var s Sample
	s.Add(1e9)
	s.Add(1e9 + 1)
	if got := s.StdDev(); math.Abs(got-0.5) > 1e-6 {
		t.Fatalf("StdDev = %g, want 0.5 (catastrophic cancellation)", got)
	}
	// Same shape, bigger sample: 1000 observations alternating ±1 around
	// 4.2e9 (a ~4.2 s response time in ns). True stddev is 1.
	var big Sample
	for i := 0; i < 1000; i++ {
		big.Add(4.2e9 + float64(i%2*2-1))
	}
	if got := big.StdDev(); math.Abs(got-1) > 1e-6 {
		t.Fatalf("StdDev = %g, want 1", got)
	}
}

// Merge must combine second moments exactly (Chan et al.), including
// from an empty receiver and at large magnitudes.
func TestSampleMergeStdDev(t *testing.T) {
	var a, b, combined Sample
	for i := 0; i < 500; i++ {
		v := 1e9 + float64(i)
		a.Add(v)
		combined.Add(v)
	}
	for i := 500; i < 1000; i++ {
		v := 1e9 + float64(i)
		b.Add(v)
		combined.Add(v)
	}
	a.Merge(&b)
	if got, want := a.StdDev(), combined.StdDev(); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("merged StdDev = %g, combined = %g", got, want)
	}
	var empty Sample
	empty.Merge(&b)
	var bAlone Sample
	for i := 500; i < 1000; i++ {
		bAlone.Add(1e9 + float64(i))
	}
	if got, want := empty.StdDev(), bAlone.StdDev(); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("merge into empty: StdDev = %g, want %g", got, want)
	}
}

func TestSampleAddTime(t *testing.T) {
	var s Sample
	s.AddTime(500 * sim.Millisecond)
	if s.Mean() != 0.5 {
		t.Fatalf("AddTime mean = %g", s.Mean())
	}
}

func TestSampleMerge(t *testing.T) {
	var a, b Sample
	a.Add(1)
	a.Add(3)
	b.Add(5)
	b.Add(7)
	a.Merge(&b)
	if a.N() != 4 || a.Mean() != 4 || a.Min() != 1 || a.Max() != 7 {
		t.Fatalf("merged: n=%d mean=%g min=%g max=%g", a.N(), a.Mean(), a.Min(), a.Max())
	}
	var empty Sample
	a.Merge(&empty) // no-op
	if a.N() != 4 {
		t.Fatal("merging empty changed N")
	}
}

// Property: merging two samples gives the same mean as one combined sample.
func TestPropertyMergeEquivalence(t *testing.T) {
	// Map arbitrary bits into a bounded range so sums cannot overflow.
	bound := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 1e6)
	}
	f := func(xs, ys []float64) bool {
		var combined, a, b Sample
		for _, x := range xs {
			x = bound(x)
			a.Add(x)
			combined.Add(x)
		}
		for _, y := range ys {
			y = bound(y)
			b.Add(y)
			combined.Add(y)
		}
		a.Merge(&b)
		if a.N() != combined.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		return math.Abs(a.Mean()-combined.Mean()) < 1e-9*(1+math.Abs(combined.Mean()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeWeightedAverage(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 1)          // value 1 for 1s
	w.Set(sim.Second, 3) // value 3 for 1s
	got := w.Average(2 * sim.Second)
	if math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("Average = %g, want 2", got)
	}
	if w.Max() != 3 {
		t.Fatalf("Max = %g", w.Max())
	}
}

func TestTimeWeightedAdd(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 0)
	w.Add(sim.Second, 4) // value 4 from t=1s
	if w.Value() != 4 {
		t.Fatalf("Value = %g", w.Value())
	}
	got := w.Average(2 * sim.Second) // 0 for 1s, 4 for 1s
	if math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("Average = %g, want 2", got)
	}
}

func TestTimeWeightedNoElapsed(t *testing.T) {
	var w TimeWeighted
	w.Set(sim.Second, 5)
	if w.Average(sim.Second) != 0 {
		t.Fatal("zero-duration window should average 0")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0, 10, 5) // [0,50) in 5 buckets
	for _, v := range []float64{-1, 0, 5, 15, 49.9, 50, 1000} {
		h.Add(v)
	}
	if h.N() != 7 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Bucket(0) != 2 { // 0 and 5
		t.Fatalf("bucket 0 = %d", h.Bucket(0))
	}
	if h.Bucket(1) != 1 { // 15
		t.Fatalf("bucket 1 = %d", h.Bucket(1))
	}
	if h.Bucket(4) != 1 { // 49.9
		t.Fatalf("bucket 4 = %d", h.Bucket(4))
	}
	if h.under != 1 || h.over != 2 {
		t.Fatalf("under/over = %d/%d", h.under, h.over)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 1, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 1.5 {
		t.Fatalf("median = %g, want ~50", q)
	}
	if q := h.Quantile(1.0); math.Abs(q-100) > 1.5 {
		t.Fatalf("p100 = %g, want ~100", q)
	}
	empty := NewHistogram(0, 1, 4)
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(0, 0, 5)
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(3, 30)
	s.Add(1, 10)
	s.Add(2, 20)
	sorted := s.Sorted()
	if sorted[0].X != 1 || sorted[2].X != 3 {
		t.Fatalf("Sorted = %v", sorted)
	}
	if y, ok := s.YAt(2); !ok || y != 20 {
		t.Fatalf("YAt(2) = %g,%v", y, ok)
	}
	if _, ok := s.YAt(99); ok {
		t.Fatal("YAt(99) should miss")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(150, 100) != 150 {
		t.Fatal("Ratio(150,100)")
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio with zero base")
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		0.0005: "0.50ms",
		0.25:   "250.0ms",
		1.5:    "1.50s",
	}
	for in, want := range cases {
		if got := FormatSeconds(in); got != want {
			t.Errorf("FormatSeconds(%g) = %q, want %q", in, got, want)
		}
	}
}

// Regression: Average used to fold the open segment into the tracker
// as a side effect (it called Set), advancing w.last to the query
// time. Peeking at the average ahead of the sample stream then made
// the next legitimate Set panic with "time going backwards".
func TestTimeWeightedAverageIsSideEffectFree(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 1)
	// Peek at the running average at t=2s...
	if got := w.Average(2 * sim.Second); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("Average(2s) = %g, want 1", got)
	}
	// ...then a real observation arrives at t=1s. The query must not
	// have moved the tracker's clock.
	w.Set(sim.Second, 3)
	first := w.Average(2 * sim.Second) // 1 for 1s, 3 for 1s
	second := w.Average(2 * sim.Second)
	if first != second {
		t.Fatalf("repeated Average diverged: %g then %g", first, second)
	}
	if math.Abs(first-2.0) > 1e-9 {
		t.Fatalf("Average(2s) = %g, want 2", first)
	}
	// A later query sees the open segment grow linearly.
	if got := w.Average(3 * sim.Second); math.Abs(got-7.0/3.0) > 1e-9 {
		t.Fatalf("Average(3s) = %g, want %g", got, 7.0/3.0)
	}
}

// Regression: Max seeded its running maximum with the zero value, so an
// all-negative tracker reported 0 — a value it never held.
func TestTimeWeightedMaxAllNegative(t *testing.T) {
	var w TimeWeighted
	w.Set(0, -5)
	w.Set(sim.Second, -2)
	w.Set(2*sim.Second, -9)
	if got := w.Max(); got != -2 {
		t.Fatalf("Max = %g, want -2 (zero was never observed)", got)
	}
}

// Regression: YAt used exact float64 equality, so x values that went
// through any arithmetic (load levels computed as float sums, sweep
// points built by repeated addition) missed their own entries.
func TestSeriesYAtEpsilon(t *testing.T) {
	var s Series
	x := 0.0
	for i := 0; i < 10; i++ {
		x += 0.1 // 0.1+0.1+... != 0.3 exactly in float64
		s.Add(x, float64(i))
	}
	if y, ok := s.YAt(0.3); !ok || y != 2 {
		t.Fatalf("YAt(0.3) = %g,%v; want 2,true (epsilon match)", y, ok)
	}
	if y, ok := s.YAt(1.0); !ok || y != 9 {
		t.Fatalf("YAt(1.0) = %g,%v; want 9,true", y, ok)
	}
	if _, ok := s.YAt(0.35); ok {
		t.Fatal("YAt(0.35) matched; epsilon too loose")
	}
}

package latency

import (
	"encoding/json"
	"io"

	"perfiso/internal/sim"
)

// JSONL line shapes. One struct per line type keeps the field order —
// and therefore the bytes — fixed. Every value is either an integer
// nanosecond count or a ratio of deterministic integers, and no
// wall-clock value appears, so the same run always exports the same
// bytes at any harness parallelism and on either event-queue
// implementation.
type latencyLine struct {
	Type     string `json:"type"`
	Name     string `json:"name"`
	SPU      int    `json:"spu"`
	Count    int64  `json:"count"`
	Censored int64  `json:"censored"`
	MinNS    int64  `json:"min_ns"`
	MeanNS   int64  `json:"mean_ns"`
	P50NS    int64  `json:"p50_ns"`
	P90NS    int64  `json:"p90_ns"`
	P99NS    int64  `json:"p99_ns"`
	P999NS   int64  `json:"p999_ns"`
	MaxNS    int64  `json:"max_ns"`
}

type sloLine struct {
	Type        string  `json:"type"`
	Name        string  `json:"name"`
	SPU         int     `json:"spu"`
	ThresholdNS int64   `json:"threshold_ns"`
	Target      float64 `json:"target"`
	Good        int64   `json:"good"`
	Shed        int64   `json:"shed,omitempty"`
	Attainment  float64 `json:"attainment"`
	BudgetBurn  float64 `json:"budget_burn"`
}

type windowLine struct {
	Type       string  `json:"type"`
	Name       string  `json:"name"`
	SPU        int     `json:"spu"`
	Window     int     `json:"window"`
	StartMS    float64 `json:"start_ms"`
	EndMS      float64 `json:"end_ms"`
	Count      int64   `json:"count"`
	P50NS      int64   `json:"p50_ns"`
	P99NS      int64   `json:"p99_ns"`
	P999NS     int64   `json:"p999_ns"`
	Good       int64   `json:"good"`
	Shed       int64   `json:"shed,omitempty"`
	Attainment float64 `json:"attainment"`
	BurnRate   float64 `json:"burn"`
}

// WriteJSONL writes every tracker as deterministic JSONL: one
// "latency" summary line, an "slo" line when the tracker has an
// objective, then one "latency_window" line per non-empty timeline
// window. Trackers appear in registration order. A no-op on a nil
// registry.
func (r *Registry) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, t := range r.trackers {
		h := t.total
		if err := enc.Encode(latencyLine{
			Type: "latency", Name: t.Name, SPU: int(t.SPU),
			Count: h.Count(), Censored: t.censored,
			MinNS: h.Min(), MeanNS: h.Mean(),
			P50NS: h.Quantile(0.50), P90NS: h.Quantile(0.90),
			P99NS: h.Quantile(0.99), P999NS: h.Quantile(0.999),
			MaxNS: h.Max(),
		}); err != nil {
			return err
		}
		if t.Obj.Valid() {
			line := sloLine{
				Type: "slo", Name: t.Name, SPU: int(t.SPU),
				ThresholdNS: int64(t.Obj.Threshold), Target: t.Obj.Target,
				Good: t.good, Shed: t.shed,
				Attainment: t.Attainment(), BudgetBurn: t.BudgetBurn(),
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
		for _, ws := range t.Windows() {
			if err := enc.Encode(windowLine{
				Type: "latency_window", Name: t.Name, SPU: int(t.SPU),
				Window:  ws.Index,
				StartMS: float64(ws.Start) / float64(sim.Millisecond),
				EndMS:   float64(ws.End) / float64(sim.Millisecond),
				Count:   ws.Count,
				P50NS:   ws.P50, P99NS: ws.P99, P999NS: ws.P999,
				Good: ws.Good, Shed: ws.Shed,
				Attainment: ws.Attainment, BurnRate: ws.BurnRate,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

package latency

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"perfiso/internal/sim"
)

func TestTrackerSLOAndWindows(t *testing.T) {
	r := NewRegistry(sim.Second)
	tr := r.Tracker("web", 2, SLO{Threshold: 10 * sim.Millisecond, Target: 0.9})
	// Window 0: 3 good, 1 bad. Window 2: 1 good. Window 1 stays empty.
	tr.Record(100*sim.Millisecond, 2*sim.Millisecond)
	tr.Record(200*sim.Millisecond, 5*sim.Millisecond)
	tr.Record(300*sim.Millisecond, 10*sim.Millisecond) // exactly at threshold: good
	tr.Record(400*sim.Millisecond, 50*sim.Millisecond)
	tr.Record(2500*sim.Millisecond, sim.Millisecond)

	if tr.Count() != 5 || tr.Good() != 4 {
		t.Fatalf("count=%d good=%d, want 5, 4", tr.Count(), tr.Good())
	}
	if got := tr.Attainment(); got != 80 {
		t.Fatalf("attainment %v, want 80", got)
	}
	ws := tr.Windows()
	if len(ws) != 2 {
		t.Fatalf("got %d non-empty windows, want 2 (empty windows skipped)", len(ws))
	}
	w0 := ws[0]
	if w0.Index != 0 || w0.Count != 4 || w0.Good != 3 {
		t.Fatalf("window 0 = %+v", w0)
	}
	// Bad fraction 1/4 against a 10% budget: burn rate 2.5.
	if w0.BurnRate < 2.5-1e-9 || w0.BurnRate > 2.5+1e-9 {
		t.Fatalf("window 0 burn rate %v, want 2.5", w0.BurnRate)
	}
	if ws[1].Index != 2 || ws[1].Count != 1 || ws[1].BurnRate != 0 {
		t.Fatalf("window 2 = %+v", ws[1])
	}
	if w0.P99 < int64(10*sim.Millisecond) {
		t.Fatalf("window 0 p99 %d below the recorded tail", w0.P99)
	}
}

func TestTrackerCensored(t *testing.T) {
	r := NewRegistry(sim.Second)
	tr := r.Tracker("svc", 3, SLO{Threshold: 5 * sim.Millisecond, Target: 0.99})
	tr.Record(sim.Second, 2*sim.Millisecond)
	tr.RecordCensored(sim.Second, 40*sim.Millisecond)
	if tr.Count() != 2 || tr.Censored() != 1 {
		t.Fatalf("count=%d censored=%d, want 2, 1", tr.Count(), tr.Censored())
	}
	// The censored lower bound pulls the tail up: a scheme stranding
	// requests cannot report a clean p99.
	if tr.Total().Quantile(0.99) < int64(40*sim.Millisecond) {
		t.Fatalf("p99 %d ignores the censored lower bound", tr.Total().Quantile(0.99))
	}
	if tr.Good() != 1 {
		t.Fatalf("good=%d: the over-threshold censored request must count as bad", tr.Good())
	}
}

// Nil registry and nil tracker are valid no-op sinks (the metrics
// contract), so workloads record unconditionally.
func TestNilRegistryAndTracker(t *testing.T) {
	var r *Registry
	tr := r.Tracker("x", 1, SLO{})
	if tr != nil {
		t.Fatal("nil registry must hand out nil trackers")
	}
	tr.Record(0, sim.Millisecond)
	tr.RecordCensored(0, sim.Millisecond)
	if tr.Count() != 0 || tr.Attainment() != 0 || tr.Windows() != nil {
		t.Fatal("nil tracker must be inert")
	}
	if err := r.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if !r.Empty() {
		t.Fatal("nil registry is empty")
	}
}

func TestRegistryIdempotentAndOrdered(t *testing.T) {
	r := NewRegistry(0)
	if r.Window() != DefaultWindow {
		t.Fatalf("default window = %v", r.Window())
	}
	a := r.Tracker("a", 2, SLO{Threshold: sim.Millisecond, Target: 0.5})
	b := r.Tracker("b", 3, SLO{})
	again := r.Tracker("a", 2, SLO{Threshold: 9 * sim.Second, Target: 0.1})
	if again != a {
		t.Fatal("re-registration must return the existing tracker")
	}
	if again.Obj != a.Obj {
		t.Fatal("re-registration must keep the original SLO")
	}
	ts := r.Trackers()
	if len(ts) != 2 || ts[0] != a || ts[1] != b {
		t.Fatal("trackers not in registration order")
	}
}

// Merging per-shard trackers reproduces the sequential tracker
// exactly, including window boundaries and SLO counts — then the JSONL
// bytes match too.
func TestTrackerMergeAndExportDeterminism(t *testing.T) {
	slo := SLO{Threshold: 8 * sim.Millisecond, Target: 0.95}
	rng := sim.NewRNG(41)
	type obs struct {
		at sim.Time
		d  sim.Time
	}
	var all []obs
	for i := 0; i < 3000; i++ {
		all = append(all, obs{
			at: sim.Time(rng.Intn(int(10 * sim.Second))),
			d:  sim.Time(rng.Intn(int(20 * sim.Millisecond))),
		})
	}
	seqReg := NewRegistry(sim.Second)
	seq := seqReg.Tracker("svc", 2, slo)
	for _, o := range all {
		seq.Record(o.at, o.d)
	}
	merged := NewRegistry(sim.Second).Tracker("svc", 2, slo)
	for s := 0; s < 8; s++ {
		shard := NewRegistry(sim.Second).Tracker("svc", 2, slo)
		for i, o := range all {
			if i%8 == s {
				shard.Record(o.at, o.d)
			}
		}
		merged.Merge(shard)
	}
	if seq.Count() != merged.Count() || seq.Good() != merged.Good() {
		t.Fatal("merged tracker diverged from sequential")
	}
	var bufA, bufB bytes.Buffer
	if err := seqReg.WriteJSONL(&bufA); err != nil {
		t.Fatal(err)
	}
	mr := NewRegistry(sim.Second)
	mr.trackers = append(mr.trackers, merged)
	if err := mr.WriteJSONL(&bufB); err != nil {
		t.Fatal(err)
	}
	if bufA.String() != bufB.String() {
		t.Fatalf("JSONL differs between sequential and 8-way merged recording:\n%s\n---\n%s",
			bufA.String(), bufB.String())
	}
}

func TestWriteJSONLShape(t *testing.T) {
	r := NewRegistry(sim.Second)
	tr := r.Tracker("web", 2, SLO{Threshold: 10 * sim.Millisecond, Target: 0.99})
	tr.Record(100*sim.Millisecond, 3*sim.Millisecond)
	tr.Record(1500*sim.Millisecond, 30*sim.Millisecond)
	r.Tracker("quiet", 4, SLO{}) // empty, no SLO: summary line only

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var types []string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("not JSON: %s", line)
		}
		types = append(types, obj["type"].(string))
	}
	want := []string{"latency", "slo", "latency_window", "latency_window", "latency"}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("line types %v, want %v", types, want)
	}
	if !strings.Contains(buf.String(), `"censored":0`) {
		t.Fatal("summary line must surface the censored count")
	}
}

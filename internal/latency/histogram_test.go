package latency

import (
	"testing"

	"perfiso/internal/sim"
)

// Every value must land in exactly one bucket, and bucketMax must be
// the largest value mapping back to that bucket — the round-trip that
// makes Quantile answers well-defined.
func TestHistogramIndexRoundTrip(t *testing.T) {
	h := New()
	vals := []int64{0, 1, 2, 100, 255, 256, 257, 1000, 1 << 20, 1<<20 + 7,
		1<<40 - 1, 1 << 40, 1<<62 - 1}
	for _, v := range vals {
		idx := h.index(v)
		hi := h.bucketMax(idx)
		if hi < v {
			t.Fatalf("bucketMax(%d)=%d below the value %d that mapped there", idx, hi, v)
		}
		if h.index(hi) != idx {
			t.Fatalf("bucketMax(%d)=%d maps to bucket %d, not back", idx, hi, h.index(hi))
		}
		if hi+1 > 0 && h.index(hi+1) == idx {
			t.Fatalf("bucket %d upper bound %d is not tight: %d maps there too", idx, hi, hi+1)
		}
	}
	// Buckets are contiguous: consecutive indexes cover consecutive
	// ranges with no gap.
	for idx := 0; idx < 4096; idx++ {
		if h.index(h.bucketMax(idx)+1) != idx+1 {
			t.Fatalf("gap after bucket %d (max %d)", idx, h.bucketMax(idx))
		}
	}
}

// The relative quantization error is bounded by 2^-precision.
func TestHistogramRelativeError(t *testing.T) {
	h := New()
	for v := int64(1); v < 1<<50; v = v*3 + 1 {
		hi := h.bucketMax(h.index(v))
		if float64(hi-v) > float64(v)/128+1 {
			t.Fatalf("value %d quantizes to %d: error %d exceeds bound", v, hi, hi-v)
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := New()
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram must answer zero everywhere")
	}
	h.Record(42)
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := h.Quantile(q); got != 42 {
			t.Fatalf("single sample: Quantile(%v)=%d, want 42", q, got)
		}
	}
	if h.Mean() != 42 || h.Min() != 42 || h.Max() != 42 {
		t.Fatal("single-sample aggregates wrong")
	}
	// Negative values clamp to zero instead of corrupting bucket math.
	h.Record(-5)
	if h.Min() != 0 || h.Count() != 2 {
		t.Fatalf("negative record: min=%d count=%d, want 0, 2", h.Min(), h.Count())
	}
	// q=0 and q=1 are the exact extremes even though the top value
	// sits in a wide bucket.
	big := NewWithPrecision(4)
	big.Record(3)
	big.Record(1_000_000_007)
	if big.Quantile(0) != 3 || big.Quantile(1) != 1_000_000_007 {
		t.Fatalf("extremes not exact: q0=%d q1=%d", big.Quantile(0), big.Quantile(1))
	}
}

// Quantiles must never answer outside the observed range, whatever the
// bucket widths.
func TestHistogramQuantileClamped(t *testing.T) {
	h := NewWithPrecision(2)
	h.Record(1000)
	h.Record(1001)
	for _, q := range []float64{0.01, 0.5, 0.9, 0.999} {
		v := h.Quantile(q)
		if v < 1000 || v > 1001 {
			t.Fatalf("Quantile(%v)=%d outside observed [1000,1001]", q, v)
		}
	}
}

// merge(a,b) == merge(b,a), and any grouping of partial histograms
// reproduces the one that saw every value — the property that makes
// parallel recording deterministic.
func TestHistogramMergeCommutativeAssociative(t *testing.T) {
	rng := sim.NewRNG(7)
	mk := func(n int) *Histogram {
		h := New()
		for i := 0; i < n; i++ {
			h.Record(int64(rng.Intn(1 << 30)))
		}
		return h
	}
	a, b, c := mk(100), mk(37), mk(250)

	ab := a.Clone()
	ab.Merge(b)
	ba := b.Clone()
	ba.Merge(a)
	if !equal(ab, ba) {
		t.Fatal("merge is not commutative")
	}

	abc1 := ab.Clone()
	abc1.Merge(c)
	bc := b.Clone()
	bc.Merge(c)
	abc2 := a.Clone()
	abc2.Merge(bc)
	if !equal(abc1, abc2) {
		t.Fatal("merge is not associative")
	}
}

// Splitting one observation stream across 8 shards and merging must
// answer byte-identical quantiles to sequential recording — the
// parallel-harness contract.
func TestHistogramParallelMergeIdenticalQuantiles(t *testing.T) {
	rng := sim.NewRNG(99)
	var vals []int64
	for i := 0; i < 5000; i++ {
		vals = append(vals, int64(rng.Intn(1<<35)))
	}
	seq := New()
	for _, v := range vals {
		seq.Record(v)
	}
	shards := make([]*Histogram, 8)
	for i := range shards {
		shards[i] = New()
	}
	for i, v := range vals {
		shards[i%8].Record(v)
	}
	par := New()
	for _, s := range shards {
		par.Merge(s)
	}
	if !equal(seq, par) {
		t.Fatal("8-way sharded merge differs from sequential recording")
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		a, b := seq.Quantile(q), par.Quantile(q)
		if a != b {
			t.Fatalf("Quantile(%v): sequential %d vs merged %d", q, a, b)
		}
	}
}

func TestHistogramMergePrecisionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched precisions must panic")
		}
	}()
	a, b := NewWithPrecision(7), NewWithPrecision(5)
	b.Record(1)
	a.Merge(b)
}

// equal compares full histogram state.
func equal(a, b *Histogram) bool {
	if a.count != b.count || a.sum != b.sum || a.min != b.min || a.max != b.max {
		return false
	}
	for i := range a.counts {
		if a.counts[i] != b.counts[i] {
			return false
		}
	}
	return true
}

// The record path must be zero-alloc: open-arrival workloads record a
// latency per request on the kernel's dispatch path. Same guard style
// as TestKernelDispatchZeroAlloc.
func TestHistogramRecordZeroAlloc(t *testing.T) {
	h := New()
	v := int64(1)
	if avg := testing.AllocsPerRun(50, func() {
		for i := 0; i < 1000; i++ {
			v = v*6364136223846793005 + 1442695040888963407
			h.Record(v & (1<<40 - 1))
		}
	}); avg != 0 {
		t.Fatalf("Histogram.Record allocated %.2f times per 1000 records, want 0", avg)
	}
}

// Tracker.Record is zero-alloc within an existing window (growth only
// happens at window boundaries, once per window).
func TestTrackerRecordZeroAlloc(t *testing.T) {
	r := NewRegistry(sim.Second)
	tr := r.Tracker("svc", 2, SLO{Threshold: 10 * sim.Millisecond, Target: 0.99})
	tr.Record(500*sim.Millisecond, sim.Millisecond) // open the window
	if avg := testing.AllocsPerRun(50, func() {
		for i := 0; i < 1000; i++ {
			tr.Record(500*sim.Millisecond, sim.Millisecond*sim.Time(i%20))
		}
	}); avg != 0 {
		t.Fatalf("Tracker.Record allocated %.2f times per 1000 records, want 0", avg)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) * 1009)
	}
}

// Exhaustive small-value check: the exact range really is exact.
func TestHistogramExactSmallValues(t *testing.T) {
	h := New()
	m := int64(h.m)
	for v := int64(0); v < 2*m; v++ {
		if got := h.bucketMax(h.index(v)); got != v {
			t.Fatalf("small value %d not exact: bucket answers %d", v, got)
		}
	}
}

package latency

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

// The burn/attainment math is total: every boundary input produces a
// finite number, never NaN or Inf — the feedback controller polls
// these every window and a single NaN would poison the share ledger.
func TestBurnAndAttainmentGuards(t *testing.T) {
	slo := SLO{Threshold: 10 * sim.Millisecond, Target: 0.99}
	cases := []struct {
		name        string
		s           SLO
		good, total int64
		burn        float64
	}{
		{"empty window", slo, 0, 0, 0},
		{"negative total", slo, 0, -1, 0},
		{"invalid slo", SLO{}, 5, 10, 0},
		{"target one is invalid", SLO{Threshold: sim.Millisecond, Target: 1}, 5, 10, 0},
		{"all good", slo, 10, 10, 0},
		{"all bad", slo, 0, 10, 100},
		{"shed only", slo, 0, 7, 100},
	}
	for _, c := range cases {
		got := c.s.Burn(c.good, c.total)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s: burn is not finite: %v", c.name, got)
		}
		if math.Abs(got-c.burn) > 1e-9 {
			t.Errorf("%s: burn = %v, want %v", c.name, got, c.burn)
		}
		at := AttainmentOf(c.good, c.total)
		if math.IsNaN(at) || math.IsInf(at, 0) {
			t.Errorf("%s: attainment is not finite: %v", c.name, at)
		}
	}
	if at := AttainmentOf(0, 0); at != 0 {
		t.Errorf("empty attainment = %v, want 0", at)
	}
}

// A window that saw only shed requests (admission refused everything)
// still produces defined, finite stats: sheds are bad observations, so
// the window burns at full rate — it must never read as calm or NaN.
func TestShedOnlyWindowStats(t *testing.T) {
	reg := NewRegistry(500 * sim.Millisecond)
	tr := reg.Tracker("t", core.SPUID(2), SLO{Threshold: 10 * sim.Millisecond, Target: 0.95})
	for i := 0; i < 5; i++ {
		tr.RecordShed(100 * sim.Millisecond)
	}
	ws := tr.WindowAt(0)
	if ws.Count != 0 || ws.Shed != 5 {
		t.Fatalf("window = %+v, want 0 completions and 5 sheds", ws)
	}
	if math.IsNaN(ws.BurnRate) || math.IsNaN(ws.Attainment) {
		t.Fatalf("shed-only window produced NaN: %+v", ws)
	}
	if ws.BurnRate < 1 {
		t.Fatalf("shed-only window burn = %v; refusing everything must burn the budget", ws.BurnRate)
	}
	if ws.Attainment != 0 {
		t.Fatalf("shed-only window attainment = %v, want 0", ws.Attainment)
	}
	if got := tr.Shed(); got != 5 {
		t.Fatalf("Shed() = %d, want 5", got)
	}
}

// WindowAt is defined on any index — the controller polls "last
// completed window" on a fixed cadence and must get zeros, not a
// panic or garbage, when a tenant's timeline hasn't reached it.
func TestWindowAtOutOfRange(t *testing.T) {
	reg := NewRegistry(500 * sim.Millisecond)
	tr := reg.Tracker("t", core.SPUID(2), SLO{Threshold: 10 * sim.Millisecond, Target: 0.95})
	tr.Record(100*sim.Millisecond, sim.Millisecond)
	for _, idx := range []int{-1, -100, 1, 7, 1 << 20} {
		ws := tr.WindowAt(idx)
		if ws.Count != 0 || ws.Good != 0 || ws.Shed != 0 {
			t.Errorf("WindowAt(%d) = %+v, want empty", idx, ws)
		}
		if math.IsNaN(ws.BurnRate) || math.IsNaN(ws.Attainment) {
			t.Errorf("WindowAt(%d) produced NaN", idx)
		}
	}
	var nilTr *Tracker
	if ws := nilTr.WindowAt(3); ws.Count != 0 {
		t.Error("nil tracker WindowAt not empty")
	}
}

// No NaN ever reaches the exported artifact, even from degenerate
// trackers: shed-only windows, empty trackers, censored-only tails.
func TestExportNeverEmitsNaN(t *testing.T) {
	reg := NewRegistry(500 * sim.Millisecond)
	slo := SLO{Threshold: 10 * sim.Millisecond, Target: 0.99}
	shedOnly := reg.Tracker("shed-only", core.SPUID(2), slo)
	for i := 0; i < 3; i++ {
		shedOnly.RecordShed(sim.Millisecond)
	}
	reg.Tracker("empty", core.SPUID(3), slo)
	censored := reg.Tracker("censored", core.SPUID(4), slo)
	censored.RecordCensored(sim.Millisecond, 100*sim.Millisecond)
	var buf bytes.Buffer
	if err := reg.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, bad := range []string{"NaN", "Inf", "null"} {
		if strings.Contains(out, bad) {
			t.Fatalf("export contains %q:\n%s", bad, out)
		}
	}
}

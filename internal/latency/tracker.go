package latency

import (
	"perfiso/internal/core"
	"perfiso/internal/sim"
)

// DefaultWindow is the percentile-timeline window width when a caller
// enables latency tracking without choosing one: 1 s of simulated time,
// coarse enough that a window holds a statistically meaningful request
// count and fine enough to see a fault or an antagonist arrive.
const DefaultWindow = sim.Second

// SLO is a latency service-level objective: Target fraction of
// requests must complete within Threshold. The zero value means "no
// objective" — the tracker still records latencies, it just skips
// attainment accounting. Target must be in (0, 1) for burn rates to be
// meaningful; 0.99 means a 1% error budget.
type SLO struct {
	Threshold sim.Time
	Target    float64
}

// Valid reports whether the SLO names a real objective.
func (s SLO) Valid() bool { return s.Threshold > 0 && s.Target > 0 && s.Target < 1 }

// Burn returns the error-budget burn rate for good observations out of
// total: (bad fraction)/(allowed bad fraction), so 1.0 burns the budget
// exactly as fast as the objective allows. It is total — defined for
// every input: an invalid SLO or an empty window (total <= 0) burns
// nothing. Every exported burn value funnels through here so no slo or
// window line can ever carry a NaN.
func (s SLO) Burn(good, total int64) float64 {
	if !s.Valid() || total <= 0 {
		return 0
	}
	bad := float64(total-good) / float64(total)
	return bad / (1 - s.Target)
}

// AttainmentOf returns the percentage of total observations that were
// good, guarded the same way as Burn: 0 when total <= 0.
func AttainmentOf(good, total int64) float64 {
	if total <= 0 {
		return 0
	}
	return 100 * float64(good) / float64(total)
}

// win is one sim-clock window of a tracker's timeline. Good counts
// observations at or under the SLO threshold — counted exactly at
// record time, never re-derived from buckets. Shed counts requests the
// admission controller refused in this window; they have no latency
// but are bad observations for SLO accounting.
type win struct {
	h    *Histogram
	good int64
	shed int64
}

// Tracker accumulates one stream's latencies: a run-total histogram, a
// windowed timeline, and exact SLO good-counts. Streams are per (name,
// SPU) — the kernel registers one per tenant SPU. A nil *Tracker is a
// valid no-op sink, so workloads record unconditionally.
type Tracker struct {
	Name string
	SPU  core.SPUID
	Obj  SLO

	width    sim.Time
	total    *Histogram
	good     int64 // exact count of observations within Obj.Threshold
	censored int64 // observations that were in-flight at measurement end
	shed     int64 // requests refused by admission control (no latency)
	wins     []win
}

// Record adds one completed request's latency d observed at sim-time
// at (normally the completing process's Finished stamp). Zero-alloc
// except when `at` opens a new window.
func (t *Tracker) Record(at sim.Time, d sim.Time) {
	if t == nil {
		return
	}
	t.record(at, int64(d))
}

// RecordCensored folds an in-flight request observed at sim-time at,
// elapsed ns after it started: a right-censored observation whose true
// latency is at least elapsed. It is recorded as that lower bound and
// counted in Censored, so horizon-bounded runs cannot make a scheme
// that strands requests look faster.
func (t *Tracker) RecordCensored(at sim.Time, elapsed sim.Time) {
	if t == nil {
		return
	}
	t.censored++
	t.record(at, int64(elapsed))
}

// RecordShed folds one request refused by admission control at
// sim-time at. A shed request never got a latency, but hiding it would
// let a load-shedding scheme look better than it is: sheds count in
// the denominator of attainment and burn, never as good.
func (t *Tracker) RecordShed(at sim.Time) {
	if t == nil {
		return
	}
	t.shed++
	t.window(at).shed++
}

// window returns the window containing sim-time at, growing the
// timeline as needed.
func (t *Tracker) window(at sim.Time) *win {
	idx := int(at / t.width)
	if idx < 0 {
		idx = 0
	}
	for len(t.wins) <= idx {
		t.wins = append(t.wins, win{})
	}
	return &t.wins[idx]
}

func (t *Tracker) record(at sim.Time, v int64) {
	t.total.Record(v)
	w := t.window(at)
	if w.h == nil {
		w.h = NewWithPrecision(WindowPrecision)
	}
	w.h.Record(v)
	if t.Obj.Valid() && v <= int64(t.Obj.Threshold) {
		t.good++
		w.good++
	}
}

// Total returns the run-total histogram.
func (t *Tracker) Total() *Histogram {
	if t == nil {
		return nil
	}
	return t.total
}

// Count returns the number of recorded observations (censored
// included).
func (t *Tracker) Count() int64 {
	if t == nil {
		return 0
	}
	return t.total.Count()
}

// Censored returns how many observations were right-censored lower
// bounds rather than completed requests.
func (t *Tracker) Censored() int64 {
	if t == nil {
		return 0
	}
	return t.censored
}

// Good returns the exact count of observations within the SLO
// threshold (0 when no SLO is set).
func (t *Tracker) Good() int64 {
	if t == nil {
		return 0
	}
	return t.good
}

// Shed returns how many requests admission control refused.
func (t *Tracker) Shed() int64 {
	if t == nil {
		return 0
	}
	return t.shed
}

// Observed returns the SLO-accounting denominator: recorded
// observations (censored included) plus shed requests.
func (t *Tracker) Observed() int64 {
	if t == nil {
		return 0
	}
	return t.total.Count() + t.shed
}

// Attainment returns the fraction of observations meeting the SLO, in
// percent (0 when no SLO or no observations). Shed requests count
// against it.
func (t *Tracker) Attainment() float64 {
	if t == nil || !t.Obj.Valid() {
		return 0
	}
	return AttainmentOf(t.good, t.Observed())
}

// BudgetBurn returns the run-total error-budget burn rate, guarded
// against empty trackers (0, never NaN).
func (t *Tracker) BudgetBurn() float64 {
	if t == nil {
		return 0
	}
	return t.Obj.Burn(t.good, t.Observed())
}

// WindowStat is one window of a tracker's percentile timeline.
type WindowStat struct {
	Index      int      // window number: [Index*width, (Index+1)*width)
	Start, End sim.Time // window bounds on the sim clock
	Count      int64
	P50        int64 // ns
	P99        int64 // ns
	P999       int64 // ns
	Good       int64
	Shed       int64 // admission-refused requests in this window
	// Attainment is the window's SLO attainment in percent; BurnRate is
	// the window's error-budget burn: (bad fraction)/(allowed bad
	// fraction), so 1.0 burns the budget exactly as fast as the SLO
	// allows. Both 0 when the tracker has no SLO, and both guarded
	// (never NaN) on empty windows.
	Attainment float64
	BurnRate   float64
}

// Width returns the timeline window width.
func (t *Tracker) Width() sim.Time {
	if t == nil {
		return 0
	}
	return t.width
}

// windowStat builds the exported stats for window i. The burn and
// attainment math funnels through SLO.Burn/AttainmentOf, so boundary
// windows — no samples at all, or sheds with no completions — yield
// defined zeros rather than NaN.
func (t *Tracker) windowStat(i int) WindowStat {
	w := &t.wins[i]
	ws := WindowStat{
		Index: i,
		Start: sim.Time(i) * t.width,
		End:   sim.Time(i+1) * t.width,
		Shed:  w.shed,
		Good:  w.good,
	}
	if w.h != nil {
		ws.Count = w.h.Count()
		if ws.Count > 0 {
			ws.P50 = w.h.Quantile(0.50)
			ws.P99 = w.h.Quantile(0.99)
			ws.P999 = w.h.Quantile(0.999)
		}
	}
	if t.Obj.Valid() {
		ws.Attainment = AttainmentOf(ws.Good, ws.Count+ws.Shed)
		ws.BurnRate = t.Obj.Burn(ws.Good, ws.Count+ws.Shed)
	}
	return ws
}

// Windows returns the non-empty windows of the timeline in time order.
// A window counts as non-empty when it saw completions or sheds.
func (t *Tracker) Windows() []WindowStat {
	if t == nil {
		return nil
	}
	var out []WindowStat
	for i := range t.wins {
		w := &t.wins[i]
		if (w.h == nil || w.h.Count() == 0) && w.shed == 0 {
			continue
		}
		out = append(out, t.windowStat(i))
	}
	return out
}

// WindowAt returns the stats for window idx, whether or not anything
// landed in it — an empty or out-of-range window reads as zero
// observations with zero burn. This is the feedback controller's view:
// it polls the last complete window every tick and must get a defined
// answer when a tenant had no traffic.
func (t *Tracker) WindowAt(idx int) WindowStat {
	if t == nil || idx < 0 || idx >= len(t.wins) {
		ws := WindowStat{Index: idx}
		if idx >= 0 && t != nil {
			ws.Start = sim.Time(idx) * t.width
			ws.End = sim.Time(idx+1) * t.width
		}
		return ws
	}
	return t.windowStat(idx)
}

// Merge folds another tracker's observations into t (totals, windows,
// and SLO counts). Both must share the window width; the SLO of t
// governs. Used by harnesses that shard one stream's recording.
func (t *Tracker) Merge(o *Tracker) {
	if t == nil || o == nil {
		return
	}
	t.total.Merge(o.total)
	t.good += o.good
	t.censored += o.censored
	t.shed += o.shed
	for len(t.wins) < len(o.wins) {
		t.wins = append(t.wins, win{})
	}
	for i := range o.wins {
		ow := &o.wins[i]
		if ow.h == nil && ow.shed == 0 {
			continue
		}
		w := &t.wins[i]
		w.good += ow.good
		w.shed += ow.shed
		if ow.h == nil {
			continue
		}
		if w.h == nil {
			w.h = NewWithPrecision(WindowPrecision)
		}
		w.h.Merge(ow.h)
	}
}

// trackerKey identifies a tracker within a registry.
type trackerKey struct {
	name string
	spu  core.SPUID
}

// Registry owns every latency tracker of one machine, in registration
// order (what makes exports deterministic). A nil *Registry is valid:
// Tracker returns a nil no-op tracker and exports write nothing.
type Registry struct {
	width    sim.Time
	trackers []*Tracker
	idx      map[trackerKey]*Tracker
}

// NewRegistry creates a registry whose timelines use the given window
// width (DefaultWindow when <= 0).
func NewRegistry(width sim.Time) *Registry {
	if width <= 0 {
		width = DefaultWindow
	}
	return &Registry{width: width, idx: make(map[trackerKey]*Tracker)}
}

// Window returns the timeline window width.
func (r *Registry) Window() sim.Time {
	if r == nil {
		return 0
	}
	return r.width
}

// Tracker registers (or retrieves) the tracker for (name, spu).
// Re-registration returns the existing tracker and keeps its SLO, so
// two jobs on one SPU share a stream. Returns nil on a nil registry.
func (r *Registry) Tracker(name string, spu core.SPUID, slo SLO) *Tracker {
	if r == nil {
		return nil
	}
	k := trackerKey{name, spu}
	if t, ok := r.idx[k]; ok {
		return t
	}
	t := &Tracker{Name: name, SPU: spu, Obj: slo, width: r.width, total: New()}
	r.idx[k] = t
	r.trackers = append(r.trackers, t)
	return t
}

// Trackers returns the registered trackers in registration order.
func (r *Registry) Trackers() []*Tracker {
	if r == nil {
		return nil
	}
	return r.trackers
}

// Empty reports whether the registry recorded nothing.
func (r *Registry) Empty() bool {
	if r == nil {
		return true
	}
	for _, t := range r.trackers {
		if t.Count() > 0 {
			return false
		}
	}
	return true
}

// Package latency is the tail-latency half of the observability layer:
// log-bucketed, mergeable, integer-nanosecond histograms (the HDR-style
// structure request-latency monitoring uses), windowed per-SPU
// percentile timelines, and SLO attainment/error-budget tracking.
//
// The paper's argument is about *observed* performance, and what breaks
// first under uncontrolled sharing is the tail (p99/p999), not the
// mean. metrics.Distribution keeps every observation for exact
// quantiles, which is right for rare events (CPU revocations) but
// cannot survive open-arrival request volumes; the histogram here costs
// a fixed few tens of kilobytes no matter how many observations it
// absorbs, records in zero allocations, and merges exactly — two
// halves of a run poured together quantize identically to one
// histogram that saw every value.
//
// Determinism rules (the package contract, tested):
//
//   - Values are integer nanoseconds on the simulation clock; no float
//     enters the recorded state.
//   - Bucket math is pure integer bit manipulation, so the same value
//     always lands in the same bucket on every platform.
//   - Merge is commutative and associative (counts add), so any
//     parallel split of a run's observations reproduces the bytes of
//     the sequential export.
//   - Quantile answers the recorded bucket's upper bound clamped to the
//     exact observed min/max — never an interpolation — so quantile
//     output is integer and stable.
//
// A nil *Tracker (from a nil *Registry, i.e. latency tracking off) is a
// valid no-op sink, following the internal/metrics contract.
package latency

import (
	"fmt"
	"math"
	"math/bits"
)

// DefaultPrecision is the sub-bucket resolution exponent for run-total
// histograms: 2^7 = 128 sub-buckets per power of two, bounding the
// relative quantization error at 1/128 < 0.8%. A histogram at this
// precision spans 1 ns .. ~292 years in 7296 int64 buckets (~57 KB).
const DefaultPrecision = 7

// WindowPrecision is the resolution for per-window histograms, where
// hundreds may exist per run: 2^5 = 32 sub-buckets per power of two
// (≤3.2% error, ~15 KB each) is plenty for a timeline.
const WindowPrecision = 5

// Histogram is a log-linear (HDR-style) histogram of non-negative
// integer nanoseconds. Values below 2·2^precision are recorded exactly
// (one bucket per nanosecond); above that, each power of two is split
// into 2^precision equal sub-buckets, so the relative error of any
// quantile is bounded by 2^-precision. The exact count, sum, min, and
// max are tracked alongside, so Mean, Min, and Max are exact and
// Quantile never answers outside the observed range.
type Histogram struct {
	prec   uint
	m      uint64 // 1 << prec: sub-buckets per power of two
	counts []int64

	count int64
	sum   int64
	min   int64
	max   int64
}

// New returns a histogram at DefaultPrecision.
func New() *Histogram { return NewWithPrecision(DefaultPrecision) }

// NewWithPrecision returns a histogram with 2^prec sub-buckets per
// power of two. prec must be in [1, 16].
func NewWithPrecision(prec uint) *Histogram {
	if prec < 1 || prec > 16 {
		panic(fmt.Sprintf("latency: precision %d out of range [1,16]", prec))
	}
	m := uint64(1) << prec
	// Index ceiling: the top sub-bucket of the widest power of two
	// (k = 63) lands at m*(63-prec) + 2m-1 = m*(65-prec) - 1.
	return &Histogram{prec: prec, m: m, counts: make([]int64, m*(65-uint64(prec)))}
}

// index maps a value to its bucket. Pure integer math: values below 2m
// map to themselves; a larger value with top bit k keeps prec bits of
// mantissa, giving buckets of width 2^(k-prec) within [2^k, 2^(k+1)).
func (h *Histogram) index(v int64) int {
	u := uint64(v)
	if u < 2*h.m {
		return int(u)
	}
	k := uint(bits.Len64(u) - 1)
	return int(h.m*uint64(k-h.prec) + (u >> (k - h.prec)))
}

// bucketMax returns the largest value mapping to bucket idx — the
// quantile answer for that bucket.
func (h *Histogram) bucketMax(idx int) int64 {
	u := uint64(idx)
	if u < 2*h.m {
		return int64(u)
	}
	k := u/h.m + uint64(h.prec) - 1
	sub := u - h.m*(k-uint64(h.prec)) // in [m, 2m)
	return int64((sub+1)<<(k-uint64(h.prec)) - 1)
}

// Record adds one observation. Negative values clamp to zero (a
// latency cannot be negative; the clamp keeps a buggy caller from
// corrupting the bucket math). The bucket array is allocated at New,
// so recording never allocates.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.counts[h.index(v)]++
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the exact sum of all observations in nanoseconds.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the exact smallest observation (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the exact integer mean (sum/count, truncated), 0 when
// empty. Integer so exports stay byte-stable.
func (h *Histogram) Mean() int64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / h.count
}

// Quantile returns the q-quantile (0..1) in nanoseconds: the upper
// bound of the bucket holding the ⌈q·count⌉-th smallest observation,
// clamped to the exact observed [min, max]. 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= target {
			v := h.bucketMax(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Merge folds o into h: counts add bucket-wise and the exact
// aggregates combine. Both histograms must share a precision. Merging
// is commutative and associative, so any grouping of partial
// histograms reproduces the histogram that saw every value.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if o.prec != h.prec {
		panic(fmt.Sprintf("latency: merging histograms of precision %d and %d", o.prec, h.prec))
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
}

// Clone returns an independent snapshot of the histogram.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.counts = make([]int64, len(h.counts))
	copy(c.counts, h.counts)
	return &c
}

// Package core implements the paper's central contribution: the Software
// Performance Unit (SPU) kernel abstraction (§2).
//
// An SPU associates a group of processes with a share of the machine's
// resources. For each resource an SPU carries three levels (§2.3):
//
//   - entitled: the share the SPU is guaranteed by the machine contract;
//   - allowed:  how much it may use right now (raised when idle resources
//     are lent to it, lowered when loans are revoked);
//   - used:     how much it is actually using.
//
// Two default SPUs exist in every system (§2.2): the kernel SPU, whose
// processes and pages have unrestricted access, and the shared SPU, which
// accounts for resources referenced by multiple SPUs (shared pages,
// delayed disk writes). Their cost is effectively borne by all user SPUs,
// because only the remainder is divided among user SPUs.
//
// The enforcement mechanisms live in the substrate packages (sched, mem,
// disk); this package owns identity, accounting, and the sharing-policy
// vocabulary.
package core

import "fmt"

// SPUID identifies an SPU. The kernel and shared SPUs have fixed IDs.
type SPUID int

const (
	// KernelID is the SPU for kernel processes and kernel memory. It has
	// unrestricted access to all resources (§2.2).
	KernelID SPUID = 0
	// SharedID is the SPU that accounts for resources used by multiple
	// SPUs: shared pages and delayed disk writes (§2.2).
	SharedID SPUID = 1
	// FirstUserID is the ID of the first user-created SPU.
	FirstUserID SPUID = 2
)

// IsUser reports whether the ID denotes a user SPU (not kernel/shared).
func (id SPUID) IsUser() bool { return id >= FirstUserID }

// Resource enumerates the resources under performance-isolation control.
type Resource int

const (
	CPU    Resource = iota // CPU time, in units of CPUs
	Memory                 // physical memory, in pages
	DiskBW                 // disk bandwidth, in share weight (per disk)
	NetBW                  // network bandwidth, in share weight (per link)
	NumResources
)

// String returns the resource's name.
func (r Resource) String() string {
	switch r {
	case CPU:
		return "cpu"
	case Memory:
		return "memory"
	case DiskBW:
		return "diskbw"
	case NetBW:
		return "netbw"
	default:
		return fmt.Sprintf("resource(%d)", int(r))
	}
}

// Policy is an SPU's sharing policy (§2.1): what happens to its resources
// when they are idle.
type Policy int

const (
	// ShareNone never lends resources: each SPU behaves like a separate
	// fixed-quota machine. This is the paper's Quo configuration.
	ShareNone Policy = iota
	// ShareIdle lends only idle resources, revoking them when the owner
	// needs them back. This is performance isolation (PIso).
	ShareIdle
	// ShareAll ignores ownership entirely; resources go to whoever asks.
	// This approximates an unmodified SMP kernel.
	ShareAll
)

// String returns the policy's name.
func (p Policy) String() string {
	switch p {
	case ShareNone:
		return "share-none"
	case ShareIdle:
		return "share-idle"
	case ShareAll:
		return "share-all"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Scheme is a whole-machine resource allocation scheme (Table 2). It is a
// convenience that selects the per-SPU policy and the disk scheduling
// algorithm together.
type Scheme int

const (
	// SMP is unconstrained sharing with no isolation: unmodified IRIX 5.3.
	SMP Scheme = iota
	// Quo is a fixed quota for each SPU with no sharing.
	Quo
	// PIso is performance isolation: policies for isolation and sharing.
	PIso
)

// Policy returns the per-SPU sharing policy the scheme implies.
func (s Scheme) Policy() Policy {
	switch s {
	case SMP:
		return ShareAll
	case Quo:
		return ShareNone
	default:
		return ShareIdle
	}
}

// String returns the scheme's name as used in the paper's tables.
func (s Scheme) String() string {
	switch s {
	case SMP:
		return "SMP"
	case Quo:
		return "Quo"
	case PIso:
		return "PIso"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Levels holds the three per-resource amounts of §2.3.
type Levels struct {
	Entitled float64
	Allowed  float64
	Used     float64
}

// Idle returns how much of the entitlement is currently unused (never
// negative).
func (l Levels) Idle() float64 {
	idle := l.Entitled - l.Used
	if idle < 0 {
		return 0
	}
	return idle
}

// Pressure returns how far usage is being held below demand by the
// allowed level; a positive value means the SPU is at its limit.
func (l Levels) Pressure() float64 {
	p := l.Used - l.Entitled
	if p < 0 {
		return 0
	}
	return p
}

// SPU is one software performance unit.
type SPU struct {
	id     SPUID
	name   string
	policy Policy
	weight float64 // relative share of the machine (1.0 = one equal share)
	share  float64 // dynamic share; 0 means "use weight" (static contract)
	levels [NumResources]Levels
	active bool
	mgr    *Manager // owning manager; invalidates its active-user cache
}

// ID returns the SPU's identifier.
func (s *SPU) ID() SPUID { return s.id }

// Name returns the SPU's human-readable name.
func (s *SPU) Name() string { return s.name }

// Policy returns the SPU's sharing policy.
func (s *SPU) Policy() Policy { return s.policy }

// SetPolicy changes the SPU's sharing policy. The paper allows this to be
// set per SPU to customize behaviour (§2.1).
func (s *SPU) SetPolicy(p Policy) { s.policy = p }

// Weight returns the SPU's relative share weight.
func (s *SPU) Weight() float64 { return s.weight }

// Share returns the SPU's effective division share: the dynamic share
// set by an entitlement controller, or the static weight when no
// controller has retuned this SPU. Every entitlement division (CPU
// homes, memory frames, disk bandwidth) goes through Share, so a
// controller retune moves all three resources coherently while
// weight remains the immutable contract the conservation law is
// stated against.
func (s *SPU) Share() float64 {
	if s.share > 0 {
		return s.share
	}
	return s.weight
}

// SetShare sets the dynamic share. Non-positive values panic: a
// controller must keep every SPU above its floor, and "back to
// static" is expressed by ClearShare, not by zero.
func (s *SPU) SetShare(v float64) {
	if v <= 0 {
		panic(fmt.Sprintf("core: SPU %q share set to non-positive %g", s.name, v))
	}
	s.share = v
}

// ClearShare reverts the SPU to its static weight.
func (s *SPU) ClearShare() { s.share = 0 }

// ShareSet reports whether a dynamic share is in effect.
func (s *SPU) ShareSet() bool { return s.share > 0 }

// Active reports whether the SPU is active (has or may have processes).
// Suspended SPUs keep their identity but receive no resource division.
func (s *SPU) Active() bool { return s.active }

// Suspend marks the SPU inactive (§2.1: SPUs "could be suspended when
// they have no active processes and awakened at a later time").
func (s *SPU) Suspend() {
	s.active = false
	if s.mgr != nil {
		s.mgr.activeDirty = true
	}
}

// Wake marks the SPU active again.
func (s *SPU) Wake() {
	s.active = true
	if s.mgr != nil {
		s.mgr.activeDirty = true
	}
}

// Levels returns the current levels for a resource.
func (s *SPU) Levels(r Resource) Levels { return s.levels[r] }

// Entitled returns the entitled level for a resource.
func (s *SPU) Entitled(r Resource) float64 { return s.levels[r].Entitled }

// Allowed returns the allowed level for a resource.
func (s *SPU) Allowed(r Resource) float64 { return s.levels[r].Allowed }

// Used returns the used level for a resource.
func (s *SPU) Used(r Resource) float64 { return s.levels[r].Used }

// SetEntitled sets the entitled level and clamps allowed to at least the
// new entitlement (an SPU may always use what it is entitled to).
func (s *SPU) SetEntitled(r Resource, v float64) {
	s.levels[r].Entitled = v
	if s.levels[r].Allowed < v {
		s.levels[r].Allowed = v
	}
}

// SetAllowed sets the allowed level. Lowering it below the entitled level
// is a contract violation and panics; the sharing policy may only lend
// resources above the entitlement.
func (s *SPU) SetAllowed(r Resource, v float64) {
	if v < s.levels[r].Entitled {
		panic(fmt.Sprintf("core: SPU %q allowed %s set to %g, below entitled %g",
			s.name, r, v, s.levels[r].Entitled))
	}
	s.levels[r].Allowed = v
}

// Charge adds delta (which may be negative) to the used level. Usage can
// never go negative; that would indicate double-free accounting.
func (s *SPU) Charge(r Resource, delta float64) {
	u := s.levels[r].Used + delta
	if u < -1e-9 {
		panic(fmt.Sprintf("core: SPU %q %s usage went negative (%g)", s.name, r, u))
	}
	if u < 0 {
		u = 0
	}
	s.levels[r].Used = u
}

// CanUse reports whether the SPU may acquire amount more of the resource
// under its allowed level. The kernel SPU is never limited (§2.2), and a
// ShareAll SPU ignores limits by definition.
func (s *SPU) CanUse(r Resource, amount float64) bool {
	if s.id == KernelID || s.policy == ShareAll {
		return true
	}
	return s.levels[r].Used+amount <= s.levels[r].Allowed+1e-9
}

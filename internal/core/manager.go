package core

import "fmt"

// Manager is the SPU table for one machine: the kernel and shared SPUs
// plus any user SPUs, with helpers for dividing resources according to
// the sharing contract.
type Manager struct {
	spus []*SPU

	// activeUsers caches the ActiveUsers result; the policy ticks ask for
	// it every period, and rebuilding the slice each time put a steady
	// allocation on the kernel's periodic path. SPU creation and
	// suspend/wake invalidate it.
	activeUsers []*SPU
	activeDirty bool

	// DivideIntegral scratch, reused across policy ticks.
	sharesBuf []int
	fracsBuf  []frac
}

type frac struct {
	idx int
	f   float64
}

// NewManager creates a manager pre-populated with the kernel and shared
// SPUs.
func NewManager() *Manager {
	m := &Manager{activeDirty: true}
	m.spus = append(m.spus,
		&SPU{id: KernelID, name: "kernel", policy: ShareAll, active: true, mgr: m},
		&SPU{id: SharedID, name: "shared", policy: ShareNone, active: true, mgr: m},
	)
	return m
}

// NewSPU creates a user SPU with the given relative weight (1.0 is one
// equal share; §2.1's "project A owns a third" is weight 1 vs weight 2)
// and sharing policy. SPUs can be created dynamically at any time.
func (m *Manager) NewSPU(name string, weight float64, policy Policy) *SPU {
	if weight <= 0 {
		panic(fmt.Sprintf("core: SPU %q with non-positive weight %g", name, weight))
	}
	s := &SPU{
		id:     SPUID(len(m.spus)),
		name:   name,
		policy: policy,
		weight: weight,
		active: true,
		mgr:    m,
	}
	m.spus = append(m.spus, s)
	m.activeDirty = true
	return s
}

// Get returns the SPU with the given ID, or panics if it does not exist —
// a dangling SPUID is a kernel-model bug, not a runtime condition.
func (m *Manager) Get(id SPUID) *SPU {
	if int(id) < 0 || int(id) >= len(m.spus) {
		panic(fmt.Sprintf("core: no SPU with id %d", id))
	}
	return m.spus[id]
}

// Kernel returns the kernel SPU.
func (m *Manager) Kernel() *SPU { return m.spus[KernelID] }

// Shared returns the shared SPU.
func (m *Manager) Shared() *SPU { return m.spus[SharedID] }

// All returns every SPU including kernel and shared.
func (m *Manager) All() []*SPU { return m.spus }

// Users returns the user SPUs in creation order.
func (m *Manager) Users() []*SPU {
	if len(m.spus) <= int(FirstUserID) {
		return nil
	}
	return m.spus[FirstUserID:]
}

// ActiveUsers returns the user SPUs that are currently active. The
// returned slice is a cache owned by the manager, valid until the next
// SPU creation or suspend/wake — callers iterate it, they must not
// mutate or retain it across those events.
func (m *Manager) ActiveUsers() []*SPU {
	if m.activeDirty {
		m.activeUsers = m.activeUsers[:0]
		for _, s := range m.Users() {
			if s.active {
				m.activeUsers = append(m.activeUsers, s)
			}
		}
		m.activeDirty = false
	}
	return m.activeUsers
}

// TotalWeight returns the sum of active user SPU weights.
func (m *Manager) TotalWeight() float64 {
	var w float64
	for _, s := range m.ActiveUsers() {
		w += s.weight
	}
	return w
}

// TotalShare returns the sum of active user SPU effective shares.
// With no controller retunes in effect this equals TotalWeight, and
// the division helpers below produce bit-identical results to the
// static weight-driven math.
func (m *Manager) TotalShare() float64 {
	var w float64
	for _, s := range m.ActiveUsers() {
		w += s.Share()
	}
	return w
}

// Divide splits total units of a resource among the active user SPUs in
// proportion to their effective shares (static weights unless a
// controller retuned them), setting each SPU's entitled and allowed
// levels. It implements the machine's sharing contract (§2.1). Resources
// already consumed by the kernel and shared SPUs should be subtracted by
// the caller before dividing, so that their cost is borne by everyone
// (§2.2).
func (m *Manager) Divide(r Resource, total float64) {
	users := m.ActiveUsers()
	tw := m.TotalShare()
	if tw == 0 {
		return
	}
	for _, s := range users {
		share := total * s.Share() / tw
		s.levels[r].Entitled = share
		s.levels[r].Allowed = share
	}
}

// DivideIntegral splits an integral resource (such as whole pages or
// whole CPUs) among active user SPUs by weight, distributing remainder
// units one each to the SPUs with the largest fractional parts (largest
// remainder method), earlier-created SPUs first on ties. The shares sum
// exactly to total. The returned slice is manager-owned scratch, valid
// until the next DivideIntegral call.
func (m *Manager) DivideIntegral(r Resource, total int) []int {
	users := m.ActiveUsers()
	tw := m.TotalShare()
	if cap(m.sharesBuf) < len(users) {
		m.sharesBuf = make([]int, len(users))
		m.fracsBuf = make([]frac, len(users))
	}
	shares := m.sharesBuf[:len(users)]
	if tw == 0 || total <= 0 {
		for i, s := range users {
			shares[i] = 0
			s.levels[r].Entitled = 0
			if s.levels[r].Allowed < 0 {
				s.levels[r].Allowed = 0
			}
		}
		return shares
	}
	fracs := m.fracsBuf[:len(users)]
	assigned := 0
	for i, s := range users {
		exact := float64(total) * s.Share() / tw
		shares[i] = int(exact)
		fracs[i] = frac{i, exact - float64(shares[i])}
		assigned += shares[i]
	}
	// Hand out the remainder by largest fractional part, stable on ties.
	for assigned < total {
		best := -1
		for i := range fracs {
			if best == -1 || fracs[i].f > fracs[best].f+1e-12 {
				best = i
			}
		}
		shares[fracs[best].idx]++
		fracs[best].f = -1
		assigned++
	}
	for i, s := range users {
		s.levels[r].Entitled = float64(shares[i])
		s.levels[r].Allowed = float64(shares[i])
	}
	return shares
}

// TotalUsed sums the used level of a resource across all SPUs.
func (m *Manager) TotalUsed(r Resource) float64 {
	var u float64
	for _, s := range m.spus {
		u += s.levels[r].Used
	}
	return u
}

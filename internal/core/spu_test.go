package core

import (
	"testing"
	"testing/quick"
)

func TestDefaultSPUs(t *testing.T) {
	m := NewManager()
	if m.Kernel().ID() != KernelID || m.Kernel().Name() != "kernel" {
		t.Fatal("kernel SPU misconfigured")
	}
	if m.Shared().ID() != SharedID || m.Shared().Name() != "shared" {
		t.Fatal("shared SPU misconfigured")
	}
	if len(m.Users()) != 0 {
		t.Fatal("fresh manager should have no user SPUs")
	}
}

func TestSPUIDClasses(t *testing.T) {
	if KernelID.IsUser() || SharedID.IsUser() {
		t.Fatal("default SPUs must not be user SPUs")
	}
	if !FirstUserID.IsUser() {
		t.Fatal("FirstUserID must be a user SPU")
	}
}

func TestNewSPUAssignsSequentialIDs(t *testing.T) {
	m := NewManager()
	a := m.NewSPU("a", 1, ShareIdle)
	b := m.NewSPU("b", 1, ShareIdle)
	if a.ID() != FirstUserID || b.ID() != FirstUserID+1 {
		t.Fatalf("ids = %d, %d", a.ID(), b.ID())
	}
	if m.Get(a.ID()) != a || m.Get(b.ID()) != b {
		t.Fatal("Get does not round-trip")
	}
}

func TestNewSPURejectsBadWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewManager().NewSPU("bad", 0, ShareIdle)
}

func TestGetPanicsOnUnknownID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewManager().Get(99)
}

func TestLevelsIdleAndPressure(t *testing.T) {
	l := Levels{Entitled: 10, Allowed: 10, Used: 4}
	if l.Idle() != 6 {
		t.Fatalf("Idle = %g", l.Idle())
	}
	if l.Pressure() != 0 {
		t.Fatalf("Pressure = %g", l.Pressure())
	}
	l.Used = 13
	if l.Idle() != 0 {
		t.Fatalf("over-used Idle = %g", l.Idle())
	}
	if l.Pressure() != 3 {
		t.Fatalf("Pressure = %g", l.Pressure())
	}
}

func TestChargeAndCanUse(t *testing.T) {
	m := NewManager()
	s := m.NewSPU("u", 1, ShareIdle)
	s.SetEntitled(Memory, 100)
	if !s.CanUse(Memory, 100) {
		t.Fatal("should be able to use full entitlement")
	}
	s.Charge(Memory, 100)
	if s.CanUse(Memory, 1) {
		t.Fatal("should be denied beyond allowed")
	}
	s.SetAllowed(Memory, 150) // a loan
	if !s.CanUse(Memory, 50) {
		t.Fatal("loan should raise the limit")
	}
	s.Charge(Memory, -100)
	if s.Used(Memory) != 0 {
		t.Fatalf("Used = %g", s.Used(Memory))
	}
}

func TestChargePanicsOnNegativeUsage(t *testing.T) {
	m := NewManager()
	s := m.NewSPU("u", 1, ShareIdle)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Charge(Memory, -1)
}

func TestSetAllowedBelowEntitledPanics(t *testing.T) {
	m := NewManager()
	s := m.NewSPU("u", 1, ShareIdle)
	s.SetEntitled(CPU, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.SetAllowed(CPU, 3)
}

func TestKernelSPUUnlimited(t *testing.T) {
	m := NewManager()
	k := m.Kernel()
	if !k.CanUse(Memory, 1e12) {
		t.Fatal("kernel SPU must have unrestricted access (§2.2)")
	}
}

func TestShareAllIgnoresLimits(t *testing.T) {
	m := NewManager()
	s := m.NewSPU("smp", 1, ShareAll)
	s.SetEntitled(Memory, 10)
	s.Charge(Memory, 10)
	if !s.CanUse(Memory, 100) {
		t.Fatal("ShareAll SPU must not be limited")
	}
}

func TestSuspendWake(t *testing.T) {
	m := NewManager()
	a := m.NewSPU("a", 1, ShareIdle)
	b := m.NewSPU("b", 1, ShareIdle)
	a.Suspend()
	act := m.ActiveUsers()
	if len(act) != 1 || act[0] != b {
		t.Fatalf("ActiveUsers = %v", act)
	}
	if m.TotalWeight() != 1 {
		t.Fatalf("TotalWeight = %g", m.TotalWeight())
	}
	a.Wake()
	if len(m.ActiveUsers()) != 2 {
		t.Fatal("wake did not restore SPU")
	}
}

func TestDivideEqualShares(t *testing.T) {
	m := NewManager()
	for i := 0; i < 4; i++ {
		m.NewSPU("u", 1, ShareIdle)
	}
	m.Divide(Memory, 1000)
	for _, s := range m.Users() {
		if s.Entitled(Memory) != 250 || s.Allowed(Memory) != 250 {
			t.Fatalf("SPU %d entitled %g allowed %g", s.ID(), s.Entitled(Memory), s.Allowed(Memory))
		}
	}
}

func TestDivideUnequalShares(t *testing.T) {
	// §2.1: project A owns a third, project B owns two thirds.
	m := NewManager()
	a := m.NewSPU("A", 1, ShareIdle)
	b := m.NewSPU("B", 2, ShareIdle)
	m.Divide(CPU, 9)
	if a.Entitled(CPU) != 3 || b.Entitled(CPU) != 6 {
		t.Fatalf("entitled = %g, %g", a.Entitled(CPU), b.Entitled(CPU))
	}
}

func TestDivideIntegralExact(t *testing.T) {
	m := NewManager()
	for i := 0; i < 3; i++ {
		m.NewSPU("u", 1, ShareIdle)
	}
	shares := m.DivideIntegral(Memory, 10)
	sum := 0
	for _, s := range shares {
		sum += s
	}
	if sum != 10 {
		t.Fatalf("integral shares sum to %d, want 10", sum)
	}
	// 10/3: shares must be 4,3,3 in some order with the extra going to
	// the earliest SPU on a tie.
	if shares[0] != 4 || shares[1] != 3 || shares[2] != 3 {
		t.Fatalf("shares = %v", shares)
	}
}

func TestDivideIntegralSkipsSuspended(t *testing.T) {
	m := NewManager()
	a := m.NewSPU("a", 1, ShareIdle)
	b := m.NewSPU("b", 1, ShareIdle)
	a.Suspend()
	m.DivideIntegral(CPU, 8)
	if b.Entitled(CPU) != 8 {
		t.Fatalf("b entitled %g, want all 8", b.Entitled(CPU))
	}
	if a.Entitled(CPU) != 0 {
		t.Fatalf("suspended a entitled %g, want 0", a.Entitled(CPU))
	}
}

// Property: integral division always sums to the total and each share is
// within one unit of the exact proportional share.
func TestPropertyDivideIntegral(t *testing.T) {
	f := func(weights []uint8, total uint16) bool {
		m := NewManager()
		var ws []float64
		for _, w := range weights {
			if w == 0 {
				continue
			}
			ws = append(ws, float64(w))
			m.NewSPU("u", float64(w), ShareIdle)
		}
		if len(ws) == 0 {
			return true
		}
		tot := int(total % 4096)
		shares := m.DivideIntegral(Memory, tot)
		sum := 0.0
		tw := 0.0
		for _, w := range ws {
			tw += w
		}
		for i, s := range shares {
			sum += float64(s)
			exact := float64(tot) * ws[i] / tw
			if float64(s) < exact-1.0-1e-9 || float64(s) > exact+1.0+1e-9 {
				return false
			}
		}
		return int(sum) == tot
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemePolicyMapping(t *testing.T) {
	if SMP.Policy() != ShareAll || Quo.Policy() != ShareNone || PIso.Policy() != ShareIdle {
		t.Fatal("scheme->policy mapping wrong")
	}
}

func TestStringers(t *testing.T) {
	if CPU.String() != "cpu" || Memory.String() != "memory" || DiskBW.String() != "diskbw" || NetBW.String() != "netbw" {
		t.Fatal("resource names")
	}
	if Resource(99).String() == "" {
		t.Fatal("unknown resource should still render")
	}
	if SMP.String() != "SMP" || Quo.String() != "Quo" || PIso.String() != "PIso" {
		t.Fatal("scheme names")
	}
	if ShareNone.String() != "share-none" || ShareIdle.String() != "share-idle" || ShareAll.String() != "share-all" {
		t.Fatal("policy names")
	}
	if Policy(99).String() == "" || Scheme(99).String() == "" {
		t.Fatal("unknown enum values should still render")
	}
}

func TestSetPolicyPerSPU(t *testing.T) {
	m := NewManager()
	s := m.NewSPU("u", 1, ShareIdle)
	s.SetPolicy(ShareNone)
	if s.Policy() != ShareNone {
		t.Fatal("SetPolicy did not take")
	}
}

func TestTotalUsed(t *testing.T) {
	m := NewManager()
	a := m.NewSPU("a", 1, ShareIdle)
	b := m.NewSPU("b", 1, ShareIdle)
	a.SetEntitled(Memory, 50)
	b.SetEntitled(Memory, 50)
	a.Charge(Memory, 10)
	b.Charge(Memory, 20)
	m.Shared().Charge(Memory, 5)
	if got := m.TotalUsed(Memory); got != 35 {
		t.Fatalf("TotalUsed = %g", got)
	}
}

// Package invariant makes the paper's guarantees self-checking. The
// simulator's claim is an *invariant* — an isolated SPU receives its
// entitled CPU/memory/disk share within a slice of granularity, loans
// are revocable within a tick, and the conservation laws (CPU time,
// page frames, disk sectors) those guarantees rest on always hold. The
// Auditor re-verifies all of it every clock tick and at every
// loan/revoke/reclaim boundary, so a bug (or an injected fault driving
// the kernel somewhere unvalidated) surfaces at the instant the books
// stop balancing instead of as a mysteriously wrong experiment table.
//
// The subsystem-local checks live with the state they check —
// sched.AuditInvariants, mem.AuditInvariants, disk.Audit — so they can
// see unexported fields; this package orchestrates them, adds the
// cross-cutting checks (clock monotonicity, SPU resource-level sanity),
// and turns failures into structured Violations wired into metrics and
// the trace.
package invariant

import (
	"fmt"
	"sort"
	"strings"

	"perfiso/internal/control"
	"perfiso/internal/core"
	"perfiso/internal/disk"
	"perfiso/internal/lock"
	"perfiso/internal/mem"
	"perfiso/internal/metrics"
	"perfiso/internal/profile"
	"perfiso/internal/sched"
	"perfiso/internal/sim"
	"perfiso/internal/trace"
)

// Violation is one failed invariant check, with enough context to
// reproduce and diagnose it: when, which check, which SPU (NoSPU for
// machine-wide checks), and a snapshot of the relevant metrics at the
// moment of failure.
type Violation struct {
	At       sim.Time
	Check    string // subsystem or check name: "sched", "mem", "disk0", "clock", "levels"
	SPU      core.SPUID
	Boundary string // what triggered the check: "tick", "loan", "revoke", ...
	Message  string
	Snapshot map[string]float64
}

// NoSPU marks a violation that is not attributable to one SPU.
const NoSPU = core.SPUID(-1)

// Error renders the violation as one line, with the snapshot keys in
// sorted order so output is deterministic.
func (v Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invariant violation at %s [%s", v.At, v.Check)
	if v.SPU != NoSPU {
		fmt.Fprintf(&b, " spu%d", v.SPU)
	}
	fmt.Fprintf(&b, " on %s]: %s", v.Boundary, v.Message)
	if len(v.Snapshot) > 0 {
		keys := make([]string, 0, len(v.Snapshot))
		for k := range v.Snapshot {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString(" {")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s=%g", k, v.Snapshot[k])
		}
		b.WriteString("}")
	}
	return b.String()
}

// Targets is the machine the auditor checks. Sched and Mem are
// required; Disks may be empty and SPUs nil (levels checks skipped).
type Targets struct {
	Eng   *sim.Engine
	SPUs  *core.Manager
	Sched *sched.Scheduler
	Mem   *mem.Manager
	Disks []*disk.Disk
	// Profile, when non-nil, adds the profiler's conservation audit:
	// every finished task's buckets must sum exactly to its response
	// time (integer nanoseconds, no epsilon).
	Profile *profile.Profiler
	// Locks, when non-nil, adds the kernel-lock conservation laws
	// (internal/lock): holders+waiters accounting, reader/writer
	// exclusion, liveness of queued waiters, revocability of loaned
	// hold time, and per-SPU ledger conservation.
	Locks *lock.Table
	// Control, when non-nil, adds the SLO controller's actuation laws:
	// share conservation under retune, minimum-guarantee floors, and
	// the bounded per-tick movement cap.
	Control *control.Controller
}

// Auditor runs invariant checks against a machine. In fail-fast mode
// (the default) the first violation panics, so experiments and tests
// crash at the moment of inconsistency; in collect mode (the soak
// harness) violations accumulate up to a cap and the run continues.
type Auditor struct {
	t Targets

	// Collect accumulates violations instead of panicking.
	Collect bool
	// Limit caps collected violations (0 means DefaultViolationLimit);
	// past it, checks still count but stop recording.
	Limit int
	// Metrics, when non-nil, counts checks and violations.
	Metrics *metrics.Registry
	// Trace, when non-nil, records each violation as an Audit event.
	Trace *trace.Tracer

	lastNow    sim.Time
	checks     int64
	violations []Violation
	truncated  int64 // violations dropped past Limit
}

// DefaultViolationLimit bounds collect-mode memory use: a broken
// invariant re-fires on every subsequent check, and one repro needs the
// first few instances, not millions.
const DefaultViolationLimit = 64

// New creates an auditor for the machine.
func New(t Targets) *Auditor {
	return &Auditor{t: t}
}

// Checks returns how many check passes have run.
func (a *Auditor) Checks() int64 { return a.checks }

// Violations returns the collected violations (empty in fail-fast mode,
// which panics on the first one).
func (a *Auditor) Violations() []Violation { return a.violations }

// Truncated returns how many violations were dropped after Limit.
func (a *Auditor) Truncated() int64 { return a.truncated }

// CheckAll runs every invariant: clock monotonicity, SPU resource
// levels, scheduler conservation and isolation, memory-frame
// conservation and limits, and disk accounting. boundary names the
// trigger ("tick", or a sharing-boundary reason).
func (a *Auditor) CheckAll(boundary string) {
	a.begin()
	a.checkClock(boundary)
	a.checkLevels(boundary)
	a.checkSched(boundary)
	a.checkMem(boundary)
	for i, d := range a.t.Disks {
		if err := d.Audit(); err != nil {
			a.report(fmt.Sprintf("disk%d", i), NoSPU, boundary, err)
		}
	}
	if a.t.Profile != nil {
		if err := a.t.Profile.AuditConservation(); err != nil {
			a.report("profile", NoSPU, boundary, err)
		}
	}
	a.checkLocks(boundary)
	a.checkControl(boundary)
}

// checkControl verifies the SLO controller's actuation laws hold after
// every tick: a retune redistributes shares, it never changes their
// sum (conservation — Σ share = Σ weight over active users); no SPU's
// share falls below its Floor×weight minimum guarantee; and the total
// share moved by the last tick respects the per-SPU movement bound, so
// the controller can never slam the machine in one step.
func (a *Auditor) checkControl(boundary string) {
	c := a.t.Control
	if c == nil || a.t.SPUs == nil {
		return
	}
	cfg := c.Config()
	const eps = 1e-9
	var shares, weights, maxMove float64
	for _, u := range a.t.SPUs.ActiveUsers() {
		shares += u.Share()
		weights += u.Weight()
		maxMove += cfg.MaxTickFrac * u.Weight()
		if floor := cfg.Floor * u.Weight(); u.Share() < floor-eps {
			a.report("control", u.ID(), boundary,
				fmt.Errorf("share %g below minimum-guarantee floor %g (weight %g)",
					u.Share(), floor, u.Weight()))
		}
	}
	if d := shares - weights; d > eps || d < -eps {
		a.report("control", NoSPU, boundary,
			fmt.Errorf("retune broke share conservation: Σshare %g != Σweight %g", shares, weights))
	}
	if moved := c.LastTickDelta(); moved > maxMove+eps {
		a.report("control", NoSPU, boundary,
			fmt.Errorf("tick moved %g share, beyond the %g actuation bound", moved, maxMove))
	}
}

// checkLocks runs every registered lock's and gate's conservation
// laws (see lock.Lock.Audit and lock.Gate.Audit).
func (a *Auditor) checkLocks(boundary string) {
	if a.t.Locks == nil {
		return
	}
	if err := a.t.Locks.Audit(); err != nil {
		a.report("locks", NoSPU, boundary, err)
	}
}

// CheckSched runs only the cheap scheduler-scope checks (plus clock and
// levels). The scheduler's boundary hook calls this on every loan and
// revocation, where a full O(pages) memory sweep would be unaffordable.
func (a *Auditor) CheckSched(boundary string) {
	a.begin()
	a.checkClock(boundary)
	a.checkLevels(boundary)
	a.checkSched(boundary)
}

// CheckMem runs only the memory-scope checks (plus clock and levels).
// The memory manager's boundary hook calls this at loan revocations,
// policy ticks, and fault-driven frame changes.
func (a *Auditor) CheckMem(boundary string) {
	a.begin()
	a.checkClock(boundary)
	a.checkLevels(boundary)
	a.checkMem(boundary)
}

func (a *Auditor) begin() {
	a.checks++
	a.Metrics.Counter(metrics.KeyInvariantChecks, metrics.NoSPU).Inc()
}

// checkClock verifies the event clock never runs backwards across
// checks (the engine panics on within-run reversal; this catches a
// snapshot/restore or harness bug re-entering an old time).
func (a *Auditor) checkClock(boundary string) {
	now := a.t.Eng.Now()
	if now < a.lastNow {
		a.report("clock", NoSPU, boundary,
			fmt.Errorf("clock ran backwards: %s after %s", now, a.lastNow))
	}
	a.lastNow = now
}

// checkLevels verifies every SPU's resource levels are sane: usage and
// entitlement never negative, and the allowed level never below the
// entitlement (an SPU can always use what it is entitled to, §2.3).
func (a *Auditor) checkLevels(boundary string) {
	if a.t.SPUs == nil {
		return
	}
	const eps = 1e-9
	for _, u := range a.t.SPUs.All() {
		for r := core.Resource(0); r < core.NumResources; r++ {
			ent, alw, used := u.Entitled(r), u.Allowed(r), u.Used(r)
			switch {
			case ent < -eps:
				a.report("levels", u.ID(), boundary,
					fmt.Errorf("%s entitlement is negative: %g", r, ent))
			case used < -eps:
				a.report("levels", u.ID(), boundary,
					fmt.Errorf("%s usage is negative: %g", r, used))
			case alw < ent-eps:
				a.report("levels", u.ID(), boundary,
					fmt.Errorf("%s allowed %g below entitlement %g", r, alw, ent))
			}
		}
	}
}

func (a *Auditor) checkSched(boundary string) {
	if a.t.Sched == nil {
		return
	}
	if err := a.t.Sched.AuditInvariants(); err != nil {
		a.report("sched", NoSPU, boundary, err)
	}
}

func (a *Auditor) checkMem(boundary string) {
	if a.t.Mem == nil {
		return
	}
	// Ticks and sharing boundaries get the O(#SPUs) incremental check;
	// the final sweep pays for the exhaustive O(pages) scan that proves
	// the incremental counters never drifted.
	err := a.t.Mem.AuditInvariants()
	if boundary == "final" {
		err = a.t.Mem.AuditDeep()
	}
	if err != nil {
		a.report("mem", NoSPU, boundary, err)
	}
}

// report turns a failed check into a Violation: counted, traced, and
// either panicking (fail-fast) or collected (soak).
func (a *Auditor) report(check string, spu core.SPUID, boundary string, err error) {
	v := Violation{
		At:       a.t.Eng.Now(),
		Check:    check,
		SPU:      spu,
		Boundary: boundary,
		Message:  err.Error(),
		Snapshot: a.snapshot(),
	}
	a.Metrics.Counter(metrics.KeyInvariantViolations, metrics.NoSPU).Inc()
	a.Trace.Emit(trace.Audit, check, "violation", v.Message)
	if !a.Collect {
		panic(v)
	}
	limit := a.Limit
	if limit <= 0 {
		limit = DefaultViolationLimit
	}
	if len(a.violations) >= limit {
		a.truncated++
		return
	}
	a.violations = append(a.violations, v)
}

// snapshot captures the headline machine metrics at violation time, so
// a violation report stands alone without re-running the scenario.
func (a *Auditor) snapshot() map[string]float64 {
	s := make(map[string]float64)
	if m := a.t.Mem; m != nil {
		s["mem.used"] = float64(m.UsedPages())
		s["mem.free"] = float64(m.FreePages())
		s["mem.waiters"] = float64(m.Waiters())
	}
	if sc := a.t.Sched; sc != nil {
		s["sched.idle"] = float64(sc.IdleCPUs())
		s["sched.runq"] = float64(sc.RunqueueLen())
		s["sched.loans"] = float64(sc.Stat.Loans)
		s["sched.revocations"] = float64(sc.Stat.Revocations)
	}
	for i, d := range a.t.Disks {
		s[fmt.Sprintf("disk%d.queue", i)] = float64(d.QueueLen())
	}
	return s
}

package invariant

import (
	"fmt"

	"perfiso/internal/sim"
)

// Watchdog defaults. Real workloads dispatch a few hundred events per
// simulated tick; the thresholds sit orders of magnitude above that so
// only a genuinely wedged machine trips them.
const (
	// DefaultMaxStall is how many events may fire without the clock
	// advancing before the run is declared livelocked (two subsystems
	// re-waking each other at the same instant forever).
	DefaultMaxStall = 1 << 20
	// DefaultStormWindow / DefaultStormEvents bound the event rate: more
	// than StormEvents dispatches inside one StormWindow of simulated
	// time is an event storm (for example a zero-delay retry loop that
	// does advance the clock, one nanosecond at a time).
	DefaultStormWindow = 10 * sim.Millisecond
	DefaultStormEvents = 1 << 21
)

// TripError reports why the watchdog stopped a run. It is delivered by
// panic from kernel.Run so a wedged simulation cannot also wedge the
// host process; the soak harness recovers it by type.
type TripError struct {
	Kind   string // "livelock" or "event-storm"
	At     sim.Time
	Events uint64 // events observed in the offending window
}

func (e *TripError) Error() string {
	return fmt.Sprintf("watchdog: %s at %s after %d events", e.Kind, e.At, e.Events)
}

// Watchdog detects a wedged simulation from the outside: livelock (the
// clock stops while events keep firing) and event storms (the clock
// crawls while event volume explodes). It inspects nothing but the
// clock and the dispatch counter, so it cannot be fooled by a subsystem
// whose internal state looks healthy.
type Watchdog struct {
	MaxStall    uint64   // events tolerated with no time progress (0 = default)
	StormWindow sim.Time // event-rate measurement window (0 = default)
	StormEvents uint64   // events tolerated per window (0 = default)

	lastNow   sim.Time
	stallBase uint64
	winStart  sim.Time
	winBase   uint64
}

// NewWatchdog returns a watchdog with default thresholds.
func NewWatchdog() *Watchdog { return &Watchdog{} }

// Observe feeds the watchdog one sample — the kernel calls it after
// every event dispatch with the current clock and total dispatch count.
// It returns a *TripError when a threshold is crossed, else nil. Two
// integer comparisons on the happy path; cost is negligible.
func (w *Watchdog) Observe(now sim.Time, dispatched uint64) error {
	maxStall := w.MaxStall
	if maxStall == 0 {
		maxStall = DefaultMaxStall
	}
	if now != w.lastNow {
		w.lastNow = now
		w.stallBase = dispatched
	} else if dispatched-w.stallBase > maxStall {
		return &TripError{Kind: "livelock", At: now, Events: dispatched - w.stallBase}
	}

	window := w.StormWindow
	if window == 0 {
		window = DefaultStormWindow
	}
	stormEvents := w.StormEvents
	if stormEvents == 0 {
		stormEvents = DefaultStormEvents
	}
	if now-w.winStart >= window {
		w.winStart = now
		w.winBase = dispatched
	} else if dispatched-w.winBase > stormEvents {
		return &TripError{Kind: "event-storm", At: now, Events: dispatched - w.winBase}
	}
	return nil
}

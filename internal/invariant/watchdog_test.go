package invariant

import (
	"errors"
	"testing"

	"perfiso/internal/sim"
)

func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	w := NewWatchdog()
	var dispatched uint64
	for i := 0; i < 10000; i++ {
		dispatched += 50 // a busy but sane event rate
		if err := w.Observe(sim.Time(i)*sim.Millisecond, dispatched); err != nil {
			t.Fatalf("tripped on healthy run at step %d: %v", i, err)
		}
	}
}

func TestWatchdogTripsOnLivelock(t *testing.T) {
	w := &Watchdog{MaxStall: 100}
	now := 5 * sim.Second
	var err error
	var n uint64
	for n = 1; n <= 200; n++ {
		if err = w.Observe(now, n); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("frozen clock never tripped the watchdog")
	}
	var trip *TripError
	if !errors.As(err, &trip) {
		t.Fatalf("error %T, want *TripError", err)
	}
	if trip.Kind != "livelock" || trip.At != now {
		t.Fatalf("trip = %+v", trip)
	}
	if n <= 100 {
		t.Fatalf("tripped after only %d events with MaxStall 100", n)
	}
}

func TestWatchdogLivelockResetsOnProgress(t *testing.T) {
	w := &Watchdog{MaxStall: 100, StormEvents: 1 << 40}
	var dispatched uint64
	for step := 0; step < 50; step++ {
		now := sim.Time(step) * sim.Nanosecond // crawling, but moving
		for i := 0; i < 90; i++ {
			dispatched++
			if err := w.Observe(now, dispatched); err != nil {
				t.Fatalf("tripped despite clock progress: %v", err)
			}
		}
	}
}

func TestWatchdogTripsOnEventStorm(t *testing.T) {
	w := &Watchdog{MaxStall: 10, StormWindow: sim.Millisecond, StormEvents: 1000}
	var dispatched uint64
	var err error
	for i := 0; err == nil && i < 5000; i++ {
		// The clock advances every event — no livelock — but 5000 events
		// land inside one millisecond window.
		dispatched++
		err = w.Observe(sim.Time(i)*sim.Nanosecond, dispatched)
	}
	var trip *TripError
	if !errors.As(err, &trip) {
		t.Fatalf("storm not detected: %v", err)
	}
	if trip.Kind != "event-storm" {
		t.Fatalf("trip kind %q, want event-storm", trip.Kind)
	}
}

func TestWatchdogStormWindowResets(t *testing.T) {
	w := &Watchdog{StormWindow: sim.Millisecond, StormEvents: 1000, MaxStall: 1 << 40}
	var dispatched uint64
	for win := 0; win < 20; win++ {
		base := sim.Time(win) * sim.Millisecond
		for i := 0; i < 900; i++ { // under threshold per window
			dispatched++
			if err := w.Observe(base, dispatched); err != nil {
				t.Fatalf("tripped at window %d: %v", win, err)
			}
		}
	}
}

func TestViolationErrorRendersDeterministically(t *testing.T) {
	v := Violation{
		At:       sim.Second,
		Check:    "mem",
		SPU:      2,
		Boundary: "tick",
		Message:  "books off by one",
		Snapshot: map[string]float64{"b": 2, "a": 1, "c": 3},
	}
	want := v.Error()
	for i := 0; i < 10; i++ {
		if got := v.Error(); got != want {
			t.Fatalf("Error() unstable: %q vs %q", got, want)
		}
	}
	if want == "" {
		t.Fatal("empty rendering")
	}
}

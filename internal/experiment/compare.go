package experiment

import (
	"perfiso/internal/core"
	"perfiso/internal/stats"
)

// CompareRow is one headline quantity of the paper's evaluation set
// against the value this reproduction measures.
type CompareRow struct {
	Experiment string
	Metric     string
	Paper      float64
	Measured   float64
	Unit       string
}

// Comparison is the paper-vs-measured summary (the machine-generated
// core of EXPERIMENTS.md).
type Comparison struct {
	Meter
	Rows []CompareRow
}

// RunComparison executes the figures and tables and extracts the
// quantities the paper states explicitly, pairing each with its paper
// value. Absolute seconds are not comparable across substrates, so
// every quantity here is a normalized percentage or a ratio.
func RunComparison() Comparison {
	var c Comparison
	add := func(exp, metric string, paper, measured float64, unit string) {
		c.Rows = append(c.Rows, CompareRow{exp, metric, paper, measured, unit})
	}

	p := RunPmake8(Pmake8Options{})
	fig2 := map[core.Scheme][2]float64{}
	for _, r := range p.Fig2Rows() {
		fig2[r.Scheme] = [2]float64{r.Balanced, r.Unbalanced}
	}
	// "The response time for the jobs in SPUs 1-4 increases by 56%".
	add("fig2", "SMP light SPUs, unbalanced (norm)", 156, fig2[core.SMP][1], "%")
	add("fig2", "PIso light SPUs, unbalanced (norm)", 100, fig2[core.PIso][1], "%")
	for _, r := range p.Fig3Rows() {
		switch r.Scheme {
		case core.SMP:
			add("fig3", "SMP heavy SPUs (norm)", 156, r.Heavy, "%")
		case core.Quo:
			// "Quo increases the response time for these jobs by 87%".
			add("fig3", "Quo heavy SPUs (norm)", 187, r.Heavy, "%")
		case core.PIso:
			add("fig3", "PIso heavy SPUs (norm)", 146, r.Heavy, "%")
		}
	}

	m := RunMemIso(MemIsoOptions{})
	for _, r := range m.IsolationRows() {
		if r.Scheme == core.SMP {
			// "a 45% decrease" for SMP vs "13%" for PIso.
			add("fig7", "SMP SPU1, unbalanced (norm)", 145, r.Unbalanced, "%")
		}
		if r.Scheme == core.PIso {
			add("fig7", "PIso SPU1, unbalanced (norm)", 113, r.Unbalanced, "%")
		}
	}
	for _, r := range m.SharingRows() {
		if r.Scheme == core.Quo {
			// "145% decrease in performance compared to the balanced
			// configuration".
			add("fig7", "Quo SPU2, unbalanced (norm)", 245, r.Unbalanced, "%")
		}
	}

	t3 := RunTable3(DiskOptions{})
	pos, piso := t3.Row("Pos"), t3.Row("PIso")
	if pos != nil && piso != nil {
		// "significantly reduces the response time for the pmake (39%)".
		add("tab3", "PIso pmake response vs Pos", -39,
			100*(float64(piso.RespA)/float64(pos.RespA)-1), "%")
		// "the average time a request spends waiting ... decreases by 76%".
		add("tab3", "PIso pmake wait vs Pos", -76,
			100*(float64(piso.WaitA)/float64(pos.WaitA)-1), "%")
		// "The copy job ... does see a reduction in performance (23%)".
		add("tab3", "PIso copy response vs Pos", 23,
			100*(float64(piso.RespB)/float64(pos.RespB)-1), "%")
	}
	iso3 := t3.Row("Iso")
	if pos != nil && iso3 != nil {
		// Iso 8.2 ms vs Pos 6.4 ms avg latency in Table 4; Table 3 text
		// says Iso performs like PIso. We compare latency inflation.
		add("tab3", "Iso avg latency vs Pos", 28,
			100*(float64(iso3.AvgLatency)/float64(pos.AvgLatency)-1), "%")
	}

	t4 := RunTable4(DiskOptions{})
	p4, i4, pi4 := t4.Row("Pos"), t4.Row("Iso"), t4.Row("PIso")
	if p4 != nil && i4 != nil && pi4 != nil {
		// Paper values: small 0.93/0.56/0.28 s under Pos/Iso/PIso.
		add("tab4", "small copy: Pos / PIso response ratio", 0.93/0.28,
			float64(p4.RespA)/float64(pi4.RespA), "x")
		add("tab4", "small copy: Iso / PIso response ratio", 0.56/0.28,
			float64(i4.RespA)/float64(pi4.RespA), "x")
		// Big copy: 0.81/1.22/0.96 s.
		add("tab4", "big copy: Iso / PIso response ratio", 1.22/0.96,
			float64(i4.RespB)/float64(pi4.RespB), "x")
		// Wait-time reductions Iso -> PIso: 54% small, 30% big.
		add("tab4", "PIso small wait vs Iso", -54,
			100*(float64(pi4.WaitA)/float64(i4.WaitA)-1), "%")
		add("tab4", "PIso big wait vs Iso", -30,
			100*(float64(pi4.WaitB)/float64(i4.WaitB)-1), "%")
	}
	c.Events = p.Events + m.Events + t3.Events + t4.Events
	return c
}

// Table renders the comparison.
func (c Comparison) Table() *stats.Table {
	t := stats.NewTable(
		"Paper vs measured — the quantities the paper states explicitly\n"+
			"(normalized percentages and ratios; absolute seconds are not comparable)",
		"Exp", "Metric", "Paper", "Ours")
	for _, r := range c.Rows {
		t.Addf(r.Experiment, r.Metric,
			formatQty(r.Paper, r.Unit), formatQty(r.Measured, r.Unit))
	}
	return t
}

func formatQty(v float64, unit string) string {
	if unit == "x" {
		return stats.FormatRatio(v)
	}
	return stats.FormatPercent(v)
}

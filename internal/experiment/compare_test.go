package experiment

import (
	"math"
	"strings"
	"testing"
)

// The comparison harness pairs every paper-stated quantity with a
// measurement, and the measurements land on the paper's side of the
// neutral point (degradations degrade, improvements improve).
func TestComparisonDirectionsMatchPaper(t *testing.T) {
	c := RunComparison()
	if len(c.Rows) < 12 {
		t.Fatalf("only %d comparison rows", len(c.Rows))
	}
	for _, r := range c.Rows {
		if math.IsNaN(r.Measured) || math.IsInf(r.Measured, 0) {
			t.Errorf("%s / %s: measured %v", r.Experiment, r.Metric, r.Measured)
			continue
		}
		if strings.Contains(r.Metric, "PIso SPU1") {
			// Documented deviation (EXPERIMENTS.md): our PIso lender
			// *improves* under background load by borrowing the
			// thrashing neighbour's idle CPUs — isolation holds either
			// way, so only require it not to degrade like SMP.
			if r.Measured > r.Paper {
				t.Errorf("%s / %s: measured %.0f exceeds paper %.0f", r.Experiment, r.Metric, r.Measured, r.Paper)
			}
			continue
		}
		var neutral float64
		switch r.Unit {
		case "%":
			neutral = 100     // normalized responses; deltas use 0
			if r.Paper < 50 { // delta-style metrics ("-39%", "+23%")
				neutral = 0
			}
		case "x":
			neutral = 1
		}
		paperSide := r.Paper - neutral
		measuredSide := r.Measured - neutral
		if paperSide*measuredSide < 0 && math.Abs(measuredSide) > math.Abs(paperSide)*0.15 {
			t.Errorf("%s / %s: paper %.1f vs measured %.1f straddle neutral %.0f",
				r.Experiment, r.Metric, r.Paper, r.Measured, neutral)
		}
	}
}

func TestComparisonTableRenders(t *testing.T) {
	c := RunComparison()
	out := c.Table().String()
	for _, want := range []string{"fig2", "fig3", "fig7", "tab3", "tab4", "Paper", "Ours"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison table missing %q:\n%s", want, out)
		}
	}
}

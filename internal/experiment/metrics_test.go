package experiment

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// The instrumented experiments run with the registry on and distill one
// summary per kernel configuration, in run order.
func TestCPUIsoCollectsMetricSummaries(t *testing.T) {
	r := RunCPUIso(CPUIsoOptions{})
	if len(r.Metrics) != len(Schemes) {
		t.Fatalf("got %d summaries, want one per scheme (%d)", len(r.Metrics), len(Schemes))
	}
	for i, s := range Schemes {
		ms := r.Metrics[i]
		if ms.Config != s.String() {
			t.Fatalf("summary %d config = %q, want %q", i, ms.Config, s.String())
		}
		var share float64
		for _, name := range []string{"ocean", "eda"} {
			if _, ok := ms.CPUShare[name]; !ok {
				t.Fatalf("%s summary missing CPU share for %q: %v", ms.Config, name, ms.CPUShare)
			}
			share += ms.CPUShare[name]
		}
		if math.Abs(share-1) > 1e-9 {
			t.Fatalf("%s CPU shares sum to %v, want 1", ms.Config, share)
		}
		if ms.jsonl == "" {
			t.Fatalf("%s summary carries no registry export", ms.Config)
		}
	}
	// SPU 2 is overcommitted, so performance isolation must have lent
	// it CPUs and revoked some when Ocean's gang woke.
	var piso MetricSummary
	for _, ms := range r.Metrics {
		if ms.Config == "PIso" {
			piso = ms
		}
	}
	if piso.Loans == 0 {
		t.Fatal("PIso run recorded no CPU loans")
	}
	if piso.Revocations > 0 && piso.RevocationP99Ms <= 0 {
		t.Fatalf("revocations happened but p99 latency is %v", piso.RevocationP99Ms)
	}
}

// The metrics artifact is part of the harness determinism contract:
// byte-identical at any -parallel level, valid JSONL, one header line
// per instrumented configuration.
func TestMetricsArtifactDeterministicAcrossParallel(t *testing.T) {
	specs := []Spec{}
	for _, id := range []string{"fig5", "fig7"} {
		s, ok := Lookup(id)
		if !ok {
			t.Fatalf("missing spec %q", id)
		}
		specs = append(specs, s)
	}
	render := func(parallel int) string {
		var buf bytes.Buffer
		if err := MetricsJSONL(RunAll(specs, parallel), &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("metrics artifact differs between -parallel 1 and 8:\n--- seq ---\n%.600s\n--- par ---\n%.600s", seq, par)
	}
	var headers int
	for _, line := range strings.Split(strings.TrimSpace(seq), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("artifact line is not JSON: %s", line)
		}
		if obj["type"] == "experiment" {
			headers++
		}
	}
	// fig5 runs 3 configurations, fig7 runs 6 (3 schemes x balanced /
	// unbalanced).
	if headers != 9 {
		t.Fatalf("artifact has %d experiment headers, want 9", headers)
	}
	// Wall-clock never leaks into the artifact.
	if strings.Contains(seq, "wall") {
		t.Fatal("metrics artifact mentions wall time")
	}
}

package experiment

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"perfiso/internal/stats"
)

// The perf trajectory (BENCH_trajectory.jsonl) is the append-only
// history of event-core performance: one JSONL line per scenario per
// `pisobench -perf` run, stamped with the commit it measured. Committed
// baselines (BENCH_perf.json) answer "did this change regress?"; the
// trajectory answers "how has the simulator's speed evolved across the
// whole project?" — the ROADMAP item 3 progress record.

// TrajectoryPoint is one scenario measurement at one commit. Every line
// carries Type "trajectory" so readers (and pisobench -diff) can sniff
// the file format from its first line.
type TrajectoryPoint struct {
	Type           string          `json:"type"`
	Commit         string          `json:"commit"`
	Date           string          `json:"date,omitempty"` // YYYY-MM-DD
	EventQueue     string          `json:"event_queue,omitempty"`
	Scenario       string          `json:"scenario"`
	Events         uint64          `json:"events"`
	NsPerEvent     float64         `json:"ns_per_event"`
	AllocsPerEvent float64         `json:"allocs_per_event"`
	NsPerEventCV   float64         `json:"ns_per_event_cv,omitempty"`
	Queue          *PerfQueueStats `json:"queue,omitempty"`
}

// TrajectoryPoints flattens a perf report into trajectory lines, one
// per scenario, stamped with the given commit and date.
func TrajectoryPoints(rep PerfReport, commit, date string) []TrajectoryPoint {
	pts := make([]TrajectoryPoint, 0, len(rep.Scenarios))
	for _, s := range rep.Scenarios {
		pts = append(pts, TrajectoryPoint{
			Type:           "trajectory",
			Commit:         commit,
			Date:           date,
			EventQueue:     rep.EventQueue,
			Scenario:       s.ID,
			Events:         s.Events,
			NsPerEvent:     s.NsPerEvent,
			AllocsPerEvent: s.AllocsPerEvent,
			NsPerEventCV:   s.NsPerEventCV,
			Queue:          s.Queue,
		})
	}
	return pts
}

// AppendTrajectory appends the points to the JSONL file at path,
// creating it if absent. Append-only by construction: existing lines
// are never rewritten, so the history survives concurrent tooling and
// bad runs alike (a wrong line is corrected by appending a better one
// at a later commit).
func AppendTrajectory(path string, pts []TrajectoryPoint) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, p := range pts {
		if p.Type == "" {
			p.Type = "trajectory"
		}
		if err := enc.Encode(p); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// ReadTrajectory parses a trajectory JSONL blob, skipping blank lines.
func ReadTrajectory(data []byte) ([]TrajectoryPoint, error) {
	var pts []TrajectoryPoint
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var p TrajectoryPoint
		if err := json.Unmarshal(line, &p); err != nil {
			return nil, fmt.Errorf("trajectory line %d: %v", lineNo, err)
		}
		if p.Type != "trajectory" {
			return nil, fmt.Errorf("trajectory line %d: type %q, want \"trajectory\"", lineNo, p.Type)
		}
		pts = append(pts, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pts, nil
}

// IsTrajectory sniffs whether a blob is a trajectory JSONL file: its
// first non-blank line is a JSON object with type "trajectory".
func IsTrajectory(data []byte) bool {
	for _, line := range bytes.Split(data, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var p struct {
			Type string `json:"type"`
		}
		return json.Unmarshal(line, &p) == nil && p.Type == "trajectory"
	}
	return false
}

// HistoryReport renders the trajectory as one trend block per scenario,
// in first-appearance order: commit, date, ns/event with a bar scaled
// to the scenario's own worst point, and the delta against the previous
// point. CV-flagged (unstable) points are marked so a noisy CI runner
// doesn't read as a regression.
func HistoryReport(pts []TrajectoryPoint) string {
	if len(pts) == 0 {
		return "perf trajectory: empty\n"
	}
	order := []string{}
	byScenario := map[string][]TrajectoryPoint{}
	for _, p := range pts {
		if _, ok := byScenario[p.Scenario]; !ok {
			order = append(order, p.Scenario)
		}
		byScenario[p.Scenario] = append(byScenario[p.Scenario], p)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "perf trajectory: %d points, %d scenarios\n", len(pts), len(order))
	for _, id := range order {
		series := byScenario[id]
		worst := 0.0
		for _, p := range series {
			if p.NsPerEvent > worst {
				worst = p.NsPerEvent
			}
		}
		first, last := series[0].NsPerEvent, series[len(series)-1].NsPerEvent
		fmt.Fprintf(&b, "\n%s  (%d points, overall %s)\n", id, len(series), trendWord(first, last))
		for i, p := range series {
			bar := ""
			if worst > 0 {
				n := int(30 * p.NsPerEvent / worst)
				if n < 1 && p.NsPerEvent > 0 {
					n = 1
				}
				bar = strings.Repeat("#", n)
			}
			delta := ""
			if i > 0 {
				delta = "  " + pctDelta(series[i-1].NsPerEvent, p.NsPerEvent)
			}
			note := ""
			if p.NsPerEventCV > UnstableCV {
				note = "  unstable"
			}
			date := p.Date
			if date == "" {
				date = "-"
			}
			fmt.Fprintf(&b, "  %-10s %-10s %8.1f ns/ev %-30s%s%s\n",
				p.Commit, date, p.NsPerEvent, bar, delta, note)
		}
	}
	return b.String()
}

func trendWord(first, last float64) string {
	switch {
	case first <= 0:
		return "n/a"
	case last < first*0.98:
		return fmt.Sprintf("%.2fx faster", first/last)
	case last > first*1.02:
		return fmt.Sprintf("%.2fx slower", last/first)
	default:
		return "flat"
	}
}

// DiffTrajectory compares two trajectory files by their latest point
// per scenario — the non-gating trend report pisobench -diff prints for
// JSONL inputs.
func DiffTrajectory(oldData, newData []byte, oldName, newName string) (string, error) {
	op, err := ReadTrajectory(oldData)
	if err != nil {
		return "", fmt.Errorf("%s: %v", oldName, err)
	}
	np, err := ReadTrajectory(newData)
	if err != nil {
		return "", fmt.Errorf("%s: %v", newName, err)
	}
	latest := func(pts []TrajectoryPoint) (map[string]TrajectoryPoint, []string) {
		m := map[string]TrajectoryPoint{}
		var order []string
		for _, p := range pts {
			if _, ok := m[p.Scenario]; !ok {
				order = append(order, p.Scenario)
			}
			m[p.Scenario] = p
		}
		return m, order
	}
	om, _ := latest(op)
	nm, norder := latest(np)

	var b strings.Builder
	fmt.Fprintf(&b, "perf trajectory diff: %s (%d points) -> %s (%d points)\n\n",
		oldName, len(op), newName, len(np))
	t := stats.NewTable("Latest point per scenario (ns/event is measured; not a gate)",
		"Scenario", "Old commit", "New commit", "Old ns/ev", "New ns/ev", "Δ")
	for _, id := range norder {
		n := nm[id]
		o, ok := om[id]
		if !ok {
			fmt.Fprintf(&b, "added scenario: %s (%.1f ns/ev at %s)\n", id, n.NsPerEvent, n.Commit)
			continue
		}
		t.Addf(id, o.Commit, n.Commit, o.NsPerEvent, n.NsPerEvent,
			pctDelta(o.NsPerEvent, n.NsPerEvent))
	}
	for id := range om {
		if _, ok := nm[id]; !ok {
			fmt.Fprintf(&b, "removed scenario: %s\n", id)
		}
	}
	fmt.Fprintf(&b, "\n%s", t)
	return b.String(), nil
}

package experiment

import (
	"testing"

	"perfiso/internal/core"
)

var faultsCache *FaultResult

func faults(t *testing.T) FaultResult {
	t.Helper()
	if faultsCache == nil {
		r := RunFaults(FaultOptions{})
		faultsCache = &r
	}
	return *faultsCache
}

// The isolation-under-faults claim: when every injected fault lands on
// the victim SPU's resources, an isolating scheme confines the damage
// to the victim, while ShareAll spreads it to the bystander.
func TestFaultIsolationShape(t *testing.T) {
	r := faults(t)
	get := func(s core.Scheme) (victim, steady float64) {
		for _, row := range r.Rows() {
			if row.Scheme == s {
				return row.Victim, row.Steady
			}
		}
		t.Fatalf("scheme %v missing", s)
		return 0, 0
	}
	// The victim must visibly absorb the faults under every scheme —
	// otherwise the plan is a no-op and the test proves nothing.
	for _, s := range Schemes {
		if victim, _ := get(s); victim < 115 {
			t.Errorf("%v victim at %.0f%% of baseline; faults barely landed", s, victim)
		}
	}
	// Isolation: the steady SPU stays within 10% of its fault-free run.
	for _, s := range []core.Scheme{core.Quo, core.PIso} {
		if _, steady := get(s); steady > 110 {
			t.Errorf("%v steady SPU degraded to %.0f%%; fault isolation broken", s, steady)
		}
	}
	// Sharing spreads the faults: the SMP bystander degrades past the
	// isolated schemes' 10% band.
	if _, smpSteady := get(core.SMP); smpSteady <= 110 {
		t.Errorf("SMP steady SPU at %.0f%%; expected shared pools to spread the faults", smpSteady)
	}
}

// A clean baseline run must not be perturbed by the fault machinery
// merely existing: with an empty plan the kernel boots no injector.
func TestFaultBaselineMatchesCleanRun(t *testing.T) {
	r := faults(t)
	for _, s := range Schemes {
		run := r.Runs[s]
		if run.VictimBase <= 0 || run.SteadyBase <= 0 {
			t.Fatalf("%v baseline missing: %+v", s, run)
		}
		if run.Victim < run.VictimBase {
			t.Errorf("%v victim ran faster faulted (%v) than clean (%v)", s, run.Victim, run.VictimBase)
		}
	}
}

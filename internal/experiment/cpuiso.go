package experiment

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/kernel"
	"perfiso/internal/machine"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
	"perfiso/internal/stats"
	"perfiso/internal/workload"
)

// CPUIsoRun is one scheme's measurement: mean response time per
// application type.
type CPUIsoRun struct {
	Ocean     sim.Time
	Flashlite sim.Time
	VCS       sim.Time
}

// CPUIsoResult carries Figure 5.
type CPUIsoResult struct {
	Meter
	Runs map[core.Scheme]CPUIsoRun
}

// CPUIsoOptions tunes the experiment.
type CPUIsoOptions struct {
	Kernel    kernel.Options
	Ocean     workload.OceanParams   // zero -> DefaultOcean
	Flashlite workload.ComputeParams // zero -> DefaultFlashlite
	VCS       workload.ComputeParams // zero -> DefaultVCS
}

func (o CPUIsoOptions) withDefaults() CPUIsoOptions {
	if o.Ocean.Procs == 0 {
		o.Ocean = workload.DefaultOcean()
	}
	if o.Flashlite.Total == 0 {
		o.Flashlite = workload.DefaultFlashlite()
	}
	if o.VCS.Total == 0 {
		o.VCS = workload.DefaultVCS()
	}
	return o
}

// RunCPUIso executes the CPU isolation workload (Figure 4's structure):
// SPU 1 runs the four-process Ocean, SPU 2 runs three Flashlite and
// three VCS processes; each SPU owns half the 8-CPU machine. Ten
// processes compete for eight processors, so SPU 2 is overcommitted and
// SPU 1 is not.
func RunCPUIso(opts CPUIsoOptions) CPUIsoResult {
	opts = opts.withDefaults()
	res := CPUIsoResult{Runs: make(map[core.Scheme]CPUIsoRun)}
	for _, scheme := range Schemes {
		res.Runs[scheme] = runCPUIsoConfig(scheme, opts, &res.Meter)
	}
	return res
}

func runCPUIsoConfig(scheme core.Scheme, opts CPUIsoOptions, m *Meter) CPUIsoRun {
	if opts.Kernel.MetricsPeriod == 0 {
		opts.Kernel.MetricsPeriod = metricsPeriod
	}
	opts.Kernel.Profiled = true
	k := kernel.New(machine.CPUIsolation(), scheme, opts.Kernel)
	spu1 := k.NewSPU("ocean", 1)
	spu2 := k.NewSPU("eda", 1)
	k.SetAffinity(spu1.ID(), 0)
	k.SetAffinity(spu2.ID(), 1)
	k.Boot()

	ocean := workload.Ocean(k, spu1.ID(), "ocean", opts.Ocean)
	k.Spawn(ocean)
	var fls, vcs []*proc.Process
	for i := 0; i < 3; i++ {
		f := workload.ComputeBound(k, spu2.ID(), fmt.Sprintf("flashlite%d", i), opts.Flashlite)
		v := workload.ComputeBound(k, spu2.ID(), fmt.Sprintf("vcs%d", i), opts.VCS)
		fls = append(fls, f)
		vcs = append(vcs, v)
		k.Spawn(f)
		k.Spawn(v)
	}
	k.Run()
	m.observe(k, scheme.String())
	mean := func(ps []*proc.Process) sim.Time {
		ts := make([]sim.Time, len(ps))
		for i, p := range ps {
			ts[i] = p.ResponseTime()
		}
		return meanResponse(ts)
	}
	return CPUIsoRun{Ocean: ocean.ResponseTime(), Flashlite: mean(fls), VCS: mean(vcs)}
}

// Rows returns Figure 5's bars: per application, the response time under
// each scheme normalized to that application's SMP response (=100).
func (r CPUIsoResult) Rows() []struct {
	App  string
	SMP  float64
	Quo  float64
	PIso float64
} {
	base := r.Runs[core.SMP]
	norm := func(get func(CPUIsoRun) sim.Time) [3]float64 {
		var out [3]float64
		for i, s := range Schemes {
			out[i] = Norm(get(r.Runs[s]), get(base))
		}
		return out
	}
	ocean := norm(func(x CPUIsoRun) sim.Time { return x.Ocean })
	fl := norm(func(x CPUIsoRun) sim.Time { return x.Flashlite })
	vc := norm(func(x CPUIsoRun) sim.Time { return x.VCS })
	return []struct {
		App  string
		SMP  float64
		Quo  float64
		PIso float64
	}{
		{"Ocean", ocean[0], ocean[1], ocean[2]},
		{"Flashlite", fl[0], fl[1], fl[2]},
		{"VCS", vc[0], vc[1], vc[2]},
	}
}

// Table renders Figure 5 as a text table.
func (r CPUIsoResult) Table() *stats.Table {
	t := stats.NewTable(
		"Figure 5: CPU isolation workload — mean response time per application\n"+
			"(normalized to SMP = 100 for each application)",
		"Application", "SMP", "Quo", "PIso")
	for _, row := range r.Rows() {
		t.Addf(row.App, row.SMP, row.Quo, row.PIso)
	}
	return t
}

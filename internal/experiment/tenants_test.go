package experiment

import (
	"testing"

	"perfiso/internal/sim"
)

// The headline isolation claim: with noise hogs saturating their SPU,
// every tenant's p99 under PIso stays within the stated tolerance of
// its solo baseline, while under SMP at least the worst tenant blows
// through it.
func TestOpenArrivalIsolation(t *testing.T) {
	r := RunOpenArrival()
	bound := func(solo sim.Time) sim.Time {
		return sim.Time(OpenArrivalTolerance*float64(solo)) + OpenArrivalSlack
	}
	seen := 0
	for _, row := range r.Rows {
		if row.Config != "solo" {
			continue
		}
		seen++
		piso := r.Row("PIso", row.Tenant)
		if piso == nil {
			t.Fatalf("no PIso row for tenant %q", row.Tenant)
		}
		if piso.P99 > bound(row.P99) {
			t.Errorf("tenant %q: PIso p99 %v exceeds %.1fx solo (%v) + %v slack",
				row.Tenant, piso.P99, OpenArrivalTolerance, row.P99, OpenArrivalSlack)
		}
		if smp := r.Row("SMP", row.Tenant); smp == nil {
			t.Fatalf("no SMP row for tenant %q", row.Tenant)
		}
	}
	if seen == 0 {
		t.Fatal("no solo baselines ran")
	}
	worst := r.Row("SMP", r.Worst)
	if worst == nil {
		t.Fatalf("no SMP row for worst tenant %q", r.Worst)
	}
	soloWorst := r.Row("solo", r.Worst)
	if worst.P99 <= bound(soloWorst.P99) {
		t.Errorf("SMP should break isolation for the worst tenant %q: p99 %v within bound of solo %v",
			r.Worst, worst.P99, soloWorst.P99)
	}
	if len(r.Breakdown) == 0 {
		t.Error("no interference attributed to the worst tenant under SMP")
	}
	t.Logf("worst tenant %q, SMP p99 ratio %.2fx", r.Worst, r.WorstRatio)
	t.Log("\n" + r.Table().Markdown())
	t.Log("\n" + r.BreakdownTable().Markdown())
}

// Both rendered sections carry every expected row.
func TestOpenArrivalTables(t *testing.T) {
	r := RunOpenArrival()
	if got := len(r.Rows); got != 12 { // 4 solo + 4 SMP + 4 PIso
		t.Fatalf("rows = %d, want 12", got)
	}
	if rows := r.BreakdownTable().NumericRows(); len(rows) != 4 {
		t.Fatalf("breakdown rows = %d, want one per resource", len(rows))
	}
	if len(r.Latency) != 6 { // 4 solo + SMP + PIso
		t.Fatalf("latency summaries = %d, want 6", len(r.Latency))
	}
}

package experiment

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/kernel"
	"perfiso/internal/machine"
	"perfiso/internal/profile"
	"perfiso/internal/sim"
	"perfiso/internal/stats"
	"perfiso/internal/workload"
)

// OpenArrivalTolerance bounds how far a tenant's shared-machine p99 may
// drift from its solo baseline under PIso before the experiment calls
// isolation broken. The bound is multiplicative with an additive slack
// (OpenArrivalSlack): solo runs own the whole machine, so concurrent
// requests fan out across idle CPUs, while a shared tenant is entitled
// to one CPU and queues overlapping arrivals there — bounded entitlement
// queueing that exists even under perfect isolation. The slack absorbs
// that fixed queueing term; the ratio catches noise-proportional
// collapse, which is what SMP exhibits.
const OpenArrivalTolerance = 1.5

// OpenArrivalSlack is the additive latency budget a shared tenant gets
// on top of OpenArrivalTolerance×solo: roughly the queueing delay of a
// couple of overlapping requests on the tenant's single entitled CPU.
const OpenArrivalSlack = 10 * sim.Millisecond

// openArrivalNoiseHogs is how many compute antagonists the noise SPU
// runs in the shared configurations.
const openArrivalNoiseHogs = 8

// OpenArrivalRow is one (config, tenant) cell of the multi-tenant
// open-arrival comparison: the percentile ladder, SLO attainment, and
// the p99 inflation over that tenant's solo baseline.
type OpenArrivalRow struct {
	Config     string
	Tenant     string
	P50        sim.Time
	P99        sim.Time
	P999       sim.Time
	Attainment float64
	Censored   int64
	// SoloRatio is P99 divided by the tenant's solo-baseline P99;
	// zero for the solo rows themselves.
	SoloRatio float64
}

// OpenArrivalResult captures the multi-tenant open-arrival experiment:
// four tenants with open (arrival-time-driven) request streams sharing
// a machine with a noise SPU full of compute hogs, under SMP and PIso,
// each compared against its own solo baseline. Worst names the tenant
// SMP hurt the most, and Breakdown is the profiler's interference
// matrix restricted to that victim — which culprit stole how much of
// which resource.
type OpenArrivalResult struct {
	Meter
	Rows       []OpenArrivalRow
	Worst      string
	WorstRatio float64
	Breakdown  []TheftRow
}

// RunOpenArrival runs the tail-latency isolation experiment: each
// tenant solo on the machine (its baseline), then all tenants plus the
// noise SPU under SMP and under PIso with IPI revocation (§3.1 — tick
// revocation alone would put a scheduler-tick quantum into every
// shared-machine tail).
func RunOpenArrival() OpenArrivalResult {
	var res OpenArrivalResult
	tenants := workload.TenantSet()
	window := 500 * sim.Millisecond

	solo := make(map[string]TenantLatency)
	for _, ts := range tenants {
		k := kernel.New(machine.Pmake8(), core.PIso, kernel.Options{
			LatencyWindow: window, IPIRevoke: true,
		})
		spu := k.NewSPU(ts.Name, ts.Weight)
		k.Boot()
		job := workload.OpenServer(k, spu.ID(), ts.Name, ts.Server)
		k.Spawn(job.Root)
		end := k.Run()
		job.CensorTail(end)
		res.observe(k, "solo/"+ts.Name)
		tl := res.Latency[len(res.Latency)-1].Tenant(ts.Name)
		solo[ts.Name] = *tl
		res.Rows = append(res.Rows, openArrivalRow("solo", *tl, 0))
	}

	shared := func(scheme core.Scheme, config string) (LatencySummary, []profile.Theft, map[int]string) {
		opts := kernel.Options{LatencyWindow: window, Profiled: true}
		if scheme == core.PIso {
			opts.IPIRevoke = true
		}
		k := kernel.New(machine.Pmake8(), scheme, opts)
		spus := make([]core.SPUID, len(tenants))
		for i, ts := range tenants {
			spus[i] = k.NewSPU(ts.Name, ts.Weight).ID()
		}
		noise := k.NewSPU("noise", 4)
		k.Boot()
		jobs := make([]*workload.ServerJob, len(tenants))
		for i, ts := range tenants {
			jobs[i] = workload.OpenServer(k, spus[i], ts.Name, ts.Server)
			k.Spawn(jobs[i].Root)
		}
		for i := 0; i < openArrivalNoiseHogs; i++ {
			k.Spawn(workload.ComputeBound(k, noise.ID(), fmt.Sprintf("hog%d", i),
				workload.ComputeParams{Total: 12 * sim.Second, Chunk: 100 * sim.Millisecond, WSSPages: 50}))
		}
		end := k.Run()
		for _, j := range jobs {
			j.CensorTail(end)
		}
		res.observe(k, config)
		names := make(map[int]string)
		for _, u := range k.SPUs().All() {
			names[int(u.ID())] = u.Name()
		}
		return res.Latency[len(res.Latency)-1], k.Profile().Interference(), names
	}

	smp, smpTheft, smpNames := shared(core.SMP, "SMP")
	piso, _, _ := shared(core.PIso, "PIso")

	var worstSPU core.SPUID
	for _, sum := range []LatencySummary{smp, piso} {
		for _, ts := range tenants {
			tl := sum.Tenant(ts.Name)
			if tl == nil {
				continue
			}
			ratio := 0.0
			if base := solo[ts.Name].P99NS; base > 0 {
				ratio = float64(tl.P99NS) / float64(base)
			}
			res.Rows = append(res.Rows, openArrivalRow(sum.Config, *tl, ratio))
			if sum.Config == "SMP" && ratio > res.WorstRatio {
				res.Worst, res.WorstRatio = ts.Name, ratio
				worstSPU = core.SPUID(tl.SPU)
			}
		}
	}

	for _, t := range smpTheft {
		if t.Victim != worstSPU {
			continue
		}
		res.Breakdown = append(res.Breakdown, TheftRow{
			Victim:   spuDisplay(smpNames, t.Victim),
			Culprit:  spuDisplay(smpNames, t.Culprit),
			Resource: t.Resource.String(),
			Stolen:   int64(t.Stolen),
		})
	}
	return res
}

func openArrivalRow(config string, tl TenantLatency, ratio float64) OpenArrivalRow {
	return OpenArrivalRow{
		Config: config, Tenant: tl.Name,
		P50: sim.Time(tl.P50NS), P99: sim.Time(tl.P99NS), P999: sim.Time(tl.P999NS),
		Attainment: tl.Attainment, Censored: tl.Censored, SoloRatio: ratio,
	}
}

// Row returns the row for a (config, tenant) pair, or nil.
func (r OpenArrivalResult) Row(config, tenant string) *OpenArrivalRow {
	for i := range r.Rows {
		if r.Rows[i].Config == config && r.Rows[i].Tenant == tenant {
			return &r.Rows[i]
		}
	}
	return nil
}

// Table renders the per-tenant percentile and SLO comparison.
func (r OpenArrivalResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Extension: multi-tenant open-arrival tail latency (%d tenants vs %d noise hogs, Pmake8)",
			len(workload.TenantSet()), openArrivalNoiseHogs),
		"Config", "Tenant", "p50 (ms)", "p99 (ms)", "p999 (ms)", "Attain (%)", "Censored", "p99 vs solo")
	for _, row := range r.Rows {
		ratio := "-"
		if row.SoloRatio > 0 {
			ratio = fmt.Sprintf("%.2fx", row.SoloRatio)
		}
		t.Addf(row.Config, row.Tenant, row.P50.Milliseconds(), row.P99.Milliseconds(),
			row.P999.Milliseconds(), row.Attainment, row.Censored, ratio)
	}
	return t
}

// BreakdownTable renders the interference matrix restricted to the
// worst-hit tenant under SMP: one row per resource, totalled across
// culprits, with the largest single culprit named. Resources with no
// recorded theft still print, so a reader can see at a glance which of
// CPU, memory, disk, and locks the collapse came from.
func (r OpenArrivalResult) BreakdownTable() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Who hurt %q under SMP (victim-side interference, worst tenant)", r.Worst),
		"Resource", "Stolen (ms)", "Top culprit")
	for _, resource := range []string{"cpu", "memory", "disk", "lock"} {
		var total, top int64
		culprit := "-"
		for _, row := range r.Breakdown {
			if row.Resource != resource {
				continue
			}
			total += row.Stolen
			if row.Stolen > top {
				top, culprit = row.Stolen, row.Culprit
			}
		}
		t.Addf(resource, sim.Time(total).Milliseconds(), culprit)
	}
	return t
}

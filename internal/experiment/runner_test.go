package experiment

import (
	"testing"
)

func TestRegistryIDsUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Registry() {
		names := append([]string{s.ID}, s.Aliases...)
		for _, n := range names {
			if seen[n] {
				t.Fatalf("duplicate experiment id/alias %q", n)
			}
			seen[n] = true
			got, ok := Lookup(n)
			if !ok {
				t.Fatalf("Lookup(%q) missed", n)
			}
			if got.ID != s.ID {
				t.Fatalf("Lookup(%q) resolved to %q, want %q", n, got.ID, s.ID)
			}
		}
		if s.Run == nil {
			t.Fatalf("spec %q has no runner", s.ID)
		}
		if s.Title == "" {
			t.Fatalf("spec %q has no title", s.ID)
		}
	}
	// The seed pisobench -only vocabulary must keep resolving.
	for _, id := range []string{"fig2", "fig3", "fig5", "fig7", "tab3", "tab4"} {
		if _, ok := Lookup(id); !ok {
			t.Fatalf("legacy id %q no longer resolves", id)
		}
	}
	if _, ok := Lookup("bogus"); ok {
		t.Fatal("Lookup accepted an unknown id")
	}
}

func TestFilter(t *testing.T) {
	all := Registry()
	if got := Filter(all, "", false); len(got) != len(all) {
		t.Fatalf("unfiltered: %d specs, want %d", len(got), len(all))
	}
	short := Filter(all, "", true)
	for _, s := range short {
		if s.Ablation {
			t.Fatalf("-short kept ablation %q", s.ID)
		}
	}
	if len(short) != 5 {
		t.Fatalf("-short kept %d specs, want the 5 headline experiments", len(short))
	}
	only := Filter(all, "fig3", false)
	if len(only) != 1 || only[0].ID != "pmake8" {
		t.Fatalf("Filter(only=fig3) = %+v, want the pmake8 spec via alias", only)
	}
	if got := Filter(all, "nope", true); len(got) != 0 {
		t.Fatalf("unknown id matched %d specs", len(got))
	}
}

// The harness guarantee: running experiments across parallel workers
// produces exactly the tables a sequential run produces, because every
// spec builds its own engines. Uses the two cheapest specs to bound
// test runtime.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	specs := []Spec{}
	for _, id := range []string{"tab4", "abl-network"} {
		s, ok := Lookup(id)
		if !ok {
			t.Fatalf("missing spec %q", id)
		}
		specs = append(specs, s)
	}
	render := func(rs []Result) string {
		var out string
		for _, r := range rs {
			for _, sec := range r.Output.Sections {
				out += sec.Table.String() + "\n"
			}
		}
		return out
	}
	seq := RunAll(specs, 1)
	par := RunAll(specs, 4)
	if render(seq) != render(par) {
		t.Fatalf("parallel run diverged from sequential:\n--- seq ---\n%s--- par ---\n%s",
			render(seq), render(par))
	}
	for i, r := range par {
		if r.Spec.ID != specs[i].ID {
			t.Fatalf("result %d is %q, want registry order %q", i, r.Spec.ID, specs[i].ID)
		}
		if r.Output.Events == 0 {
			t.Fatalf("spec %q dispatched zero events", r.Spec.ID)
		}
		if r.Wall <= 0 {
			t.Fatalf("spec %q has non-positive wall time", r.Spec.ID)
		}
	}
}

func TestBenchReport(t *testing.T) {
	s, _ := Lookup("abl-network")
	results := RunAll([]Spec{s}, 1)
	b := BenchReport(results, 3, true, results[0].Wall)
	if b.Suite != "pisobench" || b.Parallel != 3 || !b.Short {
		t.Fatalf("report metadata wrong: %+v", b)
	}
	if len(b.Experiments) != 1 {
		t.Fatalf("got %d experiments, want 1", len(b.Experiments))
	}
	e := b.Experiments[0]
	if e.ID != "abl-network" || e.Events == 0 || e.EventsPerSec <= 0 {
		t.Fatalf("experiment entry wrong: %+v", e)
	}
	if len(e.Rows) == 0 {
		t.Fatal("no headline rows extracted")
	}
	if b.Events != e.Events {
		t.Fatalf("suite events %d != sum %d", b.Events, e.Events)
	}
}

package experiment

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/kernel"
	"perfiso/internal/machine"
	"perfiso/internal/netbw"
	"perfiso/internal/sim"
	"perfiso/internal/stats"
	"perfiso/internal/workload"
)

// BWThresholdResult is the §3.3 trade-off sweep: "Smaller values imply
// better isolation, with a choice of zero resulting in round-robin
// scheduling. Larger values imply smaller seek times, and a very large
// value results in the normal disk-head-position scheduling."
type BWThresholdResult struct {
	Meter
	Thresholds []float64 // sectors
	Small      stats.Series
	Big        stats.Series
	Latency    stats.Series // positioning ms
}

// RunAblationBWThreshold sweeps the PIso BW-difference threshold over
// the Table 4 workload.
func RunAblationBWThreshold(thresholds []float64) BWThresholdResult {
	if len(thresholds) == 0 {
		thresholds = []float64{1, 16, 64, 256, 1024, 8192, 1 << 30}
	}
	res := BWThresholdResult{Thresholds: thresholds}
	res.Small.Name = "small copy response (s)"
	res.Big.Name = "big copy response (s)"
	res.Latency.Name = "avg positioning latency (ms)"
	for _, th := range thresholds {
		k := kernel.New(machine.DiskIsolation(), core.PIso, kernel.Options{
			DiskSched: "PIso", BWThreshold: th, Profiled: true,
		})
		spu1 := k.NewSPU("small", 1)
		spu2 := k.NewSPU("big", 1)
		k.SetAffinity(spu1.ID(), 0)
		k.SetAffinity(spu2.ID(), 0)
		k.Boot()
		small := workload.Copy(k, spu1.ID(), "small", workload.DefaultCopy(500*1024))
		big := workload.Copy(k, spu2.ID(), "big", workload.DefaultCopy(5*1024*1024))
		k.Spawn(big)
		k.Spawn(small)
		k.Run()
		res.observe(k, fmt.Sprintf("bw=%g", th))
		res.Small.Add(th, small.ResponseTime().Seconds())
		res.Big.Add(th, big.ResponseTime().Seconds())
		res.Latency.Add(th, k.Disk(0).Total.Pos.Mean()*1000)
	}
	return res
}

// Table renders the threshold sweep.
func (r BWThresholdResult) Table() *stats.Table {
	t := stats.NewTable(
		"Ablation: BW-difference threshold trade-off (§3.3, Table 4 workload)",
		"Threshold (sectors)", "Small resp (s)", "Big resp (s)", "Avg latency (ms)")
	for i, th := range r.Thresholds {
		t.Addf(fmt.Sprintf("%.0f", th),
			r.Small.Points[i].Y, r.Big.Points[i].Y, r.Latency.Points[i].Y)
	}
	return t
}

// ReserveResult is the §3.2 Reserve Threshold sweep on the memory
// isolation workload: the reserve hides revocation cost for the lender
// (SPU1) at the price of lending less to the borrower (SPU2).
type ReserveResult struct {
	Meter
	Fractions []float64
	SPU1      stats.Series // lender response (s), unbalanced PIso
	SPU2      stats.Series // borrower response (s), unbalanced PIso
}

// RunAblationReserve sweeps the Reserve Threshold fraction.
func RunAblationReserve(fractions []float64) ReserveResult {
	if len(fractions) == 0 {
		fractions = []float64{0.02, 0.04, 0.08, 0.16, 0.25}
	}
	res := ReserveResult{Fractions: fractions}
	res.SPU1.Name = "SPU1 (lender) response (s)"
	res.SPU2.Name = "SPU2 (borrower) response (s)"
	params := workload.MemPmake()
	for _, f := range fractions {
		k := kernel.New(machine.MemoryIsolation(), core.PIso, kernel.Options{Reserve: f, Profiled: true})
		spu1 := k.NewSPU("spu1", 1)
		spu2 := k.NewSPU("spu2", 1)
		k.SetAffinity(spu1.ID(), 0)
		k.SetAffinity(spu2.ID(), 1)
		k.Boot()
		j1 := workload.Pmake(k, spu1.ID(), "job1", params)
		j2a := workload.Pmake(k, spu2.ID(), "job2a", params)
		j2b := workload.Pmake(k, spu2.ID(), "job2b", params)
		k.Spawn(j1)
		k.Spawn(j2a)
		k.Spawn(j2b)
		k.Run()
		res.observe(k, fmt.Sprintf("reserve=%g", f))
		res.SPU1.Add(f, j1.ResponseTime().Seconds())
		res.SPU2.Add(f, (j2a.ResponseTime()+j2b.ResponseTime()).Seconds()/2)
	}
	return res
}

// Table renders the reserve sweep.
func (r ReserveResult) Table() *stats.Table {
	t := stats.NewTable(
		"Ablation: memory Reserve Threshold (§3.2, memory-isolation workload, PIso unbalanced)",
		"Reserve", "SPU1 resp (s)", "SPU2 resp (s)")
	for i, f := range r.Fractions {
		t.Addf(fmt.Sprintf("%.0f%%", f*100), r.SPU1.Points[i].Y, r.SPU2.Points[i].Y)
	}
	return t
}

// InodeLockResult is the §3.4 semaphore-granularity comparison: the
// paper changed the inode lock from a mutex to readers-writer because
// root-inode contention "has the potential to completely break
// performance isolation", and saw up to 20-30% better response time.
type InodeLockResult struct {
	Meter
	MutexResp sim.Time // mean pmake job response with the mutex lock
	RWResp    sim.Time // with the readers-writer lock
	MutexWait sim.Time // mean root-inode queueing delay, mutex
	RWWait    sim.Time // mean root-inode queueing delay, rw
}

// RunAblationInodeLock runs the Pmake8 balanced workload (heavy
// concurrent lookups) under both lock flavours. The lookup hold time is
// raised to make the serialization visible at this machine scale, as it
// was on the paper's four-processor runs.
func RunAblationInodeLock() InodeLockResult {
	var res InodeLockResult
	run := func(mutex bool) (sim.Time, sim.Time) {
		k := kernel.New(machine.Pmake8(), core.PIso, kernel.Options{InodeMutex: mutex, Profiled: true})
		var spus []core.SPUID
		for i := 0; i < 8; i++ {
			s := k.NewSPU(fmt.Sprintf("spu%d", i+1), 1)
			k.SetAffinity(s.ID(), i)
			spus = append(spus, s.ID())
		}
		k.Boot()
		// 16 concurrent compiles each issuing a lookup every ~120 ms
		// against a 30 ms hold saturates a mutual-exclusion lock while a
		// readers-writer lock stays uncontended.
		k.FS().LookupHold = 30 * sim.Millisecond
		params := workload.DefaultPmake()
		params.FilesPerCompile = 16 // lookup-heavy
		params.ComputePerFile = 100 * sim.Millisecond
		for i, id := range spus {
			k.Spawn(workload.Pmake(k, id, fmt.Sprintf("pmake%d", i), params))
		}
		end := k.Run()
		res.observe(k, fmt.Sprintf("mutex=%t", mutex))
		return end, k.FS().RootInode.MeanWait()
	}
	res.MutexResp, res.MutexWait = run(true)
	res.RWResp, res.RWWait = run(false)
	return res
}

// Table renders the inode-lock comparison.
func (r InodeLockResult) Table() *stats.Table {
	t := stats.NewTable(
		"Ablation: inode-lock granularity (§3.4, Pmake8 balanced)",
		"Lock", "Makespan (s)", "Mean inode wait (us)")
	t.Addf("mutex", r.MutexResp.Seconds(), r.MutexWait.Microseconds())
	t.Addf("rw", r.RWResp.Seconds(), r.RWWait.Microseconds())
	return t
}

// RevocationResult compares tick-based (<=10 ms) and IPI (immediate)
// CPU revocation on the CPU-isolation workload (§3.1: an IPI "might be
// needed to provide response time performance isolation guarantees").
type RevocationResult struct {
	Meter
	TickOcean sim.Time
	IPIOcean  sim.Time
	TickEda   sim.Time // mean Flashlite+VCS response
	IPIEda    sim.Time
}

// RunAblationRevocation runs the Fig 5 workload under both revocation
// mechanisms (PIso scheme).
func RunAblationRevocation() RevocationResult {
	var res RevocationResult
	run := func(ipi bool) (ocean, eda sim.Time) {
		k := kernel.New(machine.CPUIsolation(), core.PIso, kernel.Options{IPIRevoke: ipi, Profiled: true})
		spu1 := k.NewSPU("ocean", 1)
		spu2 := k.NewSPU("eda", 1)
		k.SetAffinity(spu1.ID(), 0)
		k.SetAffinity(spu2.ID(), 1)
		k.Boot()
		oc := workload.Ocean(k, spu1.ID(), "ocean", workload.DefaultOcean())
		k.Spawn(oc)
		var edaJobs []interface{ ResponseTime() sim.Time }
		for i := 0; i < 3; i++ {
			f := workload.ComputeBound(k, spu2.ID(), fmt.Sprintf("fl%d", i), workload.DefaultFlashlite())
			v := workload.ComputeBound(k, spu2.ID(), fmt.Sprintf("vcs%d", i), workload.DefaultVCS())
			k.Spawn(f)
			k.Spawn(v)
			edaJobs = append(edaJobs, f, v)
		}
		k.Run()
		res.observe(k, fmt.Sprintf("ipi=%t", ipi))
		var sum sim.Time
		for _, j := range edaJobs {
			sum += j.ResponseTime()
		}
		return oc.ResponseTime(), sum / sim.Time(len(edaJobs))
	}
	res.TickOcean, res.TickEda = run(false)
	res.IPIOcean, res.IPIEda = run(true)
	return res
}

// Table renders the revocation comparison.
func (r RevocationResult) Table() *stats.Table {
	t := stats.NewTable(
		"Ablation: CPU revocation latency (§3.1, CPU-isolation workload, PIso)",
		"Mechanism", "Ocean resp (s)", "Flashlite+VCS mean resp (s)")
	t.Addf("tick (<=10ms)", r.TickOcean.Seconds(), r.TickEda.Seconds())
	t.Addf("IPI (immediate)", r.IPIOcean.Seconds(), r.IPIEda.Seconds())
	return t
}

// NetworkResult is the §5 network-bandwidth extension demonstration:
// the light sender's completion under FCFS vs the fairness policy.
type NetworkResult struct {
	Meter
	FCFSLight sim.Time
	FairLight sim.Time
	FCFSHeavy sim.Time
	FairHeavy sim.Time
}

// RunAblationNetwork floods a 10 MB/s link from one SPU while another
// sends a short burst, under both link policies.
func RunAblationNetwork() NetworkResult {
	var res NetworkResult
	run := func(policy netbw.Policy) (light, heavy sim.Time) {
		eng := sim.NewEngine()
		l := netbw.NewLink(eng, 10e6, policy, 16*1024, 0)
		l.SetShare(core.FirstUserID, 1)
		l.SetShare(core.FirstUserID+1, 1)
		for i := 0; i < 300; i++ {
			l.Send(&netbw.Packet{Bytes: 32 * 1024, SPU: core.FirstUserID,
				Done: func(p *netbw.Packet) { heavy = p.Finished }})
		}
		for i := 0; i < 20; i++ {
			l.Send(&netbw.Packet{Bytes: 2 * 1024, SPU: core.FirstUserID + 1,
				Done: func(p *netbw.Packet) { light = p.Finished }})
		}
		eng.Run()
		res.countEngine(eng)
		return light, heavy
	}
	res.FCFSLight, res.FCFSHeavy = run(netbw.FCFS)
	res.FairLight, res.FairHeavy = run(netbw.Fair)
	return res
}

// Table renders the network comparison.
func (r NetworkResult) Table() *stats.Table {
	t := stats.NewTable(
		"Ablation: network bandwidth isolation (§5 extension, 10 MB/s link)",
		"Policy", "Light sender done (s)", "Heavy sender done (s)")
	t.Addf("FCFS", r.FCFSLight.Seconds(), r.FCFSHeavy.Seconds())
	t.Addf("Fair", r.FairLight.Seconds(), r.FairHeavy.Seconds())
	return t
}

package experiment

import (
	"perfiso/internal/core"
	"perfiso/internal/kernel"
	"perfiso/internal/machine"
	"perfiso/internal/sim"
	"perfiso/internal/stats"
	"perfiso/internal/workload"
)

// DiskPolicies is the §4.5 comparison order.
var DiskPolicies = []string{"Pos", "Iso", "PIso"}

// DiskRow is one row of Table 3 or Table 4: one scheduling policy's
// measurements for the two competing jobs.
type DiskRow struct {
	Policy string
	// RespA/RespB are the two jobs' response times (Pmk/Cpy in Table 3,
	// Small/Big in Table 4).
	RespA, RespB sim.Time
	// WaitA/WaitB are the mean per-request queue wait times.
	WaitA, WaitB sim.Time
	// AvgLatency is the mean positioning latency (seek plus rotational
	// delay) across all requests — the paper's "average disk latency",
	// which PIso keeps near Pos's value while Iso inflates it.
	AvgLatency sim.Time
	// AvgSeek is the mean seek component alone.
	AvgSeek sim.Time
}

// DiskResult carries one of the §4.5 tables.
type DiskResult struct {
	Meter
	Title          string
	LabelA, LabelB string
	Rows           []DiskRow
}

// DiskOptions tunes the disk-bandwidth experiments.
type DiskOptions struct {
	Kernel kernel.Options
}

// RunTable3 executes the pmake-copy workload: SPU 1 runs a pmake job,
// SPU 2 copies a 20 MB file, both on one shared HP 97560 with cold
// caches, under each of the three disk scheduling policies.
func RunTable3(opts DiskOptions) DiskResult {
	res := DiskResult{
		Title:  "Table 3: performance isolation on a disk-limited workload (pmake-copy)",
		LabelA: "Pmk", LabelB: "Cpy",
	}
	for _, pol := range DiskPolicies {
		kOpts := opts.Kernel
		kOpts.DiskSched = pol
		kOpts.Profiled = true
		k := kernel.New(machine.DiskIsolation(), core.PIso, kOpts)
		spu1 := k.NewSPU("pmake", 1)
		spu2 := k.NewSPU("copy", 1)
		k.SetAffinity(spu1.ID(), 0)
		k.SetAffinity(spu2.ID(), 0) // one shared disk
		k.Boot()

		pmk := workload.Pmake(k, spu1.ID(), "pmake", workload.DiskPmake())
		cpy := workload.Copy(k, spu2.ID(), "copy", workload.DefaultCopy(20*1024*1024))
		k.Spawn(pmk)
		k.Spawn(cpy)
		k.Run()
		res.observe(k, pol)

		d := k.Disk(0)
		row := DiskRow{
			Policy:     pol,
			RespA:      pmk.ResponseTime(),
			RespB:      cpy.ResponseTime(),
			AvgLatency: sim.FromSeconds(d.Total.Pos.Mean()),
			AvgSeek:    sim.FromSeconds(d.Total.Seek.Mean()),
		}
		if st := d.PerSPU[spu1.ID()]; st != nil {
			row.WaitA = sim.FromSeconds(st.Wait.Mean())
		}
		if st := d.PerSPU[spu2.ID()]; st != nil {
			row.WaitB = sim.FromSeconds(st.Wait.Mean())
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// RunTable4 executes the big-and-small-copy workload: SPU 1 copies a
// 500 KB file, SPU 2 a 5 MB file, on the same disk. Both streams are
// contiguous, so ignoring head position (Iso) costs real seek time —
// the case that motivates PIso's hybrid policy.
func RunTable4(opts DiskOptions) DiskResult {
	res := DiskResult{
		Title:  "Table 4: considering both head position and fairness (big-and-small-copy)",
		LabelA: "Small", LabelB: "Big",
	}
	for _, pol := range DiskPolicies {
		kOpts := opts.Kernel
		kOpts.DiskSched = pol
		kOpts.Profiled = true
		k := kernel.New(machine.DiskIsolation(), core.PIso, kOpts)
		spu1 := k.NewSPU("small", 1)
		spu2 := k.NewSPU("big", 1)
		k.SetAffinity(spu1.ID(), 0)
		k.SetAffinity(spu2.ID(), 0)
		k.Boot()

		small := workload.Copy(k, spu1.ID(), "small", workload.DefaultCopy(500*1024))
		big := workload.Copy(k, spu2.ID(), "big", workload.DefaultCopy(5*1024*1024))
		// The paper notes the larger copy "happening to issue requests
		// to the disk earlier than the smaller copy" locks it out under
		// Pos; spawn the big copy first to reproduce that phasing.
		k.Spawn(big)
		k.Spawn(small)
		k.Run()
		res.observe(k, pol)

		d := k.Disk(0)
		row := DiskRow{
			Policy:     pol,
			RespA:      small.ResponseTime(),
			RespB:      big.ResponseTime(),
			AvgLatency: sim.FromSeconds(d.Total.Pos.Mean()),
			AvgSeek:    sim.FromSeconds(d.Total.Seek.Mean()),
		}
		if st := d.PerSPU[spu1.ID()]; st != nil {
			row.WaitA = sim.FromSeconds(st.Wait.Mean())
		}
		if st := d.PerSPU[spu2.ID()]; st != nil {
			row.WaitB = sim.FromSeconds(st.Wait.Mean())
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Row returns the row for a policy, or nil.
func (r DiskResult) Row(policy string) *DiskRow {
	for i := range r.Rows {
		if r.Rows[i].Policy == policy {
			return &r.Rows[i]
		}
	}
	return nil
}

// Table renders the result in the paper's column layout.
func (r DiskResult) Table() *stats.Table {
	t := stats.NewTable(r.Title,
		"Conf",
		"Resp "+r.LabelA+" (s)", "Resp "+r.LabelB+" (s)",
		"Wait "+r.LabelA+" (ms)", "Wait "+r.LabelB+" (ms)",
		"Avg Latency (ms)", "Avg Seek (ms)")
	for _, row := range r.Rows {
		t.Addf(row.Policy,
			row.RespA.Seconds(), row.RespB.Seconds(),
			row.WaitA.Milliseconds(), row.WaitB.Milliseconds(),
			row.AvgLatency.Milliseconds(), row.AvgSeek.Milliseconds())
	}
	return t
}

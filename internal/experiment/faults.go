package experiment

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/fault"
	"perfiso/internal/kernel"
	"perfiso/internal/machine"
	"perfiso/internal/sim"
	"perfiso/internal/stats"
	"perfiso/internal/workload"
)

// DefaultFaultPlan is the isolation-under-faults schedule: every fault
// lands on resources the victim SPU owns under an isolating scheme —
// its affinity disk (disk 0) and the low-index CPUs that AssignHomes
// gives the first user SPU — plus a global frame loss. Times are chosen
// so the faults cover the bulk of a DefaultPmake run (~3 s).
const DefaultFaultPlan = "disk-fail:0:300ms:1500ms:0.4," +
	"disk-slow:0:300ms:1500ms:4," +
	"cpu-slow:0:200ms:2s:0.25," +
	"cpu-off:1:200ms:2s," +
	"mem-loss:0:400ms:1500ms:0.2"

// FaultRun is one scheme's measurement: mean pmake response time for
// the victim SPU (whose resources are faulted) and the steady SPU, in
// the faulted run and in a fault-free baseline run of the same kernel
// configuration.
type FaultRun struct {
	Victim, VictimBase sim.Time
	Steady, SteadyBase sim.Time
}

// FaultResult carries the isolation-under-faults family.
type FaultResult struct {
	Meter
	Plan string
	Runs map[core.Scheme]FaultRun
}

// FaultOptions tunes the experiment.
type FaultOptions struct {
	Kernel kernel.Options
	// Plan overrides DefaultFaultPlan (parsed per run).
	Plan string
	// Pmake overrides the per-SPU job shape.
	Pmake workload.PmakeParams
}

// RunFaults executes the isolation-under-faults family: two equal SPUs
// on the 8-CPU fault-isolation machine, each running one pmake job on
// its own disk. The fault plan degrades the victim SPU's disk and CPUs
// and removes frames machine-wide; each scheme runs once clean and once
// faulted. The isolation question is the steady SPU's column: under
// PIso the faults are absorbed by the victim's partition, under SMP the
// shared pools spread them to the bystander.
func RunFaults(opts FaultOptions) FaultResult {
	if opts.Plan == "" {
		opts.Plan = DefaultFaultPlan
	}
	if opts.Pmake.Parallel == 0 {
		opts.Pmake = workload.DefaultPmake()
	}
	res := FaultResult{Plan: opts.Plan, Runs: make(map[core.Scheme]FaultRun)}
	for _, scheme := range Schemes {
		base := runFaultConfig(scheme, "", opts, &res.Meter)
		faulted := runFaultConfig(scheme, opts.Plan, opts, &res.Meter)
		res.Runs[scheme] = FaultRun{
			Victim: faulted.Victim, VictimBase: base.Victim,
			Steady: faulted.Steady, SteadyBase: base.Steady,
		}
	}
	return res
}

// runFaultConfig boots one kernel (clean when spec is empty) and
// returns the two SPUs' pmake response times.
func runFaultConfig(scheme core.Scheme, spec string, opts FaultOptions, m *Meter) FaultRun {
	kopts := opts.Kernel
	if kopts.MetricsPeriod == 0 {
		kopts.MetricsPeriod = metricsPeriod
	}
	if spec != "" {
		plan, err := fault.ParsePlan(spec)
		if err != nil {
			panic(fmt.Sprintf("experiment: bad fault plan: %v", err))
		}
		kopts.Faults = plan
	}
	kopts.Profiled = true
	k := kernel.New(machine.FaultIsolation(), scheme, kopts)
	// The victim SPU is created first so AssignHomes gives it the
	// low-index CPUs the plan targets; its files live on disk 0.
	victim := k.NewSPU("victim", 1)
	steady := k.NewSPU("steady", 1)
	k.SetAffinity(victim.ID(), 0)
	k.SetAffinity(steady.ID(), 1)
	k.Boot()
	vj := workload.Pmake(k, victim.ID(), "victim-pmake", opts.Pmake)
	sj := workload.Pmake(k, steady.ID(), "steady-pmake", opts.Pmake)
	k.Spawn(vj)
	k.Spawn(sj)
	k.Run()
	config := scheme.String() + "/clean"
	if spec != "" {
		config = scheme.String() + "/faulted"
	}
	m.observe(k, config)
	return FaultRun{Victim: vj.ResponseTime(), Steady: sj.ResponseTime()}
}

// Rows returns, per scheme, each SPU's faulted response time normalized
// to that scheme's own fault-free run (=100).
func (r FaultResult) Rows() []struct {
	Scheme core.Scheme
	Victim float64
	Steady float64
} {
	out := make([]struct {
		Scheme core.Scheme
		Victim float64
		Steady float64
	}, 0, len(Schemes))
	for _, s := range Schemes {
		run := r.Runs[s]
		out = append(out, struct {
			Scheme core.Scheme
			Victim float64
			Steady float64
		}{s, Norm(run.Victim, run.VictimBase), Norm(run.Steady, run.SteadyBase)})
	}
	return out
}

// Table renders the family as a text table.
func (r FaultResult) Table() *stats.Table {
	t := stats.NewTable(
		"Isolation under faults — pmake response time in the faulted run\n"+
			"(normalized to the same scheme's fault-free run = 100;\n"+
			"faults target the victim SPU's disk and CPUs, plus a global frame loss)",
		"Scheme", "Victim SPU", "Steady SPU")
	for _, row := range r.Rows() {
		t.Addf(row.Scheme.String(), row.Victim, row.Steady)
	}
	return t
}

package experiment

import (
	"perfiso/internal/kernel"
	"perfiso/internal/sim"
)

// Meter records how much raw simulation work a runner performed. Result
// types embed it so the benchmark harness can report throughput
// (events/sec) per experiment without reaching into kernels.
type Meter struct {
	// Events is the number of simulation events dispatched, summed over
	// every engine the runner booted.
	Events uint64
	// Metrics carries one summary per kernel that ran with
	// observability on, in run order (see Meter.observe).
	Metrics []MetricSummary
	// Attribution carries one profiler summary per kernel that ran
	// with profiling on, in run order (see Meter.observe).
	Attribution []AttributionSummary
	// Latency carries one tail-latency summary per kernel that ran
	// with latency tracking on, in run order (see Meter.observe).
	Latency []LatencySummary
	// Controller carries one controller summary per kernel that ran
	// with the closed loop on, in run order (see Meter.observe).
	Controller []ControllerSummary
}

// count folds a finished kernel's engine dispatch total into the meter.
func (m *Meter) count(k *kernel.Kernel) { m.Events += k.Engine().Dispatched() }

// countEngine folds a bare engine's dispatch total into the meter.
func (m *Meter) countEngine(e *sim.Engine) { m.Events += e.Dispatched() }

package experiment

import (
	"strings"
	"testing"
	"time"
)

// One panicking experiment must not take down the pool: the survivors
// finish, the failure is captured with its id and stack, and the bench
// report records it.
func TestRunAllRecoversPanickingSpec(t *testing.T) {
	ok := func(id string) Spec {
		return Spec{ID: id, Title: id, Run: func() Output {
			return Output{Events: 7}
		}}
	}
	specs := []Spec{
		ok("healthy-1"),
		{ID: "exploder", Title: "exploder", Run: func() Output {
			panic("invariant violation at 3s [mem on tick]: books off")
		}},
		ok("healthy-2"),
	}
	results := RunAll(specs, 2)
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy specs reported errors: %v, %v", results[0].Err, results[2].Err)
	}
	if results[0].Output.Events != 7 || results[2].Output.Events != 7 {
		t.Fatal("healthy specs lost their output")
	}
	err := results[1].Err
	if err == nil {
		t.Fatal("panicking spec reported no error")
	}
	for _, want := range []string{"exploder", "books off", "goroutine"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err.Error(), want)
		}
	}

	b := BenchReport(results, 2, false, time.Second)
	if b.Experiments[1].Error == "" {
		t.Fatal("bench report dropped the failure")
	}
	if b.Experiments[0].Error != "" || b.Experiments[2].Error != "" {
		t.Fatal("bench report marked healthy experiments failed")
	}
}

// A panic in every worker's first spec must still drain the queue.
func TestRunAllAllPanicking(t *testing.T) {
	boom := func(id string) Spec {
		return Spec{ID: id, Run: func() Output { panic(id) }}
	}
	results := RunAll([]Spec{boom("a"), boom("b"), boom("c")}, 3)
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("result %d lost its panic", i)
		}
	}
}

package experiment

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/kernel"
	"perfiso/internal/machine"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
	"perfiso/internal/stats"
	"perfiso/internal/workload"
)

// SensitivityResult sweeps background load on the Pmake8 machine: SPU 1
// always runs one job; SPUs 5-8 run 1..N jobs each. The paper evaluates
// one unbalanced point (2 jobs); the sweep shows the isolation claim is
// not an artifact of that point — the victim's normalized response stays
// flat under PIso at every load level while SMP's grows with load.
type SensitivityResult struct {
	Meter
	Loads []int // background jobs per heavy SPU
	// Victim[scheme] is the series of SPU 1's normalized response
	// (load=1 for that scheme = 100).
	Victim map[core.Scheme]*stats.Series
}

// RunSensitivity sweeps background jobs per heavy SPU over loads
// (default 1, 2, 3).
func RunSensitivity(loads []int) SensitivityResult {
	if len(loads) == 0 {
		loads = []int{1, 2, 3}
	}
	res := SensitivityResult{Loads: loads, Victim: make(map[core.Scheme]*stats.Series)}
	for _, scheme := range Schemes {
		series := &stats.Series{Name: scheme.String()}
		var base sim.Time
		for _, load := range loads {
			v := runSensitivityPoint(scheme, load, &res.Meter)
			if base == 0 {
				base = v
			}
			series.Add(float64(load), Norm(v, base))
		}
		res.Victim[scheme] = series
	}
	return res
}

// runSensitivityPoint runs the victim job against load background jobs
// in each of SPUs 5-8 and returns the victim's response time.
func runSensitivityPoint(scheme core.Scheme, load int, m *Meter) sim.Time {
	k := kernel.New(machine.Pmake8(), scheme, kernel.Options{Profiled: true})
	var spus []*core.SPU
	for i := 0; i < 8; i++ {
		s := k.NewSPU(fmt.Sprintf("spu%d", i+1), 1)
		k.SetAffinity(s.ID(), i)
		spus = append(spus, s)
	}
	k.Boot()
	params := workload.DefaultPmake()
	var victim *proc.Process
	for i, s := range spus {
		jobs := 1
		if i >= 4 {
			jobs = load
		}
		for j := 0; j < jobs; j++ {
			p := workload.Pmake(k, s.ID(), fmt.Sprintf("pmake%d.%d", i+1, j), params)
			if i == 0 && j == 0 {
				victim = p
			}
			k.Spawn(p)
		}
	}
	k.Run()
	m.observe(k, fmt.Sprintf("%s/load%d", scheme, load))
	return victim.ResponseTime()
}

// Table renders the sweep: one row per load level, one column per
// scheme.
func (r SensitivityResult) Table() *stats.Table {
	t := stats.NewTable(
		"Sensitivity: victim SPU response vs background load\n"+
			"(jobs per heavy SPU; normalized to each scheme's load=1 = 100)",
		"Load", "SMP", "Quo", "PIso")
	for _, load := range r.Loads {
		x := float64(load)
		smp, _ := r.Victim[core.SMP].YAt(x)
		quo, _ := r.Victim[core.Quo].YAt(x)
		piso, _ := r.Victim[core.PIso].YAt(x)
		t.Addf(load, smp, quo, piso)
	}
	return t
}

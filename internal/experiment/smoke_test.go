package experiment

import (
	"testing"
)

// TestSmokePrintAll runs every experiment once and prints the tables;
// run with -v to inspect the shapes during development.
func TestSmokePrintAll(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test is slow")
	}
	p := RunPmake8(Pmake8Options{})
	t.Logf("\n%s", p.Fig2Table())
	t.Logf("\n%s", p.Fig3Table())
	c := RunCPUIso(CPUIsoOptions{})
	t.Logf("\n%s", c.Table())
	m := RunMemIso(MemIsoOptions{})
	t.Logf("\n%s", m.Table())
	d3 := RunTable3(DiskOptions{})
	t.Logf("\n%s", d3.Table())
	d4 := RunTable4(DiskOptions{})
	t.Logf("\n%s", d4.Table())
}

package experiment

import (
	"testing"

	"perfiso/internal/sim"
)

// Gang scheduling keeps the interfered Ocean much closer to its
// no-interference bound than individual scheduling does.
func TestAblationGangShape(t *testing.T) {
	r := RunAblationGang()
	if r.AloneOcean <= 0 {
		t.Fatal("baseline missing")
	}
	if r.PlainOcean <= r.AloneOcean {
		t.Fatal("interference had no effect on the plain run")
	}
	if r.GangOcean >= r.PlainOcean {
		t.Errorf("gang scheduling did not help: %v vs %v", r.GangOcean, r.PlainOcean)
	}
	// The gang run should recover most of the interference penalty.
	plainPenalty := float64(r.PlainOcean - r.AloneOcean)
	gangPenalty := float64(r.GangOcean - r.AloneOcean)
	if gangPenalty > 0.6*plainPenalty {
		t.Errorf("gang recovered too little: penalties %.3fs vs %.3fs",
			gangPenalty/1e9, plainPenalty/1e9)
	}
	if r.Table().NumRows() != 3 {
		t.Fatal("table rows")
	}
}

// Tail latency ordering: SMP worst, PIso-tick bounded by the tick,
// PIso-IPI matching Quo's dedicated-machine latency.
func TestServerLatencyShape(t *testing.T) {
	r := RunServerLatency()
	smp, quo := r.Row("SMP"), r.Row("Quo")
	tick, ipi := r.Row("PIso-tick"), r.Row("PIso-IPI")
	if smp == nil || quo == nil || tick == nil || ipi == nil {
		t.Fatal("missing rows")
	}
	if tick.Max >= smp.Max {
		t.Errorf("PIso tail %v not below SMP %v", tick.Max, smp.Max)
	}
	// Tick revocation bounds the extra wait at ~one tick (10 ms).
	if tick.Max > quo.Max+11*sim.Millisecond {
		t.Errorf("PIso-tick tail %v exceeds Quo %v + one tick", tick.Max, quo.Max)
	}
	// IPI removes the tick delay entirely.
	if ipi.Max > quo.Max+sim.Millisecond {
		t.Errorf("PIso-IPI tail %v should match Quo %v", ipi.Max, quo.Max)
	}
	if r.Table().NumRows() != 4 {
		t.Fatal("table rows")
	}
}

// §3.1's cache story: pollution makes lending cost the lender; the loan
// rate limiter recovers most of the loss.
func TestAblationAffinityShape(t *testing.T) {
	r := RunAblationAffinity()
	off := r.Row("no cache model")
	on := r.Row("cache reload 1ms")
	lim := r.Row("reload + loan limiter")
	if off == nil || on == nil || lim == nil {
		t.Fatal("missing rows")
	}
	if on.Ocean <= off.Ocean {
		t.Errorf("cache model had no cost: %v vs %v", on.Ocean, off.Ocean)
	}
	if lim.Ocean >= on.Ocean {
		t.Errorf("loan limiter did not help the lender: %v vs %v", lim.Ocean, on.Ocean)
	}
	if lim.Loans >= on.Loans {
		t.Errorf("limiter did not reduce loans: %d vs %d", lim.Loans, on.Loans)
	}
	if r.Table().NumRows() != 3 {
		t.Fatal("table rows")
	}
}

// §3.4: the coarse page-insert lock costs real queueing; striping
// removes it.
func TestAblationPageInsertShape(t *testing.T) {
	r := RunAblationPageInsert()
	if r.CoarseWait <= r.StripedWait {
		t.Errorf("coarse wait %v not above striped %v", r.CoarseWait, r.StripedWait)
	}
	if r.StripedResp > r.CoarseResp {
		t.Errorf("striping slowed the run: %v vs %v", r.StripedResp, r.CoarseResp)
	}
	if r.Table().NumRows() != 2 {
		t.Fatal("table rows")
	}
}

package experiment

import (
	"perfiso/internal/core"
	"perfiso/internal/kernel"
	"perfiso/internal/machine"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
	"perfiso/internal/stats"
	"perfiso/internal/workload"
)

// MemIsoRun is one configuration's measurement.
type MemIsoRun struct {
	SPU1 sim.Time // mean job response in SPU 1 (always one job)
	SPU2 sim.Time // mean job response in SPU 2 (one or two jobs)
}

// MemIsoResult carries Figure 7: both graphs derive from the balanced
// and unbalanced runs per scheme.
type MemIsoResult struct {
	Meter
	Balanced   map[core.Scheme]MemIsoRun
	Unbalanced map[core.Scheme]MemIsoRun
	BaseSMP    sim.Time // SMP balanced SPU1 response (normalization base)
}

// MemIsoOptions tunes the experiment.
type MemIsoOptions struct {
	Kernel kernel.Options
	Params workload.PmakeParams // zero -> workload.MemPmake()
}

// RunMemIso executes the memory-isolation workload (Figure 6's
// structure): two SPUs on a 4-CPU, 16 MB machine; memory suffices for
// one pmake job per SPU but two jobs in one SPU cause memory pressure.
// Balanced: one job each. Unbalanced: SPU 2 runs two jobs.
func RunMemIso(opts MemIsoOptions) MemIsoResult {
	if opts.Params.Parallel == 0 {
		opts.Params = workload.MemPmake()
	}
	res := MemIsoResult{
		Balanced:   make(map[core.Scheme]MemIsoRun),
		Unbalanced: make(map[core.Scheme]MemIsoRun),
	}
	for _, scheme := range Schemes {
		res.Balanced[scheme] = runMemIsoConfig(scheme, false, opts, &res.Meter)
		res.Unbalanced[scheme] = runMemIsoConfig(scheme, true, opts, &res.Meter)
	}
	res.BaseSMP = res.Balanced[core.SMP].SPU1
	return res
}

func runMemIsoConfig(scheme core.Scheme, unbalanced bool, opts MemIsoOptions, m *Meter) MemIsoRun {
	if opts.Kernel.MetricsPeriod == 0 {
		opts.Kernel.MetricsPeriod = metricsPeriod
	}
	opts.Kernel.Profiled = true
	k := kernel.New(machine.MemoryIsolation(), scheme, opts.Kernel)
	spu1 := k.NewSPU("spu1", 1)
	spu2 := k.NewSPU("spu2", 1)
	k.SetAffinity(spu1.ID(), 0)
	k.SetAffinity(spu2.ID(), 1)
	k.Boot()

	j1 := workload.Pmake(k, spu1.ID(), "job1", opts.Params)
	k.Spawn(j1)
	jobs2 := []*proc.Process{workload.Pmake(k, spu2.ID(), "job2a", opts.Params)}
	k.Spawn(jobs2[0])
	if unbalanced {
		j := workload.Pmake(k, spu2.ID(), "job2b", opts.Params)
		jobs2 = append(jobs2, j)
		k.Spawn(j)
	}
	k.Run()
	config := scheme.String() + "/balanced"
	if unbalanced {
		config = scheme.String() + "/unbalanced"
	}
	m.observe(k, config)
	ts := make([]sim.Time, len(jobs2))
	for i, j := range jobs2 {
		ts[i] = j.ResponseTime()
	}
	return MemIsoRun{SPU1: j1.ResponseTime(), SPU2: meanResponse(ts)}
}

// IsolationRows returns Figure 7's lower graph: SPU 1's normalized
// response in the balanced and unbalanced configurations per scheme.
func (r MemIsoResult) IsolationRows() []struct {
	Scheme               core.Scheme
	Balanced, Unbalanced float64
} {
	out := make([]struct {
		Scheme               core.Scheme
		Balanced, Unbalanced float64
	}, 0, len(Schemes))
	for _, s := range Schemes {
		out = append(out, struct {
			Scheme               core.Scheme
			Balanced, Unbalanced float64
		}{s, Norm(r.Balanced[s].SPU1, r.BaseSMP), Norm(r.Unbalanced[s].SPU1, r.BaseSMP)})
	}
	return out
}

// SharingRows returns Figure 7's upper graph: SPU 2's normalized
// response (two jobs, unbalanced) per scheme, against its balanced
// baseline.
func (r MemIsoResult) SharingRows() []struct {
	Scheme               core.Scheme
	Balanced, Unbalanced float64
} {
	out := make([]struct {
		Scheme               core.Scheme
		Balanced, Unbalanced float64
	}, 0, len(Schemes))
	base := r.Balanced[core.SMP].SPU2
	for _, s := range Schemes {
		out = append(out, struct {
			Scheme               core.Scheme
			Balanced, Unbalanced float64
		}{s, Norm(r.Balanced[s].SPU2, base), Norm(r.Unbalanced[s].SPU2, base)})
	}
	return out
}

// Table renders Figure 7 (both graphs) as text tables.
func (r MemIsoResult) Table() *stats.Table {
	t := stats.NewTable(
		"Figure 7: memory isolation workload (normalized response times)",
		"Graph", "Scheme", "Balanced", "Unbalanced")
	for _, row := range r.SharingRows() {
		t.Addf("sharing (SPU2)", row.Scheme.String(), row.Balanced, row.Unbalanced)
	}
	for _, row := range r.IsolationRows() {
		t.Addf("isolation (SPU1)", row.Scheme.String(), row.Balanced, row.Unbalanced)
	}
	return t
}

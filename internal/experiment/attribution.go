package experiment

import (
	"bytes"
	"encoding/json"
	"io"

	"perfiso/internal/core"
	"perfiso/internal/kernel"
	"perfiso/internal/profile"
)

// AttributionRow is one process's critical-path latency breakdown from
// the simulated-time profiler: its response time split across the state
// buckets. All fields are integer simulated nanoseconds and the buckets
// sum to Response exactly (the profiler's conservation identity, which
// the invariant auditor enforces during the run).
type AttributionRow struct {
	Proc        string `json:"proc"`
	SPU         int    `json:"spu"`
	Response    int64  `json:"response_ns"`
	Run         int64  `json:"run_ns"`
	Runnable    int64  `json:"runnable_ns"`
	MemWait     int64  `json:"memwait_ns"`
	DiskWait    int64  `json:"diskwait_ns"`
	DiskQueue   int64  `json:"diskqueue_ns"`
	DiskService int64  `json:"diskservice_ns"`
	Backoff     int64  `json:"backoff_ns"`
	Swap        int64  `json:"swap_ns"`
	Sleep       int64  `json:"sleep_ns"`
	Sync        int64  `json:"sync_ns"`
	LockWait    int64  `json:"lockwait_ns"`
	Ready       int64  `json:"ready_ns"`
}

// Sum returns the row's bucket total, which equals Response when the
// profiler's conservation identity held.
func (r AttributionRow) Sum() int64 {
	return r.Run + r.Runnable + r.MemWait + r.DiskWait + r.DiskQueue +
		r.DiskService + r.Backoff + r.Swap + r.Sleep + r.Sync +
		r.LockWait + r.Ready
}

// TheftRow is one cell of the interference matrix: simulated time the
// culprit SPU's activity on a resource cost the victim SPU.
type TheftRow struct {
	Victim   string `json:"victim"`
	Culprit  string `json:"culprit"`
	Resource string `json:"resource"`
	Stolen   int64  `json:"stolen_ns"`
}

// AttributionSummary is one configuration's profiler output: per-process
// latency breakdowns plus the cross-SPU interference matrix. Everything
// is simulation-derived integer nanoseconds, so the same run always
// summarizes to the same bytes.
type AttributionSummary struct {
	// Config names the run within its experiment, e.g. "PIso" or
	// "SMP/unbalanced".
	Config string `json:"config"`
	// Tasks counts the finished processes the profiler accounted.
	Tasks int `json:"tasks"`
	// ConservationViolations counts tasks whose buckets failed to sum
	// to their response time; always 0 unless the profiler is broken.
	ConservationViolations int64 `json:"conservation_violations"`
	// Procs is one row per finished process, in finish order.
	Procs []AttributionRow `json:"procs"`
	// Theft is the interference matrix, sorted by victim, culprit,
	// resource. Under PIso an isolated SPU's victim rows are ~0.
	Theft []TheftRow `json:"theft,omitempty"`

	// spans renders the run's span JSONL for the -profile artifact on
	// demand — serializing thousands of spans costs more than some whole
	// runs, so it only happens when the artifact is actually written.
	// Unexported so bench JSON stays a summary.
	spans func() string
}

// summarizeAttribution distills a finished kernel's profiler. ok is
// false when the kernel ran without profiling.
func summarizeAttribution(k *kernel.Kernel, config string) (AttributionSummary, bool) {
	p := k.Profile()
	if p == nil {
		return AttributionSummary{}, false
	}
	names := make(map[int]string)
	for _, u := range k.SPUs().All() {
		names[int(u.ID())] = u.Name()
	}
	s := AttributionSummary{Config: config, ConservationViolations: p.Violations()}
	for _, t := range p.Tasks() {
		b := func(st profile.State) int64 { return int64(t.Buckets[st]) }
		s.Procs = append(s.Procs, AttributionRow{
			Proc:        t.Proc,
			SPU:         int(t.SPU),
			Response:    int64(t.Finished - t.Started),
			Run:         b(profile.StateRun),
			Runnable:    b(profile.StateRunnable),
			MemWait:     b(profile.StateMemWait),
			DiskWait:    b(profile.StateDiskWait),
			DiskQueue:   b(profile.StateDiskQueue),
			DiskService: b(profile.StateDiskService),
			Backoff:     b(profile.StateBackoff),
			Swap:        b(profile.StateSwap),
			Sleep:       b(profile.StateSleep),
			Sync:        b(profile.StateSync),
			LockWait:    b(profile.StateLockWait),
			Ready:       b(profile.StateReady),
		})
	}
	s.Tasks = len(s.Procs)
	for _, t := range p.Interference() {
		s.Theft = append(s.Theft, TheftRow{
			Victim:   spuDisplay(names, t.Victim),
			Culprit:  spuDisplay(names, t.Culprit),
			Resource: t.Resource.String(),
			Stolen:   int64(t.Stolen),
		})
	}
	s.spans = func() string {
		var buf bytes.Buffer
		if err := p.WriteSpans(&buf); err != nil {
			return ""
		}
		return buf.String()
	}
	return s, true
}

// spuDisplay names an SPU for the theft rows: its registered name when
// it has one, profile.SPUName otherwise.
func spuDisplay(names map[int]string, id core.SPUID) string {
	if n, ok := names[int(id)]; ok {
		return n
	}
	return profile.SPUName(id)
}

// attributionHeader introduces one configuration's block in the
// -profile artifact. Fixed field order keeps the bytes deterministic.
type attributionHeader struct {
	Type                   string `json:"type"`
	Experiment             string `json:"experiment"`
	Config                 string `json:"config"`
	Tasks                  int    `json:"tasks"`
	ConservationViolations int64  `json:"conservation_violations"`
}

type attributionProcLine struct {
	Type string `json:"type"`
	AttributionRow
}

type attributionTheftLine struct {
	Type string `json:"type"`
	TheftRow
}

// ProfileJSONL writes the per-experiment attribution artifact: for every
// profiled configuration, one "experiment" header line, one "proc" line
// per finished process, one "theft" line per interference-matrix cell,
// and then the run's span JSONL (the same lines pisosim -spans writes).
// Results appear in registry order and every value is integer simulated
// time, so the artifact is byte-identical at any -parallel level.
func ProfileJSONL(results []Result, w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range results {
		for _, as := range r.Output.Attribution {
			if err := enc.Encode(attributionHeader{
				Type: "experiment", Experiment: r.Spec.ID, Config: as.Config,
				Tasks: as.Tasks, ConservationViolations: as.ConservationViolations,
			}); err != nil {
				return err
			}
			for _, p := range as.Procs {
				if err := enc.Encode(attributionProcLine{Type: "proc", AttributionRow: p}); err != nil {
					return err
				}
			}
			for _, t := range as.Theft {
				if err := enc.Encode(attributionTheftLine{Type: "theft", TheftRow: t}); err != nil {
					return err
				}
			}
			if as.spans != nil {
				if _, err := io.WriteString(w, as.spans()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

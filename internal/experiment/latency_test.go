package experiment

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"perfiso/internal/sim"
)

// The latency artifact is part of the harness determinism contract:
// byte-identical at any -parallel level, valid JSONL, one header line
// per configuration that ran with latency tracking on.
func TestLatencyArtifactDeterministicAcrossParallel(t *testing.T) {
	s, ok := Lookup("open-arrival")
	if !ok {
		t.Fatal("missing spec open-arrival")
	}
	specs := []Spec{s}
	render := func(parallel int) string {
		var buf bytes.Buffer
		if err := LatencyJSONL(RunAll(specs, parallel), &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("latency artifact differs between -parallel 1 and 8:\n--- seq ---\n%.600s\n--- par ---\n%.600s", seq, par)
	}
	var headers int
	types := make(map[string]int)
	for _, line := range strings.Split(strings.TrimSpace(seq), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("artifact line is not JSON: %s", line)
		}
		kind, _ := obj["type"].(string)
		types[kind]++
		if kind == "experiment" {
			headers++
		}
	}
	// 4 solo runs + SMP + PIso.
	if headers != 6 {
		t.Fatalf("artifact has %d experiment headers, want 6", headers)
	}
	for _, kind := range []string{"latency", "slo", "latency_window"} {
		if types[kind] == 0 {
			t.Fatalf("artifact has no %q lines; types seen: %v", kind, types)
		}
	}
	// Wall-clock never leaks into the artifact.
	if strings.Contains(seq, "wall") {
		t.Fatal("latency artifact mentions wall time")
	}
}

// The artifact is also byte-identical across event-queue
// implementations — simulated time only, no tie-break leakage.
func TestLatencyArtifactDeterministicAcrossQueues(t *testing.T) {
	s, ok := Lookup("open-arrival")
	if !ok {
		t.Fatal("missing spec open-arrival")
	}
	render := func(kind sim.QueueKind) string {
		old := sim.SetDefaultQueue(kind)
		defer sim.SetDefaultQueue(old)
		var buf bytes.Buffer
		if err := LatencyJSONL(RunAll([]Spec{s}, 1), &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	cal := render(sim.QueueCalendar)
	heap := render(sim.QueueHeap)
	if cal != heap {
		t.Fatalf("latency artifact differs between calendar and heap queues:\n--- calendar ---\n%.600s\n--- heap ---\n%.600s", cal, heap)
	}
}

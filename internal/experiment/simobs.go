package experiment

import (
	"fmt"
	"strings"

	"perfiso/internal/simobs"
	"perfiso/internal/stats"
)

// SimObsResult is one registry scenario run under the simulator
// self-observability collector: the experiment's normal output plus the
// telemetry report built from every engine it constructed.
type SimObsResult struct {
	Spec   Spec
	Output Output
	Report *simobs.Report
	Err    error
}

// RunSimObs executes the named registry scenarios (all of them when ids
// is empty) with the simobs collector installed, so every engine each
// experiment builds is observed. Scenarios run sequentially — the
// collector hook is process-wide — and the experiments' own tables are
// byte-identical to an unobserved run (the observer is read-only with
// respect to simulated time; a test enforces this).
func RunSimObs(ids []string, cfg simobs.Config) ([]SimObsResult, error) {
	specs := Registry()
	if len(ids) > 0 {
		picked := make([]Spec, 0, len(ids))
		for _, id := range ids {
			s, ok := Lookup(id)
			if !ok {
				return nil, fmt.Errorf("unknown simobs scenario %q; known ids: %s",
					id, strings.Join(IDs(), ", "))
			}
			picked = append(picked, s)
		}
		specs = picked
	}
	results := make([]SimObsResult, 0, len(specs))
	for _, s := range specs {
		col := simobs.Collect(cfg)
		out, err := runSpec(s)
		rep := col.Finish(s.ID)
		results = append(results, SimObsResult{Spec: s, Output: out, Report: rep, Err: err})
	}
	return results, nil
}

// FeasibilityTable condenses the parallelism-feasibility numbers of
// several observed scenarios into one table: how many resource domains
// each scenario touches, what fraction of its event chains cross a
// domain boundary, and the available lookahead — the per-scenario
// answer to "is conservative parallel simulation worth building, and at
// what window size".
func FeasibilityTable(results []SimObsResult) *stats.Table {
	t := stats.NewTable("parallelism feasibility",
		"scenario", "events", "domains", "cross%", "mean la us", "min la us")
	for _, r := range results {
		if r.Report == nil {
			continue
		}
		rep := r.Report
		t.Addf(rep.Scenario,
			fmt.Sprintf("%d", rep.Events),
			len(rep.Domains),
			100*rep.CrossFraction(),
			rep.MeanLookahead().Microseconds(),
			rep.MinLookahead().Microseconds())
	}
	return t
}

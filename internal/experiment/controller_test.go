package experiment

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"perfiso/internal/sim"
)

// TestSLOControllerSeparation is the acceptance gate for the closed
// loop: under the same diurnal load shift composed with disk-slow and
// cpu-off faults, adaptive PIso holds every tenant SLO, static PIso
// misses at least one, and SMP misses more than static — and the
// adaptive run actually adapted (retunes and boosts happened, the
// degraded disk tripped its breaker). The invariant auditor runs
// fail-fast inside every kernel here, so the run completing at all
// certifies zero violations of the conservation, floor, and bounded-
// actuation laws.
func TestSLOControllerSeparation(t *testing.T) {
	r := RunSLOController()
	misses := func(config string) int {
		c := r.Config(config)
		if c == nil {
			t.Fatalf("missing frontier row %q", config)
		}
		return c.Tenants - c.Held
	}
	if m := misses("PIso-adaptive"); m != 0 {
		t.Errorf("adaptive PIso misses %d SLOs, want 0:\n%s", m, r.Table())
	}
	if m := misses("PIso-static"); m < 1 {
		t.Errorf("static PIso misses %d SLOs, want >= 1", m)
	}
	if smp, static := misses("SMP"), misses("PIso-static"); smp <= static {
		t.Errorf("SMP misses %d SLOs, static PIso %d; want SMP to miss more", smp, static)
	}
	ad := r.Config("PIso-adaptive")
	if ad.Stats.Retunes == 0 || ad.Stats.Boosts == 0 {
		t.Errorf("adaptive run did not adapt: %+v", ad.Stats)
	}
	if ad.Stats.Trips == 0 {
		t.Errorf("disk-slow fault did not trip the breaker: %+v", ad.Stats)
	}
	// The frontier's point: the SLOs are not bought with throughput.
	// Noise keeps within a few percent of what it gets without the
	// controller.
	st := r.Config("PIso-static")
	if ad.NoiseCPU < st.NoiseCPU*0.9 {
		t.Errorf("controller cost noise %.2fs of CPU (static %.2fs); degradation should be graceful",
			st.NoiseCPU-ad.NoiseCPU, st.NoiseCPU)
	}
	for _, cfg := range []string{"SMP", "PIso-static", "PIso-adaptive"} {
		if c := r.Config(cfg); c.Util <= 0 {
			t.Errorf("%s reports zero utilization", cfg)
		}
	}
}

// The controller artifact joins the determinism contract: byte-
// identical at any -parallel level, valid JSONL, one experiment header
// per configuration that ran with the loop on, and the decision lines
// inside carry sim-time stamps only.
func TestControllerArtifactDeterministicAcrossParallel(t *testing.T) {
	s, ok := Lookup("slo-controller")
	if !ok {
		t.Fatal("missing spec slo-controller")
	}
	specs := []Spec{s}
	render := func(parallel int) string {
		var buf bytes.Buffer
		if err := ControllerJSONL(RunAll(specs, parallel), &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("controller artifact differs between -parallel 1 and 8:\n--- seq ---\n%.600s\n--- par ---\n%.600s", seq, par)
	}
	var headers int
	types := make(map[string]int)
	for _, line := range strings.Split(strings.TrimSpace(seq), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("artifact line is not JSON: %s", line)
		}
		kind, _ := obj["type"].(string)
		types[kind]++
		if kind == "experiment" {
			headers++
		}
	}
	// Only the adaptive configuration runs the loop.
	if headers != 1 {
		t.Fatalf("artifact has %d experiment headers, want 1", headers)
	}
	for _, kind := range []string{"controller", "control"} {
		if types[kind] == 0 {
			t.Fatalf("artifact has no %q lines; types seen: %v", kind, types)
		}
	}
	if strings.Contains(seq, "wall") {
		t.Fatal("controller artifact mentions wall time")
	}
}

// The artifact is also byte-identical across event-queue
// implementations — the control loop reads simulated time only.
func TestControllerArtifactDeterministicAcrossQueues(t *testing.T) {
	s, ok := Lookup("slo-controller")
	if !ok {
		t.Fatal("missing spec slo-controller")
	}
	render := func(kind sim.QueueKind) string {
		old := sim.SetDefaultQueue(kind)
		defer sim.SetDefaultQueue(old)
		var buf bytes.Buffer
		if err := ControllerJSONL(RunAll([]Spec{s}, 1), &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	cal := render(sim.QueueCalendar)
	heap := render(sim.QueueHeap)
	if cal != heap {
		t.Fatalf("controller artifact differs between calendar and heap queues:\n--- calendar ---\n%.600s\n--- heap ---\n%.600s", cal, heap)
	}
}

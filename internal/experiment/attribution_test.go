package experiment

import (
	"strings"
	"testing"
)

// specsByID fetches registered specs, failing the test on a bad ID.
func specsByID(t *testing.T, ids ...string) []Spec {
	t.Helper()
	var specs []Spec
	for _, id := range ids {
		s, ok := Lookup(id)
		if !ok {
			t.Fatalf("%s not registered", id)
		}
		specs = append(specs, s)
	}
	return specs
}

// TestProfileJSONLDeterministicUnderParallelRunAll: the attribution
// artifact — latency rows, theft rows, and raw span lines — is
// byte-identical whether the specs run sequentially or interleaved in a
// worker pool.
func TestProfileJSONLDeterministicUnderParallelRunAll(t *testing.T) {
	specs := specsByID(t, "fig5", "tab3", "isolation-under-faults")
	var seq, par strings.Builder
	if err := ProfileJSONL(RunAll(specs, 1), &seq); err != nil {
		t.Fatal(err)
	}
	if err := ProfileJSONL(RunAll(specs, 8), &par); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Fatal("attribution artifact changed under parallel RunAll")
	}
	if seq.Len() == 0 {
		t.Fatal("attribution artifact is empty")
	}
	if !strings.Contains(seq.String(), `"type":"experiment"`) ||
		!strings.Contains(seq.String(), `"type":"proc"`) {
		t.Fatalf("artifact missing header or proc lines:\n%.500s", seq.String())
	}
}

// TestRegistryAttributionConservation is the acceptance gate: every
// registry experiment runs profiled, and for every finished process in
// every configuration the bucket sum equals the response time exactly —
// integer nanoseconds, no epsilon.
func TestRegistryAttributionConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry")
	}
	// abl-network drives a bare netbw link on a raw engine — no kernel,
	// no processes — so it alone has nothing to attribute.
	kernelless := map[string]bool{"abl-network": true}
	results := RunAll(Registry(), 8)
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s failed: %v", r.Spec.ID, r.Err)
			continue
		}
		if kernelless[r.Spec.ID] {
			continue
		}
		if len(r.Output.Attribution) == 0 {
			t.Errorf("%s produced no attribution summaries; is its runner profiled?", r.Spec.ID)
			continue
		}
		for _, as := range r.Output.Attribution {
			if as.Tasks == 0 {
				t.Errorf("%s/%s accounted zero tasks", r.Spec.ID, as.Config)
			}
			if as.ConservationViolations != 0 {
				t.Errorf("%s/%s: %d conservation violations", r.Spec.ID, as.Config, as.ConservationViolations)
			}
			for _, p := range as.Procs {
				if p.Sum() != p.Response {
					t.Errorf("%s/%s %s: buckets sum %d ns != response %d ns",
						r.Spec.ID, as.Config, p.Proc, p.Sum(), p.Response)
				}
			}
		}
	}
}

package experiment

import (
	"bytes"
	"encoding/json"
	"io"
	"math"

	"perfiso/internal/kernel"
	"perfiso/internal/latency"
	"perfiso/internal/metrics"
	"perfiso/internal/stats"
)

// metricsPeriod is the sampling period the instrumented experiments use
// when the caller did not pick one. Sampling only reads machine state,
// so turning it on never changes a single table cell.
const metricsPeriod = metrics.DefaultPeriod

// MetricSummary is one experiment configuration's headline isolation
// metrics, distilled from the kernel's metrics registry: how often the
// scheduler took loaned CPUs back, how long owners waited for them
// (the §3.1 revocation cost), and how the CPU time actually divided
// between the SPUs. Every field is simulation-derived and deterministic
// — no wall-clock value appears, so the same run always summarizes to
// the same bytes.
type MetricSummary struct {
	// Config names the run within its experiment, e.g. "PIso" or
	// "SMP/unbalanced".
	Config string `json:"config"`
	// Loans counts CPUs lent to SPUs beyond their entitlement.
	Loans int64 `json:"loans"`
	// Revocations counts loans the scheduler took back for an owner.
	Revocations int64 `json:"revocations"`
	// RevocationP99Ms is the 99th-percentile time an owner's thread
	// waited for a revoked CPU, in milliseconds (0 when no revocations).
	RevocationP99Ms float64 `json:"revocation_p99_ms"`
	// CPUShare is each user SPU's fraction of the total user CPU time.
	CPUShare map[string]float64 `json:"cpu_share"`

	// jsonl holds the run's full registry export for the -metrics
	// artifact; unexported so bench JSON stays a summary.
	jsonl string
}

// summarizeMetrics distills a finished kernel's registry. ok is false
// when the kernel ran without observability.
func summarizeMetrics(k *kernel.Kernel, config string) (MetricSummary, bool) {
	reg := k.Metrics()
	if reg == nil {
		return MetricSummary{}, false
	}
	s := MetricSummary{Config: config, CPUShare: make(map[string]float64)}
	for _, c := range reg.Counters() {
		switch c.Name {
		case metrics.KeySchedLoans:
			s.Loans += c.Value()
		case metrics.KeySchedRevocations:
			s.Revocations += c.Value()
		}
	}
	var lat []float64
	var spill *latency.Histogram
	for _, d := range reg.Distributions() {
		if d.Name != metrics.KeySchedRevokeLatency {
			continue
		}
		if d.Exact() {
			lat = append(lat, d.Values()...)
			continue
		}
		if spill == nil {
			spill = latency.New()
		}
		spill.Merge(d.Hist())
	}
	if spill != nil {
		// At least one distribution overflowed its exact cap: fold the
		// exact remainder into the bucketed view and answer from there.
		for _, v := range lat {
			spill.Record(int64(math.Round(v * metrics.DistScale)))
		}
		s.RevocationP99Ms = float64(spill.Quantile(0.99)) / metrics.DistScale * 1e3
	} else if len(lat) > 0 {
		s.RevocationP99Ms = stats.Quantile(lat, 0.99) * 1e3
	}
	var total float64
	sch := k.Scheduler()
	users := k.SPUs().Users()
	for _, u := range users {
		if t := sch.PerSPUTime[u.ID()]; t != nil {
			total += t.Seconds()
		}
	}
	for _, u := range users {
		var sec float64
		if t := sch.PerSPUTime[u.ID()]; t != nil {
			sec = t.Seconds()
		}
		if total > 0 {
			s.CPUShare[u.Name()] = sec / total
		}
	}
	var buf bytes.Buffer
	if err := reg.WriteJSONL(&buf, k.MetricNames()); err == nil {
		s.jsonl = buf.String()
	}
	return s, true
}

// metricsHeader introduces one configuration's block in the -metrics
// artifact. Fixed field order keeps the bytes deterministic.
type metricsHeader struct {
	Type            string             `json:"type"`
	Experiment      string             `json:"experiment"`
	Config          string             `json:"config"`
	Loans           int64              `json:"loans"`
	Revocations     int64              `json:"revocations"`
	RevocationP99Ms float64            `json:"revocation_p99_ms"`
	CPUShare        map[string]float64 `json:"cpu_share"`
}

// MetricsJSONL writes the per-experiment metrics artifact: for every
// instrumented configuration, one "experiment" header line carrying the
// summary, followed by that run's full registry export (the same lines
// pisosim -metrics writes). Results appear in registry order and no
// wall-clock value is included, so the artifact is byte-identical at
// any -parallel level.
func MetricsJSONL(results []Result, w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range results {
		for _, ms := range r.Output.Metrics {
			if err := enc.Encode(metricsHeader{
				Type: "experiment", Experiment: r.Spec.ID, Config: ms.Config,
				Loans: ms.Loans, Revocations: ms.Revocations,
				RevocationP99Ms: ms.RevocationP99Ms, CPUShare: ms.CPUShare,
			}); err != nil {
				return err
			}
			if _, err := io.WriteString(w, ms.jsonl); err != nil {
				return err
			}
		}
	}
	return nil
}

// observe folds a finished kernel's dispatch total into the meter and,
// when the kernel ran with observability or profiling on, appends its
// metric and attribution summaries under the given configuration name.
func (m *Meter) observe(k *kernel.Kernel, config string) {
	m.count(k)
	if s, ok := summarizeMetrics(k, config); ok {
		m.Metrics = append(m.Metrics, s)
	}
	if s, ok := summarizeAttribution(k, config); ok {
		m.Attribution = append(m.Attribution, s)
	}
	if s, ok := summarizeLatency(k, config); ok {
		m.Latency = append(m.Latency, s)
	}
	if s, ok := summarizeController(k, config); ok {
		m.Controller = append(m.Controller, s)
	}
}

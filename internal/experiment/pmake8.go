package experiment

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/kernel"
	"perfiso/internal/machine"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
	"perfiso/internal/stats"
	"perfiso/internal/workload"
)

// Pmake8Run is one configuration's measurement: mean job response time
// in the lightly-loaded SPUs (1-4) and the heavily-loaded SPUs (5-8).
type Pmake8Run struct {
	Light sim.Time // SPUs 1-4 mean job response
	Heavy sim.Time // SPUs 5-8 mean job response
}

// Pmake8Result carries Figures 2 and 3: per scheme, the balanced and
// unbalanced runs.
type Pmake8Result struct {
	Meter
	Balanced   map[core.Scheme]Pmake8Run
	Unbalanced map[core.Scheme]Pmake8Run
	// BaseSMP is the normalization base: SMP mean response in the
	// balanced configuration (Figure 2's "100").
	BaseSMP sim.Time
}

// Pmake8Options tunes the experiment (zero value = paper configuration).
type Pmake8Options struct {
	Kernel kernel.Options
	Params workload.PmakeParams // zero value -> workload.DefaultPmake()
}

// RunPmake8 executes the Pmake8 workload (Figure 1's balanced and
// unbalanced job distributions) under all three schemes.
func RunPmake8(opts Pmake8Options) Pmake8Result {
	if opts.Params.Parallel == 0 {
		opts.Params = workload.DefaultPmake()
	}
	res := Pmake8Result{
		Balanced:   make(map[core.Scheme]Pmake8Run),
		Unbalanced: make(map[core.Scheme]Pmake8Run),
	}
	for _, scheme := range Schemes {
		res.Balanced[scheme] = runPmake8Config(scheme, false, opts, &res.Meter)
		res.Unbalanced[scheme] = runPmake8Config(scheme, true, opts, &res.Meter)
	}
	res.BaseSMP = res.Balanced[core.SMP].Light
	return res
}

// runPmake8Config boots one kernel and runs one job distribution.
// Balanced: one pmake job per SPU (8 jobs). Unbalanced: SPUs 5-8 run two
// jobs each (12 jobs).
func runPmake8Config(scheme core.Scheme, unbalanced bool, opts Pmake8Options, m *Meter) Pmake8Run {
	opts.Kernel.Profiled = true
	k := kernel.New(machine.Pmake8(), scheme, opts.Kernel)
	var spus []*core.SPU
	for i := 0; i < 8; i++ {
		s := k.NewSPU(fmt.Sprintf("spu%d", i+1), 1)
		k.SetAffinity(s.ID(), i) // each SPU gets its own fast disk
		spus = append(spus, s)
	}
	k.Boot()
	var light, heavy []*proc.Process
	for i, s := range spus {
		jobs := 1
		if unbalanced && i >= 4 {
			jobs = 2
		}
		for j := 0; j < jobs; j++ {
			job := workload.Pmake(k, s.ID(), fmt.Sprintf("pmake%d.%d", i+1, j), opts.Params)
			if i < 4 {
				light = append(light, job)
			} else {
				heavy = append(heavy, job)
			}
			k.Spawn(job)
		}
	}
	k.Run()
	config := scheme.String() + "/balanced"
	if unbalanced {
		config = scheme.String() + "/unbalanced"
	}
	m.observe(k, config)
	collect := func(jobs []*proc.Process) sim.Time {
		times := make([]sim.Time, len(jobs))
		for i, j := range jobs {
			times[i] = j.ResponseTime()
		}
		return meanResponse(times)
	}
	return Pmake8Run{Light: collect(light), Heavy: collect(heavy)}
}

// Fig2Rows returns Figure 2's bars: per scheme, the normalized response
// time of the lightly-loaded SPUs in the balanced (B) and unbalanced (U)
// configurations (SMP balanced = 100).
func (r Pmake8Result) Fig2Rows() []struct {
	Scheme               core.Scheme
	Balanced, Unbalanced float64
} {
	out := make([]struct {
		Scheme               core.Scheme
		Balanced, Unbalanced float64
	}, 0, len(Schemes))
	for _, s := range Schemes {
		out = append(out, struct {
			Scheme               core.Scheme
			Balanced, Unbalanced float64
		}{s, Norm(r.Balanced[s].Light, r.BaseSMP), Norm(r.Unbalanced[s].Light, r.BaseSMP)})
	}
	return out
}

// Fig3Rows returns Figure 3's bars: per scheme, the normalized response
// time of the heavily-loaded SPUs (5-8) in the unbalanced configuration.
func (r Pmake8Result) Fig3Rows() []struct {
	Scheme core.Scheme
	Heavy  float64
} {
	out := make([]struct {
		Scheme core.Scheme
		Heavy  float64
	}, 0, len(Schemes))
	for _, s := range Schemes {
		out = append(out, struct {
			Scheme core.Scheme
			Heavy  float64
		}{s, Norm(r.Unbalanced[s].Heavy, r.BaseSMP)})
	}
	return out
}

// Fig2Table renders Figure 2 as a text table.
func (r Pmake8Result) Fig2Table() *stats.Table {
	t := stats.NewTable(
		"Figure 2: Pmake8 isolation — response time of lightly-loaded SPUs 1-4\n"+
			"(normalized to SMP balanced = 100)",
		"Scheme", "Balanced", "Unbalanced")
	for _, row := range r.Fig2Rows() {
		t.Addf(row.Scheme.String(), row.Balanced, row.Unbalanced)
	}
	return t
}

// Fig3Table renders Figure 3 as a text table.
func (r Pmake8Result) Fig3Table() *stats.Table {
	t := stats.NewTable(
		"Figure 3: Pmake8 sharing — response time of heavily-loaded SPUs 5-8,\n"+
			"unbalanced configuration (normalized to SMP balanced = 100)",
		"Scheme", "Unbalanced")
	for _, row := range r.Fig3Rows() {
		t.Addf(row.Scheme.String(), row.Heavy)
	}
	return t
}

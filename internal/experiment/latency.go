package experiment

import (
	"bytes"
	"encoding/json"
	"io"

	"perfiso/internal/kernel"
)

// TenantLatency is one tenant's tail-latency profile from a kernel's
// latency registry: request counts (censored in-flight requests called
// out), the percentile ladder, and SLO attainment. All durations are
// integer simulated nanoseconds, so the same run always summarizes to
// the same bytes.
type TenantLatency struct {
	Name     string `json:"name"`
	SPU      int    `json:"spu"`
	Count    int64  `json:"count"`
	Censored int64  `json:"censored"`
	Shed     int64  `json:"shed,omitempty"`
	MeanNS   int64  `json:"mean_ns"`
	P50NS    int64  `json:"p50_ns"`
	P99NS    int64  `json:"p99_ns"`
	P999NS   int64  `json:"p999_ns"`
	MaxNS    int64  `json:"max_ns"`
	// SLO fields: zero/absent when the tenant declared no objective.
	SLOThresholdNS int64   `json:"slo_threshold_ns,omitempty"`
	SLOTarget      float64 `json:"slo_target,omitempty"`
	Attainment     float64 `json:"attainment,omitempty"`
	BudgetBurn     float64 `json:"budget_burn,omitempty"`
}

// LatencySummary is one experiment configuration's latency registry
// distilled: one TenantLatency per registered stream, in registration
// order.
type LatencySummary struct {
	// Config names the run within its experiment, e.g. "PIso" or
	// "solo/web".
	Config string `json:"config"`
	// Tenants is one entry per latency stream, registration order.
	Tenants []TenantLatency `json:"tenants"`

	// jsonl holds the run's full latency export (summary, SLO, and
	// window timeline lines) for the -latency artifact; unexported so
	// bench JSON stays a summary.
	jsonl string
}

// Tenant returns the named tenant's profile, or nil.
func (s LatencySummary) Tenant(name string) *TenantLatency {
	for i := range s.Tenants {
		if s.Tenants[i].Name == name {
			return &s.Tenants[i]
		}
	}
	return nil
}

// summarizeLatency distills a finished kernel's latency registry. ok is
// false when the kernel ran without latency tracking or recorded
// nothing.
func summarizeLatency(k *kernel.Kernel, config string) (LatencySummary, bool) {
	reg := k.Latency()
	if reg == nil || reg.Empty() {
		return LatencySummary{}, false
	}
	s := LatencySummary{Config: config}
	for _, tr := range reg.Trackers() {
		h := tr.Total()
		if h.Count() == 0 {
			continue
		}
		tl := TenantLatency{
			Name: tr.Name, SPU: int(tr.SPU),
			Count: h.Count(), Censored: tr.Censored(), Shed: tr.Shed(),
			MeanNS: h.Mean(),
			P50NS:  h.Quantile(0.50), P99NS: h.Quantile(0.99),
			P999NS: h.Quantile(0.999), MaxNS: h.Max(),
		}
		if tr.Obj.Valid() {
			tl.SLOThresholdNS = int64(tr.Obj.Threshold)
			tl.SLOTarget = tr.Obj.Target
			tl.Attainment = tr.Attainment()
			tl.BudgetBurn = tr.BudgetBurn()
		}
		s.Tenants = append(s.Tenants, tl)
	}
	var buf bytes.Buffer
	if err := reg.WriteJSONL(&buf); err == nil {
		s.jsonl = buf.String()
	}
	return s, true
}

// latencyHeader introduces one configuration's block in the -latency
// artifact. Fixed field order keeps the bytes deterministic.
type latencyHeader struct {
	Type       string `json:"type"`
	Experiment string `json:"experiment"`
	Config     string `json:"config"`
	Tenants    int    `json:"tenants"`
}

// LatencyJSONL writes the per-experiment latency artifact: for every
// configuration that ran with latency tracking on, one "experiment"
// header line followed by that run's full latency export (the same
// lines pisosim -latency writes). Results appear in registry order and
// every duration is integer simulated nanoseconds, so the artifact is
// byte-identical at any -parallel level and on either event-queue
// implementation.
func LatencyJSONL(results []Result, w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range results {
		for _, ls := range r.Output.Latency {
			if err := enc.Encode(latencyHeader{
				Type: "experiment", Experiment: r.Spec.ID, Config: ls.Config,
				Tenants: len(ls.Tenants),
			}); err != nil {
				return err
			}
			if _, err := io.WriteString(w, ls.jsonl); err != nil {
				return err
			}
		}
	}
	return nil
}

package experiment

import (
	"encoding/json"
	"strings"
	"testing"

	"perfiso/internal/stats"
)

func marshalT(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// A bench-vs-bench diff surfaces changed deterministic cells, changed
// p99s, and membership changes, and counts the cells that matched.
func TestDiffBench(t *testing.T) {
	old := Bench{Suite: "pisobench", Parallel: 4, Events: 100, Experiments: []BenchExperiment{
		{ID: "fig2", Events: 60, EventsPerSec: 1e6, Rows: []stats.Row{
			{Table: "T", Label: "SMP", Metric: "Norm", Value: 100},
			{Table: "T", Label: "PIso", Metric: "Norm", Value: 93},
		}},
		{ID: "gone", Events: 40, EventsPerSec: 1e6},
	}}
	new := Bench{Suite: "pisobench", Parallel: 8, Events: 120, Experiments: []BenchExperiment{
		{ID: "fig2", Events: 65, EventsPerSec: 2e6, Rows: []stats.Row{
			{Table: "T", Label: "SMP", Metric: "Norm", Value: 100},
			{Table: "T", Label: "PIso", Metric: "Norm", Value: 95},
		}, Latency: []LatencySummary{{Config: "PIso", Tenants: []TenantLatency{
			{Name: "web", P99NS: 5_000_000},
		}}}},
		{ID: "fresh", Events: 55, EventsPerSec: 1e6},
	}}
	// Give the old report a latency stream so the p99 comparison fires.
	old.Experiments[0].Latency = []LatencySummary{{Config: "PIso", Tenants: []TenantLatency{
		{Name: "web", P99NS: 4_000_000},
	}}}

	out, err := Diff(marshalT(t, old), marshalT(t, new), "old.json", "new.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"added experiment: fresh",
		"removed experiment: gone",
		"events changed: fig2 dispatched 60 -> 65",
		"PIso", "Norm", // the changed cell
		"+25.0%", // p99 4ms -> 5ms
		"1 cells compared equal",
		"Throughput",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "SMP") && strings.Contains(out, "Changed results") {
		// The unchanged SMP cell must not appear in the changed-results table.
		sect := out[strings.Index(out, "Changed results"):]
		if i := strings.Index(sect, "Throughput"); i >= 0 {
			sect = sect[:i]
		}
		if strings.Contains(sect, "SMP") {
			t.Errorf("unchanged cell listed as changed:\n%s", sect)
		}
	}
}

// Two identical bench reports diff to "no changes".
func TestDiffBenchIdentical(t *testing.T) {
	b := Bench{Suite: "pisobench", Experiments: []BenchExperiment{
		{ID: "fig2", Events: 60, EventsPerSec: 1e6, Rows: []stats.Row{
			{Table: "T", Label: "SMP", Metric: "Norm", Value: 100},
		}},
	}}
	data := marshalT(t, b)
	out, err := Diff(data, data, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no result-cell changes") {
		t.Errorf("identical reports should diff clean:\n%s", out)
	}
	if strings.Contains(out, "events changed") {
		t.Errorf("identical reports reported changed events:\n%s", out)
	}
}

// A perf-vs-perf diff reports per-scenario deltas and membership.
func TestDiffPerf(t *testing.T) {
	old := PerfReport{Suite: "pisobench-perf", EventQueue: "calendar", Reps: 3, Scenarios: []PerfScenario{
		{ID: "fig2", Events: 100, NsPerEvent: 200, AllocsPerEvent: 0.5},
		{ID: "gone", Events: 10, NsPerEvent: 100},
	}}
	new := PerfReport{Suite: "pisobench-perf", EventQueue: "heap", Reps: 3, Scenarios: []PerfScenario{
		{ID: "fig2", Events: 100, NsPerEvent: 100, AllocsPerEvent: 0.5},
	}}
	out, err := Diff(marshalT(t, old), marshalT(t, new), "old", "new")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"removed scenario: gone", "-50.0%", "different event queues"} {
		if !strings.Contains(out, want) {
			t.Errorf("perf diff missing %q:\n%s", want, out)
		}
	}
}

// Mismatched or unrecognized inputs fail with a pointed error.
func TestDiffRejectsMismatchedSuites(t *testing.T) {
	bench := marshalT(t, Bench{Suite: "pisobench"})
	perf := marshalT(t, PerfReport{Suite: "pisobench-perf"})
	if _, err := Diff(bench, perf, "a", "b"); err == nil {
		t.Error("bench-vs-perf diff should fail")
	}
	if _, err := Diff([]byte(`{"hello":1}`), bench, "a", "b"); err == nil {
		t.Error("non-report input should fail")
	}
	if _, err := Diff([]byte(`not json`), bench, "a", "b"); err == nil {
		t.Error("malformed input should fail")
	}
}

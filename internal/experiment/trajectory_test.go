package experiment

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func samplePoints() []TrajectoryPoint {
	return []TrajectoryPoint{
		{Type: "trajectory", Commit: "aaaa111", Date: "2026-07-01", Scenario: "pmake8", Events: 100, NsPerEvent: 2000, AllocsPerEvent: 0.5},
		{Type: "trajectory", Commit: "aaaa111", Date: "2026-07-01", Scenario: "fig5", Events: 200, NsPerEvent: 1800, AllocsPerEvent: 0.4},
		{Type: "trajectory", Commit: "bbbb222", Date: "2026-08-01", Scenario: "pmake8", Events: 100, NsPerEvent: 1500, AllocsPerEvent: 0.2},
		{Type: "trajectory", Commit: "bbbb222", Date: "2026-08-01", Scenario: "fig5", Events: 200, NsPerEvent: 1900, AllocsPerEvent: 0.4, NsPerEventCV: 0.25},
	}
}

func TestTrajectoryAppendRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traj.jsonl")
	pts := samplePoints()
	if err := AppendTrajectory(path, pts[:2]); err != nil {
		t.Fatal(err)
	}
	// Second append must preserve the first lines (append-only).
	if err := AppendTrajectory(path, pts[2:]); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !IsTrajectory(data) {
		t.Fatal("written file does not sniff as trajectory")
	}
	got, err := ReadTrajectory(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("read %d points, want 4", len(got))
	}
	for i, p := range got {
		if p.Commit != pts[i].Commit || p.Scenario != pts[i].Scenario || p.NsPerEvent != pts[i].NsPerEvent {
			t.Fatalf("point %d = %+v, want %+v", i, p, pts[i])
		}
	}
}

func TestTrajectoryPointsFromReport(t *testing.T) {
	rep := PerfReport{
		Suite: "pisobench-perf", EventQueue: "calendar",
		Scenarios: []PerfScenario{
			{ID: "pmake8", Events: 42, NsPerEvent: 1000, AllocsPerEvent: 0.1, NsPerEventCV: 0.02,
				Queue: &PerfQueueStats{Kind: "calendar", Pushes: 99}},
		},
	}
	pts := TrajectoryPoints(rep, "cafe123", "2026-08-08")
	if len(pts) != 1 {
		t.Fatalf("points = %d", len(pts))
	}
	p := pts[0]
	if p.Type != "trajectory" || p.Commit != "cafe123" || p.Date != "2026-08-08" ||
		p.EventQueue != "calendar" || p.Scenario != "pmake8" || p.Events != 42 ||
		p.Queue == nil || p.Queue.Pushes != 99 {
		t.Fatalf("point = %+v", p)
	}
}

func TestHistoryReport(t *testing.T) {
	s := HistoryReport(samplePoints())
	for _, want := range []string{"pmake8", "fig5", "aaaa111", "bbbb222", "faster", "unstable"} {
		if !strings.Contains(s, want) {
			t.Fatalf("history report missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "2 scenarios") {
		t.Fatalf("header wrong:\n%s", s)
	}
	if got := HistoryReport(nil); !strings.Contains(got, "empty") {
		t.Fatalf("empty report = %q", got)
	}
}

func TestDiffTrajectory(t *testing.T) {
	pts := samplePoints()
	old := encodeLines(t, pts[:2])
	new_ := encodeLines(t, pts)
	out, err := DiffTrajectory(old, new_, "old.jsonl", "new.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	// Latest old point for pmake8 is aaaa111 (2000), latest new is
	// bbbb222 (1500): a -25% move.
	for _, want := range []string{"pmake8", "aaaa111", "bbbb222", "-25.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trajectory diff missing %q:\n%s", want, out)
		}
	}
}

// TestDiffRoutesTrajectory checks the generic Diff entry point sniffs
// JSONL trajectories, and refuses to mix them with JSON reports.
func TestDiffRoutesTrajectory(t *testing.T) {
	pts := samplePoints()
	a, b := encodeLines(t, pts[:2]), encodeLines(t, pts)
	out, err := Diff(a, b, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "perf trajectory diff") {
		t.Fatalf("Diff did not route to trajectory:\n%s", out)
	}
	if _, err := Diff(a, []byte(`{"suite":"pisobench"}`), "a", "b"); err == nil ||
		!strings.Contains(err.Error(), "trajectory") {
		t.Fatalf("mixed diff err = %v", err)
	}
}

func encodeLines(t *testing.T, pts []TrajectoryPoint) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.jsonl")
	if err := AppendTrajectory(path, pts); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestPerfWarmupAndCV runs a tiny perf measurement and checks the new
// stability and queue-telemetry fields are populated.
func TestPerfWarmupAndCV(t *testing.T) {
	rep, err := RunPerf([]string{"fig5"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Warmup {
		t.Fatal("report does not record the warmup rep")
	}
	s := rep.Scenarios[0]
	if s.Queue == nil || s.Queue.Pushes == 0 || s.Queue.Kind == "" {
		t.Fatalf("queue telemetry missing: %+v", s.Queue)
	}
	if s.NsPerEventCV < 0 {
		t.Fatalf("cv = %v", s.NsPerEventCV)
	}
	if s.Events == 0 || s.NsPerEvent <= 0 {
		t.Fatalf("scenario = %+v", s)
	}
	// The table must render the cv column.
	if !strings.Contains(rep.String(), "cv%") {
		t.Fatalf("report table missing cv column:\n%s", rep.String())
	}
}

func TestCoefVar(t *testing.T) {
	if cv := coefVar(nil); cv != 0 {
		t.Fatalf("cv(nil) = %v", cv)
	}
	if cv := coefVar([]float64{5}); cv != 0 {
		t.Fatalf("cv(one) = %v", cv)
	}
	if cv := coefVar([]float64{10, 10, 10}); cv != 0 {
		t.Fatalf("cv(const) = %v", cv)
	}
	cv := coefVar([]float64{90, 100, 110})
	if cv < 0.09 || cv > 0.11 {
		t.Fatalf("cv = %v, want ~0.1", cv)
	}
	rep := PerfReport{Scenarios: []PerfScenario{
		{ID: "a", NsPerEventCV: 0.02},
		{ID: "b", NsPerEventCV: 0.5},
	}}
	unstable := rep.Unstable()
	if len(unstable) != 1 || !strings.Contains(unstable[0], "b") {
		t.Fatalf("unstable = %v", unstable)
	}
}

// Package experiment regenerates every table and figure of the paper's
// evaluation (§4) on the simulated machine, plus the ablations DESIGN.md
// calls out. Each runner returns typed rows (so tests can assert the
// paper's shapes) and can render a paper-style text table.
//
// Absolute times differ from the paper's SimOS runs — the substrate is a
// model, not the authors' testbed — but the shapes are preserved and
// recorded in EXPERIMENTS.md.
package experiment

import (
	"perfiso/internal/core"
	"perfiso/internal/sim"
)

// Schemes is the fixed comparison order used in the paper's figures.
var Schemes = []core.Scheme{core.SMP, core.Quo, core.PIso}

// Norm expresses v as a percentage of base, the form the paper's
// figures use (SMP balanced = 100).
func Norm(v, base sim.Time) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(v) / float64(base)
}

// meanResponse averages the response times of completed jobs.
func meanResponse(times []sim.Time) sim.Time {
	if len(times) == 0 {
		return 0
	}
	var sum sim.Time
	for _, t := range times {
		sum += t
	}
	return sum / sim.Time(len(times))
}

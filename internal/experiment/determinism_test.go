package experiment

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/workload"
)

// The whole stack is deterministic: the same experiment run twice
// produces bit-identical results. This is what makes every shape
// assertion in this package meaningful rather than flaky.
func TestEndToEndDeterminism(t *testing.T) {
	var m Meter
	a := runPmake8Config(core.PIso, true, Pmake8Options{Params: workload.DefaultPmake()}, &m)
	b := runPmake8Config(core.PIso, true, Pmake8Options{Params: workload.DefaultPmake()}, &m)
	if a.Light != b.Light || a.Heavy != b.Heavy {
		t.Fatalf("identical runs diverged: %+v vs %+v", a, b)
	}
}

func TestDiskExperimentDeterminism(t *testing.T) {
	a := RunTable4(DiskOptions{})
	b := RunTable4(DiskOptions{})
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d diverged: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}

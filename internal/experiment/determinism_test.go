package experiment

import (
	"strings"
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/workload"
)

// The whole stack is deterministic: the same experiment run twice
// produces bit-identical results. This is what makes every shape
// assertion in this package meaningful rather than flaky.
func TestEndToEndDeterminism(t *testing.T) {
	var m Meter
	a := runPmake8Config(core.PIso, true, Pmake8Options{Params: workload.DefaultPmake()}, &m)
	b := runPmake8Config(core.PIso, true, Pmake8Options{Params: workload.DefaultPmake()}, &m)
	if a.Light != b.Light || a.Heavy != b.Heavy {
		t.Fatalf("identical runs diverged: %+v vs %+v", a, b)
	}
}

// A faulted run draws from its own forked RNG streams on the sim clock,
// so fault injection is exactly as reproducible as a clean run: the
// rendered table — every normalized cell — is byte-identical.
func TestFaultExperimentDeterminism(t *testing.T) {
	a := RunFaults(FaultOptions{}).Table().String()
	b := RunFaults(FaultOptions{}).Table().String()
	if a != b {
		t.Fatalf("identical faulted runs diverged:\n%s\nvs\n%s", a, b)
	}
}

// The fault experiment must stay deterministic under the parallel
// harness: running its spec sequentially and inside a worker pool
// produces byte-identical tables.
func TestFaultExperimentDeterministicUnderParallelRunAll(t *testing.T) {
	spec, ok := Lookup("isolation-under-faults")
	if !ok {
		t.Fatal("isolation-under-faults not registered")
	}
	render := func(results []Result) string {
		out := ""
		for _, r := range results {
			for _, s := range r.Output.Sections {
				out += s.Table.String() + "\n"
			}
		}
		return out
	}
	// Run the spec alongside other work so the pool genuinely
	// interleaves, then alone; the fault table must not change.
	fig5, _ := Lookup("fig5")
	seq := render(RunAll([]Spec{spec}, 1))
	par := render(RunAll([]Spec{fig5, spec, fig5}, 3))
	if !strings.Contains(par, seq) {
		t.Fatalf("fault table changed under parallel RunAll:\nsequential:\n%s\nparallel batch:\n%s", seq, par)
	}
}

func TestDiskExperimentDeterminism(t *testing.T) {
	a := RunTable4(DiskOptions{})
	b := RunTable4(DiskOptions{})
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("row %d diverged: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}

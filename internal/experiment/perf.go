package experiment

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"perfiso/internal/sim"
)

// PerfScenario is one experiment's entry in a PerfReport: how fast the
// event core pushed that experiment's deterministic event population
// through, and how much it allocated doing so. Events is exactly
// reproducible run to run; the timing fields are best-of-reps
// measurements and carry normal wall-clock noise.
type PerfScenario struct {
	ID             string  `json:"id"`
	Events         uint64  `json:"events"`
	WallSeconds    float64 `json:"wall_seconds"`
	NsPerEvent     float64 `json:"ns_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// NsPerEventCV is the coefficient of variation of ns/event across
	// the timed reps (stddev/mean): the measurement-stability signal.
	// Best-of-reps timing with a CV above UnstableCV should be treated
	// as noise, not as a real speedup or regression.
	NsPerEventCV float64 `json:"ns_per_event_cv,omitempty"`
	// Queue is the merged event-queue telemetry from the warmup rep
	// (deterministic: counters, not timings). Absent in reports written
	// before the telemetry existed.
	Queue *PerfQueueStats `json:"queue,omitempty"`
	// BaselineNsPerEvent and Speedup are filled in when the report is
	// compared against a prior report (pisobench -perf-baseline):
	// Speedup is baseline ns/event over current ns/event, so >1 means
	// this build is faster.
	BaselineNsPerEvent float64 `json:"baseline_ns_per_event,omitempty"`
	Speedup            float64 `json:"speedup,omitempty"`
}

// PerfQueueStats is the deterministic event-queue telemetry carried in
// perf reports and trajectory points: enough to see the calendar's
// behavior change over time without storing full occupancy histograms.
type PerfQueueStats struct {
	Kind          string  `json:"kind"`
	Pushes        uint64  `json:"pushes"`
	Collisions    uint64  `json:"collisions"`
	CollisionRate float64 `json:"collision_rate"`
	Rebuilds      uint64  `json:"rebuilds"`
	Grows         uint64  `json:"grows"`
	Shrinks       uint64  `json:"shrinks"`
	MaxDepth      int     `json:"max_depth"`
}

// UnstableCV is the rep-to-rep coefficient of variation above which a
// perf measurement is flagged as unstable in reports and gates.
const UnstableCV = 0.10

// PerfReport is the machine-readable perf baseline pisobench -perf
// writes (BENCH_perf.json). Scenario order is registry order, and every
// non-timing field is deterministic, so two reports from the same build
// diff cleanly on everything but the measured rates.
type PerfReport struct {
	Suite      string `json:"suite"`
	EventQueue string `json:"event_queue"`
	Reps       int    `json:"reps"`
	// Warmup records that each scenario ran one untimed warmup rep
	// before the timed reps (always true for reports from this version;
	// false in older committed baselines).
	Warmup    bool           `json:"warmup,omitempty"`
	Baseline  string         `json:"baseline,omitempty"`
	Scenarios []PerfScenario `json:"scenarios"`
}

// RunPerf measures the event-core throughput of the named registry
// scenarios (all of them when ids is empty). Each scenario first runs
// one untimed warmup rep — it heats code and allocator caches so the
// first timed rep is not systematically slow, and doubles as the
// collection pass for the deterministic event-queue telemetry — then
// reps timed runs back to back on one goroutine. The fastest rep
// supplies the timing and the smallest rep supplies allocs/event, so
// one GC or scheduler hiccup cannot poison the baseline; the rep-to-rep
// CV of ns/event is recorded so an unstable measurement is flagged
// rather than silently trusted. Allocation counts come from
// runtime.MemStats.Mallocs deltas around the run, which is exact
// because nothing else runs concurrently.
func RunPerf(ids []string, reps int) (PerfReport, error) {
	if reps < 1 {
		reps = 1
	}
	specs := Registry()
	if len(ids) > 0 {
		picked := make([]Spec, 0, len(ids))
		for _, id := range ids {
			s, ok := Lookup(id)
			if !ok {
				return PerfReport{}, fmt.Errorf("unknown perf scenario %q; known ids: %s",
					id, strings.Join(IDs(), ", "))
			}
			picked = append(picked, s)
		}
		specs = picked
	}
	rep := PerfReport{Suite: "pisobench-perf", Reps: reps, Warmup: true}
	for _, s := range specs {
		// Warmup rep, untimed. The engine hook lets us snapshot the
		// always-on queue counters of every engine the scenario builds;
		// it attaches no observer, so the event population is identical
		// to the timed reps.
		var engines []*sim.Engine
		prevHook := sim.SetEngineHook(func(e *sim.Engine) { engines = append(engines, e) })
		warm := s.Run()
		sim.SetEngineHook(prevHook)
		if warm.Events == 0 {
			return PerfReport{}, fmt.Errorf("scenario %s dispatched zero events", s.ID)
		}
		var qs sim.QueueStats
		for _, e := range engines {
			qs.Merge(e.QueueStats())
		}
		engines = nil

		var best PerfScenario
		nsReps := make([]float64, 0, reps)
		for r := 0; r < reps; r++ {
			var m0, m1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&m0)
			start := time.Now()
			out := s.Run()
			wall := time.Since(start)
			runtime.ReadMemStats(&m1)
			allocs := m1.Mallocs - m0.Mallocs
			if out.Events != warm.Events {
				return PerfReport{}, fmt.Errorf("scenario %s is nondeterministic: %d events then %d",
					s.ID, warm.Events, out.Events)
			}
			cur := PerfScenario{
				ID:             s.ID,
				Events:         out.Events,
				WallSeconds:    wall.Seconds(),
				NsPerEvent:     float64(wall.Nanoseconds()) / float64(out.Events),
				EventsPerSec:   float64(out.Events) / wall.Seconds(),
				AllocsPerEvent: float64(allocs) / float64(out.Events),
			}
			nsReps = append(nsReps, cur.NsPerEvent)
			if r == 0 {
				best = cur
			} else {
				if cur.WallSeconds < best.WallSeconds {
					best.WallSeconds = cur.WallSeconds
					best.NsPerEvent = cur.NsPerEvent
					best.EventsPerSec = cur.EventsPerSec
				}
				if cur.AllocsPerEvent < best.AllocsPerEvent {
					best.AllocsPerEvent = cur.AllocsPerEvent
				}
			}
		}
		best.NsPerEventCV = coefVar(nsReps)
		best.Queue = &PerfQueueStats{
			Kind:          qs.Kind,
			Pushes:        qs.Pushes,
			Collisions:    qs.Collisions,
			CollisionRate: qs.CollisionRate(),
			Rebuilds:      qs.Rebuilds,
			Grows:         qs.Grows,
			Shrinks:       qs.Shrinks,
			MaxDepth:      qs.MaxDepth,
		}
		rep.Scenarios = append(rep.Scenarios, best)
	}
	return rep, nil
}

// coefVar is the sample coefficient of variation (stddev/mean); zero
// for fewer than two samples.
func coefVar(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return math.Sqrt(ss/float64(len(xs)-1)) / mean
}

// Unstable lists the scenarios whose rep-to-rep CV exceeds UnstableCV —
// measurements that should not be trusted as evidence of a speedup or
// regression.
func (r PerfReport) Unstable() []string {
	var out []string
	for _, s := range r.Scenarios {
		if s.NsPerEventCV > UnstableCV {
			out = append(out, fmt.Sprintf("%s (cv %.0f%%)", s.ID, 100*s.NsPerEventCV))
		}
	}
	return out
}

// Compare annotates the report with a prior report's ns/event numbers
// and returns the scenarios whose ns/event regressed by more than the
// given fraction (0.15 = fail anything more than 15% slower). Scenarios
// absent from the baseline are left unannotated and never fail the
// gate, so adding an experiment does not require regenerating the
// committed baseline in the same change.
func (r *PerfReport) Compare(baseline PerfReport, gate float64) []string {
	base := make(map[string]PerfScenario, len(baseline.Scenarios))
	for _, s := range baseline.Scenarios {
		base[s.ID] = s
	}
	var failed []string
	for i := range r.Scenarios {
		s := &r.Scenarios[i]
		b, ok := base[s.ID]
		if !ok || b.NsPerEvent <= 0 {
			continue
		}
		s.BaselineNsPerEvent = b.NsPerEvent
		s.Speedup = b.NsPerEvent / s.NsPerEvent
		if gate > 0 && s.NsPerEvent > b.NsPerEvent*(1+gate) {
			failed = append(failed, fmt.Sprintf("%s: %.0f ns/event vs baseline %.0f (+%.0f%%, gate %.0f%%)",
				s.ID, s.NsPerEvent, b.NsPerEvent,
				100*(s.NsPerEvent/b.NsPerEvent-1), 100*gate))
		}
	}
	sort.Strings(failed)
	return failed
}

// String renders the report as a compact fixed-width text table.
// Scenarios whose rep-to-rep variance exceeds UnstableCV are marked
// "unstable" — their best-of-reps number is noise-limited.
func (r PerfReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %10s %12s %10s %14s %6s", "scenario", "events", "events/sec", "ns/event", "allocs/event", "cv%")
	if r.Baseline != "" {
		fmt.Fprintf(&b, " %9s", "speedup")
	}
	b.WriteByte('\n')
	for _, s := range r.Scenarios {
		fmt.Fprintf(&b, "%-22s %10d %12.0f %10.1f %14.3f %6.1f", s.ID, s.Events, s.EventsPerSec, s.NsPerEvent, s.AllocsPerEvent, 100*s.NsPerEventCV)
		if r.Baseline != "" {
			if s.Speedup > 0 {
				fmt.Fprintf(&b, " %8.2fx", s.Speedup)
			} else {
				fmt.Fprintf(&b, " %9s", "-")
			}
		}
		if s.NsPerEventCV > UnstableCV {
			b.WriteString("  unstable")
		}
		b.WriteByte('\n')
	}
	if unstable := r.Unstable(); len(unstable) > 0 {
		fmt.Fprintf(&b, "warning: unstable timing (cv > %.0f%%): %s\n",
			100*UnstableCV, strings.Join(unstable, ", "))
	}
	return b.String()
}

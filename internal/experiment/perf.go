package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// PerfScenario is one experiment's entry in a PerfReport: how fast the
// event core pushed that experiment's deterministic event population
// through, and how much it allocated doing so. Events is exactly
// reproducible run to run; the timing fields are best-of-reps
// measurements and carry normal wall-clock noise.
type PerfScenario struct {
	ID             string  `json:"id"`
	Events         uint64  `json:"events"`
	WallSeconds    float64 `json:"wall_seconds"`
	NsPerEvent     float64 `json:"ns_per_event"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// BaselineNsPerEvent and Speedup are filled in when the report is
	// compared against a prior report (pisobench -perf-baseline):
	// Speedup is baseline ns/event over current ns/event, so >1 means
	// this build is faster.
	BaselineNsPerEvent float64 `json:"baseline_ns_per_event,omitempty"`
	Speedup            float64 `json:"speedup,omitempty"`
}

// PerfReport is the machine-readable perf baseline pisobench -perf
// writes (BENCH_perf.json). Scenario order is registry order, and every
// non-timing field is deterministic, so two reports from the same build
// diff cleanly on everything but the measured rates.
type PerfReport struct {
	Suite      string         `json:"suite"`
	EventQueue string         `json:"event_queue"`
	Reps       int            `json:"reps"`
	Baseline   string         `json:"baseline,omitempty"`
	Scenarios  []PerfScenario `json:"scenarios"`
}

// RunPerf measures the event-core throughput of the named registry
// scenarios (all of them when ids is empty). Each scenario runs reps
// times back to back on one goroutine; the fastest rep supplies the
// timing and the smallest rep supplies allocs/event, so one GC or
// scheduler hiccup cannot poison the baseline. Allocation counts come
// from runtime.MemStats.Mallocs deltas around the run, which is exact
// because nothing else runs concurrently.
func RunPerf(ids []string, reps int) (PerfReport, error) {
	if reps < 1 {
		reps = 1
	}
	specs := Registry()
	if len(ids) > 0 {
		picked := make([]Spec, 0, len(ids))
		for _, id := range ids {
			s, ok := Lookup(id)
			if !ok {
				return PerfReport{}, fmt.Errorf("unknown perf scenario %q; known ids: %s",
					id, strings.Join(IDs(), ", "))
			}
			picked = append(picked, s)
		}
		specs = picked
	}
	rep := PerfReport{Suite: "pisobench-perf", Reps: reps}
	for _, s := range specs {
		var best PerfScenario
		for r := 0; r < reps; r++ {
			var m0, m1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&m0)
			start := time.Now()
			out := s.Run()
			wall := time.Since(start)
			runtime.ReadMemStats(&m1)
			allocs := m1.Mallocs - m0.Mallocs
			if out.Events == 0 {
				return PerfReport{}, fmt.Errorf("scenario %s dispatched zero events", s.ID)
			}
			if r > 0 && out.Events != best.Events {
				return PerfReport{}, fmt.Errorf("scenario %s is nondeterministic: %d events then %d",
					s.ID, best.Events, out.Events)
			}
			cur := PerfScenario{
				ID:             s.ID,
				Events:         out.Events,
				WallSeconds:    wall.Seconds(),
				NsPerEvent:     float64(wall.Nanoseconds()) / float64(out.Events),
				EventsPerSec:   float64(out.Events) / wall.Seconds(),
				AllocsPerEvent: float64(allocs) / float64(out.Events),
			}
			if r == 0 {
				best = cur
			} else {
				if cur.WallSeconds < best.WallSeconds {
					best.WallSeconds = cur.WallSeconds
					best.NsPerEvent = cur.NsPerEvent
					best.EventsPerSec = cur.EventsPerSec
				}
				if cur.AllocsPerEvent < best.AllocsPerEvent {
					best.AllocsPerEvent = cur.AllocsPerEvent
				}
			}
		}
		rep.Scenarios = append(rep.Scenarios, best)
	}
	return rep, nil
}

// Compare annotates the report with a prior report's ns/event numbers
// and returns the scenarios whose ns/event regressed by more than the
// given fraction (0.15 = fail anything more than 15% slower). Scenarios
// absent from the baseline are left unannotated and never fail the
// gate, so adding an experiment does not require regenerating the
// committed baseline in the same change.
func (r *PerfReport) Compare(baseline PerfReport, gate float64) []string {
	base := make(map[string]PerfScenario, len(baseline.Scenarios))
	for _, s := range baseline.Scenarios {
		base[s.ID] = s
	}
	var failed []string
	for i := range r.Scenarios {
		s := &r.Scenarios[i]
		b, ok := base[s.ID]
		if !ok || b.NsPerEvent <= 0 {
			continue
		}
		s.BaselineNsPerEvent = b.NsPerEvent
		s.Speedup = b.NsPerEvent / s.NsPerEvent
		if gate > 0 && s.NsPerEvent > b.NsPerEvent*(1+gate) {
			failed = append(failed, fmt.Sprintf("%s: %.0f ns/event vs baseline %.0f (+%.0f%%, gate %.0f%%)",
				s.ID, s.NsPerEvent, b.NsPerEvent,
				100*(s.NsPerEvent/b.NsPerEvent-1), 100*gate))
		}
	}
	sort.Strings(failed)
	return failed
}

// String renders the report as a compact fixed-width text table.
func (r PerfReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %10s %12s %10s %14s", "scenario", "events", "events/sec", "ns/event", "allocs/event")
	if r.Baseline != "" {
		fmt.Fprintf(&b, " %9s", "speedup")
	}
	b.WriteByte('\n')
	for _, s := range r.Scenarios {
		fmt.Fprintf(&b, "%-22s %10d %12.0f %10.1f %14.3f", s.ID, s.Events, s.EventsPerSec, s.NsPerEvent, s.AllocsPerEvent)
		if r.Baseline != "" {
			if s.Speedup > 0 {
				fmt.Fprintf(&b, " %8.2fx", s.Speedup)
			} else {
				fmt.Fprintf(&b, " %9s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package experiment

import (
	"testing"

	"perfiso/internal/core"
)

// Across the load sweep: PIso and Quo keep the victim flat; SMP's
// victim degrades monotonically with background load. (Loads 1-2 keep
// the test fast; RunSensitivity defaults to 1-3 for the harness.)
func TestSensitivitySweepShape(t *testing.T) {
	r := RunSensitivity([]int{1, 2})
	smp := r.Victim[core.SMP].Sorted()
	for i := 1; i < len(smp); i++ {
		if smp[i].Y < smp[i-1].Y-2 {
			t.Errorf("SMP victim improved with more load: %v", smp)
		}
	}
	if last := smp[len(smp)-1].Y; last < 125 {
		t.Errorf("SMP victim only %.0f%% at max load; interference too weak", last)
	}
	for _, scheme := range []core.Scheme{core.Quo, core.PIso} {
		for _, p := range r.Victim[scheme].Points {
			if p.Y > 112 {
				t.Errorf("%v victim at load %.0f reached %.0f%%: isolation leak", scheme, p.X, p.Y)
			}
		}
	}
	if r.Table().NumRows() != 2 {
		t.Fatal("table rows")
	}
}

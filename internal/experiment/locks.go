package experiment

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/kernel"
	"perfiso/internal/machine"
	"perfiso/internal/profile"
	"perfiso/internal/sim"
	"perfiso/internal/stats"
	"perfiso/internal/workload"
)

// LockLeakRow is one lock layout's outcome in the lock-sharing erosion
// experiment.
type LockLeakRow struct {
	Config string
	// Shards is the inode-lock shard count (1 = one shared mutex).
	Shards int
	// Makespan is the finish time of the slowest job.
	Makespan sim.Time
	// ContendedWait is the mean stall of the lookups that actually
	// queued, aggregated over the inode shards — the undiluted §3.4
	// number (MeanWait averages in every free grant and understates the
	// stall by orders of magnitude at low contention).
	ContendedWait sim.Time
	// MeanQueue is the busiest shard's time-weighted mean queue length.
	MeanQueue float64
	// Theft is the total cross-SPU time charged to the interference
	// matrix's lock column: lookup stalls plus contended gate windows
	// blamed on a foreign SPU.
	Theft sim.Time
}

// LockLeakResult is the lock-sharing erosion experiment: performance
// isolation leaks through shared kernel locks even when CPU, memory,
// and disk are all perfectly partitioned.
type LockLeakResult struct {
	Meter
	Rows []LockLeakRow
}

// RunLockLeak runs an eight-SPU PIso machine whose only shared resource
// is the kernel's lock layout. Every SPU gets one CPU and a
// metadata-bound process (pathname lookups and short compute bursts —
// no file IO, so the page-insert stripes and disks stay cold). Three
// layouts bracket the paper's §3.4 trajectory:
//
//   - shared: one inode mutex plus coarse run-queue/frame-pool gates —
//     the SMP-style kernel. Every SPU's lookups serialize behind the
//     others' and the interference matrix shows who paid for whom.
//   - sharded-4: four inode shards, private gates. Pairs of SPUs still
//     collide; the leak shrinks but is nonzero.
//   - private: eight shards — one per SPU — and private gates. No lock
//     is touched by two SPUs, so cross-SPU lock theft is exactly zero
//     by construction, not merely small.
func RunLockLeak() LockLeakResult {
	var res LockLeakResult
	run := func(config string, shards int) {
		coarse := shards <= 1
		k := kernel.New(machine.Pmake8(), core.PIso, kernel.Options{
			InodeMutex:        true,
			InodeShards:       shards,
			RunqLockHold:      2 * sim.Microsecond,
			FrameLockHold:     2 * sim.Microsecond,
			CoarseKernelLocks: coarse,
			Profiled:          true,
		})
		var spus []core.SPUID
		for i := 0; i < 8; i++ {
			s := k.NewSPU(fmt.Sprintf("spu%d", i+1), 1)
			k.SetAffinity(s.ID(), i)
			spus = append(spus, s.ID())
		}
		k.Boot()
		k.FS().LookupHold = 30 * sim.Millisecond
		for i, id := range spus {
			k.Spawn(workload.LookupLoop(k, id, fmt.Sprintf("md%d", i), workload.DefaultLookupLoop()))
		}
		end := k.Run()
		res.observe(k, config)

		row := LockLeakRow{Config: config, Shards: shards, Makespan: end}
		var contended, waitSum int64
		for _, l := range k.FS().InodeLocks() {
			contended += l.Contended
			waitSum += int64(l.ContendedWait)
			if q := l.MeanQueueLen(); q > row.MeanQueue {
				row.MeanQueue = q
			}
		}
		if contended > 0 {
			row.ContendedWait = sim.Time(waitSum / contended)
		}
		for _, t := range k.Profile().Interference() {
			if t.Resource == profile.Lock {
				row.Theft += t.Stolen
			}
		}
		res.Rows = append(res.Rows, row)
	}
	run("shared", 1)
	run("sharded-4", 4)
	run("private", 8)
	return res
}

// Table renders the erosion ladder.
func (r LockLeakResult) Table() *stats.Table {
	t := stats.NewTable(
		"Lock-sharing erosion: PIso leaks through shared kernel locks (§3.4 extension)",
		"Lock layout", "Makespan (s)", "Contended wait (ms)", "Peak mean qlen", "Lock theft (ms)")
	for _, row := range r.Rows {
		t.Addf(fmt.Sprintf("%s (%d)", row.Config, row.Shards),
			row.Makespan.Seconds(),
			row.ContendedWait.Milliseconds(),
			row.MeanQueue,
			row.Theft.Milliseconds())
	}
	return t
}

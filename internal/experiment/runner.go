package experiment

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"perfiso/internal/stats"
)

// BarChart is the data behind one terminal bar rendering (the stand-in
// for the paper's bar figures). The harness carries it alongside the
// table so callers decide how — and whether — to render it.
type BarChart struct {
	Labels []string
	Values []float64
}

// Section is one printable artifact of an experiment: a table plus,
// optionally, the bar chart pisobench draws beneath it. Experiments that
// reproduce several figures from one simulation batch (Pmake8 produces
// Figures 2 and 3) emit one section per figure.
type Section struct {
	ID    string
	Table *stats.Table
	Bars  *BarChart
}

// Output is everything one experiment run produced.
type Output struct {
	Sections []Section
	// Events is the total number of simulation events the experiment
	// dispatched, for events/sec reporting.
	Events uint64
	// Metrics holds per-configuration observability summaries for the
	// experiments that run with the metrics registry on.
	Metrics []MetricSummary
	// Attribution holds per-configuration profiler summaries (latency
	// breakdown per process, cross-SPU interference matrix) for the
	// experiments that run with the profiler on.
	Attribution []AttributionSummary
	// Latency holds per-configuration tail-latency summaries (per-tenant
	// percentiles and SLO attainment) for the experiments that run with
	// latency tracking on.
	Latency []LatencySummary
	// Controller holds per-configuration SLO-controller summaries
	// (retune/shed/breaker totals plus the decision log) for the
	// experiments that run with the closed loop on.
	Controller []ControllerSummary
}

// Rows flattens every section table into machine-readable headline rows
// for regression tracking.
func (o Output) Rows() []stats.Row {
	var rows []stats.Row
	for _, s := range o.Sections {
		rows = append(rows, s.Table.NumericRows()...)
	}
	return rows
}

// Spec is one registered experiment: a stable identifier, the section
// ids it answers to, and a runner. Each Run call builds its own
// kernels/engines from scratch, so specs are safe to execute
// concurrently with each other — determinism is per-experiment.
type Spec struct {
	// ID is the primary identifier (pisobench -only).
	ID string
	// Aliases are additional -only names, one per section for
	// multi-section specs (fig2/fig3 for pmake8).
	Aliases []string
	// Title is a short human-readable description.
	Title string
	// Ablation marks the studies pisobench -short skips.
	Ablation bool
	// Run executes the experiment and returns its artifacts.
	Run func() Output
}

// Matches reports whether id names this spec (primary id or alias).
func (s Spec) Matches(id string) bool {
	if id == s.ID {
		return true
	}
	for _, a := range s.Aliases {
		if id == a {
			return true
		}
	}
	return false
}

// Registry returns every experiment of the paper's evaluation plus the
// ablations, in the canonical presentation order (the order pisobench
// prints and BENCH_pisobench.json records).
func Registry() []Spec {
	return []Spec{
		{
			ID: "pmake8", Aliases: []string{"fig2", "fig3"},
			Title: "Pmake8 isolation and sharing (Figures 2-3)",
			Run: func() Output {
				p := RunPmake8(Pmake8Options{})
				fig2 := Section{ID: "fig2", Table: p.Fig2Table(), Bars: &BarChart{}}
				for _, r := range p.Fig2Rows() {
					fig2.Bars.Labels = append(fig2.Bars.Labels, r.Scheme.String()+" B", r.Scheme.String()+" U")
					fig2.Bars.Values = append(fig2.Bars.Values, r.Balanced, r.Unbalanced)
				}
				fig3 := Section{ID: "fig3", Table: p.Fig3Table(), Bars: &BarChart{}}
				for _, r := range p.Fig3Rows() {
					fig3.Bars.Labels = append(fig3.Bars.Labels, r.Scheme.String())
					fig3.Bars.Values = append(fig3.Bars.Values, r.Heavy)
				}
				return Output{Sections: []Section{fig2, fig3}, Events: p.Events, Attribution: p.Attribution}
			},
		},
		{
			ID: "fig5", Title: "CPU isolation (Figure 5)",
			Run: func() Output {
				r := RunCPUIso(CPUIsoOptions{})
				return Output{Sections: []Section{{ID: "fig5", Table: r.Table()}}, Events: r.Events, Metrics: r.Metrics, Attribution: r.Attribution}
			},
		},
		{
			ID: "fig7", Title: "Memory isolation (Figure 7)",
			Run: func() Output {
				r := RunMemIso(MemIsoOptions{})
				return Output{Sections: []Section{{ID: "fig7", Table: r.Table()}}, Events: r.Events, Metrics: r.Metrics, Attribution: r.Attribution}
			},
		},
		{
			ID: "tab3", Title: "Disk isolation, pmake-copy (Table 3)",
			Run: func() Output {
				r := RunTable3(DiskOptions{})
				return Output{Sections: []Section{{ID: "tab3", Table: r.Table()}}, Events: r.Events, Attribution: r.Attribution}
			},
		},
		{
			ID: "tab4", Title: "Disk head position vs fairness (Table 4)",
			Run: func() Output {
				r := RunTable4(DiskOptions{})
				return Output{Sections: []Section{{ID: "tab4", Table: r.Table()}}, Events: r.Events, Attribution: r.Attribution}
			},
		},
		{
			ID: "isolation-under-faults", Aliases: []string{"faults"},
			Title: "Isolation under injected faults (extension)", Ablation: true,
			Run: func() Output {
				r := RunFaults(FaultOptions{})
				s := Section{ID: "isolation-under-faults", Table: r.Table(), Bars: &BarChart{}}
				for _, row := range r.Rows() {
					s.Bars.Labels = append(s.Bars.Labels, row.Scheme.String()+" V", row.Scheme.String()+" S")
					s.Bars.Values = append(s.Bars.Values, row.Victim, row.Steady)
				}
				return Output{Sections: []Section{s}, Events: r.Events, Metrics: r.Metrics, Attribution: r.Attribution}
			},
		},
		{
			ID: "abl-bwthreshold", Title: "Ablation: BW-difference threshold sweep", Ablation: true,
			Run: func() Output {
				r := RunAblationBWThreshold(nil)
				return Output{Sections: []Section{{ID: "abl-bwthreshold", Table: r.Table()}}, Events: r.Events, Attribution: r.Attribution}
			},
		},
		{
			ID: "abl-reserve", Title: "Ablation: memory Reserve Threshold sweep", Ablation: true,
			Run: func() Output {
				r := RunAblationReserve(nil)
				return Output{Sections: []Section{{ID: "abl-reserve", Table: r.Table()}}, Events: r.Events, Attribution: r.Attribution}
			},
		},
		{
			ID: "abl-inodelock", Title: "Ablation: inode-lock granularity", Ablation: true,
			Run: func() Output {
				r := RunAblationInodeLock()
				return Output{Sections: []Section{{ID: "abl-inodelock", Table: r.Table()}}, Events: r.Events, Attribution: r.Attribution}
			},
		},
		{
			ID: "abl-pageinsert", Title: "Ablation: page-insert-lock granularity", Ablation: true,
			Run: func() Output {
				r := RunAblationPageInsert()
				return Output{Sections: []Section{{ID: "abl-pageinsert", Table: r.Table()}}, Events: r.Events, Attribution: r.Attribution}
			},
		},
		{
			ID: "lock-leak", Aliases: []string{"abl-lockleak"},
			Title: "Lock-sharing erosion of performance isolation", Ablation: true,
			Run: func() Output {
				r := RunLockLeak()
				return Output{Sections: []Section{{ID: "lock-leak", Table: r.Table()}}, Events: r.Events, Attribution: r.Attribution}
			},
		},
		{
			ID: "abl-revocation", Title: "Ablation: CPU revocation latency", Ablation: true,
			Run: func() Output {
				r := RunAblationRevocation()
				return Output{Sections: []Section{{ID: "abl-revocation", Table: r.Table()}}, Events: r.Events, Attribution: r.Attribution}
			},
		},
		{
			ID: "abl-affinity", Title: "Ablation: cache pollution and loan limiting", Ablation: true,
			Run: func() Output {
				r := RunAblationAffinity()
				return Output{Sections: []Section{{ID: "abl-affinity", Table: r.Table()}}, Events: r.Events, Attribution: r.Attribution}
			},
		},
		{
			ID: "abl-gang", Title: "Ablation: gang scheduling", Ablation: true,
			Run: func() Output {
				r := RunAblationGang()
				return Output{Sections: []Section{{ID: "abl-gang", Table: r.Table()}}, Events: r.Events, Attribution: r.Attribution}
			},
		},
		{
			ID: "abl-network", Title: "Ablation: network bandwidth isolation", Ablation: true,
			Run: func() Output {
				r := RunAblationNetwork()
				return Output{Sections: []Section{{ID: "abl-network", Table: r.Table()}}, Events: r.Events, Attribution: r.Attribution}
			},
		},
		{
			ID: "server-latency", Title: "Extension: interactive response-time isolation", Ablation: true,
			Run: func() Output {
				r := RunServerLatency()
				return Output{Sections: []Section{{ID: "server-latency", Table: r.Table()}}, Events: r.Events, Attribution: r.Attribution}
			},
		},
		{
			ID: "slo-controller", Aliases: []string{"controller", "adaptive"},
			Title: "Extension: closed-loop SLO entitlement control", Ablation: true,
			Run: func() Output {
				r := RunSLOController()
				return Output{
					Sections: []Section{
						{ID: "slo-controller", Table: r.Table()},
						{ID: "slo-frontier", Table: r.FrontierTable()},
					},
					Events: r.Events, Metrics: r.Metrics,
					Attribution: r.Attribution, Latency: r.Latency,
					Controller: r.Controller,
				}
			},
		},
		{
			ID: "open-arrival", Aliases: []string{"tenants"},
			Title: "Extension: multi-tenant open-arrival tail latency", Ablation: true,
			Run: func() Output {
				r := RunOpenArrival()
				return Output{
					Sections: []Section{
						{ID: "open-arrival", Table: r.Table()},
						{ID: "open-arrival-breakdown", Table: r.BreakdownTable()},
					},
					Events: r.Events, Metrics: r.Metrics,
					Attribution: r.Attribution, Latency: r.Latency,
				}
			},
		},
	}
}

// Lookup resolves an experiment id or alias against the registry.
func Lookup(id string) (Spec, bool) {
	for _, s := range Registry() {
		if s.Matches(id) {
			return s, true
		}
	}
	return Spec{}, false
}

// IDs returns every primary id in registry order.
func IDs() []string {
	regs := Registry()
	out := make([]string, len(regs))
	for i, s := range regs {
		out[i] = s.ID
	}
	return out
}

// Filter selects the specs a pisobench invocation should run: all of
// them, the non-ablations (short), or the ones matching a single id.
func Filter(specs []Spec, only string, short bool) []Spec {
	var out []Spec
	for _, s := range specs {
		if only != "" {
			if s.Matches(only) {
				out = append(out, s)
			}
			continue
		}
		if short && s.Ablation {
			continue
		}
		out = append(out, s)
	}
	return out
}

// Result pairs a Spec's Output with execution metadata.
type Result struct {
	Spec   Spec
	Output Output
	Wall   time.Duration
	// Err is non-nil when the experiment panicked (an invariant
	// violation, a kernel bug, a broken ablation); Output is then
	// whatever partial state survived — usually empty.
	Err error
}

// runSpec executes one spec, converting a panic — including invariant
// auditor violations, which deliberately panic in fail-fast mode — into
// an error carrying the experiment id and stack, so one broken
// experiment cannot take down a whole parallel suite.
func runSpec(s Spec) (out Output, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiment %s panicked: %v\n%s", s.ID, r, debug.Stack())
		}
	}()
	return s.Run(), nil
}

// RunAll executes the specs across a bounded pool of parallel worker
// goroutines and returns the results in spec order regardless of
// completion order. Every experiment builds its own engines, so each
// worker's simulation state is goroutine-confined and the results are
// bit-identical to a sequential run (parallel == 1).
func RunAll(specs []Spec, parallel int) []Result {
	if parallel < 1 {
		parallel = 1
	}
	if parallel > len(specs) {
		parallel = len(specs)
	}
	results := make([]Result, len(specs))
	idx := make(chan int)
	go func() {
		for i := range specs {
			idx <- i
		}
		close(idx)
	}()
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				start := time.Now()
				out, err := runSpec(specs[i])
				results[i] = Result{Spec: specs[i], Output: out, Wall: time.Since(start), Err: err}
			}
		}()
	}
	wg.Wait()
	return results
}

// Bench is the machine-readable benchmark report pisobench -json writes:
// per-experiment wall-clock, event throughput, and the headline result
// rows, for perf and regression tracking across configurations.
type Bench struct {
	Suite       string            `json:"suite"`
	Parallel    int               `json:"parallel"`
	Short       bool              `json:"short"`
	WallSeconds float64           `json:"wall_seconds"`
	Events      uint64            `json:"events"`
	Experiments []BenchExperiment `json:"experiments"`
}

// BenchExperiment is one experiment's entry in a Bench report.
type BenchExperiment struct {
	ID           string      `json:"id"`
	Title        string      `json:"title"`
	WallSeconds  float64     `json:"wall_seconds"`
	Events       uint64      `json:"events"`
	EventsPerSec float64     `json:"events_per_sec"`
	Rows         []stats.Row `json:"rows"`
	// Metrics embeds the per-configuration observability summaries
	// (revocation latency p99, per-SPU CPU share) for instrumented
	// experiments.
	Metrics []MetricSummary `json:"metrics,omitempty"`
	// Attribution embeds the per-configuration profiler summaries
	// (per-process latency breakdown, interference matrix) for
	// profiled experiments.
	Attribution []AttributionSummary `json:"attribution,omitempty"`
	// Latency embeds the per-configuration tail-latency summaries
	// (per-tenant percentile ladders and SLO attainment) for the
	// experiments that run with latency tracking on.
	Latency []LatencySummary `json:"latency,omitempty"`
	// Controller embeds the per-configuration SLO-controller summaries
	// for the experiments that run with the closed loop on.
	Controller []ControllerSummary `json:"controller,omitempty"`
	// Error is set when the experiment panicked instead of finishing.
	Error string `json:"error,omitempty"`
}

// BenchReport assembles a Bench from finished results.
func BenchReport(results []Result, parallel int, short bool, wall time.Duration) Bench {
	b := Bench{
		Suite:       "pisobench",
		Parallel:    parallel,
		Short:       short,
		WallSeconds: wall.Seconds(),
	}
	for _, r := range results {
		e := BenchExperiment{
			ID:          r.Spec.ID,
			Title:       r.Spec.Title,
			WallSeconds: r.Wall.Seconds(),
			Events:      r.Output.Events,
			Rows:        r.Output.Rows(),
			Metrics:     r.Output.Metrics,
			Attribution: r.Output.Attribution,
			Latency:     r.Output.Latency,
			Controller:  r.Output.Controller,
		}
		if s := r.Wall.Seconds(); s > 0 {
			e.EventsPerSec = float64(e.Events) / s
		}
		if r.Err != nil {
			e.Error = r.Err.Error()
		}
		b.Events += e.Events
		b.Experiments = append(b.Experiments, e)
	}
	return b
}

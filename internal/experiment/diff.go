package experiment

import (
	"encoding/json"
	"fmt"
	"strings"

	"perfiso/internal/stats"
)

// Diff compares two pisobench JSON reports and renders a textual
// comparison. Evaluation reports (pisobench -json), perf baselines
// (pisobench -perf -json), and perf trajectories (BENCH_trajectory.jsonl)
// are all accepted; the kind is sniffed — "suite" field for reports,
// per-line "type" for trajectories — and the two files must agree. The diff is
// report-only — it never declares a regression, it shows what moved so
// the reader can. Deterministic quantities (simulation events, table
// cells, latency percentiles) only move when behavior changed;
// wall-clock rates move run to run and are labelled as such.
func Diff(oldData, newData []byte, oldName, newName string) (string, error) {
	// Trajectory files are JSONL, not single JSON objects: sniff them
	// first (by their per-line "type" discriminator) and route to the
	// trend comparison.
	if IsTrajectory(oldData) || IsTrajectory(newData) {
		if !IsTrajectory(oldData) {
			return "", fmt.Errorf("cannot diff %s (pisobench report) against %s (trajectory)", oldName, newName)
		}
		if !IsTrajectory(newData) {
			return "", fmt.Errorf("cannot diff %s (trajectory) against %s (pisobench report)", oldName, newName)
		}
		return DiffTrajectory(oldData, newData, oldName, newName)
	}
	oldSuite, err := sniffSuite(oldData, oldName)
	if err != nil {
		return "", err
	}
	newSuite, err := sniffSuite(newData, newName)
	if err != nil {
		return "", err
	}
	if oldSuite != newSuite {
		return "", fmt.Errorf("cannot diff %s (%s) against %s (%s)", oldName, oldSuite, newName, newSuite)
	}
	switch oldSuite {
	case "pisobench":
		var ob, nb Bench
		if err := parseReport(oldData, oldName, &ob); err != nil {
			return "", err
		}
		if err := parseReport(newData, newName, &nb); err != nil {
			return "", err
		}
		return diffBench(ob, nb, oldName, newName), nil
	default: // "pisobench-perf"
		var op, np PerfReport
		if err := parseReport(oldData, oldName, &op); err != nil {
			return "", err
		}
		if err := parseReport(newData, newName, &np); err != nil {
			return "", err
		}
		return diffPerf(op, np, oldName, newName), nil
	}
}

// sniffSuite identifies which pisobench artifact a JSON blob is.
func sniffSuite(data []byte, name string) (string, error) {
	var s struct {
		Suite string `json:"suite"`
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return "", fmt.Errorf("parsing %s: %v", name, err)
	}
	switch s.Suite {
	case "pisobench", "pisobench-perf":
		return s.Suite, nil
	case "":
		return "", fmt.Errorf("%s: no \"suite\" field — not a pisobench report", name)
	default:
		return "", fmt.Errorf("%s: unknown suite %q", name, s.Suite)
	}
}

func parseReport(data []byte, name string, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("parsing %s: %v", name, err)
	}
	return nil
}

// pctDelta renders the relative change between two values.
func pctDelta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "+0.0%"
		}
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

// diffBench compares two evaluation reports: experiment membership,
// deterministic result cells, tail-latency percentiles, and (clearly
// labelled) wall-clock throughput.
func diffBench(old, new Bench, oldName, newName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "pisobench diff: %s -> %s\n", oldName, newName)
	fmt.Fprintf(&b, "  old: %d experiments, %d events, parallel=%d, short=%t\n",
		len(old.Experiments), old.Events, old.Parallel, old.Short)
	fmt.Fprintf(&b, "  new: %d experiments, %d events, parallel=%d, short=%t\n\n",
		len(new.Experiments), new.Events, new.Parallel, new.Short)

	oldByID := make(map[string]BenchExperiment, len(old.Experiments))
	for _, e := range old.Experiments {
		oldByID[e.ID] = e
	}
	newIDs := make(map[string]bool, len(new.Experiments))
	for _, e := range new.Experiments {
		newIDs[e.ID] = true
		if _, ok := oldByID[e.ID]; !ok {
			fmt.Fprintf(&b, "added experiment: %s\n", e.ID)
		}
	}
	for _, e := range old.Experiments {
		if !newIDs[e.ID] {
			fmt.Fprintf(&b, "removed experiment: %s\n", e.ID)
		}
	}

	results := stats.NewTable("Changed results (simulation-deterministic: a delta means behavior changed)",
		"Experiment", "Label", "Metric", "Old", "New", "Δ")
	lat := stats.NewTable("Changed tail latency (p99 ms, simulation-deterministic)",
		"Experiment", "Config", "Tenant", "Old", "New", "Δ")
	thr := stats.NewTable("Throughput (wall-clock: varies run to run, not a behavior signal)",
		"Experiment", "Old Mev/s", "New Mev/s", "Δ")
	unchanged := 0
	for _, ne := range new.Experiments {
		oe, ok := oldByID[ne.ID]
		if !ok {
			continue
		}
		if oe.Events != ne.Events {
			fmt.Fprintf(&b, "events changed: %s dispatched %d -> %d\n", ne.ID, oe.Events, ne.Events)
		}
		thr.Addf(ne.ID, oe.EventsPerSec/1e6, ne.EventsPerSec/1e6,
			pctDelta(oe.EventsPerSec, ne.EventsPerSec))

		oldRows := make(map[string]float64, len(oe.Rows))
		for _, r := range oe.Rows {
			oldRows[r.Table+"|"+r.Label+"|"+r.Metric] = r.Value
		}
		for _, r := range ne.Rows {
			ov, ok := oldRows[r.Table+"|"+r.Label+"|"+r.Metric]
			if !ok {
				continue
			}
			if ov == r.Value {
				unchanged++
				continue
			}
			results.Addf(ne.ID, r.Label, r.Metric, ov, r.Value, pctDelta(ov, r.Value))
		}

		oldP99 := make(map[string]TenantLatency)
		for _, ls := range oe.Latency {
			for _, t := range ls.Tenants {
				oldP99[ls.Config+"|"+t.Name] = t
			}
		}
		for _, ls := range ne.Latency {
			for _, t := range ls.Tenants {
				ot, ok := oldP99[ls.Config+"|"+t.Name]
				if !ok || ot.P99NS == t.P99NS {
					continue
				}
				lat.Addf(ne.ID, ls.Config, t.Name,
					float64(ot.P99NS)/1e6, float64(t.P99NS)/1e6,
					pctDelta(float64(ot.P99NS), float64(t.P99NS)))
			}
		}
	}

	b.WriteString("\n")
	if results.NumRows() == 0 {
		fmt.Fprintf(&b, "no result-cell changes (%d cells compared equal)\n", unchanged)
	} else {
		fmt.Fprintf(&b, "%s(%d cells compared equal)\n", results, unchanged)
	}
	if lat.NumRows() > 0 {
		fmt.Fprintf(&b, "\n%s", lat)
	}
	fmt.Fprintf(&b, "\n%s", thr)
	return b.String()
}

// diffPerf compares two perf baselines scenario by scenario. Events are
// deterministic; the timing and allocation columns are measured.
func diffPerf(old, new PerfReport, oldName, newName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "pisobench perf diff: %s -> %s\n", oldName, newName)
	fmt.Fprintf(&b, "  old: eventq=%s reps=%d scenarios=%d\n", old.EventQueue, old.Reps, len(old.Scenarios))
	fmt.Fprintf(&b, "  new: eventq=%s reps=%d scenarios=%d\n\n", new.EventQueue, new.Reps, len(new.Scenarios))
	if old.EventQueue != new.EventQueue {
		fmt.Fprintf(&b, "warning: different event queues (%s vs %s) — timing deltas conflate code and queue\n\n",
			old.EventQueue, new.EventQueue)
	}

	oldByID := make(map[string]PerfScenario, len(old.Scenarios))
	for _, s := range old.Scenarios {
		oldByID[s.ID] = s
	}
	newIDs := make(map[string]bool, len(new.Scenarios))
	t := stats.NewTable("Perf scenarios (ns/event and allocs/event are measured; events are deterministic)",
		"Scenario", "Old ns/ev", "New ns/ev", "Δ", "Old allocs/ev", "New allocs/ev")
	for _, s := range new.Scenarios {
		newIDs[s.ID] = true
		o, ok := oldByID[s.ID]
		if !ok {
			fmt.Fprintf(&b, "added scenario: %s\n", s.ID)
			continue
		}
		if o.Events != s.Events {
			fmt.Fprintf(&b, "events changed: %s dispatched %d -> %d\n", s.ID, o.Events, s.Events)
		}
		t.Addf(s.ID, o.NsPerEvent, s.NsPerEvent, pctDelta(o.NsPerEvent, s.NsPerEvent),
			o.AllocsPerEvent, s.AllocsPerEvent)
	}
	for _, s := range old.Scenarios {
		if !newIDs[s.ID] {
			fmt.Fprintf(&b, "removed scenario: %s\n", s.ID)
		}
	}
	fmt.Fprintf(&b, "\n%s", t)
	return b.String()
}

package experiment

import (
	"strings"
	"testing"

	"perfiso/internal/simobs"
)

// renderTables renders every section table of an output, the byte-exact
// artifact the on/off identity guarantee covers.
func renderTables(out Output) string {
	var b strings.Builder
	for _, s := range out.Sections {
		b.WriteString(s.Table.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestSimObsTablesByteIdentical is the satellite guarantee: running a
// registry scenario under the simobs collector produces byte-identical
// result tables to a dark run. The observer must be read-only with
// respect to simulated time — any divergence means telemetry leaked
// into simulation behavior.
func TestSimObsTablesByteIdentical(t *testing.T) {
	for _, id := range []string{"fig5", "tab3", "lock-leak"} {
		spec, ok := Lookup(id)
		if !ok {
			t.Fatalf("%s not registered", id)
		}
		dark := renderTables(spec.Run())
		results, err := RunSimObs([]string{id}, simobs.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Err != nil {
			t.Fatalf("%s under simobs: %v", id, results[0].Err)
		}
		observed := renderTables(results[0].Output)
		if dark != observed {
			t.Fatalf("%s tables differ with simobs on:\n--- dark ---\n%s\n--- observed ---\n%s", id, dark, observed)
		}
	}
}

// TestRunSimObsReport checks the collected report carries the three
// telemetry families for a real registry scenario and that the
// feasibility table row is complete.
func TestRunSimObsReport(t *testing.T) {
	results, err := RunSimObs([]string{"fig5"}, simobs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rep := results[0].Report
	if rep == nil || rep.Events == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if rep.Engines == 0 {
		t.Fatal("no engines observed")
	}
	if len(rep.Classes) == 0 || rep.Queue.Pushes == 0 {
		t.Fatalf("missing census or queue telemetry: classes=%d pushes=%d",
			len(rep.Classes), rep.Queue.Pushes)
	}
	// fig5 runs disk I/O on a multi-disk machine: per-disk domains and
	// cross-domain edges must appear.
	if len(rep.Domains) < 2 {
		t.Fatalf("domains = %v, want per-disk split", rep.Domains)
	}
	if rep.Cross == 0 || rep.MeanLookahead() <= 0 {
		t.Fatalf("feasibility numbers empty: cross=%d meanLA=%v", rep.Cross, rep.MeanLookahead())
	}
	ft := FeasibilityTable(results).String()
	for _, want := range []string{"fig5", "cross%", "mean la us"} {
		if !strings.Contains(ft, want) {
			t.Fatalf("feasibility table missing %q:\n%s", want, ft)
		}
	}
	// The collector must be uninstalled after RunSimObs.
	spec, _ := Lookup("fig5")
	out := spec.Run()
	if out.Events == 0 {
		t.Fatal("post-collection run broken")
	}
}

// TestRunSimObsUnknownID checks the error path names known ids.
func TestRunSimObsUnknownID(t *testing.T) {
	_, err := RunSimObs([]string{"nope"}, simobs.Config{})
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err = %v", err)
	}
}

package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"perfiso/internal/control"
	"perfiso/internal/core"
	"perfiso/internal/fault"
	"perfiso/internal/kernel"
	"perfiso/internal/machine"
	"perfiso/internal/sim"
	"perfiso/internal/stats"
	"perfiso/internal/workload"
)

// sloNoiseHogs is how many compute antagonists the noise SPU runs in
// the controller experiment — enough threads that thread-level fair
// sharing (SMP) hands the noise SPU most of the machine. sloNoiseWork
// oversizes each hog's demand past the horizon so noise pressure never
// lets up, and sloHorizon fixes the observation window: every config
// runs the same simulated span, so the frontier's utilization and
// noise-CPU columns are directly comparable.
const (
	sloNoiseHogs = 64
	sloNoiseWork = 200 * sim.Second
	sloHorizon   = 40 * sim.Second
)

// sloFaultPlan composes the two hardware faults the controller must
// ride out: the search tenant's data disk degrades 6x mid-run (which
// also trips that disk's circuit breaker), and two CPUs go offline
// across the middle of the run, shrinking every static entitlement
// right as the diurnal peaks wash through.
const sloFaultPlan = "disk-slow:2:14s:8s:6,cpu-off:6:9s:18s,cpu-off:7:9s:18s"

// SLOControllerRow is one (config, tenant) cell of the controller
// comparison: the tail, the SLO verdict, and how many requests
// admission control shed.
type SLOControllerRow struct {
	Config     string
	Tenant     string
	P99        sim.Time
	Attainment float64
	Target     float64 // SLO target in percent
	Shed       int64
	Met        bool
}

// SLOControllerConfig is one configuration's frontier point: SLOs held
// against machine utilization, plus the controller's activity when one
// ran.
type SLOControllerConfig struct {
	Config   string
	Held     int // tenants whose SLO was met
	Tenants  int
	Util     float64 // machine CPU utilization over the run, percent
	NoiseCPU float64 // CPU-seconds the noise SPU's hogs got
	Stats    control.Stats
}

// SLOControllerResult captures the closed-loop controller experiment:
// the same diurnal tenant mix and fault plan under SMP, static PIso,
// and PIso with the feedback controller, on the SLO-attainment-vs-
// utilization frontier.
type SLOControllerResult struct {
	Meter
	Rows    []SLOControllerRow
	Configs []SLOControllerConfig
}

// RunSLOController runs the controller experiment: four tenants with
// phase-shifted diurnal (and bursty) open arrivals plus a noise SPU of
// compute hogs, under a composed disk-slow + cpu-off fault plan, on
// three configurations — SMP (no isolation), static PIso (the paper's
// kernel), and adaptive PIso (the closed-loop controller retuning
// entitlements from SLO burn). The claim under test: the controller
// holds every tenant's SLO through load shift and faults where the
// static split cannot, and pays for it with bounded noise throughput,
// not with lost isolation.
func RunSLOController() SLOControllerResult {
	var res SLOControllerResult
	tenants := workload.DiurnalTenantSet()

	run := func(scheme core.Scheme, adaptive bool, config string) {
		plan, err := fault.ParsePlan(sloFaultPlan)
		if err != nil {
			panic(err)
		}
		opts := kernel.Options{
			LatencyWindow: 500 * sim.Millisecond,
			Faults:        plan,
			Profiled:      true,
			MetricsPeriod: metricsPeriod,
		}
		if scheme == core.PIso {
			opts.IPIRevoke = true
		}
		if adaptive {
			opts.Control = control.Config{Enabled: true, Step: 0.5, Decay: 0.75, Hold: 6}
		}
		k := kernel.New(machine.Pmake8(), scheme, opts)
		spus := make([]core.SPUID, len(tenants))
		for i, ts := range tenants {
			spus[i] = k.NewSPU(ts.Name, ts.Weight).ID()
		}
		noise := k.NewSPU("noise", 4)
		k.Boot()
		jobs := make([]*workload.ServerJob, len(tenants))
		for i, ts := range tenants {
			jobs[i] = workload.OpenServer(k, spus[i], ts.Name, ts.Server)
			k.Spawn(jobs[i].Root)
		}
		for i := 0; i < sloNoiseHogs; i++ {
			k.Spawn(workload.ComputeBound(k, noise.ID(), fmt.Sprintf("hog%d", i),
				workload.ComputeParams{Total: sloNoiseWork, Chunk: 50 * sim.Millisecond, WSSPages: 50}))
		}
		k.RunUntil(sloHorizon)
		end := sloHorizon
		for _, j := range jobs {
			j.CensorTail(end)
		}
		res.observe(k, config)

		cfgRow := SLOControllerConfig{Config: config, Tenants: len(tenants)}
		var busy float64
		for _, u := range k.SPUs().All() {
			if pt := k.Scheduler().PerSPUTime[u.ID()]; pt != nil {
				busy += pt.Seconds()
			}
		}
		if secs := end.Seconds() * float64(machine.Pmake8().CPUs); secs > 0 {
			cfgRow.Util = 100 * busy / secs
		}
		if pt := k.Scheduler().PerSPUTime[noise.ID()]; pt != nil {
			cfgRow.NoiseCPU = pt.Seconds()
		}
		if c := k.Controller(); c != nil {
			cfgRow.Stats = c.Stat
		}
		for i, ts := range tenants {
			tr := jobs[i].Tracker()
			attain := tr.Attainment()
			row := SLOControllerRow{
				Config: config, Tenant: ts.Name,
				P99:        sim.Time(tr.Total().Quantile(0.99)),
				Attainment: attain,
				Target:     ts.Server.SLO.Target * 100,
				Shed:       tr.Shed(),
				Met:        attain >= ts.Server.SLO.Target*100,
			}
			if row.Met {
				cfgRow.Held++
			}
			res.Rows = append(res.Rows, row)
		}
		res.Configs = append(res.Configs, cfgRow)
	}

	run(core.SMP, false, "SMP")
	run(core.PIso, false, "PIso-static")
	run(core.PIso, true, "PIso-adaptive")
	return res
}

// Row returns the row for a (config, tenant) pair, or nil.
func (r SLOControllerResult) Row(config, tenant string) *SLOControllerRow {
	for i := range r.Rows {
		if r.Rows[i].Config == config && r.Rows[i].Tenant == tenant {
			return &r.Rows[i]
		}
	}
	return nil
}

// Config returns the frontier point for a configuration, or nil.
func (r SLOControllerResult) Config(config string) *SLOControllerConfig {
	for i := range r.Configs {
		if r.Configs[i].Config == config {
			return &r.Configs[i]
		}
	}
	return nil
}

// Table renders the per-tenant SLO comparison.
func (r SLOControllerResult) Table() *stats.Table {
	t := stats.NewTable(
		"Extension: closed-loop SLO entitlement control (diurnal load shift + disk-slow/cpu-off faults, Pmake8)",
		"Config", "Tenant", "p99 (ms)", "Attain (%)", "Target (%)", "Shed", "SLO")
	for _, row := range r.Rows {
		verdict := "MISS"
		if row.Met {
			verdict = "met"
		}
		t.Addf(row.Config, row.Tenant, row.P99.Milliseconds(), row.Attainment,
			row.Target, row.Shed, verdict)
	}
	return t
}

// FrontierTable renders the SLO-attainment-vs-utilization frontier:
// one row per configuration with the SLOs it held, the machine
// utilization it reached, the noise CPU it preserved, and the
// controller activity that bought the difference.
func (r SLOControllerResult) FrontierTable() *stats.Table {
	t := stats.NewTable(
		"SLO-attainment vs utilization frontier",
		"Config", "SLOs held", "Util (%)", "Noise CPU (s)", "Retunes", "Boosts", "Shed", "Breaker trips")
	for _, c := range r.Configs {
		t.Addf(c.Config, fmt.Sprintf("%d/%d", c.Held, c.Tenants), c.Util, c.NoiseCPU,
			c.Stats.Retunes, c.Stats.Boosts, c.Stats.Shed, c.Stats.Trips)
	}
	return t
}

// ControllerSummary is one configuration's controller activity, with
// the full decision-log export embedded for the -controller artifact.
type ControllerSummary struct {
	// Config names the run within its experiment.
	Config string `json:"config"`
	// Stats are the controller's activity totals.
	Stats control.Stats `json:"stats"`

	// jsonl holds the run's full controller export (config header plus
	// one line per decision); unexported so bench JSON stays a summary.
	jsonl string
}

// summarizeController distills a finished kernel's controller. ok is
// false when the kernel ran without the closed loop.
func summarizeController(k *kernel.Kernel, config string) (ControllerSummary, bool) {
	c := k.Controller()
	if c == nil {
		return ControllerSummary{}, false
	}
	s := ControllerSummary{Config: config, Stats: c.Stat}
	var buf bytes.Buffer
	if err := k.WriteController(&buf); err == nil {
		s.jsonl = buf.String()
	}
	return s, true
}

// controllerHeader introduces one configuration's block in the
// -controller artifact.
type controllerHeader struct {
	Type       string `json:"type"`
	Experiment string `json:"experiment"`
	Config     string `json:"config"`
}

// ControllerJSONL writes the per-experiment controller artifact: for
// every configuration that ran with the closed loop on, one
// "experiment" header line followed by that run's full decision-log
// export (the same lines pisosim -controller writes). Deterministic at
// any -parallel level and on either event-queue implementation.
func ControllerJSONL(results []Result, w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range results {
		for _, cs := range r.Output.Controller {
			if err := enc.Encode(controllerHeader{
				Type: "experiment", Experiment: r.Spec.ID, Config: cs.Config,
			}); err != nil {
				return err
			}
			if _, err := io.WriteString(w, cs.jsonl); err != nil {
				return err
			}
		}
	}
	return nil
}

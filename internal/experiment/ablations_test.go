package experiment

import (
	"testing"
)

// §3.3: a tiny threshold behaves like round-robin (good isolation for
// the small copy); a huge one behaves like position-only scheduling
// (small copy locked out).
func TestAblationBWThresholdTradeoff(t *testing.T) {
	r := RunAblationBWThreshold([]float64{1, 256, 1 << 30})
	smallTiny, _ := r.Small.YAt(1)
	smallHuge, _ := r.Small.YAt(1 << 30)
	if smallTiny >= smallHuge {
		t.Errorf("small copy: tiny threshold %.2fs should beat huge %.2fs", smallTiny, smallHuge)
	}
	// A huge threshold should approach position-only behaviour: big copy
	// fastest there.
	bigTiny, _ := r.Big.YAt(1)
	bigHuge, _ := r.Big.YAt(1 << 30)
	if bigHuge > bigTiny {
		t.Errorf("big copy: huge threshold %.2fs should not be slower than tiny %.2fs", bigHuge, bigTiny)
	}
	if r.Table().NumRows() != 3 {
		t.Fatal("table rows")
	}
}

// §3.2: shrinking the reserve lends more (borrower gets faster or at
// least no slower); the sweep must produce sane values everywhere.
func TestAblationReserveSweep(t *testing.T) {
	r := RunAblationReserve([]float64{0.02, 0.08, 0.25})
	if len(r.SPU1.Points) != 3 || len(r.SPU2.Points) != 3 {
		t.Fatal("missing points")
	}
	for _, p := range append(r.SPU1.Points, r.SPU2.Points...) {
		if p.Y <= 0 {
			t.Fatalf("non-positive response at reserve %.2f", p.X)
		}
	}
	// With a 25% reserve much less memory is lendable than with 2%:
	// the borrower must not be faster under the big reserve.
	lo, _ := r.SPU2.YAt(0.02)
	hi, _ := r.SPU2.YAt(0.25)
	if hi < lo*0.98 {
		t.Errorf("borrower faster with big reserve (%.2fs) than small (%.2fs)", hi, lo)
	}
	if r.Table().NumRows() != 3 {
		t.Fatal("table rows")
	}
}

// §3.4: the readers-writer inode lock beats the mutex under concurrent
// lookups, in both contention and makespan.
func TestAblationInodeLock(t *testing.T) {
	r := RunAblationInodeLock()
	if r.RWResp >= r.MutexResp {
		t.Errorf("rw lock makespan %v not better than mutex %v", r.RWResp, r.MutexResp)
	}
	if r.RWWait >= r.MutexWait {
		t.Errorf("rw lock wait %v not below mutex %v", r.RWWait, r.MutexWait)
	}
	if r.Table().NumRows() != 2 {
		t.Fatal("table rows")
	}
}

// §3.1: IPI revocation returns loaned CPUs immediately, so the lender
// (Ocean) is at least as fast as with tick revocation, and the
// borrowers pay at most a small cost.
func TestAblationRevocation(t *testing.T) {
	r := RunAblationRevocation()
	if r.IPIOcean > r.TickOcean {
		t.Errorf("IPI Ocean %v slower than tick %v", r.IPIOcean, r.TickOcean)
	}
	if float64(r.IPIEda) > 1.15*float64(r.TickEda) {
		t.Errorf("IPI cost to borrowers too high: %v vs %v", r.IPIEda, r.TickEda)
	}
	if r.Table().NumRows() != 2 {
		t.Fatal("table rows")
	}
}

// §5 extension: the fairness policy rescues the light sender on a
// flooded link at a bounded cost to the flooder.
func TestAblationNetwork(t *testing.T) {
	r := RunAblationNetwork()
	if r.FairLight >= r.FCFSLight {
		t.Errorf("Fair light %v not better than FCFS %v", r.FairLight, r.FCFSLight)
	}
	if float64(r.FairLight) > 0.25*float64(r.FCFSLight) {
		t.Errorf("Fair light %v should be far below FCFS %v", r.FairLight, r.FCFSLight)
	}
	if float64(r.FairHeavy) > 1.2*float64(r.FCFSHeavy) {
		t.Errorf("flooder cost too high: %v vs %v", r.FairHeavy, r.FCFSHeavy)
	}
	if r.Table().NumRows() != 2 {
		t.Fatal("table rows")
	}
}

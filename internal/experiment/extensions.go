package experiment

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/kernel"
	"perfiso/internal/machine"
	"perfiso/internal/sim"
	"perfiso/internal/stats"
	"perfiso/internal/workload"
)

// GangResult compares plain and gang-scheduled Ocean under SMP-style
// interference — the accommodation §3.1 says the base hybrid policy
// would need ("Accommodating gang-scheduled [Ous82] parallel
// applications would require some modifications").
type GangResult struct {
	Meter
	PlainOcean sim.Time // individually scheduled, with interference
	GangOcean  sim.Time // gang scheduled, same interference
	AloneOcean sim.Time // no interference (lower bound)
}

// RunAblationGang runs Ocean against six compute hogs in the same SPU
// under the SMP scheme (a single global runqueue, the worst case for a
// barrier-synchronized gang), with and without gang scheduling.
func RunAblationGang() GangResult {
	var res GangResult
	run := func(gang, interference bool) sim.Time {
		k := kernel.New(machine.CPUIsolation(), core.SMP, kernel.Options{Profiled: true})
		s := k.NewSPU("all", 1)
		k.Boot()
		p := workload.DefaultOcean()
		p.GangScheduled = gang
		oc := workload.Ocean(k, s.ID(), "ocean", p)
		k.Spawn(oc)
		if interference {
			for i := 0; i < 6; i++ {
				k.Spawn(workload.ComputeBound(k, s.ID(), fmt.Sprintf("hog%d", i),
					workload.ComputeParams{Total: 6 * sim.Second, Chunk: 100 * sim.Millisecond, WSSPages: 50}))
			}
		}
		k.Run()
		res.observe(k, fmt.Sprintf("gang=%t/interference=%t", gang, interference))
		return oc.ResponseTime()
	}
	res.PlainOcean = run(false, true)
	res.GangOcean = run(true, true)
	res.AloneOcean = run(false, false)
	return res
}

// Table renders the gang-scheduling comparison.
func (r GangResult) Table() *stats.Table {
	t := stats.NewTable(
		"Ablation: gang scheduling (§3.1 accommodation, Ocean + 6 hogs, SMP)",
		"Configuration", "Ocean resp (s)")
	t.Addf("individually scheduled", r.PlainOcean.Seconds())
	t.Addf("gang scheduled", r.GangOcean.Seconds())
	t.Addf("no interference (bound)", r.AloneOcean.Seconds())
	return t
}

// ServerLatencyResult captures response-time isolation for an
// interactive service against a batch SPU, across schemes and
// revocation mechanisms — the concern behind §3.1's IPI suggestion.
type ServerLatencyResult struct {
	Meter
	Rows []ServerLatencyRow
}

// ServerLatencyRow is one configuration's latency profile. Completed
// and Censored make the sample's coverage explicit: a config that
// strands requests in flight past the run's end cannot hide them.
type ServerLatencyRow struct {
	Config    string
	Mean      sim.Time
	Max       sim.Time
	Completed int
	Censored  int
}

// RunServerLatency measures the service's request latencies under SMP,
// Quo, PIso with tick revocation, and PIso with IPI revocation.
func RunServerLatency() ServerLatencyResult {
	var res ServerLatencyResult
	run := func(scheme core.Scheme, ipi bool) ServerLatencyRow {
		k := kernel.New(machine.CPUIsolation(), scheme, kernel.Options{IPIRevoke: ipi, Profiled: true})
		svc := k.NewSPU("service", 1)
		batch := k.NewSPU("batch", 1)
		k.Boot()
		job := workload.Server(k, svc.ID(), "svc", workload.DefaultServer())
		k.Spawn(job.Root)
		for i := 0; i < 16; i++ {
			k.Spawn(workload.ComputeBound(k, batch.ID(), fmt.Sprintf("b%d", i),
				workload.ComputeParams{Total: 20 * sim.Second, Chunk: 100 * sim.Millisecond, WSSPages: 50}))
		}
		end := k.Run()
		res.observe(k, fmt.Sprintf("%s/ipi=%t", scheme, ipi))
		lat := job.Latencies(end)
		return ServerLatencyRow{
			Mean: sim.FromSeconds(lat.Mean()), Max: job.MaxLatency(end),
			Completed: job.Completed(), Censored: job.InFlight(),
		}
	}
	configs := []struct {
		name   string
		scheme core.Scheme
		ipi    bool
	}{
		{"SMP", core.SMP, false},
		{"Quo", core.Quo, false},
		{"PIso-tick", core.PIso, false},
		{"PIso-IPI", core.PIso, true},
	}
	for _, c := range configs {
		row := run(c.scheme, c.ipi)
		row.Config = c.name
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Row returns the row for a config name, or nil.
func (r ServerLatencyResult) Row(name string) *ServerLatencyRow {
	for i := range r.Rows {
		if r.Rows[i].Config == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// Table renders the latency comparison.
func (r ServerLatencyResult) Table() *stats.Table {
	t := stats.NewTable(
		"Extension: interactive response-time isolation (2 ms requests vs 16 batch hogs)",
		"Config", "Mean latency (ms)", "Max latency (ms)", "Completed", "Censored")
	for _, row := range r.Rows {
		t.Addf(row.Config, row.Mean.Milliseconds(), row.Max.Milliseconds(),
			row.Completed, row.Censored)
	}
	return t
}

// AffinityResult captures §3.1's cache-pollution discussion: lending
// CPUs pollutes the lender's caches, and a rate-limited sharing policy
// ("preventing frequent reallocation of CPUs") recovers most of the
// loss at a modest cost to the borrowers.
type AffinityResult struct {
	Meter
	Rows []AffinityRow
}

// AffinityRow is one configuration of the cache model and loan limiter.
type AffinityRow struct {
	Config      string
	Ocean       sim.Time
	Eda         sim.Time // mean Flashlite+VCS response
	Loans       int64
	Revocations int64
}

// RunAblationAffinity runs the Fig 5 workload under PIso with the cache
// model off, on, and on with the loan rate limiter.
func RunAblationAffinity() AffinityResult {
	var res AffinityResult
	run := func(name string, reload, minLoan sim.Time) AffinityRow {
		k := kernel.New(machine.CPUIsolation(), core.PIso, kernel.Options{
			CacheReload: reload, MinLoanInterval: minLoan, Profiled: true,
		})
		spu1 := k.NewSPU("ocean", 1)
		spu2 := k.NewSPU("eda", 1)
		k.Boot()
		oc := workload.Ocean(k, spu1.ID(), "ocean", workload.DefaultOcean())
		k.Spawn(oc)
		var jobs []interface{ ResponseTime() sim.Time }
		for i := 0; i < 3; i++ {
			f := workload.ComputeBound(k, spu2.ID(), fmt.Sprintf("fl%d", i), workload.DefaultFlashlite())
			v := workload.ComputeBound(k, spu2.ID(), fmt.Sprintf("vcs%d", i), workload.DefaultVCS())
			k.Spawn(f)
			k.Spawn(v)
			jobs = append(jobs, f, v)
		}
		k.Run()
		res.observe(k, name)
		var sum sim.Time
		for _, j := range jobs {
			sum += j.ResponseTime()
		}
		return AffinityRow{
			Config:      name,
			Ocean:       oc.ResponseTime(),
			Eda:         sum / sim.Time(len(jobs)),
			Loans:       k.Scheduler().Stat.Loans,
			Revocations: k.Scheduler().Stat.Revocations,
		}
	}
	res.Rows = []AffinityRow{
		run("no cache model", 0, 0),
		run("cache reload 1ms", sim.Millisecond, 0),
		run("reload + loan limiter", sim.Millisecond, 300*sim.Millisecond),
	}
	return res
}

// Row returns the row for a config name, or nil.
func (r AffinityResult) Row(name string) *AffinityRow {
	for i := range r.Rows {
		if r.Rows[i].Config == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// Table renders the cache-affinity comparison.
func (r AffinityResult) Table() *stats.Table {
	t := stats.NewTable(
		"Ablation: cache pollution and loan rate limiting (§3.1, CPU workload, PIso)",
		"Config", "Ocean resp (s)", "Eda mean resp (s)", "Loans", "Revocations")
	for _, row := range r.Rows {
		t.Addf(row.Config, row.Ocean.Seconds(), row.Eda.Seconds(), row.Loans, row.Revocations)
	}
	return t
}

// PageInsertResult is the §3.4 page-insert-lock granularity comparison.
type PageInsertResult struct {
	Meter
	CoarseResp  sim.Time // makespan with 1 stripe
	StripedResp sim.Time // makespan with the fixed kernel's striping
	CoarseWait  sim.Time // total lock queueing, coarse
	StripedWait sim.Time
}

// RunAblationPageInsert runs a cache-insert-heavy workload (many
// concurrent cold reads) under both lock granularities, with the hold
// time raised so the serialization is visible at this machine scale.
func RunAblationPageInsert() PageInsertResult {
	var res PageInsertResult
	run := func(stripes int) (sim.Time, sim.Time) {
		k := kernel.New(machine.Pmake8(), core.PIso, kernel.Options{PageInsertStripes: stripes, Profiled: true})
		var spus []core.SPUID
		for i := 0; i < 8; i++ {
			s := k.NewSPU(fmt.Sprintf("spu%d", i+1), 1)
			k.SetAffinity(s.ID(), i)
			spus = append(spus, s.ID())
		}
		k.Boot()
		k.FS().PageInsertHold = 500 * sim.Microsecond
		params := workload.DefaultPmake()
		for i, id := range spus {
			k.Spawn(workload.Pmake(k, id, fmt.Sprintf("pmake%d", i), params))
		}
		end := k.Run()
		res.observe(k, fmt.Sprintf("stripes=%d", stripes))
		_, wait := k.FS().PageInsertContention()
		return end, wait
	}
	res.CoarseResp, res.CoarseWait = run(1)
	res.StripedResp, res.StripedWait = run(0) // default striping
	return res
}

// Table renders the page-insert-lock comparison.
func (r PageInsertResult) Table() *stats.Table {
	t := stats.NewTable(
		"Ablation: page-insert-lock granularity (§3.4, Pmake8 balanced)",
		"Lock", "Makespan (s)", "Total lock wait (ms)")
	t.Addf("coarse (1 stripe)", r.CoarseResp.Seconds(), r.CoarseWait.Milliseconds())
	t.Addf("striped (fixed kernel)", r.StripedResp.Seconds(), r.StripedWait.Milliseconds())
	return t
}

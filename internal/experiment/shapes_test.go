package experiment

import (
	"testing"

	"perfiso/internal/core"
)

// These tests assert the paper's qualitative claims — the shapes of
// Figures 2, 3, 5 and 7 and Tables 3 and 4 — on the reproduced system.
// Absolute numbers differ from the SimOS runs; who wins, by roughly what
// factor, and where the crossovers fall must not.

var pmake8Cache *Pmake8Result

func pmake8(t *testing.T) Pmake8Result {
	t.Helper()
	if pmake8Cache == nil {
		r := RunPmake8(Pmake8Options{})
		pmake8Cache = &r
	}
	return *pmake8Cache
}

// Figure 2: "Performance Isolation (PIso) is able to keep the
// performance of jobs in the lightly-loaded SPUs the same in the
// balanced and unbalanced configurations" while SMP degrades them by
// tens of percent (56% in the paper).
func TestFig2IsolationShape(t *testing.T) {
	r := pmake8(t)
	rows := r.Fig2Rows()
	get := func(s core.Scheme) (b, u float64) {
		for _, row := range rows {
			if row.Scheme == s {
				return row.Balanced, row.Unbalanced
			}
		}
		t.Fatalf("scheme %v missing", s)
		return 0, 0
	}
	smpB, smpU := get(core.SMP)
	if smpU < smpB*1.25 {
		t.Errorf("SMP light SPUs degraded only %0.f%% -> %0.f%%; isolation should be broken", smpB, smpU)
	}
	for _, s := range []core.Scheme{core.Quo, core.PIso} {
		b, u := get(s)
		if u > b*1.10 {
			t.Errorf("%v light SPUs degraded %0.f%% -> %0.f%%; isolation broken", s, b, u)
		}
	}
	// PIso's light-load latency matches SMP's (within 10%): "SMP-like
	// latency under light load".
	pisoB, _ := get(core.PIso)
	if pisoB > smpB*1.10 || pisoB < smpB*0.90 {
		t.Errorf("PIso balanced %0.f%% far from SMP balanced %0.f%%", pisoB, smpB)
	}
}

// Figure 3: sharing — Quo is much worse than SMP for the heavy SPUs
// (187 vs 156 in the paper); PIso lands at or below SMP.
func TestFig3SharingShape(t *testing.T) {
	r := pmake8(t)
	rows := r.Fig3Rows()
	vals := map[core.Scheme]float64{}
	for _, row := range rows {
		vals[row.Scheme] = row.Heavy
	}
	if vals[core.Quo] <= vals[core.SMP]*1.15 {
		t.Errorf("Quo heavy %0.f%% not clearly worse than SMP %0.f%%", vals[core.Quo], vals[core.SMP])
	}
	if vals[core.PIso] > vals[core.SMP]*1.10 {
		t.Errorf("PIso heavy %0.f%% worse than SMP %0.f%%; sharing broken", vals[core.PIso], vals[core.SMP])
	}
	if vals[core.PIso] >= vals[core.Quo] {
		t.Errorf("PIso %0.f%% not better than Quo %0.f%%", vals[core.PIso], vals[core.Quo])
	}
}

// Figure 5: Ocean (light SPU) improves under isolation, with Quo the
// ideal and PIso close behind; Flashlite and VCS (heavy SPU) do much
// better under PIso than Quo and land near SMP.
func TestFig5CPUIsolationShape(t *testing.T) {
	r := RunCPUIso(CPUIsoOptions{})
	for _, row := range r.Rows() {
		switch row.App {
		case "Ocean":
			if row.Quo >= row.SMP || row.PIso >= row.SMP {
				t.Errorf("Ocean: Quo %.0f / PIso %.0f should beat SMP 100", row.Quo, row.PIso)
			}
			if row.Quo > row.PIso {
				t.Errorf("Ocean: Quo %.0f should be at least as good as PIso %.0f", row.Quo, row.PIso)
			}
			// "Fixed quotas, the ideal case for isolation, does a little
			// better than PIso" — a little, not a lot.
			if row.PIso > row.Quo*1.25 {
				t.Errorf("Ocean: PIso %.0f too far behind Quo %.0f", row.PIso, row.Quo)
			}
		case "Flashlite", "VCS":
			if row.Quo <= row.SMP {
				t.Errorf("%s: Quo %.0f should be worse than SMP 100", row.App, row.Quo)
			}
			if row.PIso >= row.Quo {
				t.Errorf("%s: PIso %.0f should beat Quo %.0f", row.App, row.PIso, row.Quo)
			}
			if row.PIso > 115 {
				t.Errorf("%s: PIso %.0f should be comparable to SMP", row.App, row.PIso)
			}
		}
	}
}

// Figure 7: memory isolation — SPU1 is isolated by Quo and PIso but not
// SMP; SPU2 (two jobs) suffers badly under Quo and lands near SMP under
// PIso.
func TestFig7MemoryIsolationShape(t *testing.T) {
	r := RunMemIso(MemIsoOptions{})
	iso := map[core.Scheme]struct{ b, u float64 }{}
	for _, row := range r.IsolationRows() {
		iso[row.Scheme] = struct{ b, u float64 }{row.Balanced, row.Unbalanced}
	}
	if iso[core.SMP].u < iso[core.SMP].b*1.12 {
		t.Errorf("SMP SPU1 %.0f -> %.0f: background load should hurt it", iso[core.SMP].b, iso[core.SMP].u)
	}
	for _, s := range []core.Scheme{core.Quo, core.PIso} {
		if iso[s].u > iso[s].b*1.15 {
			t.Errorf("%v SPU1 %.0f -> %.0f: isolation broken", s, iso[s].b, iso[s].u)
		}
	}
	sh := map[core.Scheme]struct{ b, u float64 }{}
	for _, row := range r.SharingRows() {
		sh[row.Scheme] = struct{ b, u float64 }{row.Balanced, row.Unbalanced}
	}
	// Quo's loss is large: beyond the pure 2x CPU effect.
	if sh[core.Quo].u < sh[core.Quo].b*1.9 {
		t.Errorf("Quo SPU2 %.0f -> %.0f: should at least double (CPU) plus memory penalty",
			sh[core.Quo].b, sh[core.Quo].u)
	}
	if sh[core.Quo].u <= sh[core.SMP].u*1.15 {
		t.Errorf("Quo SPU2 %.0f not clearly worse than SMP %.0f", sh[core.Quo].u, sh[core.SMP].u)
	}
	// PIso delivers "significantly better performance, close to the SMP
	// case".
	if sh[core.PIso].u > sh[core.SMP].u*1.2 {
		t.Errorf("PIso SPU2 %.0f too far above SMP %.0f", sh[core.PIso].u, sh[core.SMP].u)
	}
	if sh[core.PIso].u >= sh[core.Quo].u {
		t.Errorf("PIso SPU2 %.0f not better than Quo %.0f", sh[core.PIso].u, sh[core.Quo].u)
	}
}

// Table 3: PIso significantly reduces the pmake's response time and
// per-request wait versus Pos, at a modest cost to the copy; blind Iso
// performs like PIso here because the pmake's requests are irregular.
func TestTable3Shape(t *testing.T) {
	r := RunTable3(DiskOptions{})
	pos, iso, piso := r.Row("Pos"), r.Row("Iso"), r.Row("PIso")
	if pos == nil || iso == nil || piso == nil {
		t.Fatal("missing rows")
	}
	// "significantly reduces the response time for the pmake job (39%)".
	if float64(piso.RespA) > 0.75*float64(pos.RespA) {
		t.Errorf("PIso pmake %.1fs vs Pos %.1fs: no significant improvement",
			piso.RespA.Seconds(), pos.RespA.Seconds())
	}
	// "the average time a request spends waiting ... decreases by 76%".
	if float64(piso.WaitA) > 0.5*float64(pos.WaitA) {
		t.Errorf("PIso pmake wait %.0fms vs Pos %.0fms: lockout not relieved",
			piso.WaitA.Milliseconds(), pos.WaitA.Milliseconds())
	}
	// "The copy job, as expected, does see a reduction in performance"
	// — but bounded (23% in the paper).
	if piso.RespB < pos.RespB {
		t.Errorf("copy got faster under PIso?")
	}
	if float64(piso.RespB) > 1.6*float64(pos.RespB) {
		t.Errorf("copy degraded %.0f%% under PIso; paper saw ~23%%",
			100*(float64(piso.RespB)/float64(pos.RespB)-1))
	}
	// "does not significantly change the average seek latency".
	if float64(piso.AvgLatency) > 1.35*float64(pos.AvgLatency) {
		t.Errorf("PIso latency %.1fms vs Pos %.1fms", piso.AvgLatency.Milliseconds(), pos.AvgLatency.Milliseconds())
	}
	// "its performance is similar to the performance isolation policy"
	// (Iso vs PIso on this workload).
	if float64(iso.RespA) > 1.3*float64(piso.RespA) {
		t.Errorf("Iso pmake %.1fs far from PIso %.1fs on an irregular workload",
			iso.RespA.Seconds(), piso.RespA.Seconds())
	}
}

// Table 4: with two regular streams, PIso beats Iso for both jobs
// because it also considers head position; Iso pays extra positioning
// latency; under Pos the small copy is locked out by the big one.
func TestTable4Shape(t *testing.T) {
	r := RunTable4(DiskOptions{})
	pos, iso, piso := r.Row("Pos"), r.Row("Iso"), r.Row("PIso")
	if pos == nil || iso == nil || piso == nil {
		t.Fatal("missing rows")
	}
	// Pos: the big copy locks out the small one (0.93 vs 0.81 s in the
	// paper — the small job finishes after the big one despite being
	// a tenth the size).
	if pos.RespA < pos.RespB {
		t.Errorf("Pos: small copy %.2fs finished before big %.2fs; no lockout",
			pos.RespA.Seconds(), pos.RespB.Seconds())
	}
	// Fairness: both Iso and PIso let the small copy finish first.
	for _, row := range []*DiskRow{iso, piso} {
		if row.RespA >= row.RespB {
			t.Errorf("%s: small %.2fs did not finish before big %.2fs",
				row.Policy, row.RespA.Seconds(), row.RespB.Seconds())
		}
	}
	// "the PIso policy provides better response times for both
	// processes as compared to the Iso policy".
	if piso.RespA >= iso.RespA {
		t.Errorf("PIso small %.2fs not better than Iso %.2fs", piso.RespA.Seconds(), iso.RespA.Seconds())
	}
	if piso.RespB >= iso.RespB {
		t.Errorf("PIso big %.2fs not better than Iso %.2fs", piso.RespB.Seconds(), iso.RespB.Seconds())
	}
	// "The Iso policy pays almost a 30% increase in average seek
	// latency" while PIso stays near Pos.
	if float64(iso.AvgLatency) < 1.2*float64(piso.AvgLatency) {
		t.Errorf("Iso latency %.2fms not clearly above PIso %.2fms",
			iso.AvgLatency.Milliseconds(), piso.AvgLatency.Milliseconds())
	}
	// Wait times drop from Iso to PIso for both jobs (54% and 30% in
	// the paper).
	if piso.WaitA >= iso.WaitA || piso.WaitB >= iso.WaitB {
		t.Errorf("PIso waits (%.0f, %.0f ms) not below Iso (%.0f, %.0f ms)",
			piso.WaitA.Milliseconds(), piso.WaitB.Milliseconds(),
			iso.WaitA.Milliseconds(), iso.WaitB.Milliseconds())
	}
}

// Tables render without panicking and contain all rows.
func TestTableRendering(t *testing.T) {
	r := pmake8(t)
	if r.Fig2Table().NumRows() != 3 || r.Fig3Table().NumRows() != 3 {
		t.Fatal("figure tables incomplete")
	}
	d := RunTable4(DiskOptions{})
	if d.Table().NumRows() != 3 {
		t.Fatal("disk table incomplete")
	}
	if d.Row("nope") != nil {
		t.Fatal("unknown policy should return nil row")
	}
}

package proc

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/disk"
	"perfiso/internal/fs"
	"perfiso/internal/mem"
	"perfiso/internal/profile"
	"perfiso/internal/sched"
	"perfiso/internal/sim"
)

// testEnv is a minimal kernel for driving processes in tests.
type testEnv struct {
	eng     *sim.Engine
	spus    *core.Manager
	sch     *sched.Scheduler
	mm      *mem.Manager
	filesys *fs.FileSystem
	d       *disk.Disk
	al      *fs.Allocator
	prof    *profile.Profiler
}

func (e *testEnv) Engine() *sim.Engine         { return e.eng }
func (e *testEnv) Scheduler() *sched.Scheduler { return e.sch }
func (e *testEnv) Memory() *mem.Manager        { return e.mm }
func (e *testEnv) FS() *fs.FileSystem          { return e.filesys }
func (e *testEnv) Profile() *profile.Profiler  { return e.prof }
func (e *testEnv) SwapIn(spu core.SPUID, pages int, done func()) {
	// One clustered read from the tail of the disk per 4 pages.
	reqs := (pages + 3) / 4
	left := reqs
	base := e.d.Params().TotalSectors() - 100000
	for i := 0; i < reqs; i++ {
		e.d.Submit(&disk.Request{
			Kind: disk.Read, Sector: base + int64(i*32), Count: 32, SPU: spu,
			Done: func(*disk.Request) {
				left--
				if left == 0 {
					done()
				}
			},
		})
	}
}

// newEnv builds a 2-CPU machine with nSPU user SPUs and pages of memory.
func newEnv(nSPU int, policy core.Policy, cpus, pages int) (*testEnv, []*core.SPU) {
	eng := sim.NewEngine()
	spus := core.NewManager()
	var us []*core.SPU
	for i := 0; i < nSPU; i++ {
		us = append(us, spus.NewSPU("u", 1, policy))
	}
	sch := sched.New(eng, spus, cpus, sched.Options{})
	sch.AssignHomes()
	mm := mem.NewManager(eng, spus, pages, 0)
	mm.DivideAmongSPUs()
	filesys := fs.New(eng, mm, fs.SemRW)
	d := disk.New(eng, disk.HP97560(), disk.NewPIso(0), 0)
	env := &testEnv{eng: eng, spus: spus, sch: sch, mm: mm, filesys: filesys, d: d,
		al: fs.NewAllocator(d, sim.NewRNG(7))}
	mm.SetPageout(func(p *mem.Page, done func(ok bool)) {
		if !filesys.WritebackEvicted(p, func() { done(true) }) {
			// Anonymous page: write to swap.
			d.Submit(&disk.Request{Kind: disk.Write,
				Sector: d.Params().TotalSectors() - 200000, Count: mem.SectorsPerPage,
				SPU: core.SharedID, Done: func(*disk.Request) { done(true) }})
		}
	})
	return env, us
}

// run pumps scheduler ticks and the engine until the horizon.
func run(env *testEnv, horizon sim.Time) {
	n := int(horizon / sched.TickPeriod)
	for i := 1; i <= n; i++ {
		env.eng.At(sim.Time(i)*sched.TickPeriod, "tick", env.sch.Tick)
	}
	env.eng.RunUntil(horizon)
}

func TestComputeOnlyProcess(t *testing.T) {
	env, us := newEnv(1, core.ShareIdle, 2, 1000)
	p := New(env, us[0].ID(), "job", []Step{Compute{D: 100 * sim.Millisecond}})
	p.Start()
	run(env, sim.Second)
	if p.State() != Exited {
		t.Fatal("process never exited")
	}
	if p.ResponseTime() != 100*sim.Millisecond {
		t.Fatalf("response = %v", p.ResponseTime())
	}
}

func TestResponseTimeBeforeExitPanics(t *testing.T) {
	env, us := newEnv(1, core.ShareIdle, 2, 1000)
	p := New(env, us[0].ID(), "job", []Step{Compute{D: sim.Second}})
	p.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.ResponseTime()
}

func TestProcessBlocksDuringIO(t *testing.T) {
	env, us := newEnv(1, core.ShareIdle, 1, 1000)
	f := env.al.NewFile("f", 64*1024, fs.Contiguous, 0)
	p := New(env, us[0].ID(), "reader", []Step{
		Read{File: f, Off: 0, N: 64 * 1024},
		Compute{D: 10 * sim.Millisecond},
	})
	p.Start()
	run(env, sim.Second)
	if p.State() != Exited {
		t.Fatal("never exited")
	}
	// Response must exceed pure compute: the read cost disk time.
	if p.ResponseTime() <= 10*sim.Millisecond {
		t.Fatalf("response %v too small; disk IO not accounted", p.ResponseTime())
	}
}

func TestForkAndWaitChildren(t *testing.T) {
	env, us := newEnv(1, core.ShareIdle, 4, 1000)
	var childDone, parentDone sim.Time
	c1 := New(env, us[0].ID(), "c1", []Step{Compute{D: 50 * sim.Millisecond}})
	c1.OnExit = func(*Process) { childDone = env.eng.Now() }
	c2 := New(env, us[0].ID(), "c2", []Step{Compute{D: 80 * sim.Millisecond}})
	parent := New(env, us[0].ID(), "parent", []Step{
		Fork{Child: c1},
		Fork{Child: c2},
		WaitChildren{},
	})
	parent.OnExit = func(*Process) { parentDone = env.eng.Now() }
	parent.Start()
	run(env, sim.Second)
	if parentDone == 0 || childDone == 0 {
		t.Fatal("processes did not finish")
	}
	if parentDone < 80*sim.Millisecond {
		t.Fatalf("parent exited at %v, before its slower child", parentDone)
	}
}

func TestWaitWithNoChildrenPassesThrough(t *testing.T) {
	env, us := newEnv(1, core.ShareIdle, 1, 1000)
	p := New(env, us[0].ID(), "p", []Step{WaitChildren{}})
	p.Start()
	run(env, 100*sim.Millisecond)
	if p.State() != Exited {
		t.Fatal("WaitChildren with no children should not block")
	}
}

func TestTouchGrowsWorkingSet(t *testing.T) {
	env, us := newEnv(1, core.ShareIdle, 1, 1000)
	p := New(env, us[0].ID(), "t", []Step{
		Touch{Pages: 50},
		Compute{D: sim.Millisecond},
	})
	p.Start()
	run(env, sim.Second)
	if p.Faults != 50 {
		t.Fatalf("faults = %d, want 50 first-touch faults", p.Faults)
	}
	if p.State() != Exited {
		t.Fatal("never exited")
	}
}

func TestExitFreesMemory(t *testing.T) {
	env, us := newEnv(1, core.ShareIdle, 1, 1000)
	p := New(env, us[0].ID(), "t", []Step{Touch{Pages: 40}})
	p.Start()
	run(env, sim.Second)
	if got := us[0].Used(core.Memory); got != 0 {
		t.Fatalf("SPU still charged %g pages after exit", got)
	}
	if env.mm.UsedPages() != 0 {
		t.Fatalf("%d pages leaked", env.mm.UsedPages())
	}
}

func TestThrashingUnderTightMemoryLimit(t *testing.T) {
	// Working set 80 pages, quota 40: every compute step refaults.
	env, us := newEnv(2, core.ShareNone, 2, 80) // 40 pages per SPU
	p := New(env, us[0].ID(), "thrash", Seq(
		[]Step{Touch{Pages: 60}},
		Loop(5, Compute{D: sim.Millisecond}),
	))
	p.Start()
	run(env, 10*sim.Second)
	if p.State() != Exited {
		t.Fatalf("never exited (faults=%d, resident=%d)", p.Faults, p.Resident())
	}
	if p.SwapIns == 0 {
		t.Fatal("no swap-ins despite working set exceeding the quota")
	}
	if p.Faults <= 60 {
		t.Fatalf("faults = %d, want refaulting beyond the first 60", p.Faults)
	}
}

func TestAmpleMemoryNoThrash(t *testing.T) {
	env, us := newEnv(1, core.ShareIdle, 1, 1000)
	p := New(env, us[0].ID(), "fits", Seq(
		[]Step{Touch{Pages: 60}},
		Loop(5, Compute{D: sim.Millisecond}),
	))
	p.Start()
	run(env, sim.Second)
	if p.Faults != 60 || p.SwapIns != 0 {
		t.Fatalf("faults=%d swapins=%d; ample memory should not refault", p.Faults, p.SwapIns)
	}
}

func TestBarrierGang(t *testing.T) {
	env, us := newEnv(1, core.ShareIdle, 2, 1000)
	b := NewBarrier(2)
	var d1, d2 sim.Time
	// p1 computes 10ms per phase, p2 30ms: the barrier couples them to
	// p2's pace.
	p1 := New(env, us[0].ID(), "p1", Seq(
		Loop(3, Compute{D: 10 * sim.Millisecond}, BarrierStep{B: b}),
	))
	p1.OnExit = func(*Process) { d1 = env.eng.Now() }
	p2 := New(env, us[0].ID(), "p2", Seq(
		Loop(3, Compute{D: 30 * sim.Millisecond}, BarrierStep{B: b}),
	))
	p2.OnExit = func(*Process) { d2 = env.eng.Now() }
	p1.Start()
	p2.Start()
	run(env, sim.Second)
	if d1 != d2 {
		t.Fatalf("gang members finished apart: %v vs %v", d1, d2)
	}
	if d1 != 90*sim.Millisecond {
		t.Fatalf("gang finished at %v, want 90ms (3 phases x 30ms)", d1)
	}
}

func TestBarrierReset(t *testing.T) {
	b := NewBarrier(2)
	calls := 0
	b.Arrive(func() { calls++ })
	if b.Waiting() != 1 {
		t.Fatalf("Waiting = %d", b.Waiting())
	}
	b.Arrive(func() { calls++ })
	if calls != 2 || b.Waiting() != 0 {
		t.Fatalf("calls=%d waiting=%d", calls, b.Waiting())
	}
	// Reusable: a second round works the same.
	b.Arrive(func() { calls++ })
	b.Arrive(func() { calls++ })
	if calls != 4 {
		t.Fatalf("calls=%d after second round", calls)
	}
}

func TestSleepStep(t *testing.T) {
	env, us := newEnv(1, core.ShareIdle, 1, 100)
	p := New(env, us[0].ID(), "s", []Step{Sleep{D: 70 * sim.Millisecond}})
	p.Start()
	run(env, sim.Second)
	if p.ResponseTime() != 70*sim.Millisecond {
		t.Fatalf("response = %v", p.ResponseTime())
	}
}

func TestLoopAndSeqHelpers(t *testing.T) {
	steps := Loop(3, Compute{D: 1}, Lookup{})
	if len(steps) != 6 {
		t.Fatalf("Loop produced %d steps", len(steps))
	}
	all := Seq(steps, []Step{WaitChildren{}})
	if len(all) != 7 {
		t.Fatalf("Seq produced %d steps", len(all))
	}
}

func TestMetaAndLookupSteps(t *testing.T) {
	env, us := newEnv(1, core.ShareIdle, 1, 1000)
	f := env.al.NewFile("f", 4096, fs.Contiguous, 0)
	p := New(env, us[0].ID(), "m", []Step{Lookup{}, Meta{File: f}})
	p.Start()
	run(env, sim.Second)
	if p.State() != Exited {
		t.Fatal("never exited")
	}
	if env.filesys.Stat.MetaWrites != 1 || env.filesys.Stat.Lookups != 1 {
		t.Fatalf("meta=%d lookups=%d", env.filesys.Stat.MetaWrites, env.filesys.Stat.Lookups)
	}
}

func TestDoubleStartPanics(t *testing.T) {
	env, us := newEnv(1, core.ShareIdle, 1, 100)
	p := New(env, us[0].ID(), "p", []Step{Sleep{D: sim.Second}})
	p.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Start()
}

func TestComputeZeroDurationSkips(t *testing.T) {
	env, us := newEnv(1, core.ShareIdle, 1, 100)
	p := New(env, us[0].ID(), "z", []Step{Compute{D: 0}})
	p.Start()
	if p.State() != Exited {
		t.Fatal("zero compute should complete synchronously")
	}
}

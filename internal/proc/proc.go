// Package proc implements the process model: a process is an
// event-driven state machine owned by the simulated kernel, executing a
// program of steps — CPU bursts, file reads/writes, metadata updates,
// pathname lookups, working-set growth, fork/wait, and barriers.
//
// A process's CPU demand flows through the scheduler (so it is subject to
// SPU space partitioning, lending and revocation), its working set
// through the memory manager (so it faults and thrashes when its SPU's
// share is too small), and its file operations through the file system
// and disks (so it queues behind other SPUs' disk traffic).
package proc

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/fs"
	"perfiso/internal/mem"
	"perfiso/internal/profile"
	"perfiso/internal/sched"
	"perfiso/internal/sim"
)

// Env is the slice of the kernel a process interacts with. The kernel
// package implements it; tests may substitute lighter rigs.
type Env interface {
	Engine() *sim.Engine
	Scheduler() *sched.Scheduler
	Memory() *mem.Manager
	FS() *fs.FileSystem
	// SwapIn reads pages back from swap space on behalf of spu, calling
	// done when they are in memory (the frames themselves must already
	// have been allocated by the caller).
	SwapIn(spu core.SPUID, pages int, done func())
	// Profile returns the kernel's simulated-time profiler, or nil when
	// profiling is off. Processes register themselves with it at Start —
	// through the Env so forked children are profiled too.
	Profile() *profile.Profiler
}

// State is a process's lifecycle state.
type State int

const (
	// Created means Start has not run yet.
	Created State = iota
	// Running means the process is executing its program (on CPU, in a
	// queue, or blocked on IO/memory/children/barriers).
	Running
	// Exited means the program completed and resources were released.
	Exited
)

// Process is one simulated process.
type Process struct {
	Name string
	SPU  core.SPUID

	env   Env
	steps []Step
	pc    int

	// Pre-allocated continuations: steps run once per iteration for the
	// process's whole life, so handing services a fresh method-value or
	// closure each time would put an allocation on the kernel's
	// steady-state dispatch path. nextFn is the universal "advance the
	// program" continuation; runBurst starts the CPU burst staged in
	// burst (Compute's resident-set callback).
	nextFn   func()
	runBurst func()
	burst    sim.Time

	thread *sched.Thread
	state  State
	prof   *profile.Task

	// Working set.
	resident  []*mem.Page
	swapped   int // pages evicted since last use; re-touch swaps them in
	wssTarget int

	// Process tree.
	parent       *Process
	liveChildren int
	waitingKids  bool

	// OnExit, if set, runs when the process finishes.
	OnExit func(*Process)

	// Statistics.
	Started  sim.Time
	Finished sim.Time
	Faults   int64 // page faults taken (first-touch and swap-in)
	SwapIns  int64 // faults that required reading from swap
}

// New creates a process ready to Start.
func New(env Env, spu core.SPUID, name string, steps []Step) *Process {
	p := &Process{Name: name, SPU: spu, env: env, steps: steps}
	p.thread = &sched.Thread{Name: name, SPU: spu}
	p.nextFn = p.advance
	p.runBurst = func() {
		p.thread.Remaining = p.burst
		p.thread.BurstDone = p.nextFn
		p.env.Scheduler().Wake(p.thread)
	}
	return p
}

// State returns the process state.
func (p *Process) State() State { return p.state }

// ResponseTime returns Finished-Started; it panics if the process has
// not exited (reading a response time early is a harness bug).
func (p *Process) ResponseTime() sim.Time {
	if p.state != Exited {
		panic(fmt.Sprintf("proc: response time of %q read before exit", p.Name))
	}
	return p.Finished - p.Started
}

// Resident returns the current resident set size in pages.
func (p *Process) Resident() int { return len(p.resident) }

// Thread exposes the process's scheduler thread (for stats).
func (p *Process) Thread() *sched.Thread { return p.thread }

// Start begins execution.
func (p *Process) Start() {
	if p.state != Created {
		panic("proc: Start on a non-fresh process " + p.Name)
	}
	p.state = Running
	p.Started = p.env.Engine().Now()
	p.prof = p.env.Profile().Begin(p.Name, p.SPU)
	p.thread.Prof = p.prof
	p.advance()
}

// PageEvicted implements mem.Owner: the pager took one of our pages.
func (p *Process) PageEvicted(pg *mem.Page) {
	for i, q := range p.resident {
		if q == pg {
			p.resident = append(p.resident[:i], p.resident[i+1:]...)
			p.swapped++
			return
		}
	}
}

// advance executes program steps until one blocks.
func (p *Process) advance() {
	if p.state != Running {
		return
	}
	if p.pc >= len(p.steps) {
		p.exit()
		return
	}
	step := p.steps[p.pc]
	p.pc++
	if p.prof != nil {
		p.prof.BeginStep(stepLabel(step))
	}
	step.run(p)
}

// next is the continuation most steps pass to asynchronous services.
func (p *Process) next() { p.advance() }

// exit releases resources and notifies the parent.
func (p *Process) exit() {
	p.state = Exited
	p.Finished = p.env.Engine().Now()
	p.prof.Finish()
	// Detach the resident set before freeing: each Free may wake memory
	// waiters whose allocations reclaim other pages of this very set.
	pages := p.resident
	p.resident = nil
	for _, pg := range pages {
		p.env.Memory().Release(pg)
	}
	p.env.Scheduler().Exit(p.thread)
	if p.parent != nil {
		p.parent.childExited()
	}
	if p.OnExit != nil {
		p.OnExit(p)
	}
}

func (p *Process) childExited() {
	p.liveChildren--
	if p.liveChildren < 0 {
		panic("proc: child count underflow in " + p.Name)
	}
	if p.waitingKids && p.liveChildren == 0 {
		p.waitingKids = false
		p.advance()
	}
}

// ensureResident faults the working set up to wssTarget pages, then
// calls done. Missing pages that were swapped out cost swap-in reads;
// brand-new pages are zero-filled (no disk). Allocation itself may block
// under the SPU's memory limit, which is where Quo's thrashing comes
// from.
func (p *Process) ensureResident(done func()) {
	missing := p.wssTarget - len(p.resident)
	if missing <= 0 {
		p.touchAll()
		done()
		return
	}
	if p.prof != nil {
		// The stall is charged to memory; blame whoever is squatting on
		// frames beyond their entitlement right now (a snapshot — the
		// picture when the wait began, which is when blame was incurred).
		p.prof.To(profile.StateMemWait, p.env.Memory().Culprit(p.SPU))
	}
	needSwap := missing
	if needSwap > p.swapped {
		needSwap = p.swapped
	}
	fresh := missing - needSwap
	got := 0
	var allocOne func()
	allocOne = func() {
		if got == missing {
			p.swapped -= needSwap
			p.SwapIns += int64(needSwap)
			p.touchAll()
			if needSwap > 0 {
				p.prof.To(profile.StateSwap, p.SPU)
				p.env.SwapIn(p.SPU, needSwap, done)
			} else {
				done()
			}
			return
		}
		p.env.Memory().Request(p.SPU, mem.Anon, p, func(pg *mem.Page) {
			// First-touch pages are dirty (the app wrote them); pages
			// re-read from swap arrive clean — their contents already
			// live on disk, so a later eviction is free. Without this a
			// thrashing SPU pays a write-back *and* a swap-in per fault
			// and degradation turns into collapse.
			p.env.Memory().SetDirty(pg, got < fresh)
			p.resident = append(p.resident, pg)
			p.Faults++
			got++
			allocOne()
		})
	}
	allocOne()
}

// touchAll refreshes the LRU clock on the resident set.
func (p *Process) touchAll() {
	mm := p.env.Memory()
	for _, pg := range p.resident {
		mm.Touch(pg, p.SPU)
	}
}

package proc

import (
	"perfiso/internal/fs"
	"perfiso/internal/profile"
	"perfiso/internal/sim"
)

// Step is one instruction of a process program.
type Step interface {
	run(p *Process)
}

// stepLabel names a step for its profiler span. Step implementations
// are closed (run is unexported), so the switch is exhaustive.
func stepLabel(s Step) string {
	switch s.(type) {
	case Compute:
		return "compute"
	case Read:
		return "read"
	case Write:
		return "write"
	case Meta:
		return "meta"
	case Lookup:
		return "lookup"
	case Touch:
		return "touch"
	case Fork:
		return "fork"
	case WaitChildren:
		return "wait"
	case Sleep:
		return "sleep"
	case BarrierStep:
		return "barrier"
	default:
		return "step"
	}
}

// Compute consumes D of CPU time through the scheduler, after making
// sure the working set is resident (faulting it in if the pager took
// pages away).
type Compute struct {
	D sim.Time
}

func (s Compute) run(p *Process) {
	if s.D <= 0 {
		p.next()
		return
	}
	p.burst = s.D
	p.ensureResident(p.runBurst)
}

// Read reads [Off, Off+N) of File through the buffer cache.
type Read struct {
	File *fs.File
	Off  int64
	N    int64
}

func (s Read) run(p *Process) {
	p.prof.To(profile.StateDiskWait, p.SPU)
	p.env.FS().Read(p.SPU, s.File, s.Off, s.N, p.nextFn)
}

// Write writes [Off, Off+N) of File as delayed writes.
type Write struct {
	File *fs.File
	Off  int64
	N    int64
}

func (s Write) run(p *Process) {
	// Delayed writes block only on frame allocation, never the disk.
	if p.prof != nil {
		p.prof.To(profile.StateMemWait, p.env.Memory().Culprit(p.SPU))
	}
	p.env.FS().Write(p.SPU, s.File, s.Off, s.N, p.nextFn)
}

// Meta performs a metadata rewrite on File (one synchronous sector).
type Meta struct {
	File *fs.File
}

func (s Meta) run(p *Process) {
	p.prof.To(profile.StateDiskWait, p.SPU)
	p.env.FS().MetaUpdate(p.SPU, s.File, p.nextFn)
}

// Lookup performs a pathname lookup through the root inode semaphore.
type Lookup struct{}

func (s Lookup) run(p *Process) {
	p.prof.To(profile.StateLockWait, p.SPU)
	p.env.FS().Lookup(p.SPU, p.nextFn)
}

// Touch sets the process working-set target to Pages; subsequent Compute
// steps keep that many pages resident.
type Touch struct {
	Pages int
}

func (s Touch) run(p *Process) {
	p.wssTarget = s.Pages
	p.ensureResident(p.nextFn)
}

// Fork starts a child process and continues immediately. When If is
// non-nil and returns false at fork time, the child is skipped — the
// runtime decision point admission control needs, since open-arrival
// step programs are built before the run and cannot know the load at
// each arrival instant. A skipped child never starts, never counts as
// a live child, and owes no WaitChildren.
type Fork struct {
	Child *Process
	If    func() bool
}

func (s Fork) run(p *Process) {
	if s.If != nil && !s.If() {
		p.next()
		return
	}
	s.Child.parent = p
	p.liveChildren++
	s.Child.Start()
	p.next()
}

// WaitChildren blocks until every forked child has exited.
type WaitChildren struct{}

func (s WaitChildren) run(p *Process) {
	if p.liveChildren == 0 {
		p.next()
		return
	}
	p.prof.To(profile.StateSync, p.SPU)
	p.waitingKids = true
}

// Sleep blocks the process for D without using any resources (think
// waiting on an external event).
type Sleep struct {
	D sim.Time
}

func (s Sleep) run(p *Process) {
	p.prof.To(profile.StateSleep, p.SPU)
	p.env.Engine().CallAfter(s.D, "proc.sleep", p.nextFn)
}

// Barrier synchronizes a gang of processes: each arrival blocks until
// Need processes have arrived, then all proceed. Barriers are reusable
// (they reset after releasing), which is how iterative parallel
// applications like Ocean use them.
type Barrier struct {
	Need    int
	arrived []func()
}

// NewBarrier creates a barrier for a gang of need processes.
func NewBarrier(need int) *Barrier {
	if need <= 0 {
		panic("proc: barrier with non-positive need")
	}
	return &Barrier{Need: need}
}

// Arrive registers one arrival; when the gang is complete, all waiters
// resume (in arrival order) and the barrier resets.
func (b *Barrier) Arrive(done func()) {
	b.arrived = append(b.arrived, done)
	if len(b.arrived) < b.Need {
		return
	}
	ws := b.arrived
	b.arrived = nil
	for _, w := range ws {
		w()
	}
}

// Waiting returns how many processes are blocked at the barrier.
func (b *Barrier) Waiting() int { return len(b.arrived) }

// BarrierStep makes the process arrive at B and wait for the gang.
type BarrierStep struct {
	B *Barrier
}

func (s BarrierStep) run(p *Process) {
	p.prof.To(profile.StateSync, p.SPU)
	s.B.Arrive(p.nextFn)
}

// Loop expands a body repeated Times times at program-build time.
func Loop(times int, body ...Step) []Step {
	out := make([]Step, 0, times*len(body))
	for i := 0; i < times; i++ {
		out = append(out, body...)
	}
	return out
}

// Seq concatenates step slices into one program.
func Seq(parts ...[]Step) []Step {
	var out []Step
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

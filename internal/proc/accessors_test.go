package proc

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

func TestThreadAccessors(t *testing.T) {
	env, us := newEnv(1, core.ShareIdle, 1, 100)
	p := New(env, us[0].ID(), "acc", []Step{Compute{D: 50 * sim.Millisecond}})
	th := p.Thread()
	if th == nil || th.Name != "acc" {
		t.Fatal("Thread() accessor broken")
	}
	if th.OnCPU() != -1 {
		t.Fatal("idle thread reports a CPU")
	}
	p.Start()
	if !th.Runnable() && !th.Running() {
		t.Fatal("started compute thread neither runnable nor running")
	}
	if th.Running() && th.OnCPU() < 0 {
		t.Fatal("running thread without a CPU index")
	}
	run(env, sim.Second)
	if th.Priority() <= 0 {
		t.Fatal("thread consumed CPU but priority value is zero")
	}
	if p.Resident() != 0 {
		t.Fatalf("resident = %d after exit", p.Resident())
	}
}

func TestStateProgression(t *testing.T) {
	env, us := newEnv(1, core.ShareIdle, 1, 100)
	p := New(env, us[0].ID(), "st", []Step{Sleep{D: 10 * sim.Millisecond}})
	if p.State() != Created {
		t.Fatal("fresh process not Created")
	}
	p.Start()
	if p.State() != Running {
		t.Fatal("started process not Running")
	}
	run(env, sim.Second)
	if p.State() != Exited {
		t.Fatal("finished process not Exited")
	}
}

package kernel

import (
	"strings"
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/invariant"
	"perfiso/internal/metrics"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
)

// TestAuditorEnabledByDefault: every kernel gets an auditor unless
// explicitly opted out, and the tick sweep actually runs.
func TestAuditorEnabledByDefault(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{MetricsPeriod: 100 * sim.Millisecond})
	k.NewSPU("u", 1)
	k.Boot()
	if k.Auditor() == nil {
		t.Fatal("auditor not created by default")
	}
	if k.Watchdog() == nil {
		t.Fatal("watchdog not created by default")
	}
	p := proc.New(k, core.FirstUserID, "w", []proc.Step{proc.Compute{D: 100 * sim.Millisecond}})
	k.Spawn(p)
	k.Run()
	if k.Auditor().Checks() == 0 {
		t.Fatal("auditor never ran")
	}
	if n := len(k.Auditor().Violations()); n != 0 {
		t.Fatalf("clean run produced %d violations: %v", n, k.Auditor().Violations()[0])
	}
	if got := k.Metrics().Counter(metrics.KeyInvariantChecks, metrics.NoSPU).Value(); got == 0 {
		t.Fatal("invariant.checks metric not counted")
	}
	off := New(smallMachine(), core.PIso, Options{AuditDisabled: true, WatchdogDisabled: true})
	if off.Auditor() != nil || off.Watchdog() != nil {
		t.Fatal("opt-out ignored")
	}
}

// TestAuditorCatchesFrameCorruption is the negative control demanded by
// the acceptance criteria: deliberately corrupt the frame accounting
// (a phantom memory charge with no frame behind it) and the auditor
// must fire at the next sweep.
func TestAuditorCatchesFrameCorruption(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{})
	s := k.NewSPU("u", 1)
	k.Boot()
	k.RunUntil(50 * sim.Millisecond)
	s.Charge(core.Memory, 1) // a page the memory manager never granted
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("auditor did not fire on corrupted frame accounting")
		}
		v, ok := r.(invariant.Violation)
		if !ok {
			t.Fatalf("panic value %T, want invariant.Violation", r)
		}
		if v.Check != "mem" {
			t.Fatalf("violation check %q, want mem", v.Check)
		}
		if !strings.Contains(v.Error(), "mem") {
			t.Fatalf("unhelpful violation message %q", v.Error())
		}
	}()
	k.Auditor().CheckAll("test")
}

// TestAuditorCollectMode: with AuditCollect the same corruption is
// recorded, counted, and survived — the soak harness depends on this.
func TestAuditorCollectMode(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{AuditCollect: true, MetricsPeriod: 100 * sim.Millisecond})
	s := k.NewSPU("u", 1)
	k.Boot()
	k.RunUntil(50 * sim.Millisecond)
	s.Charge(core.Memory, 1)
	k.Auditor().CheckAll("test")
	vs := k.Auditor().Violations()
	if len(vs) == 0 {
		t.Fatal("collect mode recorded nothing")
	}
	if vs[0].At != k.Engine().Now() {
		t.Fatalf("violation stamped at %v, now is %v", vs[0].At, k.Engine().Now())
	}
	if vs[0].Snapshot["mem.used"] == 0 && vs[0].Snapshot["mem.free"] == 0 {
		t.Fatal("violation snapshot is empty")
	}
	if got := k.Metrics().Counter(metrics.KeyInvariantViolations, metrics.NoSPU).Value(); got == 0 {
		t.Fatal("invariant.violations metric not counted")
	}
	// The limit bounds memory: hammer the check and confirm truncation.
	k.Auditor().Limit = 3
	for i := 0; i < 10; i++ {
		k.Auditor().CheckAll("test")
	}
	if n := len(k.Auditor().Violations()); n > 3 {
		t.Fatalf("collected %d violations past limit 3", n)
	}
	if k.Auditor().Truncated() == 0 {
		t.Fatal("truncation not counted")
	}
}

// TestAuditorCatchesNegativeEntitlement covers the levels check.
func TestAuditorCatchesNegativeEntitlement(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{AuditCollect: true})
	s := k.NewSPU("u", 1)
	k.Boot()
	s.SetEntitled(core.DiskBW, -0.5)
	k.Auditor().CheckAll("test")
	found := false
	for _, v := range k.Auditor().Violations() {
		if v.Check == "levels" && v.SPU == s.ID() {
			found = true
		}
	}
	if !found {
		t.Fatalf("negative entitlement not flagged: %v", k.Auditor().Violations())
	}
}

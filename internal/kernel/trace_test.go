package kernel

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
	"perfiso/internal/trace"
)

// The tracer must record the mechanism behind PIso's sharing: loans of
// idle CPUs followed by revocations when the owner wakes.
func TestTraceRecordsLoansAndRevocations(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{TraceCapacity: 4096})
	a := k.NewSPU("a", 1)
	b := k.NewSPU("b", 1)
	k.Boot()
	// b overloads its 2 CPUs; a is mostly idle but wakes periodically.
	for i := 0; i < 4; i++ {
		k.Spawn(proc.New(k, b.ID(), "hog", []proc.Step{proc.Compute{D: 2 * sim.Second}}))
	}
	k.Spawn(proc.New(k, a.ID(), "blinker", proc.Seq(
		proc.Loop(10, proc.Compute{D: 10 * sim.Millisecond}, proc.Sleep{D: 90 * sim.Millisecond}),
	)))
	k.Run()
	tr := k.Tracer()
	if tr == nil {
		t.Fatal("tracer not enabled")
	}
	if len(tr.Find("loan")) == 0 {
		t.Fatal("no loans traced despite an overloaded neighbour")
	}
	if len(tr.Find("revoke")) == 0 {
		t.Fatal("no revocations traced despite the owner waking repeatedly")
	}
	if tr.Count(trace.Sched) == 0 {
		t.Fatal("sched events not counted")
	}
}

func TestTraceOffByDefault(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{})
	if k.Tracer() != nil {
		t.Fatal("tracing should be off by default")
	}
}

// Memory lending and revocation leave a trace trail too.
func TestTraceRecordsMemoryPolicy(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{TraceCapacity: 8192})
	a := k.NewSPU("a", 1)
	k.NewSPU("b", 1)
	k.Boot()
	k.Spawn(proc.New(k, a.ID(), "big", proc.Seq(
		[]proc.Step{proc.Touch{Pages: 2200}}, // beyond a's 1536-page share
		proc.Loop(3, proc.Compute{D: 10 * sim.Millisecond}),
	)))
	k.Run()
	tr := k.Tracer()
	if len(tr.Find("lend")) == 0 {
		t.Fatal("no memory lending traced")
	}
	if tr.Count(trace.Policy) == 0 {
		t.Fatal("no policy events counted")
	}
}

package kernel

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
)

// §2.1: SPUs can be created dynamically. A third SPU created mid-run
// gets its share after Rebalance, and the incumbents' entitlements
// shrink accordingly.
func TestDynamicSPUCreation(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{}) // 4 CPUs, 16 MB
	a := k.NewSPU("a", 1)
	b := k.NewSPU("b", 1)
	k.Boot()
	if a.Entitled(core.Memory) != 1536 {
		t.Fatalf("initial entitlement %g", a.Entitled(core.Memory))
	}
	// Keep the machine alive with a long job while we reconfigure.
	k.Spawn(proc.New(k, a.ID(), "bg", []proc.Step{proc.Compute{D: 500 * sim.Millisecond}}))
	k.Engine().At(100*sim.Millisecond, "grow", func() {
		c := k.NewSPU("c", 1)
		k.Rebalance()
		if c.Entitled(core.Memory) != 1024 {
			t.Errorf("new SPU entitled %g, want 1024", c.Entitled(core.Memory))
		}
		if a.Entitled(core.Memory) != 1024 || b.Entitled(core.Memory) != 1024 {
			t.Errorf("incumbents keep %g/%g, want 1024 each",
				a.Entitled(core.Memory), b.Entitled(core.Memory))
		}
		// CPU homes: 4 CPUs across 3 SPUs -> shares of 1 or 2 with a
		// rotor on the remainder.
		counts := map[core.SPUID]int{}
		for _, h := range k.Scheduler().Homes() {
			counts[h]++
		}
		for _, s := range []*core.SPU{a, b, c} {
			if counts[s.ID()] < 1 {
				t.Errorf("SPU %d lost all CPUs: %v", s.ID(), k.Scheduler().Homes())
			}
		}
	})
	k.Run()
}

// §2.1: suspended SPUs release their resources; waking restores them.
func TestSuspendAndWakeSPU(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{})
	a := k.NewSPU("a", 1)
	b := k.NewSPU("b", 1)
	k.Boot()
	b.Suspend()
	k.Rebalance()
	if a.Entitled(core.Memory) != 3072 {
		t.Fatalf("a entitled %g after b suspended, want all 3072", a.Entitled(core.Memory))
	}
	for _, h := range k.Scheduler().Homes() {
		if h != a.ID() {
			t.Fatalf("CPU still homed at %d while only a is active", h)
		}
	}
	b.Wake()
	k.Rebalance()
	if a.Entitled(core.Memory) != 1536 || b.Entitled(core.Memory) != 1536 {
		t.Fatalf("entitlements after wake: %g/%g", a.Entitled(core.Memory), b.Entitled(core.Memory))
	}
}

// Rebalancing while threads run must not strand them: re-homed CPUs
// become loans and revocation hands them to the new owners within a
// tick.
func TestRebalanceRevokesRunningForeignThreads(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{})
	a := k.NewSPU("a", 1)
	k.Boot()
	// a's hogs own all 4 CPUs.
	for i := 0; i < 4; i++ {
		k.Spawn(proc.New(k, a.ID(), "hog", []proc.Step{proc.Compute{D: 2 * sim.Second}}))
	}
	var bDone sim.Time
	k.Engine().At(50*sim.Millisecond, "newspu", func() {
		b := k.NewSPU("b", 1)
		k.Rebalance()
		p := proc.New(k, b.ID(), "newcomer", []proc.Step{proc.Compute{D: 100 * sim.Millisecond}})
		p.OnExit = func(*proc.Process) { bDone = k.Engine().Now() }
		k.Spawn(p)
	})
	k.Run()
	if bDone == 0 {
		t.Fatal("newcomer never ran")
	}
	// b wakes at 50ms, gets a CPU within a tick, runs 100ms.
	if bDone > 170*sim.Millisecond {
		t.Fatalf("newcomer finished at %v; revocation after rebalance too slow", bDone)
	}
}

package kernel

import (
	"bytes"
	"strings"
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/fs"
	"perfiso/internal/machine"
	"perfiso/internal/proc"
	"perfiso/internal/profile"
	"perfiso/internal/sim"
)

// lockScenario boots a two-SPU machine whose processes hammer the
// shared root-inode mutex with long lookup holds, so at any mid-run
// instant the lock is held by one SPU with the other's lookups queued
// behind it.
func lockScenario(opts Options) *Kernel {
	k := New(smallMachine(), core.PIso, opts)
	a := k.NewSPU("a", 1)
	b := k.NewSPU("b", 1)
	k.SetAffinity(a.ID(), 0)
	k.SetAffinity(b.ID(), 1)
	k.Boot()
	k.FS().LookupHold = 30 * sim.Millisecond
	for i, id := range []core.SPUID{a.ID(), b.ID()} {
		name := []string{"md-a", "md-b"}[i]
		k.Spawn(proc.New(k, id, name, proc.Loop(10,
			proc.Lookup{}, proc.Compute{D: 5 * sim.Millisecond})))
	}
	return k
}

// The checkpoint captures locks exactly: two boots paused mid-hold with
// waiters queued serialise to identical bytes, the lock section records
// the held/queued state, and a paused-and-resumed run finishes with the
// same snapshot as one that never paused.
func TestLockCheckpointByteIdentity(t *testing.T) {
	opts := Options{InodeMutex: true}
	const at = 45 * sim.Millisecond // inside a hold, with the other SPU queued

	k1 := lockScenario(opts)
	k1.RunUntil(at)
	s1 := k1.Snapshot()
	k2 := lockScenario(opts)
	k2.RunUntil(at)
	if !bytes.Equal(s1, k2.Snapshot()) {
		t.Fatal("mid-contention checkpoints diverge")
	}
	if !strings.Contains(string(s1), "lock:fs.inode") {
		t.Fatal("snapshot missing the inode lock section")
	}
	if !strings.Contains(string(s1), "waiter0") {
		t.Fatalf("mid-contention snapshot records no queued waiter:\n%s", s1)
	}
	if !strings.Contains(string(s1), "gate:") {
		t.Fatal("snapshot missing the gate sections")
	}

	straight := lockScenario(opts)
	straight.Run()
	resumed := lockScenario(opts)
	resumed.RunUntil(at)
	resumed.Run()
	if !bytes.Equal(straight.Snapshot(), resumed.Snapshot()) {
		t.Fatal("resume across a held/queued lock is not byte-identical")
	}
}

// The lock-leak law end to end: under a shared inode mutex one SPU's
// lookups steal time from the other and the interference matrix's lock
// column says so; with per-SPU inode shards the same workload shows a
// lock row of exactly zero — not small, zero.
func TestPrivateLocksZeroInterference(t *testing.T) {
	run := func(shards int) sim.Time {
		k := lockScenario(Options{InodeMutex: true, InodeShards: shards, Profiled: true})
		k.Run()
		var theft sim.Time
		for _, th := range k.Profile().Interference() {
			if th.Resource == profile.Lock {
				theft += th.Stolen
			}
		}
		return theft
	}
	if shared := run(1); shared == 0 {
		t.Fatal("shared inode mutex produced no lock interference")
	}
	if private := run(2); private != 0 {
		t.Fatalf("private inode shards leaked %v of lock interference, want exactly zero", private)
	}
}

// The kernel's lock table sees the fs locks and the sched/mem gates
// through one registry, and its audit runs under the periodic invariant
// auditor without tripping.
func TestKernelLockTableCoverage(t *testing.T) {
	k := lockScenario(Options{InodeMutex: true, RunqLockHold: 2 * sim.Microsecond,
		FrameLockHold: 2 * sim.Microsecond})
	k.Run()
	tab := k.Locks()
	if err := tab.Audit(); err != nil {
		t.Fatal(err)
	}
	if n := len(tab.Locks()); n < 1+fs.DefaultPageInsertStripes {
		t.Fatalf("lock table sees %d event locks", n)
	}
	if len(tab.Gates()) < 2 {
		t.Fatalf("lock table sees %d gates", len(tab.Gates()))
	}
	rep := tab.String()
	if !strings.Contains(rep, "fs.inode") || !strings.Contains(rep, "sched.runq") {
		t.Fatalf("lock report missing rows:\n%s", rep)
	}
}

// The zero-alloc dispatch guarantee extends to the lock layer: a steady
// state with nonzero gate holds (contended accounting paths) and the
// periodic lock audits runs without allocating.
func TestKernelDispatchZeroAllocWithGates(t *testing.T) {
	k := New(machine.MemoryIsolation(), core.PIso, Options{
		RunqLockHold: 2 * sim.Microsecond, FrameLockHold: 2 * sim.Microsecond})
	k.NewSPU("u1", 1)
	k.NewSPU("u2", 1)
	k.Boot()
	for i, spu := range []core.SPUID{core.FirstUserID, core.FirstUserID + 1} {
		for j := 0; j < 3; j++ {
			name := []string{"a0", "a1", "a2", "b0", "b1", "b2"}[i*3+j]
			k.Spawn(proc.New(k, spu, name, proc.Loop(1_000_000,
				proc.Compute{D: 2 * sim.Millisecond},
			)))
		}
	}
	k.Engine().RunUntil(4 * sim.Second)
	eng := k.Engine()
	if avg := testing.AllocsPerRun(50, func() {
		eng.RunUntil(eng.Now() + 100*sim.Millisecond)
	}); avg != 0 {
		t.Fatalf("gated dispatch allocates %v allocs per 100 ms window, want 0", avg)
	}
}

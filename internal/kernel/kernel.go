// Package kernel assembles the simulated machine: it wires the CPU
// scheduler, memory manager, file system, and disks together under the
// SPU resource manager, runs the periodic daemons (clock tick, memory
// sharing policy, delayed-write flusher), and drives workloads to
// completion. It is the stand-in for the modified IRIX 5.3 kernel of §3.
package kernel

import (
	"fmt"
	"io"

	"perfiso/internal/control"
	"perfiso/internal/core"
	"perfiso/internal/disk"
	"perfiso/internal/fault"
	"perfiso/internal/fs"
	"perfiso/internal/invariant"
	"perfiso/internal/latency"
	"perfiso/internal/lock"
	"perfiso/internal/machine"
	"perfiso/internal/mem"
	"perfiso/internal/metrics"
	"perfiso/internal/proc"
	"perfiso/internal/profile"
	"perfiso/internal/sched"
	"perfiso/internal/sim"
	"perfiso/internal/simobs"
	"perfiso/internal/snap"
	"perfiso/internal/stats"
	"perfiso/internal/trace"
)

// Options tunes kernel behaviour. The zero value reproduces the paper's
// configuration for the given scheme.
type Options struct {
	// DiskSched overrides the scheme's disk scheduling policy: "Pos",
	// "Iso" or "PIso" (§4.5 compares all three on a PIso kernel).
	DiskSched string
	// BWThreshold is the PIso BW-difference threshold in sectors
	// (disk.DefaultBWThreshold when zero).
	BWThreshold float64
	// DiskHalfLife is the bandwidth-usage decay half-life (500 ms when
	// zero, per §3.3).
	DiskHalfLife sim.Time
	// DiskMerge enables adjacent-request coalescing in the disk driver
	// (off by default: the paper's request counts assume the unmerged
	// IRIX 5.3 driver).
	DiskMerge bool
	// Reserve is the memory Reserve Threshold fraction (8 % when zero,
	// per §3.2).
	Reserve float64
	// InodeMutex switches the root inode lock back to mutual exclusion —
	// the original IRIX 5.3 behaviour §3.4 had to fix. The zero value is
	// the paper's fixed kernel (readers-writer).
	InodeMutex bool
	// PageInsertStripes sets the §3.4 page-insert-lock granularity:
	// 1 reproduces the original coarse lock, 0 means the fixed kernel's
	// default striping.
	PageInsertStripes int
	// InodeShards sets the inode-lock sharding (the §3.4 remediation
	// generalized): 0 or 1 is the single shared root inode; at or
	// above the SPU count every SPU's pathname traffic runs under a
	// private tree and inode-lock interference vanishes.
	InodeShards int
	// RunqLockHold and FrameLockHold give the accounting-only run-queue
	// and frame-pool lock models (internal/lock.Gate) a per-critical-
	// section cost, making their serialization measurable in the lock
	// table and the interference matrix. Zero keeps pure acquisition
	// counting. Gates never perturb event timing either way.
	RunqLockHold  sim.Time
	FrameLockHold sim.Time
	// CoarseKernelLocks forces the run-queue and frame-pool gates onto
	// one shared lock each even under isolating schemes — the unfixed
	// coarse kernel §3.4 warns about. By default the gates are shared
	// only under SMP (whose single global structures a coarse lock
	// matches) and per-SPU under Quo/PIso.
	CoarseKernelLocks bool
	// IPIRevoke enables immediate CPU revocation (§3.1 extension).
	IPIRevoke bool
	// CacheReload enables the §3.1 cache-pollution cost model: extra
	// CPU time paid by a thread dispatched onto a cold cache.
	CacheReload sim.Time
	// MinLoanInterval rate-limits CPU lending after a revocation
	// (§3.1's "more sophisticated" sharing policy sketch).
	MinLoanInterval sim.Time
	// Slice is the scheduler time slice (30 ms when zero).
	Slice sim.Time
	// PolicyPeriod is the memory sharing-policy period (100 ms when 0).
	PolicyPeriod sim.Time
	// FlushPeriod is the delayed-write flush period (500 ms when 0).
	FlushPeriod sim.Time
	// Seed seeds all deterministic randomness (file placement).
	Seed uint64
	// TraceCapacity, when positive, turns on decision tracing with a
	// ring of that many events (see internal/trace).
	TraceCapacity int
	// TimelinePeriod, when positive, samples each user SPU's CPU and
	// memory usage at that period into a Timeline (pisosim -timeline).
	TimelinePeriod sim.Time
	// MetricsPeriod, when positive, turns on the observability layer:
	// a per-SPU metrics registry whose series (CPU, memory, disk usage
	// per SPU) are sampled at this period on the simulation clock and
	// exportable as JSONL or a Chrome trace (see internal/metrics).
	MetricsPeriod sim.Time
	// LatencyWindow, when positive, turns on per-tenant tail-latency
	// tracking (internal/latency): workloads register request streams with
	// the kernel's latency registry and record each completed request into
	// an HDR-style histogram plus a percentile timeline with windows of
	// this width on the simulation clock. Exportable as JSONL, a summary
	// table, and Chrome-trace percentile counter tracks.
	LatencyWindow sim.Time
	// Profiled turns on the simulated-time profiler (internal/profile):
	// every thread's simulated nanoseconds are accounted to per-SPU
	// (resource, state) buckets, per-request span trees are recorded, and
	// cross-SPU interference is attributed to its culprit SPU. Off by
	// default; when off the hot paths pay only a nil check.
	Profiled bool
	// ProfileSpanCapacity bounds the profiler's span ring
	// (profile.DefaultSpanCapacity when zero). Aggregates are unaffected
	// by the cap; only the per-span log wraps.
	ProfileSpanCapacity int
	// Horizon aborts the simulation if processes are still alive after
	// this much simulated time (default 3600 s) — a hang detector.
	Horizon sim.Time
	// AuditDisabled turns off the invariant auditor (internal/invariant),
	// which otherwise re-verifies the paper's conservation and isolation
	// invariants every tick and at every sharing boundary. On by default:
	// the checks are read-only, so they never change simulation results,
	// only catch a machine whose books stopped balancing.
	AuditDisabled bool
	// AuditCollect makes the auditor record violations instead of
	// panicking on the first one — the soak harness uses this to survey
	// a failure rather than die on its first symptom.
	AuditCollect bool
	// WatchdogDisabled turns off the livelock/event-storm watchdog that
	// otherwise guards Run.
	WatchdogDisabled bool
	// Faults, when non-empty, schedules deterministic hardware faults
	// (disk degradation, CPU stragglers/offlining, memory-frame loss)
	// at boot; see internal/fault.ParsePlan for the spec syntax.
	Faults *fault.Plan
	// SimObs attaches the simulator self-observability layer
	// (internal/simobs) to this kernel's engine: an event-class census,
	// calendar-queue telemetry, sampled host-time attribution, and the
	// per-domain causality counters behind the parallelism-feasibility
	// report. Off (the default) the engine pays one nil check per
	// schedule and per dispatch and the results are byte-identical; see
	// Kernel.SimObsReport for reading the data back.
	SimObs bool
	// Control configures the closed-loop SLO entitlement controller
	// (internal/control). With Control.Enabled the kernel ticks the
	// controller on the latency-window cadence: it watches per-tenant
	// SLO burn, retunes SPU shares (CPU homes, memory frames, disk
	// bandwidth move together), tightens admission caps under overload,
	// and trips per-disk circuit breakers on injected faults. Off (the
	// zero value), no share is ever touched and every division is
	// bit-identical to the static weight-driven kernel. Enabling the
	// controller implies latency tracking: LatencyWindow defaults to
	// 500 ms when unset because the controller is blind without it.
	Control control.Config
}

func (o Options) withDefaults() Options {
	if o.BWThreshold <= 0 {
		o.BWThreshold = disk.DefaultBWThreshold
	}
	if o.DiskHalfLife <= 0 {
		o.DiskHalfLife = 500 * sim.Millisecond
	}
	if o.PolicyPeriod <= 0 {
		o.PolicyPeriod = 100 * sim.Millisecond
	}
	if o.FlushPeriod <= 0 {
		o.FlushPeriod = 500 * sim.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 0x5eed
	}
	if o.Control.Enabled && o.LatencyWindow <= 0 {
		o.LatencyWindow = 500 * sim.Millisecond
	}
	if o.Horizon <= 0 {
		o.Horizon = 3600 * sim.Second
	}
	return o
}

// Kernel is one booted machine.
type Kernel struct {
	eng    *sim.Engine
	cfg    machine.Config
	scheme core.Scheme
	opts   Options

	spus   *core.Manager
	sch    *sched.Scheduler
	mm     *mem.Manager
	fsys   *fs.FileSystem
	disks  []*disk.Disk
	allocs []*fs.Allocator
	rng    *sim.RNG

	// Per-SPU disk affinity: swap and default file placement.
	affinity map[core.SPUID]int
	swapNext map[int]int64

	procs     []*proc.Process
	liveProcs int

	tickers  []*sim.Ticker
	booted   bool
	tracer   *trace.Tracer
	timeline *stats.Timeline
	injector *fault.Injector
	metrics  *metrics.Registry
	latreg   *latency.Registry
	profiler *profile.Profiler
	auditor  *invariant.Auditor
	watchdog *invariant.Watchdog
	locks    *lock.Table
	ctl      *control.Controller
}

// New builds (but does not boot) a kernel on the given hardware with
// the given resource allocation scheme.
func New(cfg machine.Config, scheme core.Scheme, opts Options) *Kernel {
	cfg.Validate()
	opts = opts.withDefaults()
	eng := sim.NewEngine()
	if opts.SimObs {
		// AttachObs is a no-op if a process-wide collector hook (see
		// simobs.Collect) already attached an observer at NewEngine time.
		eng.AttachObs(simobs.Config{}.ObsConfig())
	}
	spus := core.NewManager()
	k := &Kernel{
		eng:      eng,
		cfg:      cfg,
		scheme:   scheme,
		opts:     opts,
		spus:     spus,
		rng:      sim.NewRNG(opts.Seed),
		affinity: make(map[core.SPUID]int),
		swapNext: make(map[int]int64),
	}
	k.sch = sched.New(eng, spus, cfg.CPUs, sched.Options{
		Slice:           opts.Slice,
		IPIRevoke:       opts.IPIRevoke,
		CacheReload:     opts.CacheReload,
		MinLoanInterval: opts.MinLoanInterval,
	})
	k.mm = mem.NewManager(eng, spus, cfg.Pages(), opts.Reserve)
	inodeMode := fs.SemRW
	if opts.InodeMutex {
		inodeMode = fs.SemMutex
	}
	k.fsys = fs.New(eng, k.mm, inodeMode)
	if opts.PageInsertStripes > 0 {
		k.fsys.SetPageInsertStripes(opts.PageInsertStripes)
	}
	if opts.InodeShards > 1 {
		k.fsys.SetInodeShards(opts.InodeShards)
	}
	// The kernel lock table: every modelled lock in one namespace for
	// audits, snapshots, and the pisosim lock report. Run-queue and
	// frame-pool gates are shared (one coarse lock) exactly when the
	// scheme hangs those structures under one lock: SMP, or forced by
	// CoarseKernelLocks.
	coarse := scheme == core.SMP || opts.CoarseKernelLocks
	k.sch.RunqLock = lock.NewGateSet(eng, "sched.runq", opts.RunqLockHold, coarse)
	k.mm.FrameLock = lock.NewGateSet(eng, "mem.framepool", opts.FrameLockHold, coarse)
	k.locks = lock.NewTable()
	k.locks.AddLocks(k.fsys.InodeLocks)
	k.locks.AddLocks(func() []*lock.Lock { return k.fsys.PageInsertLocks().Locks() })
	k.locks.AddGates(k.sch.RunqLock.Gates)
	k.locks.AddGates(k.mm.FrameLock.Gates)
	for i, dp := range cfg.Disks {
		d := disk.New(eng, dp, k.diskScheduler(), opts.DiskHalfLife)
		// Per-disk completion-event names ("disk0.complete") give each
		// disk its own resource domain in simulator telemetry. Set
		// unconditionally so runs are byte-identical with and without an
		// observer attached.
		d.SetLabel(fmt.Sprintf("disk%d", i))
		d.Merge = opts.DiskMerge
		k.disks = append(k.disks, d)
		k.allocs = append(k.allocs, fs.NewAllocator(d, k.rng.Fork()))
	}
	if opts.TraceCapacity > 0 {
		k.tracer = trace.New(eng, opts.TraceCapacity)
		k.sch.Trace = k.tracer
		k.mm.Trace = k.tracer
	}
	if opts.MetricsPeriod > 0 {
		k.metrics = metrics.New(eng, opts.MetricsPeriod)
		k.sch.Metrics = k.metrics
		k.mm.Metrics = k.metrics
		k.fsys.Metrics = k.metrics
	}
	if opts.LatencyWindow > 0 {
		k.latreg = latency.NewRegistry(opts.LatencyWindow)
	}
	if opts.Control.Enabled {
		k.ctl = control.New(opts.Control, eng, spus, k.latreg, k.disks, k.applyShares)
		k.ctl.Trace = k.tracer
		k.ctl.Metrics = k.metrics
	}
	if opts.Profiled {
		k.profiler = profile.New(eng, opts.ProfileSpanCapacity)
		for _, d := range k.disks {
			d.Profile = k.profiler
		}
		k.fsys.SetLockProfile(k.profiler)
		k.sch.RunqLock.SetProfile(k.profiler)
		k.mm.FrameLock.SetProfile(k.profiler)
	}
	if !opts.AuditDisabled {
		k.auditor = invariant.New(invariant.Targets{
			Eng:     eng,
			SPUs:    spus,
			Sched:   k.sch,
			Mem:     k.mm,
			Disks:   k.disks,
			Profile: k.profiler,
			Locks:   k.locks,
			Control: k.ctl,
		})
		k.auditor.Collect = opts.AuditCollect
		k.auditor.Metrics = k.metrics
		k.auditor.Trace = k.tracer
		k.sch.AuditHook = func(reason string) { k.auditor.CheckSched(reason) }
		k.mm.AuditHook = func(reason string) { k.auditor.CheckMem(reason) }
	}
	if !opts.WatchdogDisabled {
		k.watchdog = invariant.NewWatchdog()
	}
	k.mm.SetPageout(k.pageout)
	// A little kernel memory: code and data pinned at boot (4 MB),
	// charged to the kernel SPU so its cost falls on everyone (§2.2).
	for i := 0; i < 4*machine.MB/mem.PageSize; i++ {
		p := k.mm.Allocate(core.KernelID, mem.Kernel, nil)
		if p != nil {
			k.mm.SetPinned(p, true)
		}
	}
	return k
}

// diskScheduler builds the disk scheduling policy implied by the scheme
// or the DiskSched override.
func (k *Kernel) diskScheduler() disk.Scheduler {
	name := k.opts.DiskSched
	if name == "" {
		switch k.scheme {
		case core.SMP:
			name = "Pos"
		case core.Quo:
			name = "Iso"
		default:
			name = "PIso"
		}
	}
	switch name {
	case "Pos":
		return disk.NewPos()
	case "Iso":
		return disk.NewIso()
	case "PIso":
		return disk.NewPIso(k.opts.BWThreshold)
	default:
		panic(fmt.Sprintf("kernel: unknown disk scheduler %q", name))
	}
}

// Engine returns the simulation engine.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Scheduler returns the CPU scheduler.
func (k *Kernel) Scheduler() *sched.Scheduler { return k.sch }

// Memory returns the memory manager.
func (k *Kernel) Memory() *mem.Manager { return k.mm }

// FS returns the file system.
func (k *Kernel) FS() *fs.FileSystem { return k.fsys }

// SPUs returns the SPU manager.
func (k *Kernel) SPUs() *core.Manager { return k.spus }

// Tracer returns the decision tracer, or nil when tracing is off.
func (k *Kernel) Tracer() *trace.Tracer { return k.tracer }

// Scheme returns the machine's resource allocation scheme.
func (k *Kernel) Scheme() core.Scheme { return k.scheme }

// Disk returns disk i.
func (k *Kernel) Disk(i int) *disk.Disk { return k.disks[i] }

// NumDisks returns the number of disks.
func (k *Kernel) NumDisks() int { return len(k.disks) }

// Allocator returns the file allocator of disk i.
func (k *Kernel) Allocator(i int) *fs.Allocator { return k.allocs[i] }

// NewSPU creates a user SPU whose sharing policy follows the machine's
// scheme, with the given relative weight.
func (k *Kernel) NewSPU(name string, weight float64) *core.SPU {
	s := k.spus.NewSPU(name, weight, k.scheme.Policy())
	// Default disk affinity: spread SPUs across disks round-robin.
	k.affinity[s.ID()] = (int(s.ID()) - int(core.FirstUserID)) % len(k.disks)
	return s
}

// SetAffinity pins an SPU's swap and default file placement to disk i.
func (k *Kernel) SetAffinity(spu core.SPUID, diskIdx int) {
	if diskIdx < 0 || diskIdx >= len(k.disks) {
		panic(fmt.Sprintf("kernel: disk %d out of range", diskIdx))
	}
	k.affinity[spu] = diskIdx
}

// AffinityDisk returns the disk an SPU's swap traffic goes to.
func (k *Kernel) AffinityDisk(spu core.SPUID) *disk.Disk {
	return k.disks[k.affinity[spu]]
}

// AffinityAllocator returns the file allocator on the SPU's disk.
func (k *Kernel) AffinityAllocator(spu core.SPUID) *fs.Allocator {
	return k.allocs[k.affinity[spu]]
}

// Boot divides resources per the contract and starts the daemons: the
// 10 ms clock tick (priority decay, CPU revocation), the memory sharing
// policy, and the delayed-write flusher.
func (k *Kernel) Boot() {
	if k.booted {
		panic("kernel: double boot")
	}
	k.booted = true
	k.sch.AssignHomes()
	k.mm.DivideAmongSPUs()
	k.applyDiskShares()
	// The 10 ms tick and the full invariant sweep share one event: the
	// sweep is read-only and every conservation invariant holds at every
	// event boundary, so batching it onto the tick halves the dominant
	// periodic event count without changing simulation results. When the
	// engine carries an observer the sweep instead gets its own
	// same-period ticker (created right after the tick's, so FIFO seq
	// order keeps it firing immediately after the tick at each instant):
	// the audit cost then shows up under its own "auditor.sweep" class in
	// host-time attribution instead of hiding inside kernel.tick.
	observed := k.eng.Obs() != nil
	tick := k.sch.Tick
	if k.auditor != nil && !observed {
		a := k.auditor
		tick = func() {
			k.sch.Tick()
			a.CheckAll("tick")
		}
	}
	k.tickers = append(k.tickers,
		k.eng.Every(sched.TickPeriod, "kernel.tick", tick))
	if k.auditor != nil && observed {
		a := k.auditor
		k.tickers = append(k.tickers,
			k.eng.Every(sched.TickPeriod, "auditor.sweep", func() { a.CheckAll("tick") }))
	}
	k.tickers = append(k.tickers,
		k.eng.Every(k.opts.PolicyPeriod, "kernel.mempolicy", k.mm.PolicyTick),
		k.eng.Every(k.opts.FlushPeriod, "kernel.bdflush", k.fsys.FlushTick),
	)
	if k.opts.TimelinePeriod > 0 {
		k.timeline = stats.NewTimeline()
		k.tickers = append(k.tickers,
			k.eng.Every(k.opts.TimelinePeriod, "kernel.timeline", k.sampleTimeline))
	}
	if k.metrics != nil {
		k.registerSeries()
		k.tickers = append(k.tickers,
			k.eng.Every(k.metrics.Period(), "kernel.metrics", k.metrics.Sample))
	}
	if k.ctl != nil {
		k.tickers = append(k.tickers,
			k.eng.Every(k.ctl.Config().Period, "kernel.control", k.ctl.Tick))
	}
	if !k.opts.Faults.Empty() {
		k.injector = fault.NewInjector(k.eng, fault.Machine{
			Sched:     k.sch,
			Mem:       k.mm,
			Disks:     k.disks,
			Rebalance: k.Rebalance,
			Trace:     k.tracer,
			Metrics:   k.metrics,
		}, k.opts.Faults, k.rng.Fork())
	}
}

// registerSeries installs the per-SPU sampled series and machine-wide
// gauges at boot, once the SPUs exist. Everything registered here only
// reads machine state, so sampling never perturbs simulation results.
func (k *Kernel) registerSeries() {
	for _, s := range k.spus.Users() {
		s := s
		id := s.ID()
		k.metrics.Series(metrics.KeyCPUUsed, id, func() float64 {
			return s.Used(core.CPU)
		})
		k.metrics.Series(metrics.KeyCPUTime, id, func() float64 {
			if pt := k.sch.PerSPUTime[id]; pt != nil {
				return pt.Seconds()
			}
			return 0
		})
		k.metrics.Series(metrics.KeyMemResident, id, func() float64 {
			return s.Used(core.Memory)
		})
		k.metrics.Series(metrics.KeyMemLoaned, id, func() float64 {
			if loan := s.Allowed(core.Memory) - s.Entitled(core.Memory); loan > 0 {
				return loan
			}
			return 0
		})
		k.metrics.Series(metrics.KeyDiskQueue, id, func() float64 {
			n := 0
			for _, d := range k.disks {
				n += d.QueuedFor(id)
			}
			return float64(n)
		})
		k.metrics.Series(metrics.KeyDiskSectors, id, func() float64 {
			var n int64
			for _, d := range k.disks {
				n += d.SectorsFor(id)
			}
			return float64(n)
		})
	}
	k.metrics.Gauge(metrics.KeyMemFree, metrics.NoSPU, func() float64 {
		return float64(k.mm.FreePages())
	})
	k.metrics.Gauge(metrics.KeyDiskWaitMean, metrics.NoSPU, func() float64 {
		var w float64
		for _, d := range k.disks {
			w += d.Total.Wait.Mean()
		}
		return w / float64(len(k.disks))
	})
	k.metrics.Gauge(metrics.KeyDiskServiceMean, metrics.NoSPU, func() float64 {
		var w float64
		for _, d := range k.disks {
			w += d.Total.Service.Mean()
		}
		return w / float64(len(k.disks))
	})
}

// Metrics returns the metrics registry, or nil when observability is off.
func (k *Kernel) Metrics() *metrics.Registry { return k.metrics }

// Latency returns the latency registry, or nil when latency tracking is
// off (Options.LatencyWindow). Workloads register streams against it
// unconditionally — a nil registry hands out nil no-op trackers.
func (k *Kernel) Latency() *latency.Registry { return k.latreg }

// WriteLatency writes every latency tracker (summary, SLO, and window
// timeline lines) as deterministic JSONL. An error when latency
// tracking is off.
func (k *Kernel) WriteLatency(w io.Writer) error {
	if k.latreg == nil {
		return fmt.Errorf("kernel: latency tracking is off (Options.LatencyWindow)")
	}
	return k.latreg.WriteJSONL(w)
}

// LatencyTable summarizes every latency stream: request counts
// (censored in-flight requests called out separately), tail
// percentiles, and SLO attainment. Nil when latency tracking is off or
// nothing was recorded.
func (k *Kernel) LatencyTable() *stats.Table {
	if k.latreg == nil || k.latreg.Empty() {
		return nil
	}
	t := stats.NewTable("Per-tenant latency",
		"Tenant", "Requests", "Censored", "p50 (ms)", "p99 (ms)", "p999 (ms)", "Max (ms)", "SLO", "Attain (%)")
	ms := func(ns int64) float64 { return float64(ns) / float64(sim.Millisecond) }
	for _, tr := range k.latreg.Trackers() {
		h := tr.Total()
		if h.Count() == 0 {
			continue
		}
		slo, attain := "-", "-"
		if tr.Obj.Valid() {
			slo = fmt.Sprintf("%.0f%%<%.0fms", tr.Obj.Target*100, ms(int64(tr.Obj.Threshold)))
			attain = fmt.Sprintf("%.2f", tr.Attainment())
		}
		t.Addf(tr.Name, h.Count(), tr.Censored(),
			ms(h.Quantile(0.50)), ms(h.Quantile(0.99)), ms(h.Quantile(0.999)),
			ms(h.Max()), slo, attain)
	}
	return t
}

// latencyTracks converts each tracker's window timeline into Chrome
// counter tracks (p50/p99/p999 in ms, one point per non-empty window at
// the window's end), so tail behaviour lines up with the usage series
// and profiler spans on the SPU's track.
func (k *Kernel) latencyTracks() []metrics.CounterTrack {
	if k.latreg == nil {
		return nil
	}
	var out []metrics.CounterTrack
	for _, tr := range k.latreg.Trackers() {
		ws := tr.Windows()
		if len(ws) == 0 {
			continue
		}
		mk := func(q string, pick func(latency.WindowStat) int64) metrics.CounterTrack {
			t := metrics.CounterTrack{Name: tr.Name + " " + q + " (ms)", SPU: tr.SPU}
			for _, w := range ws {
				t.TS = append(t.TS, w.End)
				t.VS = append(t.VS, float64(pick(w))/float64(sim.Millisecond))
			}
			return t
		}
		out = append(out,
			mk("p50", func(w latency.WindowStat) int64 { return w.P50 }),
			mk("p99", func(w latency.WindowStat) int64 { return w.P99 }),
			mk("p999", func(w latency.WindowStat) int64 { return w.P999 }),
		)
	}
	return out
}

// Profile implements proc.Env: it returns the simulated-time profiler,
// or nil when profiling is off. Processes started on this kernel (and
// their forked children) register their threads with it.
func (k *Kernel) Profile() *profile.Profiler { return k.profiler }

// MetricNames maps every SPU id (kernel, shared, users) to its name for
// metric and trace exports.
func (k *Kernel) MetricNames() metrics.Names {
	names := make(metrics.Names, len(k.spus.All()))
	for _, s := range k.spus.All() {
		names[s.ID()] = s.Name()
	}
	return names
}

// WriteMetrics writes the registry as deterministic JSONL (one metric
// per line). A no-op when observability is off.
func (k *Kernel) WriteMetrics(w io.Writer) error {
	return k.metrics.WriteJSONL(w, k.MetricNames())
}

// WriteChromeTrace writes a Chrome trace-event file: one counter track
// per SPU from the sampled series, plus the decision tracer's events as
// instant markers when tracing is on. A no-op when observability is off.
func (k *Kernel) WriteChromeTrace(w io.Writer) error {
	return k.metrics.WriteChromeTraceFull(w, k.tracer.Events(), k.MetricNames(), k.profileSpanEvents(), k.latencyTracks())
}

// WriteProfile writes the profiler's buckets and interference matrix as
// a gzipped pprof profile (folded stacks spu;resource;state). An error
// when profiling is off.
func (k *Kernel) WriteProfile(w io.Writer) error {
	if k.profiler == nil {
		return fmt.Errorf("kernel: profiling is off (Options.Profiled)")
	}
	return k.profiler.WritePprof(w)
}

// WriteSpans writes the profiler's per-request spans as deterministic
// JSONL. An error when profiling is off.
func (k *Kernel) WriteSpans(w io.Writer) error {
	if k.profiler == nil {
		return fmt.Errorf("kernel: profiling is off (Options.Profiled)")
	}
	return k.profiler.WriteSpans(w)
}

// profileSpanEvents converts the profiler's spans into the metrics
// exporter's neutral form, so they render as duration slices (with flow
// arrows from disk service to the stall it resolved) in the Chrome
// trace. Nil when profiling is off.
func (k *Kernel) profileSpanEvents() []metrics.SpanEvent {
	if k.profiler == nil {
		return nil
	}
	spans := k.profiler.Spans()
	out := make([]metrics.SpanEvent, 0, len(spans))
	for _, s := range spans {
		ev := metrics.SpanEvent{
			Name:  s.Name,
			SPU:   s.SPU,
			Track: s.Proc,
			Start: s.Start,
			End:   s.End,
		}
		if s.Culprit != s.SPU {
			ev.Culprit = profile.SPUName(s.Culprit)
		}
		if s.Flow != 0 {
			ev.FlowID = s.Flow
			ev.FlowIn = true
		}
		if s.Name == "disk:service" {
			ev.FlowID = s.ID
			ev.FlowOut = true
		}
		out = append(out, ev)
	}
	return out
}

// UsageTable summarizes the sampled per-SPU series, or nil when
// observability is off.
func (k *Kernel) UsageTable() *stats.Table {
	if k.metrics == nil {
		return nil
	}
	return k.metrics.UsageTable(k.MetricNames())
}

// Injector returns the fault injector, or nil when no faults are
// scheduled.
func (k *Kernel) Injector() *fault.Injector { return k.injector }

// sampleTimeline records each user SPU's instantaneous CPU occupancy
// (in CPUs) and memory usage (in MB).
func (k *Kernel) sampleTimeline() {
	for _, s := range k.spus.Users() {
		k.timeline.Record("cpu "+s.Name(), s.Used(core.CPU))
		k.timeline.Record("mem "+s.Name(), s.Used(core.Memory)*mem.PageSize/float64(machine.MB))
	}
}

// Timeline returns the usage timeline, or nil when sampling is off.
func (k *Kernel) Timeline() *stats.Timeline { return k.timeline }

// Rebalance re-divides CPUs and memory among the currently active SPUs.
// Call it after creating, suspending, or waking SPUs at runtime (§2.1:
// "SPUs can be created and destroyed dynamically, or could be suspended
// ... and awakened at a later time"). CPUs re-home immediately (running
// foreign threads become loans, revoked at the next tick); memory
// entitlements shift and the reclaim path enforces the new limits.
func (k *Kernel) Rebalance() {
	k.sch.AssignHomes()
	k.mm.PolicyTick()
}

// applyDiskShares pushes every SPU's current share into the per-disk
// bandwidth schedulers: each disk weighs the SPUs with affinity to it.
// Share() equals the static weight until the controller retunes, so
// with the controller off this is the weight-driven division.
func (k *Kernel) applyDiskShares() {
	for i, d := range k.disks {
		for spu, di := range k.affinity {
			if di == i {
				d.SetShare(spu, k.spus.Get(spu).Share())
			}
		}
	}
}

// applyShares is the controller's actuator: after a retune it re-homes
// CPUs, re-divides memory (loans preserved, reclaim enforcing the new
// entitlements), and refreshes the disk bandwidth shares — one share
// value moving all three resources coherently.
func (k *Kernel) applyShares() {
	k.Rebalance()
	k.applyDiskShares()
}

// Controller returns the SLO feedback controller, or nil when the
// closed loop is off (Options.Control.Enabled).
func (k *Kernel) Controller() *control.Controller { return k.ctl }

// AdmitRequest asks admission control whether an arriving request on
// the SPU may start. Always true when the controller is off; a false
// return means the request is shed — the caller must record the shed
// into its latency tracker (censoring-correct accounting) and must not
// call RequestDone.
func (k *Kernel) AdmitRequest(spu core.SPUID) bool {
	if k.ctl == nil {
		return true
	}
	return k.ctl.Admit(spu)
}

// RequestDone releases an admitted request's in-flight slot. A no-op
// when the controller is off.
func (k *Kernel) RequestDone(spu core.SPUID) {
	if k.ctl != nil {
		k.ctl.Done(spu)
	}
}

// WriteController writes the controller's decision log as
// deterministic JSONL: one header line with the effective config and
// totals, then one line per action in decision order. An error when
// the controller is off.
func (k *Kernel) WriteController(w io.Writer) error {
	if k.ctl == nil {
		return fmt.Errorf("kernel: controller is off (Options.Control.Enabled)")
	}
	return control.WriteJSONL(w, k.ctl)
}

// Spawn registers and starts a process.
func (k *Kernel) Spawn(p *proc.Process) {
	if !k.booted {
		panic("kernel: Spawn before Boot")
	}
	k.Track(p)
	p.Start()
}

// Track registers a process with the kernel's liveness accounting
// without starting it. Only roots need tracking: children created with
// proc.Fork are covered by their parent's WaitChildren step.
func (k *Kernel) Track(p *proc.Process) {
	k.procs = append(k.procs, p)
	k.liveProcs++
	prev := p.OnExit
	p.OnExit = func(pp *proc.Process) {
		k.liveProcs--
		if prev != nil {
			prev(pp)
		}
	}
}

// Run drives the simulation until every tracked process has exited,
// then stops the daemons and drains residual events. It returns the
// completion time. It panics if the horizon passes with processes
// still alive — a deadlock in the machine model.
func (k *Kernel) Run() sim.Time {
	if !k.booted {
		panic("kernel: Run before Boot")
	}
	for k.liveProcs > 0 {
		if !k.eng.Step() {
			panic(fmt.Sprintf("kernel: event queue drained with %d processes alive", k.liveProcs))
		}
		if k.watchdog != nil {
			if err := k.watchdog.Observe(k.eng.Now(), k.eng.Dispatched()); err != nil {
				// Deliver by panic so a wedged simulation cannot also wedge
				// the host; the soak harness recovers the *TripError.
				panic(err)
			}
		}
		if k.eng.Now() > k.opts.Horizon {
			panic(fmt.Sprintf("kernel: horizon %v exceeded with %d processes alive", k.opts.Horizon, k.liveProcs))
		}
	}
	end := k.eng.Now()
	for _, t := range k.tickers {
		t.Stop()
	}
	k.eng.Run() // drain in-flight IO and daemons
	if k.auditor != nil {
		// One last sweep after the drain: the final exits (and any profile
		// conservation violations they record) happen after the last tick.
		k.auditor.CheckAll("final")
	}
	return end
}

// RunUntil advances the simulation to the given instant and stops,
// with daemons still armed and processes mid-flight — the
// checkpoint/replay entry point. Because the engine is deterministic,
// re-running a scenario to the same instant reproduces the same state;
// Snapshot proves it byte-for-byte. Run may be called afterwards to
// finish the run.
func (k *Kernel) RunUntil(t sim.Time) {
	if !k.booted {
		panic("kernel: RunUntil before Boot")
	}
	k.eng.RunUntil(t)
}

// Snapshot serialises the simulation state — clock, pending events,
// SPU resource levels, scheduler, memory, disks, injector, and process
// liveness — as a deterministic text document (internal/snap). Two runs
// of the same scenario paused at the same instant produce identical
// bytes; the soak harness and the replay tests compare digests to prove
// checkpoint/restore exactness.
func (k *Kernel) Snapshot() []byte {
	enc := snap.NewEncoder()
	k.eng.Snapshot(enc)
	enc.Section("spus")
	for _, u := range k.spus.All() {
		for r := core.Resource(0); r < core.NumResources; r++ {
			pre := fmt.Sprintf("spu%d_r%d", u.ID(), r)
			enc.Float(pre+"_ent", u.Entitled(r))
			enc.Float(pre+"_alw", u.Allowed(r))
			enc.Float(pre+"_used", u.Used(r))
		}
	}
	k.sch.Snapshot(enc)
	k.mm.Snapshot(enc)
	for _, d := range k.disks {
		d.Snapshot(enc)
	}
	if k.injector != nil {
		k.injector.Snapshot(enc)
	}
	k.locks.Snapshot(enc)
	if k.ctl != nil {
		k.ctl.Snapshot(enc)
	}
	enc.Section("kernel")
	enc.Int("live_procs", int64(k.liveProcs))
	return enc.Bytes()
}

// SimObsReport merges this kernel's engine telemetry into a simulator
// self-observability report, or returns nil when Options.SimObs was off
// and no collector attached an observer.
func (k *Kernel) SimObsReport(scenario string) *simobs.Report {
	if k.eng.Obs() == nil {
		return nil
	}
	return simobs.Build(scenario, k.eng)
}

// Auditor returns the invariant auditor, or nil when disabled.
func (k *Kernel) Auditor() *invariant.Auditor { return k.auditor }

// Locks returns the kernel lock table: every modelled lock — the §3.4
// fs semaphores plus the run-queue and frame-pool gates — in one
// namespace for reports, audits, and snapshots.
func (k *Kernel) Locks() *lock.Table { return k.locks }

// Watchdog returns the livelock watchdog, or nil when disabled.
func (k *Kernel) Watchdog() *invariant.Watchdog { return k.watchdog }

// pageout routes dirty evicted pages to backing store: cache pages to
// their file location, anonymous pages to the owning SPU's swap region,
// both scheduled under the shared SPU with charge-back (§3.3). Cache
// write-backs retry failed transfers inside the file system; failed
// swap writes report ok=false and the memory manager retries with
// backoff.
func (k *Kernel) pageout(p *mem.Page, done func(ok bool)) {
	if k.fsys.WritebackEvicted(p, func() { done(true) }) {
		return
	}
	di := k.swapDisk(p.SPU)
	k.disks[di].Submit(&disk.Request{
		Kind:    disk.Write,
		Sector:  k.swapSlot(di, mem.SectorsPerPage),
		Count:   mem.SectorsPerPage,
		SPU:     core.SharedID,
		Charges: []disk.Charge{{SPU: p.SPU, Sectors: mem.SectorsPerPage}},
		Done:    func(r *disk.Request) { done(!r.Failed) },
	})
}

// swapDisk picks the disk for an SPU's swap traffic: its affinity disk
// normally, or — when the controller's circuit breaker has that disk
// open (fault-degraded) — the nearest healthy disk. The swap region is
// a model, not a persistent placement, so degraded-mode routing moves
// reads and writes together until the breaker heals.
func (k *Kernel) swapDisk(spu core.SPUID) int {
	di := k.affinity[spu]
	if k.ctl != nil && k.ctl.BreakerOpen(di) {
		if fb := k.ctl.Fallback(di); fb >= 0 {
			k.metrics.Counter(metrics.KeyControlFailovers, spu).Inc()
			k.tracer.Emitf(trace.Control, fmt.Sprintf("spu%d", spu), "swap-failover",
				"disk%d breaker open, routing swap to disk%d", di, fb)
			return fb
		}
	}
	return di
}

// swapSlot hands out sectors in disk di's swap region — the top eighth
// of the disk — round-robin.
func (k *Kernel) swapSlot(di int, sectors int64) int64 {
	d := k.disks[di]
	total := d.Params().TotalSectors()
	region := total / 8
	base := total - region
	off := k.swapNext[di]
	if off+sectors > region {
		off = 0
	}
	k.swapNext[di] = off + sectors
	return base + off
}

// SwapIn implements proc.Env: clustered reads from the SPU's swap
// region, 4 pages per request.
func (k *Kernel) SwapIn(spu core.SPUID, pages int, done func()) {
	if pages <= 0 {
		done()
		return
	}
	di := k.swapDisk(spu)
	reqs := (pages + 3) / 4
	left := reqs
	for i := 0; i < reqs; i++ {
		n := 4
		if i == reqs-1 {
			n = pages - 4*(reqs-1)
		}
		count := n * mem.SectorsPerPage
		k.submitRetry(di, &disk.Request{
			Kind:   disk.Read,
			Sector: k.swapSlot(di, int64(count)),
			Count:  count,
			SPU:    spu,
			Done: func(*disk.Request) {
				left--
				if left == 0 {
					done()
				}
			},
		})
	}
}

// submitRetry issues a swap-region disk request, resubmitting transfers
// failed by an injected fault with exponential backoff under a
// deadline-aware retry budget (control.RetryPolicy). While the budget
// lasts the schedule matches the old unbounded loop exactly; once it is
// spent the request fails over to the circuit breaker's fallback disk
// (when one is healthy) or keeps retrying only at the bounded slow-lane
// cadence, so a long fault can no longer turn the swap path into a
// full-rate retry storm. The original Done callback only ever sees a
// successful request.
func (k *Kernel) submitRetry(di int, r *disk.Request) {
	budget := k.opts.Control.Retry.NewBudget()
	inner := r.Done
	r.Done = func(rr *disk.Request) {
		if rr.Failed {
			wait, degraded := budget.Next()
			if degraded {
				fb := -1
				if k.ctl != nil {
					fb = k.ctl.Fallback(di)
				}
				if fb >= 0 && fb != di {
					di = fb
					k.metrics.Counter(metrics.KeyControlFailovers, rr.SPU).Inc()
					k.tracer.Emitf(trace.Control, fmt.Sprintf("spu%d", rr.SPU), "swap-failover",
						"retry budget spent, failing over to disk%d", fb)
				} else {
					k.metrics.Counter(metrics.KeyControlClamped, rr.SPU).Inc()
					k.tracer.Emitf(trace.Control, fmt.Sprintf("spu%d", rr.SPU), "swap-slow-lane",
						"retry budget spent, no healthy fallback, retrying every %v", wait)
				}
			}
			k.metrics.Counter(metrics.KeySwapRetries, rr.SPU).Inc()
			k.metrics.Counter(metrics.KeySwapBackoffNS, rr.SPU).AddTime(wait)
			rr.Backoff += wait // profiled separately from genuine queueing
			k.tracer.Emitf(trace.Fault, fmt.Sprintf("spu%d", rr.SPU), "swap-retry",
				"%s of %d sectors failed, retrying in %v", rr.Kind, rr.Count, wait)
			k.eng.CallAfter(wait, "kernel.swap-retry", func() { k.disks[di].Submit(rr) })
			return
		}
		if inner != nil {
			inner(rr)
		}
	}
	k.disks[di].Submit(r)
}

package kernel

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/fs"
	"perfiso/internal/machine"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
)

// steadyObservedKernel is steadyKernel with the self-observability layer
// attached.
func steadyObservedKernel() *Kernel {
	k := New(machine.MemoryIsolation(), core.PIso, Options{SimObs: true})
	k.NewSPU("u1", 1)
	k.NewSPU("u2", 1)
	k.Boot()
	for i, spu := range []core.SPUID{core.FirstUserID, core.FirstUserID + 1} {
		for j := 0; j < 3; j++ {
			name := []string{"a0", "a1", "a2", "b0", "b1", "b2"}[i*3+j]
			k.Spawn(proc.New(k, spu, name, proc.Loop(1_000_000,
				proc.Compute{D: 2 * sim.Millisecond},
			)))
		}
	}
	k.Engine().RunUntil(4 * sim.Second)
	return k
}

// TestSimObsOffZeroAlloc is the off-path guard the tentpole promises:
// with SimObs off (the default, as in steadyKernel) the telemetry layer
// is a nil observer and the steady-state dispatch chain still runs at
// exactly zero allocations — identical to TestKernelDispatchZeroAlloc,
// restated here so a future simobs change that sneaks an allocation into
// the disabled path fails a test named after it.
func TestSimObsOffZeroAlloc(t *testing.T) {
	k := steadyKernel()
	if k.Engine().Obs() != nil {
		t.Fatal("default kernel has an observer attached")
	}
	eng := k.Engine()
	if avg := testing.AllocsPerRun(50, func() {
		eng.RunUntil(eng.Now() + 100*sim.Millisecond)
	}); avg != 0 {
		t.Fatalf("disabled simobs adds %v allocs per 100 ms window, want 0", avg)
	}
}

// TestSimObsKernelReport runs an observed kernel and checks the report
// sees the kernel's own machinery: the periodic classes, the split-out
// auditor sweep, and a sane census total.
func TestSimObsKernelReport(t *testing.T) {
	k := steadyObservedKernel()
	r := k.SimObsReport("steady")
	if r == nil {
		t.Fatal("SimObsReport returned nil with SimObs on")
	}
	if r.Events == 0 || r.Events != k.Engine().Dispatched() {
		t.Fatalf("report events %d, engine dispatched %d", r.Events, k.Engine().Dispatched())
	}
	counts := map[string]uint64{}
	for _, c := range r.Classes {
		counts[c.Name] = c.Count
	}
	// 4 simulated seconds: 400 ticks and 400 auditor sweeps (10 ms each),
	// 40 policy runs, 8 flushes.
	if counts["kernel.tick"] != 400 {
		t.Fatalf("kernel.tick census = %d, want 400 (census: %v)", counts["kernel.tick"], counts)
	}
	if counts["auditor.sweep"] != 400 {
		t.Fatalf("auditor.sweep census = %d, want 400", counts["auditor.sweep"])
	}
	if counts["sched.slice"] == 0 {
		t.Fatal("no sched.slice events in census")
	}
	if counts["kernel.mempolicy"] != 40 || counts["kernel.bdflush"] != 8 {
		t.Fatalf("policy/flush census = %d/%d", counts["kernel.mempolicy"], counts["kernel.bdflush"])
	}
	if r.Queue.Pushes == 0 {
		t.Fatal("queue telemetry empty")
	}
}

// TestSimObsResultsIdentical runs the same workload observed and dark
// and requires identical simulation outcomes — the observer must be
// read-only with respect to simulated time.
func TestSimObsResultsIdentical(t *testing.T) {
	run := func(obs bool) (sim.Time, uint64, float64) {
		k := New(machine.MemoryIsolation(), core.PIso, Options{SimObs: obs})
		u1 := k.NewSPU("u1", 1)
		k.NewSPU("u2", 2)
		k.Boot()
		k.Spawn(proc.New(k, core.FirstUserID, "a", proc.Loop(200,
			proc.Compute{D: 2 * sim.Millisecond},
		)))
		k.Spawn(proc.New(k, core.FirstUserID+1, "b", proc.Loop(100,
			proc.Compute{D: 1 * sim.Millisecond},
		)))
		k.Run()
		return k.Engine().Now(), k.Engine().Dispatched(), u1.Used(core.CPU)
	}
	nowOff, evOff, cpuOff := run(false)
	nowOn, evOn, cpuOn := run(true)
	if nowOff != nowOn {
		t.Fatalf("final time differs: off %v, on %v", nowOff, nowOn)
	}
	if cpuOff != cpuOn {
		t.Fatalf("CPU accounting differs: off %v, on %v", cpuOff, cpuOn)
	}
	// The observed run splits the coalesced tick+audit into two events,
	// so the dispatched count is higher — by exactly the sweep count.
	if evOn <= evOff {
		t.Fatalf("observed run dispatched %d <= dark run %d", evOn, evOff)
	}
}

// TestSimObsPerDiskDomains checks disk completions land in per-disk
// domains on a multi-disk machine doing real I/O.
func TestSimObsPerDiskDomains(t *testing.T) {
	k := New(machine.CPUIsolation(), core.PIso, Options{SimObs: true})
	u1 := k.NewSPU("u1", 1)
	u2 := k.NewSPU("u2", 1)
	k.SetAffinity(u1.ID(), 0)
	k.SetAffinity(u2.ID(), 1)
	k.Boot()
	for i, u := range []core.SPUID{u1.ID(), u2.ID()} {
		f := k.AffinityAllocator(u).NewFile("data", 256*1024, fs.Contiguous, 0)
		k.Spawn(proc.New(k, u, []string{"r1", "r2"}[i], proc.Loop(50,
			proc.Read{File: f, Off: 0, N: 64 * 1024},
		)))
	}
	k.Run()
	r := k.SimObsReport("two-disk")
	domains := map[string]bool{}
	for _, d := range r.Domains {
		domains[d] = true
	}
	if !domains["disk0"] || !domains["disk1"] {
		t.Fatalf("per-disk domains missing: %v", r.Domains)
	}
	var d0, d1 uint64
	for _, c := range r.Classes {
		switch c.Name {
		case "disk0.complete":
			d0 = c.Count
		case "disk1.complete":
			d1 = c.Count
		}
	}
	if d0 == 0 || d1 == 0 {
		t.Fatalf("disk completion census = %d/%d, want both nonzero", d0, d1)
	}
	if r.Cross == 0 {
		t.Fatal("no cross-domain schedules recorded on a two-disk write workload")
	}
	if r.MeanLookahead() <= 0 {
		t.Fatalf("mean lookahead = %v", r.MeanLookahead())
	}
}

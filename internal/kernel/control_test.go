package kernel

import (
	"bytes"
	"strings"
	"testing"

	"perfiso/internal/control"
	"perfiso/internal/core"
	"perfiso/internal/fault"
	"perfiso/internal/latency"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
)

// controlledScenario boots a kernel with the closed loop on and a
// synthetic hot tenant: a tracker fed a steady stream of requests ten
// times over threshold, so every window burns far past HighBurn and
// the controller keeps boosting the hot SPU out of the calm one's
// entitlement. A disk-slow fault trips the circuit breaker mid-run, so
// the snapshot covers breaker state too. Kernel tests cannot import
// the workload package (cycle), so the sensor is driven directly.
func controlledScenario(t *testing.T, extra func(o *Options)) *Kernel {
	t.Helper()
	plan, err := fault.ParsePlan("disk-slow:0:300ms:600ms:4")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		LatencyWindow: 100 * sim.Millisecond,
		Control:       control.Config{Enabled: true},
		Faults:        plan,
		MetricsPeriod: 100 * sim.Millisecond,
	}
	if extra != nil {
		extra(&opts)
	}
	k := New(smallMachine(), core.PIso, opts)
	hot := k.NewSPU("hot", 1)
	calm := k.NewSPU("calm", 1)
	k.Boot()
	tr := k.Latency().Tracker("hot", hot.ID(),
		latency.SLO{Threshold: 5 * sim.Millisecond, Target: 0.95})
	k.Engine().Every(20*sim.Millisecond, "test.misses", func() {
		tr.Record(k.Engine().Now(), 50*sim.Millisecond)
	})
	for _, id := range []core.SPUID{hot.ID(), calm.ID()} {
		k.Spawn(proc.New(k, id, "spin", []proc.Step{
			proc.Compute{D: 2 * sim.Second},
		}))
	}
	return k
}

// TestCheckpointMidRetuneDeterministic extends the checkpoint contract
// to the controller: two independent boots paused at the same instant
// — after retunes have displaced shares from weights, between ticks,
// with a breaker tripped — serialise to identical bytes. The share
// ledger, calm streaks, admission caps, carried burn, and breaker mask
// are all simulation state; none of it may depend on anything outside
// the event clock.
func TestCheckpointMidRetuneDeterministic(t *testing.T) {
	const at = 1030 * sim.Millisecond // off every tick and window boundary
	pause := func() ([]byte, *Kernel) {
		k := controlledScenario(t, nil)
		k.RunUntil(at)
		return k.Snapshot(), k
	}
	s1, k1 := pause()
	s2, _ := pause()
	if st := k1.Controller().Stat; st.Retunes == 0 || st.Boosts == 0 {
		t.Fatalf("scenario never retuned, checkpoint proves nothing: %+v", st)
	}
	hot := k1.SPUs().ActiveUsers()[0]
	if hot.Share() <= hot.Weight() {
		t.Fatalf("hot SPU share %g not boosted past weight %g at pause",
			hot.Share(), hot.Weight())
	}
	if len(s1) == 0 {
		t.Fatal("empty snapshot")
	}
	if !bytes.Equal(s1, s2) {
		t.Fatalf("mid-retune checkpoints diverge:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", s1, s2)
	}
}

// TestAuditorFlagsSabotagedRetune is the negative control for the
// controller's invariant laws: a clean closed-loop run collects zero
// violations, and a sabotaged share ledger — conservation broken by
// inflating one share, the floor broken by crushing another — is
// flagged by the very next audit pass. If this test fails, the
// zero-violations claim in the experiment results is vacuous.
func TestAuditorFlagsSabotagedRetune(t *testing.T) {
	k := controlledScenario(t, func(o *Options) { o.AuditCollect = true })
	k.RunUntil(sim.Second)
	if vs := k.Auditor().Violations(); len(vs) != 0 {
		t.Fatalf("clean run collected %d violations, first: %v", len(vs), vs[0])
	}
	users := k.SPUs().ActiveUsers()
	hot, calm := users[0], users[1]
	hot.SetShare(hot.Share() + 1)       // breaks Σshare = Σweight
	calm.SetShare(0.01 * calm.Weight()) // breaks the minimum-guarantee floor
	k.Auditor().CheckAll("sabotage")
	vs := k.Auditor().Violations()
	if len(vs) == 0 {
		t.Fatal("auditor accepted a sabotaged share ledger")
	}
	var conservation, floor bool
	for _, v := range vs {
		if v.Check != "control" {
			continue
		}
		if strings.Contains(v.Message, "conservation") {
			conservation = true
		}
		if strings.Contains(v.Message, "floor") {
			floor = true
		}
	}
	if !conservation {
		t.Errorf("no conservation violation among: %v", vs)
	}
	if !floor {
		t.Errorf("no floor violation among: %v", vs)
	}
}

package kernel

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/machine"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
)

// steadyKernel boots a machine with two compute-bound SPUs whose
// processes run far longer than any measurement window, then advances
// past the warm-up transient so pools, runqueues, and metrics series
// are all at steady state.
func steadyKernel() *Kernel {
	k := New(machine.MemoryIsolation(), core.PIso, Options{})
	k.NewSPU("u1", 1)
	k.NewSPU("u2", 1)
	k.Boot()
	for i, spu := range []core.SPUID{core.FirstUserID, core.FirstUserID + 1} {
		for j := 0; j < 3; j++ {
			name := []string{"a0", "a1", "a2", "b0", "b1", "b2"}[i*3+j]
			k.Spawn(proc.New(k, spu, name, proc.Loop(1_000_000,
				proc.Compute{D: 2 * sim.Millisecond},
			)))
		}
	}
	k.Engine().RunUntil(4 * sim.Second)
	return k
}

// BenchmarkKernelDispatch measures the full steady-state kernel
// dispatch chain — scheduler slices and preemptions, the coalesced
// tick+audit, the memory policy tick, fs flush, and metrics — per
// simulated 100 ms window. The companion test below enforces the
// allocs/op == 0 guarantee; the benchmark reports it.
func BenchmarkKernelDispatch(b *testing.B) {
	k := steadyKernel()
	eng := k.Engine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunUntil(eng.Now() + 100*sim.Millisecond)
	}
}

// The kernel's periodic machinery must not allocate at steady state:
// once the event pool and scheduler scratch buffers are warm, a
// compute-bound window of slices, preemptions, ticks, policy runs, and
// flush sweeps runs entirely on recycled memory. This is the
// benchmark-enforced half of the fast-core claim; without it, alloc
// regressions in the dispatch chain would only show up as gradual
// slowdowns in pisobench.
func TestKernelDispatchZeroAlloc(t *testing.T) {
	k := steadyKernel()
	eng := k.Engine()
	if avg := testing.AllocsPerRun(50, func() {
		eng.RunUntil(eng.Now() + 100*sim.Millisecond)
	}); avg != 0 {
		t.Fatalf("steady-state kernel dispatch allocates %v allocs per 100 ms window, want 0", avg)
	}
}

package kernel

import (
	"bytes"
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/fault"
	"perfiso/internal/fs"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
)

// faultedScenario boots a two-SPU machine running forked compile-like
// trees under a fault plan that exercises every injector path, so the
// snapshot covers scheduler loans, memory pressure, disk queues, and
// active faults.
func faultedScenario(t *testing.T) *Kernel {
	t.Helper()
	plan, err := fault.ParsePlan(
		"disk-slow:0:200ms:600ms:3,cpu-off:1:300ms:500ms,mem-loss:0:400ms:400ms:0.25")
	if err != nil {
		t.Fatal(err)
	}
	k := New(smallMachine(), core.PIso, Options{Faults: plan, MetricsPeriod: 100 * sim.Millisecond})
	a := k.NewSPU("a", 1)
	b := k.NewSPU("b", 1)
	k.Boot()
	for _, id := range []core.SPUID{a.ID(), b.ID()} {
		al := k.AffinityAllocator(id)
		f := al.NewFile("data", 256*1024, fs.Contiguous, 0)
		child := func(name string) *proc.Process {
			return proc.New(k, id, name, proc.Seq(
				[]proc.Step{proc.Touch{Pages: 400}},
				proc.Loop(25,
					proc.Read{File: f, Off: 0, N: 64 * 1024},
					proc.Compute{D: 30 * sim.Millisecond},
					proc.Write{File: f, Off: 0, N: 16 * 1024},
				),
			))
		}
		root := proc.New(k, id, "make", []proc.Step{
			proc.Fork{Child: child("cc1")},
			proc.Fork{Child: child("cc2")},
			proc.WaitChildren{},
		})
		k.Spawn(root)
	}
	return k
}

// TestCheckpointDeterministic proves the checkpoint itself is exact:
// two independent boots of the same scenario paused at the same instant
// serialise to identical bytes, even mid-fault with loans outstanding.
func TestCheckpointDeterministic(t *testing.T) {
	const at = 450 * sim.Millisecond
	k1 := faultedScenario(t)
	k1.RunUntil(at)
	s1 := k1.Snapshot()
	k2 := faultedScenario(t)
	k2.RunUntil(at)
	s2 := k2.Snapshot()
	if len(s1) == 0 {
		t.Fatal("empty snapshot")
	}
	if !bytes.Equal(s1, s2) {
		t.Fatalf("checkpoints diverge:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", s1, s2)
	}
}

// TestCheckpointResumeByteIdentical proves restore-by-replay is lossless:
// a run paused at a checkpoint and resumed finishes in exactly the state
// — snapshot bytes and experiment usage table — of a run that never
// paused.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	straight := faultedScenario(t)
	straight.Run()
	wantSnap := straight.Snapshot()
	wantTable := straight.UsageTable().String()

	resumed := faultedScenario(t)
	resumed.RunUntil(250 * sim.Millisecond) // mid-fault checkpoint
	if resumed.Engine().Now() != 250*sim.Millisecond {
		t.Fatalf("paused at %v", resumed.Engine().Now())
	}
	resumed.RunUntil(450 * sim.Millisecond) // a second checkpoint, then finish
	resumed.Run()
	gotSnap := resumed.Snapshot()
	gotTable := resumed.UsageTable().String()

	if !bytes.Equal(wantSnap, gotSnap) {
		t.Errorf("final snapshots diverge:\n--- straight ---\n%s\n--- resumed ---\n%s", wantSnap, gotSnap)
	}
	if wantTable != gotTable {
		t.Errorf("usage tables diverge:\n--- straight ---\n%s\n--- resumed ---\n%s", wantTable, gotTable)
	}
}

// TestSnapshotEvolves is the counter-check: the snapshot must actually
// depend on simulation state, not collapse to a constant.
func TestSnapshotEvolves(t *testing.T) {
	k := faultedScenario(t)
	k.RunUntil(100 * sim.Millisecond)
	s1 := k.Snapshot()
	k.RunUntil(300 * sim.Millisecond)
	s2 := k.Snapshot()
	if bytes.Equal(s1, s2) {
		t.Fatal("snapshot did not change as the simulation advanced")
	}
}

// TestRunUntilBeforeBootPanics mirrors the Run precondition.
func TestRunUntilBeforeBootPanics(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.RunUntil(sim.Second)
}

package kernel

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/fs"
	"perfiso/internal/machine"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
)

func smallMachine() machine.Config {
	cfg := machine.MemoryIsolation() // 4 CPUs, 16 MB, 2 fast disks
	return cfg
}

func TestBootAndRunEmpty(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{})
	k.NewSPU("u1", 1)
	k.Boot()
	p := proc.New(k, core.FirstUserID, "hello", []proc.Step{proc.Compute{D: 10 * sim.Millisecond}})
	k.Spawn(p)
	end := k.Run()
	if end < 10*sim.Millisecond {
		t.Fatalf("finished at %v", end)
	}
	if p.State() != proc.Exited {
		t.Fatal("process did not exit")
	}
}

func TestRunBeforeBootPanics(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Run()
}

func TestSpawnBeforeBootPanics(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Spawn(proc.New(k, core.FirstUserID, "x", nil))
}

func TestDoubleBootPanics(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{})
	k.Boot()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Boot()
}

func TestSchemeSelectsDiskScheduler(t *testing.T) {
	cases := map[core.Scheme]string{
		core.SMP:  "Pos",
		core.Quo:  "Iso",
		core.PIso: "PIso",
	}
	for scheme, want := range cases {
		k := New(smallMachine(), scheme, Options{})
		if got := k.Disk(0).Scheduler().Name(); got != want {
			t.Errorf("scheme %v: disk scheduler %q, want %q", scheme, got, want)
		}
	}
}

func TestDiskSchedOverride(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{DiskSched: "Pos"})
	if k.Disk(0).Scheduler().Name() != "Pos" {
		t.Fatal("override ignored")
	}
}

func TestUnknownDiskSchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(smallMachine(), core.PIso, Options{DiskSched: "elevator"})
}

func TestSchemeSetsSPUPolicy(t *testing.T) {
	k := New(smallMachine(), core.Quo, Options{})
	s := k.NewSPU("u", 1)
	if s.Policy() != core.ShareNone {
		t.Fatal("Quo SPU should be ShareNone")
	}
}

func TestInodeMutexOption(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{InodeMutex: true})
	if k.FS().RootInode.Mode() != fs.SemMutex {
		t.Fatal("InodeMutex option ignored")
	}
	k2 := New(smallMachine(), core.PIso, Options{})
	if k2.FS().RootInode.Mode() != fs.SemRW {
		t.Fatal("default inode lock should be readers-writer (the fixed kernel)")
	}
}

func TestKernelMemoryChargedAtBoot(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{})
	if got := k.SPUs().Kernel().Used(core.Memory); got != 1024 { // 4 MB
		t.Fatalf("kernel pages = %g, want 1024", got)
	}
}

func TestEntitlementsExcludeKernelMemory(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{})
	a := k.NewSPU("a", 1)
	b := k.NewSPU("b", 1)
	k.Boot()
	// 16 MB = 4096 pages, minus 1024 kernel pages = 3072, split 2 ways.
	if a.Entitled(core.Memory) != 1536 || b.Entitled(core.Memory) != 1536 {
		t.Fatalf("entitled = %g, %g", a.Entitled(core.Memory), b.Entitled(core.Memory))
	}
}

func TestAffinityDefaultsRoundRobin(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{}) // 2 disks
	a := k.NewSPU("a", 1)
	b := k.NewSPU("b", 1)
	c := k.NewSPU("c", 1)
	if k.AffinityDisk(a.ID()) != k.Disk(0) || k.AffinityDisk(b.ID()) != k.Disk(1) || k.AffinityDisk(c.ID()) != k.Disk(0) {
		t.Fatal("round-robin affinity wrong")
	}
	k.SetAffinity(c.ID(), 1)
	if k.AffinityDisk(c.ID()) != k.Disk(1) {
		t.Fatal("SetAffinity ignored")
	}
}

func TestSetAffinityOutOfRangePanics(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{})
	s := k.NewSPU("a", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.SetAffinity(s.ID(), 99)
}

func TestForkedTreeRunsToCompletion(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{})
	s := k.NewSPU("u", 1)
	k.Boot()
	al := k.AffinityAllocator(s.ID())
	f := al.NewFile("data", 256*1024, fs.Contiguous, 0)
	child := func(name string) *proc.Process {
		return proc.New(k, s.ID(), name, proc.Seq(
			[]proc.Step{proc.Touch{Pages: 50}},
			proc.Loop(3,
				proc.Lookup{},
				proc.Read{File: f, Off: 0, N: 64 * 1024},
				proc.Compute{D: 20 * sim.Millisecond},
				proc.Write{File: f, Off: 0, N: 16 * 1024},
				proc.Meta{File: f},
			),
		))
	}
	root := proc.New(k, s.ID(), "make", []proc.Step{
		proc.Fork{Child: child("cc1")},
		proc.Fork{Child: child("cc2")},
		proc.WaitChildren{},
	})
	k.Spawn(root)
	end := k.Run()
	if end <= 60*sim.Millisecond {
		t.Fatalf("tree finished suspiciously fast: %v", end)
	}
	if root.State() != proc.Exited {
		t.Fatal("root did not exit")
	}
	if k.FS().Stat.MetaWrites != 6 {
		t.Fatalf("meta writes = %d, want 6", k.FS().Stat.MetaWrites)
	}
}

func TestSwapInIssuesClusteredReads(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{})
	s := k.NewSPU("u", 1)
	k.Boot()
	var done bool
	k.SwapIn(s.ID(), 10, func() { done = true }) // 10 pages -> 3 requests
	// Pump the engine without processes: use the engine directly.
	k.Engine().RunUntil(k.Engine().Now() + sim.Second)
	if !done {
		t.Fatal("swap-in never completed")
	}
	st := k.Disk(0).PerSPU[s.ID()]
	if st == nil || st.Requests != 3 {
		t.Fatalf("swap-in requests = %v, want 3", st)
	}
	if done2 := false; true {
		k.SwapIn(s.ID(), 0, func() { done2 = true })
		if !done2 {
			t.Fatal("zero-page swap-in should complete synchronously")
		}
	}
}

func TestMemoryPressureEndToEnd(t *testing.T) {
	// Two Quo SPUs on the 16 MB machine; one runs a job whose working
	// set exceeds its quota and must swap; the other stays idle. Under
	// PIso the same job gets idle memory lent and swaps less.
	run := func(scheme core.Scheme) (sim.Time, int64) {
		k := New(smallMachine(), scheme, Options{})
		a := k.NewSPU("a", 1)
		k.NewSPU("b", 1)
		k.Boot()
		p := proc.New(k, a.ID(), "big", proc.Seq(
			[]proc.Step{proc.Touch{Pages: 2200}}, // > 1536 quota
			proc.Loop(10, proc.Compute{D: 10 * sim.Millisecond}),
		))
		k.Spawn(p)
		k.Run()
		return p.ResponseTime(), p.SwapIns
	}
	quoTime, quoSwaps := run(core.Quo)
	pisoTime, pisoSwaps := run(core.PIso)
	if quoSwaps == 0 {
		t.Fatal("Quo run never swapped despite oversized working set")
	}
	if pisoSwaps >= quoSwaps {
		t.Fatalf("PIso swapped as much as Quo (%d vs %d): lending broken", pisoSwaps, quoSwaps)
	}
	if pisoTime >= quoTime {
		t.Fatalf("PIso (%v) not faster than Quo (%v) under memory pressure", pisoTime, quoTime)
	}
}

package kernel

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/metrics"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
)

// metricsRun boots a small PIso machine with observability on, runs a
// lender/borrower workload, and returns the kernel.
func metricsRun(t *testing.T, opts Options) *Kernel {
	t.Helper()
	k := New(smallMachine(), core.PIso, opts)
	a := k.NewSPU("a", 1)
	b := k.NewSPU("b", 1)
	k.Boot()
	for i := 0; i < 4; i++ {
		k.Spawn(proc.New(k, b.ID(), "hog", []proc.Step{proc.Compute{D: 1 * sim.Second}}))
	}
	k.Spawn(proc.New(k, a.ID(), "blinker", proc.Seq(
		proc.Loop(5, proc.Compute{D: 10 * sim.Millisecond}, proc.Sleep{D: 90 * sim.Millisecond}),
	)))
	k.Run()
	return k
}

// Observability is off by default and a kernel without it exports
// nothing — the same contract as tracing.
func TestMetricsOffByDefault(t *testing.T) {
	k := New(smallMachine(), core.PIso, Options{})
	if k.Metrics() != nil {
		t.Fatal("metrics should be off by default")
	}
	var buf bytes.Buffer
	if err := k.WriteMetrics(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("WriteMetrics on metrics-off kernel wrote %d bytes, err %v", buf.Len(), err)
	}
	if k.UsageTable() != nil {
		t.Fatal("UsageTable on metrics-off kernel")
	}
}

// A booted kernel samples every per-SPU series on the simulation clock
// and the scheduler's loan activity lands in the registry.
func TestKernelRegistersAndSamplesSeries(t *testing.T) {
	k := metricsRun(t, Options{MetricsPeriod: 50 * sim.Millisecond})
	reg := k.Metrics()
	if reg == nil {
		t.Fatal("metrics not enabled")
	}
	for _, spu := range []core.SPUID{core.FirstUserID, core.FirstUserID + 1} {
		for _, name := range []string{
			metrics.KeyCPUUsed, metrics.KeyCPUTime, metrics.KeyMemResident,
			metrics.KeyMemLoaned, metrics.KeyDiskQueue, metrics.KeyDiskSectors,
		} {
			s := reg.FindSeries(name, spu)
			if s == nil {
				t.Fatalf("series %s not registered for spu%d", name, spu)
			}
			if s.Len() == 0 {
				t.Fatalf("series %s spu%d never sampled", name, spu)
			}
		}
	}
	// b's hogs outnumber its CPUs, so it borrows from a: loans must be
	// counted and cpu.time must accumulate for both SPUs.
	if reg.FindCounter(metrics.KeySchedLoans, core.FirstUserID+1).Value() == 0 {
		t.Fatal("no loans counted for the overloaded SPU")
	}
	ct := reg.FindSeries(metrics.KeyCPUTime, core.FirstUserID+1)
	if _, v := ct.At(ct.Len() - 1); v <= 0 {
		t.Fatal("cpu.time series never advanced")
	}
}

// The JSONL and Chrome-trace exports of a real run are valid and carry
// one track per SPU.
func TestKernelExports(t *testing.T) {
	k := metricsRun(t, Options{MetricsPeriod: 50 * sim.Millisecond, TraceCapacity: 4096})
	var jl bytes.Buffer
	if err := k.WriteMetrics(&jl); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(jl.String()), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("invalid JSONL line: %s", line)
		}
	}
	if !strings.Contains(jl.String(), `"spu_name":"a"`) || !strings.Contains(jl.String(), `"spu_name":"b"`) {
		t.Fatalf("JSONL missing SPU names:\n%.400s", jl.String())
	}

	var ct bytes.Buffer
	if err := k.WriteChromeTrace(&ct); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(ct.Bytes()) {
		t.Fatal("chrome trace is not valid JSON")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(ct.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	tracks := map[string]bool{}
	var instants int
	for _, e := range doc.TraceEvents {
		if e["ph"] == "M" {
			tracks[e["args"].(map[string]any)["name"].(string)] = true
		}
		if e["ph"] == "i" {
			instants++
		}
	}
	for _, want := range []string{"machine", "a", "b"} {
		if !tracks[want] {
			t.Fatalf("missing process track %q in %v", want, tracks)
		}
	}
	if instants == 0 {
		t.Fatal("tracer events did not become instant markers")
	}

	tbl := k.UsageTable()
	if tbl == nil || tbl.NumRows() != 2 {
		t.Fatalf("usage table rows = %v", tbl)
	}
	tl := k.Metrics().UsageTimeline(k.MetricNames())
	if len(tl.Labels()) != 6 { // cpu/mem/disk x 2 SPUs
		t.Fatalf("timeline labels = %v", tl.Labels())
	}
}

// Turning metrics on must not change simulation results: sampling only
// reads machine state. Identical workloads with and without the
// registry finish at the identical simulated instant.
func TestMetricsDoNotPerturbSimulation(t *testing.T) {
	run := func(opts Options) sim.Time {
		k := New(smallMachine(), core.PIso, opts)
		a := k.NewSPU("a", 1)
		b := k.NewSPU("b", 1)
		k.Boot()
		for i := 0; i < 4; i++ {
			k.Spawn(proc.New(k, b.ID(), "hog", []proc.Step{proc.Compute{D: 300 * sim.Millisecond}}))
		}
		k.Spawn(proc.New(k, a.ID(), "worker", []proc.Step{
			proc.Touch{Pages: 64}, proc.Compute{D: 100 * sim.Millisecond},
		}))
		return k.Run()
	}
	off := run(Options{})
	on := run(Options{MetricsPeriod: 10 * sim.Millisecond})
	if off != on {
		t.Fatalf("metrics perturbed the simulation: makespan %v (off) vs %v (on)", off, on)
	}
}

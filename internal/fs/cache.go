package fs

import (
	"perfiso/internal/core"
	"perfiso/internal/mem"
)

// cacheKey identifies one page of one file.
type cacheKey struct {
	file *File
	idx  int64
}

// CachePage is one buffer-cache entry. It implements mem.Owner so the
// memory manager can reclaim cache pages under memory pressure, exactly
// like process pages — the paper counts the file buffer cache against
// the owning SPU's memory (§3.2).
type CachePage struct {
	fs   *FileSystem
	file *File
	idx  int64

	page    *mem.Page
	valid   bool // contents present
	dirty   bool
	io      bool // read or allocation in flight
	dirtier core.SPUID
	waiters []func()
}

// PageEvicted implements mem.Owner: the cache forgets the page; future
// reads fault it back in from disk. Dirty contents are written back by
// the memory manager's pageout path before the frame is reused.
func (cp *CachePage) PageEvicted(p *mem.Page) {
	if cp.dirty {
		cp.fs.dirtyCount--
		cp.dirty = false
	}
	cp.page = nil
	cp.valid = false
	delete(cp.fs.cache, cacheKey{cp.file, cp.idx})
}

// File returns the file this cache page belongs to.
func (cp *CachePage) File() *File { return cp.file }

// Index returns the page index within the file.
func (cp *CachePage) Index() int64 { return cp.idx }

// Sector returns the first disk sector backing this page.
func (cp *CachePage) Sector() int64 { return cp.file.SectorOfPage(cp.idx) }

// notify wakes everything waiting for this page to become valid.
func (cp *CachePage) notify() {
	ws := cp.waiters
	cp.waiters = nil
	for _, w := range ws {
		w()
	}
}

// Package fs implements the file-system layer of the simulated machine:
// extent-mapped files on simulated disks, a page-grain buffer cache that
// draws its frames from the memory manager (so cache pages count against
// SPU memory limits, as §3.2 requires), sequential read-ahead, delayed
// writes flushed in batches under the shared SPU (§3.3), and the kernel
// semaphores of §3.4 (the inode lock whose granularity the paper had to
// fix to keep isolation working).
package fs

import "perfiso/internal/sim"

// SemMode selects the semaphore flavour of §3.4.
type SemMode int

const (
	// SemMutex is a plain mutual-exclusion semaphore: every acquisition
	// is exclusive. This is the original IRIX 5.3 inode lock.
	SemMutex SemMode = iota
	// SemRW is a multiple-readers/one-writer semaphore, the fix the
	// paper applied because "the dominant operation is lookups".
	SemRW
)

// String names the mode.
func (m SemMode) String() string {
	if m == SemMutex {
		return "mutex"
	}
	return "rw"
}

// Semaphore is a simulated kernel semaphore with FIFO queuing. Holders
// specify how long they keep it; contention shows up as queueing delay —
// the "additional stall time" of §3.4.
type Semaphore struct {
	eng  *sim.Engine
	mode SemMode

	readers int
	writer  bool
	queue   []semWaiter

	// Contention statistics.
	Acquisitions int64
	Contended    int64    // acquisitions that had to queue
	WaitTotal    sim.Time // total time spent queued
}

type semWaiter struct {
	shared bool
	hold   sim.Time
	fn     func()
	since  sim.Time
}

// NewSemaphore creates a semaphore in the given mode.
func NewSemaphore(eng *sim.Engine, mode SemMode) *Semaphore {
	return &Semaphore{eng: eng, mode: mode}
}

// Mode returns the semaphore's mode.
func (s *Semaphore) Mode() SemMode { return s.mode }

// Acquire requests the semaphore for hold simulated time, shared if the
// caller is a reader (only meaningful in SemRW mode; under SemMutex all
// acquisitions are exclusive). fn runs once the semaphore is held; the
// semaphore releases itself automatically after hold.
func (s *Semaphore) Acquire(shared bool, hold sim.Time, fn func()) {
	if s.mode == SemMutex {
		shared = false
	}
	s.Acquisitions++
	w := semWaiter{shared: shared, hold: hold, fn: fn, since: s.eng.Now()}
	if s.canGrant(w) && len(s.queue) == 0 {
		s.grant(w)
		return
	}
	s.Contended++
	s.queue = append(s.queue, w)
}

// canGrant reports whether the waiter could enter right now.
func (s *Semaphore) canGrant(w semWaiter) bool {
	if s.writer {
		return false
	}
	if w.shared {
		return true
	}
	return s.readers == 0
}

// grant admits a waiter and schedules its release.
func (s *Semaphore) grant(w semWaiter) {
	s.WaitTotal += s.eng.Now() - w.since
	if w.shared {
		s.readers++
	} else {
		s.writer = true
	}
	w.fn()
	s.eng.CallAfter(w.hold, "sem.release", func() { s.release(w.shared) })
}

// release exits one holder and admits queued waiters FIFO (readers may
// batch; a writer at the head blocks later readers — no starvation).
func (s *Semaphore) release(shared bool) {
	if shared {
		s.readers--
		if s.readers < 0 {
			panic("fs: semaphore reader underflow")
		}
	} else {
		if !s.writer {
			panic("fs: semaphore writer underflow")
		}
		s.writer = false
	}
	for len(s.queue) > 0 && s.canGrant(s.queue[0]) {
		w := s.queue[0]
		s.queue = s.queue[1:]
		s.grant(w)
	}
}

// QueueLen returns the number of queued waiters.
func (s *Semaphore) QueueLen() int { return len(s.queue) }

// MeanWait returns the average queueing delay per acquisition.
func (s *Semaphore) MeanWait() sim.Time {
	if s.Acquisitions == 0 {
		return 0
	}
	return s.WaitTotal / sim.Time(s.Acquisitions)
}

// Package fs implements the file-system layer of the simulated machine:
// extent-mapped files on simulated disks, a page-grain buffer cache that
// draws its frames from the memory manager (so cache pages count against
// SPU memory limits, as §3.2 requires), sequential read-ahead, delayed
// writes flushed in batches under the shared SPU (§3.3), and the kernel
// semaphores of §3.4 (the inode lock whose granularity the paper had to
// fix to keep isolation working).
//
// The semaphores themselves are internal/lock.Lock instances — the
// general kernel-lock model with per-SPU ledgers and interference
// attribution — of which the fs locks were the original ad-hoc
// prototypes. This file keeps the §3.4 naming.
package fs

import "perfiso/internal/lock"

// SemMode selects the semaphore flavour of §3.4.
type SemMode = lock.Mode

const (
	// SemMutex is a plain mutual-exclusion semaphore: every acquisition
	// is exclusive. This is the original IRIX 5.3 inode lock.
	SemMutex = lock.Mutex
	// SemRW is a multiple-readers/one-writer semaphore, the fix the
	// paper applied because "the dominant operation is lookups".
	SemRW = lock.RW
)

package fs

import (
	"testing"

	"perfiso/internal/sim"
)

func TestPageInsertDefaultsAndReconfigure(t *testing.T) {
	r := newRig(1000)
	if r.fs.PageInsertLocks().Len() != DefaultPageInsertStripes {
		t.Fatalf("default stripes = %d", r.fs.PageInsertLocks().Len())
	}
	r.fs.SetPageInsertStripes(1)
	if r.fs.PageInsertLocks().Len() != 1 {
		t.Fatal("reconfigure failed")
	}
	r.fs.SetPageInsertStripes(0) // coerces to 1
	if r.fs.PageInsertLocks().Len() != 1 {
		t.Fatal("zero stripes should coerce to 1")
	}
}

func TestPageInsertLockTakenOnInsertions(t *testing.T) {
	r := newRig(1000)
	f := r.al.NewFile("f", 64*1024, Contiguous, 0) // 16 pages
	r.fs.ReadAheadPages = 0
	r.fs.Read(spuA, f, 0, 64*1024, func() {})
	r.eng.Run()
	acq, _ := r.fs.PageInsertContention()
	if acq != 16 {
		t.Fatalf("insert-lock acquisitions = %d, want one per inserted page", acq)
	}
	// Warm reads insert nothing.
	r.fs.Read(spuA, f, 0, 64*1024, func() {})
	r.eng.Run()
	if acq2, _ := r.fs.PageInsertContention(); acq2 != acq {
		t.Fatal("warm read took the insert lock")
	}
}

func TestCoarsePageInsertLockContends(t *testing.T) {
	// With one stripe and a long hold, concurrent insertions from two
	// files queue on the lock; with many stripes they do not.
	run := func(stripes int) sim.Time {
		r := newRig(4000)
		r.fs.SetPageInsertStripes(stripes)
		r.fs.PageInsertHold = 500 * sim.Microsecond
		r.fs.ReadAheadPages = 0
		f1 := r.al.NewFile("f1", 256*1024, Contiguous, 0)
		f2 := r.al.NewFile("f2", 256*1024, Contiguous, 0)
		r.fs.Read(spuA, f1, 0, 256*1024, func() {})
		r.fs.Read(spuB, f2, 0, 256*1024, func() {})
		r.eng.Run()
		_, wait := r.fs.PageInsertContention()
		return wait
	}
	coarse := run(1)
	striped := run(64)
	if coarse <= striped {
		t.Fatalf("coarse lock wait %v not above striped %v", coarse, striped)
	}
	if coarse == 0 {
		t.Fatal("coarse lock saw no contention at all")
	}
}

func TestFileSeqDeterministic(t *testing.T) {
	r1 := newRig(100)
	r2 := newRig(100)
	a1 := r1.al.NewFile("x", 4096, Contiguous, 0)
	a2 := r2.al.NewFile("x", 4096, Contiguous, 0)
	if a1.seq != a2.seq {
		t.Fatal("file sequence numbers not reproducible")
	}
}

package fs

import (
	"testing"

	"perfiso/internal/sim"
)

func TestReadRetriesFailedTransfersWithBackoff(t *testing.T) {
	r := newRig(1000)
	f := r.al.NewFile("f", 64*1024, Contiguous, 0)
	r.d.SetFault(1.0, sim.NewRNG(3).Fork()) // every transfer fails
	done := sim.Time(-1)
	r.fs.Read(spuA, f, 0, 16*1024, func() { done = r.eng.Now() })
	// Heal the disk after 100 ms; the read must complete via retries.
	r.eng.CallAfter(100*sim.Millisecond, "heal", func() { r.d.SetFault(0, nil) })
	r.eng.Run()
	if done < 0 {
		t.Fatal("read never completed after the disk healed")
	}
	if done < 100*sim.Millisecond {
		t.Fatalf("read completed at %v while the disk was still failing", done)
	}
	if r.fs.Stat.Retries == 0 {
		t.Fatal("no retries recorded")
	}
	if r.d.Total.Failures == 0 {
		t.Fatal("disk recorded no failures")
	}
}

func TestMetaUpdateRetriesFailedWrite(t *testing.T) {
	r := newRig(1000)
	f := r.al.NewFile("f", 64*1024, Contiguous, 0)
	r.d.SetFault(1.0, sim.NewRNG(4).Fork())
	done := sim.Time(-1)
	r.fs.MetaUpdate(spuA, f, func() { done = r.eng.Now() })
	r.eng.CallAfter(50*sim.Millisecond, "heal", func() { r.d.SetFault(0, nil) })
	r.eng.Run()
	if done < 50*sim.Millisecond {
		t.Fatalf("meta write done at %v, want after the disk healed", done)
	}
	if r.fs.Stat.Retries == 0 {
		t.Fatal("no retries recorded")
	}
}

func TestFlushRetriesUntilCleanPagesStayConsistent(t *testing.T) {
	r := newRig(1000)
	f := r.al.NewFile("f", 64*1024, Contiguous, 0)
	r.fs.Write(spuA, f, 0, 32*1024, func() {})
	r.eng.Run()
	dirtyBefore := r.fs.DirtyPages()
	if dirtyBefore == 0 {
		t.Fatal("delayed write left nothing dirty")
	}
	r.d.SetFault(1.0, sim.NewRNG(5).Fork())
	r.fs.Flush()
	r.eng.CallAfter(60*sim.Millisecond, "heal", func() { r.d.SetFault(0, nil) })
	r.eng.Run()
	if got := r.fs.DirtyPages(); got != 0 {
		t.Fatalf("%d pages still dirty after flush retries", got)
	}
	if r.fs.Stat.Retries == 0 {
		t.Fatal("no retries recorded")
	}
}

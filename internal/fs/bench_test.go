package fs

import (
	"testing"

	"perfiso/internal/mem"
)

// BenchmarkWarmRead measures the cache-hit read path.
func BenchmarkWarmRead(b *testing.B) {
	r := newRig(4096)
	f := r.al.NewFile("f", 256*1024, Contiguous, 0)
	r.fs.Read(spuA, f, 0, 256*1024, func() {})
	r.eng.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.fs.Read(spuA, f, 0, 64*1024, func() {})
	}
}

// BenchmarkColdReadCycle measures the full miss path: read, evict,
// re-read, including disk events.
func BenchmarkColdReadCycle(b *testing.B) {
	r := newRig(4096)
	f := r.al.NewFile("f", 64*1024, Contiguous, 0)
	r.fs.ReadAheadPages = 0
	for i := 0; i < b.N; i++ {
		r.fs.Read(spuA, f, 0, 64*1024, func() {})
		r.eng.Run()
		for _, cp := range r.fs.cacheSnapshot() {
			p := cp.page
			cp.PageEvicted(p)
			r.mm.Free(p)
		}
	}
}

// BenchmarkFlush measures batching and submitting delayed writes.
func BenchmarkFlush(b *testing.B) {
	r := newRig(1 << 15)
	f := r.al.NewFile("f", 1<<20, Contiguous, 0)
	for i := 0; i < b.N; i++ {
		r.fs.Write(spuA, f, 0, 1<<20, func() {})
		r.fs.FlushTick()
		r.eng.Run()
	}
	_ = mem.PageSize
}

package fs

import (
	"testing"

	"perfiso/internal/lock"
	"perfiso/internal/sim"
)

// The kernel semaphore is now backed by internal/lock; these tests pin
// the fs-visible semantics (grant timing, fairness, stats) through the
// same aliases fs exposes.

func TestSemaphoreUncontendedIsImmediate(t *testing.T) {
	eng := sim.NewEngine()
	s := lock.New(eng, "t", SemMutex)
	var got bool
	s.Acquire(spuA, false, sim.Millisecond, func() { got = true })
	if !got {
		t.Fatal("uncontended acquire should grant synchronously")
	}
	if s.Contended != 0 {
		t.Fatal("uncontended acquire counted as contended")
	}
}

func TestMutexSerializesEverything(t *testing.T) {
	eng := sim.NewEngine()
	s := lock.New(eng, "t", SemMutex)
	var grants []sim.Time
	for i := 0; i < 3; i++ {
		s.Acquire(spuA, true, 10*sim.Millisecond, func() { grants = append(grants, eng.Now()) })
	}
	eng.Run()
	want := []sim.Time{0, 10 * sim.Millisecond, 20 * sim.Millisecond}
	for i, w := range want {
		if grants[i] != w {
			t.Fatalf("grants = %v, want serialized %v (mutex mode ignores shared)", grants, want)
		}
	}
	if s.Contended != 2 {
		t.Fatalf("contended = %d", s.Contended)
	}
}

func TestRWAllowsConcurrentReaders(t *testing.T) {
	eng := sim.NewEngine()
	s := lock.New(eng, "t", SemRW)
	var grants []sim.Time
	for i := 0; i < 3; i++ {
		s.Acquire(spuA, true, 10*sim.Millisecond, func() { grants = append(grants, eng.Now()) })
	}
	eng.Run()
	for i, g := range grants {
		if g != 0 {
			t.Fatalf("reader %d granted at %v, want 0 (concurrent)", i, g)
		}
	}
}

func TestRWWriterExcludesReaders(t *testing.T) {
	eng := sim.NewEngine()
	s := lock.New(eng, "t", SemRW)
	var order []string
	s.Acquire(spuA, false, 10*sim.Millisecond, func() { order = append(order, "w") })
	s.Acquire(spuA, true, sim.Millisecond, func() { order = append(order, "r1") })
	s.Acquire(spuA, true, sim.Millisecond, func() { order = append(order, "r2") })
	eng.Run()
	if len(order) != 3 || order[0] != "w" {
		t.Fatalf("order = %v", order)
	}
	// Readers batch once the writer releases.
	if s.QueueLen() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestRWWriterNotStarvedByReaders(t *testing.T) {
	eng := sim.NewEngine()
	s := lock.New(eng, "t", SemRW)
	var writerAt sim.Time = -1
	s.Acquire(spuA, true, 10*sim.Millisecond, func() {})
	s.Acquire(spuA, false, sim.Millisecond, func() { writerAt = eng.Now() })
	// A reader arriving behind the queued writer must not jump it.
	var lateReaderAt sim.Time = -1
	s.Acquire(spuA, true, sim.Millisecond, func() { lateReaderAt = eng.Now() })
	eng.Run()
	if writerAt != 10*sim.Millisecond {
		t.Fatalf("writer at %v", writerAt)
	}
	if lateReaderAt < writerAt {
		t.Fatalf("late reader at %v jumped the writer at %v", lateReaderAt, writerAt)
	}
}

func TestSemaphoreWaitStats(t *testing.T) {
	eng := sim.NewEngine()
	s := lock.New(eng, "t", SemMutex)
	s.Acquire(spuA, false, 10*sim.Millisecond, func() {})
	s.Acquire(spuA, false, 10*sim.Millisecond, func() {})
	eng.Run()
	if s.MeanWait() != 5*sim.Millisecond { // (0 + 10ms)/2, diluted by the free grant
		t.Fatalf("MeanWait = %v", s.MeanWait())
	}
	if s.MeanContendedWait() != 10*sim.Millisecond { // the §3.4 stall, undiluted
		t.Fatalf("MeanContendedWait = %v", s.MeanContendedWait())
	}
	if s.Acquisitions != 2 {
		t.Fatalf("Acquisitions = %d", s.Acquisitions)
	}
}

func TestSemModeString(t *testing.T) {
	if SemMutex.String() != "mutex" || SemRW.String() != "rw" {
		t.Fatal("mode names")
	}
}

func TestLookupGoesThroughRootInode(t *testing.T) {
	r := newRig(100)
	var done int
	for i := 0; i < 4; i++ {
		r.fs.Lookup(spuA, func() { done++ })
	}
	r.eng.Run()
	if done != 4 {
		t.Fatalf("lookups completed = %d", done)
	}
	if r.fs.RootInode.Acquisitions != 4 {
		t.Fatalf("acquisitions = %d", r.fs.RootInode.Acquisitions)
	}
}

func TestInodeShardsRouteLookupsPrivately(t *testing.T) {
	r := newRig(100)
	r.fs.SetInodeShards(2)
	var done int
	r.fs.Lookup(spuA, func() { done++ })
	r.fs.Lookup(spuB, func() { done++ })
	r.eng.Run()
	if done != 2 {
		t.Fatalf("lookups completed = %d", done)
	}
	locks := r.fs.InodeLocks()
	if len(locks) != 2 {
		t.Fatalf("inode shards = %d", len(locks))
	}
	for i, l := range locks {
		if l.Acquisitions != 1 {
			t.Fatalf("shard %d acquisitions = %d, want 1 (per-SPU routing)", i, l.Acquisitions)
		}
	}
}

func TestMutexInodeSlowerThanRWUnderContention(t *testing.T) {
	// §3.4: with many concurrent lookups, the rw inode lock finishes
	// sooner than the mutex version.
	run := func(mode SemMode) sim.Time {
		eng := sim.NewEngine()
		s := lock.New(eng, "t", mode)
		var last sim.Time
		for i := 0; i < 50; i++ {
			s.Acquire(spuA, true, 100*sim.Microsecond, func() { last = eng.Now() })
		}
		eng.Run()
		return last
	}
	mutex, rw := run(SemMutex), run(SemRW)
	if rw >= mutex {
		t.Fatalf("rw lock (%v) not faster than mutex (%v) under read contention", rw, mutex)
	}
}

package fs

import (
	"fmt"

	"perfiso/internal/disk"
	"perfiso/internal/mem"
	"perfiso/internal/sim"
)

// Layout describes how a file's sectors are placed on disk.
type Layout int

const (
	// Contiguous lays the file out as one sequential extent — the large
	// copy files of §4.5, whose requests "are mostly contiguous".
	Contiguous Layout = iota
	// Scattered fragments the file across the disk — the pmake source
	// tree, whose requests "are not all contiguous as they access
	// multiple files".
	Scattered
)

// extent is a run of consecutive sectors.
type extent struct {
	start int64
	count int64
}

// File is one simulated file: a size and a sector map on one disk.
type File struct {
	Name string
	Size int64 // bytes
	Disk *disk.Disk

	extents    []extent
	metaSector int64 // where metadata rewrites land (a single sector)
	seq        int64 // allocation order; deterministic identity for hashing

	// lastReadEnd supports sequential-access detection for read-ahead.
	lastReadEnd int64
}

// NumPages returns the number of PageSize pages the file spans.
func (f *File) NumPages() int64 {
	return (f.Size + mem.PageSize - 1) / mem.PageSize
}

// SectorOfPage returns the first sector backing page index idx.
func (f *File) SectorOfPage(idx int64) int64 {
	want := idx * mem.SectorsPerPage
	for _, e := range f.extents {
		if want < e.count {
			return e.start + want
		}
		want -= e.count
	}
	panic(fmt.Sprintf("fs: page %d beyond file %q (%d bytes)", idx, f.Name, f.Size))
}

// contiguousWith reports whether page idx+1 directly follows page idx on
// disk, so the two can share one request.
func (f *File) contiguousWith(idx int64) bool {
	if idx+1 >= f.NumPages() {
		return false
	}
	return f.SectorOfPage(idx+1) == f.SectorOfPage(idx)+mem.SectorsPerPage
}

// Allocator hands out disk space for files. Contiguous allocations
// advance a pointer; scattered allocations spread fragments across the
// disk deterministically from a seeded RNG.
type Allocator struct {
	d    *disk.Disk
	next int64
	rng  *sim.RNG
	seq  int64
}

// NewAllocator creates an allocator for one disk.
func NewAllocator(d *disk.Disk, rng *sim.RNG) *Allocator {
	// Leave the first cylinder for metadata.
	return &Allocator{d: d, next: d.Params().SectorsPerCylinder(), rng: rng}
}

// NewFile creates and places a file. Scattered files are broken into
// fragments of at most fragPages pages each, placed at pseudo-random
// cylinders; pass 0 for the default of 2 pages.
func (a *Allocator) NewFile(name string, size int64, layout Layout, fragPages int64) *File {
	if size <= 0 {
		panic(fmt.Sprintf("fs: file %q with size %d", name, size))
	}
	f := &File{Name: name, Size: size, Disk: a.d, seq: a.seq}
	a.seq++
	sectors := ((size + mem.PageSize - 1) / mem.PageSize) * mem.SectorsPerPage
	total := a.d.Params().TotalSectors()
	switch layout {
	case Contiguous:
		if a.next+sectors > total {
			a.next = a.d.Params().SectorsPerCylinder() // wrap: simulation reuse
		}
		f.extents = append(f.extents, extent{start: a.next, count: sectors})
		a.next += sectors
	case Scattered:
		if fragPages <= 0 {
			fragPages = 2
		}
		fragSectors := fragPages * mem.SectorsPerPage
		for left := sectors; left > 0; {
			n := fragSectors
			if n > left {
				n = left
			}
			spc := a.d.Params().SectorsPerCylinder()
			cyl := int64(a.rng.Intn(a.d.Params().Cylinders - 2))
			start := (cyl + 1) * spc // skip metadata cylinder
			if start+n > total {
				start = total - n
			}
			f.extents = append(f.extents, extent{start: start, count: n})
			left -= n
		}
	}
	// Metadata sector: a fixed sector in the first cylinder, distinct
	// per file (hash of name length and allocation order).
	f.metaSector = int64(len(name)+int(a.next)) % a.d.Params().SectorsPerCylinder()
	return f
}

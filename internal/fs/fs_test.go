package fs

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/disk"
	"perfiso/internal/mem"
	"perfiso/internal/sim"
)

const (
	spuA = core.FirstUserID
	spuB = core.FirstUserID + 1
)

type fsRig struct {
	eng  *sim.Engine
	spus *core.Manager
	mm   *mem.Manager
	d    *disk.Disk
	fs   *FileSystem
	al   *Allocator
}

func newRig(pages int) *fsRig {
	eng := sim.NewEngine()
	spus := core.NewManager()
	spus.NewSPU("a", 1, core.ShareIdle)
	spus.NewSPU("b", 1, core.ShareIdle)
	mm := mem.NewManager(eng, spus, pages, 0)
	mm.DivideAmongSPUs()
	d := disk.New(eng, disk.HP97560(), disk.NewPIso(0), 0)
	f := New(eng, mm, SemRW)
	// Wire dirty cache eviction back into the disk, as the kernel does.
	mm.SetPageout(func(p *mem.Page, done func(ok bool)) {
		if !f.WritebackEvicted(p, func() { done(true) }) {
			done(true)
		}
	})
	return &fsRig{eng: eng, spus: spus, mm: mm, d: d, fs: f,
		al: NewAllocator(d, sim.NewRNG(1))}
}

func TestFileLayoutContiguous(t *testing.T) {
	r := newRig(1000)
	f := r.al.NewFile("big", 1<<20, Contiguous, 0) // 1 MB = 256 pages
	if f.NumPages() != 256 {
		t.Fatalf("NumPages = %d", f.NumPages())
	}
	for i := int64(0); i < 255; i++ {
		if !f.contiguousWith(i) {
			t.Fatalf("page %d not contiguous in a contiguous file", i)
		}
	}
}

func TestFileLayoutScattered(t *testing.T) {
	r := newRig(1000)
	f := r.al.NewFile("src", 64*mem.PageSize, Scattered, 2)
	breaks := 0
	for i := int64(0); i < f.NumPages()-1; i++ {
		if !f.contiguousWith(i) {
			breaks++
		}
	}
	if breaks < 20 {
		t.Fatalf("scattered file has only %d breaks in 64 pages", breaks)
	}
}

func TestAllocatorRejectsEmptyFile(t *testing.T) {
	r := newRig(100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.al.NewFile("empty", 0, Contiguous, 0)
}

func TestSectorOfPageBeyondEOFPanics(t *testing.T) {
	r := newRig(100)
	f := r.al.NewFile("f", mem.PageSize, Contiguous, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.SectorOfPage(5)
}

func TestReadMissThenHit(t *testing.T) {
	r := newRig(1000)
	f := r.al.NewFile("f", 64*1024, Contiguous, 0)
	done1, done2 := sim.Time(-1), sim.Time(-1)
	r.fs.Read(spuA, f, 0, 16*1024, func() { done1 = r.eng.Now() })
	r.eng.Run()
	if done1 < 0 {
		t.Fatal("first read never completed")
	}
	if done1 == 0 {
		t.Fatal("cold read completed instantly (no disk IO modeled?)")
	}
	misses := r.fs.Stat.Misses
	r.fs.Read(spuA, f, 0, 16*1024, func() { done2 = r.eng.Now() })
	if done2 != r.eng.Now() {
		t.Fatal("warm read should complete synchronously from cache")
	}
	if r.fs.Stat.Misses != misses {
		t.Fatal("warm read missed the cache")
	}
	if r.fs.Stat.Hits == 0 {
		t.Fatal("no hits recorded")
	}
}

func TestReadClustersRequests(t *testing.T) {
	r := newRig(1000)
	f := r.al.NewFile("f", 64*1024, Contiguous, 0) // 16 pages
	r.fs.ReadAheadPages = 0
	r.fs.Read(spuA, f, 0, 64*1024, func() {})
	r.eng.Run()
	// 16 pages at 8 pages/cluster = 2 requests.
	if r.fs.Stat.ReadReqs != 2 {
		t.Fatalf("ReadReqs = %d, want 2", r.fs.Stat.ReadReqs)
	}
}

func TestScatteredFileNeedsMoreRequests(t *testing.T) {
	r := newRig(1000)
	cont := r.al.NewFile("c", 64*1024, Contiguous, 0)
	scat := r.al.NewFile("s", 64*1024, Scattered, 1)
	r.fs.ReadAheadPages = 0
	r.fs.Read(spuA, cont, 0, 64*1024, func() {})
	r.eng.Run()
	contReqs := r.fs.Stat.ReadReqs
	r.fs.Read(spuA, scat, 0, 64*1024, func() {})
	r.eng.Run()
	scatReqs := r.fs.Stat.ReadReqs - contReqs
	if scatReqs <= contReqs {
		t.Fatalf("scattered file used %d requests vs %d contiguous", scatReqs, contReqs)
	}
}

func TestSequentialReadAhead(t *testing.T) {
	r := newRig(1000)
	f := r.al.NewFile("f", 256*1024, Contiguous, 0)
	// Read the first 16 KB; read-ahead should prefetch beyond it.
	r.fs.Read(spuA, f, 0, 16*1024, func() {})
	r.eng.Run()
	if r.fs.CachedPages() <= 4 {
		t.Fatalf("cached %d pages; read-ahead did not prefetch", r.fs.CachedPages())
	}
	// The second sequential chunk should now be partly or fully cached.
	missesBefore := r.fs.Stat.Misses
	var completed bool
	r.fs.Read(spuA, f, 16*1024, 16*1024, func() { completed = true })
	if !completed {
		r.eng.Run()
	}
	if r.fs.Stat.Misses != missesBefore {
		t.Fatal("sequential continuation missed despite read-ahead")
	}
}

func TestWriteIsDelayedUntilFlush(t *testing.T) {
	r := newRig(1000)
	f := r.al.NewFile("f", 64*1024, Contiguous, 0)
	var wrote bool
	r.fs.Write(spuA, f, 0, 32*1024, func() { wrote = true })
	r.eng.Run()
	if !wrote {
		t.Fatal("write never completed")
	}
	if r.fs.DirtyPages() != 8 {
		t.Fatalf("dirty pages = %d, want 8", r.fs.DirtyPages())
	}
	if r.d.Total.Requests != 0 {
		t.Fatal("delayed write hit the disk immediately")
	}
	r.fs.FlushTick()
	r.eng.Run()
	if r.fs.DirtyPages() != 0 {
		t.Fatalf("dirty pages after flush = %d", r.fs.DirtyPages())
	}
	if r.d.Total.Requests == 0 {
		t.Fatal("flush issued no disk writes")
	}
}

func TestFlushRunsUnderSharedSPUWithChargeback(t *testing.T) {
	r := newRig(1000)
	f := r.al.NewFile("f", 64*1024, Contiguous, 0)
	r.fs.Write(spuA, f, 0, 32*1024, func() {})
	r.fs.FlushTick()
	r.eng.Run()
	st, ok := r.d.PerSPU[core.SharedID]
	if !ok || st.Requests == 0 {
		t.Fatal("flush requests not scheduled under the shared SPU")
	}
	if r.d.Usage(spuA) == 0 {
		t.Fatal("flushed sectors not charged back to the dirtying SPU")
	}
}

func TestFlushClustersContiguousPages(t *testing.T) {
	r := newRig(1000)
	f := r.al.NewFile("f", 256*1024, Contiguous, 0) // 64 pages
	r.fs.Write(spuA, f, 0, 256*1024, func() {})
	r.fs.FlushTick()
	r.eng.Run()
	// 64 dirty pages at 16 pages/cluster = 4 write requests.
	if got := r.fs.Stat.Flushes; got != 4 {
		t.Fatalf("flush clusters = %d, want 4", got)
	}
}

func TestDirtyHighWaterTriggersFlush(t *testing.T) {
	r := newRig(1000)
	r.fs.DirtyHighWater = 4
	f := r.al.NewFile("f", 256*1024, Contiguous, 0)
	r.fs.Write(spuA, f, 0, 64*1024, func() {}) // 16 pages > high water
	r.eng.Run()
	if r.d.Total.Requests == 0 {
		t.Fatal("high-water mark did not trigger a flush")
	}
}

func TestMetaUpdateWritesSingleSector(t *testing.T) {
	r := newRig(1000)
	f := r.al.NewFile("f", 64*1024, Contiguous, 0)
	var done bool
	r.fs.MetaUpdate(spuA, f, func() { done = true })
	r.eng.Run()
	if !done {
		t.Fatal("meta update never completed")
	}
	if r.d.Total.Requests != 1 || r.d.Total.Sectors != 1 {
		t.Fatalf("meta update: %d requests, %d sectors", r.d.Total.Requests, r.d.Total.Sectors)
	}
}

func TestCachePagesChargedToSPU(t *testing.T) {
	r := newRig(1000)
	f := r.al.NewFile("f", 64*1024, Contiguous, 0)
	r.fs.ReadAheadPages = 0
	r.fs.Read(spuA, f, 0, 64*1024, func() {})
	r.eng.Run()
	if used := r.spus.Get(spuA).Used(core.Memory); used != 16 {
		t.Fatalf("SPU memory charge = %g, want 16 cache pages", used)
	}
}

func TestCrossSPUAccessRetagsToShared(t *testing.T) {
	r := newRig(1000)
	f := r.al.NewFile("lib", 64*1024, Contiguous, 0)
	r.fs.ReadAheadPages = 0
	r.fs.Read(spuA, f, 0, 64*1024, func() {})
	r.eng.Run()
	r.fs.Read(spuB, f, 0, 64*1024, func() {})
	r.eng.Run()
	if got := r.spus.Shared().Used(core.Memory); got != 16 {
		t.Fatalf("shared SPU pages = %g, want 16 (shared library pages, §2.2)", got)
	}
	if got := r.spus.Get(spuA).Used(core.Memory); got != 0 {
		t.Fatalf("first reader still charged %g pages", got)
	}
}

func TestEvictedCachePageFaultsBackIn(t *testing.T) {
	r := newRig(1000)
	f := r.al.NewFile("f", 16*1024, Contiguous, 0)
	r.fs.ReadAheadPages = 0
	r.fs.Read(spuA, f, 0, 16*1024, func() {})
	r.eng.Run()
	// Evict everything by pretending the pager chose these pages.
	for _, cp := range r.fs.cacheSnapshot() {
		p := cp.page
		cp.PageEvicted(p)
		r.mm.Free(p)
	}
	if r.fs.CachedPages() != 0 {
		t.Fatal("cache not empty after eviction")
	}
	missesBefore := r.fs.Stat.Misses
	r.fs.Read(spuA, f, 0, 16*1024, func() {})
	r.eng.Run()
	if r.fs.Stat.Misses == missesBefore {
		t.Fatal("re-read after eviction did not go to disk")
	}
}

// cacheSnapshot returns the live cache entries (test helper).
func (f *FileSystem) cacheSnapshot() []*CachePage {
	var out []*CachePage
	for _, cp := range f.cache {
		out = append(out, cp)
	}
	return out
}

func TestConcurrentReadsOfSamePageShareOneIO(t *testing.T) {
	r := newRig(1000)
	f := r.al.NewFile("f", 16*1024, Contiguous, 0)
	r.fs.ReadAheadPages = 0
	n := 0
	for i := 0; i < 5; i++ {
		r.fs.Read(spuA, f, 0, 16*1024, func() { n++ })
	}
	r.eng.Run()
	if n != 5 {
		t.Fatalf("%d of 5 overlapping reads completed", n)
	}
	if r.fs.Stat.ReadReqs != 1 {
		t.Fatalf("ReadReqs = %d, want 1 shared IO", r.fs.Stat.ReadReqs)
	}
}

func TestReadPastEOFTruncates(t *testing.T) {
	r := newRig(1000)
	f := r.al.NewFile("f", 10*1024, Contiguous, 0)
	var done bool
	r.fs.Read(spuA, f, 8*1024, 100*1024, func() { done = true })
	r.eng.Run()
	if !done {
		t.Fatal("EOF-truncated read never completed")
	}
	var done2 bool
	r.fs.Read(spuA, f, 20*1024, 4, func() { done2 = true })
	if !done2 {
		t.Fatal("read entirely past EOF should complete immediately")
	}
}

package fs

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/mem"
)

// WritebackEvicted only handles cache pages; anonymous pages are the
// kernel's job (swap).
func TestWritebackEvictedRejectsNonCachePages(t *testing.T) {
	r := newRig(100)
	p := r.mm.Allocate(spuA, mem.Anon, nil)
	if r.fs.WritebackEvicted(p, func() {}) {
		t.Fatal("accepted an anonymous page")
	}
}

func TestWritebackEvictedWritesCachePage(t *testing.T) {
	r := newRig(1000)
	f := r.al.NewFile("f", 16*1024, Contiguous, 0)
	r.fs.ReadAheadPages = 0
	r.fs.Write(spuA, f, 0, 4096, func() {})
	r.eng.Run()
	// Grab the cache page and push it through the eviction write path.
	cps := r.fs.cacheSnapshot()
	if len(cps) == 0 {
		t.Fatal("no cache page")
	}
	p := cps[0].page
	done := false
	if !r.fs.WritebackEvicted(p, func() { done = true }) {
		t.Fatal("rejected a cache page")
	}
	r.eng.Run()
	if !done {
		t.Fatal("write-back never completed")
	}
	// The request runs under the shared SPU, but its sectors charge
	// back to the dirtier's bandwidth account (§3.3).
	if r.d.Usage(spuA) == 0 {
		t.Fatal("write-back sectors not charged back to the dirtier")
	}
	if r.d.PerSPU[core.SharedID] == nil {
		t.Fatal("write-back request not scheduled under the shared SPU")
	}
}

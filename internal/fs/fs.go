package fs

import (
	"fmt"

	"perfiso/internal/control"
	"perfiso/internal/core"
	"perfiso/internal/disk"
	"perfiso/internal/lock"
	"perfiso/internal/mem"
	"perfiso/internal/metrics"
	"perfiso/internal/profile"
	"perfiso/internal/sim"
)

const (
	// DefaultClusterPages is the read cluster size: 8 pages = 32 KB per
	// disk request, which puts the big-copy workload near the paper's
	// "1050 requests" for 20 MB copied.
	DefaultClusterPages = 8
	// DefaultReadAheadPages is how far sequential read-ahead prefetches
	// beyond the requested range.
	DefaultReadAheadPages = 16
	// DefaultFlushClusterPages is the delayed-write cluster size: 16
	// pages = 64 KB per flush request.
	DefaultFlushClusterPages = 16
	// DefaultLookupHold is the simulated hold time of the inode lock for
	// one pathname lookup.
	DefaultLookupHold = 30 * sim.Microsecond
	// DefaultPageInsertStripes is the page-insert-lock striping of the
	// fixed kernel; 1 reproduces the original coarse lock (§3.4).
	DefaultPageInsertStripes = 64
	// DefaultPageInsertHold is the time one cache-page insertion holds
	// its page-insert-lock stripe.
	DefaultPageInsertHold = 2 * sim.Microsecond
)

// Stats counts file-system activity.
type Stats struct {
	Hits       int64
	Misses     int64
	ReadReqs   int64 // disk read requests issued
	WriteReqs  int64 // disk write requests issued (flush + meta)
	MetaWrites int64
	Flushes    int64 // flush batches
	Lookups    int64
	Retries    int64 // failed disk requests resubmitted with backoff
	Clamped    int64 // retries throttled to the slow lane (budget spent)
}

// FileSystem is the buffer-cache and file layer over the disks.
type FileSystem struct {
	eng *sim.Engine
	mm  *mem.Manager

	cache      map[cacheKey]*CachePage
	dirtyCount int

	// RootInode is the §3.4 inode-lock semaphore guarding pathname
	// lookups; its mode (mutex vs readers-writer) is the abl-sem knob.
	// With inode sharding (SetInodeShards) it is shard 0 — the shard
	// every SPU maps to in the single-tree layout.
	RootInode *lock.Lock

	// inodes holds the inode-lock shards; Lookup maps an SPU's
	// pathname traffic to shard spu mod len. One shard is the single
	// shared root inode of §3.4; a shard per SPU models private
	// directory trees, under which lock interference vanishes.
	inodes []*lock.Lock

	// pageInsert is the §3.4 page-insert-lock: it protects the mapping
	// from (file, offset) to physical pages. The original IRIX 5.3 had
	// one coarse lock; the paper "reduced the granularity", which we
	// model as lock striping. PageInsertHold is the per-insertion hold.
	pageInsert     *lock.Sharded
	PageInsertHold sim.Time

	// lockProf, when non-nil, wires every fs lock (including ones made
	// by later SetPageInsertStripes/SetInodeShards calls) into the
	// interference matrix.
	lockProf *profile.Profiler

	ClusterPages      int64
	ReadAheadPages    int64
	FlushClusterPages int64
	LookupHold        sim.Time
	// DirtyHighWater triggers an immediate flush when the number of
	// dirty pages exceeds it ("the buffer cache fills up causing writes
	// to the disk", §4.5). Zero means a quarter of physical memory.
	DirtyHighWater int

	Stat Stats
	// Metrics, when non-nil, receives per-SPU retry and backoff-time
	// counters for degraded-disk resubmissions. Nil costs nothing.
	Metrics *metrics.Registry
	// Retry bounds the degraded-disk resubmission loop (zero fields
	// take control.DefaultRetryPolicy). Cached file data lives on one
	// disk, so there is no failover target: once a request's budget is
	// spent its retries clamp to the policy's slow-lane cadence.
	Retry control.RetryPolicy
}

// New creates a file system drawing cache frames from mm.
func New(eng *sim.Engine, mm *mem.Manager, inodeMode SemMode) *FileSystem {
	f := &FileSystem{
		eng:               eng,
		mm:                mm,
		cache:             make(map[cacheKey]*CachePage),
		RootInode:         lock.New(eng, "fs.inode", inodeMode),
		ClusterPages:      DefaultClusterPages,
		ReadAheadPages:    DefaultReadAheadPages,
		FlushClusterPages: DefaultFlushClusterPages,
		LookupHold:        DefaultLookupHold,
	}
	f.inodes = []*lock.Lock{f.RootInode}
	f.DirtyHighWater = mm.TotalPages() / 4
	f.PageInsertHold = DefaultPageInsertHold
	f.SetPageInsertStripes(DefaultPageInsertStripes)
	return f
}

// SetPageInsertStripes reconfigures the page-insert-lock striping: 1 is
// the original coarse IRIX lock, larger values are the reduced
// granularity of the fixed kernel (§3.4). Call before submitting work.
func (fs *FileSystem) SetPageInsertStripes(n int) {
	fs.pageInsert = lock.NewSharded(fs.eng, "fs.pageinsert", lock.Mutex, n)
	fs.pageInsert.SetProfile(fs.lockProf)
}

// SetInodeShards reconfigures the inode-lock layout (mode unchanged):
// n <= 1 keeps the single shared root inode of §3.4; larger n maps
// each SPU's pathname traffic to shard spu mod n, so at n at or above
// the SPU count every SPU's lookups run under a private tree. Call
// before submitting work.
func (fs *FileSystem) SetInodeShards(n int) {
	if n < 1 {
		n = 1
	}
	mode := fs.RootInode.Mode()
	fs.inodes = make([]*lock.Lock, n)
	fs.inodes[0] = fs.RootInode
	for i := 1; i < n; i++ {
		fs.inodes[i] = lock.New(fs.eng, fmt.Sprintf("fs.inode.%d", i), mode)
		fs.inodes[i].SetProfile(fs.lockProf)
	}
}

// InodeLocks returns the live inode-lock shards (RootInode first).
func (fs *FileSystem) InodeLocks() []*lock.Lock { return fs.inodes }

// PageInsertLocks returns the page-insert stripe set.
func (fs *FileSystem) PageInsertLocks() *lock.Sharded { return fs.pageInsert }

// SetLockProfile wires every fs lock — present and future — into the
// profiler's interference matrix as lock-resource theft.
func (fs *FileSystem) SetLockProfile(p *profile.Profiler) {
	fs.lockProf = p
	for _, l := range fs.inodes {
		l.SetProfile(p)
	}
	fs.pageInsert.SetProfile(p)
}

// PageInsertContention returns the total acquisitions and queueing time
// across all page-insert-lock stripes.
func (fs *FileSystem) PageInsertContention() (acquisitions int64, wait sim.Time) {
	return fs.pageInsert.Totals()
}

// withInsertLock runs fn holding the page-insert-lock stripe for
// (f, idx) on behalf of spu.
func (fs *FileSystem) withInsertLock(spu core.SPUID, f *File, idx int64, fn func()) {
	stripe := fs.pageInsert.Shard(uint64(f.seq*1315423911 + idx))
	stripe.Acquire(spu, false, fs.PageInsertHold, fn)
}

// submit issues a disk request with graceful degradation: a transfer
// failed by an injected transient fault is resubmitted with exponential
// backoff until it succeeds, and only then does the request's original
// Done callback run. The backoff runs under a deadline-aware retry
// budget (control.RetryPolicy): while it lasts the schedule matches the
// old unbounded loop exactly, and once it is spent the request keeps
// retrying only at the bounded slow-lane cadence — the data is pinned
// to its disk, so throttling is the degraded path, and a long fault can
// no longer turn the cache into a full-rate retry storm. Every
// fs-originated request goes through here.
func (fs *FileSystem) submit(d *disk.Disk, r *disk.Request) {
	inner := r.Done
	budget := fs.Retry.NewBudget()
	r.Done = func(rr *disk.Request) {
		if rr.Failed {
			fs.Stat.Retries++
			wait, degraded := budget.Next()
			if degraded {
				fs.Stat.Clamped++
				fs.Metrics.Counter(metrics.KeyControlClamped, rr.SPU).Inc()
			}
			fs.Metrics.Counter(metrics.KeyFSRetries, rr.SPU).Inc()
			fs.Metrics.Counter(metrics.KeyFSBackoffNS, rr.SPU).AddTime(wait)
			rr.Backoff += wait // profiled separately from genuine queueing
			fs.eng.CallAfter(wait, "fs.retry", func() { d.Submit(rr) })
			return
		}
		if inner != nil {
			inner(rr)
		}
	}
	d.Submit(r)
}

// DirtyPages returns the number of dirty cache pages.
func (fs *FileSystem) DirtyPages() int { return fs.dirtyCount }

// CachedPages returns the number of resident cache pages.
func (fs *FileSystem) CachedPages() int { return len(fs.cache) }

// lookup returns the cache entry for (f, idx), creating it if absent,
// and touches its frame for LRU/shared accounting.
func (fs *FileSystem) lookup(spu core.SPUID, f *File, idx int64) *CachePage {
	key := cacheKey{f, idx}
	cp, ok := fs.cache[key]
	if !ok {
		cp = &CachePage{fs: fs, file: f, idx: idx}
		fs.cache[key] = cp
	}
	if cp.page != nil {
		fs.mm.Touch(cp.page, spu)
	}
	return cp
}

// Lookup models a pathname lookup through the root inode (§3.4): the
// caller queues on the inode semaphore (shared when the semaphore is in
// readers-writer mode) and proceeds after the hold time.
func (fs *FileSystem) Lookup(spu core.SPUID, done func()) {
	fs.Stat.Lookups++
	shard := fs.inodes[int(spu)%len(fs.inodes)]
	shard.Acquire(spu, true, fs.LookupHold, func() {
		fs.eng.CallAfter(fs.LookupHold, "fs.lookup", done)
	})
}

// Read reads [off, off+n) of the file on behalf of spu and calls done
// when every byte is in the cache. Sequential reads trigger read-ahead.
func (fs *FileSystem) Read(spu core.SPUID, f *File, off, n int64, done func()) {
	if n <= 0 {
		done()
		return
	}
	if off+n > f.Size {
		n = f.Size - off
		if n <= 0 {
			done()
			return
		}
	}
	first := off / mem.PageSize
	last := (off + n - 1) / mem.PageSize
	sequential := off == f.lastReadEnd || off == 0
	f.lastReadEnd = off + n

	pending := 1 // guard: released after issuing, so synchronous page
	// completions cannot fire done before the whole range is examined
	fired := false
	finish := func() {
		if pending == 0 && !fired {
			fired = true
			done()
		}
	}
	for idx := first; idx <= last; idx++ {
		cp := fs.lookup(spu, f, idx)
		if cp.valid {
			fs.Stat.Hits++
			continue
		}
		fs.Stat.Misses++
		pending++
		cp.waiters = append(cp.waiters, func() {
			// The waiter did access the page: record the touch so a
			// second SPU reading concurrently still re-tags the page
			// to the shared SPU (§2.2 shared-library accounting).
			if cp.page != nil {
				fs.mm.Touch(cp.page, spu)
			}
			pending--
			finish()
		})
	}
	fs.fill(spu, f, first, last)
	if sequential && fs.ReadAheadPages > 0 {
		raLast := last + fs.ReadAheadPages
		if max := f.NumPages() - 1; raLast > max {
			raLast = max
		}
		if raLast > last {
			fs.fill(spu, f, last+1, raLast)
		}
	}
	pending-- // release the guard
	finish()
}

// fill issues clustered disk reads for the invalid, idle pages in
// [from, to] of the file.
func (fs *FileSystem) fill(spu core.SPUID, f *File, from, to int64) {
	idx := from
	for idx <= to {
		cp := fs.lookup(spu, f, idx)
		if cp.valid || cp.io {
			idx++
			continue
		}
		// Grow a cluster of consecutive needy pages that are also
		// contiguous on disk.
		cluster := []*CachePage{cp}
		for int64(len(cluster)) < fs.ClusterPages && idx+int64(len(cluster)) <= to {
			nidx := idx + int64(len(cluster))
			if !f.contiguousWith(nidx - 1) {
				break
			}
			ncp := fs.lookup(spu, f, nidx)
			if ncp.valid || ncp.io {
				break
			}
			cluster = append(cluster, ncp)
		}
		idx += int64(len(cluster))
		fs.readCluster(spu, f, cluster)
	}
}

// readCluster allocates frames for the cluster's pages and then issues a
// single disk read covering them.
func (fs *FileSystem) readCluster(spu core.SPUID, f *File, cluster []*CachePage) {
	need := 0
	for _, cp := range cluster {
		cp.io = true
		if cp.page == nil {
			need++
		}
	}
	launched := false
	launch := func() {
		if launched || need > 0 {
			return
		}
		launched = true
		fs.Stat.ReadReqs++
		fs.submit(f.Disk, &disk.Request{
			Kind:   disk.Read,
			Sector: cluster[0].Sector(),
			Count:  len(cluster) * mem.SectorsPerPage,
			SPU:    spu,
			Done: func(*disk.Request) {
				for _, cp := range cluster {
					fs.mm.SetPinned(cp.page, false)
					cp.io = false
					cp.valid = true
					cp.notify()
				}
			},
		})
	}
	for _, cp := range cluster {
		if cp.page != nil {
			// Pin immediately: a sibling page's allocation below may
			// trigger reclaim, which must not steal this frame while
			// the cluster is being assembled.
			fs.mm.SetPinned(cp.page, true)
			continue
		}
		cp := cp
		// Inserting a page into the (file, offset) -> frame mapping
		// takes the page-insert-lock stripe (§3.4).
		fs.withInsertLock(spu, f, cp.idx, func() {
			fs.mm.Request(spu, mem.Cache, cp, func(p *mem.Page) {
				cp.page = p
				fs.mm.SetPinned(p, true)
				need--
				launch()
			})
		})
	}
	launch()
}

// Write writes [off, off+n) on behalf of spu as delayed writes: the data
// lands in cache pages marked dirty and done runs as soon as frames are
// available; a background flush (or the dirty high-water mark) pushes
// the data to disk later under the shared SPU.
func (fs *FileSystem) Write(spu core.SPUID, f *File, off, n int64, done func()) {
	if n <= 0 {
		done()
		return
	}
	if off+n > f.Size {
		n = f.Size - off
		if n <= 0 {
			done()
			return
		}
	}
	first := off / mem.PageSize
	last := (off + n - 1) / mem.PageSize
	pending := 1 // guard, as in Read
	fired := false
	finish := func() {
		if pending == 0 && !fired {
			fired = true
			done()
			if fs.dirtyCount > fs.DirtyHighWater {
				fs.Flush()
			}
		}
	}
	for idx := first; idx <= last; idx++ {
		cp := fs.lookup(spu, f, idx)
		if cp.page != nil {
			fs.markDirty(cp, spu)
			continue
		}
		if cp.io {
			// A read is fetching this page; dirty it once present.
			pending++
			cp.waiters = append(cp.waiters, func() {
				fs.markDirty(cp, spu)
				pending--
				finish()
			})
			continue
		}
		pending++
		cp.io = true
		cpIdx := idx
		fs.withInsertLock(spu, f, cpIdx, func() {
			fs.mm.Request(spu, mem.Cache, cp, func(p *mem.Page) {
				cp.page = p
				cp.io = false
				cp.valid = true // whole-page overwrite; no read-modify-write
				fs.markDirty(cp, spu)
				cp.notify()
				pending--
				finish()
			})
		})
	}
	pending-- // release the guard
	finish()
}

// markDirty marks a resident cache page dirty on behalf of spu.
func (fs *FileSystem) markDirty(cp *CachePage, spu core.SPUID) {
	cp.dirtier = spu
	if !cp.dirty {
		cp.dirty = true
		fs.dirtyCount++
	}
	fs.mm.MarkDirty(cp.page)
	fs.mm.Touch(cp.page, spu)
}

// MetaUpdate models a metadata rewrite: a single-sector write to the
// file's metadata sector, issued synchronously under the caller's SPU —
// the pmake workload's "many repeated writes of meta-data to a single
// sector" (§4.5).
func (fs *FileSystem) MetaUpdate(spu core.SPUID, f *File, done func()) {
	fs.Stat.MetaWrites++
	fs.Stat.WriteReqs++
	fs.submit(f.Disk, &disk.Request{
		Kind:   disk.Write,
		Sector: f.metaSector,
		Count:  1,
		SPU:    spu,
		Done:   func(*disk.Request) { done() },
	})
}

// Flush writes every dirty, idle cache page to disk in clustered
// requests scheduled under the shared SPU, with per-page charges flowing
// back to the SPUs that dirtied them (§3.3). FlushTick is the kernel's
// periodic entry point; Flush may also fire on the high-water mark.
func (fs *FileSystem) Flush() {
	// Collect dirty pages grouped by file, iterating files in a
	// deterministic order (map iteration order would make request
	// submission order — and thus whole runs — irreproducible).
	byFile := make(map[*File][]*CachePage)
	var files []*File
	for _, cp := range fs.cache {
		if cp.dirty && !cp.io && cp.page != nil && !cp.page.Pinned() {
			if len(byFile[cp.file]) == 0 {
				files = append(files, cp.file)
			}
			byFile[cp.file] = append(byFile[cp.file], cp)
		}
	}
	for i := 1; i < len(files); i++ {
		for j := i; j > 0 && files[j-1].Name > files[j].Name; j-- {
			files[j-1], files[j] = files[j], files[j-1]
		}
	}
	for _, f := range files {
		cps := byFile[f]
		// Sort by index (insertion sort: clusters are small and the map
		// iteration order is random).
		for i := 1; i < len(cps); i++ {
			for j := i; j > 0 && cps[j-1].idx > cps[j].idx; j-- {
				cps[j-1], cps[j] = cps[j], cps[j-1]
			}
		}
		i := 0
		for i < len(cps) {
			cluster := []*CachePage{cps[i]}
			for int64(len(cluster)) < fs.FlushClusterPages && i+len(cluster) < len(cps) {
				prev, next := cluster[len(cluster)-1], cps[i+len(cluster)]
				if next.idx != prev.idx+1 || !f.contiguousWith(prev.idx) {
					break
				}
				cluster = append(cluster, next)
			}
			i += len(cluster)
			fs.flushCluster(f, cluster)
		}
	}
}

// FlushTick is the bdflush daemon entry point, called by the kernel on
// its flush period.
func (fs *FileSystem) FlushTick() { fs.Flush() }

// flushCluster writes one batch of dirty pages as a single shared-SPU
// request.
func (fs *FileSystem) flushCluster(f *File, cluster []*CachePage) {
	charges := make(map[core.SPUID]int)
	for _, cp := range cluster {
		fs.mm.SetPinned(cp.page, true)
		cp.io = true
		charges[cp.dirtier] += mem.SectorsPerPage
	}
	var chargeList []disk.Charge
	for spu, sectors := range charges {
		chargeList = append(chargeList, disk.Charge{SPU: spu, Sectors: sectors})
	}
	for i := 1; i < len(chargeList); i++ {
		for j := i; j > 0 && chargeList[j-1].SPU > chargeList[j].SPU; j-- {
			chargeList[j-1], chargeList[j] = chargeList[j], chargeList[j-1]
		}
	}
	fs.Stat.Flushes++
	fs.Stat.WriteReqs++
	fs.submit(f.Disk, &disk.Request{
		Kind:    disk.Write,
		Sector:  cluster[0].Sector(),
		Count:   len(cluster) * mem.SectorsPerPage,
		SPU:     core.SharedID,
		Charges: chargeList,
		Done: func(*disk.Request) {
			for _, cp := range cluster {
				fs.mm.SetPinned(cp.page, false)
				cp.io = false
				if cp.dirty {
					cp.dirty = false
					fs.dirtyCount--
					fs.mm.SetDirty(cp.page, false)
				}
				cp.notify()
			}
		},
	})
}

// WritebackEvicted is the kernel pageout hook for dirty *cache* pages
// chosen by the memory manager's reclaim: it writes the page to its file
// location under the shared SPU and calls done when the frame may be
// reused.
func (fs *FileSystem) WritebackEvicted(p *mem.Page, done func()) bool {
	cp, ok := p.Owner.(*CachePage)
	if !ok {
		return false
	}
	fs.Stat.WriteReqs++
	fs.submit(cp.file.Disk, &disk.Request{
		Kind:    disk.Write,
		Sector:  cp.file.SectorOfPage(cp.idx),
		Count:   mem.SectorsPerPage,
		SPU:     core.SharedID,
		Charges: []disk.Charge{{SPU: cp.dirtier, Sectors: mem.SectorsPerPage}},
		Done:    func(*disk.Request) { done() },
	})
	return true
}

package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

const validSpec = `{
  "machine": "memory-isolation",
  "scheme": "PIso",
  "spus": [
    {"name": "alice", "weight": 1, "disk": 0},
    {"name": "bob", "weight": 2, "disk": 1}
  ],
  "jobs": [
    {"type": "pmake", "spu": "alice", "name": "build", "parallel": 2, "wss_pages": 100},
    {"type": "copy", "spu": "bob", "name": "backup", "bytes": 2097152},
    {"type": "compute", "spu": "bob", "name": "sim", "compute_ms": 500}
  ]
}`

func TestParseAndRun(t *testing.T) {
	spec, err := Parse([]byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MakespanSecs <= 0 || res.CPUUtilization <= 0 {
		t.Fatalf("result: %+v", res)
	}
	if len(res.Jobs) != 3 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	for _, j := range res.Jobs {
		if j.RespSecs <= 0 {
			t.Fatalf("job %q has no response time", j.Name)
		}
	}
	// Round-trips as JSON.
	var back Result
	if err := json.Unmarshal([]byte(res.JSON()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Jobs[0].Name != "build" {
		t.Fatal("JSON round trip lost data")
	}
}

func TestRunServerJobReportsLatency(t *testing.T) {
	spec, err := Parse([]byte(`{
	  "machine": "cpu-isolation", "scheme": "PIso",
	  "spus": [{"name": "svc"}],
	  "jobs": [{"type": "server", "spu": "svc", "name": "api", "requests": 20, "interarrival_ms": 5}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].MaxLatencySecs <= 0 {
		t.Fatal("server job missing latency")
	}
}

func TestDefaultsMachineSchemeWeight(t *testing.T) {
	spec, err := Parse([]byte(`{
	  "spus": [{"name": "u"}],
	  "jobs": [{"type": "vcs", "spu": "u", "name": "v"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":        `{`,
		"unknown machine": `{"machine": "cray", "spus": [{"name":"u"}], "jobs":[{"type":"vcs","spu":"u","name":"v"}]}`,
		"unknown scheme":  `{"scheme": "FIFO", "spus": [{"name":"u"}], "jobs":[{"type":"vcs","spu":"u","name":"v"}]}`,
		"no spus":         `{"jobs":[{"type":"vcs","spu":"u","name":"v"}]}`,
		"no jobs":         `{"spus": [{"name":"u"}]}`,
		"dup spu":         `{"spus": [{"name":"u"},{"name":"u"}], "jobs":[{"type":"vcs","spu":"u","name":"v"}]}`,
		"empty spu name":  `{"spus": [{"name":""}], "jobs":[{"type":"vcs","spu":"","name":"v"}]}`,
		"unknown spu":     `{"spus": [{"name":"u"}], "jobs":[{"type":"vcs","spu":"x","name":"v"}]}`,
		"unknown type":    `{"spus": [{"name":"u"}], "jobs":[{"type":"quake","spu":"u","name":"v"}]}`,
		"copy no bytes":   `{"spus": [{"name":"u"}], "jobs":[{"type":"copy","spu":"u","name":"v"}]}`,
	}
	for label, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: expected error", label)
		} else if !strings.Contains(err.Error(), "scenario") {
			t.Errorf("%s: error %v lacks package prefix", label, err)
		}
	}
}

func TestScenarioDeterministic(t *testing.T) {
	run := func() string {
		spec, err := Parse([]byte(validSpec))
		if err != nil {
			t.Fatal(err)
		}
		res, err := spec.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.JSON()
	}
	if a, b := run(), run(); a != b {
		t.Fatal("identical scenarios diverged")
	}
}

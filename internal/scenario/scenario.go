// Package scenario runs declarative simulation specs: a JSON document
// describes the machine, the allocation scheme, the SPUs and their
// workloads, and the runner boots the kernel, executes everything, and
// reports per-job response times — so experiments can be described in a
// file instead of Go code (pisosim -spec).
//
// Example spec:
//
//	{
//	  "machine": "memory-isolation",
//	  "scheme": "PIso",
//	  "spus": [
//	    {"name": "alice", "weight": 1, "disk": 0},
//	    {"name": "bob", "weight": 2, "disk": 1}
//	  ],
//	  "jobs": [
//	    {"type": "pmake", "spu": "alice", "name": "build"},
//	    {"type": "copy", "spu": "bob", "name": "backup", "bytes": 5242880}
//	  ]
//	}
package scenario

import (
	"encoding/json"
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/kernel"
	"perfiso/internal/machine"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
	"perfiso/internal/workload"
)

// Spec is the top-level scenario document.
type Spec struct {
	// Machine names a Table 1 configuration: "pmake8", "cpu-isolation",
	// "memory-isolation", or "disk-isolation".
	Machine string `json:"machine"`
	// Scheme is "SMP", "Quo", or "PIso".
	Scheme string `json:"scheme"`
	// DiskSched optionally overrides the disk policy ("Pos"/"Iso"/"PIso").
	DiskSched string `json:"disk_sched,omitempty"`
	// IPIRevoke enables immediate CPU revocation.
	IPIRevoke bool `json:"ipi_revoke,omitempty"`
	// Seed overrides the deterministic seed.
	Seed uint64 `json:"seed,omitempty"`

	SPUs []SPUSpec `json:"spus"`
	Jobs []JobSpec `json:"jobs"`
}

// SPUSpec declares one SPU.
type SPUSpec struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`         // 0 means 1
	Disk   *int    `json:"disk,omitempty"` // affinity; default round-robin
}

// JobSpec declares one workload instance.
type JobSpec struct {
	// Type is one of "pmake", "copy", "ocean", "flashlite", "vcs",
	// "server", "compute".
	Type string `json:"type"`
	// SPU names the owning SPU (must appear in SPUs).
	SPU  string `json:"spu"`
	Name string `json:"name"`

	// Copy: file size in bytes.
	Bytes int64 `json:"bytes,omitempty"`
	// Pmake: parallelism override (0 keeps the default shape).
	Parallel int `json:"parallel,omitempty"`
	// Compute/flashlite/vcs: total CPU milliseconds (0 keeps default).
	ComputeMS int64 `json:"compute_ms,omitempty"`
	// Working-set pages override (pmake/ocean/compute).
	WSSPages int `json:"wss_pages,omitempty"`
	// Server: request count and interarrival override.
	Requests       int   `json:"requests,omitempty"`
	InterarrivalMS int64 `json:"interarrival_ms,omitempty"`
}

// JobResult is one finished job's outcome.
type JobResult struct {
	Name     string  `json:"name"`
	SPU      string  `json:"spu"`
	Type     string  `json:"type"`
	RespSecs float64 `json:"response_seconds"`
	// MaxLatencySecs is set for server jobs (worst request).
	MaxLatencySecs float64 `json:"max_latency_seconds,omitempty"`
}

// Result is the scenario outcome.
type Result struct {
	MakespanSecs   float64     `json:"makespan_seconds"`
	CPUUtilization float64     `json:"cpu_utilization"`
	Jobs           []JobResult `json:"jobs"`
}

// Parse decodes and validates a spec document.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func (s *Spec) validate() error {
	if _, err := s.machine(); err != nil {
		return err
	}
	if _, err := s.scheme(); err != nil {
		return err
	}
	if len(s.SPUs) == 0 {
		return fmt.Errorf("scenario: no SPUs declared")
	}
	names := make(map[string]bool)
	for _, sp := range s.SPUs {
		if sp.Name == "" {
			return fmt.Errorf("scenario: SPU with empty name")
		}
		if names[sp.Name] {
			return fmt.Errorf("scenario: duplicate SPU %q", sp.Name)
		}
		names[sp.Name] = true
	}
	if len(s.Jobs) == 0 {
		return fmt.Errorf("scenario: no jobs declared")
	}
	for _, j := range s.Jobs {
		if !names[j.SPU] {
			return fmt.Errorf("scenario: job %q references unknown SPU %q", j.Name, j.SPU)
		}
		switch j.Type {
		case "pmake", "copy", "ocean", "flashlite", "vcs", "server", "compute":
		default:
			return fmt.Errorf("scenario: job %q has unknown type %q", j.Name, j.Type)
		}
		if j.Type == "copy" && j.Bytes <= 0 {
			return fmt.Errorf("scenario: copy job %q needs bytes > 0", j.Name)
		}
	}
	return nil
}

func (s *Spec) machine() (machine.Config, error) {
	switch s.Machine {
	case "pmake8":
		return machine.Pmake8(), nil
	case "cpu-isolation":
		return machine.CPUIsolation(), nil
	case "memory-isolation", "":
		return machine.MemoryIsolation(), nil
	case "disk-isolation":
		return machine.DiskIsolation(), nil
	default:
		return machine.Config{}, fmt.Errorf("scenario: unknown machine %q", s.Machine)
	}
}

func (s *Spec) scheme() (core.Scheme, error) {
	switch s.Scheme {
	case "SMP":
		return core.SMP, nil
	case "Quo":
		return core.Quo, nil
	case "PIso", "":
		return core.PIso, nil
	default:
		return 0, fmt.Errorf("scenario: unknown scheme %q", s.Scheme)
	}
}

// Run executes the scenario to completion.
func (s *Spec) Run() (*Result, error) {
	cfg, err := s.machine()
	if err != nil {
		return nil, err
	}
	scheme, err := s.scheme()
	if err != nil {
		return nil, err
	}
	k := kernel.New(cfg, scheme, kernel.Options{
		DiskSched: s.DiskSched,
		IPIRevoke: s.IPIRevoke,
		Seed:      s.Seed,
	})
	spus := make(map[string]*core.SPU)
	for _, sp := range s.SPUs {
		w := sp.Weight
		if w <= 0 {
			w = 1
		}
		u := k.NewSPU(sp.Name, w)
		if sp.Disk != nil {
			k.SetAffinity(u.ID(), *sp.Disk)
		}
		spus[sp.Name] = u
	}
	k.Boot()

	type runningJob struct {
		spec JobSpec
		p    *proc.Process
		srv  *workload.ServerJob
	}
	var jobs []runningJob
	for _, j := range s.Jobs {
		spu := spus[j.SPU].ID()
		var rj runningJob
		rj.spec = j
		switch j.Type {
		case "pmake":
			params := workload.DefaultPmake()
			if j.Parallel > 0 {
				params.Parallel = j.Parallel
			}
			if j.WSSPages > 0 {
				params.WSSPages = j.WSSPages
			}
			rj.p = workload.Pmake(k, spu, j.Name, params)
		case "copy":
			rj.p = workload.Copy(k, spu, j.Name, workload.DefaultCopy(j.Bytes))
		case "ocean":
			params := workload.DefaultOcean()
			if j.WSSPages > 0 {
				params.WSSPages = j.WSSPages
			}
			rj.p = workload.Ocean(k, spu, j.Name, params)
		case "flashlite", "vcs", "compute":
			var params workload.ComputeParams
			switch j.Type {
			case "flashlite":
				params = workload.DefaultFlashlite()
			case "vcs":
				params = workload.DefaultVCS()
			default:
				params = workload.ComputeParams{Total: sim.Second, Chunk: 100 * sim.Millisecond, WSSPages: 100}
			}
			if j.ComputeMS > 0 {
				params.Total = sim.Time(j.ComputeMS) * sim.Millisecond
			}
			if j.WSSPages > 0 {
				params.WSSPages = j.WSSPages
			}
			rj.p = workload.ComputeBound(k, spu, j.Name, params)
		case "server":
			params := workload.DefaultServer()
			if j.Requests > 0 {
				params.Requests = j.Requests
			}
			if j.InterarrivalMS > 0 {
				params.Interarrival = sim.Time(j.InterarrivalMS) * sim.Millisecond
			}
			srv := workload.Server(k, spu, j.Name, params)
			rj.p = srv.Root
			rj.srv = srv
		}
		k.Spawn(rj.p)
		jobs = append(jobs, rj)
	}
	end := k.Run()

	res := &Result{
		MakespanSecs:   end.Seconds(),
		CPUUtilization: k.Scheduler().Utilization(),
	}
	for _, rj := range jobs {
		jr := JobResult{
			Name:     rj.spec.Name,
			SPU:      rj.spec.SPU,
			Type:     rj.spec.Type,
			RespSecs: rj.p.ResponseTime().Seconds(),
		}
		if rj.srv != nil {
			jr.MaxLatencySecs = rj.srv.MaxLatency(end).Seconds()
		}
		res.Jobs = append(res.Jobs, jr)
	}
	return res, nil
}

// JSON renders the result as indented JSON.
func (r *Result) JSON() string {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err) // Result contains only marshalable fields
	}
	return string(b)
}

package scenario

import "testing"

// FuzzParse asserts the spec parser never panics and never returns a
// spec that fails validation on arbitrary input. Run with
// `go test -fuzz=FuzzParse ./internal/scenario` for a real campaign;
// the seed corpus runs as part of the normal suite.
func FuzzParse(f *testing.F) {
	f.Add([]byte(validSpec))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"machine":"pmake8","spus":[{"name":"u"}],"jobs":[{"type":"copy","spu":"u","name":"c","bytes":1}]}`))
	f.Add([]byte(`{"spus":[{"name":"u","weight":-5}],"jobs":[{"type":"vcs","spu":"u","name":"v"}]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data)
		if err != nil {
			return
		}
		// A spec that parsed must re-validate cleanly.
		if verr := spec.validate(); verr != nil {
			t.Fatalf("Parse accepted a spec that fails validate: %v", verr)
		}
	})
}

// Package disk models a disk drive with a mechanical service-time model
// (seek + rotation + transfer) and pluggable request schedulers. It
// implements the three scheduling policies compared in §4.5 of the paper:
//
//   - Pos:  IRIX's standard head-position-only C-SCAN.
//   - Iso:  "blind" performance isolation — round-robin bandwidth fairness
//     between SPUs, ignoring head position.
//   - PIso: performance isolation — C-SCAN order restricted to SPUs that
//     pass a bandwidth-fairness criterion (the BW difference threshold).
//
// Per-SPU bandwidth usage is tracked as a decayed count of sectors
// transferred, with the half-life the paper uses (500 ms).
package disk

import (
	"math"

	"perfiso/internal/sim"
)

// Params describes the mechanical characteristics of a disk. The seek
// curve follows the published HP 97560 model (Kotz, Toh & Radhakrishnan,
// Dartmouth PCS-TR94-220): a square-root region for short seeks and a
// linear region for long ones.
type Params struct {
	Name            string
	Cylinders       int
	Heads           int // tracks per cylinder
	SectorsPerTrack int
	SectorSize      int // bytes

	RPM float64 // spindle speed

	// Seek model: distance d in cylinders.
	//   d <= ShortSeekMax: ShortSeekBase + ShortSeekSqrt*sqrt(d)   [ms]
	//   d >  ShortSeekMax: LongSeekBase + LongSeekPerCyl*d         [ms]
	ShortSeekMax   int
	ShortSeekBase  float64
	ShortSeekSqrt  float64
	LongSeekBase   float64
	LongSeekPerCyl float64

	// SeekScale multiplies all seek times. §4.5 runs with 0.5 ("a scaling
	// factor of two for the disk model, i.e. half the seek latency").
	SeekScale float64

	TrackSwitch sim.Time // head/track switch during a multi-track transfer
	Overhead    sim.Time // fixed per-request controller/command overhead
}

// HP97560 returns the parameters of the HP 97560 drive used in the paper
// ([KTR94]): 1.3 GB, 4002 RPM, 72 512-byte sectors per track, 19 surfaces,
// 1962 cylinders.
func HP97560() Params {
	return Params{
		Name:            "HP97560",
		Cylinders:       1962,
		Heads:           19,
		SectorsPerTrack: 72,
		SectorSize:      512,
		RPM:             4002,
		ShortSeekMax:    383,
		ShortSeekBase:   3.24,
		ShortSeekSqrt:   0.400,
		LongSeekBase:    8.00,
		LongSeekPerCyl:  0.008,
		SeekScale:       1.0,
		TrackSwitch:     sim.FromMilliseconds(1.6),
		Overhead:        sim.FromMilliseconds(1.1),
	}
}

// FastDisk returns a disk with low, nearly position-independent service
// times. The non-disk-focused workloads in Table 1 give every SPU a
// "separate fast disk" precisely so that disk behaviour does not perturb
// the CPU and memory results; this model plays that role.
func FastDisk() Params {
	return Params{
		Name:            "fastdisk",
		Cylinders:       2048,
		Heads:           16,
		SectorsPerTrack: 128,
		SectorSize:      512,
		RPM:             12000,
		ShortSeekMax:    512,
		ShortSeekBase:   0.4,
		ShortSeekSqrt:   0.02,
		LongSeekBase:    0.8,
		LongSeekPerCyl:  0.0005,
		SeekScale:       1.0,
		TrackSwitch:     sim.FromMilliseconds(0.1),
		Overhead:        sim.FromMilliseconds(0.2),
	}
}

// TotalSectors returns the number of addressable sectors on the disk.
func (p Params) TotalSectors() int64 {
	return int64(p.Cylinders) * int64(p.Heads) * int64(p.SectorsPerTrack)
}

// SectorsPerCylinder returns the sectors in one cylinder.
func (p Params) SectorsPerCylinder() int64 {
	return int64(p.Heads) * int64(p.SectorsPerTrack)
}

// CylinderOf maps a sector number to its cylinder.
func (p Params) CylinderOf(sector int64) int {
	c := int(sector / p.SectorsPerCylinder())
	if c >= p.Cylinders {
		c = p.Cylinders - 1
	}
	return c
}

// RotationTime returns the duration of one full revolution.
func (p Params) RotationTime() sim.Time {
	return sim.Time(60.0 / p.RPM * float64(sim.Second))
}

// SectorTime returns the time for one sector to pass under the head.
func (p Params) SectorTime() sim.Time {
	return p.RotationTime() / sim.Time(p.SectorsPerTrack)
}

// SeekTime returns the head movement time between two cylinders,
// including the SeekScale factor. A zero-distance seek is free.
func (p Params) SeekTime(from, to int) sim.Time {
	d := from - to
	if d < 0 {
		d = -d
	}
	if d == 0 {
		return 0
	}
	var ms float64
	if d <= p.ShortSeekMax {
		ms = p.ShortSeekBase + p.ShortSeekSqrt*math.Sqrt(float64(d))
	} else {
		ms = p.LongSeekBase + p.LongSeekPerCyl*float64(d)
	}
	scale := p.SeekScale
	if scale == 0 {
		scale = 1
	}
	return sim.FromMilliseconds(ms * scale)
}

// RotationalDelay returns the time until the target sector arrives under
// the head, given the absolute time at which the head settles. The
// spindle position is a pure function of time, which keeps the model
// deterministic while still rewarding sequential access.
func (p Params) RotationalDelay(settled sim.Time, sector int64) sim.Time {
	st := p.SectorTime()
	spt := int64(p.SectorsPerTrack)
	headAt := (int64(settled) / int64(st)) % spt // sector index under head
	target := sector % spt
	diff := (target - headAt) % spt
	if diff < 0 {
		diff += spt
	}
	return sim.Time(diff) * st
}

// TransferTime returns the media transfer time for count sectors starting
// at the given sector, including track-switch penalties when the run
// crosses track boundaries.
func (p Params) TransferTime(sector int64, count int) sim.Time {
	if count <= 0 {
		return 0
	}
	t := sim.Time(count) * p.SectorTime()
	spt := int64(p.SectorsPerTrack)
	first := sector / spt
	last := (sector + int64(count) - 1) / spt
	if switches := last - first; switches > 0 {
		t += sim.Time(switches) * p.TrackSwitch
	}
	return t
}

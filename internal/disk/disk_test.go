package disk

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

const (
	spuA = core.FirstUserID
	spuB = core.FirstUserID + 1
)

func newTestDisk(sched Scheduler) (*sim.Engine, *Disk) {
	eng := sim.NewEngine()
	d := New(eng, HP97560(), sched, 0)
	return eng, d
}

func req(spu core.SPUID, sector int64, count int, done func(*Request)) *Request {
	return &Request{Kind: Read, Sector: sector, Count: count, SPU: spu, Done: done}
}

func TestSingleRequestServiceTime(t *testing.T) {
	eng, d := newTestDisk(NewPos())
	var finished *Request
	d.Submit(req(spuA, 1000, 16, func(r *Request) { finished = r }))
	eng.Run()
	if finished == nil {
		t.Fatal("request never completed")
	}
	if finished.Service() <= 0 {
		t.Fatal("service time not positive")
	}
	p := d.Params()
	// Service must include at least overhead + seek + transfer.
	min := p.Overhead + p.SeekTime(0, p.CylinderOf(1000)) + p.TransferTime(1000, 16)
	if finished.Service() < min {
		t.Fatalf("service %v < floor %v", finished.Service(), min)
	}
	if finished.Wait() != 0 {
		t.Fatalf("lone request waited %v", finished.Wait())
	}
	if d.Total.Requests != 1 || d.Total.Sectors != 16 {
		t.Fatalf("stats: %d reqs, %d sectors", d.Total.Requests, d.Total.Sectors)
	}
}

func TestRequestsServeSequentially(t *testing.T) {
	eng, d := newTestDisk(NewPos())
	var order []int64
	for _, s := range []int64{100, 200, 300} {
		d.Submit(req(spuA, s, 8, func(r *Request) { order = append(order, r.Sector) }))
	}
	if !d.Busy() {
		t.Fatal("disk should be busy after submit")
	}
	if d.QueueLen() != 2 {
		t.Fatalf("queue length %d, want 2 (one in service)", d.QueueLen())
	}
	eng.Run()
	if len(order) != 3 {
		t.Fatalf("completed %d requests", len(order))
	}
	if d.Busy() || d.QueueLen() != 0 {
		t.Fatal("disk should be idle after drain")
	}
}

func TestSubmitInvalidRequestPanics(t *testing.T) {
	_, d := newTestDisk(NewPos())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Submit(req(spuA, -1, 8, nil))
}

func TestPosServesInCSCANOrder(t *testing.T) {
	eng, d := newTestDisk(NewPos())
	spc := d.Params().SectorsPerCylinder()
	// Hold the head busy with a request at cylinder 0, then queue
	// requests at cylinders 500, 100, 900. C-SCAN from low cylinders
	// must serve 100, 500, 900 regardless of submission order.
	var order []int64
	record := func(r *Request) { order = append(order, r.Sector/spc) }
	d.Submit(req(spuA, 0, 8, record))
	d.Submit(req(spuA, 500*spc, 8, record))
	d.Submit(req(spuA, 100*spc, 8, record))
	d.Submit(req(spuA, 900*spc, 8, record))
	eng.Run()
	want := []int64{0, 100, 500, 900}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("service order %v, want %v", order, want)
		}
	}
}

func TestPosCSCANWrapsAround(t *testing.T) {
	eng, d := newTestDisk(NewPos())
	spc := d.Params().SectorsPerCylinder()
	var order []int64
	record := func(r *Request) { order = append(order, r.Sector/spc) }
	// Park the head at cylinder 800 via a first request.
	d.Submit(req(spuA, 800*spc, 8, record))
	d.Submit(req(spuA, 900*spc, 8, record))
	d.Submit(req(spuA, 100*spc, 8, record)) // behind the head: wraps
	eng.Run()
	want := []int64{800, 900, 100}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("service order %v, want %v", order, want)
		}
	}
}

// The §4.5 lockout scenario: a contiguous stream from one SPU keeps
// winning C-SCAN, starving the other SPU's scattered requests.
func TestPosLockoutVsPIsoFairness(t *testing.T) {
	run := func(sched Scheduler) (scatterDone, streamDone sim.Time) {
		eng, d := newTestDisk(sched)
		d.SetShare(spuA, 1)
		d.SetShare(spuB, 1)
		spc := d.Params().SectorsPerCylinder()

		// SPU A: a long contiguous stream starting at cylinder 10,
		// submitted as an initial burst and then re-armed back-to-back
		// (like read-ahead keeping the queue full).
		const streamReqs = 120
		streamLeft := streamReqs
		sector := 10 * spc
		var submitStream func()
		submitStream = func() {
			if streamLeft == 0 {
				return
			}
			streamLeft--
			r := req(spuA, sector, 32, func(*Request) {
				if streamLeft == 0 && streamDone == 0 {
					streamDone = eng.Now()
				}
				submitStream()
			})
			sector += 32
			d.Submit(r)
		}
		// Keep 8 stream requests outstanding, mimicking kernel read-ahead.
		for i := 0; i < 8; i++ {
			submitStream()
		}

		// SPU B: 20 scattered requests, all queued at t=0.
		const scatterReqs = 20
		left := scatterReqs
		for i := 0; i < scatterReqs; i++ {
			cyl := int64(200 + 37*i)
			d.Submit(req(spuB, cyl*spc, 8, func(*Request) {
				left--
				if left == 0 {
					scatterDone = eng.Now()
				}
			}))
		}
		eng.Run()
		return scatterDone, streamDone
	}

	posScatter, _ := run(NewPos())
	pisoScatter, _ := run(NewPIso(DefaultBWThreshold))
	isoScatter, _ := run(NewIso())

	if pisoScatter >= posScatter {
		t.Fatalf("PIso did not improve scattered SPU: Pos %v vs PIso %v", posScatter, pisoScatter)
	}
	if isoScatter >= posScatter {
		t.Fatalf("Iso did not improve scattered SPU: Pos %v vs Iso %v", posScatter, isoScatter)
	}
}

func TestIsoAlternatesBetweenSPUs(t *testing.T) {
	eng, d := newTestDisk(NewIso())
	var order []core.SPUID
	record := func(r *Request) { order = append(order, r.SPU) }
	// Queue 4 requests from A then 4 from B while the disk is busy.
	d.Submit(req(spuA, 0, 8, record)) // in service immediately
	for i := 1; i <= 3; i++ {
		d.Submit(req(spuA, int64(i)*1000, 8, record))
	}
	for i := 0; i < 4; i++ {
		d.Submit(req(spuB, int64(100000+i*1000), 8, record))
	}
	eng.Run()
	// After the first A request, usage alternates: B, A, B, A...
	swaps := 0
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1] {
			swaps++
		}
	}
	if swaps < 5 {
		t.Fatalf("Iso order %v: only %d alternations", order, swaps)
	}
}

func TestSharedSPULowestPriority(t *testing.T) {
	eng, d := newTestDisk(NewPIso(0))
	var order []core.SPUID
	record := func(r *Request) { order = append(order, r.SPU) }
	// First request occupies the disk; then a shared write and a user
	// read arrive. The user read must win even though the shared write
	// is closer to the head.
	d.Submit(req(spuA, 0, 8, record))
	d.Submit(&Request{Kind: Write, Sector: 16, Count: 8, SPU: core.SharedID, Done: record})
	d.Submit(req(spuB, 500000, 8, record))
	eng.Run()
	if order[1] != spuB || order[2] != core.SharedID {
		t.Fatalf("order = %v, want user before shared", order)
	}
}

func TestSharedChargesFlowBackToUsers(t *testing.T) {
	eng, d := newTestDisk(NewPIso(0))
	d.Submit(&Request{
		Kind: Write, Sector: 0, Count: 64, SPU: core.SharedID,
		Charges: []Charge{{SPU: spuA, Sectors: 48}, {SPU: spuB, Sectors: 16}},
	})
	eng.Run()
	ua, ub := d.Usage(spuA), d.Usage(spuB)
	if ua <= ub || ub <= 0 {
		t.Fatalf("charge-back usage = %g, %g", ua, ub)
	}
	if d.Usage(core.SharedID) != 0 {
		t.Fatalf("shared SPU retained %g usage", d.Usage(core.SharedID))
	}
}

func TestPIsoDeniesOverConsumer(t *testing.T) {
	eng, d := newTestDisk(NewPIso(64))
	// Give A a large decayed usage by transferring a big request first.
	d.Submit(req(spuA, 0, 256, nil))
	eng.Run()
	// Now queue one request from each; B must be served first even
	// though A's is closer to the head.
	var order []core.SPUID
	record := func(r *Request) { order = append(order, r.SPU) }
	blocker := req(spuB, 900000, 8, record)
	d.Submit(blocker) // takes the disk
	d.Submit(req(spuA, 900008, 8, record))
	d.Submit(req(spuB, 10000, 8, record))
	eng.Run()
	if order[1] != spuB {
		t.Fatalf("order = %v: PIso should deny the over-consuming SPU", order)
	}
}

func TestPIsoFallsBackToPositionWhenFair(t *testing.T) {
	eng, d := newTestDisk(NewPIso(1e9)) // huge threshold => pure position
	spc := d.Params().SectorsPerCylinder()
	var order []int64
	record := func(r *Request) { order = append(order, r.Sector/spc) }
	d.Submit(req(spuA, 0, 8, record))
	d.Submit(req(spuA, 700*spc, 8, record))
	d.Submit(req(spuB, 300*spc, 8, record))
	eng.Run()
	want := []int64{0, 300, 700}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestSchedulerNames(t *testing.T) {
	if NewPos().Name() != "Pos" || NewIso().Name() != "Iso" || NewPIso(0).Name() != "PIso" {
		t.Fatal("scheduler names must match the paper")
	}
}

func TestNewPIsoDefaultThreshold(t *testing.T) {
	if NewPIso(0).Threshold != DefaultBWThreshold {
		t.Fatal("default threshold not applied")
	}
	if NewPIso(100).Threshold != 100 {
		t.Fatal("explicit threshold ignored")
	}
}

func TestUtilizationBetweenZeroAndOne(t *testing.T) {
	eng, d := newTestDisk(NewPos())
	for i := 0; i < 10; i++ {
		d.Submit(req(spuA, int64(i)*5000, 16, nil))
	}
	eng.Run()
	// Let some idle time accumulate.
	eng.RunUntil(eng.Now() + sim.Second)
	u := d.Utilization()
	if u <= 0 || u >= 1 {
		t.Fatalf("utilization = %g", u)
	}
}

// Under PIso with two continuously-backlogged equal-share SPUs, the
// cumulative sectors served must stay roughly balanced — the bandwidth
// fairness goal of §3.3.
func TestPIsoBandwidthFairness(t *testing.T) {
	// A small threshold keeps the allowed absolute usage gap (threshold /
	// decay time-constant, in sectors/s) small relative to these request
	// rates, so the sector ratio must stay near 1.
	eng, d := newTestDisk(NewPIso(64))
	spc := d.Params().SectorsPerCylinder()
	// A issues big contiguous requests; B issues small scattered ones.
	// Keep both SPUs backlogged several requests deep so the fairness
	// criterion always has an alternative SPU to serve.
	var submitA, submitB func()
	secA := int64(0)
	i := 0
	submitA = func() {
		r := req(spuA, secA, 64, func(*Request) { submitA() })
		secA += 64
		d.Submit(r)
	}
	submitB = func() {
		cyl := int64(400 + (i*53)%1000)
		i++
		d.Submit(req(spuB, cyl*spc, 16, func(*Request) { submitB() }))
	}
	for k := 0; k < 6; k++ {
		submitA()
		submitB()
	}
	eng.RunUntil(10 * sim.Second)
	a := float64(d.PerSPU[spuA].Sectors)
	b := float64(d.PerSPU[spuB].Sectors)
	if a == 0 || b == 0 {
		t.Fatal("one SPU starved entirely")
	}
	ratio := a / b
	if ratio > 3 || ratio < 1.0/3 {
		t.Fatalf("sector ratio %.2f (A=%g B=%g): fairness not enforced", ratio, a, b)
	}
	// Under Pos the same duel is far more lopsided.
	eng2 := sim.NewEngine()
	d2 := New(eng2, HP97560(), NewPos(), 0)
	secA = 0
	i = 0
	var sA, sB func()
	sA = func() {
		r := req(spuA, secA, 64, func(*Request) { sA() })
		secA += 64
		d2.Submit(r)
	}
	sB = func() {
		cyl := int64(400 + (i*53)%1000)
		i++
		d2.Submit(req(spuB, cyl*spc, 16, func(*Request) { sB() }))
	}
	for k := 0; k < 6; k++ {
		sA()
		sB()
	}
	eng2.RunUntil(10 * sim.Second)
	// Under Pos the contiguous stream may lock B out entirely (that is
	// the §4.5 pathology); treat total starvation as an infinite ratio.
	posRatio := float64(d2.PerSPU[spuA].Sectors)
	if sb, ok := d2.PerSPU[spuB]; ok && sb.Sectors > 0 {
		posRatio /= float64(sb.Sectors)
	} else {
		posRatio = 1e9
	}
	if posRatio <= ratio {
		t.Fatalf("Pos ratio %.2f not more lopsided than PIso ratio %.2f", posRatio, ratio)
	}
}

package disk

import (
	"testing"

	"perfiso/internal/sim"
)

func TestSetSlowInflatesServiceTime(t *testing.T) {
	service := func(slow float64) sim.Time {
		eng, d := newTestDisk(NewPos())
		d.SetSlow(slow)
		var fin *Request
		d.Submit(req(spuA, 1000, 16, func(r *Request) { fin = r }))
		eng.Run()
		return fin.Service()
	}
	nominal := service(1)
	degraded := service(4)
	if degraded != 4*nominal {
		t.Fatalf("slow=4 service %v, want 4x nominal %v", degraded, nominal)
	}
	// SetSlow(0) and SetSlow(1) both mean nominal speed.
	if got := service(0); got != nominal {
		t.Fatalf("slow=0 service %v, want nominal %v", got, nominal)
	}
}

func TestSetFaultFailsTransfersDeterministically(t *testing.T) {
	run := func() (failed, completed int64) {
		eng, d := newTestDisk(NewPos())
		d.SetFault(0.5, sim.NewRNG(7).Fork())
		for i := 0; i < 64; i++ {
			d.Submit(req(spuA, int64(1000+i*100), 8, nil))
		}
		eng.Run()
		return d.Total.Failures, d.Total.Requests
	}
	f1, c1 := run()
	f2, c2 := run()
	if f1 == 0 || c1 == 0 {
		t.Fatalf("fault injection at p=0.5 over 64 requests: %d failed, %d ok", f1, c1)
	}
	if f1+c1 != 64 {
		t.Fatalf("failed %d + completed %d != 64 submitted", f1, c1)
	}
	if f1 != f2 || c1 != c2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", f1, c1, f2, c2)
	}
}

func TestFailedRequestReportsFailedAndRetrySucceeds(t *testing.T) {
	eng, d := newTestDisk(NewPos())
	d.SetFault(1.0, sim.NewRNG(1).Fork()) // every transfer fails
	var attempts int
	var finalOK bool
	var r *Request
	r = req(spuA, 1000, 8, func(rr *Request) {
		attempts++
		if rr.Failed {
			if attempts >= 3 {
				d.SetFault(0, nil) // drive recovers
			}
			d.Submit(rr) // naive immediate retry
			return
		}
		finalOK = true
	})
	d.Submit(r)
	eng.Run()
	if !finalOK {
		t.Fatal("request never succeeded after fault cleared")
	}
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 3 failures + 1 success", attempts)
	}
	if d.Total.Failures != 3 || d.Total.Requests != 1 {
		t.Fatalf("failures=%d requests=%d, want 3/1", d.Total.Failures, d.Total.Requests)
	}
	// Failed attempts consumed bandwidth: usage reflects all 4 transfers.
	if d.Usage(spuA) <= 0 {
		t.Fatal("failed transfers did not charge bandwidth usage")
	}
}

package disk

import (
	"perfiso/internal/bwmeter"
	"perfiso/internal/core"
	"perfiso/internal/sim"
)

// usageTable aliases the shared decayed bandwidth accounting (§3.3) in
// the units this package cares about: sectors transferred.
type usageTable struct {
	*bwmeter.Table
}

func newUsageTable(halfLife sim.Time) *usageTable {
	return &usageTable{Table: bwmeter.NewTable(halfLife)}
}

func (t *usageTable) setShare(id core.SPUID, w float64) { t.SetShare(id, w) }

func (t *usageTable) charge(now sim.Time, id core.SPUID, sectors int) {
	t.Charge(now, id, sectors)
}

func (t *usageTable) relative(now sim.Time, id core.SPUID) float64 {
	return t.Relative(now, id)
}

func (t *usageTable) meanRelative(now sim.Time, ids []core.SPUID) float64 {
	return t.MeanRelative(now, ids)
}

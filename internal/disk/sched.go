package disk

import "perfiso/internal/core"

// Scheduler selects the next request to service from a disk's queue.
// The three implementations correspond to the policies of §4.5.
type Scheduler interface {
	// Name returns the policy name as used in the paper's tables.
	Name() string
	// pick returns the index into d.queue of the next request to service.
	// It is only called with a non-empty queue.
	pick(d *Disk) int
}

// cscanBest returns the queue index that C-SCAN would pick from the given
// candidate indices: the lowest starting cylinder at or ahead of the
// current head position in the upward sweep, wrapping to the lowest
// cylinder when the sweep passes the end (§3.3). Ties break by sector,
// then FIFO.
func cscanBest(d *Disk, candidates []int) int {
	best := -1
	bestWrap := -1
	better := func(cur, cand int) bool {
		a, b := d.queue[cand], d.queue[cur]
		ca, cb := d.params.CylinderOf(a.Sector), d.params.CylinderOf(b.Sector)
		if ca != cb {
			return ca < cb
		}
		if a.Sector != b.Sector {
			return a.Sector < b.Sector
		}
		return cand < cur // FIFO: earlier queue position first
	}
	for _, i := range candidates {
		cyl := d.params.CylinderOf(d.queue[i].Sector)
		if cyl >= d.headCyl {
			if best == -1 || better(best, i) {
				best = i
			}
		} else {
			if bestWrap == -1 || better(bestWrap, i) {
				bestWrap = i
			}
		}
	}
	if best != -1 {
		return best
	}
	return bestWrap
}

// userCandidates partitions the queue into user-SPU requests and
// shared/kernel requests, returning user indices and shared indices.
// Shared-SPU requests have the lowest priority (§3.3); kernel requests
// are treated like user requests (the kernel SPU is never restricted).
func userCandidates(d *Disk) (user, shared []int) {
	for i, r := range d.queue {
		if r.SPU == core.SharedID {
			shared = append(shared, i)
		} else {
			user = append(user, i)
		}
	}
	return user, shared
}

// Pos is IRIX 5.3's standard scheduling: head position only, via C-SCAN.
// The requesting SPU plays no part, so a long contiguous stream can lock
// out other SPUs entirely.
type Pos struct{}

// NewPos returns the position-only C-SCAN scheduler.
func NewPos() *Pos { return &Pos{} }

// Name implements Scheduler.
func (*Pos) Name() string { return "Pos" }

func (*Pos) pick(d *Disk) int {
	all := make([]int, len(d.queue))
	for i := range d.queue {
		all[i] = i
	}
	return cscanBest(d, all)
}

// Iso is the blind isolation policy: it ignores head position and serves
// the SPU with the lowest bandwidth usage relative to its share,
// round-robin style, FIFO within an SPU. It gives the best fairness and
// the worst seek behaviour.
type Iso struct{}

// NewIso returns the blind bandwidth-fairness scheduler.
func NewIso() *Iso { return &Iso{} }

// Name implements Scheduler.
func (*Iso) Name() string { return "Iso" }

func (*Iso) pick(d *Disk) int {
	user, shared := userCandidates(d)
	cands := user
	if len(cands) == 0 {
		cands = shared
	}
	// Lowest relative usage goes first; FIFO within the winning SPU.
	best := -1
	var bestRel float64
	for _, i := range cands {
		rel := d.usage.relative(d.eng.Now(), d.queue[i].SPU)
		if best == -1 || rel < bestRel-1e-12 {
			best, bestRel = i, rel
		}
	}
	// best is the earliest-queued request of the least-served SPU because
	// queue order is FIFO and we only replace on strictly smaller usage.
	return best
}

// PIso is the paper's performance-isolation policy: requests are serviced
// in C-SCAN order as long as every SPU with queued requests passes the
// fairness criterion; an SPU whose relative usage exceeds the mean by
// more than Threshold is denied service until it passes again (§3.3).
//
// Threshold trades isolation against throughput: 0 degenerates to
// round-robin-like fairness, a huge value to pure position scheduling.
type PIso struct {
	// Threshold is the BW difference threshold in sectors (relative to a
	// unit share).
	Threshold float64
}

// DefaultBWThreshold is the BW difference threshold used when none is
// specified: 256 sectors (128 KB) of decayed usage above the mean.
const DefaultBWThreshold = 256

// NewPIso returns the fairness+position scheduler with the given
// BW-difference threshold (DefaultBWThreshold if <= 0).
func NewPIso(threshold float64) *PIso {
	if threshold <= 0 {
		threshold = DefaultBWThreshold
	}
	return &PIso{Threshold: threshold}
}

// Name implements Scheduler.
func (*PIso) Name() string { return "PIso" }

func (p *PIso) pick(d *Disk) int {
	user, shared := userCandidates(d)
	if len(user) == 0 {
		return cscanBest(d, shared)
	}
	now := d.eng.Now()
	// Fairness criterion over the SPUs that currently have requests
	// queued. At least one active SPU is at or below the mean, so the
	// passing set is never empty for Threshold >= 0.
	var active []core.SPUID
	seen := make(map[core.SPUID]bool)
	for _, i := range user {
		id := d.queue[i].SPU
		if !seen[id] {
			seen[id] = true
			active = append(active, id)
		}
	}
	mean := d.usage.meanRelative(now, active)
	var passing []int
	for _, i := range user {
		if d.usage.relative(now, d.queue[i].SPU) <= mean+p.Threshold {
			passing = append(passing, i)
		}
	}
	if len(passing) == 0 { // defensive; cannot happen with Threshold >= 0
		passing = user
	}
	return cscanBest(d, passing)
}

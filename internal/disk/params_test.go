package disk

import (
	"math"
	"testing"
	"testing/quick"

	"perfiso/internal/sim"
)

func TestHP97560Geometry(t *testing.T) {
	p := HP97560()
	// 1962 cyl * 19 heads * 72 spt * 512 B ~= 1.3 GB, per [KTR94].
	bytes := p.TotalSectors() * int64(p.SectorSize)
	if gb := float64(bytes) / 1e9; gb < 1.2 || gb > 1.5 {
		t.Fatalf("capacity = %.2f GB, want ~1.37", gb)
	}
}

func TestRotationTime(t *testing.T) {
	p := HP97560()
	// 4002 RPM => ~14.99 ms per revolution.
	if ms := p.RotationTime().Milliseconds(); math.Abs(ms-14.99) > 0.05 {
		t.Fatalf("rotation = %.3f ms", ms)
	}
	if st := p.SectorTime().Microseconds(); math.Abs(st-208.2) > 2 {
		t.Fatalf("sector time = %.1f us", st)
	}
}

func TestSeekCurveRegions(t *testing.T) {
	p := HP97560()
	if p.SeekTime(100, 100) != 0 {
		t.Fatal("zero-distance seek should be free")
	}
	// Short region: 3.24 + 0.4*sqrt(d) ms.
	if ms := p.SeekTime(0, 100).Milliseconds(); math.Abs(ms-(3.24+0.4*10)) > 0.01 {
		t.Fatalf("seek(100) = %.3f ms", ms)
	}
	// Long region: 8.00 + 0.008*d ms.
	if ms := p.SeekTime(0, 1000).Milliseconds(); math.Abs(ms-(8.0+8.0)) > 0.01 {
		t.Fatalf("seek(1000) = %.3f ms", ms)
	}
	// Symmetric.
	if p.SeekTime(50, 250) != p.SeekTime(250, 50) {
		t.Fatal("seek should be symmetric")
	}
}

func TestSeekScale(t *testing.T) {
	p := HP97560()
	full := p.SeekTime(0, 500)
	p.SeekScale = 0.5
	if got := p.SeekTime(0, 500); got != full/2 {
		t.Fatalf("scaled seek = %v, want %v", got, full/2)
	}
	// Zero scale means "unset" and behaves as 1.
	p.SeekScale = 0
	if got := p.SeekTime(0, 500); got != full {
		t.Fatalf("unset scale seek = %v, want %v", got, full)
	}
}

// Property: seek time is nondecreasing in distance (the fairness policies
// reason about "closer is cheaper").
func TestPropertySeekMonotonic(t *testing.T) {
	p := HP97560()
	f := func(a, b uint16) bool {
		d1, d2 := int(a)%p.Cylinders, int(b)%p.Cylinders
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return p.SeekTime(0, d1) <= p.SeekTime(0, d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCylinderOf(t *testing.T) {
	p := HP97560()
	spc := p.SectorsPerCylinder()
	if p.CylinderOf(0) != 0 {
		t.Fatal("sector 0 not in cylinder 0")
	}
	if p.CylinderOf(spc) != 1 {
		t.Fatal("first sector of cyl 1")
	}
	if p.CylinderOf(p.TotalSectors()-1) != p.Cylinders-1 {
		t.Fatal("last sector not in last cylinder")
	}
	// Out-of-range sectors clamp rather than index off the end.
	if p.CylinderOf(p.TotalSectors()+99999) != p.Cylinders-1 {
		t.Fatal("overflow sector should clamp to last cylinder")
	}
}

func TestRotationalDelayDeterministicAndBounded(t *testing.T) {
	p := HP97560()
	for s := int64(0); s < 200; s += 7 {
		d := p.RotationalDelay(12345*sim.Microsecond, s)
		if d < 0 || d >= p.RotationTime() {
			t.Fatalf("rot delay %v out of [0, rev)", d)
		}
		if d != p.RotationalDelay(12345*sim.Microsecond, s) {
			t.Fatal("rotational delay not deterministic")
		}
	}
}

func TestRotationalDelaySequentialIsFree(t *testing.T) {
	p := HP97560()
	// If the head settles exactly when sector k passes, reading sector k
	// has zero rotational delay.
	st := p.SectorTime()
	settled := 10 * st // head is over sector index 10
	if d := p.RotationalDelay(settled, 10); d != 0 {
		t.Fatalf("aligned sector delay = %v, want 0", d)
	}
	// The next sector costs one sector time less than a full revolution
	// only if we just missed it; here it is the next to arrive.
	if d := p.RotationalDelay(settled, 11); d != st {
		t.Fatalf("next sector delay = %v, want %v", d, st)
	}
}

func TestTransferTime(t *testing.T) {
	p := HP97560()
	one := p.TransferTime(0, 1)
	if one != p.SectorTime() {
		t.Fatalf("1-sector transfer = %v", one)
	}
	// A whole-track transfer crossing into the next track pays a switch.
	spt := p.SectorsPerTrack
	within := p.TransferTime(0, spt)
	crossing := p.TransferTime(0, spt+1)
	wantCross := sim.Time(spt+1)*p.SectorTime() + p.TrackSwitch
	if within != sim.Time(spt)*p.SectorTime() {
		t.Fatalf("within-track = %v", within)
	}
	if crossing != wantCross {
		t.Fatalf("crossing = %v, want %v", crossing, wantCross)
	}
	if p.TransferTime(0, 0) != 0 {
		t.Fatal("zero-sector transfer should be free")
	}
}

// Aggregate fidelity against the published HP 97560 characteristics
// ([KTR94]): full-stroke seek ~24 ms, mean random seek in the low tens
// of ms, sustained media rate ~2.3 MB/s.
func TestHP97560AggregateFidelity(t *testing.T) {
	p := HP97560()
	if ms := p.SeekTime(0, p.Cylinders-1).Milliseconds(); ms < 20 || ms > 28 {
		t.Errorf("full-stroke seek = %.1f ms, want ~24", ms)
	}
	// Mean random seek: average over uniform (from, to) pairs.
	rng := sim.NewRNG(5)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += p.SeekTime(rng.Intn(p.Cylinders), rng.Intn(p.Cylinders)).Milliseconds()
	}
	if mean := sum / n; mean < 8 || mean > 16 {
		t.Errorf("mean random seek = %.1f ms, want ~10-14", mean)
	}
	// Sustained media rate: one track per revolution.
	bytesPerRev := float64(p.SectorsPerTrack * p.SectorSize)
	mbps := bytesPerRev / p.RotationTime().Seconds() / 1e6
	if mbps < 2.0 || mbps > 2.8 {
		t.Errorf("sustained rate = %.2f MB/s, want ~2.3-2.5", mbps)
	}
}

func TestFastDiskIsFast(t *testing.T) {
	fast, slow := FastDisk(), HP97560()
	if fast.SeekTime(0, 500) >= slow.SeekTime(0, 500) {
		t.Fatal("fast disk seeks slower than HP97560")
	}
	if fast.SectorTime() >= slow.SectorTime() {
		t.Fatal("fast disk transfers slower than HP97560")
	}
}

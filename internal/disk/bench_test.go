package disk

import (
	"testing"

	"perfiso/internal/sim"
)

// benchDrain submits nReq requests and drains the disk, measuring
// whole-request pipeline cost including the scheduler's pick.
func benchDrain(b *testing.B, sched Scheduler, scattered bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := sim.NewEngine()
		d := New(eng, HP97560(), sched, 0)
		const nReq = 256
		spc := d.Params().SectorsPerCylinder()
		b.StartTimer()
		for j := 0; j < nReq; j++ {
			sector := int64(j) * 64
			if scattered {
				sector = (int64(j*37) % 1900) * spc
			}
			spu := spuA
			if j%2 == 1 {
				spu = spuB
			}
			d.Submit(&Request{Kind: Read, Sector: sector, Count: 16, SPU: spu})
		}
		eng.Run()
	}
}

func BenchmarkPosSequential(b *testing.B)  { benchDrain(b, NewPos(), false) }
func BenchmarkPosScattered(b *testing.B)   { benchDrain(b, NewPos(), true) }
func BenchmarkIsoScattered(b *testing.B)   { benchDrain(b, NewIso(), true) }
func BenchmarkPIsoScattered(b *testing.B)  { benchDrain(b, NewPIso(0), true) }
func BenchmarkPIsoSequential(b *testing.B) { benchDrain(b, NewPIso(0), false) }

// BenchmarkSeekModel measures the pure mechanical model.
func BenchmarkSeekModel(b *testing.B) {
	p := HP97560()
	for i := 0; i < b.N; i++ {
		_ = p.SeekTime(0, i%p.Cylinders)
	}
}

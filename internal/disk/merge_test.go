package disk

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

func TestMergeForwardAdjacent(t *testing.T) {
	eng, d := newTestDisk(NewPos())
	d.Merge = true
	var done []int64
	// Occupy the disk so subsequent submissions queue.
	d.Submit(req(spuA, 500000, 8, nil))
	d.Submit(req(spuA, 1000, 8, func(r *Request) { done = append(done, r.Sector) }))
	d.Submit(req(spuA, 1008, 8, func(r *Request) { done = append(done, r.Sector) }))
	if d.QueueLen() != 1 {
		t.Fatalf("queue %d, want 1 merged request", d.QueueLen())
	}
	eng.Run()
	if len(done) != 2 {
		t.Fatalf("done callbacks = %d, want both", len(done))
	}
	if d.Total.Merges != 1 {
		t.Fatalf("merges = %d", d.Total.Merges)
	}
	// 3 requests submitted, 2 physical transfers, but all 3 completed
	// and count in the request statistics (the absorbed one rode along).
	if d.Total.Requests != 3 {
		t.Fatalf("completed = %d, want 3", d.Total.Requests)
	}
	if got := d.Total.Seek.N(); got != 2 {
		t.Fatalf("physical transfers = %d, want 2", got)
	}
	if d.Total.Sectors != 8+16 {
		t.Fatalf("sectors = %d", d.Total.Sectors)
	}
}

func TestMergeBackwardAdjacent(t *testing.T) {
	eng, d := newTestDisk(NewPos())
	d.Merge = true
	d.Submit(req(spuA, 500000, 8, nil))
	d.Submit(req(spuA, 1008, 8, nil))
	d.Submit(req(spuA, 1000, 8, nil)) // prepends to the queued one
	if d.QueueLen() != 1 {
		t.Fatalf("queue %d, want 1", d.QueueLen())
	}
	eng.Run()
	if d.Total.Merges != 1 {
		t.Fatal("backward merge missed")
	}
}

func TestMergeRespectsBoundaries(t *testing.T) {
	eng, d := newTestDisk(NewPos())
	d.Merge = true
	d.Submit(req(spuA, 500000, 8, nil)) // in service
	d.Submit(req(spuA, 1000, 8, nil))
	d.Submit(req(spuB, 1008, 8, nil))                                               // other SPU: no merge
	d.Submit(&Request{Kind: Write, Sector: 1016, Count: 8, SPU: spuA})              // other kind
	d.Submit(req(spuA, 2000, 8, nil))                                               // not adjacent
	d.Submit(&Request{Kind: Read, Sector: 1008, Count: MaxMergeSectors, SPU: spuA}) // too big
	if d.QueueLen() != 5 {
		t.Fatalf("queue %d, want 5 unmerged", d.QueueLen())
	}
	eng.Run()
	if d.Total.Merges != 0 {
		t.Fatalf("merges = %d, want 0", d.Total.Merges)
	}
}

func TestMergeOffByDefault(t *testing.T) {
	eng, d := newTestDisk(NewPos())
	d.Submit(req(spuA, 500000, 8, nil))
	d.Submit(req(spuA, 1000, 8, nil))
	d.Submit(req(spuA, 1008, 8, nil))
	if d.QueueLen() != 2 {
		t.Fatalf("queue %d: merging happened without opt-in", d.QueueLen())
	}
	eng.Run()
}

func TestMergeReducesRequestCountOnStream(t *testing.T) {
	// A bursty sequential stream submitted while the disk is busy
	// coalesces into far fewer, larger physical transfers (the Seek
	// sample counts one entry per transfer actually serviced).
	run := func(merge bool) int64 {
		eng := sim.NewEngine()
		d := New(eng, HP97560(), NewPos(), 0)
		d.Merge = merge
		d.Submit(req(spuA, 900000, 8, nil)) // park service far away
		for i := 0; i < 32; i++ {
			d.Submit(req(spuA, int64(1000+i*8), 8, nil))
		}
		eng.Run()
		return d.Total.Seek.N()
	}
	plain := run(false)
	merged := run(true)
	if plain != 33 {
		t.Fatalf("plain requests = %d", plain)
	}
	if merged >= plain/4 {
		t.Fatalf("merged requests = %d, want large reduction from %d", merged, plain)
	}
	_ = core.SPUID(0)
}

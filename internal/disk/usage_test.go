package disk

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

func TestUsageTableSharesAndRelative(t *testing.T) {
	tab := newUsageTable(500 * sim.Millisecond)
	a, b := core.SPUID(2), core.SPUID(3)
	tab.setShare(a, 1)
	tab.setShare(b, 2) // b owns twice the bandwidth
	tab.charge(0, a, 100)
	tab.charge(0, b, 100)
	if ra, rb := tab.relative(0, a), tab.relative(0, b); ra != 100 || rb != 50 {
		t.Fatalf("relative = %g, %g", ra, rb)
	}
	if mean := tab.meanRelative(0, []core.SPUID{a, b}); mean != 75 {
		t.Fatalf("mean = %g", mean)
	}
}

func TestUsageTableDecays(t *testing.T) {
	tab := newUsageTable(500 * sim.Millisecond)
	id := core.SPUID(2)
	tab.charge(0, id, 1000)
	got := tab.relative(500*sim.Millisecond, id)
	if got < 499 || got > 501 {
		t.Fatalf("after one half-life: %g, want ~500", got)
	}
}

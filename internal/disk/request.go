package disk

import (
	"fmt"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

// Kind distinguishes reads from writes.
type Kind int

const (
	Read Kind = iota
	Write
)

// String returns "read" or "write".
func (k Kind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Charge attributes part of a shared request's sectors to a user SPU.
// Delayed writes issued by kernel daemons carry pages from several SPUs;
// the request is scheduled under the shared SPU, and once it completes
// the individual sectors are charged back to their owners (§3.3).
type Charge struct {
	SPU     core.SPUID
	Sectors int
}

// Request is one disk operation. Submit it with Disk.Submit; Done (if
// non-nil) runs when the transfer completes.
type Request struct {
	Kind   Kind
	Sector int64 // first sector
	Count  int   // number of sectors
	SPU    core.SPUID
	// Charges is set on shared-SPU requests: the per-user-SPU breakdown
	// applied to the bandwidth accounting after completion.
	Charges []Charge
	// Done is invoked at completion time with the finished request.
	Done func(*Request)

	// Filled in by the disk.
	Submitted sim.Time // when the request entered the queue
	Started   sim.Time // when service began
	Finished  sim.Time // when the transfer completed
	SeekTime  sim.Time // seek component of service
	RotTime   sim.Time // rotational-delay component of service
	// Failed is set when an injected transient fault made the transfer
	// fail: the request consumed arm time but moved no usable data, and
	// the submitter is expected to retry. Submit clears it, so a request
	// object can be resubmitted as-is.
	Failed bool

	// Backoff accumulates the retry delays the submitter inserted before
	// resubmitting this request after failed transfers, so the profiler
	// can separate backoff from genuine queueing in a waiter's stall.
	Backoff sim.Time
	// StolenBy is the SPU whose request the scheduler most recently
	// served while this one sat queued (set by the profiler blame pass;
	// the zero value means never displaced — the kernel SPU issues no
	// disk traffic, so KernelID cannot be a real thief).
	StolenBy core.SPUID
}

// Positioning returns the mechanical positioning latency (seek plus
// rotational delay) of the request, the quantity the paper's "average
// disk latency" column tracks.
func (r *Request) Positioning() sim.Time { return r.SeekTime + r.RotTime }

// Wait returns how long the request sat in the queue before service.
func (r *Request) Wait() sim.Time { return r.Started - r.Submitted }

// Service returns the time spent in actual service (seek+rotate+transfer).
func (r *Request) Service() sim.Time { return r.Finished - r.Started }

// Latency returns the total submit-to-finish time.
func (r *Request) Latency() sim.Time { return r.Finished - r.Submitted }

func (r *Request) validate(p Params) error {
	if r.Count <= 0 {
		return fmt.Errorf("disk: request with non-positive count %d", r.Count)
	}
	if r.Sector < 0 || r.Sector+int64(r.Count) > p.TotalSectors() {
		return fmt.Errorf("disk: request [%d,+%d) outside disk of %d sectors",
			r.Sector, r.Count, p.TotalSectors())
	}
	return nil
}

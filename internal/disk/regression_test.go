package disk

import (
	"testing"

	"perfiso/internal/sim"
)

// Regression: the track-buffer sequential hit (rot = 0 when a request
// continues exactly where the previous transfer ended) used to apply
// after arbitrarily long idle gaps, as if the drive's read-ahead buffer
// held data forever. It must only apply within about one rotation of
// the previous transfer finishing.
func TestTrackBufferHitExpiresAfterIdleGap(t *testing.T) {
	// Both requests live on cylinder 0 so the continuation pays no seek
	// and its service time is Overhead + rot + xfer exactly.
	run := func(gap sim.Time) (got, want sim.Time) {
		eng, d := newTestDisk(NewPos())
		var second *Request
		d.Submit(req(spuA, 1000, 8, nil))
		eng.Run()
		eng.CallAfter(gap, "resume-stream", func() {
			// The model's spindle position is a pure function of time,
			// so the full rotational delay the continuation *should*
			// pay is computable up front.
			settled := eng.Now() + d.params.Overhead
			want = d.params.RotationalDelay(settled, 1008)
			d.Submit(req(spuA, 1008, 8, func(r *Request) { second = r }))
		})
		eng.Run()
		if second == nil {
			t.Fatal("second request never completed")
		}
		return second.RotTime, want
	}

	// Immediate continuation: the track buffer absorbs the gap.
	if got, _ := run(0); got != 0 {
		t.Fatalf("back-to-back sequential request paid rotation %v, want 0", got)
	}
	// After a 1 s idle gap the buffered read-ahead is long gone: the
	// request must pay the real rotational delay again.
	got, want := run(sim.Second)
	if want == 0 {
		t.Fatal("test premise broken: chosen gap happens to need no rotation")
	}
	if got != want {
		t.Fatalf("after 1s idle gap rotation = %v, want %v (stale track-buffer hit)", got, want)
	}
}

// Regression: requests absorbed by tryMerge used to complete (their
// Done callbacks fired with Started/Finished copied from the host) but
// were never added to the Total/PerSPU Wait/Service samples or Requests
// counts, so latency percentiles undercounted under merging.
func TestMergeAbsorbedRequestStatsCounted(t *testing.T) {
	eng, d := newTestDisk(NewPos())
	d.Merge = true
	d.Submit(req(spuA, 500000, 8, nil)) // occupy the disk
	d.Submit(req(spuA, 1000, 8, nil))
	d.Submit(req(spuA, 1008, 8, nil)) // absorbed into the previous one
	if d.Total.Merges != 1 && d.QueueLen() != 1 {
		t.Fatalf("merge did not happen (queue %d)", d.QueueLen())
	}
	eng.Run()

	// 3 logical requests completed: all of them must appear in the
	// request counts and latency samples, even though only 2 transfers
	// were serviced.
	if d.Total.Requests != 3 {
		t.Fatalf("Total.Requests = %d, want 3 (absorbed request not counted)", d.Total.Requests)
	}
	if n := d.Total.Wait.N(); n != 3 {
		t.Fatalf("Total.Wait has %d samples, want 3", n)
	}
	if n := d.Total.Service.N(); n != 3 {
		t.Fatalf("Total.Service has %d samples, want 3", n)
	}
	s := d.PerSPU[spuA]
	if s == nil || s.Requests != 3 {
		t.Fatalf("PerSPU.Requests = %v, want 3", s)
	}
	if n := s.Wait.N(); n != 3 {
		t.Fatalf("PerSPU.Wait has %d samples, want 3", n)
	}
	// Sectors are counted once, via the host's grown transfer.
	if d.Total.Sectors != 8+16 {
		t.Fatalf("Total.Sectors = %d, want 24", d.Total.Sectors)
	}
}
